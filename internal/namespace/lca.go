package namespace

// Constant-time LCA support: an Euler tour of the tree plus a sparse-table
// range-minimum index over tour depths. Built once in Build(); the routing
// hot path calls Distance for every candidate at every hop, so O(1) LCA is
// worth the O(N log N) index.

type lcaIndex struct {
	first []int32 // node -> first occurrence in the Euler tour
	// table[k][i] = the tour position with minimum depth in [i, i+2^k).
	// Level 0 stores the tour itself (positions are implicit), so we store
	// the node at each tour position and its depth separately.
	tourNode  []NodeID
	tourDepth []int32
	table     [][]int32 // positions into the tour
	logs      []uint8   // floor(log2(i)) lookup
}

func (t *Tree) buildLCA() {
	n := t.Len()
	idx := &lcaIndex{
		first:     make([]int32, n),
		tourNode:  make([]NodeID, 0, 2*n-1),
		tourDepth: make([]int32, 0, 2*n-1),
	}
	for i := range idx.first {
		idx.first[i] = -1
	}
	// Iterative Euler tour: push root; on visiting a node append it to the
	// tour; after finishing a child, append the parent again.
	type frame struct {
		node  NodeID
		child int32 // next child index to descend into
	}
	stack := make([]frame, 0, t.MaxDepth()+2)
	stack = append(stack, frame{node: 0})
	appendTour := func(v NodeID) {
		pos := int32(len(idx.tourNode))
		idx.tourNode = append(idx.tourNode, v)
		idx.tourDepth = append(idx.tourDepth, t.depth[v])
		if idx.first[v] < 0 {
			idx.first[v] = pos
		}
	}
	appendTour(0)
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		children := t.Children(f.node)
		if int(f.child) < len(children) {
			c := children[f.child]
			f.child++
			stack = append(stack, frame{node: c})
			appendTour(c)
			continue
		}
		stack = stack[:len(stack)-1]
		if len(stack) > 0 {
			appendTour(stack[len(stack)-1].node)
		}
	}
	m := len(idx.tourNode)
	idx.logs = make([]uint8, m+1)
	for i := 2; i <= m; i++ {
		idx.logs[i] = idx.logs[i/2] + 1
	}
	levels := int(idx.logs[m]) + 1
	idx.table = make([][]int32, levels)
	idx.table[0] = make([]int32, m)
	for i := 0; i < m; i++ {
		idx.table[0][i] = int32(i)
	}
	for k := 1; k < levels; k++ {
		span := 1 << uint(k)
		row := make([]int32, m-span+1)
		prev := idx.table[k-1]
		half := span / 2
		for i := 0; i+span <= m; i++ {
			a, b := prev[i], prev[i+half]
			if idx.tourDepth[b] < idx.tourDepth[a] {
				a = b
			}
			row[i] = a
		}
		idx.table[k] = row
	}
	t.lca = idx
}

// lcaFast answers LCA in O(1) via the sparse table.
func (t *Tree) lcaFast(a, b NodeID) NodeID {
	idx := t.lca
	l, r := idx.first[a], idx.first[b]
	if l > r {
		l, r = r, l
	}
	k := idx.logs[r-l+1]
	i, j := idx.table[k][l], idx.table[k][r-int32(1)<<k+1]
	if idx.tourDepth[j] < idx.tourDepth[i] {
		i = j
	}
	return idx.tourNode[i]
}
