package namespace

import (
	"fmt"

	"terradir/internal/rng"
)

// NewBalanced constructs a perfectly balanced tree with the given arity and
// number of levels (levels >= 1; levels == 1 is just the root). With arity 2
// and levels 15 this is the paper's synthetic namespace Ns: 2^15-1 = 32,767
// nodes, root at level 0, leaves at level 14.
func NewBalanced(arity, levels int) *Tree {
	if arity < 1 || levels < 1 {
		panic("namespace: NewBalanced requires arity >= 1 and levels >= 1")
	}
	var b Builder
	b.AddRoot("")
	frontier := []NodeID{0}
	for lvl := 1; lvl < levels; lvl++ {
		next := make([]NodeID, 0, len(frontier)*arity)
		for _, p := range frontier {
			for c := 0; c < arity; c++ {
				next = append(next, b.AddChild(p, fmt.Sprintf("n%d", c)))
			}
		}
		frontier = next
	}
	return b.Build()
}

// BalancedBinaryNodes returns the node count of a balanced binary tree with
// the given number of levels: 2^levels - 1.
func BalancedBinaryNodes(levels int) int { return (1 << uint(levels)) - 1 }

// FileSystemParams tunes the synthetic file-system namespace generator (the
// stand-in for the paper's Coda "barber" trace namespace Nc). The defaults
// (DefaultFileSystemParams) target ~70,000 nodes with a file-system-like
// shape: heavily skewed fan-out, most mass at moderate depth, a long deep
// tail.
type FileSystemParams struct {
	TargetNodes int     // approximate total node count
	MaxDepth    int     // hard depth cap
	DirFraction float64 // fraction of created nodes that are directories
	// MeanDirFanout is the mean number of children a directory receives when
	// it is expanded; actual fan-outs are geometric-ish and heavy-tailed.
	MeanDirFanout float64
}

// DefaultFileSystemParams approximates the Coda namespace scale reported in
// the paper (≈70k nodes: files accessed in one month plus their ancestors).
func DefaultFileSystemParams() FileSystemParams {
	return FileSystemParams{
		TargetNodes:   70000,
		MaxDepth:      12,
		DirFraction:   0.22,
		MeanDirFanout: 9,
	}
}

// BuildFileSystem generates a synthetic file-system-like namespace. Growth is
// preferential: an expandable directory is picked with probability
// proportional to (1 + children), which yields the skewed directory-size
// distribution observed in real file systems (few huge directories, many
// small ones) while keeping depth bounded.
func BuildFileSystem(src *rng.Source, p FileSystemParams) *Tree {
	if p.TargetNodes < 1 {
		panic("namespace: BuildFileSystem requires TargetNodes >= 1")
	}
	if p.MaxDepth < 1 {
		p.MaxDepth = 1
	}
	if p.DirFraction <= 0 || p.DirFraction > 1 {
		p.DirFraction = 0.22
	}
	if p.MeanDirFanout < 1 {
		p.MeanDirFanout = 9
	}
	var b Builder
	b.AddRoot("")
	type dir struct {
		id       NodeID
		depth    int
		children int
	}
	dirs := []dir{{id: 0}}
	// Weighted pick ∝ (1+children) via total-weight bookkeeping.
	totalW := 1
	fileN, dirN := 0, 0
	for b.Len() < p.TargetNodes && len(dirs) > 0 {
		// Pick a directory with probability ∝ 1+children.
		target := src.Intn(totalW)
		idx := 0
		acc := 0
		for i := range dirs {
			acc += 1 + dirs[i].children
			if target < acc {
				idx = i
				break
			}
		}
		d := &dirs[idx]
		isDir := src.Float64() < p.DirFraction && d.depth+1 < p.MaxDepth
		var label string
		if isDir {
			label = fmt.Sprintf("d%d", dirN)
			dirN++
		} else {
			label = fmt.Sprintf("f%d%s", fileN, fileExt(src))
			fileN++
		}
		id := b.AddChild(d.id, label)
		d.children++
		totalW++
		if isDir {
			dirs = append(dirs, dir{id: id, depth: d.depth + 1})
			totalW++
		}
	}
	return b.Build()
}

var exts = []string{".c", ".h", ".o", ".txt", ".tex", ".ps", ".dat", ""}

func fileExt(src *rng.Source) string {
	return exts[src.Intn(len(exts))]
}

// NewFromParents builds a tree from a parent array (parents[0] must be -1 and
// parents[i] < i for all i>0) and a label array. It is the low-level entry
// point for loading externally specified namespaces.
func NewFromParents(parents []int32, labels []string) (*Tree, error) {
	if len(parents) != len(labels) {
		return nil, fmt.Errorf("namespace: %d parents but %d labels", len(parents), len(labels))
	}
	if len(parents) == 0 {
		return nil, fmt.Errorf("namespace: empty parent array")
	}
	if parents[0] != -1 {
		return nil, fmt.Errorf("namespace: parents[0] = %d, want -1", parents[0])
	}
	var b Builder
	b.AddRoot(labels[0])
	for i := 1; i < len(parents); i++ {
		p := parents[i]
		if p < 0 || int(p) >= i {
			return nil, fmt.Errorf("namespace: parents[%d] = %d out of range", i, p)
		}
		b.AddChild(NodeID(p), labels[i])
	}
	t := b.Build()
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
