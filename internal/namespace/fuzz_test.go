package namespace

import "testing"

// FuzzLookup asserts Lookup never panics on arbitrary name strings and that
// any resolved node round-trips through Name.
func FuzzLookup(f *testing.F) {
	tr, _ := paperTree()
	f.Add("/university/public/people")
	f.Add("/university//x")
	f.Add("")
	f.Add("/")
	f.Add("university")
	f.Add("/university/private/people/students/Mary/")
	f.Fuzz(func(t *testing.T, name string) {
		id := tr.Lookup(name)
		if id == Invalid {
			return
		}
		if id < 0 || int(id) >= tr.Len() {
			t.Fatalf("Lookup(%q) = %d out of range", name, id)
		}
		round := tr.Name(id)
		if tr.Lookup(round) != id {
			t.Fatalf("Name/Lookup round trip broken for %q -> %d -> %q", name, id, round)
		}
	})
}

// FuzzNewFromParents asserts the external-tree loader never panics and only
// accepts structurally valid trees.
func FuzzNewFromParents(f *testing.F) {
	f.Add([]byte{0, 1, 2}, 3)
	f.Add([]byte{}, 0)
	f.Fuzz(func(t *testing.T, raw []byte, n int) {
		if n < 0 || n > len(raw) || n > 64 {
			return
		}
		parents := make([]int32, n)
		labels := make([]string, n)
		for i := 0; i < n; i++ {
			parents[i] = int32(raw[i]) - 1 // -1..254
			labels[i] = string(rune('a' + i))
		}
		tr, err := NewFromParents(parents, labels)
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted tree fails validation: %v", err)
		}
	})
}
