package namespace

import (
	"testing"

	"terradir/internal/rng"
)

// TestLCAFastMatchesWalk cross-checks the Euler-tour sparse table against
// the reference pointer-walk implementation on assorted tree shapes.
func TestLCAFastMatchesWalk(t *testing.T) {
	trees := map[string]*Tree{
		"balanced2x10": NewBalanced(2, 10),
		"balanced5x4":  NewBalanced(5, 4),
		"chainish":     chainTree(64),
		"fs":           BuildFileSystem(rng.New(4), FileSystemParams{TargetNodes: 3000, MaxDepth: 9, DirFraction: 0.3, MeanDirFanout: 5}),
	}
	src := rng.New(99)
	for name, tr := range trees {
		if tr.lca == nil {
			t.Fatalf("%s: LCA index not built", name)
		}
		for i := 0; i < 5000; i++ {
			a := NodeID(src.Intn(tr.Len()))
			b := NodeID(src.Intn(tr.Len()))
			fast := tr.lcaFast(a, b)
			walk := tr.lcaWalk(a, b)
			if fast != walk {
				t.Fatalf("%s: LCA(%d,%d) fast=%d walk=%d", name, a, b, fast, walk)
			}
		}
	}
}

// chainTree builds a degenerate path tree (worst-case depth).
func chainTree(n int) *Tree {
	var b Builder
	cur := b.AddRoot("")
	for i := 1; i < n; i++ {
		cur = b.AddChild(cur, "c")
	}
	return b.Build()
}

func TestLCAChainTree(t *testing.T) {
	tr := chainTree(100)
	if tr.MaxDepth() != 99 {
		t.Fatalf("depth = %d", tr.MaxDepth())
	}
	// In a chain, LCA(a,b) is the shallower node.
	if got := tr.LCA(10, 80); got != 10 {
		t.Fatalf("chain LCA = %d", got)
	}
	if d := tr.Distance(10, 80); d != 70 {
		t.Fatalf("chain distance = %d", d)
	}
}

func TestLCASingleNode(t *testing.T) {
	var b Builder
	b.AddRoot("solo")
	tr := b.Build()
	if tr.LCA(0, 0) != 0 || tr.Distance(0, 0) != 0 {
		t.Fatal("singleton LCA/distance wrong")
	}
}

func TestLCAIdentityAndAncestor(t *testing.T) {
	tr := NewBalanced(3, 5)
	src := rng.New(3)
	for i := 0; i < 1000; i++ {
		a := NodeID(src.Intn(tr.Len()))
		if tr.LCA(a, a) != a {
			t.Fatalf("LCA(%d,%d) != self", a, a)
		}
		if p := tr.Parent(a); p != Invalid {
			if tr.LCA(a, p) != p {
				t.Fatalf("LCA(child,parent) != parent for %d", a)
			}
		}
	}
}

func BenchmarkLCAFast(b *testing.B) {
	tr := NewBalanced(2, 15)
	src := rng.New(1)
	n := tr.Len()
	pairs := make([][2]NodeID, 1024)
	for i := range pairs {
		pairs[i] = [2]NodeID{NodeID(src.Intn(n)), NodeID(src.Intn(n))}
	}
	b.ResetTimer()
	var sink NodeID
	for i := 0; i < b.N; i++ {
		p := pairs[i&1023]
		sink = tr.lcaFast(p[0], p[1])
	}
	_ = sink
}

func BenchmarkLCAWalk(b *testing.B) {
	tr := NewBalanced(2, 15)
	src := rng.New(1)
	n := tr.Len()
	pairs := make([][2]NodeID, 1024)
	for i := range pairs {
		pairs[i] = [2]NodeID{NodeID(src.Intn(n)), NodeID(src.Intn(n))}
	}
	b.ResetTimer()
	var sink NodeID
	for i := 0; i < b.N; i++ {
		p := pairs[i&1023]
		sink = tr.lcaWalk(p[0], p[1])
	}
	_ = sink
}
