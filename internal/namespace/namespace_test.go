package namespace

import (
	"testing"
	"testing/quick"

	"terradir/internal/rng"
)

// paperTree builds the example namespace from the paper's Fig. 1.
func paperTree() (*Tree, map[string]NodeID) {
	var b Builder
	ids := map[string]NodeID{}
	ids["/university"] = b.AddRoot("university")
	ids["/university/public"] = b.AddChild(ids["/university"], "public")
	ids["/university/private"] = b.AddChild(ids["/university"], "private")
	ids["/university/public/people"] = b.AddChild(ids["/university/public"], "people")
	ids["/university/private/people"] = b.AddChild(ids["/university/private"], "people")
	ids["/university/public/people/faculty"] = b.AddChild(ids["/university/public/people"], "faculty")
	ids["/university/public/people/students"] = b.AddChild(ids["/university/public/people"], "students")
	ids["/university/private/people/staff"] = b.AddChild(ids["/university/private/people"], "staff")
	ids["/university/private/people/students"] = b.AddChild(ids["/university/private/people"], "students")
	ids["/university/public/people/faculty/John"] = b.AddChild(ids["/university/public/people/faculty"], "John")
	ids["/university/public/people/students/Steve"] = b.AddChild(ids["/university/public/people/students"], "Steve")
	ids["/university/private/people/staff/Ann"] = b.AddChild(ids["/university/private/people/staff"], "Ann")
	ids["/university/private/people/students/Lisa"] = b.AddChild(ids["/university/private/people/students"], "Lisa")
	ids["/university/private/people/students/Mary"] = b.AddChild(ids["/university/private/people/students"], "Mary")
	return b.Build(), ids
}

func TestPaperTreeNames(t *testing.T) {
	tr, ids := paperTree()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, id := range ids {
		if got := tr.Name(id); got != name {
			t.Errorf("Name(%d) = %q, want %q", id, got, name)
		}
		if got := tr.Lookup(name); got != id {
			t.Errorf("Lookup(%q) = %d, want %d", name, got, id)
		}
	}
}

func TestLookupMisses(t *testing.T) {
	tr, _ := paperTree()
	for _, name := range []string{
		"/nosuch", "/university/nosuch", "/university/public/people/faculty/Jane",
		"university/public", "",
	} {
		if got := tr.Lookup(name); got != Invalid && name != "" {
			t.Errorf("Lookup(%q) = %d, want Invalid", name, got)
		}
	}
}

func TestLookupTrailingSlash(t *testing.T) {
	tr, ids := paperTree()
	if got := tr.Lookup("/university/public/"); got != ids["/university/public"] {
		t.Fatalf("trailing slash lookup = %d", got)
	}
}

func TestPaperRouteDistance(t *testing.T) {
	tr, ids := paperTree()
	// /university/public/people/faculty/John -> /university/private is
	// 4 up + 1 down = 5 edges? John is depth 4, private depth 1, LCA is root.
	a := ids["/university/public/people/faculty/John"]
	b := ids["/university/private"]
	if d := tr.Distance(a, b); d != 5 {
		t.Fatalf("Distance = %d, want 5", d)
	}
	if l := tr.LCA(a, b); l != ids["/university"] {
		t.Fatalf("LCA = %d, want root", l)
	}
}

func TestNextHopToward(t *testing.T) {
	tr, ids := paperTree()
	from := ids["/university/public/people"]
	to := ids["/university/private/people/staff/Ann"]
	// Path goes up: next hop is /university/public.
	if h := tr.NextHopToward(from, to); h != ids["/university/public"] {
		t.Fatalf("NextHopToward up = %d, want %d", h, ids["/university/public"])
	}
	// Descending case.
	from2 := ids["/university/private"]
	if h := tr.NextHopToward(from2, to); h != ids["/university/private/people"] {
		t.Fatalf("NextHopToward down = %d", h)
	}
	if h := tr.NextHopToward(to, to); h != Invalid {
		t.Fatalf("NextHopToward self = %d, want Invalid", h)
	}
}

func TestNextHopMakesIncrementalProgress(t *testing.T) {
	// Property: following NextHopToward always decreases distance by exactly 1.
	tr := NewBalanced(2, 8)
	src := rng.New(42)
	for i := 0; i < 2000; i++ {
		a := NodeID(src.Intn(tr.Len()))
		b := NodeID(src.Intn(tr.Len()))
		for a != b {
			h := tr.NextHopToward(a, b)
			if tr.Distance(h, b) != tr.Distance(a, b)-1 {
				t.Fatalf("hop %d->%d toward %d did not decrement distance", a, h, b)
			}
			a = h
		}
	}
}

func TestBalancedShape(t *testing.T) {
	tr := NewBalanced(2, 15)
	if tr.Len() != 32767 {
		t.Fatalf("Ns size = %d, want 32767", tr.Len())
	}
	if tr.MaxDepth() != 14 {
		t.Fatalf("Ns depth = %d, want 14", tr.MaxDepth())
	}
	pop := tr.LevelPopulations()
	for lvl, n := range pop {
		if n != 1<<uint(lvl) {
			t.Fatalf("level %d has %d nodes, want %d", lvl, n, 1<<uint(lvl))
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBalancedArity3(t *testing.T) {
	tr := NewBalanced(3, 4)
	if tr.Len() != 1+3+9+27 {
		t.Fatalf("size = %d, want 40", tr.Len())
	}
	if d := tr.Degree(tr.Root()); d != 3 {
		t.Fatalf("root degree = %d", d)
	}
}

func TestBalancedSingleLevel(t *testing.T) {
	tr := NewBalanced(5, 1)
	if tr.Len() != 1 || tr.MaxDepth() != 0 {
		t.Fatalf("singleton tree wrong: len=%d depth=%d", tr.Len(), tr.MaxDepth())
	}
}

func TestBalancedBinaryNodes(t *testing.T) {
	if BalancedBinaryNodes(15) != 32767 {
		t.Fatal("BalancedBinaryNodes(15) != 32767")
	}
}

func TestDistanceProperties(t *testing.T) {
	tr := NewBalanced(2, 10)
	n := tr.Len()
	cfg := &quick.Config{MaxCount: 300}
	// Symmetry and identity.
	if err := quick.Check(func(x, y uint16) bool {
		a, b := NodeID(int(x)%n), NodeID(int(y)%n)
		return tr.Distance(a, b) == tr.Distance(b, a) && tr.Distance(a, a) == 0
	}, cfg); err != nil {
		t.Fatal(err)
	}
	// Triangle inequality.
	if err := quick.Check(func(x, y, z uint16) bool {
		a, b, c := NodeID(int(x)%n), NodeID(int(y)%n), NodeID(int(z)%n)
		return tr.Distance(a, c) <= tr.Distance(a, b)+tr.Distance(b, c)
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestIsAncestor(t *testing.T) {
	tr, ids := paperTree()
	root := ids["/university"]
	leaf := ids["/university/private/people/students/Mary"]
	if !tr.IsAncestor(root, leaf) {
		t.Fatal("root should be ancestor of leaf")
	}
	if tr.IsAncestor(leaf, root) {
		t.Fatal("leaf is not ancestor of root")
	}
	if !tr.IsAncestor(leaf, leaf) {
		t.Fatal("node should be its own ancestor")
	}
	if tr.IsAncestor(ids["/university/public"], ids["/university/private/people"]) {
		t.Fatal("public is not ancestor of private/people")
	}
}

func TestAncestorAtDepth(t *testing.T) {
	tr, ids := paperTree()
	leaf := ids["/university/private/people/students/Lisa"]
	if got := tr.AncestorAtDepth(leaf, 0); got != ids["/university"] {
		t.Fatalf("depth 0 ancestor = %d", got)
	}
	if got := tr.AncestorAtDepth(leaf, 2); got != ids["/university/private/people"] {
		t.Fatalf("depth 2 ancestor = %d", got)
	}
	if got := tr.AncestorAtDepth(leaf, 4); got != leaf {
		t.Fatalf("depth 4 ancestor = %d, want self", got)
	}
	if got := tr.AncestorAtDepth(leaf, 5); got != Invalid {
		t.Fatalf("too-deep ancestor = %d, want Invalid", got)
	}
}

func TestAncestorsList(t *testing.T) {
	tr, ids := paperTree()
	leaf := ids["/university/public/people/faculty/John"]
	anc := tr.Ancestors(nil, leaf)
	want := []NodeID{
		ids["/university/public/people/faculty"],
		ids["/university/public/people"],
		ids["/university/public"],
		ids["/university"],
	}
	if len(anc) != len(want) {
		t.Fatalf("got %d ancestors, want %d", len(anc), len(want))
	}
	for i := range anc {
		if anc[i] != want[i] {
			t.Fatalf("ancestor[%d] = %d, want %d", i, anc[i], want[i])
		}
	}
}

func TestRootName(t *testing.T) {
	tr := NewBalanced(2, 3)
	if got := tr.Name(tr.Root()); got != "/" {
		t.Fatalf("unlabeled root name = %q", got)
	}
	if got := tr.Lookup("/"); got != tr.Root() {
		t.Fatalf("Lookup(/) = %d", got)
	}
	tr2, _ := paperTree()
	if got := tr2.Name(tr2.Root()); got != "/university" {
		t.Fatalf("labeled root name = %q", got)
	}
}

func TestBuilderPanics(t *testing.T) {
	t.Run("double root", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		var b Builder
		b.AddRoot("")
		b.AddRoot("")
	})
	t.Run("orphan child", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		var b Builder
		b.AddRoot("")
		b.AddChild(99, "x")
	})
	t.Run("empty build", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		(&Builder{}).Build()
	})
}

func TestFileSystemNamespace(t *testing.T) {
	src := rng.New(2024)
	p := DefaultFileSystemParams()
	p.TargetNodes = 20000
	tr := BuildFileSystem(src, p)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() < 19000 || tr.Len() > 21000 {
		t.Fatalf("size = %d, want ≈20000", tr.Len())
	}
	if tr.MaxDepth() >= p.MaxDepth+1 {
		t.Fatalf("depth %d exceeds cap %d", tr.MaxDepth(), p.MaxDepth)
	}
	// File-system shape: fan-out should be skewed — the max-degree directory
	// should be much larger than the mean.
	maxDeg, sumDeg, dirs := 0, 0, 0
	for i := 0; i < tr.Len(); i++ {
		d := tr.Degree(NodeID(i))
		if d > 0 {
			dirs++
			sumDeg += d
			if d > maxDeg {
				maxDeg = d
			}
		}
	}
	mean := float64(sumDeg) / float64(dirs)
	if float64(maxDeg) < 5*mean {
		t.Fatalf("fan-out not skewed: max %d vs mean %.1f", maxDeg, mean)
	}
}

func TestFileSystemDeterminism(t *testing.T) {
	p := DefaultFileSystemParams()
	p.TargetNodes = 5000
	t1 := BuildFileSystem(rng.New(7), p)
	t2 := BuildFileSystem(rng.New(7), p)
	if t1.Len() != t2.Len() {
		t.Fatalf("sizes differ: %d vs %d", t1.Len(), t2.Len())
	}
	for i := 0; i < t1.Len(); i++ {
		if t1.Parent(NodeID(i)) != t2.Parent(NodeID(i)) || t1.Label(NodeID(i)) != t2.Label(NodeID(i)) {
			t.Fatalf("trees diverge at node %d", i)
		}
	}
}

func TestNewFromParents(t *testing.T) {
	tr, err := NewFromParents([]int32{-1, 0, 0, 1}, []string{"r", "a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 4 || tr.Depth(3) != 2 {
		t.Fatalf("bad tree: len=%d depth3=%d", tr.Len(), tr.Depth(3))
	}
	if got := tr.Name(3); got != "/r/a/c" {
		t.Fatalf("Name(3) = %q", got)
	}
}

func TestNewFromParentsErrors(t *testing.T) {
	cases := []struct {
		parents []int32
		labels  []string
	}{
		{[]int32{-1, 0}, []string{"r"}},              // length mismatch
		{[]int32{}, []string{}},                      // empty
		{[]int32{0}, []string{"r"}},                  // root not -1
		{[]int32{-1, 5}, []string{"r", "x"}},         // forward reference
		{[]int32{-1, -1}, []string{"r", "x"}},        // second root
		{[]int32{-1, 0, 0}, []string{"r", "a", "a"}}, // duplicate sibling labels
	}
	for i, c := range cases {
		if _, err := NewFromParents(c.parents, c.labels); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestLevelPopulationsFS(t *testing.T) {
	src := rng.New(3)
	p := DefaultFileSystemParams()
	p.TargetNodes = 3000
	tr := BuildFileSystem(src, p)
	pop := tr.LevelPopulations()
	total := 0
	for _, n := range pop {
		total += n
	}
	if total != tr.Len() {
		t.Fatalf("level populations sum %d != %d", total, tr.Len())
	}
	if pop[0] != 1 {
		t.Fatalf("root level population = %d", pop[0])
	}
}

func BenchmarkDistance(b *testing.B) {
	tr := NewBalanced(2, 15)
	src := rng.New(1)
	n := tr.Len()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += tr.Distance(NodeID(src.Intn(n)), NodeID(src.Intn(n)))
	}
	_ = sink
}

func BenchmarkLookup(b *testing.B) {
	tr, _ := paperTree()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup("/university/private/people/students/Mary")
	}
}
