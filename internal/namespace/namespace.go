// Package namespace implements TerraDir's hierarchical namespace: a rooted
// tree of fully-qualified names ("/university/public/people/..."), with the
// tree-hop distance metric the routing protocol minimizes, lowest-common-
// ancestor queries, and builders for the two namespace families used in the
// paper's evaluation (the perfectly balanced binary tree Ns and a synthetic
// file-system namespace standing in for the Coda trace, Nc).
//
// Nodes are identified by dense integer IDs (NodeID) so that per-node
// protocol state can live in flat slices; names are materialized on demand.
// A Tree is immutable after construction and safe for concurrent readers.
package namespace

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// NodeID identifies a node within a Tree. IDs are dense in [0, Tree.Len()).
// The root always has ID 0.
type NodeID int32

// Invalid is the sentinel for "no node".
const Invalid NodeID = -1

// Tree is an immutable rooted tree namespace.
type Tree struct {
	parent []NodeID
	depth  []int32
	label  []string
	// CSR layout for children: children of node i are
	// childList[childStart[i]:childStart[i+1]].
	childStart []int32
	childList  []NodeID
	maxDepth   int32
	lca        *lcaIndex
	names      []atomic.Pointer[string] // memoized Name results, filled lazily
}

// Builder incrementally constructs a Tree. The zero value is ready to use;
// the first AddRoot call creates node 0.
type Builder struct {
	parent []NodeID
	label  []string
}

// AddRoot creates the root node (ID 0) with the given label (conventionally
// "" or a logical root name). It panics if called twice.
func (b *Builder) AddRoot(label string) NodeID {
	if len(b.parent) != 0 {
		panic("namespace: AddRoot called twice")
	}
	b.parent = append(b.parent, Invalid)
	b.label = append(b.label, label)
	return 0
}

// AddChild creates a new node under parent and returns its ID. It panics if
// parent does not exist.
func (b *Builder) AddChild(parent NodeID, label string) NodeID {
	if parent < 0 || int(parent) >= len(b.parent) {
		panic(fmt.Sprintf("namespace: AddChild under nonexistent parent %d", parent))
	}
	id := NodeID(len(b.parent))
	b.parent = append(b.parent, parent)
	b.label = append(b.label, label)
	return id
}

// Len returns the number of nodes added so far.
func (b *Builder) Len() int { return len(b.parent) }

// Build finalizes the tree. The builder must not be reused afterwards.
func (b *Builder) Build() *Tree {
	n := len(b.parent)
	if n == 0 {
		panic("namespace: Build on empty builder")
	}
	t := &Tree{
		parent:     b.parent,
		label:      b.label,
		depth:      make([]int32, n),
		childStart: make([]int32, n+1),
		names:      make([]atomic.Pointer[string], n),
	}
	counts := make([]int32, n)
	for i := 1; i < n; i++ {
		counts[b.parent[i]]++
	}
	for i := 0; i < n; i++ {
		t.childStart[i+1] = t.childStart[i] + counts[i]
	}
	t.childList = make([]NodeID, n-1)
	fill := make([]int32, n)
	copy(fill, t.childStart[:n])
	for i := 1; i < n; i++ {
		p := b.parent[i]
		t.childList[fill[p]] = NodeID(i)
		fill[p]++
	}
	// Depths: parents always precede children (AddChild requires an existing
	// parent), so a single forward pass suffices.
	for i := 1; i < n; i++ {
		t.depth[i] = t.depth[b.parent[i]] + 1
		if t.depth[i] > t.maxDepth {
			t.maxDepth = t.depth[i]
		}
	}
	t.buildLCA()
	return t
}

// Len returns the number of nodes in the tree.
func (t *Tree) Len() int { return len(t.parent) }

// Root returns the root node's ID (always 0).
func (t *Tree) Root() NodeID { return 0 }

// Parent returns the parent of id, or Invalid for the root.
func (t *Tree) Parent(id NodeID) NodeID { return t.parent[id] }

// Children returns the children of id. The returned slice aliases internal
// storage and must not be modified.
func (t *Tree) Children(id NodeID) []NodeID {
	return t.childList[t.childStart[id]:t.childStart[id+1]]
}

// Degree returns the number of children of id.
func (t *Tree) Degree(id NodeID) int {
	return int(t.childStart[id+1] - t.childStart[id])
}

// Depth returns the depth of id (root = 0).
func (t *Tree) Depth(id NodeID) int { return int(t.depth[id]) }

// MaxDepth returns the maximum depth of any node.
func (t *Tree) MaxDepth() int { return int(t.maxDepth) }

// Label returns the path component naming id under its parent.
func (t *Tree) Label(id NodeID) string { return t.label[id] }

// Name materializes the fully qualified name of id, e.g. "/a/b/c". The root
// is "/" if its label is empty, otherwise "/<label>". Names are memoized per
// node (the tree is immutable), so repeat callers — every completed lookup
// names its destination — pay a single atomic load, not a rebuild.
func (t *Tree) Name(id NodeID) string {
	if p := t.names[id].Load(); p != nil {
		return *p
	}
	name := t.buildName(id)
	t.names[id].Store(&name)
	return name
}

func (t *Tree) buildName(id NodeID) string {
	if id == 0 {
		if t.label[0] == "" {
			return "/"
		}
		return "/" + t.label[0]
	}
	var parts []string
	for cur := id; cur != Invalid; cur = t.parent[cur] {
		if !(cur == 0 && t.label[0] == "") {
			parts = append(parts, t.label[cur])
		}
	}
	var sb strings.Builder
	for i := len(parts) - 1; i >= 0; i-- {
		sb.WriteByte('/')
		sb.WriteString(parts[i])
	}
	return sb.String()
}

// Lookup resolves a fully qualified name to a NodeID, returning Invalid if no
// such node exists. Resolution walks label-by-label from the root.
func (t *Tree) Lookup(name string) NodeID {
	name = strings.TrimSuffix(name, "/")
	if name == "" {
		name = "/"
	}
	if name[0] != '/' {
		return Invalid
	}
	cur := NodeID(0)
	rest := name[1:]
	if t.label[0] != "" {
		// Consume the root label first.
		seg, tail := splitSeg(rest)
		if seg != t.label[0] {
			return Invalid
		}
		rest = tail
	}
	for rest != "" {
		seg, tail := splitSeg(rest)
		next := Invalid
		for _, c := range t.Children(cur) {
			if t.label[c] == seg {
				next = c
				break
			}
		}
		if next == Invalid {
			return Invalid
		}
		cur, rest = next, tail
	}
	return cur
}

func splitSeg(s string) (seg, rest string) {
	if i := strings.IndexByte(s, '/'); i >= 0 {
		return s[:i], s[i+1:]
	}
	return s, ""
}

// LCA returns the lowest common ancestor of a and b in O(1) (Euler tour +
// sparse table, built at construction).
func (t *Tree) LCA(a, b NodeID) NodeID {
	if t.lca != nil {
		return t.lcaFast(a, b)
	}
	return t.lcaWalk(a, b)
}

// lcaWalk is the index-free fallback (and the reference implementation the
// property tests check the sparse table against).
func (t *Tree) lcaWalk(a, b NodeID) NodeID {
	for t.depth[a] > t.depth[b] {
		a = t.parent[a]
	}
	for t.depth[b] > t.depth[a] {
		b = t.parent[b]
	}
	for a != b {
		a = t.parent[a]
		b = t.parent[b]
	}
	return a
}

// Distance returns the namespace distance between a and b: the number of
// tree edges on the unique path between them. This is the metric the routing
// procedure makes incremental progress in.
func (t *Tree) Distance(a, b NodeID) int {
	l := t.LCA(a, b)
	return int(t.depth[a] + t.depth[b] - 2*t.depth[l])
}

// IsAncestor reports whether a is an ancestor of b (a node is considered its
// own ancestor).
func (t *Tree) IsAncestor(a, b NodeID) bool {
	if t.depth[a] > t.depth[b] {
		return false
	}
	for t.depth[b] > t.depth[a] {
		b = t.parent[b]
	}
	return a == b
}

// AncestorAtDepth returns b's ancestor at depth d, or Invalid if d exceeds
// b's depth.
func (t *Tree) AncestorAtDepth(b NodeID, d int) NodeID {
	if int(t.depth[b]) < d || d < 0 {
		return Invalid
	}
	for int(t.depth[b]) > d {
		b = t.parent[b]
	}
	return b
}

// NextHopToward returns the neighbor of from (its parent or one of its
// children) that lies on the tree path from "from" to "to". It returns
// Invalid if from == to. This is the ideal routing step the protocol's
// neighbor context enables.
func (t *Tree) NextHopToward(from, to NodeID) NodeID {
	if from == to {
		return Invalid
	}
	if t.IsAncestor(from, to) {
		// Descend: the child of from that is an ancestor of to.
		return t.AncestorAtDepth(to, int(t.depth[from])+1)
	}
	return t.parent[from]
}

// Ancestors appends to dst the strict ancestors of id from parent up to the
// root, returning the extended slice.
func (t *Tree) Ancestors(dst []NodeID, id NodeID) []NodeID {
	for cur := t.parent[id]; cur != Invalid; cur = t.parent[cur] {
		dst = append(dst, cur)
	}
	return dst
}

// LevelPopulations returns the number of nodes at each depth, indexed by
// depth 0..MaxDepth().
func (t *Tree) LevelPopulations() []int {
	pop := make([]int, t.maxDepth+1)
	for _, d := range t.depth {
		pop[d]++
	}
	return pop
}

// Validate performs structural sanity checks, returning an error describing
// the first violation found. It is used by tests and by builders of external
// namespaces.
func (t *Tree) Validate() error {
	n := t.Len()
	if n == 0 {
		return fmt.Errorf("namespace: empty tree")
	}
	if t.parent[0] != Invalid {
		return fmt.Errorf("namespace: root has parent %d", t.parent[0])
	}
	seen := 0
	for i := 0; i < n; i++ {
		for _, c := range t.Children(NodeID(i)) {
			if t.parent[c] != NodeID(i) {
				return fmt.Errorf("namespace: child %d of %d has parent %d", c, i, t.parent[c])
			}
			if t.depth[c] != t.depth[i]+1 {
				return fmt.Errorf("namespace: child %d depth %d, parent depth %d", c, t.depth[c], t.depth[i])
			}
			seen++
		}
	}
	if seen != n-1 {
		return fmt.Errorf("namespace: %d child links for %d nodes", seen, n)
	}
	// Sibling labels must be unique for Lookup to be well-defined.
	for i := 0; i < n; i++ {
		ch := t.Children(NodeID(i))
		if len(ch) < 2 {
			continue
		}
		labels := make([]string, len(ch))
		for j, c := range ch {
			labels[j] = t.label[c]
		}
		sort.Strings(labels)
		for j := 1; j < len(labels); j++ {
			if labels[j] == labels[j-1] {
				return fmt.Errorf("namespace: duplicate sibling label %q under node %d", labels[j], i)
			}
		}
	}
	return nil
}
