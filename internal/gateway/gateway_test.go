package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"terradir/internal/core"
	"terradir/internal/overlay"
)

func TestAdmissionBucket(t *testing.T) {
	a := newAdmission(2, 2)
	now := time.Unix(1000, 0)
	a.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if ok, _ := a.allow("t1"); !ok {
			t.Fatalf("burst request %d shed", i)
		}
	}
	ok, wait := a.allow("t1")
	if ok {
		t.Fatal("request beyond burst admitted")
	}
	if wait <= 0 || wait > 600*time.Millisecond {
		t.Fatalf("retry-after hint %v, want ~500ms", wait)
	}
	now = now.Add(wait + time.Millisecond)
	if ok, _ := a.allow("t1"); !ok {
		t.Fatal("request after refill shed")
	}
	// Tenants are independent.
	if ok, _ := a.allow("t2"); !ok {
		t.Fatal("fresh tenant shed")
	}
	// rate <= 0 admits everything.
	u := newAdmission(0, 0)
	for i := 0; i < 100; i++ {
		if ok, _ := u.allow("x"); !ok {
			t.Fatal("unlimited admission shed")
		}
	}
}

func TestAdmissionSweep(t *testing.T) {
	a := newAdmission(1000, 1)
	now := time.Unix(1000, 0)
	a.now = func() time.Time { return now }
	for i := 0; i < maxTenants; i++ {
		a.allow(fmt.Sprintf("t%d", i))
	}
	// All buckets refill within 1ms at rate 1000; the next new tenant
	// triggers the sweep instead of growing the table past the bound.
	now = now.Add(10 * time.Millisecond)
	a.allow("fresh")
	a.mu.Lock()
	n := len(a.buckets)
	a.mu.Unlock()
	if n > 1 {
		t.Fatalf("sweep left %d buckets, want 1", n)
	}
}

func TestRouteCache(t *testing.T) {
	c := newRouteCache(2)
	c.put(1, []core.ServerID{0, 1})
	if got := c.get(1); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("get(1) = %v", got)
	}
	// merge unions without duplicating.
	c.merge(1, []core.ServerID{1, 2})
	if got := c.get(1); len(got) != 3 {
		t.Fatalf("after merge get(1) = %v", got)
	}
	// merge is capped at maxCachedServers.
	var many []core.ServerID
	for i := 0; i < 2*maxCachedServers; i++ {
		many = append(many, core.ServerID(i))
	}
	c.merge(1, many)
	if got := c.get(1); len(got) > maxCachedServers {
		t.Fatalf("merge grew entry to %d servers, cap %d", len(got), maxCachedServers)
	}
	// The bound holds: inserting a third key evicts one.
	c.put(2, []core.ServerID{2})
	c.put(3, []core.ServerID{3})
	if c.len() != 2 {
		t.Fatalf("cache len %d, want 2 (bounded)", c.len())
	}
	// drop scrubs a server everywhere and deletes emptied entries.
	c2 := newRouteCache(8)
	c2.put(10, []core.ServerID{0, 1})
	c2.put(11, []core.ServerID{1})
	c2.drop(1)
	if got := c2.get(10); len(got) != 1 || got[0] != 0 {
		t.Fatalf("after drop get(10) = %v", got)
	}
	if got := c2.get(11); got != nil {
		t.Fatalf("after drop get(11) = %v, want nil (entry emptied)", got)
	}
}

// waitReady blocks until every upstream has answered a liveness probe — which
// also guarantees the gateway has dialed (and hello'd on) a connection to
// every peer, so any peer can route results back to it.
func waitReady(t *testing.T, g *Gateway) {
	t.Helper()
	waitFor(t, 5*time.Second, "all upstreams probed alive", func() bool {
		for _, u := range g.pool.ups {
			if u.lastSeen.Load() == 0 {
				return false
			}
		}
		return true
	})
}

func TestGatewayLookupBasic(t *testing.T) {
	c := startCluster(t, 3, false, 0)
	g := c.startGateway(nil)
	waitReady(t, g)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	node := c.ownedNode(1)
	name := c.tree.Name(node)
	res, err := g.LookupName(ctx, name)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("lookup %s failed: %s", name, res.Reason)
	}
	if res.Node != node || res.Name != name {
		t.Fatalf("lookup returned node %d name %q, want %d %q", res.Node, res.Name, node, name)
	}
	if len(res.Servers) == 0 {
		t.Fatal("result carries no replica set")
	}

	// The result fed the routing cache: a repeat lookup is a cache hit.
	if _, err := g.Lookup(ctx, node); err != nil {
		t.Fatal(err)
	}
	snap := g.Registry().Snapshot()
	if snap["terradir_gw_cache_hits_total"] < 1 {
		t.Fatalf("no cache hit on repeat lookup: %v", snap["terradir_gw_cache_hits_total"])
	}

	if _, err := g.LookupName(ctx, "/no/such/name"); err == nil {
		t.Fatal("unknown name did not error")
	}
	if _, err := g.Lookup(ctx, core.NodeID(c.tree.Len())); err == nil {
		t.Fatal("out-of-range node did not error")
	}

	// The gateway's reply frames arrive through the batched FrameReader path:
	// the downstream transport must account for them.
	ts := c.gwTr.Stats()
	if ts.FramesRead == 0 {
		t.Fatal("gateway transport read replies but FramesRead == 0")
	}
	if ts.ReadBatches == 0 || ts.ReadBatches > ts.FramesRead {
		t.Fatalf("ReadBatches = %d out of range (0, FramesRead=%d]", ts.ReadBatches, ts.FramesRead)
	}
}

func TestGatewayWireSurface(t *testing.T) {
	c := startCluster(t, 3, false, 0)
	g := c.startGateway(func(o *Options) {
		o.AdmissionRate = 1 // burst defaults to 1: second immediate request sheds
	})
	waitReady(t, g)

	// A downstream wire client: its own client-role transport, whose only
	// "peer" is the gateway.
	cl, err := overlay.NewTCPTransportOpts(core.ClientID(1), "127.0.0.1:0",
		map[core.ServerID]string{g.self: g.wire.Addr()},
		overlay.TCPTransportOptions{ClientRole: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	replies := make(chan *core.ResultMsg, 4)
	cl.ServeFunc(func(m core.Message) {
		if r, ok := m.(*core.ResultMsg); ok {
			replies <- r
		}
	})

	node := c.ownedNode(0)
	send := func(qid uint64) {
		t.Helper()
		err := cl.Send(core.ClientID(1), g.self, &core.QueryMsg{
			QueryID:  qid,
			Dest:     node,
			Source:   core.ClientID(1),
			OnBehalf: invalidNode,
			Piggy:    core.Piggyback{From: core.NoServer},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	recv := func() *core.ResultMsg {
		t.Helper()
		select {
		case r := <-replies:
			return r
		case <-time.After(5 * time.Second):
			t.Fatal("no wire reply")
			return nil
		}
	}

	send(42)
	r := recv()
	if r.QueryID != 42 || !r.OK {
		t.Fatalf("wire lookup reply qid=%d ok=%v reason=%s", r.QueryID, r.OK, r.Reason)
	}
	if len(r.Map.Servers) == 0 {
		t.Fatal("wire reply carries no replica set")
	}

	// The bucket is empty now: the next request is shed with FailShed.
	send(43)
	r = recv()
	if r.QueryID != 43 || r.OK || r.Reason != core.FailShed {
		t.Fatalf("expected shed, got qid=%d ok=%v reason=%s", r.QueryID, r.OK, r.Reason)
	}
	snap := g.Registry().Snapshot()
	if snap[`terradir_gw_shed_total{surface="wire"}`] < 1 {
		t.Fatal("wire shed not counted")
	}
}

func TestHTTPAdmissionAndDrain(t *testing.T) {
	c := startCluster(t, 3, false, 0)
	g := c.startGateway(func(o *Options) {
		o.AdmissionRate = 1
		o.DrainTimeout = 500 * time.Millisecond
	})
	waitReady(t, g)
	addr, err := g.StartHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := &http.Client{Timeout: 10 * time.Second}
	name := c.tree.Name(c.ownedNode(0))
	url := fmt.Sprintf("http://%s/lookup?name=%s", addr, name)

	resp, err := cl.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	var body lookupResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !body.OK {
		t.Fatalf("lookup: status %d ok=%v", resp.StatusCode, body.OK)
	}

	// Token bucket (burst 1) is empty: immediate retry sheds with 429 and a
	// Retry-After hint.
	resp, err = cl.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Draining: healthz flips to 503 (LB ejection) and lookups are refused.
	g.Drain()
	resp, err = cl.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status %d, want 503", resp.StatusCode)
	}
	resp, err = cl.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("draining lookup status %d (Retry-After %q), want 503 with hint",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}

func TestCoalesceFlashCrowd(t *testing.T) {
	// 20ms of artificial service time per query keeps the leader's flight
	// open long enough that a barrier-released crowd piles onto it.
	c := startCluster(t, 3, false, 20*time.Millisecond)
	g := c.startGateway(func(o *Options) {
		o.HedgeAfter = -1 // no hedging: upstream query count isolates coalescing
	})
	waitReady(t, g)

	before := g.Registry().Snapshot()
	const crowd = 50
	node := c.ownedNode(0)
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, crowd)
	var coalesced atomic.Int64
	for i := 0; i < crowd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			res, err := g.Lookup(ctx, node)
			if err != nil {
				errs <- err
				return
			}
			if !res.OK {
				errs <- fmt.Errorf("lookup failed: %s", res.Reason)
				return
			}
			if res.Coalesced {
				coalesced.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	after := g.Registry().Snapshot()
	hits := after["terradir_gw_coalesce_hits_total"] - before["terradir_gw_coalesce_hits_total"]
	upstream := after["terradir_gw_upstream_queries_total"] - before["terradir_gw_upstream_queries_total"]
	flights := after["terradir_gw_flights_total"] - before["terradir_gw_flights_total"]
	t.Logf("crowd=%d coalesce_hits=%g flights=%g upstream_queries=%g", crowd, hits, upstream, flights)
	if hits < 1 {
		t.Fatal("flash crowd produced no coalesce hits")
	}
	if coalesced.Load() < 1 {
		t.Fatal("no result carried the Coalesced flag")
	}
	if upstream >= crowd/2 {
		t.Fatalf("upstream queries %g not ≪ crowd %d", upstream, crowd)
	}
	if hits+flights < crowd {
		t.Fatalf("hits %g + flights %g < crowd %d: requests unaccounted", hits, flights, crowd)
	}
}
