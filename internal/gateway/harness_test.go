package gateway

import (
	"testing"
	"time"

	"terradir/internal/core"
	"terradir/internal/membership"
	"terradir/internal/namespace"
	"terradir/internal/overlay"
)

// testCluster is a small live TCP overlay the gateway tests front.
type testCluster struct {
	t       *testing.T
	tree    *namespace.Tree
	owner   []core.ServerID
	nodes   []*overlay.Node
	trs     []*overlay.TCPTransport
	faults  []*overlay.FaultTransport
	addrs   map[core.ServerID]string
	peers   []core.ServerID
	stopped []bool
	gwTr    *overlay.TCPTransport // the last startGateway's downstream transport
}

// startCluster boots n TCP peers (each with its outbound path wrapped in a
// FaultTransport for targeted fault injection). withMembership enables the
// accelerated SWIM tuning from the churn e2e tests — needed whenever a test
// crashes a peer and expects the survivors to keep resolving its nodes.
func startCluster(t *testing.T, n int, withMembership bool, serviceDelay time.Duration) *testCluster {
	t.Helper()
	c := &testCluster{
		t:       t,
		tree:    namespace.NewBalanced(3, 4),
		addrs:   map[core.ServerID]string{},
		stopped: make([]bool, n),
	}
	c.owner = overlay.Assign(c.tree, n, 7)
	ownerOf := func(nd core.NodeID) core.ServerID { return c.owner[nd] }
	ownedBy := make([][]core.NodeID, n)
	for nd, s := range c.owner {
		ownedBy[s] = append(ownedBy[s], core.NodeID(nd))
	}
	c.trs = make([]*overlay.TCPTransport, n)
	c.faults = make([]*overlay.FaultTransport, n)
	c.nodes = make([]*overlay.Node, n)
	for i := 0; i < n; i++ {
		tr, err := overlay.NewTCPTransportOpts(core.ServerID(i), "127.0.0.1:0",
			map[core.ServerID]string{}, overlay.TCPTransportOptions{Seed: uint64(i) + 1})
		if err != nil {
			t.Fatal(err)
		}
		c.trs[i] = tr
		c.addrs[core.ServerID(i)] = tr.Addr()
		c.peers = append(c.peers, core.ServerID(i))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			c.trs[i].SetAddr(core.ServerID(j), c.addrs[core.ServerID(j)])
		}
	}
	for i := 0; i < n; i++ {
		c.faults[i] = overlay.NewFaultTransport(c.trs[i], overlay.FaultOptions{Seed: uint64(i) + 1})
		opts := overlay.Options{Seed: uint64(i) + 1, ServiceDelay: serviceDelay}
		if withMembership {
			opts.Membership = &overlay.MembershipOptions{
				Protocol: membership.Options{
					ProbeInterval:       50 * time.Millisecond,
					ProbeTimeout:        25 * time.Millisecond,
					SuspicionTimeout:    250 * time.Millisecond,
					DeadReprobeInterval: 200 * time.Millisecond,
					Seed:                uint64(i)*31 + 1,
				},
				Servers:  n,
				SelfAddr: c.trs[i].Addr(),
				Peers:    c.peersCopy(),
			}
		}
		nd, err := overlay.NewNode(core.ServerID(i), c.tree, ownedBy[i], ownerOf, opts)
		if err != nil {
			t.Fatal(err)
		}
		c.nodes[i] = nd
		overlay.StartTCPNodeVia(nd, c.trs[i], c.faults[i])
	}
	t.Cleanup(func() {
		for i := range c.nodes {
			if !c.stopped[i] {
				c.nodes[i].Stop()
				c.trs[i].Close()
			}
		}
	})
	return c
}

func (c *testCluster) peersCopy() map[core.ServerID]string {
	m := make(map[core.ServerID]string, len(c.addrs))
	for k, v := range c.addrs {
		m[k] = v
	}
	return m
}

// ownedNode returns a node the given peer owns under the initial assignment.
func (c *testCluster) ownedNode(s core.ServerID) core.NodeID {
	for nd, o := range c.owner {
		if o == s {
			return core.NodeID(nd)
		}
	}
	c.t.Fatalf("server %d owns nothing", s)
	return 0
}

// crash kills peer i abruptly: event loops stop, listener and connections
// close. Nothing is drained — exactly a process death.
func (c *testCluster) crash(i int) {
	c.stopped[i] = true
	c.nodes[i].Stop()
	c.trs[i].Close()
}

// startGateway wires a gateway in front of the cluster. tweak (may be nil)
// adjusts the options before New.
func (c *testCluster) startGateway(tweak func(*Options)) *Gateway {
	c.t.Helper()
	gwTr, err := overlay.NewTCPTransportOpts(core.ClientID(0), "127.0.0.1:0",
		c.peersCopy(), overlay.TCPTransportOptions{ClientRole: true, Seed: 99})
	if err != nil {
		c.t.Fatal(err)
	}
	c.gwTr = gwTr
	opts := Options{
		Tree:      c.tree,
		Self:      core.ClientID(0),
		Peers:     c.peers,
		Wire:      gwTr,
		ProbeDest: c.ownedNode,
		// Race-detector-friendly probe cadence: fast enough that ejection
		// happens within a test, slow enough not to flood the loopback.
		ProbeInterval: 50 * time.Millisecond,
		ProbeTimeout:  150 * time.Millisecond,
	}
	if tweak != nil {
		tweak(&opts)
	}
	g, err := New(opts)
	if err != nil {
		c.t.Fatal(err)
	}
	c.t.Cleanup(func() {
		g.Close()
		gwTr.Close()
	})
	return g
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}
