package gateway

import (
	"math/rand"
	"testing"

	"terradir/internal/core"
)

// TestRouteCacheClock verifies the second-chance mechanics: referenced
// entries survive the sweep that evicts unreferenced ones.
func TestRouteCacheClock(t *testing.T) {
	c := newRouteCache(4)
	for id := 0; id < 4; id++ {
		c.put(core.NodeID(id), []core.ServerID{core.ServerID(id)})
	}
	// Touch 0 and 2; their reference bits must spare them from the next
	// eviction, which lands on 1 or 3.
	c.get(0)
	c.get(2)
	c.put(100, []core.ServerID{9})
	if c.get(0) == nil || c.get(2) == nil {
		t.Fatal("referenced entries were evicted ahead of unreferenced ones")
	}
	if c.get(100) == nil {
		t.Fatal("inserted entry missing")
	}
	if c.len() != 4 {
		t.Fatalf("cache len %d, want 4 (bounded)", c.len())
	}
	if got := c.get(1); got != nil {
		if c.get(3) != nil {
			t.Fatal("no unreferenced entry was evicted")
		}
	}
	// The insert above referenced everything it touched; a burst of new keys
	// must still terminate and keep the bound.
	for id := 200; id < 220; id++ {
		c.put(core.NodeID(id), []core.ServerID{1})
	}
	if c.len() != 4 {
		t.Fatalf("cache len %d after burst, want 4", c.len())
	}
}

// TestRouteCacheDropRemovesSlots pins the swap-remove path: emptied slots
// disappear, survivors stay reachable through the rebuilt index.
func TestRouteCacheDropRemovesSlots(t *testing.T) {
	c := newRouteCache(8)
	c.put(1, []core.ServerID{7})
	c.put(2, []core.ServerID{7, 8})
	c.put(3, []core.ServerID{7})
	c.put(4, []core.ServerID{9})
	c.drop(7)
	if c.len() != 2 {
		t.Fatalf("len %d after drop, want 2", c.len())
	}
	if got := c.get(2); len(got) != 1 || got[0] != 8 {
		t.Fatalf("get(2) = %v after drop", got)
	}
	if got := c.get(4); len(got) != 1 || got[0] != 9 {
		t.Fatalf("get(4) = %v after drop", got)
	}
	if c.get(1) != nil || c.get(3) != nil {
		t.Fatal("emptied entries still present")
	}
	// The cache still accepts inserts and evicts correctly afterwards.
	for id := 10; id < 30; id++ {
		c.put(core.NodeID(id), []core.ServerID{1})
	}
	if c.len() != 8 {
		t.Fatalf("len %d after refill, want 8", c.len())
	}
}

// BenchmarkRouteCacheZipf measures the cache hit rate under a Zipf request
// stream over a namespace 16x the cache — the workload the CLOCK policy is
// for. The hit rate is reported as hits/op; random eviction scored ~0.61
// here, second-chance ~0.70 — it holds the Zipf head resident.
func BenchmarkRouteCacheZipf(b *testing.B) {
	const (
		cacheSize = 256
		namespace = 16 * cacheSize
	)
	c := newRouteCache(cacheSize)
	zipf := rand.NewZipf(rand.New(rand.NewSource(1)), 1.1, 1, namespace-1)
	servers := []core.ServerID{0, 1}
	// Warm the cache with one pass so the measured loop sees steady state.
	for i := 0; i < 4*cacheSize; i++ {
		c.put(core.NodeID(zipf.Uint64()), servers)
	}
	hits := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nd := core.NodeID(zipf.Uint64())
		if c.get(nd) != nil {
			hits++
		} else {
			c.put(nd, servers)
		}
	}
	b.ReportMetric(float64(hits)/float64(b.N), "hits/op")
}
