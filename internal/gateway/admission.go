package gateway

import (
	"sync"
	"time"
)

// maxTenants bounds the bucket table; crossing it sweeps full (idle)
// buckets so an unbounded tenant-ID stream cannot grow memory forever.
const maxTenants = 16384

// admission is per-tenant token-bucket admission control. Each tenant (an
// X-Tenant header, a client IP, or a wire client ID) refills at rate
// tokens/second up to burst; a request takes one token or is shed with a
// retry-after hint of when the next token lands. rate <= 0 admits
// everything.
type admission struct {
	rate  float64
	burst float64
	now   func() time.Time // injectable for tests

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newAdmission(rate, burst float64) *admission {
	if burst < 1 {
		burst = 1
	}
	if burst < rate {
		burst = rate
	}
	return &admission{
		rate:    rate,
		burst:   burst,
		now:     time.Now,
		buckets: make(map[string]*bucket),
	}
}

// allow takes one token from tenant's bucket. When the bucket is empty it
// returns false plus the delay after which one token will be available.
func (a *admission) allow(tenant string) (bool, time.Duration) {
	if a.rate <= 0 {
		return true, 0
	}
	now := a.now()
	a.mu.Lock()
	defer a.mu.Unlock()
	b, ok := a.buckets[tenant]
	if !ok {
		if len(a.buckets) >= maxTenants {
			a.sweepLocked(now)
		}
		b = &bucket{tokens: a.burst, last: now}
		a.buckets[tenant] = b
	} else {
		b.tokens += a.rate * now.Sub(b.last).Seconds()
		if b.tokens > a.burst {
			b.tokens = a.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / a.rate * float64(time.Second))
	return false, wait
}

// sweepLocked drops buckets that have refilled to burst (idle tenants: they
// shed nothing by being forgotten — a fresh bucket starts full anyway).
func (a *admission) sweepLocked(now time.Time) {
	for t, b := range a.buckets {
		if b.tokens+a.rate*now.Sub(b.last).Seconds() >= a.burst {
			delete(a.buckets, t)
		}
	}
}
