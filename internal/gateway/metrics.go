package gateway

import "terradir/internal/telemetry"

// metrics bundles every gateway series registered on the (possibly shared)
// telemetry registry. All names carry the terradir_gw_ prefix so a gateway
// scraped alongside peers is unambiguous.
type metrics struct {
	requestsHTTP *telemetry.Counter
	requestsWire *telemetry.Counter
	shedHTTP     *telemetry.Counter
	shedWire     *telemetry.Counter

	coalesceHits *telemetry.Counter // requests absorbed into an in-flight lookup
	flights      *telemetry.Counter // upstream flights actually launched

	cacheHits   *telemetry.Counter // lookups whose dest had a cached replica set
	cacheMisses *telemetry.Counter

	upstreamQueries *telemetry.Counter // queries sent upstream (primary + hedge + retries)
	upstreamErrors  *telemetry.Counter // local Send failures
	lateResults     *telemetry.Counter // results for cancelled/completed attempts

	hedgeFired *telemetry.Counter
	hedgeWon   *telemetry.Counter // hedge attempt answered first

	failures *telemetry.Counter // lookups failed (timeout, no upstream, upstream fail)
	timeouts *telemetry.Counter

	ejections  *telemetry.Counter // upstream marked unhealthy by the prober
	reinstates *telemetry.Counter // unhealthy upstream answered a probe again
	probes     *telemetry.Counter
	probeMiss  *telemetry.Counter

	latency         *telemetry.Histogram // end-to-end lookup seconds (client view)
	upstreamLatency *telemetry.Histogram // per-attempt upstream seconds (feeds hedge p99)
}

func newMetrics(reg *telemetry.Registry, poolDepth, inflight, cacheLen func() float64) *metrics {
	lat := telemetry.HistogramOpts{Min: 1e-5, Max: 100, BucketsPerDecade: 16}
	m := &metrics{
		requestsHTTP: reg.Counter("terradir_gw_requests_total", "client requests accepted", "surface", "http"),
		requestsWire: reg.Counter("terradir_gw_requests_total", "client requests accepted", "surface", "wire"),
		shedHTTP:     reg.Counter("terradir_gw_shed_total", "requests refused by admission control", "surface", "http"),
		shedWire:     reg.Counter("terradir_gw_shed_total", "requests refused by admission control", "surface", "wire"),

		coalesceHits: reg.Counter("terradir_gw_coalesce_hits_total", "requests absorbed into an already in-flight lookup for the same node"),
		flights:      reg.Counter("terradir_gw_flights_total", "coalesced upstream flights launched"),

		cacheHits:   reg.Counter("terradir_gw_cache_hits_total", "flights whose destination had a cached replica set"),
		cacheMisses: reg.Counter("terradir_gw_cache_misses_total", "flights routed without cached replica information"),

		upstreamQueries: reg.Counter("terradir_gw_upstream_queries_total", "lookup queries sent to upstream peers"),
		upstreamErrors:  reg.Counter("terradir_gw_upstream_errors_total", "local failures sending to an upstream peer"),
		lateResults:     reg.Counter("terradir_gw_late_results_total", "upstream results arriving after their attempt was cancelled or won"),

		hedgeFired: reg.Counter("terradir_gw_hedge_fired_total", "hedge attempts issued after the hedge delay"),
		hedgeWon:   reg.Counter("terradir_gw_hedge_won_total", "flights where the hedge attempt answered first"),

		failures: reg.Counter("terradir_gw_lookup_failures_total", "flights that returned no successful result"),
		timeouts: reg.Counter("terradir_gw_lookup_timeouts_total", "flights that exhausted the upstream timeout"),

		ejections:  reg.Counter("terradir_gw_upstream_ejections_total", "upstreams marked unhealthy by probing"),
		reinstates: reg.Counter("terradir_gw_upstream_reinstates_total", "unhealthy upstreams restored after a successful probe"),
		probes:     reg.Counter("terradir_gw_probes_total", "liveness probes sent"),
		probeMiss:  reg.Counter("terradir_gw_probe_misses_total", "liveness probes that timed out"),

		latency:         reg.Histogram("terradir_gw_latency_seconds", "end-to-end gateway lookup latency", lat),
		upstreamLatency: reg.Histogram("terradir_gw_upstream_latency_seconds", "per-attempt upstream lookup latency", lat),
	}
	reg.GaugeFunc("terradir_gw_upstream_healthy", "healthy upstreams in the pool", poolDepth)
	reg.GaugeFunc("terradir_gw_inflight", "client lookups currently in flight", inflight)
	reg.GaugeFunc("terradir_gw_cache_entries", "routing-cache entries", cacheLen)
	return m
}
