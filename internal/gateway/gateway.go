// Package gateway implements the TerraDir edge tier: a stateless front door
// that terminates cheap client connections (HTTP/JSON and the binary wire
// protocol) and multiplexes them onto a small pool of persistent upstream
// peer connections.
//
// The gateway is not an overlay peer: it owns no namespace nodes, holds no
// replicas, and appears in no membership, ownership, or load table. It
// identifies itself with a reserved client ID (core.ClientID) via the wire
// version-5 hello handshake, and every query it sends carries
// Piggy.From = core.NoServer so peers never mistake it for a replication
// target. What it adds, in four layers:
//
//   - a routing cache fed by the digest/advert/path traffic it already sees
//     in results, steering repeat lookups straight to a replica holder;
//   - single-flight coalescing keyed by destination node — a flash crowd for
//     one name collapses to one upstream query whose result fans out;
//   - hedged requests: after a p99-derived delay the lookup re-issues to a
//     second server from the replica set, first answer wins, the loser's
//     pending entry is cancelled;
//   - per-tenant token-bucket admission control with Retry-After on shed,
//     and graceful drain for rolling restarts.
package gateway

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"terradir/internal/core"
	"terradir/internal/namespace"
	"terradir/internal/overlay"
	"terradir/internal/telemetry"
)

// invalidNode mirrors namespace.Invalid for OnBehalf fields.
const invalidNode = namespace.Invalid

// Options configures a Gateway. Tree, Self, Peers and Wire are required.
type Options struct {
	// Tree is the deployment's shared namespace (same spec/seed as peers).
	Tree *namespace.Tree
	// Self is the gateway's reserved client ID (core.ClientID(ordinal)).
	// Distinct gateways — and wire clients behind this gateway — must use
	// distinct ordinals.
	Self core.ServerID
	// Peers lists the upstream pool members (overlay server IDs). Their
	// addresses live in the Wire transport's address map.
	Peers []core.ServerID
	// Wire is the gateway's client-role transport: its dialed connections
	// reach upstream peers, its listener is the downstream binary-protocol
	// surface. The gateway calls ServeFunc on it; the caller must not.
	Wire *overlay.TCPTransport
	// Send overrides the upstream send path (default: Wire). Tests wrap the
	// transport in an overlay.FaultTransport here.
	Send overlay.Transport
	// Registry receives gateway metrics (default: a fresh registry).
	Registry *telemetry.Registry

	// UpstreamTimeout bounds one coalesced flight end to end, hedge
	// included. Default 3s.
	UpstreamTimeout time.Duration
	// HedgeAfter fixes the hedge delay. 0 selects the adaptive delay: the
	// p99 of observed upstream attempt latency, clamped to
	// [HedgeMin, HedgeMax]. Negative disables hedging.
	HedgeAfter time.Duration
	// HedgeMin/HedgeMax clamp the adaptive hedge delay. Defaults 2ms / 500ms.
	// HedgeMin also serves as the delay while the latency histogram is empty.
	HedgeMin, HedgeMax time.Duration
	// MaxAttempts caps upstream attempts per flight: the primary, the hedge,
	// and further retries every RetryInterval while the flight's budget
	// lasts — a query lost inside the overlay (e.g. routed into a just-dead
	// peer before the cluster noticed) gets re-tried against a different
	// upstream instead of failing the whole coalesced crowd. Default 3.
	MaxAttempts int
	// RetryInterval spaces attempts after the first hedge. Default 250ms.
	RetryInterval time.Duration

	// ProbeInterval is the liveness-probe period (default 500ms; negative
	// disables probing). ProbeTimeout is the per-probe reply deadline
	// (default 250ms); EjectAfter consecutive misses eject an upstream
	// (default 2).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	EjectAfter    int
	// ProbeDest picks the probe destination for a peer — ideally a node the
	// peer owns, so probe success depends only on that peer being alive.
	// Default: the namespace root.
	ProbeDest func(core.ServerID) core.NodeID

	// AdmissionRate is the per-tenant token refill rate in requests/second
	// (0 = unlimited); AdmissionBurst is the bucket depth (default
	// max(rate, 1)).
	AdmissionRate  float64
	AdmissionBurst float64

	// CacheSize bounds the routing cache (default 4096 entries).
	CacheSize int
	// DrainTimeout bounds how long Drain waits for in-flight requests.
	// Default 5s.
	DrainTimeout time.Duration
}

func (o *Options) fill() error {
	if o.Tree == nil {
		return fmt.Errorf("gateway: Options.Tree is required")
	}
	if !core.IsClient(o.Self) {
		return fmt.Errorf("gateway: Options.Self must be a core.ClientID, got %d", o.Self)
	}
	if len(o.Peers) == 0 {
		return fmt.Errorf("gateway: Options.Peers is empty")
	}
	if o.Wire == nil {
		return fmt.Errorf("gateway: Options.Wire is required")
	}
	if o.Send == nil {
		o.Send = o.Wire
	}
	if o.Registry == nil {
		o.Registry = telemetry.NewRegistry()
	}
	if o.UpstreamTimeout <= 0 {
		o.UpstreamTimeout = 3 * time.Second
	}
	if o.HedgeMin <= 0 {
		o.HedgeMin = 2 * time.Millisecond
	}
	if o.HedgeMax <= 0 {
		o.HedgeMax = 500 * time.Millisecond
	}
	if o.HedgeMax < o.HedgeMin {
		o.HedgeMax = o.HedgeMin
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.RetryInterval <= 0 {
		o.RetryInterval = 250 * time.Millisecond
	}
	if o.ProbeInterval == 0 {
		o.ProbeInterval = 500 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 250 * time.Millisecond
	}
	if o.EjectAfter <= 0 {
		o.EjectAfter = 2
	}
	if o.ProbeDest == nil {
		root := o.Tree.Root()
		o.ProbeDest = func(core.ServerID) core.NodeID { return root }
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 4096
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 5 * time.Second
	}
	return nil
}

// Result is one gateway lookup outcome, as surfaced to clients.
type Result struct {
	OK        bool
	Reason    core.FailReason
	Node      core.NodeID
	Name      string
	Hops      int
	Servers   []core.ServerID // replica set from the resolving peer's map
	Latency   time.Duration
	Hedged    bool // a hedge attempt was issued for this flight
	HedgeWon  bool // ... and it answered first
	Coalesced bool // this request rode an already in-flight lookup
}

// attemptReply is one upstream answer, matched to its attempt.
type attemptReply struct {
	res *core.ResultMsg
	qid uint64
	lat time.Duration
}

// pendingAttempt is one outstanding upstream query awaiting its result.
type pendingAttempt struct {
	ch     chan attemptReply
	peer   core.ServerID
	sentAt time.Time
	probe  bool
}

// flight is one coalesced in-flight lookup; waiters block on done.
type flight struct {
	done chan struct{}
	res  Result
	err  error
}

// Gateway is the edge-tier front door. Create with New, then attach the
// HTTP surface with StartHTTP; the wire surface is live from New on.
type Gateway struct {
	opts  Options
	self  core.ServerID
	tree  *namespace.Tree
	wire  *overlay.TCPTransport
	send  overlay.Transport
	reg   *telemetry.Registry
	m     *metrics
	pool  *pool
	cache *routeCache
	adm   *admission

	seq atomic.Uint64 // query-ID source (attempts and probes)

	pmu     sync.Mutex
	pending map[uint64]pendingAttempt

	fmu      sync.Mutex
	flights  map[core.NodeID]*flight
	inflight atomic.Int64 // client requests being served (drain barrier)

	draining atomic.Bool
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	httpSrv *httpServer
}

// New validates opts, wires the gateway into its transport (ServeFunc) and
// starts the upstream prober. The wire surface is immediately live.
func New(opts Options) (*Gateway, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	g := &Gateway{
		opts:    opts,
		self:    opts.Self,
		tree:    opts.Tree,
		wire:    opts.Wire,
		send:    opts.Send,
		reg:     opts.Registry,
		pool:    newPool(opts.Peers),
		cache:   newRouteCache(opts.CacheSize),
		adm:     newAdmission(opts.AdmissionRate, opts.AdmissionBurst),
		pending: make(map[uint64]pendingAttempt),
		flights: make(map[core.NodeID]*flight),
		stop:    make(chan struct{}),
	}
	g.m = newMetrics(g.reg,
		func() float64 { return float64(g.pool.healthyCount()) },
		func() float64 { return float64(g.inflight.Load()) },
		func() float64 { return float64(g.cache.len()) },
	)
	g.wire.ServeFunc(g.onMessage)
	if opts.ProbeInterval > 0 {
		g.wg.Add(1)
		go g.probeLoop()
	}
	return g, nil
}

// Registry returns the gateway's metrics registry.
func (g *Gateway) Registry() *telemetry.Registry { return g.reg }

// Draining reports whether Drain has begun.
func (g *Gateway) Draining() bool { return g.draining.Load() }

// Drain begins a graceful shutdown: new requests are refused (HTTP 503 +
// Retry-After, wire FailShed) while in-flight ones finish, bounded by
// DrainTimeout. It returns once the gateway is idle or the timeout passes.
func (g *Gateway) Drain() {
	g.draining.Store(true)
	deadline := time.Now().Add(g.opts.DrainTimeout)
	for g.inflight.Load() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
}

// Close stops the prober and the HTTP surface and releases every waiter.
// The wire transport is the caller's to close (it owns the listener).
func (g *Gateway) Close() {
	g.stopOnce.Do(func() { close(g.stop) })
	if g.httpSrv != nil {
		g.httpSrv.close()
	}
	g.wg.Wait()
}

// addPending registers an outstanding upstream attempt.
func (g *Gateway) addPending(qid uint64, peer core.ServerID, ch chan attemptReply, probe bool) {
	g.pmu.Lock()
	g.pending[qid] = pendingAttempt{ch: ch, peer: peer, sentAt: time.Now(), probe: probe}
	g.pmu.Unlock()
}

// removePending cancels an attempt: a result arriving afterwards finds no
// entry and is dropped (counted as late). This is the entire cancellation
// mechanism — the overlay has no wire-level cancel, and needs none: the
// abandoned query completes at the peer and its result frame is discarded
// here at the edge.
func (g *Gateway) removePending(qids ...uint64) {
	g.pmu.Lock()
	for _, qid := range qids {
		delete(g.pending, qid)
	}
	g.pmu.Unlock()
}

// onMessage is the transport dispatch: results for our attempts, and
// queries from downstream wire clients. It runs on connection read
// goroutines and must not block.
func (g *Gateway) onMessage(m core.Message) {
	switch msg := m.(type) {
	case *core.ResultMsg:
		g.pmu.Lock()
		a, ok := g.pending[msg.QueryID]
		if ok {
			delete(g.pending, msg.QueryID)
		}
		g.pmu.Unlock()
		if !ok {
			g.m.lateResults.Inc()
			return
		}
		lat := time.Since(a.sentAt)
		g.pool.observeAlive(a.peer)
		g.feedCache(msg)
		if !a.probe {
			g.m.upstreamLatency.Observe(lat.Seconds())
		}
		// Buffered for every possible writer; never blocks.
		a.ch <- attemptReply{res: msg, qid: msg.QueryID, lat: lat}
	case *core.QueryMsg:
		// A downstream wire client's lookup (it hello'd on our listener).
		if !core.IsClient(msg.Source) || msg.Source == g.self {
			return
		}
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			g.serveWire(msg)
		}()
	}
}

// feedCache harvests routing hints from one result: the resolved node's
// replica map, every propagated path entry, and piggybacked adverts.
func (g *Gateway) feedCache(res *core.ResultMsg) {
	if res.OK {
		g.cache.put(res.Dest, res.Map.Servers)
	}
	for _, pe := range res.Path {
		g.cache.put(pe.Node, pe.Map.Servers)
	}
	for _, ad := range res.Piggy.Adverts {
		g.cache.merge(ad.Node, ad.Servers)
	}
}

// LookupName resolves a fully-qualified name through the overlay.
func (g *Gateway) LookupName(ctx context.Context, name string) (Result, error) {
	node := g.tree.Lookup(name)
	if node == invalidNode {
		return Result{}, fmt.Errorf("gateway: no such name %q", name)
	}
	return g.Lookup(ctx, node)
}

// Lookup resolves one node, coalescing with any in-flight lookup for the
// same destination. The flight leader drives the upstream exchange on the
// gateway's own timeout budget (so one impatient client cannot starve the
// crowd behind it); waiters respect their own ctx.
func (g *Gateway) Lookup(ctx context.Context, node core.NodeID) (Result, error) {
	if node < 0 || int(node) >= g.tree.Len() {
		return Result{}, fmt.Errorf("gateway: no such node %d", node)
	}
	g.fmu.Lock()
	if f, ok := g.flights[node]; ok {
		g.fmu.Unlock()
		g.m.coalesceHits.Inc()
		select {
		case <-f.done:
			res := f.res
			res.Coalesced = true
			return res, f.err
		case <-ctx.Done():
			return Result{}, ctx.Err()
		case <-g.stop:
			return Result{}, fmt.Errorf("gateway: closed")
		}
	}
	f := &flight{done: make(chan struct{})}
	g.flights[node] = f
	g.fmu.Unlock()
	g.m.flights.Inc()

	f.res, f.err = g.doLookup(node)

	g.fmu.Lock()
	delete(g.flights, node)
	g.fmu.Unlock()
	close(f.done)
	return f.res, f.err
}

// hedgeDelay derives the hedge trigger: fixed when configured, else the p99
// of observed upstream latency clamped to [HedgeMin, HedgeMax].
func (g *Gateway) hedgeDelay() time.Duration {
	if g.opts.HedgeAfter != 0 {
		return g.opts.HedgeAfter
	}
	d := time.Duration(g.m.upstreamLatency.Quantile(0.99) * float64(time.Second))
	if d < g.opts.HedgeMin {
		d = g.opts.HedgeMin
	}
	if d > g.opts.HedgeMax {
		d = g.opts.HedgeMax
	}
	return d
}

// launchAttempt sends one upstream query for node, preferring cached
// replica holders, and registers it on ch. exclude skips the peer a
// previous attempt used.
func (g *Gateway) launchAttempt(node core.NodeID, ch chan attemptReply, exclude core.ServerID, cached []core.ServerID) (uint64, core.ServerID, bool) {
	peer, ok := g.pool.pick(cached, exclude)
	if !ok {
		return 0, core.NoServer, false
	}
	qid := g.seq.Add(1)
	g.addPending(qid, peer, ch, false)
	q := &core.QueryMsg{
		QueryID:  qid,
		Dest:     node,
		Source:   g.self,
		OnBehalf: invalidNode,
		// From must be NoServer: peers absorb piggybacks into their load and
		// replication tables, and the gateway must never appear there.
		Piggy: core.Piggyback{From: core.NoServer},
	}
	g.m.upstreamQueries.Inc()
	if err := g.send.Send(g.self, peer, q); err != nil {
		g.removePending(qid)
		g.m.upstreamErrors.Inc()
		return 0, core.NoServer, false
	}
	return qid, peer, true
}

// doLookup drives one coalesced flight: primary attempt, hedge after the
// delay, first answer wins, losers cancelled by pending-table removal.
func (g *Gateway) doLookup(node core.NodeID) (Result, error) {
	start := time.Now()
	cached := g.cache.get(node)
	if len(cached) > 0 {
		g.m.cacheHits.Inc()
	} else {
		g.m.cacheMisses.Inc()
	}

	// Capacity for every attempt: replies land without blocking the read
	// goroutine even if this flight has already returned.
	ch := make(chan attemptReply, g.opts.MaxAttempts)
	qid1, peer1, ok := g.launchAttempt(node, ch, core.NoServer, cached)
	if !ok {
		g.m.failures.Inc()
		return Result{}, fmt.Errorf("gateway: no usable upstream")
	}
	attempts := []uint64{qid1}
	defer func() { g.removePending(attempts...) }()

	overall := time.NewTimer(g.opts.UpstreamTimeout)
	defer overall.Stop()

	// hedgeTimer paces the extra attempts: the first after the (p99-derived
	// or fixed) hedge delay, further ones every RetryInterval up to
	// MaxAttempts. Hedging off or a single-peer pool leaves hedgeC nil.
	var hedgeTimer *time.Timer
	var hedgeC <-chan time.Time
	if g.opts.HedgeAfter >= 0 && len(g.pool.ids) > 1 {
		hedgeTimer = time.NewTimer(g.hedgeDelay())
		defer hedgeTimer.Stop()
		hedgeC = hedgeTimer.C
	}

	hedged := false
	lastPeer := peer1
	replies := 0
	for {
		select {
		case a := <-ch:
			replies++
			if !a.res.OK {
				// A failed answer during churn (e.g. the owner died and no
				// survivor has adopted its partition yet) is not final: retry
				// immediately on a different peer while the attempt budget
				// lasts, or keep waiting for an outstanding attempt.
				if len(attempts) < g.opts.MaxAttempts {
					if qid, peer, ok2 := g.launchAttempt(node, ch, lastPeer, cached); ok2 {
						lastPeer = peer
						attempts = append(attempts, qid)
						continue
					}
				}
				if replies < len(attempts) {
					continue // another attempt is still in flight
				}
				// Every attempt answered and none succeeded.
			}
			res := Result{
				OK:      a.res.OK,
				Reason:  a.res.Reason,
				Node:    node,
				Name:    g.tree.Name(node),
				Hops:    a.res.Hops,
				Servers: a.res.Map.Servers,
				Latency: time.Since(start),
				Hedged:  hedged,
			}
			if hedged && a.qid != qid1 {
				res.HedgeWon = true
				g.m.hedgeWon.Inc()
			}
			if !res.OK {
				g.m.failures.Inc()
			}
			g.m.latency.Observe(res.Latency.Seconds())
			return res, nil
		case <-hedgeC:
			if len(attempts) < g.opts.MaxAttempts {
				if qid, peer, ok2 := g.launchAttempt(node, ch, lastPeer, cached); ok2 {
					hedged = true
					lastPeer = peer
					attempts = append(attempts, qid)
					g.m.hedgeFired.Inc()
				}
			}
			if len(attempts) < g.opts.MaxAttempts {
				hedgeTimer.Reset(g.opts.RetryInterval)
			} else {
				hedgeC = nil
			}
		case <-overall.C:
			g.m.failures.Inc()
			g.m.timeouts.Inc()
			g.m.latency.Observe(time.Since(start).Seconds())
			return Result{}, fmt.Errorf("gateway: lookup %d timed out after %s", node, g.opts.UpstreamTimeout)
		case <-g.stop:
			return Result{}, fmt.Errorf("gateway: closed")
		}
	}
}

// serveWire answers one downstream binary-protocol lookup: admission by
// wire client ID, then the same coalesced/hedged path as HTTP, with the
// outcome returned as a ResultMsg over the client's hello-registered route.
func (g *Gateway) serveWire(q *core.QueryMsg) {
	reply := &core.ResultMsg{QueryID: q.QueryID, Dest: q.Dest}
	if g.draining.Load() {
		reply.Reason = core.FailShed
		g.m.shedWire.Inc()
		g.replyWire(q.Source, reply)
		return
	}
	if ok, _ := g.adm.allow(fmt.Sprintf("wire:%d", q.Source)); !ok {
		reply.Reason = core.FailShed
		g.m.shedWire.Inc()
		g.replyWire(q.Source, reply)
		return
	}
	g.inflight.Add(1)
	defer g.inflight.Add(-1)
	g.m.requestsWire.Inc()
	ctx, cancel := context.WithTimeout(context.Background(), g.opts.UpstreamTimeout+time.Second)
	res, err := g.Lookup(ctx, q.Dest)
	cancel()
	if err != nil {
		reply.Reason = core.FailNoRoute
	} else {
		reply.OK = res.OK
		reply.Reason = res.Reason
		reply.Hops = res.Hops
		reply.Map = core.NodeMap{Servers: res.Servers}
	}
	g.replyWire(q.Source, reply)
}

func (g *Gateway) replyWire(to core.ServerID, res *core.ResultMsg) {
	if err := g.wire.Send(g.self, to, res); err != nil {
		g.m.upstreamErrors.Inc()
	}
}
