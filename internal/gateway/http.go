package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"time"
)

// httpServer is the gateway's HTTP/JSON surface:
//
//	GET /lookup?name=/n0/n1  ->  200 lookupResponse (ok true or false)
//	                             404 unknown name
//	                             429 shed (Retry-After set)
//	                             503 draining (Retry-After set)
//	                             504 upstream timeout
//	GET /healthz             ->  200 ok, 503 once draining (LB ejection)
//	GET /metrics             ->  Prometheus text
type httpServer struct {
	g   *Gateway
	srv *http.Server
	ln  net.Listener
}

// lookupResponse is the JSON body for /lookup.
type lookupResponse struct {
	Name      string  `json:"name"`
	Node      int64   `json:"node"`
	OK        bool    `json:"ok"`
	Reason    string  `json:"reason,omitempty"`
	Hops      int     `json:"hops"`
	LatencyMS float64 `json:"latency_ms"`
	Servers   []int32 `json:"servers,omitempty"`
	Hedged    bool    `json:"hedged"`
	HedgeWon  bool    `json:"hedge_won,omitempty"`
	Coalesced bool    `json:"coalesced"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// StartHTTP binds the HTTP/JSON surface on addr and returns the bound
// address. Call once; Close (or Drain+Close) tears it down.
func (g *Gateway) StartHTTP(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("gateway: http listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /lookup", g.handleLookup)
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		g.reg.WritePrometheus(w)
	})
	s := &httpServer{
		g:  g,
		ln: ln,
		srv: &http.Server{
			Handler: mux,
			// Slowloris hardening, mirroring the telemetry admin server: a
			// client trickling its headers cannot pin a connection forever.
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       10 * time.Second,
			IdleTimeout:       60 * time.Second,
		},
	}
	g.httpSrv = s
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		s.srv.Serve(ln) // returns on close
	}()
	return ln.Addr().String(), nil
}

func (s *httpServer) close() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if s.srv.Shutdown(ctx) != nil {
		s.srv.Close()
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// tenantOf identifies the admission-control tenant: the X-Tenant header
// when present, else the client IP.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if g.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

func (g *Gateway) handleLookup(w http.ResponseWriter, r *http.Request) {
	if g.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "draining"})
		return
	}
	if ok, retry := g.adm.allow(tenantOf(r)); !ok {
		g.m.shedHTTP.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(retry.Seconds()))))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "rate limit exceeded"})
		return
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing name parameter"})
		return
	}
	node := g.tree.Lookup(name)
	if node == invalidNode {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("no such name %q", name)})
		return
	}
	g.inflight.Add(1)
	defer g.inflight.Add(-1)
	g.m.requestsHTTP.Inc()
	ctx, cancel := context.WithTimeout(r.Context(), g.opts.UpstreamTimeout+time.Second)
	res, err := g.Lookup(ctx, node)
	cancel()
	if err != nil {
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: err.Error()})
		return
	}
	body := lookupResponse{
		Name:      res.Name,
		Node:      int64(res.Node),
		OK:        res.OK,
		Hops:      res.Hops,
		LatencyMS: float64(res.Latency) / float64(time.Millisecond),
		Hedged:    res.Hedged,
		HedgeWon:  res.HedgeWon,
		Coalesced: res.Coalesced,
	}
	if !res.OK {
		body.Reason = res.Reason.String()
	}
	for _, s := range res.Servers {
		body.Servers = append(body.Servers, int32(s))
	}
	writeJSON(w, http.StatusOK, body)
}
