package gateway

import (
	"sync"

	"terradir/internal/core"
)

// maxCachedServers caps one cache entry's replica set — advert unions must
// not grow an entry without bound when replicas churn.
const maxCachedServers = 8

// rcEntry is one cache slot: a destination node, its last-known replica set,
// and the CLOCK reference bit.
type rcEntry struct {
	node    core.NodeID
	servers []core.ServerID
	ref     bool
}

// routeCache is the gateway-side routing cache: destination node → the
// servers last known to host it (owner plus soft-state replicas). It is fed
// entirely by traffic the gateway already sees — result maps, propagated
// path entries, and piggybacked replica adverts — and steers repeat lookups
// straight to an advertised holder so they resolve in one upstream hop.
// Entries are hints, never authoritative: a stale entry costs at most one
// redirected hop inside the overlay, exactly like any stale soft state.
//
// Eviction is CLOCK second-chance: a get sets the slot's reference bit, and
// the hand sweeps past referenced slots (clearing the bit) to evict the
// first unreferenced one. Under the Zipf traffic gateways see, this keeps
// the hot head resident where random eviction kept churning it out — the
// same policy the overlay's resident hosted cache uses, at hint scale.
type routeCache struct {
	mu    sync.Mutex
	max   int
	slots []rcEntry
	idx   map[core.NodeID]int
	hand  int
}

func newRouteCache(max int) *routeCache {
	return &routeCache{
		max: max,
		idx: make(map[core.NodeID]int, 64),
	}
}

// get returns the cached replica set for node (nil when unknown) and grants
// the entry its second chance. The returned slice is shared — callers must
// not mutate it.
func (c *routeCache) get(node core.NodeID) []core.ServerID {
	c.mu.Lock()
	defer c.mu.Unlock()
	i, ok := c.idx[node]
	if !ok {
		return nil
	}
	c.slots[i].ref = true
	return c.slots[i].servers
}

func (c *routeCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.slots)
}

// put replaces node's replica set (newest wins — result maps are complete).
func (c *routeCache) put(node core.NodeID, servers []core.ServerID) {
	if len(servers) == 0 {
		return
	}
	if len(servers) > maxCachedServers {
		servers = servers[:maxCachedServers]
	}
	own := make([]core.ServerID, len(servers))
	copy(own, servers)
	c.mu.Lock()
	defer c.mu.Unlock()
	if i, ok := c.idx[node]; ok {
		c.slots[i].servers = own
		c.slots[i].ref = true
		return
	}
	c.insertLocked(node, own)
}

// merge unions servers into node's entry (adverts are incremental: they
// announce newly created replicas, not the full set).
func (c *routeCache) merge(node core.NodeID, servers []core.ServerID) {
	if len(servers) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var cur []core.ServerID
	i, have := c.idx[node]
	if have {
		cur = c.slots[i].servers
	} else {
		cur = make([]core.ServerID, 0, len(servers))
	}
next:
	for _, s := range servers {
		for _, h := range cur {
			if h == s {
				continue next
			}
		}
		if len(cur) >= maxCachedServers {
			break
		}
		cur = append(cur, s)
	}
	if have {
		c.slots[i].servers = cur
		c.slots[i].ref = true
		return
	}
	c.insertLocked(node, cur)
}

// insertLocked places a new entry, evicting via the clock hand when full.
// New entries start unreferenced — they earn their second chance when a get
// or a refresh actually touches them, so a one-shot name cannot displace a
// proven-hot one.
func (c *routeCache) insertLocked(node core.NodeID, servers []core.ServerID) {
	if len(c.slots) < c.max {
		c.idx[node] = len(c.slots)
		c.slots = append(c.slots, rcEntry{node: node, servers: servers})
		return
	}
	// Sweep: clear reference bits until an unreferenced slot turns up. Two
	// full revolutions suffice — the first clears every bit.
	for sweep := 0; sweep < 2*len(c.slots); sweep++ {
		s := &c.slots[c.hand]
		if !s.ref {
			delete(c.idx, s.node)
			c.idx[node] = c.hand
			*s = rcEntry{node: node, servers: servers}
			c.hand = (c.hand + 1) % len(c.slots)
			return
		}
		s.ref = false
		c.hand = (c.hand + 1) % len(c.slots)
	}
}

// drop removes a server from every cached entry — called when the prober
// ejects an upstream, so cache-directed picks stop steering at a dead peer
// even before fresh results overwrite the entries.
func (c *routeCache) drop(server core.ServerID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 0; i < len(c.slots); {
		servers := c.slots[i].servers
		w := 0
		for _, s := range servers {
			if s != server {
				servers[w] = s
				w++
			}
		}
		if w > 0 {
			c.slots[i].servers = servers[:w]
			i++
			continue
		}
		// Entry emptied: swap-remove the slot and fix the moved entry's index.
		delete(c.idx, c.slots[i].node)
		last := len(c.slots) - 1
		if i != last {
			c.slots[i] = c.slots[last]
			c.idx[c.slots[i].node] = i
		}
		c.slots = c.slots[:last]
	}
	if len(c.slots) > 0 {
		c.hand %= len(c.slots)
	} else {
		c.hand = 0
	}
}
