package gateway

import (
	"sync"

	"terradir/internal/core"
)

// maxCachedServers caps one cache entry's replica set — advert unions must
// not grow an entry without bound when replicas churn.
const maxCachedServers = 8

// routeCache is the gateway-side routing cache: destination node → the
// servers last known to host it (owner plus soft-state replicas). It is fed
// entirely by traffic the gateway already sees — result maps, propagated
// path entries, and piggybacked replica adverts — and steers repeat lookups
// straight to an advertised holder so they resolve in one upstream hop.
// Entries are hints, never authoritative: a stale entry costs at most one
// redirected hop inside the overlay, exactly like any stale soft state.
//
// Eviction is random (map iteration order) once the bound is hit: the cache
// is a working set of hot names, and under Zipf traffic a randomly evicted
// hot entry is immediately re-fed by its next result.
type routeCache struct {
	mu  sync.Mutex
	max int
	m   map[core.NodeID][]core.ServerID
}

func newRouteCache(max int) *routeCache {
	return &routeCache{max: max, m: make(map[core.NodeID][]core.ServerID, 64)}
}

// get returns the cached replica set for node (nil when unknown). The
// returned slice is shared — callers must not mutate it.
func (c *routeCache) get(node core.NodeID) []core.ServerID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[node]
}

func (c *routeCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// put replaces node's replica set (newest wins — result maps are complete).
func (c *routeCache) put(node core.NodeID, servers []core.ServerID) {
	if len(servers) == 0 {
		return
	}
	if len(servers) > maxCachedServers {
		servers = servers[:maxCachedServers]
	}
	own := make([]core.ServerID, len(servers))
	copy(own, servers)
	c.mu.Lock()
	c.evictForLocked(node)
	c.m[node] = own
	c.mu.Unlock()
}

// merge unions servers into node's entry (adverts are incremental: they
// announce newly created replicas, not the full set).
func (c *routeCache) merge(node core.NodeID, servers []core.ServerID) {
	if len(servers) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.m[node]
	if cur == nil {
		c.evictForLocked(node)
		cur = make([]core.ServerID, 0, len(servers))
	}
next:
	for _, s := range servers {
		for _, have := range cur {
			if have == s {
				continue next
			}
		}
		if len(cur) >= maxCachedServers {
			break
		}
		cur = append(cur, s)
	}
	c.m[node] = cur
}

// drop removes a server from every cached entry — called when the prober
// ejects an upstream, so cache-directed picks stop steering at a dead peer
// even before fresh results overwrite the entries.
func (c *routeCache) drop(server core.ServerID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for node, servers := range c.m {
		w := 0
		for _, s := range servers {
			if s != server {
				servers[w] = s
				w++
			}
		}
		if w == 0 {
			delete(c.m, node)
		} else {
			c.m[node] = servers[:w]
		}
	}
}

// evictForLocked makes room for one new key when the cache is full.
func (c *routeCache) evictForLocked(adding core.NodeID) {
	if len(c.m) < c.max {
		return
	}
	if _, exists := c.m[adding]; exists {
		return
	}
	for k := range c.m {
		delete(c.m, k)
		return
	}
}
