package gateway

import (
	"sync/atomic"
	"time"

	"terradir/internal/core"
)

// upstream is one pool member. healthy is flipped only by the prober;
// pickers read it lock-free.
type upstream struct {
	id       core.ServerID
	healthy  atomic.Bool
	probing  atomic.Bool // a probe for this peer is in flight
	missed   atomic.Int32
	lastSeen atomic.Int64 // unix nanos of the last successful probe/result
}

// pool is the gateway's set of upstream peers. Selection prefers
// cache-advertised replica holders, then rotates round-robin over healthy
// members; when everything looks dead it falls back to any member (trying a
// possibly-dead peer beats shedding — the hedge covers the miss).
type pool struct {
	ids []core.ServerID // stable order
	ups map[core.ServerID]*upstream
	rr  atomic.Uint64
}

func newPool(peers []core.ServerID) *pool {
	p := &pool{ups: make(map[core.ServerID]*upstream, len(peers))}
	for _, id := range peers {
		if _, dup := p.ups[id]; dup {
			continue
		}
		u := &upstream{id: id}
		u.healthy.Store(true)
		p.ups[id] = u
		p.ids = append(p.ids, id)
	}
	return p
}

// healthyCount is the pool-depth gauge.
func (p *pool) healthyCount() int {
	n := 0
	for _, u := range p.ups {
		if u.healthy.Load() {
			n++
		}
	}
	return n
}

// pick chooses one upstream, preferring healthy members of preferred (the
// cached replica set for the destination), then any healthy member in
// round-robin order, then — as a last resort — any member at all. exclude
// (core.NoServer for none) skips a peer already tried by this flight.
func (p *pool) pick(preferred []core.ServerID, exclude core.ServerID) (core.ServerID, bool) {
	for _, id := range preferred {
		if id == exclude {
			continue
		}
		if u, ok := p.ups[id]; ok && u.healthy.Load() {
			return id, true
		}
	}
	n := len(p.ids)
	if n == 0 {
		return core.NoServer, false
	}
	start := int(p.rr.Add(1) - 1)
	for i := 0; i < n; i++ {
		id := p.ids[(start+i)%n]
		if id != exclude && p.ups[id].healthy.Load() {
			return id, true
		}
	}
	for i := 0; i < n; i++ {
		id := p.ids[(start+i)%n]
		if id != exclude {
			return id, true
		}
	}
	return core.NoServer, false
}

// observeAlive records evidence of life from real traffic (an upstream
// answered a query). It resets the probe-miss streak but never reinstates an
// ejected peer by itself — reinstatement is the prober's call, so one stale
// in-flight reply can't resurrect a dead peer.
func (p *pool) observeAlive(id core.ServerID) {
	if u, ok := p.ups[id]; ok {
		u.missed.Store(0)
		u.lastSeen.Store(time.Now().UnixNano())
	}
}

// probeLoop probes every pool member each interval and flips health state:
// ejectAfter consecutive misses ejects, one hit reinstates. Runs until stop
// closes. Probes ride the same pending-reply table as real lookups (the
// prober owns its reply channels), so a probe reply is indistinguishable
// from a fast lookup on the wire.
func (g *Gateway) probeLoop() {
	defer g.wg.Done()
	ticker := time.NewTicker(g.opts.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-ticker.C:
		}
		for _, id := range g.pool.ids {
			u := g.pool.ups[id]
			if !u.probing.CompareAndSwap(false, true) {
				continue // previous probe still in flight
			}
			g.wg.Add(1)
			go func(u *upstream) {
				defer g.wg.Done()
				defer u.probing.Store(false)
				g.probeOnce(u)
			}(u)
		}
	}
}

// probeOnce sends one liveness lookup to u and applies the hit/miss state
// machine. The probe destination is a node the peer can resolve locally
// (Options.ProbeDest), so probe success depends only on the probed peer.
func (g *Gateway) probeOnce(u *upstream) {
	qid := g.seq.Add(1)
	ch := make(chan attemptReply, 1)
	g.addPending(qid, u.id, ch, true)
	defer g.removePending(qid)
	g.m.probes.Inc()
	q := &core.QueryMsg{
		QueryID:  qid,
		Dest:     g.opts.ProbeDest(u.id),
		Source:   g.self,
		OnBehalf: invalidNode,
		Piggy:    core.Piggyback{From: core.NoServer},
	}
	if err := g.send.Send(g.self, u.id, q); err != nil {
		g.probeMissed(u)
		return
	}
	timer := time.NewTimer(g.opts.ProbeTimeout)
	defer timer.Stop()
	select {
	case <-ch:
		u.missed.Store(0)
		u.lastSeen.Store(time.Now().UnixNano())
		if !u.healthy.Load() {
			u.healthy.Store(true)
			g.m.reinstates.Inc()
		}
	case <-timer.C:
		g.probeMissed(u)
	case <-g.stop:
	}
}

func (g *Gateway) probeMissed(u *upstream) {
	g.m.probeMiss.Inc()
	if int(u.missed.Add(1)) >= g.opts.EjectAfter && u.healthy.Load() {
		u.healthy.Store(false)
		g.m.ejections.Inc()
		// Scrub the dead peer from cached replica sets so cache-directed
		// picks stop steering at it immediately.
		g.cache.drop(u.id)
	}
}
