package gateway

import (
	"context"
	"testing"
	"time"

	"terradir/internal/core"
)

// TestHedgeSlowPeerWinsAndCancels is the hedged-read acceptance test: with
// peer 0's outbound path fault-injected to 100ms of latency and the routing
// cache steering the primary attempt at it, the hedge (fired after a fixed
// 10ms) reaches a fast peer and wins every flight. The losing attempt is
// cancelled by pending-table removal: when the slow answer eventually lands
// it is counted late and dropped, and the gateway holds no pending entries or
// flights afterwards — nothing leaks.
func TestHedgeSlowPeerWinsAndCancels(t *testing.T) {
	c := startCluster(t, 3, false, 0)
	// Everything peer 0 sends — forwarded queries and its own replies — is
	// delayed well past the hedge trigger (but under the probe timeout, so
	// the prober keeps it healthy and pickable).
	c.faults[0].SetLatency(100*time.Millisecond, 0)
	g := c.startGateway(func(o *Options) {
		o.HedgeAfter = 10 * time.Millisecond
		o.ProbeTimeout = 300 * time.Millisecond
	})
	waitReady(t, g)

	// Destinations the fast peers own; the cache pins the primary pick to
	// the slow peer so every flight must hedge to win quickly.
	var dests []core.NodeID
	for nd, o := range c.owner {
		if o != 0 && len(dests) < 5 {
			dests = append(dests, core.NodeID(nd))
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, nd := range dests {
		g.cache.put(nd, []core.ServerID{0})
		start := time.Now()
		res, err := g.Lookup(ctx, nd)
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			t.Fatalf("lookup %d failed: %s", nd, res.Reason)
		}
		if !res.Hedged || !res.HedgeWon {
			t.Fatalf("lookup %d: hedged=%v hedgeWon=%v, want both (took %s)",
				nd, res.Hedged, res.HedgeWon, time.Since(start))
		}
		if res.Latency > 90*time.Millisecond {
			t.Fatalf("hedged lookup took %s, slower than the slow path", res.Latency)
		}
	}

	snap := g.Registry().Snapshot()
	if snap["terradir_gw_hedge_fired_total"] < float64(len(dests)) {
		t.Fatalf("hedge_fired %g < %d flights", snap["terradir_gw_hedge_fired_total"], len(dests))
	}
	if snap["terradir_gw_hedge_won_total"] < float64(len(dests)) {
		t.Fatalf("hedge_won %g < %d flights", snap["terradir_gw_hedge_won_total"], len(dests))
	}

	// The cancelled (slow) attempts' answers arrive ~100ms later, find no
	// pending entry, and are dropped as late.
	waitFor(t, 5*time.Second, "late results from cancelled attempts", func() bool {
		return g.Registry().Snapshot()["terradir_gw_late_results_total"] >= float64(len(dests))
	})

	// No leak: every lookup pending entry was removed (only transient probe
	// entries may exist) and no flight is outstanding.
	waitFor(t, 2*time.Second, "pending table drained", func() bool {
		g.pmu.Lock()
		lookups := 0
		for _, a := range g.pending {
			if !a.probe {
				lookups++
			}
		}
		g.pmu.Unlock()
		return lookups == 0
	})
	g.fmu.Lock()
	nFlights := len(g.flights)
	g.fmu.Unlock()
	if nFlights != 0 {
		t.Fatalf("%d flights still registered after all lookups returned", nFlights)
	}
}

// TestHedgeDisabled pins the negative: with HedgeAfter < 0 a slow upstream
// just makes the lookup slow — no hedge fires.
func TestHedgeDisabled(t *testing.T) {
	c := startCluster(t, 2, false, 0)
	c.faults[0].SetLatency(50*time.Millisecond, 0)
	g := c.startGateway(func(o *Options) {
		o.HedgeAfter = -1
		o.ProbeTimeout = 300 * time.Millisecond
	})
	waitReady(t, g)

	nd := c.ownedNode(1)
	g.cache.put(nd, []core.ServerID{0})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := g.Lookup(ctx, nd)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Hedged {
		t.Fatalf("ok=%v hedged=%v, want ok and unhedged", res.OK, res.Hedged)
	}
	if res.Latency < 50*time.Millisecond {
		t.Fatalf("lookup took %s, should have ridden the slow path", res.Latency)
	}
	if fired := g.Registry().Snapshot()["terradir_gw_hedge_fired_total"]; fired != 0 {
		t.Fatalf("hedge fired %g times with hedging disabled", fired)
	}
}

// TestAdaptiveHedgeDelay exercises the p99-derived delay: empty histogram
// clamps to HedgeMin, observed latency moves it, HedgeMax caps it.
func TestAdaptiveHedgeDelay(t *testing.T) {
	c := startCluster(t, 2, false, 0)
	g := c.startGateway(func(o *Options) {
		o.HedgeAfter = 0 // adaptive
		o.HedgeMin = 5 * time.Millisecond
		o.HedgeMax = 40 * time.Millisecond
		o.ProbeInterval = -1 // no probes: the histogram stays ours to feed
	})
	if d := g.hedgeDelay(); d != 5*time.Millisecond {
		t.Fatalf("empty-histogram hedge delay %s, want HedgeMin", d)
	}
	for i := 0; i < 1000; i++ {
		g.m.upstreamLatency.Observe(0.010)
	}
	if d := g.hedgeDelay(); d < 5*time.Millisecond || d > 40*time.Millisecond {
		t.Fatalf("hedge delay %s outside [HedgeMin, HedgeMax]", d)
	}
	for i := 0; i < 1000; i++ {
		g.m.upstreamLatency.Observe(3.0)
	}
	if d := g.hedgeDelay(); d != 40*time.Millisecond {
		t.Fatalf("hedge delay %s, want HedgeMax clamp", d)
	}
}
