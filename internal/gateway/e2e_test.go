package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"terradir/internal/core"
	"terradir/internal/rng"
	"terradir/internal/workload"
)

// TestGatewayE2E is the PR's acceptance test: a live 3-peer TCP overlay with
// fast SWIM membership behind one gateway's HTTP surface.
//
// Phase 1 — flash crowd: 64 barrier-released requests for one hot name
// coalesce, so upstream queries stay far below client requests.
//
// Phase 2 — churn: 1000 Zipf-distributed lookups with peer 2 crashed
// mid-run. Hedges and retries cover the detection blind window and the
// survivors' partition takeover; client-visible success stays ≥ 99%.
//
// All assertions go through the telemetry registry; run under -race in CI.
func TestGatewayE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e: skipping in -short mode")
	}
	// 5ms of service time per query keeps flights open long enough for the
	// flash crowd to coalesce over real HTTP.
	c := startCluster(t, 3, true, 5*time.Millisecond)
	g := c.startGateway(func(o *Options) {
		o.HedgeAfter = 15 * time.Millisecond
		o.MaxAttempts = 6
		o.RetryInterval = 200 * time.Millisecond
		o.UpstreamTimeout = 4 * time.Second
		o.EjectAfter = 2
	})
	waitReady(t, g)
	addr, err := g.StartHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := &http.Client{Timeout: 10 * time.Second}
	lookup := func(name string) (int, lookupResponse, error) {
		resp, err := cl.Get(fmt.Sprintf("http://%s/lookup?name=%s", addr, name))
		if err != nil {
			return 0, lookupResponse{}, err
		}
		defer resp.Body.Close()
		var body lookupResponse
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			return resp.StatusCode, lookupResponse{}, err
		}
		return resp.StatusCode, body, nil
	}

	// ---- Phase 1: flash crowd on one hot name (owned by a survivor). ----
	hot := c.ownedNode(0)
	hotName := c.tree.Name(hot)
	before := g.Registry().Snapshot()
	const crowd = 64
	start := make(chan struct{})
	var wg sync.WaitGroup
	var crowdOK atomic.Int64
	for i := 0; i < crowd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			status, body, err := lookup(hotName)
			if err == nil && status == http.StatusOK && body.OK {
				crowdOK.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if crowdOK.Load() != crowd {
		t.Fatalf("flash crowd: %d/%d succeeded", crowdOK.Load(), crowd)
	}
	mid := g.Registry().Snapshot()
	hits := mid["terradir_gw_coalesce_hits_total"] - before["terradir_gw_coalesce_hits_total"]
	upstream := mid["terradir_gw_upstream_queries_total"] - before["terradir_gw_upstream_queries_total"]
	t.Logf("flash crowd: %d requests, %g coalesce hits, %g upstream queries", crowd, hits, upstream)
	if hits < 1 {
		t.Fatal("flash crowd produced no coalesce hits")
	}
	if upstream >= crowd/2 {
		t.Fatalf("upstream queries %g not ≪ %d client requests", upstream, crowd)
	}

	// ---- Phase 2: 1000 Zipf lookups, peer 2 crashed mid-run. ----
	const total = 1000
	const crashAt = 300
	w := workload.UZipf(c.tree.Len(), rng.New(42), 0.9, 1000, 60)
	names := make([]string, total)
	for i := range names {
		names[i] = c.tree.Name(core.NodeID(w.Dest(float64(i) * 0.001)))
	}

	var issued, succeeded, failed atomic.Int64
	var crashOnce sync.Once
	work := make(chan string, total)
	for _, n := range names {
		work <- n
	}
	close(work)
	var wg2 sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			for name := range work {
				if issued.Add(1) == crashAt {
					crashOnce.Do(func() {
						t.Logf("crashing peer 2 after %d requests", crashAt)
						c.crash(2)
					})
				}
				status, body, err := lookup(name)
				if err == nil && status == http.StatusOK && body.OK {
					succeeded.Add(1)
				} else {
					failed.Add(1)
				}
			}
		}()
	}
	wg2.Wait()

	snap := g.Registry().Snapshot()
	okRate := float64(succeeded.Load()) / float64(total)
	t.Logf("churn run: %d/%d ok (%.2f%%), hedges fired=%g won=%g, upstream queries=%g, ejections=%g, late=%g",
		succeeded.Load(), total, 100*okRate,
		snap["terradir_gw_hedge_fired_total"], snap["terradir_gw_hedge_won_total"],
		snap["terradir_gw_upstream_queries_total"],
		snap["terradir_gw_upstream_ejections_total"], snap["terradir_gw_late_results_total"])
	if okRate < 0.99 {
		t.Fatalf("success rate %.4f < 0.99 across the crash", okRate)
	}
	if snap["terradir_gw_hedge_fired_total"] < 1 {
		t.Fatal("no hedges fired across a peer crash")
	}
	if snap["terradir_gw_upstream_ejections_total"] < 1 {
		t.Fatal("prober never ejected the crashed peer")
	}
}
