package core

// StateRow describes the state a server maintains for one class of
// server-node relationship — the rows of the paper's Table 1.
type StateRow struct {
	Relationship string
	Name         bool // the node's fully qualified name
	Map          bool // a (bounded) set of servers hosting the node
	Data         bool // the node's application data
	Meta         bool // node annotations (attributes)
	Context      bool // neighbor maps guaranteeing incremental progress
}

// StateMatrix returns the server-node relationship table (paper Table 1).
// TestStateMatrixMatchesImplementation asserts that live Peer state agrees
// with every cell, so this is generated documentation, not a transcript.
func StateMatrix() []StateRow {
	return []StateRow{
		{Relationship: "Owned", Name: true, Map: true, Data: true, Meta: true, Context: true},
		{Relationship: "Replicated", Name: true, Map: true, Data: false, Meta: true, Context: true},
		{Relationship: "Neighboring", Name: true, Map: true, Data: false, Meta: false, Context: false},
		{Relationship: "Cached", Name: true, Map: true, Data: false, Meta: false, Context: false},
	}
}
