package core

import (
	"math"
	"testing"
)

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidationRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"Thigh zero", func(c *Config) { c.Thigh = 0 }},
		{"Thigh above one", func(c *Config) { c.Thigh = 1.5 }},
		{"DeltaMin negative", func(c *Config) { c.DeltaMin = -0.1 }},
		{"DeltaMin above one", func(c *Config) { c.DeltaMin = 1.1 }},
		{"ReplFactor negative", func(c *Config) { c.ReplFactor = -1 }},
		{"MapSize zero", func(c *Config) { c.MapSize = 0 }},
		{"CacheSlots negative", func(c *Config) { c.CacheSlots = -1 }},
		{"MaxHops zero", func(c *Config) { c.MaxHops = 0 }},
		{"MaxPathEntries negative", func(c *Config) { c.MaxPathEntries = -1 }},
		{"WeightHalfLife zero", func(c *Config) { c.WeightHalfLife = 0 }},
		{"ReplicationAttempts zero", func(c *Config) { c.ReplicationAttempts = 0 }},
		{"ReplicationCooldown negative", func(c *Config) { c.ReplicationCooldown = -1 }},
		{"ProbeTimeout zero", func(c *Config) { c.ProbeTimeout = 0 }},
		{"MaintainInterval zero", func(c *Config) { c.MaintainInterval = 0 }},
		{"DigestBitsPerNode zero", func(c *Config) { c.DigestBitsPerNode = 0 }},
		{"DigestHashes zero", func(c *Config) { c.DigestHashes = 0 }},
		{"MaxDigests negative", func(c *Config) { c.MaxDigests = -1 }},
		{"DigestScanPerHop negative", func(c *Config) { c.DigestScanPerHop = -1 }},
		{"DigestsPerMessage negative", func(c *Config) { c.DigestsPerMessage = -1 }},
		{"DigestShortcutLevels negative", func(c *Config) { c.DigestShortcutLevels = -1 }},
		{"MaxKnownLoads zero", func(c *Config) { c.MaxKnownLoads = 0 }},
		{"NaN Thigh", func(c *Config) { c.Thigh = math.NaN() }},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestConfigFractionalReplFactorValid(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReplFactor = 0.125 // §4.4 sweep value
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScaleCacheForServers(t *testing.T) {
	cases := map[int]int{
		1:     2,
		2:     2,
		64:    12, // 2^6 servers -> 12 slots
		1000:  20,
		1024:  20,
		16384: 28, // 2^14 -> 28
	}
	for n, want := range cases {
		if got := ScaleCacheForServers(n); got != want {
			t.Errorf("ScaleCacheForServers(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestScaleMapSizeForServers(t *testing.T) {
	cases := map[int]int{
		1:     2,
		64:    2,  // 2^6 -> 2
		1024:  6,  // 2^10 -> 6
		16384: 10, // 2^14 -> 10 (paper Fig. 9: 2..10)
	}
	for n, want := range cases {
		if got := ScaleMapSizeForServers(n); got != want {
			t.Errorf("ScaleMapSizeForServers(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestStateMatrixMatchesTable1(t *testing.T) {
	rows := StateMatrix()
	if len(rows) != 4 {
		t.Fatalf("expected 4 relationships, got %d", len(rows))
	}
	byName := map[string]StateRow{}
	for _, r := range rows {
		byName[r.Relationship] = r
	}
	owned := byName["Owned"]
	if !(owned.Name && owned.Map && owned.Data && owned.Meta && owned.Context) {
		t.Fatalf("Owned row wrong: %+v", owned)
	}
	repl := byName["Replicated"]
	if !(repl.Name && repl.Map && repl.Meta && repl.Context) || repl.Data {
		t.Fatalf("Replicated row wrong: %+v", repl)
	}
	for _, rel := range []string{"Neighboring", "Cached"} {
		r := byName[rel]
		if !(r.Name && r.Map) || r.Data || r.Meta || r.Context {
			t.Fatalf("%s row wrong: %+v", rel, r)
		}
	}
}
