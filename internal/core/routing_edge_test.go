package core

import (
	"testing"

	"terradir/internal/namespace"
)

// wideNet builds a mini net over an arity-4 tree (non-binary fanout).
func wideNet(t *testing.T, cfg Config) (*miniNet, *namespace.Tree) {
	tree := namespace.NewBalanced(4, 4) // 85 nodes
	own := make([][]NodeID, 5)
	for i := 0; i < tree.Len(); i++ {
		s := i % 5
		own[s] = append(own[s], NodeID(i))
	}
	return newMiniNet(t, tree, own, cfg), tree
}

func TestRoutingWideTreeAllPairs(t *testing.T) {
	n, tree := wideNet(t, DefaultConfig())
	for src := ServerID(0); src < 5; src++ {
		for d := 0; d < tree.Len(); d += 3 {
			res := n.lookup(src, NodeID(d))
			if res == nil || !res.OK {
				t.Fatalf("lookup %d->%d failed: %+v", src, d, res)
			}
		}
	}
}

func TestRoutingZeroCacheSlots(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheSlots = 0 // caching "enabled" but no capacity
	n, tree := wideNet(t, cfg)
	res := n.lookup(0, NodeID(tree.Len()-1))
	if res == nil || !res.OK {
		t.Fatalf("lookup failed: %+v", res)
	}
	for _, p := range n.peers {
		if p.CacheLen() != 0 {
			t.Fatal("cache grew despite zero slots")
		}
	}
}

func TestRoutingZeroPathEntries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPathEntries = 0 // unbounded per extendPath's documented contract
	n, tree := wideNet(t, cfg)
	res := n.lookup(1, NodeID(tree.Len()-2))
	if res == nil || !res.OK {
		t.Fatalf("lookup failed: %+v", res)
	}
}

func TestRoutingMapSizeOne(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MapSize = 1
	n, tree := wideNet(t, cfg)
	for d := 0; d < tree.Len(); d += 7 {
		res := n.lookup(2, NodeID(d))
		if res == nil || !res.OK {
			t.Fatalf("lookup ->%d failed with Msize=1: %+v", d, res)
		}
	}
}

func TestRoutingSingleServerOwnsAll(t *testing.T) {
	tree := namespace.NewBalanced(2, 5)
	own := [][]NodeID{nil}
	for i := 0; i < tree.Len(); i++ {
		own[0] = append(own[0], NodeID(i))
	}
	n := newMiniNet(t, tree, own, DefaultConfig())
	res := n.lookup(0, NodeID(tree.Len()-1))
	if res == nil || !res.OK || res.Hops != 0 {
		t.Fatalf("self-resolution failed: %+v", res)
	}
}

func TestRoutingDeterministicAcrossRuns(t *testing.T) {
	run := func() []int {
		n, tree := wideNet(t, DefaultConfig())
		var hops []int
		for d := 0; d < tree.Len(); d += 5 {
			res := n.lookup(ServerID(d%5), NodeID(d))
			hops = append(hops, res.Hops)
		}
		return hops
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hop counts diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestForwardStatsConsistency(t *testing.T) {
	n, tree := wideNet(t, DefaultConfig())
	for d := 0; d < tree.Len(); d += 2 {
		n.lookup(ServerID(d%5), NodeID(d))
	}
	var total Stats
	for _, p := range n.peers {
		total.Forwarded += p.Stats.Forwarded
		total.CacheHits += p.Stats.CacheHits
		total.ContextHops += p.Stats.ContextHops
		total.DigestShortcuts += p.Stats.DigestShortcuts
	}
	if total.Forwarded != total.CacheHits+total.ContextHops+total.DigestShortcuts {
		t.Fatalf("forward mix inconsistent: fwd=%d cache=%d ctx=%d digest=%d",
			total.Forwarded, total.CacheHits, total.ContextHops, total.DigestShortcuts)
	}
}

func TestWeightChargedOnStaleOnBehalf(t *testing.T) {
	// A query arriving on behalf of a node we do not host must charge the
	// closest hosted node instead (routing work is real either way).
	tree, ids := paperTree()
	env := &fakeEnv{}
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u/pub"]}, 1, DefaultConfig(), env)
	q := &QueryMsg{
		QueryID:  1,
		Dest:     ids["/u/priv/people"],
		Source:   2,
		OnBehalf: ids["/u/priv"], // not hosted here
		Hops:     1,
	}
	p.HandleQuery(q)
	if w := p.NodeWeight(ids["/u/pub"]); w <= 0 {
		t.Fatalf("closest hosted node not charged: %v", w)
	}
}
