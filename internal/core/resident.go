package core

// This file implements the bounded hosted hot cache behind larger-than-RAM
// hosting (DESIGN.md §14). With residency enabled, the in-memory hosted map
// holds only the hot subset of the namespace partition this peer hosts; the
// rest lives in the persistence tier's on-disk node index and is tracked here
// as a *cold set* — two atomic bitmaps (hosted-cold, owned-cold) sized to the
// namespace. The peer still answers Hosts/OwnedCount/HostedIDs for its full
// partition, so digests, reconciliation and the Frepl bound are unchanged;
// only the bytes are elsewhere.
//
// Eviction is CLOCK second-chance over hostedList, driven by the single
// writer (no locks): every query touch sets a reference bit, the hand clears
// bits until it finds an unreferenced entry. Only *clean* entries are
// evictable — entries whose durable state is in the current index generation.
// Dirty tracking is epoch-based: every durable mutation stamps the entry with
// the current mutation generation; the snapshot barrier captures the
// generation (MarkCleanEpoch) and, only after the snapshot and its index are
// safely on disk, CompleteCleanEpoch clears stamps at or below it. An entry
// mutated after the barrier stays dirty and stays resident — eviction can
// therefore never lose state, at the cost of the dirty set riding in memory
// until the next snapshot. On first boot nothing is clean until the first
// snapshot lands; RAM peaks at the partition size once, then drains to cap.
//
// The cold bitmaps are written by the event loop and read lock-free by the
// routing fast path (RouteSnapshot carries a pointer): a fast-path query for
// a cold destination falls back to the loop, which parks it and hands the
// disk read to the overlay's loader goroutine — the loop never blocks on I/O.

import (
	"math/bits"
	"sync/atomic"
)

// coldSet tracks which namespace nodes this peer hosts on disk only. Bits are
// flipped by the owning event loop; Has is safe from any goroutine (the fast
// path consults it through the published snapshot).
type coldSet struct {
	words []atomic.Uint64 // hosted-cold bit per namespace node
	owned []atomic.Uint64 // subset: cold with durable ownership
	n     int

	count      int // loop-owned counters (no concurrent readers)
	ownedCount int
}

func newColdSet(n int) *coldSet {
	w := (n + 63) / 64
	return &coldSet{words: make([]atomic.Uint64, w), owned: make([]atomic.Uint64, w), n: n}
}

func (cs *coldSet) has(id NodeID) bool {
	if id < 0 || int(id) >= cs.n {
		return false
	}
	return cs.words[id>>6].Load()>>(uint(id)&63)&1 != 0
}

func (cs *coldSet) hasOwned(id NodeID) bool {
	if id < 0 || int(id) >= cs.n {
		return false
	}
	return cs.owned[id>>6].Load()>>(uint(id)&63)&1 != 0
}

// set marks id cold (loop only). Reports whether the bit changed.
func (cs *coldSet) set(id NodeID, owned bool) bool {
	if id < 0 || int(id) >= cs.n {
		return false
	}
	w, bit := id>>6, uint64(1)<<(uint(id)&63)
	changed := cs.words[w].Load()&bit == 0
	if changed {
		cs.words[w].Store(cs.words[w].Load() | bit)
		cs.count++
	}
	wasOwned := cs.owned[w].Load()&bit != 0
	if owned && !wasOwned {
		cs.owned[w].Store(cs.owned[w].Load() | bit)
		cs.ownedCount++
	} else if !owned && wasOwned {
		cs.owned[w].Store(cs.owned[w].Load() &^ bit)
		cs.ownedCount--
	}
	return changed
}

// clear unmarks id (loop only). Reports whether the bit was set.
func (cs *coldSet) clear(id NodeID) bool {
	if id < 0 || int(id) >= cs.n {
		return false
	}
	w, bit := id>>6, uint64(1)<<(uint(id)&63)
	if cs.words[w].Load()&bit == 0 {
		return false
	}
	cs.words[w].Store(cs.words[w].Load() &^ bit)
	cs.count--
	if cs.owned[w].Load()&bit != 0 {
		cs.owned[w].Store(cs.owned[w].Load() &^ bit)
		cs.ownedCount--
	}
	return true
}

func (cs *coldSet) ids() []NodeID {
	out := make([]NodeID, 0, cs.count)
	for w := range cs.words {
		word := cs.words[w].Load()
		for word != 0 {
			tz := bits.TrailingZeros64(word)
			out = append(out, NodeID(w<<6+tz))
			word &^= 1 << uint(tz)
		}
	}
	return out
}

// residencyState is the peer's hot-cache bookkeeping (all loop-owned except
// the cold bitmaps).
type residencyState struct {
	cold       *coldSet
	maxEntries int
	maxBytes   int64
	bytes      int64 // approximate resident footprint
	hand       int   // CLOCK cursor into hostedList
	mutGen     uint64
	stuck      bool // a full sweep found no clean victim; wait for the next epoch
	onEvict    func(NodeID)
}

// SetResidency bounds the resident hosted map to maxEntries entries and/or
// maxBytes approximate bytes (≤0 disables that cap; both ≤0 leaves residency
// off). onEvict, when non-nil, observes each demotion to cold. Call from the
// loop context before message handling starts — the overlay enables this only
// when the persistence tier maintains a node index, because evicted entries
// are re-read from it.
func (p *Peer) SetResidency(maxEntries int, maxBytes int64, onEvict func(NodeID)) {
	if maxEntries <= 0 && maxBytes <= 0 {
		return
	}
	p.resident.maxEntries = maxEntries
	p.resident.maxBytes = maxBytes
	p.resident.onEvict = onEvict
	p.resident.cold = newColdSet(p.tree.Len())
	for _, hn := range p.hostedList {
		// Nothing resident is in any index generation yet.
		hn.dirtyGen = p.resident.mutGen
		p.resident.bytes += int64(hostedSize(hn))
		hn.size = int32(hostedSize(hn))
	}
}

// ResidencyEnabled reports whether the hosted map is residency-bounded.
func (p *Peer) ResidencyEnabled() bool { return p.resident.cold != nil }

// ResidentCount returns the number of hosted entries currently in memory.
func (p *Peer) ResidentCount() int { return len(p.hostedList) }

// ResidentBytes returns the approximate resident hosted footprint.
func (p *Peer) ResidentBytes() int64 { return p.resident.bytes }

// ColdCount returns the number of hosted nodes currently on disk only.
func (p *Peer) ColdCount() int {
	if p.resident.cold == nil {
		return 0
	}
	return p.resident.cold.count
}

// IsCold reports whether node is hosted by this peer but not resident. Safe
// from any goroutine.
func (p *Peer) IsCold(node NodeID) bool {
	return p.resident.cold != nil && p.resident.cold.has(node)
}

// ColdIDs returns the cold node ids in ascending order. Loop context.
func (p *Peer) ColdIDs() []NodeID {
	if p.resident.cold == nil {
		return nil
	}
	return p.resident.cold.ids()
}

// MarkCold declares node hosted-on-disk without materializing it — the
// restart path uses this for indexed entries beyond the residency cap. A
// resident entry is demoted first: at restart that entry is the construction
// placeholder (AddOwned with empty state), and the on-disk index — not it —
// holds the node's durable state, so dropping it loses nothing even though
// it is nominally dirty. The owned flag comes from the index record and
// overrides the placeholder's. Loop context.
func (p *Peer) MarkCold(node NodeID, owned bool) {
	if p.resident.cold == nil {
		return
	}
	if _, ok := p.hosted[node]; ok {
		for i, hn := range p.hostedList {
			if hn.id == node {
				p.demoteToCold(i)
				break
			}
		}
	}
	p.resident.cold.set(node, owned)
	p.digestDirty = true
}

// ClearCold drops node from the cold set — the on-disk record turned out to
// be gone (deleted by a WAL-tail mutation after the indexed snapshot). Loop
// context.
func (p *Peer) ClearCold(node NodeID) {
	if p.resident.cold == nil {
		return
	}
	if p.resident.cold.clear(node) {
		p.digestDirty = true
	}
}

// markDirty stamps hn with the current mutation epoch (its durable state is
// newer than the last indexed snapshot) and refreshes its size accounting.
func (p *Peer) markDirty(hn *hostedNode) {
	hn.dirtyGen = p.resident.mutGen
	if p.resident.cold != nil {
		sz := int32(hostedSize(hn))
		p.resident.bytes += int64(sz - hn.size)
		hn.size = sz
	}
}

// MarkCleanEpoch opens a clean epoch at a snapshot barrier: it returns the
// current mutation generation and bumps it, so mutations landing after the
// barrier are distinguishable from state the snapshot captured. Loop context
// (invoked under the shard barrier).
func (p *Peer) MarkCleanEpoch() uint64 {
	g := p.resident.mutGen
	p.resident.mutGen++
	return g
}

// CompleteCleanEpoch marks every entry unchanged since MarkCleanEpoch(g) as
// clean — evictable, because the snapshot and its index generation are now
// durably on disk. Never call it for a failed snapshot: cleaning entries the
// index does not hold would let eviction lose them. Loop context.
func (p *Peer) CompleteCleanEpoch(g uint64) {
	for _, hn := range p.hostedList {
		if hn.dirtyGen != 0 && hn.dirtyGen <= g {
			hn.dirtyGen = 0
		}
	}
	p.resident.stuck = false
}

// InstallFromIndex materializes a cold entry from its on-disk index record:
// an ImportHosted upsert that arrives clean (the index is its durable copy),
// referenced (it was just demanded), and digest-neutral (the id was already
// advertised while cold). Loop context; enforces the residency cap after
// installing. It reports whether the record was installed.
func (p *Peer) InstallFromIndex(rec *HostedMutation, ownerOf func(NodeID) ServerID) bool {
	if rec.Kind != MutUpsert || p.resident.cold == nil {
		return false
	}
	wasCold := p.resident.cold.has(rec.Node)
	dirtyBefore := p.digestDirty
	if !p.ImportHosted(rec, ownerOf) {
		return false
	}
	if wasCold {
		// Membership in the hosted set did not change, so the digest is
		// still accurate; don't trigger a rebuild per cold load.
		p.digestDirty = dirtyBefore
	}
	hn := p.hosted[rec.Node]
	hn.dirtyGen = 0
	hn.ref = true
	p.cache.Delete(rec.Node) // the self-map supersedes any cached route
	p.EnforceResidency()
	return true
}

// EnforceResidency evicts clean, unreferenced entries (CLOCK second-chance)
// until the resident set fits the configured caps, or until no evictable
// entry remains (everything dirty or referenced — retried after the next
// clean epoch). Loop context.
func (p *Peer) EnforceResidency() {
	if p.resident.cold == nil || p.resident.stuck {
		return
	}
	for p.overCap() {
		if !p.evictOneCold() {
			return
		}
	}
}

func (p *Peer) overCap() bool {
	if p.resident.maxEntries > 0 && len(p.hostedList) > p.resident.maxEntries {
		return true
	}
	return p.resident.maxBytes > 0 && p.resident.bytes > p.resident.maxBytes
}

// evictOneCold runs the CLOCK hand until it demotes one entry, clearing
// reference bits as it passes. Two full sweeps guarantee termination: the
// first clears every ref bit, so the second finds any clean entry. Adopted
// entries are pinned (provisional ownership is not durable — demoting one
// would silently drop the adoption).
func (p *Peer) evictOneCold() bool {
	n := len(p.hostedList)
	if n == 0 {
		p.resident.stuck = true
		return false
	}
	for scanned := 0; scanned < 2*n; scanned++ {
		if p.resident.hand >= len(p.hostedList) {
			p.resident.hand = 0
		}
		hn := p.hostedList[p.resident.hand]
		if hn.ref {
			hn.ref = false
			p.resident.hand++
			continue
		}
		if hn.dirtyGen == 0 && !hn.adopted {
			p.demoteToCold(p.resident.hand)
			return true
		}
		p.resident.hand++
	}
	p.resident.stuck = true
	return false
}

// demoteToCold moves hostedList[i] to the cold set: the entry's durable state
// is already in the current index generation (it is clean), so memory is
// released without journaling, digest rebuild, or replica-eviction hooks —
// the peer still hosts the node, just not in RAM.
func (p *Peer) demoteToCold(i int) {
	hn := p.hostedList[i]
	last := len(p.hostedList) - 1
	p.hostedList[i] = p.hostedList[last]
	p.hostedList[last] = nil
	p.hostedList = p.hostedList[:last]
	delete(p.hosted, hn.id)
	for _, nb := range hn.neighborIDs {
		if e, ok := p.neighborMaps[nb]; ok {
			e.refs--
			if e.refs <= 0 {
				delete(p.neighborMaps, nb)
			}
		}
	}
	if hn.owned {
		p.ownedCount--
	}
	p.resident.cold.set(hn.id, hn.owned)
	p.resident.bytes -= int64(hn.size)
	if p.resident.onEvict != nil {
		p.resident.onEvict(hn.id)
	}
}

// hostedSize approximates one resident entry's memory footprint: struct and
// container overhead plus its variable-length payloads.
func hostedSize(hn *hostedNode) int {
	n := 192 // struct, map slot, list slot, neighbor refs
	n += len(hn.data)
	for k, v := range hn.meta.Attrs {
		n += len(k) + len(v) + 32
	}
	n += (len(hn.selfMap.Servers) + len(hn.neighborIDs)) * 8
	return n
}
