package core

import (
	"testing"
	"testing/quick"
)

func TestLRUPutGet(t *testing.T) {
	c := newLRUCache(3)
	c.Put(1, SingleServerMap(10))
	c.Put(2, SingleServerMap(20))
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	m := c.Get(1)
	if m == nil || !m.Contains(10) {
		t.Fatalf("Get(1) = %v", m)
	}
	if c.Get(99) != nil {
		t.Fatal("Get of absent key returned entry")
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	c := newLRUCache(2)
	c.Put(1, SingleServerMap(1))
	c.Put(2, SingleServerMap(2))
	c.Get(1) // 2 is now LRU
	c.Put(3, SingleServerMap(3))
	if c.Get(2) != nil {
		t.Fatal("LRU entry 2 survived")
	}
	if c.Get(1) == nil || c.Get(3) == nil {
		t.Fatal("wrong entry evicted")
	}
}

func TestLRUPeekDoesNotTouch(t *testing.T) {
	c := newLRUCache(2)
	c.Put(1, SingleServerMap(1))
	c.Put(2, SingleServerMap(2))
	c.Peek(1) // must NOT refresh 1
	c.Put(3, SingleServerMap(3))
	if c.Get(1) != nil {
		t.Fatal("Peek refreshed recency")
	}
}

func TestLRUPutReplaces(t *testing.T) {
	c := newLRUCache(2)
	c.Put(1, SingleServerMap(1))
	c.Put(1, SingleServerMap(9))
	if c.Len() != 1 {
		t.Fatalf("Len = %d after replace", c.Len())
	}
	if m := c.Get(1); !m.Contains(9) || m.Contains(1) {
		t.Fatalf("replace failed: %+v", m)
	}
}

func TestLRUDelete(t *testing.T) {
	c := newLRUCache(3)
	c.Put(1, SingleServerMap(1))
	c.Put(2, SingleServerMap(2))
	c.Delete(1)
	if c.Get(1) != nil || c.Len() != 1 {
		t.Fatal("delete failed")
	}
	c.Delete(42) // absent: no-op
	// Freed slot must be reusable.
	c.Put(3, SingleServerMap(3))
	c.Put(4, SingleServerMap(4))
	if c.Len() != 3 {
		t.Fatalf("Len = %d after refill", c.Len())
	}
}

func TestLRUZeroCapacity(t *testing.T) {
	c := newLRUCache(0)
	if c.Put(1, SingleServerMap(1)) != nil {
		t.Fatal("zero-capacity Put returned a slot")
	}
	if c.Len() != 0 || c.Get(1) != nil {
		t.Fatal("zero-capacity cache stored something")
	}
}

func TestLRUEachOrder(t *testing.T) {
	c := newLRUCache(4)
	for i := NodeID(1); i <= 4; i++ {
		c.Put(i, SingleServerMap(ServerID(i)))
	}
	c.Get(2) // order: 2,4,3,1
	var got []NodeID
	c.Each(func(n NodeID, _ *NodeMap) { got = append(got, n) })
	want := []NodeID{2, 4, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Each order = %v, want %v", got, want)
		}
	}
}

func TestLRUInPlaceMutation(t *testing.T) {
	c := newLRUCache(2)
	m := c.Put(5, SingleServerMap(1))
	m.AddRegular(2, 8)
	if got := c.Get(5); !got.Contains(2) {
		t.Fatal("in-place mutation lost")
	}
}

func TestLRUChurnProperty(t *testing.T) {
	// Model-based check against a reference map + recency list.
	c := newLRUCache(8)
	type op struct {
		Key byte
		Del bool
	}
	model := map[NodeID]bool{}
	var order []NodeID // most recent first
	touch := func(k NodeID) {
		for i, v := range order {
			if v == k {
				order = append(order[:i], order[i+1:]...)
				break
			}
		}
		order = append([]NodeID{k}, order...)
	}
	if err := quick.Check(func(ops []op) bool {
		for _, o := range ops {
			k := NodeID(o.Key % 16)
			if o.Del {
				c.Delete(k)
				if model[k] {
					delete(model, k)
					for i, v := range order {
						if v == k {
							order = append(order[:i], order[i+1:]...)
							break
						}
					}
				}
				continue
			}
			c.Put(k, SingleServerMap(ServerID(k)))
			if !model[k] && len(order) == 8 {
				victim := order[len(order)-1]
				order = order[:len(order)-1]
				delete(model, victim)
			}
			model[k] = true
			touch(k)
		}
		if c.Len() != len(model) {
			return false
		}
		for k := range model {
			if c.Peek(k) == nil {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
