package core

import (
	"terradir/internal/namespace"
	"terradir/internal/telemetry"
)

// HandleQuery processes one lookup at service completion: resolve locally if
// this peer hosts the destination, otherwise forward to a host of the
// closest known node (neighbor context, cache, or digest shortcut — §2.2,
// §3.6.1). It is invoked by the driver when the query leaves the server's
// request queue.
func (p *Peer) HandleQuery(q *QueryMsg) {
	p.Stats.Processed++
	p.absorbPiggy(&q.Piggy)
	p.absorbPath(q.Path)

	// Weight accounting: processing happens on behalf of the node whose map
	// the sender selected us from (§3.2); fall back to the node we resolve
	// or route with below.
	if q.OnBehalf != namespace.Invalid {
		if hn, ok := p.hosted[q.OnBehalf]; ok {
			p.touchNode(hn)
		}
	}

	if hn, ok := p.hosted[q.Dest]; ok {
		p.touchNode(hn)
		q.Spans = p.traceSpan(q, hn.id, telemetry.HopResolve)
		p.sendResult(q, hn)
		p.afterQuery()
		return
	}

	if q.Hops >= p.cfg.MaxHops {
		p.sendFail(q, FailTTL)
		p.afterQuery()
		return
	}

	var target ServerID = NoServer
	var onBehalf NodeID = namespace.Invalid
	var newDist int
	var closestHosted *hostedNode
	var skip map[NodeID]bool
	reason := telemetry.HopNone
	shortcutTried := false
	// Candidate selection loop: take the closest known node; if its map is
	// unusable after digest filtering (§3.7 map filtering is strict — stale
	// entries are pruned, never re-selected), discard it and fall back to
	// the next-best candidate. Bounded: each iteration removes a candidate.
	for attempt := 0; attempt < 6; attempt++ {
		cand, candMap, candDist, closest := p.bestCandidate(q.Dest, skip)
		if closest != nil {
			closestHosted = closest
		}
		// Digest shortcut discovery (§3.6.1): a hit on a node even closer to
		// the destination than our best candidate redirects the forward.
		if !shortcutTried && p.cfg.DigestsEnabled {
			shortcutTried = true
			limit := candDist
			if candMap == nil {
				limit = int(^uint(0) >> 1) // no candidate: any hit helps
			}
			if s, node, d := p.digestShortcut(q.Dest, limit); s != NoServer {
				target, onBehalf, newDist = s, node, d
				reason = telemetry.HopReplica
				p.Stats.DigestShortcuts++
				if p.tel != nil {
					p.tel.digestShortcuts.Inc()
					p.tel.cacheMisses.Inc()
				}
				break
			}
		}
		if candMap == nil {
			break
		}
		viaCache := p.cache.Peek(cand) == candMap
		target = candMap.Pick(p.src, p.ID, p.keepFor(cand))
		if target != NoServer {
			onBehalf, newDist = cand, candDist
			if viaCache {
				p.cache.Get(cand) // touch: used in routing (§2.4)
				p.Stats.CacheHits++
				reason = telemetry.HopCache
				if p.tel != nil {
					p.tel.cacheHits.Inc()
				}
			} else {
				p.Stats.ContextHops++
				reason = telemetry.HopChild
				if closestHosted != nil && p.tree.Parent(closestHosted.id) == cand {
					reason = telemetry.HopParent
				}
				if p.tel != nil {
					p.tel.cacheMisses.Inc()
				}
			}
			break
		}
		// Unusable candidate: prune digest-refuted entries permanently and
		// skip it for the remainder of this decision.
		if keep := p.keepFor(cand); keep != nil {
			candMap.Prune(keep)
		}
		if viaCache && candMap.Len() == 0 {
			p.cache.Delete(cand)
		}
		if skip == nil {
			skip = make(map[NodeID]bool, 4)
		}
		skip[cand] = true
	}
	// Authoritative escape: with a sharded server's partition-local view,
	// candidate selection can stall (no usable map) or cycle between stale
	// maps without ever converging. Fall back to the overlay's ownership
	// table — forward straight to the destination's owner — when there is no
	// candidate or the query has burned half its hop budget.
	if p.ownerHint != nil && (target == NoServer || int(q.Hops) >= p.cfg.MaxHops/2) {
		if o := p.ownerHint(q.Dest); o != NoServer && o != p.ID {
			target, onBehalf, newDist = o, q.Dest, 0
			reason = telemetry.HopOwner
		}
	}
	if target == NoServer {
		p.sendFail(q, FailNoRoute)
		p.afterQuery()
		return
	}

	if q.Hops > 0 {
		if p.Hooks.OnForwardStep != nil {
			p.Hooks.OnForwardStep(int(q.PrevDist), newDist)
		}
		if p.tel != nil {
			if newDist < int(q.PrevDist) {
				p.tel.progress.Inc()
			} else {
				p.tel.detours.Inc()
			}
		}
	}

	// Charge the routing work to the hosted node whose context represents
	// this step if the sender's OnBehalf was stale.
	if q.OnBehalf == namespace.Invalid || !p.Hosts(q.OnBehalf) {
		if closestHosted != nil {
			p.touchNode(closestHosted)
		}
	}

	fwd := &QueryMsg{
		QueryID:    q.QueryID,
		Dest:       q.Dest,
		Source:     q.Source,
		OnBehalf:   onBehalf,
		Hops:       q.Hops + 1,
		Started:    q.Started,
		PrevDist:   int32(newDist),
		Path:       p.extendPath(q.Path, closestHosted),
		TraceID:    q.TraceID,
		SpanBudget: q.SpanBudget,
		Spans:      p.traceSpan(q, onBehalf, reason),
		Piggy:      p.piggyback(),
	}
	p.Stats.Forwarded++
	if p.tel != nil {
		p.tel.forwarded.Inc()
	}
	p.env.Send(target, fwd)
	p.afterQuery()
}

// bestCandidate returns the closest node to dest this peer knows a map for
// (§2.2's minimizing procedure): the ideal next-hop neighbors of hosted
// nodes and all cached nodes, excluding any in `skip` (candidates already
// found unusable for the current decision). It also returns the hosted node
// closest to dest (the context representative for path propagation). A nil
// map means no usable candidate.
func (p *Peer) bestCandidate(dest NodeID, skip map[NodeID]bool) (cand NodeID, m *NodeMap, dist int, closestHosted *hostedNode) {
	cand = namespace.Invalid
	bestDist := int(^uint(0) >> 1)
	hostedDist := int(^uint(0) >> 1)
	for _, hn := range p.hostedList {
		d := p.tree.Distance(hn.id, dest)
		if d < hostedDist {
			hostedDist = d
			closestHosted = hn
		}
		if d-1 >= bestDist {
			continue
		}
		nh := p.tree.NextHopToward(hn.id, dest)
		if nh == namespace.Invalid || skip[nh] {
			continue
		}
		e, ok := p.neighborMaps[nh]
		if !ok || e.m.Len() == 0 {
			continue
		}
		cand, m, bestDist = nh, &e.m, d-1
	}
	// Cached nodes (§2.4): pointers without context; strictly-better only,
	// so context hops win ties (guaranteed progress beats a stale pointer).
	p.cache.Each(func(node NodeID, cm *NodeMap) {
		if cm.Len() == 0 || skip[node] {
			return
		}
		d := p.tree.Distance(node, dest)
		if d < bestDist {
			cand, m, bestDist = node, cm, d
		}
	})
	return cand, m, bestDist, closestHosted
}

// digestShortcut scans the destination's ancestor chain (deepest first — the
// closest possible nodes to dest on its root path) against known digests and
// returns a server advertising a node strictly closer than limit, with that
// node and its distance. Nodes off the destination's root path are dominated
// by their LCA-depth ancestor on the path, so the path scan captures the
// profitable shortcuts (§3.6.1, Fig. 2) at O(depth × digests) cost.
func (p *Peer) digestShortcut(dest NodeID, limit int) (ServerID, NodeID, int) {
	if p.OracleHosts == nil && len(p.digestList) == 0 {
		return NoServer, namespace.Invalid, 0
	}
	p.scanClock += 7 // advance the rotating window each hop (odd stride)
	destDepth := p.tree.Depth(dest)
	minDepth := destDepth - limit + 1
	if lvl := p.cfg.DigestShortcutLevels; lvl > 0 && destDepth-lvl+1 > minDepth {
		minDepth = destDepth - lvl + 1 // cost cap, see Config.DigestShortcutLevels
	}
	if minDepth < 0 {
		minDepth = 0
	}
	node := dest
	for k := destDepth; k >= minDepth; k-- {
		if k < destDepth {
			node = p.tree.Parent(node)
		}
		if p.OracleHosts != nil {
			hosts := p.OracleHosts(node)
			n := 0
			var chosen ServerID = NoServer
			for _, s := range hosts {
				if s == p.ID {
					continue
				}
				n++
				if p.src.Intn(n) == 0 {
					chosen = s
				}
			}
			if chosen != NoServer {
				return chosen, node, destDepth - k
			}
			continue
		}
		key := NodeKey(node)
		n := 0
		var chosen ServerID = NoServer
		// Scan a rotating window of the digest table (coverage spreads over
		// consecutive hops; see Config.DigestScanPerHop).
		total := len(p.digestList)
		scan := total
		if p.cfg.DigestScanPerHop > 0 && p.cfg.DigestScanPerHop < total {
			scan = p.cfg.DigestScanPerHop
		}
		start := 0
		if scan < total {
			start = p.scanClock % total
		}
		for i := 0; i < scan; i++ {
			e := p.digestList[(start+i)%total]
			if e.server == p.ID {
				continue
			}
			if e.filter.Test(key) {
				n++
				if p.src.Intn(n) == 0 {
					chosen = e.server
				}
			}
		}
		if chosen != NoServer {
			return chosen, node, destDepth - k
		}
	}
	return NoServer, namespace.Invalid, 0
}

// extendPath appends this peer's path entry — its closest hosted node and
// that node's map — implementing path propagation (§2.4). With path
// propagation disabled only the first entry (the source's) is recorded, so
// endpoint caching still works. The path is bounded by MaxPathEntries
// (oldest entries beyond the source are dropped first).
//
// Ownership transfer: a received message's path belongs to its handler (the
// sender built a fresh slice and never retains it; absorbPath only copies
// values out), so the slice is extended in place rather than deep-cloned.
func (p *Peer) extendPath(path []PathEntry, rep *hostedNode) []PathEntry {
	if rep == nil {
		return path
	}
	if !p.cfg.PathPropagation && len(path) > 0 {
		return path
	}
	out := path
	if len(out) >= p.cfg.MaxPathEntries && len(out) > 1 {
		copy(out[1:], out[2:]) // keep the source entry, drop the oldest middle
		out = out[:len(out)-1]
	}
	if len(out) < p.cfg.MaxPathEntries || p.cfg.MaxPathEntries == 0 {
		out = append(out, PathEntry{Node: rep.id, Map: p.outgoingMap(rep.id)})
	}
	return out
}

// absorbPath caches every entry of the propagated path (§2.4: "the path so
// far is cached at every step along the query path").
func (p *Peer) absorbPath(path []PathEntry) {
	for i := range path {
		p.learnMap(path[i].Node, &path[i].Map)
	}
}

// sendResult answers a lookup: name, metadata, and a mapping for the node
// (§2.1 lookup semantics), plus the completed path so the source caches it.
func (p *Peer) sendResult(q *QueryMsg, hn *hostedNode) {
	path := p.extendPath(q.Path, hn)
	res := &ResultMsg{
		QueryID: q.QueryID,
		Dest:    q.Dest,
		OK:      true,
		Hops:    q.Hops,
		Started: q.Started,
		Meta:    hn.meta.Clone(),
		Map:     p.outgoingMap(hn.id),
		Path:    path,
		TraceID: q.TraceID,
		Spans:   q.Spans,
		Piggy:   p.piggyback(),
	}
	p.Stats.Resolved++
	p.Stats.ResultsSent++
	if p.tel != nil {
		p.tel.resolved.Inc()
	}
	p.env.Send(q.Source, res)
}

func (p *Peer) sendFail(q *QueryMsg, reason FailReason) {
	if reason == FailTTL {
		p.Stats.FailedTTL++
	} else {
		p.Stats.FailedNoRoute++
	}
	if p.tel != nil {
		p.tel.failed.Inc()
	}
	res := &ResultMsg{
		QueryID: q.QueryID,
		Dest:    q.Dest,
		OK:      false,
		Reason:  reason,
		Hops:    q.Hops,
		Started: q.Started,
		Path:    q.Path, // ownership transfer, see extendPath
		TraceID: q.TraceID,
		Spans:   p.traceSpan(q, q.Dest, telemetry.HopFail),
		Piggy:   p.piggyback(),
	}
	p.Stats.ResultsSent++
	p.env.Send(q.Source, res)
}

// HandleResult ingests a lookup answer arriving back at the initiating
// server: the full path (including the destination) is cached at the source,
// completing path propagation.
func (p *Peer) HandleResult(r *ResultMsg) {
	p.absorbPiggy(&r.Piggy)
	p.absorbPath(r.Path)
	if r.OK && r.Map.Len() > 0 {
		p.learnMap(r.Dest, &r.Map)
	}
}
