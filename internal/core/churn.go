package core

// This file is the peer's churn-repair surface: everything the overlay's
// membership subsystem needs to keep routing state consistent when servers
// die, take over a dead peer's partition, or join. All methods follow the
// peer's single-threaded discipline — the overlay invokes them from the
// node's event loop, never concurrently with message handling.

// PurgeServer removes every soft-state reference to server s: entries in
// hosted self-maps and neighbor maps, cached maps (empty survivors are
// dropped), s's stored digest, its gossiped-load record, and pending replica
// adverts naming it. Neighbor maps left empty are reseeded from ownerOf (the
// post-handoff effective owner) so routing context never dangles; ownerOf may
// be nil to skip reseeding. It returns how many references were removed.
//
// This is the paper's soft-state repair applied eagerly on a failure signal:
// the same stale entries would age out lazily, but a detected death lets us
// drop them all at once instead of paying misroutes until they do.
func (p *Peer) PurgeServer(s ServerID, ownerOf func(NodeID) ServerID) int {
	if s == p.ID || s == NoServer {
		return 0
	}
	purged := 0
	for _, hn := range p.hostedList {
		if hn.selfMap.Remove(s) {
			purged++
			p.ensureSelf(&hn.selfMap)
		}
	}
	for nb, e := range p.neighborMaps {
		if e.m.Remove(s) {
			purged++
		}
		if e.m.Len() == 0 && ownerOf != nil {
			if o := ownerOf(nb); o != NoServer {
				e.m = SingleServerMap(o)
			}
		}
	}
	// lruCache.Each must not mutate the cache: collect emptied entries during
	// the walk (in-place map edits are fine), delete them after.
	var emptied []NodeID
	p.cache.Each(func(node NodeID, m *NodeMap) {
		if m.Remove(s) {
			purged++
			if m.Len() == 0 {
				emptied = append(emptied, node)
			}
		}
	})
	for _, nd := range emptied {
		p.cache.Delete(nd)
	}
	if e, ok := p.digests[s]; ok {
		delete(p.digests, s)
		for i, d := range p.digestList {
			if d == e {
				p.digestList = append(p.digestList[:i], p.digestList[i+1:]...)
				break
			}
		}
		purged++
	}
	if _, ok := p.knownLoads[s]; ok {
		delete(p.knownLoads, s)
		for i, k := range p.knownLoadKeys {
			if k == s {
				last := len(p.knownLoadKeys) - 1
				p.knownLoadKeys[i] = p.knownLoadKeys[last]
				p.knownLoadKeys = p.knownLoadKeys[:last]
				break
			}
		}
		purged++
	}
	kept := p.recentAdverts[:0]
	for _, a := range p.recentAdverts {
		srv := a.servers[:0]
		for _, v := range a.servers {
			if v != s {
				srv = append(srv, v)
			}
		}
		if len(srv) < len(a.servers) {
			purged++
		}
		a.servers = srv
		if len(a.servers) > 0 {
			kept = append(kept, a)
		}
	}
	p.recentAdverts = kept
	p.Stats.ServerPurges++
	p.Stats.PurgedEntries += int64(purged)
	if p.tel != nil {
		p.tel.serverPurges.Inc()
		p.tel.purgedEntries.Add(uint64(purged))
	}
	return purged
}

// AdoptOwnership makes this peer the acting owner of node after its assigned
// owner died: a hosted replica is promoted in place (it already has the data
// model's replicated state), otherwise a fresh owned entry is created with
// routing context seeded from ownerOf. Adopted ownership is provisional —
// ReleaseOwnership undoes it when the original owner returns — and carries no
// application data (hasData stays false for fresh adoptions: only the real
// owner ever held it). It reports whether the hosting set changed state.
func (p *Peer) AdoptOwnership(node NodeID, ownerOf func(NodeID) ServerID) bool {
	if hn, ok := p.hosted[node]; ok {
		if hn.owned {
			return false
		}
		hn.owned = true
		hn.adopted = true
		p.ownedCount++
		p.ensureSelf(&hn.selfMap)
		p.markDirty(hn)
		p.journalKind(MutAdopt, node)
		p.Stats.OwnershipAdopts++
		if p.tel != nil {
			p.tel.adoptions.Inc()
		}
		return true
	}
	if !p.AcceptsHosted(node) {
		// Another shard's partition: only its home shard may adopt it.
		return false
	}
	hn := &hostedNode{
		id:       node,
		owned:    true,
		adopted:  true,
		selfMap:  SingleServerMap(p.ID),
		lastUsed: p.env.Now(),
		ref:      true,
	}
	p.hosted[node] = hn
	p.hostedList = append(p.hostedList, hn)
	p.ownedCount++
	if p.resident.cold != nil {
		// A cold replica of this node supersedes nothing durable: the fresh
		// adopted entry is journaled, so drop the disk-only marker.
		p.resident.cold.clear(node)
	}
	p.initNeighbors(hn, ownerOf)
	p.digestDirty = true
	p.journalUpsert(hn)
	p.Stats.OwnershipAdopts++
	if p.tel != nil {
		p.tel.adoptions.Inc()
	}
	return true
}

// ReleaseOwnership demotes an adopted node back to a plain replica once its
// assigned owner is alive again. Original (non-adopted) ownership is never
// released. The replica is kept rather than dropped — it is warm routing
// state — and ages out through the normal eviction path if unused. It
// reports whether a demotion happened.
func (p *Peer) ReleaseOwnership(node NodeID) bool {
	hn, ok := p.hosted[node]
	if !ok || !hn.owned || !hn.adopted {
		return false
	}
	hn.owned = false
	hn.adopted = false
	hn.hasData = false
	hn.data = nil
	p.ownedCount--
	p.markDirty(hn)
	p.journalKind(MutRelease, node)
	p.Stats.OwnershipReleases++
	if p.tel != nil {
		p.tel.releases.Inc()
	}
	return true
}

// AdoptedCount returns how many hosted nodes are provisionally owned through
// handoff.
func (p *Peer) AdoptedCount() int {
	n := 0
	for _, hn := range p.hostedList {
		if hn.adopted {
			n++
		}
	}
	return n
}

// BuildWarmup snapshots up to max hosted-map entries, heaviest-ranked first
// — the replica advertisements a joining server warms its cache from. Every
// map is a bounded clone with self guaranteed, exactly what outgoing path
// entries carry.
func (p *Peer) BuildWarmup(max int) []PathEntry {
	if max <= 0 {
		return nil
	}
	ranked := p.rankHosted()
	if len(ranked) > max {
		ranked = ranked[:max]
	}
	out := make([]PathEntry, 0, len(ranked))
	for _, hn := range ranked {
		out = append(out, PathEntry{Node: hn.id, Map: p.outgoingMap(hn.id)})
	}
	return out
}

// LearnMaps absorbs a warmup stream: each entry merges into whatever map the
// peer keeps for the node, creating cache entries otherwise — the same
// path-propagation learning rule queries use.
func (p *Peer) LearnMaps(entries []PathEntry) {
	p.absorbPath(entries)
}
