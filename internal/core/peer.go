package core

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"terradir/internal/bloom"
	"terradir/internal/namespace"
	"terradir/internal/rng"
)

// Env is the peer's window to the outside world. The simulator and the live
// overlay provide implementations. All Env methods are invoked from the
// peer's own execution context (the simulator event loop or the peer
// goroutine); implementations must dispatch After callbacks back into that
// same context.
type Env interface {
	// Now returns the current time in seconds.
	Now() float64
	// Load returns this server's measured busy-fraction load in [0,1]
	// (paper §3.1: locally defined, linearly comparable).
	Load() float64
	// Send transmits a message to another server (or to self, which
	// implementations deliver without network delay).
	Send(to ServerID, m Message)
	// After schedules fn to run on this peer after d seconds.
	After(d float64, fn func())
}

// Hooks are optional instrumentation callbacks used by experiments.
type Hooks struct {
	// OnReplicaInstalled fires when this peer installs a replica of node
	// created by server from.
	OnReplicaInstalled func(node NodeID, from ServerID)
	// OnReplicaEvicted fires when this peer evicts a replica.
	OnReplicaEvicted func(node NodeID)
	// OnForwardStep fires at each forwarding decision with the sender's
	// candidate distance and this peer's (routing accuracy accounting; a
	// step makes incremental progress when newDist < prevDist).
	OnForwardStep func(prevDist, newDist int)
}

// Stats are per-peer monotonic counters.
type Stats struct {
	Processed        int64 // queries serviced
	Resolved         int64 // lookups answered by this peer
	Forwarded        int64
	FailedTTL        int64
	FailedNoRoute    int64
	DigestShortcuts  int64 // forwards taken via a digest hit
	CacheHits        int64 // forwards via a cached candidate
	ContextHops      int64 // forwards via neighbor context
	ReplicaInstalls  int64
	ReplicaEvictions int64
	SessionsStarted  int64
	SessionsAborted  int64
	SessionsOK       int64
	ControlSent      int64 // control (non-query, non-result) messages sent
	ResultsSent      int64
	StaleSelfPurged  int64 // self-entries removed from maps for non-hosted nodes

	ServerPurges      int64 // PurgeServer invocations (one per detected death)
	PurgedEntries     int64 // soft-state references removed by PurgeServer
	OwnershipAdopts   int64 // nodes provisionally adopted from dead owners
	OwnershipReleases int64 // adopted nodes handed back to returned owners
}

// Accumulate adds o's counters into s, aggregating multiple shard peers into
// one server-wide view.
func (s *Stats) Accumulate(o Stats) {
	s.Processed += o.Processed
	s.Resolved += o.Resolved
	s.Forwarded += o.Forwarded
	s.FailedTTL += o.FailedTTL
	s.FailedNoRoute += o.FailedNoRoute
	s.DigestShortcuts += o.DigestShortcuts
	s.CacheHits += o.CacheHits
	s.ContextHops += o.ContextHops
	s.ReplicaInstalls += o.ReplicaInstalls
	s.ReplicaEvictions += o.ReplicaEvictions
	s.SessionsStarted += o.SessionsStarted
	s.SessionsAborted += o.SessionsAborted
	s.SessionsOK += o.SessionsOK
	s.ControlSent += o.ControlSent
	s.ResultsSent += o.ResultsSent
	s.StaleSelfPurged += o.StaleSelfPurged
	s.ServerPurges += o.ServerPurges
	s.PurgedEntries += o.PurgedEntries
	s.OwnershipAdopts += o.OwnershipAdopts
	s.OwnershipReleases += o.OwnershipReleases
}

type hostedNode struct {
	id          NodeID
	owned       bool
	adopted     bool   // provisional ownership taken over from a dead server
	hasData     bool   // owners keep node data (Table 1); replicas do not
	data        []byte // application data (owner only)
	meta        Meta
	selfMap     NodeMap
	neighborIDs []NodeID
	weight      float64 // load-based ranking counter (§3.2), decayed lazily
	weightT     float64 // time of last decay
	lastUsed    float64
	// fastTouch accumulates query charges from the lock-free snapshot fast
	// path; the loop folds it into weight/lastUsed (foldFastTouches).
	fastTouch atomic.Int64

	// Residency bookkeeping (resident.go): CLOCK reference bit, dirty epoch
	// stamp (0 = clean: durable state is in the current index generation),
	// and the approximate resident size last accounted.
	ref      bool
	dirtyGen uint64
	size     int32
}

type neighborMapEntry struct {
	m    NodeMap
	refs int
}

type digestEntry struct {
	server  ServerID
	filter  *bloom.Filter
	updated float64
}

type loadInfo struct {
	load    float64
	updated float64
}

type advertRecord struct {
	node    NodeID
	servers []ServerID
	created float64
}

// Peer is one TerraDir server: a transport-agnostic protocol state machine.
// It is not safe for concurrent use; drive it from a single goroutine or the
// simulator loop.
type Peer struct {
	ID   ServerID
	cfg  Config
	tree *namespace.Tree
	env  Env
	src  *rng.Source

	hosted     map[NodeID]*hostedNode
	hostedList []*hostedNode // deterministic iteration order
	ownedCount int

	neighborMaps map[NodeID]*neighborMapEntry
	cache        *lruCache

	digest      *bloom.Filter // own inverse-mapping digest
	digestDirty bool
	digests     map[ServerID]*digestEntry
	digestList  []*digestEntry
	digestClock int // round-robin eviction cursor
	scanClock   int // rotating shortcut-scan window cursor

	knownLoads    map[ServerID]loadInfo
	knownLoadKeys []ServerID // parallel key list for O(1) random eviction
	loadBias      float64
	sysLoadEst    float64 // mean of gossiped loads, refreshed each Maintain

	recentAdverts []advertRecord
	advertSweptAt float64 // last advert-expiry sweep (BatchTick amortization)

	sess           replSession
	nextSession    uint64
	sessionBase    uint64 // OR-ed into session ids (shard tagging, overlay §11)
	lastSessionEnd float64

	// learnFilter, when set, restricts which namespace nodes this peer may
	// CREATE cache entries for. Existing state always refreshes. The sharded
	// overlay uses it to partition soft state across shard peers (DESIGN.md
	// §11); nil accepts everything.
	learnFilter func(NodeID) bool

	// hostFilter, when set, restricts which namespace nodes this peer may
	// CREATE hosted state for (replica installs, fresh adoptions). The
	// sharded overlay keeps hosting strictly partitioned even where caching
	// is shared (the top of the tree); nil accepts everything.
	hostFilter func(NodeID) bool

	// ownerHint, when set, supplies a destination's authoritative owner as a
	// routing escape: consulted when candidate selection finds no usable map,
	// or when a query has burned half its hop budget without resolving — the
	// sign it is cycling between stale maps. A shard peer sees only its
	// partition's hosted context, so the tree-walk progress guarantee of the
	// unsharded design does not hold across shard boundaries; the hint (the
	// overlay's ownership table) restores bounded termination.
	ownerHint func(NodeID) ServerID

	// sharedDigest, when set, is advertised in place of the peer's own
	// digest. The sharded overlay installs a combined server-wide filter
	// here: advertising a shard's partial digest under the shared ServerID
	// would read as Bloom false negatives at remote peers and make their
	// keepFor filtering prune valid hosts.
	sharedDigest *bloom.Filter

	// OracleHosts, when set together with cfg.DigestsEnabled, replaces Bloom
	// digest tests with perfect knowledge of which servers host a node
	// (§4.4's "optimal behavior, as if given by an oracle" yardstick).
	OracleHosts func(NodeID) []ServerID

	Hooks Hooks
	Stats Stats

	// journal, when set, receives every durable hosted-state mutation (see
	// journal.go). Fired from the peer's execution context.
	journal func(mu *HostedMutation)

	tel *peerTelemetry // nil until AttachTelemetry

	// resident is the bounded hot-cache bookkeeping (resident.go); residency
	// is off (everything stays in memory) until SetResidency.
	resident residencyState

	// snap is the published copy-on-write routing snapshot (see snapshot.go);
	// fast is the atomic counter ledger of queries served on it off-loop.
	snap atomic.Pointer[RouteSnapshot]
	fast fastStats

	scratchPath []NodeID // reusable buffer
}

// advertTTL is how long (seconds) a newly created replica is piggybacked as
// a fresh advertisement on outgoing messages.
const advertTTL = 2.0

// advertSweepSlack is how long a completed advert-expiry sweep stays fresh:
// piggyback skips the in-place compaction within this window, so a
// batch-drain loop calling BatchTick once pays one compaction per batch
// instead of one per outgoing message. Emission is TTL-filtered on every
// message regardless, so sweep timing never shows on the wire — the slack
// only bounds how long an expired record occupies its slice slot.
const advertSweepSlack = 0.05

// NewPeer constructs a peer. cfg must validate. Ownership is declared with
// AddOwned and finalized with FinishSetup before any message handling.
func NewPeer(id ServerID, tree *namespace.Tree, cfg Config, env Env, src *rng.Source) (*Peer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tree == nil || env == nil || src == nil {
		return nil, fmt.Errorf("core: NewPeer requires tree, env and src")
	}
	cacheCap := cfg.CacheSlots
	if !cfg.CachingEnabled {
		cacheCap = 0
	}
	return &Peer{
		ID:             id,
		cfg:            cfg,
		tree:           tree,
		env:            env,
		src:            src,
		hosted:         make(map[NodeID]*hostedNode),
		neighborMaps:   make(map[NodeID]*neighborMapEntry),
		cache:          newLRUCache(cacheCap),
		digests:        make(map[ServerID]*digestEntry),
		knownLoads:     make(map[ServerID]loadInfo),
		lastSessionEnd: math.Inf(-1),
		resident:       residencyState{mutGen: 1},
	}, nil
}

// Config returns the peer's configuration.
func (p *Peer) Config() Config { return p.cfg }

// SetLearnFilter installs the cache-creation filter (see the learnFilter
// field). Call before message handling starts.
func (p *Peer) SetLearnFilter(accept func(NodeID) bool) { p.learnFilter = accept }

// SetHostFilter installs the hosted-state creation filter (see the
// hostFilter field). Call before message handling starts.
func (p *Peer) SetHostFilter(accept func(NodeID) bool) { p.hostFilter = accept }

// SetOwnerHint installs the authoritative-owner routing escape (see the
// ownerHint field). The function must be safe to call from this peer's
// handler context at any time. Call before message handling starts.
func (p *Peer) SetOwnerHint(owner func(NodeID) ServerID) { p.ownerHint = owner }

// Accepts reports whether this peer may create new cache entries for node.
func (p *Peer) Accepts(node NodeID) bool {
	return p.learnFilter == nil || p.learnFilter(node)
}

// AcceptsHosted reports whether this peer may create new hosted state
// (replicas, fresh adoptions) for node.
func (p *Peer) AcceptsHosted(node NodeID) bool {
	return p.hostFilter == nil || p.hostFilter(node)
}

// SetSessionBase sets the bits OR-ed into every replication session id this
// peer generates, letting a multi-shard server route probe/replicate replies
// back to the originating shard. Call before message handling starts.
func (p *Peer) SetSessionBase(base uint64) { p.sessionBase = base }

// SetSharedDigest installs (or, with nil, removes) the digest advertised in
// place of the peer's own (see the sharedDigest field). Safe to call from
// the peer's execution context at any time; the filter must be immutable.
func (p *Peer) SetSharedDigest(f *bloom.Filter) { p.sharedDigest = f }

// HostedIDs returns a fresh slice of all hosted node ids (owned and
// replicated, resident and cold), resident entries first in hosting order.
func (p *Peer) HostedIDs() []NodeID {
	ids := make([]NodeID, len(p.hostedList), len(p.hostedList)+p.ColdCount())
	for i, hn := range p.hostedList {
		ids[i] = hn.id
	}
	return append(ids, p.ColdIDs()...)
}

// SeedCache installs a bootstrap routing hint for node, bypassing the learn
// filter: a shard peer with no hosted nodes has no routing context at all,
// so the overlay seeds a route toward the namespace root. No-op when caching
// is disabled.
func (p *Peer) SeedCache(node NodeID, m NodeMap) {
	p.cache.Put(node, m.Clone())
}

// AddOwned declares this peer the owner of node. Call before FinishSetup.
func (p *Peer) AddOwned(node NodeID, meta Meta) {
	if _, ok := p.hosted[node]; ok {
		return
	}
	hn := &hostedNode{
		id:      node,
		owned:   true,
		hasData: true,
		meta:    meta,
		selfMap: SingleServerMap(p.ID),
		ref:     true,
	}
	p.hosted[node] = hn
	p.hostedList = append(p.hostedList, hn)
	p.ownedCount++
	p.markDirty(hn)
}

// FinishSetup wires the routing context for every owned node: neighbor maps
// initialized to the namespace owners (ownerOf), and the peer's own digest.
func (p *Peer) FinishSetup(ownerOf func(NodeID) ServerID) {
	for _, hn := range p.hostedList {
		p.initNeighbors(hn, ownerOf)
	}
	p.rebuildDigest()
}

func (p *Peer) initNeighbors(hn *hostedNode, ownerOf func(NodeID) ServerID) {
	var ids []NodeID
	if parent := p.tree.Parent(hn.id); parent != namespace.Invalid {
		ids = append(ids, parent)
	}
	ids = append(ids, p.tree.Children(hn.id)...)
	hn.neighborIDs = ids
	for _, nb := range ids {
		if e, ok := p.neighborMaps[nb]; ok {
			e.refs++
			continue
		}
		p.neighborMaps[nb] = &neighborMapEntry{
			m:    SingleServerMap(ownerOf(nb)),
			refs: 1,
		}
	}
}

// OwnedCount returns the number of nodes this peer owns (resident and cold).
func (p *Peer) OwnedCount() int {
	if p.resident.cold != nil {
		return p.ownedCount + p.resident.cold.ownedCount
	}
	return p.ownedCount
}

// ReplicaCount returns the number of replicas currently hosted (resident and
// cold).
func (p *Peer) ReplicaCount() int {
	n := len(p.hostedList) - p.ownedCount
	if p.resident.cold != nil {
		n += p.resident.cold.count - p.resident.cold.ownedCount
	}
	return n
}

// CacheLen returns the number of cached entries.
func (p *Peer) CacheLen() int { return p.cache.Len() }

// Hosts reports whether the peer currently hosts (owns or replicates) node,
// resident or cold.
func (p *Peer) Hosts(node NodeID) bool {
	if _, ok := p.hosted[node]; ok {
		return true
	}
	return p.IsCold(node)
}

// HostsReplica reports whether the peer holds a replica (not ownership) of
// node.
func (p *Peer) HostsReplica(node NodeID) bool {
	hn, ok := p.hosted[node]
	return ok && !hn.owned
}

// maxReplicas returns the Frepl-derived hosting bound (§3.4). Cold owned
// nodes count: the bound scales with the hosted partition, not with RAM.
func (p *Peer) maxReplicas() int {
	return int(p.cfg.ReplFactor * float64(p.OwnedCount()))
}

// effLoad is the load value protocol decisions use: the measured load plus
// the post-replication hysteresis bias (§3.3 step 4), clamped to [0,1].
func (p *Peer) effLoad() float64 {
	l := p.env.Load() + p.loadBias
	if l < 0 {
		return 0
	}
	if l > 1 {
		return 1
	}
	return l
}

// touchNode charges one query's worth of weight to hn (§3.2) and refreshes
// its recency.
func (p *Peer) touchNode(hn *hostedNode) {
	now := p.env.Now()
	if hn.weightT > 0 && now > hn.weightT {
		hn.weight *= math.Exp2(-(now - hn.weightT) / p.cfg.WeightHalfLife)
	}
	hn.weight++
	hn.weightT = now
	hn.lastUsed = now
	hn.ref = true
}

// decayedWeight returns hn's weight decayed to the present without charging.
func (p *Peer) decayedWeight(hn *hostedNode) float64 {
	now := p.env.Now()
	if hn.weightT <= 0 || now <= hn.weightT {
		return hn.weight
	}
	return hn.weight * math.Exp2(-(now-hn.weightT)/p.cfg.WeightHalfLife)
}

// rebuildDigest regenerates the peer's own Bloom digest from the hosted set
// and bumps its version. A published digest is immutable: rebuilds always
// allocate a fresh filter, so snapshots can be shared by pointer with every
// outgoing message instead of cloned per message.
func (p *Peer) rebuildDigest() {
	n := len(p.hostedList) + p.ColdCount()
	if n < 1 {
		n = 1
	}
	bits := uint64(p.cfg.DigestBitsPerNode * n)
	nf := bloom.New(bits, uint32(p.cfg.DigestHashes))
	if p.digest != nil {
		nf.SetVersion(p.digest.Version())
	}
	for _, hn := range p.hostedList {
		nf.Add(NodeKey(hn.id))
	}
	// Cold entries are hosted state too: remote digest tests must keep
	// routing queries here, where the loader materializes them on demand.
	for _, id := range p.ColdIDs() {
		nf.Add(NodeKey(id))
	}
	nf.BumpVersion()
	p.digest = nf
	p.digestDirty = false
}

// Digest returns the peer's current inverse-mapping digest (not a copy).
func (p *Peer) Digest() *bloom.Filter { return p.digest }

// storeDigest retains a foreign digest if it is new or newer than what we
// hold, evicting the stalest entry when over capacity.
func (p *Peer) storeDigest(server ServerID, f *bloom.Filter) {
	if !p.cfg.DigestsEnabled || f == nil || server == p.ID || p.cfg.MaxDigests == 0 {
		return
	}
	now := p.env.Now()
	if e, ok := p.digests[server]; ok {
		if f.Version() > e.filter.Version() {
			e.filter = f
			e.updated = now
		}
		return
	}
	if len(p.digestList) >= p.cfg.MaxDigests {
		// O(1) round-robin eviction: replace the slot under the clock hand.
		// (Exact LRU would scan; digests refresh constantly via piggyback,
		// so approximate recycling is sufficient and cheap.)
		slot := p.digestClock % len(p.digestList)
		p.digestClock++
		victim := p.digestList[slot]
		delete(p.digests, victim.server)
		e := &digestEntry{server: server, filter: f, updated: now}
		p.digestList[slot] = e
		p.digests[server] = e
		return
	}
	e := &digestEntry{server: server, filter: f, updated: now}
	p.digests[server] = e
	p.digestList = append(p.digestList, e)
}

// digestSays tests whether `server` plausibly hosts `node`: true when no
// information contradicts it (unknown digests are permissive — pruning is
// conservative, §3.6.2). With an oracle installed, the answer is exact.
func (p *Peer) digestSays(server ServerID, node NodeID) bool {
	if !p.cfg.DigestsEnabled {
		return true
	}
	if server == p.ID {
		return p.Hosts(node)
	}
	if p.OracleHosts != nil {
		for _, s := range p.OracleHosts(node) {
			if s == server {
				return true
			}
		}
		return false
	}
	e, ok := p.digests[server]
	if !ok {
		return true
	}
	return e.filter.Test(NodeKey(node))
}

// keepFor returns the digest-based map filtering predicate for node (§3.7
// map filtering), or nil when digests are disabled.
func (p *Peer) keepFor(node NodeID) func(ServerID) bool {
	if !p.cfg.DigestsEnabled {
		return nil
	}
	return func(s ServerID) bool { return p.digestSays(s, node) }
}

// recordLoad notes a gossiped load observation. When the bounded table is
// full a uniformly random resident entry is displaced — O(1), and since
// loads refresh on every message the table self-repairs quickly.
func (p *Peer) recordLoad(server ServerID, load, now float64) {
	if server == p.ID || server == NoServer {
		return
	}
	if _, ok := p.knownLoads[server]; ok {
		p.knownLoads[server] = loadInfo{load: load, updated: now}
		return
	}
	if len(p.knownLoadKeys) >= p.cfg.MaxKnownLoads {
		slot := p.src.Intn(len(p.knownLoadKeys))
		delete(p.knownLoads, p.knownLoadKeys[slot])
		p.knownLoadKeys[slot] = server
	} else {
		p.knownLoadKeys = append(p.knownLoadKeys, server)
	}
	p.knownLoads[server] = loadInfo{load: load, updated: now}
}

// KnownLoadCount returns the size of the gossiped-load table.
func (p *Peer) KnownLoadCount() int { return len(p.knownLoads) }

// piggyback builds the rider attached to an outgoing message: own identity
// and load, fresh replica adverts, own digest plus a bounded sample of
// foreign digests (transitive dissemination, §6).
func (p *Peer) piggyback() Piggyback {
	pb := Piggyback{From: p.ID, Load: p.effLoad()}
	now := p.env.Now()
	// Compact stale adverts in place, unless BatchTick already swept within
	// the slack window — batch-drain loops amortize the compaction across the
	// whole batch. Emission still filters by TTL on every message, so the
	// rider's contents are independent of sweep timing.
	if now-p.advertSweptAt > advertSweepSlack {
		p.sweepAdverts(now)
	}
	for _, a := range p.recentAdverts {
		if now-a.created > advertTTL {
			continue
		}
		pb.Adverts = append(pb.Adverts, Advert{Node: a.node, Servers: append([]ServerID(nil), a.servers...)})
	}
	if p.cfg.DigestsEnabled && p.cfg.DigestsPerMessage > 0 {
		own := p.sharedDigest
		if own == nil {
			if p.digestDirty {
				p.rebuildDigest()
			}
			own = p.digest
		}
		// Digests are immutable snapshots (see rebuildDigest), shared by
		// pointer — no per-message copies.
		pb.Digests = append(pb.Digests, DigestUpdate{Server: p.ID, Digest: own})
		for i := 1; i < p.cfg.DigestsPerMessage && len(p.digestList) > 0; i++ {
			e := p.digestList[p.src.Intn(len(p.digestList))]
			pb.Digests = append(pb.Digests, DigestUpdate{Server: e.server, Digest: e.filter})
		}
	}
	return pb
}

// sweepAdverts expires stale adverts in place and stamps the sweep time.
func (p *Peer) sweepAdverts(now float64) {
	kept := p.recentAdverts[:0]
	for _, a := range p.recentAdverts {
		if now-a.created <= advertTTL {
			kept = append(kept, a)
		}
	}
	p.recentAdverts = kept
	p.advertSweptAt = now
}

// BatchTick runs the per-batch amortized bookkeeping for a batch-drain event
// loop: one advert-expiry sweep (piggyback then skips its per-message sweep
// for advertSweepSlack) and one digest rebuild if the hosted set changed,
// instead of paying both on every outgoing message of the batch. Call it once
// per drained inbox batch, before handling the batch's messages.
func (p *Peer) BatchTick() {
	p.sweepAdverts(p.env.Now())
	if p.digestDirty && p.sharedDigest == nil {
		p.rebuildDigest()
	}
}

// absorbPiggy ingests a received rider: load gossip, adverts, digests.
func (p *Peer) absorbPiggy(pb *Piggyback) {
	now := p.env.Now()
	if pb.From != NoServer && pb.From != p.ID {
		p.recordLoad(pb.From, pb.Load, now)
	}
	for i := range pb.Digests {
		p.storeDigest(pb.Digests[i].Server, pb.Digests[i].Digest)
	}
	for i := range pb.Adverts {
		p.absorbAdvert(&pb.Adverts[i])
	}
}

// absorbAdvert folds a new-replica advertisement into whatever map this peer
// keeps for the node (hosted/neighbor/cached); if none and caching is on, a
// new cache entry is created.
func (p *Peer) absorbAdvert(a *Advert) {
	if len(a.Servers) == 0 {
		return
	}
	target := p.mapFor(a.Node)
	if target == nil {
		if p.cfg.CachingEnabled && p.Accepts(a.Node) {
			m := NodeMap{}
			for _, s := range a.Servers {
				if s != p.ID {
					m.AddAdvertised(s, p.cfg.MapSize)
				}
			}
			if m.Len() > 0 {
				p.cache.Put(a.Node, m)
			}
		}
		return
	}
	for i := len(a.Servers) - 1; i >= 0; i-- { // oldest first so newest ends in front
		target.AddAdvertised(a.Servers[i], p.cfg.MapSize)
	}
	// Advert pinning can displace entries from a full map; a hosted node's
	// self entry must survive.
	if p.Hosts(a.Node) {
		p.ensureSelf(target)
	}
}

// mapFor returns the authoritative map this peer keeps for node: hosted
// self-map, neighbor map, or cached map — nil if none. The returned pointer
// may be mutated in place.
func (p *Peer) mapFor(node NodeID) *NodeMap {
	if hn, ok := p.hosted[node]; ok {
		return &hn.selfMap
	}
	if e, ok := p.neighborMaps[node]; ok {
		return &e.m
	}
	return p.cache.Peek(node)
}

// learnMap merges an incoming map for node into the peer's state (§3.7 map
// merging), applying digest filtering and stale-self purging.
func (p *Peer) learnMap(node NodeID, incoming *NodeMap) {
	hosted := p.Hosts(node)
	if !hosted && incoming.Contains(p.ID) {
		// We appear in a map for a node we do not host: purge the stale
		// entry before storing (§3.5 "removing stale entries from maps when
		// they are routed through servers").
		inc := incoming.Clone()
		inc.Remove(p.ID)
		incoming = &inc
		p.Stats.StaleSelfPurged++
	}
	if incoming.Len() == 0 {
		return
	}
	keep := p.keepFor(node)
	if hn, ok := p.hosted[node]; ok {
		hn.selfMap.Merge(incoming, p.cfg.MapSize, p.src, keep)
		p.ensureSelf(&hn.selfMap)
		return
	}
	if e, ok := p.neighborMaps[node]; ok {
		e.m.Merge(incoming, p.cfg.MapSize, p.src, keep)
		return
	}
	if !p.cfg.CachingEnabled {
		return
	}
	if m := p.cache.Get(node); m != nil {
		m.Merge(incoming, p.cfg.MapSize, p.src, keep)
		return
	}
	if !p.Accepts(node) {
		// Another shard's partition: its home shard learns this entry.
		return
	}
	c := incoming.Clone()
	c.Truncate(p.cfg.MapSize)
	p.cache.Put(node, c)
}

// ensureSelf guarantees the peer appears in a map of a node it hosts.
func (p *Peer) ensureSelf(m *NodeMap) {
	if m.Contains(p.ID) {
		return
	}
	if m.Len() >= p.cfg.MapSize && m.Len() > 0 {
		m.Servers[m.Len()-1] = p.ID // displace the last regular entry
	} else {
		m.Servers = append(m.Servers, p.ID)
	}
}

// outgoingMap builds the bounded map to propagate for node: the stored map,
// cloned, with self guaranteed when hosting (§3.7 map size constraint applies
// to propagated maps too).
func (p *Peer) outgoingMap(node NodeID) NodeMap {
	src := p.mapFor(node)
	if src == nil {
		if p.Hosts(node) {
			return SingleServerMap(p.ID)
		}
		return NodeMap{}
	}
	m := src.Clone()
	if p.Hosts(node) {
		p.ensureSelf(&m)
	}
	m.Truncate(p.cfg.MapSize)
	return m
}

// Maintain runs the periodic housekeeping tick: digest rebuild when dirty,
// hysteresis bias decay, advert expiry, and age-based replica eviction
// (§3.5). The driver (cluster or overlay) calls it every
// cfg.MaintainInterval seconds.
func (p *Peer) Maintain() {
	p.foldFastTouches()
	now := p.env.Now()
	if p.cfg.AdaptiveThigh {
		sum, n := 0.0, 0
		for _, li := range p.knownLoads {
			sum += li.load
			n++
		}
		if n > 0 {
			p.sysLoadEst = sum / float64(n)
		}
	}
	p.loadBias *= 0.5
	if math.Abs(p.loadBias) < 1e-4 {
		p.loadBias = 0
	}
	if p.digestDirty {
		p.rebuildDigest()
	}
	if p.cfg.ReplicaEvictAge > 0 {
		var victims []NodeID
		for _, hn := range p.hostedList {
			if !hn.owned && now-hn.lastUsed > p.cfg.ReplicaEvictAge {
				victims = append(victims, hn.id)
			}
		}
		for _, v := range victims {
			p.evictReplica(v)
		}
	}
}

// evictReplica removes a hosted replica and its context (owned nodes are
// never evicted). It reports whether an eviction happened.
func (p *Peer) evictReplica(node NodeID) bool {
	hn, ok := p.hosted[node]
	if !ok || hn.owned {
		return false
	}
	delete(p.hosted, node)
	for i, h := range p.hostedList {
		if h == hn {
			p.hostedList = append(p.hostedList[:i], p.hostedList[i+1:]...)
			break
		}
	}
	for _, nb := range hn.neighborIDs {
		if e, ok := p.neighborMaps[nb]; ok {
			e.refs--
			if e.refs <= 0 {
				delete(p.neighborMaps, nb)
			}
		}
	}
	if p.resident.cold != nil {
		p.resident.bytes -= int64(hn.size)
	}
	p.digestDirty = true
	p.journalKind(MutDelete, node)
	p.Stats.ReplicaEvictions++
	if p.tel != nil {
		p.tel.evictions.Inc()
	}
	if p.Hooks.OnReplicaEvicted != nil {
		p.Hooks.OnReplicaEvicted(node)
	}
	return true
}

// rankHosted returns hosted nodes ordered by decayed weight, heaviest first
// (ties by node id for determinism).
func (p *Peer) rankHosted() []*hostedNode {
	p.foldFastTouches()
	ranked := append([]*hostedNode(nil), p.hostedList...)
	sort.SliceStable(ranked, func(i, j int) bool {
		wi, wj := p.decayedWeight(ranked[i]), p.decayedWeight(ranked[j])
		if wi != wj {
			return wi > wj
		}
		return ranked[i].id < ranked[j].id
	})
	return ranked
}

// NodeWeight exposes a hosted node's decayed ranking weight (testing and
// introspection).
func (p *Peer) NodeWeight(node NodeID) float64 {
	p.foldFastTouches()
	hn, ok := p.hosted[node]
	if !ok {
		return 0
	}
	return p.decayedWeight(hn)
}

// SetMeta updates an owned node's metadata (owner-only mutation, §2.3),
// bumping its version. It reports whether the peer owns the node.
func (p *Peer) SetMeta(node NodeID, attrs map[string]string) bool {
	hn, ok := p.hosted[node]
	if !ok || !hn.owned {
		return false
	}
	hn.meta.Version++
	hn.meta.Attrs = attrs
	p.markDirty(hn)
	if p.journal != nil {
		p.journal(&HostedMutation{Kind: MutMeta, Node: node, Meta: hn.meta})
	}
	return true
}

// MetaOf returns the metadata this peer holds for a hosted node.
func (p *Peer) MetaOf(node NodeID) (Meta, bool) {
	hn, ok := p.hosted[node]
	if !ok {
		return Meta{}, false
	}
	return hn.meta.Clone(), true
}

// SetData stores an owned node's application data (owner-only, like meta).
// It reports whether the peer owns the node.
func (p *Peer) SetData(node NodeID, data []byte) bool {
	hn, ok := p.hosted[node]
	if !ok || !hn.owned {
		return false
	}
	hn.data = append([]byte(nil), data...)
	hn.hasData = true
	p.markDirty(hn)
	if p.journal != nil {
		p.journal(&HostedMutation{Kind: MutData, Node: node, Data: hn.data})
	}
	return true
}

// DataOf returns a copy of the node's data if this peer owns it.
func (p *Peer) DataOf(node NodeID) ([]byte, bool) {
	hn, ok := p.hosted[node]
	if !ok || !hn.owned || hn.data == nil {
		return nil, false
	}
	return append([]byte(nil), hn.data...), true
}
