package core

import (
	"sort"
	"testing"

	"terradir/internal/namespace"
	"terradir/internal/rng"
)

// fakeEnv is a single-peer Env with manual time and captured sends.
type fakeEnv struct {
	now    float64
	load   float64
	sent   []sentMsg
	timers []timer
}

type sentMsg struct {
	to  ServerID
	msg Message
}

type timer struct {
	at float64
	fn func()
}

func (e *fakeEnv) Now() float64  { return e.now }
func (e *fakeEnv) Load() float64 { return e.load }
func (e *fakeEnv) Send(to ServerID, m Message) {
	e.sent = append(e.sent, sentMsg{to, m})
}
func (e *fakeEnv) After(d float64, fn func()) {
	e.timers = append(e.timers, timer{at: e.now + d, fn: fn})
}

// advance moves time forward and fires due timers in schedule order.
func (e *fakeEnv) advance(dt float64) {
	e.now += dt
	sort.SliceStable(e.timers, func(i, j int) bool { return e.timers[i].at < e.timers[j].at })
	var rest []timer
	for _, t := range e.timers {
		if t.at <= e.now {
			t.fn()
		} else {
			rest = append(rest, t)
		}
	}
	e.timers = rest
}

func (e *fakeEnv) take() []sentMsg {
	out := e.sent
	e.sent = nil
	return out
}

// paperTree is the namespace of the paper's Fig. 1.
func paperTree() (*namespace.Tree, map[string]NodeID) {
	var b namespace.Builder
	ids := map[string]NodeID{}
	add := func(name string, parent string, label string) {
		if parent == "" {
			ids[name] = b.AddRoot(label)
			return
		}
		ids[name] = b.AddChild(ids[parent], label)
	}
	add("/u", "", "university")
	add("/u/pub", "/u", "public")
	add("/u/priv", "/u", "private")
	add("/u/pub/people", "/u/pub", "people")
	add("/u/priv/people", "/u/priv", "people")
	add("/u/pub/people/faculty", "/u/pub/people", "faculty")
	add("/u/pub/people/students", "/u/pub/people", "students")
	add("/u/priv/people/staff", "/u/priv/people", "staff")
	add("/u/priv/people/students", "/u/priv/people", "students")
	add("/u/pub/people/faculty/John", "/u/pub/people/faculty", "John")
	add("/u/pub/people/students/Steve", "/u/pub/people/students", "Steve")
	add("/u/priv/people/staff/Ann", "/u/priv/people/staff", "Ann")
	add("/u/priv/people/students/Lisa", "/u/priv/people/students", "Lisa")
	add("/u/priv/people/students/Mary", "/u/priv/people/students", "Mary")
	return b.Build(), ids
}

// newTestPeer builds a peer owning the given nodes of tree, with every other
// node owned by `other`.
func newTestPeer(t *testing.T, tree *namespace.Tree, id ServerID, owned []NodeID, other ServerID, cfg Config, env Env) *Peer {
	t.Helper()
	p, err := NewPeer(id, tree, cfg, env, rng.New(uint64(id)+100))
	if err != nil {
		t.Fatal(err)
	}
	ownedSet := map[NodeID]bool{}
	for _, n := range owned {
		p.AddOwned(n, Meta{})
		ownedSet[n] = true
	}
	p.FinishSetup(func(n NodeID) ServerID {
		if ownedSet[n] {
			return id
		}
		return other
	})
	return p
}

// miniNet is a multi-peer synchronous harness: it constructs one peer per
// ownership list and delivers messages breadth-first with a shared clock —
// a deterministic micro-cluster for protocol-level tests without the
// simulator's queueing model.
type miniNet struct {
	t        *testing.T
	tree     *namespace.Tree
	peers    []*Peer
	envs     []*miniEnv
	owner    map[NodeID]ServerID
	clock    float64
	inflight []delivery
}

type miniEnv struct {
	net    *miniNet
	id     ServerID
	load   float64
	queue  []sentMsg
	timers []timer
}

func (e *miniEnv) Now() float64  { return e.net.clock }
func (e *miniEnv) Load() float64 { return e.load }
func (e *miniEnv) Send(to ServerID, m Message) {
	e.net.inflight = append(e.net.inflight, delivery{to: to, msg: m})
}
func (e *miniEnv) After(d float64, fn func()) {
	e.timers = append(e.timers, timer{at: e.net.clock + d, fn: fn})
}

type delivery struct {
	to  ServerID
	msg Message
}

func newMiniNet(t *testing.T, tree *namespace.Tree, ownership [][]NodeID, cfg Config) *miniNet {
	t.Helper()
	n := &miniNet{t: t, tree: tree, owner: map[NodeID]ServerID{}}
	for sid, nodes := range ownership {
		for _, nd := range nodes {
			n.owner[nd] = ServerID(sid)
		}
	}
	// Unowned nodes default to server 0.
	for i := 0; i < tree.Len(); i++ {
		if _, ok := n.owner[NodeID(i)]; !ok {
			n.owner[NodeID(i)] = 0
			ownership[0] = append(ownership[0], NodeID(i))
		}
	}
	for sid := range ownership {
		env := &miniEnv{net: n, id: ServerID(sid)}
		n.envs = append(n.envs, env)
		p, err := NewPeer(ServerID(sid), tree, cfg, env, rng.New(uint64(sid)+7))
		if err != nil {
			t.Fatal(err)
		}
		for _, nd := range ownership[sid] {
			p.AddOwned(nd, Meta{})
		}
		n.peers = append(n.peers, p)
	}
	for _, p := range n.peers {
		p.FinishSetup(func(nd NodeID) ServerID { return n.owner[nd] })
	}
	return n
}

func (n *miniNet) deliverAll() {
	for len(n.inflight) > 0 {
		d := n.inflight[0]
		n.inflight = n.inflight[1:]
		p := n.peers[d.to]
		switch m := d.msg.(type) {
		case *QueryMsg:
			p.HandleQuery(m)
		default:
			p.HandleControl(d.msg)
		}
	}
}

// advance moves the shared clock and fires due timers on every env.
func (n *miniNet) advance(dt float64) {
	n.clock += dt
	for _, e := range n.envs {
		sort.SliceStable(e.timers, func(i, j int) bool { return e.timers[i].at < e.timers[j].at })
		var rest []timer
		for _, tm := range e.timers {
			if tm.at <= n.clock {
				tm.fn()
			} else {
				rest = append(rest, tm)
			}
		}
		e.timers = rest
	}
	n.deliverAll()
}

// lookup runs a query from source to dest through the mini net and returns
// the final result message.
func (n *miniNet) lookup(source ServerID, dest NodeID) *ResultMsg {
	q := &QueryMsg{QueryID: 1, Dest: dest, Source: source, OnBehalf: namespace.Invalid, Started: n.clock}
	var res *ResultMsg
	// Intercept: wrap delivery loop manually.
	n.peers[source].HandleQuery(q)
	for len(n.inflight) > 0 {
		d := n.inflight[0]
		n.inflight = n.inflight[1:]
		if r, ok := d.msg.(*ResultMsg); ok && d.to == source {
			res = r
			n.peers[d.to].HandleResult(r)
			continue
		}
		p := n.peers[d.to]
		switch m := d.msg.(type) {
		case *QueryMsg:
			p.HandleQuery(m)
		default:
			p.HandleControl(d.msg)
		}
	}
	return res
}
