package core

import (
	"terradir/internal/bloom"
	"terradir/internal/namespace"
	"terradir/internal/telemetry"
)

// ServerID identifies a participating server (peer). IDs are dense in
// [0, cluster size).
type ServerID int32

// NoServer is the sentinel for "no server".
const NoServer ServerID = -1

// clientIDBase is the first (highest) ServerID of the reserved edge-client
// range. Edge clients — gateways and other wire-protocol clients that are
// not overlay peers — identify themselves with IDs at or below this value so
// they can never collide with peer IDs (dense in [0, cluster size)) or
// NoServer. Client IDs appear only as QueryMsg.Source / reply routes; they
// never enter membership, ownership, or load tables.
const clientIDBase ServerID = -100

// ClientID maps a small non-negative edge-client ordinal to its reserved
// ServerID. Two clients of one deployment must not share an ordinal: peers
// route replies to whichever connection last introduced itself with the ID.
func ClientID(ordinal int) ServerID { return clientIDBase - ServerID(ordinal) }

// IsClient reports whether id lies in the reserved edge-client range.
func IsClient(id ServerID) bool { return id <= clientIDBase }

// NodeID aliases the namespace node identifier.
type NodeID = namespace.NodeID

// Meta is opaque application-supplied node metadata (name-value annotations
// in the paper's data model). Only the owner mutates it; replicas keep the
// newest version seen.
type Meta struct {
	Version uint64
	Attrs   map[string]string
}

// Clone returns a deep copy of the metadata.
func (m Meta) Clone() Meta {
	c := Meta{Version: m.Version}
	if m.Attrs != nil {
		c.Attrs = make(map[string]string, len(m.Attrs))
		for k, v := range m.Attrs {
			c.Attrs[k] = v
		}
	}
	return c
}

// Message is the sum type of all protocol messages. Implementations are
// value-ish: a message handed to Env.Send must not share mutable state with
// the sender (soft state is copied at send time).
type Message interface{ kind() string }

// QueryMsg routes a lookup through the overlay.
type QueryMsg struct {
	QueryID  uint64
	Dest     NodeID
	Source   ServerID // initiating server; receives the result
	OnBehalf NodeID   // node whose map the sender selected this server from
	Hops     int
	Started  float64 // initiation time (simulation seconds)
	// PrevDist is the namespace distance from the sender's chosen candidate
	// node to the destination — used to account routing accuracy (a
	// forwarding step makes incremental progress when the receiver can do
	// strictly better).
	PrevDist int32

	// Path is the path-so-far: one entry per forwarding server, used for
	// path-propagation caching (§2.4) and disseminating replica maps (§3.7).
	Path []PathEntry

	// TraceID identifies the lookup's distributed trace; 0 means untraced.
	// Every server on the route appends a telemetry.Span describing its hop.
	TraceID uint64
	// SpanBudget bounds the in-band span chain (stale-state loops must not
	// grow the message unboundedly); hops past the budget still report
	// out-of-band but are dropped from the in-band chain.
	SpanBudget int32
	// Spans is the in-band span chain accumulated along the route.
	Spans []telemetry.Span

	// Enqueued and ServedAt are driver-local timestamps (seconds) set by the
	// hosting server when the query enters its request queue and when service
	// begins. They never cross the wire — each hop measures its own queue
	// wait and service time from them.
	Enqueued float64
	ServedAt float64

	Piggy Piggyback
}

func (*QueryMsg) kind() string { return "query" }

// ResultMsg returns a lookup outcome to the initiating server.
type ResultMsg struct {
	QueryID uint64
	Dest    NodeID
	OK      bool
	Reason  FailReason
	Hops    int
	Started float64
	Meta    Meta
	Map     NodeMap // mapping for the resolved node (lookup semantics §2.1)
	Path    []PathEntry
	// TraceID and Spans carry the lookup's completed trace back to the
	// initiator (TraceID 0 = untraced).
	TraceID uint64
	Spans   []telemetry.Span
	Piggy   Piggyback
}

func (*ResultMsg) kind() string { return "result" }

// TraceSpanMsg is the out-of-band per-hop span report sent to the query's
// initiating server as the query routes. It is redundant with the in-band
// chain for completed lookups, but it is what survives when the query itself
// is lost mid-route: the initiator's trace store then holds a truncated
// prefix of the route instead of nothing.
type TraceSpanMsg struct {
	TraceID uint64
	Span    telemetry.Span
	Piggy   Piggyback
}

func (*TraceSpanMsg) kind() string { return "trace-span" }

// FailReason classifies lookup failures.
type FailReason uint8

const (
	FailNone FailReason = iota
	// FailTTL: the forwarding TTL was exceeded (stale-state loop).
	FailTTL
	// FailNoRoute: the server had no usable candidate to forward to.
	FailNoRoute
	// FailShed: an edge tier refused the request under admission control
	// (per-tenant quota exhausted or the gateway draining). Never produced by
	// overlay peers — only gateways synthesize it.
	FailShed
)

func (r FailReason) String() string {
	switch r {
	case FailNone:
		return "none"
	case FailTTL:
		return "ttl"
	case FailNoRoute:
		return "no-route"
	case FailShed:
		return "shed"
	}
	return "unknown"
}

// LoadProbeMsg asks a candidate replica host for its actual load (§3.3
// step 2).
type LoadProbeMsg struct {
	Session uint64
	From    ServerID
	Piggy   Piggyback
}

func (*LoadProbeMsg) kind() string { return "load-probe" }

// LoadProbeReply returns the probed server's actual load.
type LoadProbeReply struct {
	Session uint64
	From    ServerID
	Load    float64
	Piggy   Piggyback
}

func (*LoadProbeReply) kind() string { return "load-probe-reply" }

// ReplicateRequest carries replica payloads to a destination host (§3.3
// step 3).
type ReplicateRequest struct {
	Session uint64
	From    ServerID
	Load    float64 // requester's load at send time
	Nodes   []ReplicaPayload
	Piggy   Piggyback
}

func (*ReplicateRequest) kind() string { return "replicate-request" }

// ReplicateReply acknowledges (or refuses) a replication request.
type ReplicateReply struct {
	Session  ServerSession
	Accepted []NodeID // nodes actually installed
	Load     float64  // destination's load after install
	Piggy    Piggyback
}

func (*ReplicateReply) kind() string { return "replicate-reply" }

// ServerSession pairs a session ID with the responding server.
type ServerSession struct {
	ID   uint64
	From ServerID
}

// DataRequest retrieves a node's application data from a specific host —
// the second step of the paper's two-step process (§2.1: "a node lookup,
// followed by the actual data retrieval"). Data requests are sent directly
// to a server from the node's map, never routed.
type DataRequest struct {
	ReqID uint64
	Node  NodeID
	From  ServerID
	Piggy Piggyback
}

func (*DataRequest) kind() string { return "data-request" }

// DataReply answers a DataRequest. OK is false when the contacted server
// does not hold the node's data (only owners do; routing replicas carry no
// data — Table 1), in which case the client tries another host.
type DataReply struct {
	ReqID uint64
	Node  NodeID
	OK    bool
	Data  []byte
	From  ServerID
	Piggy Piggyback
}

func (*DataReply) kind() string { return "data-reply" }

// ReplicaPayload is the state transferred to create one replica: node
// metadata, the node's own map, and its routing context (neighbor maps) —
// exactly the state rows "Replicated" of the paper's Table 1.
type ReplicaPayload struct {
	Node    NodeID
	Meta    Meta
	SelfMap NodeMap
	// WeightHint is the source's current ranking weight for the node. Node
	// weights count queries (same unit everywhere), so the destination seeds
	// the replica's rank from it — a hot incoming replica displaces colder
	// residents, and a colder one is refused rather than thrashing the
	// Frepl-bounded replica set.
	WeightHint float64
	Neighbors  []NeighborMap
}

// NeighborMap associates a neighboring node with its map.
type NeighborMap struct {
	Node NodeID
	Map  NodeMap
}

// PathEntry is one step of the propagated path: a node and a mapping for it.
type PathEntry struct {
	Node NodeID
	Map  NodeMap
}

// Piggyback is the in-band dissemination rider attached to every message:
// the sender's identity and load (for replication target selection), newly
// created replica advertisements, and a bounded set of inverse-mapping
// digests (§3.6, §6 "piggybacking on query messages limited amounts of
// information about replica configurations and server loads and digests").
type Piggyback struct {
	From    ServerID
	Load    float64
	Adverts []Advert
	Digests []DigestUpdate
}

// Advert announces recently created replicas for a node.
type Advert struct {
	Node    NodeID
	Servers []ServerID
}

// DigestUpdate carries one server's inverse-mapping digest. The filter is an
// immutable snapshot (owners allocate a fresh filter on rebuild), so
// receivers retain the pointer without copying.
type DigestUpdate struct {
	Server ServerID
	Digest *bloom.Filter
}

// Membership frame kinds (MembershipMsg.Kind). The SWIM-style protocol these
// implement lives in internal/membership; the message type lives here because
// every protocol message must satisfy the unexported Message interface.
const (
	// MembershipPing probes a member directly.
	MembershipPing uint8 = iota + 1
	// MembershipAck answers a ping (directly or on behalf of a relayed probe;
	// Target names the member being vouched for).
	MembershipAck
	// MembershipPingReq asks a helper to probe Target on the sender's behalf.
	MembershipPingReq
	// MembershipJoin asks a live peer to admit the sender into the cluster.
	MembershipJoin
	// MembershipJoinAck answers a join with a full membership snapshot.
	MembershipJoinAck
	// MembershipWarmup streams replica advertisements (bounded hosted-map
	// entries) to a newly admitted member so it routes warm from the start.
	MembershipWarmup
	// MembershipReconcile (wire version 6) is sent by a member that restarted
	// from local persistence: instead of receiving a full warmup stream it
	// offers its persisted incarnation plus a Bloom digest of the hosted
	// nodes it replayed, and asks its ring successor for the delta.
	MembershipReconcile
	// MembershipReconcileAck answers a reconcile with only the entries the
	// offered digest misses, carried in Warmup.
	MembershipReconcileAck
)

// MemberUpdate is one piggybacked membership delta: a (server, state,
// incarnation) claim, plus the member's dialable address when known, so
// address discovery rides the same gossip as liveness.
type MemberUpdate struct {
	Server      ServerID
	State       uint8 // membership.State: 0 alive, 1 suspect, 2 dead
	Incarnation uint64
	Addr        string
	// HasState marks a member that restarted from local persistence and
	// rebuilt its hosted state by replay: peers must not push it a full
	// warmup stream — it reconciles the delta itself (MembershipReconcile).
	HasState bool
}

// MembershipMsg carries the gossip membership protocol: probes, acks,
// indirect probe requests, the join handshake, and warmup streams. Every
// message piggybacks a bounded set of MemberUpdates (the SWIM dissemination
// component). Seq correlates acks with pending probes; Target names the
// probed member for PingReq/Ack relays.
type MembershipMsg struct {
	Kind    uint8
	Seq     uint64
	From    ServerID
	Target  ServerID
	Updates []MemberUpdate
	Warmup  []PathEntry
	// Incarnation and Digest ride only on MembershipReconcile (wire v6): the
	// rejoiner's persisted incarnation and the Bloom digest of the hosted
	// node set it replayed from disk.
	Incarnation uint64
	Digest      *bloom.Filter
}

func (*MembershipMsg) kind() string { return "membership" }

// HelloMsg is the client-role handshake (wire version 5): the first frame an
// edge client (gateway, wire-protocol CLI) sends on a connection it dialed.
// It registers the connection as the reply route for ID — the receiving
// transport sends every subsequent message addressed to ID back over this
// same connection instead of dialing, which is what lets a client that is
// not a routable overlay peer receive lookup results. ID must lie in the
// reserved client range (IsClient); peers never send hellos.
type HelloMsg struct {
	ID ServerID
	// Role is reserved for future differentiation of edge-client kinds;
	// currently always RoleClient.
	Role uint8
}

// RoleClient is the only HelloMsg role currently defined.
const RoleClient uint8 = 1

func (*HelloMsg) kind() string { return "hello" }

// NodeKey converts a node ID to a Bloom digest key. The simulator keys
// digests by node identity; the wire layer keys by fully-qualified name via
// bloom.HashString — both are opaque 64-bit keys to the filter.
func NodeKey(n NodeID) uint64 {
	x := uint64(uint32(n)) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}
