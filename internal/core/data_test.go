package core

import "testing"

func TestSetDataOwnerOnly(t *testing.T) {
	tree, ids := paperTree()
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"]}, 1, DefaultConfig(), &fakeEnv{})
	if !p.SetData(ids["/u"], []byte("root-data")) {
		t.Fatal("owner refused data")
	}
	if p.SetData(ids["/u/pub"], []byte("x")) {
		t.Fatal("non-hosted node accepted data")
	}
	// Replicas never store data.
	pl := ReplicaPayload{Node: ids["/u/pub"], SelfMap: SingleServerMap(1), WeightHint: 1}
	if !p.installReplica(&pl, 1) {
		t.Fatal("install failed")
	}
	if p.SetData(ids["/u/pub"], []byte("x")) {
		t.Fatal("replica accepted data")
	}
	if _, ok := p.DataOf(ids["/u/pub"]); ok {
		t.Fatal("replica reported data")
	}
	data, ok := p.DataOf(ids["/u"])
	if !ok || string(data) != "root-data" {
		t.Fatalf("DataOf = %q %v", data, ok)
	}
}

func TestDataOfReturnsCopy(t *testing.T) {
	tree, ids := paperTree()
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"]}, 1, DefaultConfig(), &fakeEnv{})
	orig := []byte("abc")
	p.SetData(ids["/u"], orig)
	orig[0] = 'x' // SetData must have copied
	got, _ := p.DataOf(ids["/u"])
	if string(got) != "abc" {
		t.Fatalf("SetData aliased caller buffer: %q", got)
	}
	got[0] = 'y' // DataOf must return a copy
	got2, _ := p.DataOf(ids["/u"])
	if string(got2) != "abc" {
		t.Fatalf("DataOf aliased internal buffer: %q", got2)
	}
}

func TestDataRequestHandler(t *testing.T) {
	tree, ids := paperTree()
	env := &fakeEnv{}
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"]}, 1, DefaultConfig(), env)
	p.SetData(ids["/u"], []byte("blob"))

	p.HandleControl(&DataRequest{ReqID: 5, Node: ids["/u"], From: 3})
	sent := env.take()
	if len(sent) != 1 || sent[0].to != 3 {
		t.Fatalf("reply routing wrong: %+v", sent)
	}
	rep := sent[0].msg.(*DataReply)
	if !rep.OK || string(rep.Data) != "blob" || rep.ReqID != 5 || rep.From != 0 {
		t.Fatalf("reply wrong: %+v", rep)
	}

	// Request for a node we do not own: negative reply.
	p.HandleControl(&DataRequest{ReqID: 6, Node: ids["/u/priv"], From: 3})
	rep2 := env.take()[0].msg.(*DataReply)
	if rep2.OK || rep2.Data != nil {
		t.Fatalf("negative reply wrong: %+v", rep2)
	}
}

func TestDataReplyAbsorbsPiggy(t *testing.T) {
	tree, ids := paperTree()
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"]}, 1, DefaultConfig(), &fakeEnv{})
	p.HandleControl(&DataReply{ReqID: 1, Node: ids["/u"], From: 7, Piggy: Piggyback{From: 7, Load: 0.6}})
	if li, ok := p.knownLoads[7]; !ok || li.load != 0.6 {
		t.Fatal("data reply rider not absorbed")
	}
}
