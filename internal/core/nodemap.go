package core

import "terradir/internal/rng"

// NodeMap associates a node with a bounded, possibly stale and incomplete
// set of servers hosting it (§3.7). The first NumAdvertised entries are
// advertisement-pinned: they describe recently created replicas and survive
// merging ahead of regular entries, so traffic diverts quickly to new
// replicas.
//
// Invariants maintained by all mutators:
//   - len(Servers) <= the Msize in force,
//   - entries are unique,
//   - 0 <= NumAdvertised <= len(Servers).
type NodeMap struct {
	Servers       []ServerID
	NumAdvertised int
}

// Len returns the number of entries.
func (m *NodeMap) Len() int { return len(m.Servers) }

// Contains reports whether s is in the map.
func (m *NodeMap) Contains(s ServerID) bool {
	for _, v := range m.Servers {
		if v == s {
			return true
		}
	}
	return false
}

// Clone returns a deep copy. Messages must carry clones, never aliases.
func (m *NodeMap) Clone() NodeMap {
	return NodeMap{
		Servers:       append([]ServerID(nil), m.Servers...),
		NumAdvertised: m.NumAdvertised,
	}
}

// SingleServerMap returns a map containing just s.
func SingleServerMap(s ServerID) NodeMap {
	return NodeMap{Servers: []ServerID{s}}
}

// AddRegular inserts s as a regular (non-advertised) entry if absent and
// capacity allows; it reports whether the map changed.
func (m *NodeMap) AddRegular(s ServerID, msize int) bool {
	if m.Contains(s) || len(m.Servers) >= msize {
		return false
	}
	m.Servers = append(m.Servers, s)
	return true
}

// AddAdvertised inserts s at the front of the advertised prefix (newest
// first). If s is already present it is promoted. If the map is full, the
// last regular entry is displaced; if all entries are advertised, the oldest
// advertisement is displaced.
func (m *NodeMap) AddAdvertised(s ServerID, msize int) {
	// Remove any existing occurrence.
	for i, v := range m.Servers {
		if v == s {
			if i < m.NumAdvertised {
				m.NumAdvertised--
			}
			m.Servers = append(m.Servers[:i], m.Servers[i+1:]...)
			break
		}
	}
	if len(m.Servers) >= msize {
		// Displace: prefer dropping the last regular entry; otherwise the
		// oldest advertisement (the last advertised entry).
		m.Servers = m.Servers[:len(m.Servers)-1]
		if m.NumAdvertised > len(m.Servers) {
			m.NumAdvertised = len(m.Servers)
		}
	}
	m.Servers = append(m.Servers, 0)
	copy(m.Servers[1:], m.Servers)
	m.Servers[0] = s
	m.NumAdvertised++
	if m.NumAdvertised > msize {
		m.NumAdvertised = msize
	}
}

// Remove deletes s if present, reporting whether it was found.
func (m *NodeMap) Remove(s ServerID) bool {
	for i, v := range m.Servers {
		if v == s {
			if i < m.NumAdvertised {
				m.NumAdvertised--
			}
			m.Servers = append(m.Servers[:i], m.Servers[i+1:]...)
			return true
		}
	}
	return false
}

// Demote moves all advertised entries to regular status (used once an
// advertisement has aged out of "recent").
func (m *NodeMap) Demote() { m.NumAdvertised = 0 }

// Merge folds incoming into m under the paper's merge rule (§3.7): the
// advertised entries of both maps are preferred (incoming first — they are
// newer), and the remaining slots are filled with a uniform random choice
// from the leftover union. keep is an optional predicate: entries for which
// keep returns false are dropped entirely (digest-based map filtering).
func (m *NodeMap) Merge(incoming *NodeMap, msize int, src *rng.Source, keep func(ServerID) bool) {
	type cand struct {
		s   ServerID
		adv bool
	}
	// Maps here are tiny (≤ Msize entries each side), so linear scans beat
	// any hash structure — this runs on every path-entry absorption.
	cands := make([]cand, 0, len(incoming.Servers)+len(m.Servers))
	add := func(s ServerID, adv bool) {
		for i := range cands {
			if cands[i].s == s {
				// Promote to advertised if any source says so.
				cands[i].adv = cands[i].adv || adv
				return
			}
		}
		if keep != nil && !keep(s) {
			return
		}
		cands = append(cands, cand{s, adv})
	}
	for i, s := range incoming.Servers {
		add(s, i < incoming.NumAdvertised)
	}
	for i, s := range m.Servers {
		add(s, i < m.NumAdvertised)
	}
	// Partition: advertised (in encounter order: incoming's newest first),
	// then the rest shuffled.
	var adv, reg []ServerID
	for _, c := range cands {
		if c.adv {
			adv = append(adv, c.s)
		} else {
			reg = append(reg, c.s)
		}
	}
	if len(adv) > msize {
		adv = adv[:msize]
	}
	room := msize - len(adv)
	if room < len(reg) {
		src.Shuffle(len(reg), func(i, j int) { reg[i], reg[j] = reg[j], reg[i] })
		reg = reg[:room]
	}
	m.Servers = append(append(m.Servers[:0], adv...), reg...)
	m.NumAdvertised = len(adv)
}

// Pick returns a uniformly random entry passing the keep predicate and not
// equal to exclude, or NoServer if none qualifies. Digest-refuted entries
// are never selected (§3.7 map filtering is strict); callers that get
// NoServer prune the map and fall back to their next-best candidate.
func (m *NodeMap) Pick(src *rng.Source, exclude ServerID, keep func(ServerID) bool) ServerID {
	n := 0
	var chosen ServerID = NoServer
	for _, s := range m.Servers {
		if s == exclude || (keep != nil && !keep(s)) {
			continue
		}
		n++
		// Reservoir sample of size 1 for a uniform choice in one pass.
		if src.Intn(n) == 0 {
			chosen = s
		}
	}
	return chosen
}

// Prune removes entries rejected by keep, returning how many were removed.
func (m *NodeMap) Prune(keep func(ServerID) bool) int {
	if keep == nil {
		return 0
	}
	out := m.Servers[:0]
	adv := 0
	for i, s := range m.Servers {
		if keep(s) {
			if i < m.NumAdvertised {
				adv++
			}
			out = append(out, s)
		}
	}
	removed := len(m.Servers) - len(out)
	m.Servers = out
	m.NumAdvertised = adv
	return removed
}

// Truncate enforces msize, dropping regular entries first.
func (m *NodeMap) Truncate(msize int) {
	if len(m.Servers) <= msize {
		return
	}
	m.Servers = m.Servers[:msize]
	if m.NumAdvertised > msize {
		m.NumAdvertised = msize
	}
}
