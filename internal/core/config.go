// Package core implements the TerraDir hierarchical routing and soft-state
// replication protocol (Silaghi et al., IPPS 2004): per-server routing state
// over a tree namespace (owned nodes with neighbor context, replicas, LRU
// caches with path propagation), the load-triggered adaptive replication
// protocol of §3, and the Bloom-filter inverse-mapping digest machinery of
// §3.6 (shortcut discovery and map pruning).
//
// The protocol core is a transport-agnostic state machine: a Peer consumes
// messages and emits sends through an Env interface. The same Peer code is
// driven by the deterministic discrete-event simulator (internal/cluster)
// for the paper's experiments and by the live goroutine-per-peer overlay
// (internal/overlay) over real transports.
package core

import (
	"fmt"
	"math"
)

// Config holds every protocol constant. The zero value is not valid; start
// from DefaultConfig. Feature switches exist for the paper's ablations
// (Fig. 5 compares base / +caching / +caching+replication; §2.4 and §3.6
// motivate path propagation and digests).
type Config struct {
	// Thigh is the high-water load threshold that triggers a load balancing
	// (replication) session (§3.1).
	Thigh float64
	// AdaptiveThigh raises the effective threshold to (estimated system
	// utilization + DeltaMin) when that exceeds Thigh — §3.1: the threshold
	// "can automatically be set in proportion to the overall system
	// utilization". Near-capacity deployments otherwise rebalance
	// perpetually: with mean load above Thigh, half the fleet is
	// "overloaded" by definition.
	AdaptiveThigh bool
	// DeltaMin is the minimum load difference between requester and target
	// for the target to agree to host new replicas (§3.1).
	DeltaMin float64
	// ReplFactor (Frepl) bounds replicas hosted per server to
	// ReplFactor × (owned nodes) (§3.4). May be fractional (§4.4 sweeps
	// 0.125–0.5).
	ReplFactor float64
	// MapSize (Msize) caps entries per node map, both stored and propagated
	// (§3.7).
	MapSize int
	// CacheSlots caps the LRU routing cache per server (§2.4; logarithmic in
	// system size in the paper's runs).
	CacheSlots int

	// MaxHops is the forwarding TTL guarding against routing loops caused by
	// stale soft state. Queries exceeding it fail.
	MaxHops int
	// MaxPathEntries caps the path-so-far propagated with a query (§2.4).
	MaxPathEntries int

	// WeightHalfLife is the half-life (seconds) of the exponential decay
	// applied to node weight counters, approximating the paper's periodic
	// counter rescaling (§3.2).
	WeightHalfLife float64

	// ReplicationAttempts is the number of destination candidates tried per
	// load-balancing session before aborting (§3.3 step 5).
	ReplicationAttempts int
	// ReplicationCooldown is the delay (seconds) before a new session after
	// an aborted one (§3.3 step 5) and the minimum spacing between sessions.
	ReplicationCooldown float64
	// ProbeTimeout is how long (seconds) a session waits for a load probe or
	// replicate reply before giving up on that candidate.
	ProbeTimeout float64

	// ReplicaEvictAge evicts replicas unused for this many seconds during
	// maintenance (§3.5 "evict replicas that have not been in use for a long
	// time"). Zero disables age-based eviction.
	ReplicaEvictAge float64
	// MaintainInterval is the spacing (seconds) of the per-peer maintenance
	// tick (digest rebuild, load-bias decay, age-based eviction).
	MaintainInterval float64

	// DigestBitsPerNode sizes each server's Bloom digest: bits = max(64,
	// BitsPerNode × hosted nodes), rounded up to a power of two.
	DigestBitsPerNode int
	// DigestHashes is the Bloom filter hash count.
	DigestHashes int
	// MaxDigests bounds how many foreign digests a peer retains. Retained
	// digests serve O(1) map pruning for any entry; only a rotating window
	// of DigestScanPerHop of them is scanned for shortcut discovery.
	MaxDigests int
	// DigestScanPerHop bounds how many retained digests the shortcut search
	// scans per hop (rotating window over the table, so coverage spreads
	// across hops). Zero scans all retained digests.
	DigestScanPerHop int
	// DigestsPerMessage bounds digests piggybacked per outgoing message.
	DigestsPerMessage int
	// DigestShortcutLevels bounds how many of the destination's deepest
	// ancestors the shortcut search (§3.6.1) tests against known digests per
	// hop. The deepest levels dominate the benefit (they are the closest
	// possible nodes); the cap keeps per-hop cost at
	// O(levels × MaxDigests) Bloom probes.
	DigestShortcutLevels int

	// MaxKnownLoads bounds the per-peer table of gossiped server loads.
	MaxKnownLoads int

	// Feature switches (ablations).
	CachingEnabled     bool // C in Fig. 5; false = base system B
	ReplicationEnabled bool // R in Fig. 5
	DigestsEnabled     bool // §3.6 machinery
	PathPropagation    bool // §2.4; false caches only the query endpoints
	AdvertiseReplicas  bool // §3.7 new-replica advertisement
}

// DefaultConfig returns the configuration used by the paper's evaluation
// (reconstructed values flagged in DESIGN.md §4).
func DefaultConfig() Config {
	return Config{
		Thigh:                0.75,
		DeltaMin:             0.10,
		ReplFactor:           2,
		MapSize:              8,
		CacheSlots:           20,
		MaxHops:              64,
		MaxPathEntries:       16,
		WeightHalfLife:       2.0,
		ReplicationAttempts:  3,
		ReplicationCooldown:  1.0,
		ProbeTimeout:         0.5,
		ReplicaEvictAge:      60,
		MaintainInterval:     1.0,
		DigestBitsPerNode:    16,
		DigestHashes:         6,
		MaxDigests:           256,
		DigestScanPerHop:     64,
		DigestsPerMessage:    3,
		DigestShortcutLevels: 3,
		MaxKnownLoads:        128,
		CachingEnabled:       true,
		ReplicationEnabled:   true,
		DigestsEnabled:       true,
		PathPropagation:      true,
		AdvertiseReplicas:    true,
	}
}

// Validate reports the first configuration error, or nil.
func (c *Config) Validate() error {
	switch {
	case c.Thigh <= 0 || c.Thigh > 1:
		return fmt.Errorf("core: Thigh %v out of (0,1]", c.Thigh)
	case c.DeltaMin < 0 || c.DeltaMin > 1:
		return fmt.Errorf("core: DeltaMin %v out of [0,1]", c.DeltaMin)
	case c.ReplFactor < 0:
		return fmt.Errorf("core: ReplFactor %v negative", c.ReplFactor)
	case c.MapSize < 1:
		return fmt.Errorf("core: MapSize %d < 1", c.MapSize)
	case c.CacheSlots < 0:
		return fmt.Errorf("core: CacheSlots %d negative", c.CacheSlots)
	case c.MaxHops < 1:
		return fmt.Errorf("core: MaxHops %d < 1", c.MaxHops)
	case c.MaxPathEntries < 0:
		return fmt.Errorf("core: MaxPathEntries %d negative", c.MaxPathEntries)
	case c.WeightHalfLife <= 0:
		return fmt.Errorf("core: WeightHalfLife %v <= 0", c.WeightHalfLife)
	case c.ReplicationAttempts < 1:
		return fmt.Errorf("core: ReplicationAttempts %d < 1", c.ReplicationAttempts)
	case c.ReplicationCooldown < 0:
		return fmt.Errorf("core: ReplicationCooldown %v negative", c.ReplicationCooldown)
	case c.ProbeTimeout <= 0:
		return fmt.Errorf("core: ProbeTimeout %v <= 0", c.ProbeTimeout)
	case c.MaintainInterval <= 0:
		return fmt.Errorf("core: MaintainInterval %v <= 0", c.MaintainInterval)
	case c.DigestBitsPerNode < 1:
		return fmt.Errorf("core: DigestBitsPerNode %d < 1", c.DigestBitsPerNode)
	case c.DigestHashes < 1:
		return fmt.Errorf("core: DigestHashes %d < 1", c.DigestHashes)
	case c.MaxDigests < 0:
		return fmt.Errorf("core: MaxDigests %d negative", c.MaxDigests)
	case c.DigestScanPerHop < 0:
		return fmt.Errorf("core: DigestScanPerHop %d negative", c.DigestScanPerHop)
	case c.DigestsPerMessage < 0:
		return fmt.Errorf("core: DigestsPerMessage %d negative", c.DigestsPerMessage)
	case c.DigestShortcutLevels < 0:
		return fmt.Errorf("core: DigestShortcutLevels %d negative", c.DigestShortcutLevels)
	case c.MaxKnownLoads < 1:
		return fmt.Errorf("core: MaxKnownLoads %d < 1", c.MaxKnownLoads)
	}
	if math.IsNaN(c.Thigh) || math.IsNaN(c.DeltaMin) || math.IsNaN(c.ReplFactor) {
		return fmt.Errorf("core: NaN in configuration")
	}
	return nil
}

// ScaleCacheForServers returns the paper's logarithmic cache sizing for a
// system of n servers: 2·⌈log₂ n⌉ slots (§4.5).
func ScaleCacheForServers(n int) int {
	if n < 2 {
		return 2
	}
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	return 2 * bits
}

// ScaleMapSizeForServers returns the paper's logarithmic Msize scaling for a
// system of n servers (Fig. 9: Msize grows logarithmically, 2..10 over
// 2^6..2^14 servers): max(2, ⌈log₂ n⌉ − 4).
func ScaleMapSizeForServers(n int) int {
	if n < 2 {
		return 2
	}
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	m := bits - 4
	if m < 2 {
		m = 2
	}
	return m
}
