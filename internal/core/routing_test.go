package core

import (
	"testing"

	"terradir/internal/namespace"
)

// fig1Net builds a 5-server mini cluster over the paper-Fig.1 namespace with
// a meaningful ownership split.
func fig1Net(t *testing.T, cfg Config) (*miniNet, map[string]NodeID) {
	tree, ids := paperTree()
	own := make([][]NodeID, 5)
	own[0] = []NodeID{ids["/u"]}
	own[1] = []NodeID{ids["/u/pub"], ids["/u/pub/people"]}
	own[2] = []NodeID{ids["/u/priv"], ids["/u/priv/people"]}
	own[3] = []NodeID{ids["/u/pub/people/faculty"], ids["/u/pub/people/students"],
		ids["/u/pub/people/faculty/John"], ids["/u/pub/people/students/Steve"]}
	own[4] = []NodeID{ids["/u/priv/people/staff"], ids["/u/priv/people/students"],
		ids["/u/priv/people/staff/Ann"], ids["/u/priv/people/students/Lisa"], ids["/u/priv/people/students/Mary"]}
	return newMiniNet(t, tree, own, cfg), ids
}

func TestRouteResolvesAcrossHierarchy(t *testing.T) {
	n, ids := fig1Net(t, DefaultConfig())
	res := n.lookup(3, ids["/u/priv/people/students/Mary"])
	if res == nil || !res.OK {
		t.Fatalf("lookup failed: %+v", res)
	}
	if res.Hops < 1 {
		t.Fatalf("suspicious hop count %d", res.Hops)
	}
	if res.Map.Len() == 0 {
		t.Fatal("result carries no mapping")
	}
	if !res.Map.Contains(4) {
		t.Fatalf("mapping should include the owner: %+v", res.Map)
	}
}

func TestRouteLocalResolution(t *testing.T) {
	n, ids := fig1Net(t, DefaultConfig())
	res := n.lookup(4, ids["/u/priv/people/staff/Ann"])
	if res == nil || !res.OK || res.Hops != 0 {
		t.Fatalf("local lookup: %+v", res)
	}
}

func TestEveryPairResolves(t *testing.T) {
	// Exhaustive: every (source, dest) pair on the cold system resolves.
	n, _ := fig1Net(t, DefaultConfig())
	for src := ServerID(0); src < 5; src++ {
		for dest := 0; dest < n.tree.Len(); dest++ {
			res := n.lookup(src, NodeID(dest))
			if res == nil || !res.OK {
				t.Fatalf("lookup %d->%d failed: %+v", src, dest, res)
			}
		}
	}
}

func TestRoutingIncrementalProgressColdSystem(t *testing.T) {
	// On a cold system (no caches yet) every hop must make progress and hop
	// counts are bounded by the namespace distance from the source's
	// closest owned node.
	cfg := DefaultConfig()
	cfg.CachingEnabled = false
	cfg.DigestsEnabled = false
	cfg.ReplicationEnabled = false
	n, ids := fig1Net(t, cfg)
	res := n.lookup(3, ids["/u/priv/people/students/Mary"])
	if res == nil || !res.OK {
		t.Fatalf("lookup failed: %+v", res)
	}
	// John(depth4) .. Mary: distance ≤ 8; with a hop per namespace step the
	// bound is that distance.
	if res.Hops > 8 {
		t.Fatalf("cold route took %d hops", res.Hops)
	}
}

func TestPathPropagationPopulatesCaches(t *testing.T) {
	n, ids := fig1Net(t, DefaultConfig())
	res := n.lookup(3, ids["/u/priv/people/students/Mary"])
	if res == nil || !res.OK {
		t.Fatal("lookup failed")
	}
	// The source must now have a cached (or otherwise known) map for the
	// destination (§2.4: source caches the whole path incl. destination).
	src := n.peers[3]
	m := src.mapFor(ids["/u/priv/people/students/Mary"])
	if m == nil || !m.Contains(4) {
		t.Fatalf("source did not cache the destination: %v", m)
	}
	// Second lookup should use it and be shorter or equal.
	res2 := n.lookup(3, ids["/u/priv/people/students/Mary"])
	if res2.Hops > res.Hops {
		t.Fatalf("warm lookup longer than cold: %d > %d", res2.Hops, res.Hops)
	}
	if res2.Hops != 1 {
		t.Fatalf("warm lookup should be a single hop via cached dest, got %d", res2.Hops)
	}
}

func TestEndpointOnlyCachingStillCachesEndpoints(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PathPropagation = false
	n, ids := fig1Net(t, cfg)
	res := n.lookup(3, ids["/u/priv/people/students/Mary"])
	if res == nil || !res.OK {
		t.Fatal("lookup failed")
	}
	src := n.peers[3]
	if m := src.mapFor(ids["/u/priv/people/students/Mary"]); m == nil {
		t.Fatal("endpoint caching lost the destination")
	}
	// Intermediate nodes must NOT have been propagated: the result path has
	// at most source + destination entries.
	if len(res.Path) > 2 {
		t.Fatalf("endpoint-only path has %d entries", len(res.Path))
	}
}

func TestCachingDisabledNoCacheEntries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CachingEnabled = false
	n, ids := fig1Net(t, cfg)
	n.lookup(3, ids["/u/priv/people/students/Mary"])
	for i, p := range n.peers {
		if p.CacheLen() != 0 {
			t.Fatalf("peer %d cached %d entries with caching disabled", i, p.CacheLen())
		}
	}
}

func TestTTLFailure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxHops = 1
	n, ids := fig1Net(t, cfg)
	res := n.lookup(3, ids["/u/priv/people/students/Mary"]) // needs >1 hop
	if res == nil || res.OK {
		t.Fatalf("expected TTL failure, got %+v", res)
	}
	if res.Reason != FailTTL {
		t.Fatalf("reason = %v", res.Reason)
	}
}

func TestMaxHopsBoundsPathLen(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPathEntries = 2
	n, ids := fig1Net(t, cfg)
	res := n.lookup(3, ids["/u/priv/people/students/Mary"])
	if res == nil || !res.OK {
		t.Fatal("lookup failed")
	}
	if len(res.Path) > 3 { // 2 in-flight + final destination entry
		t.Fatalf("path length %d exceeds bound", len(res.Path))
	}
}

func TestDigestShortcutTaken(t *testing.T) {
	// Prime server 3 with server 2's digest; a lookup towards /u/priv/...
	// should shortcut directly to server 2 (which hosts /u/priv and
	// /u/priv/people) rather than climbing to the root.
	cfg := DefaultConfig()
	cfg.CachingEnabled = false // isolate the digest mechanism
	n, ids := fig1Net(t, cfg)
	p3 := n.peers[3]
	p3.storeDigest(2, n.peers[2].Digest())
	res := n.lookup(3, ids["/u/priv/people/students/Mary"])
	if res == nil || !res.OK {
		t.Fatal("lookup failed")
	}
	if p3.Stats.DigestShortcuts == 0 {
		t.Fatal("no digest shortcut recorded")
	}
	// Shortcut jumps straight into the private subtree: at most 3 hops
	// (3 -> 2 -> 4 or similar), versus ≥5 without.
	if res.Hops > 3 {
		t.Fatalf("shortcut route took %d hops", res.Hops)
	}
}

func TestDigestShortcutDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DigestsEnabled = false
	n, ids := fig1Net(t, cfg)
	p3 := n.peers[3]
	p3.storeDigest(2, n.peers[2].Digest())
	n.lookup(3, ids["/u/priv/people/students/Mary"])
	if p3.Stats.DigestShortcuts != 0 {
		t.Fatal("digest shortcut taken while disabled")
	}
	if len(p3.digests) != 0 {
		t.Fatal("digest stored while disabled")
	}
}

func TestStaleReplicaRouteRecovers(t *testing.T) {
	// Install a replica at server 3, let server 1 learn of it, then evict it
	// — queries routed via the stale map entry must still resolve.
	cfg := DefaultConfig()
	n, ids := fig1Net(t, cfg)
	mary := ids["/u/priv/people/students/Mary"]
	pl := n.peers[4].buildPayload(n.peers[4].hosted[mary])
	pl.WeightHint = 5
	if !n.peers[3].installReplica(&pl, 4) {
		t.Fatal("install failed")
	}
	// Server 1 learns the (soon stale) map.
	stale := NodeMap{Servers: []ServerID{3}}
	n.peers[1].learnMap(mary, &stale)
	n.peers[3].evictReplica(mary)
	res := n.lookup(1, mary)
	if res == nil || !res.OK {
		t.Fatalf("stale-route lookup failed: %+v", res)
	}
}

func TestQueryToRootFromEverywhere(t *testing.T) {
	n, ids := fig1Net(t, DefaultConfig())
	for src := ServerID(0); src < 5; src++ {
		res := n.lookup(src, ids["/u"])
		if res == nil || !res.OK {
			t.Fatalf("root lookup from %d failed", src)
		}
	}
}

func TestResultMetaDelivered(t *testing.T) {
	n, ids := fig1Net(t, DefaultConfig())
	mary := ids["/u/priv/people/students/Mary"]
	n.peers[4].SetMeta(mary, map[string]string{"type": "student"})
	res := n.lookup(1, mary)
	if res == nil || !res.OK {
		t.Fatal("lookup failed")
	}
	if res.Meta.Attrs["type"] != "student" || res.Meta.Version != 1 {
		t.Fatalf("meta not delivered: %+v", res.Meta)
	}
}

func TestOnBehalfWeightAccounting(t *testing.T) {
	n, ids := fig1Net(t, DefaultConfig())
	mary := ids["/u/priv/people/students/Mary"]
	before := n.peers[4].NodeWeight(mary)
	n.lookup(1, mary)
	after := n.peers[4].NodeWeight(mary)
	if after <= before {
		t.Fatalf("destination weight did not grow: %v -> %v", before, after)
	}
}

func TestLoadGossipPropagates(t *testing.T) {
	n, ids := fig1Net(t, DefaultConfig())
	n.envs[3].load = 0.9
	n.lookup(3, ids["/u/priv/people/students/Mary"])
	// Some server along the path must now know server 3's load.
	known := 0
	for i, p := range n.peers {
		if i == 3 {
			continue
		}
		if li, ok := p.knownLoads[3]; ok && li.load > 0.8 {
			known++
		}
	}
	if known == 0 {
		t.Fatal("no peer learned the sender's load")
	}
}

func TestHandleResultCachesMapping(t *testing.T) {
	tree, ids := paperTree()
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"]}, 1, DefaultConfig(), &fakeEnv{})
	res := &ResultMsg{
		QueryID: 1,
		Dest:    ids["/u/priv/people"],
		OK:      true,
		Map:     NodeMap{Servers: []ServerID{2, 5}},
		Path: []PathEntry{
			{Node: ids["/u/priv"], Map: SingleServerMap(2)},
		},
		Piggy: Piggyback{From: 2, Load: 0.3},
	}
	p.HandleResult(res)
	if m := p.mapFor(ids["/u/priv/people"]); m == nil || !m.Contains(2) {
		t.Fatal("result mapping not learned")
	}
	if m := p.mapFor(ids["/u/priv"]); m == nil {
		t.Fatal("result path not learned")
	}
}

func TestNoRouteFailure(t *testing.T) {
	// A peer with no context at all (single server owning everything is
	// impossible to fail; instead: unknown dest with empty candidate maps).
	tree, ids := paperTree()
	cfg := DefaultConfig()
	cfg.CachingEnabled = false
	cfg.DigestsEnabled = false
	env := &fakeEnv{}
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"]}, 1, cfg, env)
	// Cripple the peer: empty every neighbor map.
	for _, e := range p.neighborMaps {
		e.m = NodeMap{}
	}
	q := &QueryMsg{QueryID: 9, Dest: ids["/u/priv/people"], Source: 0, OnBehalf: namespace.Invalid}
	p.HandleQuery(q)
	msgs := env.take()
	if len(msgs) != 1 {
		t.Fatalf("want 1 result, got %d messages", len(msgs))
	}
	r, ok := msgs[0].msg.(*ResultMsg)
	if !ok || r.OK || r.Reason != FailNoRoute {
		t.Fatalf("expected no-route failure, got %+v", msgs[0].msg)
	}
}
