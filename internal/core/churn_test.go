package core

import (
	"testing"

	"terradir/internal/bloom"
)

func TestPurgeServerScrubsAllState(t *testing.T) {
	tree, ids := paperTree()
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u/pub"]}, 1, DefaultConfig(), &fakeEnv{})
	const dead = ServerID(2)

	// Seed every soft-state structure with references to the doomed server.
	hn := p.hosted[ids["/u/pub"]]
	hn.selfMap.AddRegular(dead, p.cfg.MapSize)
	nbShared := ids["/u"] // neighbor map that also names the live server 1
	p.neighborMaps[nbShared].m.AddRegular(dead, p.cfg.MapSize)
	nbOnly := ids["/u/pub/people"] // neighbor map naming only the dead server
	p.neighborMaps[nbOnly].m = SingleServerMap(dead)
	p.cache.Put(ids["/u/priv"], SingleServerMap(dead)) // empties → evicted
	mixed := SingleServerMap(1)
	mixed.AddRegular(dead, p.cfg.MapSize)
	p.cache.Put(ids["/u/priv/people"], mixed) // survives with 1
	p.storeDigest(dead, bloom.New(64, 2))
	p.recordLoad(dead, 0.5, 0)
	p.recentAdverts = append(p.recentAdverts,
		advertRecord{node: ids["/u/priv"], servers: []ServerID{dead}},
		advertRecord{node: ids["/u/priv/people"], servers: []ServerID{1, dead}})
	if len(p.digestList) != 1 || p.KnownLoadCount() != 1 {
		t.Fatal("test seeding failed")
	}

	purged := p.PurgeServer(dead, func(NodeID) ServerID { return 3 })
	if purged == 0 {
		t.Fatal("PurgeServer removed nothing")
	}
	if hn.selfMap.Contains(dead) || !hn.selfMap.Contains(0) {
		t.Error("self map not scrubbed (or lost self)")
	}
	if m := p.neighborMaps[nbShared].m; m.Contains(dead) || !m.Contains(1) {
		t.Error("shared neighbor map not scrubbed correctly")
	}
	// The emptied neighbor map must be reseeded from the post-handoff owner.
	if m := p.neighborMaps[nbOnly].m; !m.Contains(3) || m.Contains(dead) {
		t.Errorf("emptied neighbor map not reseeded: %v", m)
	}
	if p.cache.Peek(ids["/u/priv"]) != nil {
		t.Error("emptied cache entry not evicted")
	}
	if m := p.cache.Peek(ids["/u/priv/people"]); m == nil || m.Contains(dead) || !m.Contains(1) {
		t.Error("mixed cache entry wrongly scrubbed")
	}
	if len(p.digests) != 0 || len(p.digestList) != 0 {
		t.Error("dead server's digest survived")
	}
	if p.KnownLoadCount() != 0 || len(p.knownLoadKeys) != 0 {
		t.Error("dead server's load record survived")
	}
	if len(p.recentAdverts) != 1 || p.recentAdverts[0].servers[0] != 1 {
		t.Errorf("adverts not filtered: %+v", p.recentAdverts)
	}
	if p.Stats.ServerPurges != 1 || p.Stats.PurgedEntries != int64(purged) {
		t.Error("purge stats not recorded")
	}

	// Self and the no-server sentinel are never purge targets.
	if p.PurgeServer(p.ID, nil) != 0 || p.PurgeServer(NoServer, nil) != 0 {
		t.Error("purge of self or NoServer must be a no-op")
	}
}

func TestAdoptAndReleaseOwnership(t *testing.T) {
	tree, ids := paperTree()
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u/pub"]}, 1, DefaultConfig(), &fakeEnv{})
	ownerOf := func(NodeID) ServerID { return 1 }
	target := ids["/u/priv"]

	// Fresh adoption of a node we do not host.
	if !p.AdoptOwnership(target, ownerOf) {
		t.Fatal("fresh adoption rejected")
	}
	if !p.Hosts(target) || p.OwnedCount() != 2 || p.AdoptedCount() != 1 {
		t.Fatalf("after adopt: hosts=%v owned=%d adopted=%d",
			p.Hosts(target), p.OwnedCount(), p.AdoptedCount())
	}
	if !p.hosted[target].selfMap.Contains(0) {
		t.Error("adopted node's self map lacks self")
	}
	if p.hosted[target].hasData {
		t.Error("fresh adoption must not fabricate application data")
	}
	// Idempotent: adopting an already-owned node is a no-op.
	if p.AdoptOwnership(target, ownerOf) {
		t.Error("double adoption reported a change")
	}

	// Release demotes back to a plain replica, keeping the warm routing state.
	if !p.ReleaseOwnership(target) {
		t.Fatal("release rejected")
	}
	if p.OwnedCount() != 1 || p.AdoptedCount() != 0 || !p.HostsReplica(target) {
		t.Fatalf("after release: owned=%d adopted=%d replica=%v",
			p.OwnedCount(), p.AdoptedCount(), p.HostsReplica(target))
	}

	// Promoting that replica in place works and is reversible again.
	if !p.AdoptOwnership(target, ownerOf) {
		t.Fatal("replica promotion rejected")
	}
	if p.AdoptedCount() != 1 || !p.Hosts(target) || p.HostsReplica(target) {
		t.Error("replica promotion left inconsistent state")
	}
	if !p.ReleaseOwnership(target) {
		t.Fatal("second release rejected")
	}

	// Original ownership is never releasable; unknown nodes are no-ops.
	if p.ReleaseOwnership(ids["/u/pub"]) {
		t.Error("released originally owned node")
	}
	if p.ReleaseOwnership(ids["/u/priv/people/staff"]) {
		t.Error("released a node we never hosted")
	}
	if p.Stats.OwnershipAdopts != 2 || p.Stats.OwnershipReleases != 2 {
		t.Errorf("adoption stats = %d/%d, want 2/2",
			p.Stats.OwnershipAdopts, p.Stats.OwnershipReleases)
	}
}

func TestBuildWarmupAndLearnMaps(t *testing.T) {
	tree, ids := paperTree()
	src := newTestPeer(t, tree, 0, []NodeID{ids["/u/pub"], ids["/u/pub/people"]}, 1,
		DefaultConfig(), &fakeEnv{})

	entries := src.BuildWarmup(10)
	if len(entries) != 2 {
		t.Fatalf("warmup carries %d entries, want 2", len(entries))
	}
	for _, e := range entries {
		if !e.Map.Contains(0) {
			t.Errorf("warmup map for node %d omits the sender", e.Node)
		}
	}
	if got := src.BuildWarmup(1); len(got) != 1 {
		t.Errorf("bounded warmup returned %d entries, want 1", len(got))
	}
	if src.BuildWarmup(0) != nil {
		t.Error("warmup with max 0 must be nil")
	}

	// A cold peer absorbs the stream into its cache and can route by it.
	dst := newTestPeer(t, tree, 5, []NodeID{ids["/u/priv"]}, 1, DefaultConfig(), &fakeEnv{})
	before := dst.CacheLen()
	dst.LearnMaps(entries)
	if dst.CacheLen() <= before {
		t.Fatalf("warmup learned nothing: cache %d → %d", before, dst.CacheLen())
	}
	if m := dst.mapFor(ids["/u/pub"]); m == nil || !m.Contains(0) {
		t.Error("warmed-up map for /u/pub missing the source server")
	}
}
