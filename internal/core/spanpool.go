package core

import (
	"terradir/internal/telemetry"
)

// Span buffers ride traced queries hop to hop and come back in the result;
// once the originating node has copied the completed trace out, the backing
// array is dead. Recycling it removes a per-traced-lookup allocation plus the
// append growth along the route (the buffer is handed out with the full span
// budget pre-reserved). The free list is a buffered channel, not a sync.Pool:
// channel sends copy the slice header in place, where Pool.Put would box it
// and allocate on the very path this exists to spare.
var spanBufFree = make(chan []telemetry.Span, 256)

// spanBufMax bounds what the free list retains — a decoded wire slice of
// absurd capacity is dropped rather than cached forever.
const spanBufMax = 256

// NewSpanBuf returns an empty span slice with at least the given capacity,
// reusing a recycled backing array when one fits.
func NewSpanBuf(capacity int) []telemetry.Span {
	select {
	case buf := <-spanBufFree:
		if cap(buf) >= capacity {
			return buf[:0]
		}
	default:
	}
	return make([]telemetry.Span, 0, capacity)
}

// RecycleSpanBuf returns a span buffer to the free list. The caller must be
// the final owner: nothing may read the slice afterwards.
func RecycleSpanBuf(buf []telemetry.Span) {
	if cap(buf) == 0 || cap(buf) > spanBufMax {
		return
	}
	select {
	case spanBufFree <- buf[:0]:
	default:
	}
}
