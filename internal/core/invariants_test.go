package core

import (
	"testing"

	"terradir/internal/namespace"
	"terradir/internal/rng"
)

// TestProtocolInvariantsUnderMessageStorm throws a long stream of randomized
// (and frequently nonsensical or stale) protocol messages at a peer and
// checks, after every step, the invariants soft state must uphold:
//
//   - no panic, ever (arbitrary remote state must not crash a server);
//   - replica count ≤ Frepl × owned (§3.4);
//   - every stored map within Msize, entries unique, advertised prefix sane;
//   - cache within capacity;
//   - owned nodes never evicted;
//   - the peer stays in its own self-maps for hosted nodes.
func TestProtocolInvariantsUnderMessageStorm(t *testing.T) {
	tree := namespace.NewBalanced(3, 6) // 364 nodes
	env := &fakeEnv{}
	cfg := DefaultConfig()
	cfg.ReplFactor = 1.5
	cfg.MapSize = 4
	cfg.CacheSlots = 8
	src := rng.New(2024)
	var owned []NodeID
	for i := 0; i < 12; i++ {
		owned = append(owned, NodeID(src.Intn(tree.Len())))
	}
	p := newTestPeer(t, tree, 0, owned, 1, cfg, env)

	randMap := func() NodeMap {
		var m NodeMap
		for k := 0; k < src.Intn(6); k++ {
			s := ServerID(src.Intn(12))
			if src.Intn(3) == 0 {
				m.AddAdvertised(s, cfg.MapSize)
			} else {
				m.AddRegular(s, cfg.MapSize)
			}
		}
		return m
	}
	randNode := func() NodeID { return NodeID(src.Intn(tree.Len())) }

	check := func(step int) {
		t.Helper()
		if p.ReplicaCount() > int(cfg.ReplFactor*float64(p.OwnedCount())) {
			t.Fatalf("step %d: replica bound violated: %d > %v", step, p.ReplicaCount(),
				cfg.ReplFactor*float64(p.OwnedCount()))
		}
		if p.CacheLen() > cfg.CacheSlots {
			t.Fatalf("step %d: cache overflow: %d", step, p.CacheLen())
		}
		for _, nd := range owned {
			if !p.Hosts(nd) {
				t.Fatalf("step %d: owned node %d lost", step, nd)
			}
		}
		validate := func(where string, m *NodeMap) {
			if m.Len() > cfg.MapSize {
				t.Fatalf("step %d: %s map over Msize: %+v", step, where, m)
			}
			if m.NumAdvertised < 0 || m.NumAdvertised > m.Len() {
				t.Fatalf("step %d: %s advertised prefix broken: %+v", step, where, m)
			}
			seen := map[ServerID]bool{}
			for _, s := range m.Servers {
				if seen[s] {
					t.Fatalf("step %d: %s map duplicate: %+v", step, where, m)
				}
				seen[s] = true
			}
		}
		for nd, hn := range p.hosted {
			validate("self", &hn.selfMap)
			if !hn.selfMap.Contains(0) {
				t.Fatalf("step %d: hosted %d self map lost self: %+v", step, nd, hn.selfMap)
			}
		}
		for _, e := range p.neighborMaps {
			validate("neighbor", &e.m)
		}
		p.cache.Each(func(_ NodeID, m *NodeMap) { validate("cache", m) })
	}

	for step := 0; step < 4000; step++ {
		env.now += 0.01
		env.load = src.Float64()
		switch src.Intn(8) {
		case 0, 1, 2: // query with arbitrary path/piggy content
			path := make([]PathEntry, src.Intn(4))
			for i := range path {
				path[i] = PathEntry{Node: randNode(), Map: randMap()}
			}
			q := &QueryMsg{
				QueryID:  uint64(step),
				Dest:     randNode(),
				Source:   ServerID(src.Intn(12)),
				OnBehalf: randNode(),
				Hops:     src.Intn(70),
				PrevDist: int32(src.Intn(20)),
				Path:     path,
				Piggy: Piggyback{
					From: ServerID(src.Intn(12)),
					Load: src.Float64(),
					Adverts: []Advert{
						{Node: randNode(), Servers: []ServerID{ServerID(src.Intn(12))}},
					},
				},
			}
			p.HandleQuery(q)
		case 3: // stale probe reply
			p.HandleControl(&LoadProbeReply{Session: uint64(src.Intn(5)), From: ServerID(src.Intn(12)), Load: src.Float64()})
		case 4: // replicate request with random payloads
			req := &ReplicateRequest{
				Session: uint64(step),
				From:    ServerID(1 + src.Intn(11)),
				Load:    src.Float64(),
				Nodes: []ReplicaPayload{{
					Node:       randNode(),
					SelfMap:    randMap(),
					WeightHint: src.Float64() * 10,
					Neighbors: []NeighborMap{
						{Node: randNode(), Map: randMap()},
					},
				}},
			}
			p.HandleControl(req)
		case 5: // replicate reply (possibly matching nothing)
			p.HandleControl(&ReplicateReply{
				Session:  ServerSession{ID: uint64(src.Intn(10)), From: ServerID(src.Intn(12))},
				Accepted: []NodeID{randNode()},
				Load:     src.Float64(),
			})
		case 6: // result with random content
			p.HandleResult(&ResultMsg{
				QueryID: uint64(step),
				Dest:    randNode(),
				OK:      src.Intn(2) == 0,
				Map:     randMap(),
				Path:    []PathEntry{{Node: randNode(), Map: randMap()}},
			})
		case 7:
			p.Maintain()
			env.advance(0.5)
		}
		env.sent = env.sent[:0]
		if step%50 == 0 {
			check(step)
		}
	}
	check(4000)
}
