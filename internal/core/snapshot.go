package core

// This file implements the copy-on-write routing snapshot behind the overlay's
// lock-free lookup fast path. The peer (single-writer, driven by its event
// loop) periodically publishes an immutable RouteSnapshot of its routing-read
// state; any number of reader goroutines then resolve, fail, or forward
// queries directly on the snapshot without entering the loop. Everything the
// fast path cannot do immutably — rider absorption, path caching, map
// pruning, the per-query replication trigger — is either diverted back to the
// loop (FastAbsorb) or declined entirely (FastFallback), keeping the core
// single-writer by design.
//
// Concurrency contract:
//   - A published snapshot is never mutated. Maps and filters inside it are
//     frozen clones (or immutable originals, for Bloom digests), shared by
//     pointer with outgoing messages under the same read-only convention the
//     loop already uses for digests.
//   - Weight/recency accounting ("touches") is accumulated in per-node atomic
//     counters and folded into the real weights by the loop (foldFastTouches).
//   - Counters the loop records in Peer.Stats are mirrored by atomic
//     fastStats; StatsView returns the combined view.
//   - The rotating digest-scan window, which the loop drives with a shared
//     cursor, is derived from the query ID instead, so concurrent readers
//     share no state at all.

import (
	"math"
	"sync/atomic"

	"terradir/internal/bloom"
	"terradir/internal/namespace"
	"terradir/internal/rng"
	"terradir/internal/telemetry"
)

// FastOutcome classifies what the snapshot fast path did with a query.
type FastOutcome uint8

const (
	// FastFallback: the decision needed a mutation (map pruning) or the
	// snapshot is unusable; the caller must run the query through the loop.
	FastFallback FastOutcome = iota
	// FastResolved: this server hosted the destination and answered.
	FastResolved
	// FastForwarded: the query was forwarded to the chosen next hop.
	FastForwarded
	// FastFailed: the lookup was terminated (TTL exceeded or no route).
	FastFailed
)

// fastStats mirrors the Peer.Stats fields the fast path would otherwise
// update. The loop owns Stats; these atomics are the off-loop ledger, folded
// together by StatsView.
type fastStats struct {
	processed       atomic.Int64
	resolved        atomic.Int64
	forwarded       atomic.Int64
	failedTTL       atomic.Int64
	failedNoRoute   atomic.Int64
	digestShortcuts atomic.Int64
	cacheHits       atomic.Int64
	contextHops     atomic.Int64
	resultsSent     atomic.Int64
	controlSent     atomic.Int64
}

// snapHosted is the frozen routing view of one hosted node. outgoing is the
// bounded map the loop would build with outgoingMap; like digests, it is
// immutable once published and shared by pointer with outgoing messages
// (receivers treat incoming maps as read-only — see NodeMap.Merge).
type snapHosted struct {
	id       NodeID
	meta     Meta
	outgoing NodeMap
	touch    *atomic.Int64 // points at the live hostedNode's fastTouch
}

type snapCached struct {
	node NodeID
	m    NodeMap
}

type snapDigest struct {
	server ServerID
	filter *bloom.Filter
}

// RouteSnapshot is an immutable copy of a peer's routing-read state. Safe for
// unsynchronized use from any goroutine.
type RouteSnapshot struct {
	self ServerID
	cfg  Config
	tree *namespace.Tree

	hosted     map[NodeID]*snapHosted
	hostedList []*snapHosted
	neighbors  map[NodeID]*NodeMap // frozen clones
	cached     []snapCached        // most recently used first (at publish time)

	digests   []snapDigest
	digestIdx map[ServerID]*bloom.Filter

	piggy  Piggyback // prebuilt immutable rider attached to every send
	oracle func(NodeID) []ServerID

	// cold, when non-nil, is the peer's live cold-set bitmap (resident.go).
	// It is the one mutable structure a snapshot references: reads are
	// atomic, and a cold destination always falls back to the loop.
	cold *coldSet

	stats *fastStats
	tel   *peerTelemetry
}

// fastSeq perturbs per-call RNG seeds so concurrent fast-path decisions with
// the same query ID still draw distinct streams.
var fastSeq atomic.Uint64

// PublishSnapshot freezes the peer's current routing-read state into a new
// RouteSnapshot. Loop context only (it reads and may tidy mutable state —
// digest rebuild, advert expiry). Peers with an OnForwardStep hook publish
// nil: the hook observes forwarding decisions and is not safe to call
// concurrently, so such peers stay loop-only.
func (p *Peer) PublishSnapshot() {
	if p.Hooks.OnForwardStep != nil {
		p.snap.Store(nil)
		return
	}
	s := &RouteSnapshot{
		self:   p.ID,
		cfg:    p.cfg,
		tree:   p.tree,
		oracle: p.OracleHosts,
		cold:   p.resident.cold,
		stats:  &p.fast,
		tel:    p.tel,
	}
	s.piggy = p.piggyback() // loop context; also rebuilds a dirty digest
	s.hosted = make(map[NodeID]*snapHosted, len(p.hostedList))
	s.hostedList = make([]*snapHosted, 0, len(p.hostedList))
	for _, hn := range p.hostedList {
		sh := &snapHosted{
			id:       hn.id,
			meta:     hn.meta.Clone(),
			outgoing: p.outgoingMap(hn.id),
			touch:    &hn.fastTouch,
		}
		s.hosted[hn.id] = sh
		s.hostedList = append(s.hostedList, sh)
	}
	s.neighbors = make(map[NodeID]*NodeMap, len(p.neighborMaps))
	for nd, e := range p.neighborMaps {
		c := e.m.Clone()
		s.neighbors[nd] = &c
	}
	if n := p.cache.Len(); n > 0 {
		s.cached = make([]snapCached, 0, n)
		p.cache.Each(func(node NodeID, m *NodeMap) {
			s.cached = append(s.cached, snapCached{node: node, m: m.Clone()})
		})
	}
	if len(p.digestList) > 0 {
		s.digests = make([]snapDigest, 0, len(p.digestList))
		s.digestIdx = make(map[ServerID]*bloom.Filter, len(p.digestList))
		for _, e := range p.digestList {
			s.digests = append(s.digests, snapDigest{server: e.server, filter: e.filter})
			s.digestIdx[e.server] = e.filter
		}
	}
	p.snap.Store(s)
}

// RoutingSnapshot returns the most recently published snapshot, or nil when
// none has been published (or the peer is hook-bound to the loop). Safe from
// any goroutine.
func (p *Peer) RoutingSnapshot() *RouteSnapshot { return p.snap.Load() }

// FastAbsorb ingests the rider and path of a query the fast path served, and
// runs the per-query replication trigger the loop would have run. Loop
// context only — the driver enqueues it behind the fast-path send.
func (p *Peer) FastAbsorb(pb Piggyback, path []PathEntry) {
	p.absorbPiggy(&pb)
	p.absorbPath(path)
	p.afterQuery()
}

// StatsView returns the peer's counters with fast-path contributions folded
// in. Loop-owned fields are read without synchronization — monitoring-grade,
// same contract as overlay.Snapshot.
func (p *Peer) StatsView() Stats {
	s := p.Stats
	s.Processed += p.fast.processed.Load()
	s.Resolved += p.fast.resolved.Load()
	s.Forwarded += p.fast.forwarded.Load()
	s.FailedTTL += p.fast.failedTTL.Load()
	s.FailedNoRoute += p.fast.failedNoRoute.Load()
	s.DigestShortcuts += p.fast.digestShortcuts.Load()
	s.CacheHits += p.fast.cacheHits.Load()
	s.ContextHops += p.fast.contextHops.Load()
	s.ResultsSent += p.fast.resultsSent.Load()
	s.ControlSent += p.fast.controlSent.Load()
	return s
}

// foldFastTouches drains the per-node atomic touch counters into the real
// weight/recency fields, charging them at the current time. Loop context
// only; called before any weight-ranked decision and on each Maintain tick.
func (p *Peer) foldFastTouches() {
	now := p.env.Now()
	for _, hn := range p.hostedList {
		n := hn.fastTouch.Swap(0)
		if n == 0 {
			continue
		}
		hn.ref = true
		if hn.weightT > 0 && now > hn.weightT {
			hn.weight *= math.Exp2(-(now - hn.weightT) / p.cfg.WeightHalfLife)
		}
		hn.weight += float64(n)
		hn.weightT = now
		hn.lastUsed = now
	}
}

// HandleQueryFast attempts to serve q entirely on the snapshot. send
// transmits outgoing messages (safe for concurrent use); absorb, when
// non-nil, receives the query's rider and a private copy of its path for
// loop-side ingestion — it is invoked exactly once for any outcome other
// than FastFallback, before q.Path is mutated. On FastFallback nothing has
// been sent or absorbed and the caller must run q through the loop.
//
// hint, when non-empty, is an advisory host map for q.Dest from outside the
// snapshot (the overlay's result cache); a usable hint forwards directly to a
// host, bridging the gap until the loop absorbs the same result. An unusable
// hint is simply ignored. Passed by value to keep it off the heap.
func (s *RouteSnapshot) HandleQueryFast(q *QueryMsg, now float64, hint NodeMap, send func(ServerID, Message), absorb func(Piggyback, []PathEntry)) FastOutcome {
	if s.cold != nil && s.cold.has(q.Dest) {
		// Hosted here, but on disk: the loop parks the query and a loader
		// goroutine materializes the entry — never blocking this path.
		// Checked before the resident map: a snapshot published before the
		// demotion still holds the entry, and serving from it would race the
		// eviction.
		return FastFallback
	}
	if hn := s.hosted[q.Dest]; hn != nil {
		s.commit(q, absorb)
		if ob := s.hosted[q.OnBehalf]; ob != nil {
			ob.touch.Add(1)
		}
		hn.touch.Add(1)
		q.Spans = s.traceSpanFast(q, hn.id, telemetry.HopResolve, send)
		s.sendResultFast(q, hn, send)
		return FastResolved
	}

	if q.Hops >= s.cfg.MaxHops {
		s.commit(q, absorb)
		if ob := s.hosted[q.OnBehalf]; ob != nil {
			ob.touch.Add(1)
		}
		s.sendFailFast(q, FailTTL, send)
		return FastFailed
	}

	// Forward decision: single-pass mirror of the loop's candidate selection.
	// The loop retries with pruning when a candidate's map is unusable; the
	// fast path has no mutation budget, so that case falls back instead.
	var src rng.Source
	src.Seed(q.QueryID ^ uint64(uint32(s.self))<<32 ^ fastSeq.Add(0x9e3779b97f4a7c15))

	var target ServerID = NoServer
	var onBehalf NodeID = namespace.Invalid
	var newDist int
	reason := telemetry.HopNone
	var closestHosted *snapHosted
	if hint.Len() > 0 {
		if tgt := hint.Pick(&src, s.self, s.keepFor(q.Dest)); tgt != NoServer {
			// Direct hop to a remembered host of the destination — the same
			// decision a cache hit would make, at distance zero.
			target, onBehalf, newDist = tgt, q.Dest, 0
			reason = telemetry.HopCache
			closestHosted = s.closestHostedTo(q.Dest)
			s.stats.cacheHits.Add(1)
			if s.tel != nil {
				s.tel.cacheHits.Inc()
			}
		}
	}
	var cand NodeID
	var candMap *NodeMap
	var candDist int
	viaCache := false
	if target == NoServer {
		cand, candMap, candDist, closestHosted, viaCache = s.bestCandidate(q.Dest)
	}
	if target == NoServer && s.cfg.DigestsEnabled {
		limit := candDist
		if candMap == nil {
			limit = int(^uint(0) >> 1)
		}
		if sv, node, d := s.digestShortcut(q.Dest, limit, &src, q.QueryID); sv != NoServer {
			target, onBehalf, newDist = sv, node, d
			reason = telemetry.HopReplica
			s.stats.digestShortcuts.Add(1)
			if s.tel != nil {
				s.tel.digestShortcuts.Inc()
				s.tel.cacheMisses.Inc()
			}
		}
	}
	if target == NoServer {
		if candMap == nil {
			s.commit(q, absorb)
			if ob := s.hosted[q.OnBehalf]; ob != nil {
				ob.touch.Add(1)
			}
			s.sendFailFast(q, FailNoRoute, send)
			return FastFailed
		}
		target = candMap.Pick(&src, s.self, s.keepFor(cand))
		if target == NoServer {
			// Unusable candidate: the loop prunes it and retries.
			return FastFallback
		}
		onBehalf, newDist = cand, candDist
		if viaCache {
			// The LRU recency touch the loop would apply is skipped — the
			// cache order refreshes on the next loop-side use.
			s.stats.cacheHits.Add(1)
			reason = telemetry.HopCache
			if s.tel != nil {
				s.tel.cacheHits.Inc()
			}
		} else {
			s.stats.contextHops.Add(1)
			reason = telemetry.HopChild
			if closestHosted != nil && s.tree.Parent(closestHosted.id) == cand {
				reason = telemetry.HopParent
			}
			if s.tel != nil {
				s.tel.cacheMisses.Inc()
			}
		}
	}

	s.commit(q, absorb)
	if q.Hops > 0 && s.tel != nil {
		if newDist < int(q.PrevDist) {
			s.tel.progress.Inc()
		} else {
			s.tel.detours.Inc()
		}
	}
	if ob := s.hosted[q.OnBehalf]; ob != nil {
		ob.touch.Add(1)
	} else if closestHosted != nil {
		closestHosted.touch.Add(1)
	}

	fwd := &QueryMsg{
		QueryID:    q.QueryID,
		Dest:       q.Dest,
		Source:     q.Source,
		OnBehalf:   onBehalf,
		Hops:       q.Hops + 1,
		Started:    q.Started,
		PrevDist:   int32(newDist),
		Path:       s.extendPathFast(q.Path, closestHosted),
		TraceID:    q.TraceID,
		SpanBudget: q.SpanBudget,
		Spans:      s.traceSpanFast(q, onBehalf, reason, send),
		Piggy:      s.piggy,
	}
	s.stats.processed.Add(1)
	s.stats.forwarded.Add(1)
	if s.tel != nil {
		s.tel.forwarded.Inc()
	}
	send(target, fwd)
	return FastForwarded
}

// commit hands the query's rider and a private copy of its path to the loop
// for ingestion. Called once per non-fallback outcome, before any in-place
// path mutation.
func (s *RouteSnapshot) commit(q *QueryMsg, absorb func(Piggyback, []PathEntry)) {
	if absorb == nil {
		return
	}
	var path []PathEntry
	if len(q.Path) > 0 {
		path = append([]PathEntry(nil), q.Path...)
	}
	absorb(q.Piggy, path)
}

// bestCandidate mirrors Peer.bestCandidate on the frozen state (no skip set:
// the fast path never prunes, it falls back).
func (s *RouteSnapshot) bestCandidate(dest NodeID) (cand NodeID, m *NodeMap, dist int, closestHosted *snapHosted, viaCache bool) {
	cand = namespace.Invalid
	bestDist := int(^uint(0) >> 1)
	hostedDist := int(^uint(0) >> 1)
	for _, hn := range s.hostedList {
		d := s.tree.Distance(hn.id, dest)
		if d < hostedDist {
			hostedDist = d
			closestHosted = hn
		}
		if d-1 >= bestDist {
			continue
		}
		nh := s.tree.NextHopToward(hn.id, dest)
		if nh == namespace.Invalid {
			continue
		}
		nm, ok := s.neighbors[nh]
		if !ok || nm.Len() == 0 {
			continue
		}
		cand, m, bestDist = nh, nm, d-1
	}
	for i := range s.cached {
		c := &s.cached[i]
		if c.m.Len() == 0 {
			continue
		}
		d := s.tree.Distance(c.node, dest)
		if d < bestDist {
			cand, m, bestDist, viaCache = c.node, &c.m, d, true
		}
	}
	return cand, m, bestDist, closestHosted, viaCache
}

// closestHostedTo returns the hosted node nearest to dest (for path
// propagation and weight touches on routes decided outside bestCandidate).
func (s *RouteSnapshot) closestHostedTo(dest NodeID) *snapHosted {
	var best *snapHosted
	bestDist := int(^uint(0) >> 1)
	for _, hn := range s.hostedList {
		if d := s.tree.Distance(hn.id, dest); d < bestDist {
			bestDist, best = d, hn
		}
	}
	return best
}

// digestShortcut mirrors Peer.digestShortcut with the rotating scan window
// derived from the query ID (the loop's shared scanClock cursor would be a
// data race).
func (s *RouteSnapshot) digestShortcut(dest NodeID, limit int, src *rng.Source, qid uint64) (ServerID, NodeID, int) {
	if s.oracle == nil && len(s.digests) == 0 {
		return NoServer, namespace.Invalid, 0
	}
	destDepth := s.tree.Depth(dest)
	minDepth := destDepth - limit + 1
	if lvl := s.cfg.DigestShortcutLevels; lvl > 0 && destDepth-lvl+1 > minDepth {
		minDepth = destDepth - lvl + 1
	}
	if minDepth < 0 {
		minDepth = 0
	}
	node := dest
	for k := destDepth; k >= minDepth; k-- {
		if k < destDepth {
			node = s.tree.Parent(node)
		}
		if s.oracle != nil {
			n := 0
			var chosen ServerID = NoServer
			for _, sv := range s.oracle(node) {
				if sv == s.self {
					continue
				}
				n++
				if src.Intn(n) == 0 {
					chosen = sv
				}
			}
			if chosen != NoServer {
				return chosen, node, destDepth - k
			}
			continue
		}
		key := NodeKey(node)
		n := 0
		var chosen ServerID = NoServer
		total := len(s.digests)
		scan := total
		if s.cfg.DigestScanPerHop > 0 && s.cfg.DigestScanPerHop < total {
			scan = s.cfg.DigestScanPerHop
		}
		start := 0
		if scan < total {
			start = int((qid * 7) % uint64(total))
		}
		for i := 0; i < scan; i++ {
			e := &s.digests[(start+i)%total]
			if e.server == s.self {
				continue
			}
			if e.filter.Test(key) {
				n++
				if src.Intn(n) == 0 {
					chosen = e.server
				}
			}
		}
		if chosen != NoServer {
			return chosen, node, destDepth - k
		}
	}
	return NoServer, namespace.Invalid, 0
}

// digestSays mirrors Peer.digestSays on the frozen digest table.
func (s *RouteSnapshot) digestSays(server ServerID, node NodeID) bool {
	if !s.cfg.DigestsEnabled {
		return true
	}
	if server == s.self {
		_, ok := s.hosted[node]
		return ok
	}
	if s.oracle != nil {
		for _, sv := range s.oracle(node) {
			if sv == server {
				return true
			}
		}
		return false
	}
	f, ok := s.digestIdx[server]
	if !ok {
		return true
	}
	return f.Test(NodeKey(node))
}

func (s *RouteSnapshot) keepFor(node NodeID) func(ServerID) bool {
	if !s.cfg.DigestsEnabled {
		return nil
	}
	return func(sv ServerID) bool { return s.digestSays(sv, node) }
}

// extendPathFast mirrors Peer.extendPath, substituting the precomputed
// frozen outgoing map. The path slice is mutated in place under the same
// ownership-transfer convention (the caller owns q after commit).
func (s *RouteSnapshot) extendPathFast(path []PathEntry, rep *snapHosted) []PathEntry {
	if rep == nil {
		return path
	}
	if !s.cfg.PathPropagation && len(path) > 0 {
		return path
	}
	out := path
	if len(out) >= s.cfg.MaxPathEntries && len(out) > 1 {
		copy(out[1:], out[2:])
		out = out[:len(out)-1]
	}
	if len(out) < s.cfg.MaxPathEntries || s.cfg.MaxPathEntries == 0 {
		out = append(out, PathEntry{Node: rep.id, Map: rep.outgoing})
	}
	return out
}

func (s *RouteSnapshot) sendResultFast(q *QueryMsg, hn *snapHosted, send func(ServerID, Message)) {
	res := &ResultMsg{
		QueryID: q.QueryID,
		Dest:    q.Dest,
		OK:      true,
		Hops:    q.Hops,
		Started: q.Started,
		Meta:    hn.meta.Clone(),
		Map:     hn.outgoing,
		Path:    s.extendPathFast(q.Path, hn),
		TraceID: q.TraceID,
		Spans:   q.Spans,
		Piggy:   s.piggy,
	}
	s.stats.processed.Add(1)
	s.stats.resolved.Add(1)
	s.stats.resultsSent.Add(1)
	if s.tel != nil {
		s.tel.resolved.Inc()
	}
	send(q.Source, res)
}

func (s *RouteSnapshot) sendFailFast(q *QueryMsg, reason FailReason, send func(ServerID, Message)) {
	if reason == FailTTL {
		s.stats.failedTTL.Add(1)
	} else {
		s.stats.failedNoRoute.Add(1)
	}
	if s.tel != nil {
		s.tel.failed.Inc()
	}
	res := &ResultMsg{
		QueryID: q.QueryID,
		Dest:    q.Dest,
		OK:      false,
		Reason:  reason,
		Hops:    q.Hops,
		Started: q.Started,
		Path:    q.Path, // ownership transfer, see extendPath
		TraceID: q.TraceID,
		Spans:   s.traceSpanFast(q, q.Dest, telemetry.HopFail, send),
		Piggy:   s.piggy,
	}
	s.stats.processed.Add(1)
	s.stats.resultsSent.Add(1)
	send(q.Source, res)
}

// traceSpanFast mirrors Peer.traceSpan. ServiceMicros stays zero: the fast
// path serves at delivery time, so there is no queue-to-service gap to
// measure beyond QueueWaitMicros.
func (s *RouteSnapshot) traceSpanFast(q *QueryMsg, node NodeID, reason telemetry.HopReason, send func(ServerID, Message)) []telemetry.Span {
	if q.TraceID == 0 {
		return q.Spans
	}
	sp := telemetry.Span{
		Seq:    int32(q.Hops),
		Server: int32(s.self),
		Node:   int32(node),
		Reason: reason,
	}
	if q.ServedAt > 0 && q.Enqueued > 0 && q.ServedAt >= q.Enqueued {
		sp.QueueWaitMicros = int64((q.ServedAt - q.Enqueued) * 1e6)
	}
	spans := q.Spans
	if q.SpanBudget <= 0 || int32(len(spans)) < q.SpanBudget {
		spans = append(spans, sp)
	}
	if s.tel != nil {
		s.tel.spanReports.Inc()
	}
	s.stats.controlSent.Add(1)
	send(q.Source, &TraceSpanMsg{TraceID: q.TraceID, Span: sp, Piggy: s.piggy})
	return spans
}
