package core

import (
	"testing"
)

// hotColdNet builds a 3-server net where server 0 owns the top of the tree
// (the hierarchical bottleneck) and knows server 2's load.
func hotColdNet(t *testing.T, cfg Config) (*miniNet, map[string]NodeID) {
	tree, ids := paperTree()
	own := make([][]NodeID, 3)
	own[0] = []NodeID{ids["/u"], ids["/u/pub"], ids["/u/priv"]}
	own[1] = []NodeID{ids["/u/pub/people"], ids["/u/pub/people/faculty"], ids["/u/pub/people/students"],
		ids["/u/pub/people/faculty/John"], ids["/u/pub/people/students/Steve"]}
	own[2] = []NodeID{ids["/u/priv/people"], ids["/u/priv/people/staff"], ids["/u/priv/people/students"],
		ids["/u/priv/people/staff/Ann"], ids["/u/priv/people/students/Lisa"], ids["/u/priv/people/students/Mary"]}
	return newMiniNet(t, tree, own, cfg), ids
}

func TestReplicationSessionEndToEnd(t *testing.T) {
	n, ids := hotColdNet(t, DefaultConfig())
	p0 := n.peers[0]
	// Heat server 0's ranking and load; cool server 2.
	for i := 0; i < 10; i++ {
		p0.touchNode(p0.hosted[ids["/u"]])
	}
	n.envs[0].load = 0.95
	n.envs[2].load = 0.05
	p0.recordLoad(2, 0.05, 0)

	installed := map[NodeID]bool{}
	n.peers[2].Hooks.OnReplicaInstalled = func(node NodeID, from ServerID) {
		if from != 0 {
			t.Errorf("install attributed to %d", from)
		}
		installed[node] = true
	}
	p0.afterQuery() // trigger check (§3.3 step 1)
	if !p0.SessionActive() {
		t.Fatal("session did not start above Thigh")
	}
	n.deliverAll() // probe -> reply -> request -> reply
	if p0.SessionActive() {
		t.Fatal("session did not finish")
	}
	if p0.Stats.SessionsOK != 1 {
		t.Fatalf("SessionsOK = %d", p0.Stats.SessionsOK)
	}
	if !installed[ids["/u"]] {
		t.Fatalf("top-ranked node not replicated: %v", installed)
	}
	if !n.peers[2].HostsReplica(ids["/u"]) {
		t.Fatal("replica not hosted at destination")
	}
	// Advertisement: the owner's map for /u now lists server 2 first.
	m := p0.mapFor(ids["/u"])
	if m.Servers[0] != 2 || m.NumAdvertised < 1 {
		t.Fatalf("new replica not advertised in owner map: %+v", m)
	}
	// Hysteresis: source bias negative, destination bias positive.
	if p0.loadBias >= 0 {
		t.Fatalf("source bias = %v, want negative", p0.loadBias)
	}
	if n.peers[2].loadBias <= 0 {
		t.Fatalf("dest bias = %v, want positive", n.peers[2].loadBias)
	}
}

func TestReplicationBelowThreshold(t *testing.T) {
	n, _ := hotColdNet(t, DefaultConfig())
	p0 := n.peers[0]
	n.envs[0].load = 0.5 // below Thigh
	p0.recordLoad(2, 0.05, 0)
	p0.afterQuery()
	if p0.SessionActive() || p0.Stats.SessionsStarted != 0 {
		t.Fatal("session started below Thigh")
	}
}

func TestReplicationDisabledNoSessions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReplicationEnabled = false
	n, _ := hotColdNet(t, cfg)
	p0 := n.peers[0]
	n.envs[0].load = 0.99
	p0.recordLoad(2, 0.01, 0)
	p0.afterQuery()
	if p0.SessionActive() {
		t.Fatal("session started with replication disabled")
	}
}

func TestReplicationGossipPreFilter(t *testing.T) {
	// When every known load is within DeltaMin of ours, no probe is sent.
	n, _ := hotColdNet(t, DefaultConfig())
	p0 := n.peers[0]
	n.envs[0].load = 0.95
	p0.recordLoad(1, 0.92, 0)
	p0.recordLoad(2, 0.9, 0)
	p0.afterQuery()
	if p0.SessionActive() {
		t.Fatal("session should have aborted on the gossip pre-filter")
	}
	if p0.Stats.ControlSent != 0 {
		t.Fatalf("%d control messages sent despite pre-filter", p0.Stats.ControlSent)
	}
	if p0.Stats.SessionsAborted != 1 {
		t.Fatalf("SessionsAborted = %d", p0.Stats.SessionsAborted)
	}
}

func TestReplicationDestinationRefusesSmallGap(t *testing.T) {
	n, ids := hotColdNet(t, DefaultConfig())
	p0 := n.peers[0]
	for i := 0; i < 5; i++ {
		p0.touchNode(p0.hosted[ids["/u"]])
	}
	n.envs[0].load = 0.95
	n.envs[2].load = 0.9 // real load high, gossip stale-low
	p0.recordLoad(2, 0.05, 0)
	p0.afterQuery()
	n.deliverAll()
	// Probe reply reveals ld=0.9: gap < DeltaMin -> attempt fails; with no
	// other candidates the session aborts.
	if p0.SessionActive() {
		t.Fatal("session still active")
	}
	if p0.Stats.SessionsOK != 0 {
		t.Fatal("session succeeded despite small gap")
	}
	if n.peers[2].ReplicaCount() != 0 {
		t.Fatal("replica installed despite refusal")
	}
}

func TestReplicationCooldown(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReplicationCooldown = 5
	n, _ := hotColdNet(t, cfg)
	p0 := n.peers[0]
	n.envs[0].load = 0.95
	p0.recordLoad(1, 0.91, 0) // pre-filter abort
	p0.afterQuery()
	if p0.Stats.SessionsStarted != 1 {
		t.Fatal("first session missing")
	}
	p0.afterQuery() // within cooldown: no new session
	if p0.Stats.SessionsStarted != 1 {
		t.Fatal("cooldown not enforced")
	}
	n.advance(6)
	p0.afterQuery()
	if p0.Stats.SessionsStarted != 2 {
		t.Fatal("session not restarted after cooldown")
	}
}

func TestReplicationProbeTimeout(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReplicationAttempts = 1
	n, _ := hotColdNet(t, cfg)
	p0 := n.peers[0]
	n.envs[0].load = 0.95
	p0.recordLoad(2, 0.05, 0)
	p0.afterQuery()
	if !p0.SessionActive() {
		t.Fatal("session not started")
	}
	// Drop the probe (do not deliver); advance past the timeout.
	n.inflight = nil
	n.advance(cfg.ProbeTimeout + 0.1)
	if p0.SessionActive() {
		t.Fatal("session not aborted after probe timeout")
	}
	if p0.Stats.SessionsAborted != 1 {
		t.Fatalf("SessionsAborted = %d", p0.Stats.SessionsAborted)
	}
}

func TestKSelectionCoversLoadGap(t *testing.T) {
	tree, ids := paperTree()
	env := &fakeEnv{load: 0.9}
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"], ids["/u/pub"], ids["/u/priv"]}, 1, DefaultConfig(), env)
	// Weights: /u = 60, /u/pub = 30, /u/priv = 10.
	for i := 0; i < 60; i++ {
		p.touchNode(p.hosted[ids["/u"]])
	}
	for i := 0; i < 30; i++ {
		p.touchNode(p.hosted[ids["/u/pub"]])
	}
	for i := 0; i < 10; i++ {
		p.touchNode(p.hosted[ids["/u/priv"]])
	}
	// ls=0.9, ld=0.1: target share = (0.9-0.1)/(2*0.9) = 0.444 -> top-1
	// (0.6 share) covers it.
	payload := p.selectReplicationPayload(0.9, 0.1, 5)
	if len(payload) != 1 || payload[0].Node != ids["/u"] {
		t.Fatalf("payload = %+v", payload)
	}
	// ls=0.9, ld=0.0 w/ DeltaMin... target = 0.5: still top-1 (0.6 >= 0.5).
	payload = p.selectReplicationPayload(0.9, 0, 5)
	if len(payload) != 1 {
		t.Fatalf("payload size = %d", len(payload))
	}
	// Artificially require a bigger share by shrinking the top node weight:
	// make weights nearly equal; target 0.444 then needs 2 of 3 nodes.
	p2 := newTestPeer(t, tree, 2, []NodeID{ids["/u"], ids["/u/pub"], ids["/u/priv"]}, 1, DefaultConfig(), env)
	for _, id := range []NodeID{ids["/u"], ids["/u/pub"], ids["/u/priv"]} {
		p2.touchNode(p2.hosted[id])
	}
	payload = p2.selectReplicationPayload(0.9, 0.1, 5)
	if len(payload) != 2 {
		t.Fatalf("equal-weight payload size = %d, want 2", len(payload))
	}
	if payload[0].WeightHint <= 0 {
		t.Fatal("weight hint missing")
	}
}

func TestKSelectionZeroWeights(t *testing.T) {
	tree, ids := paperTree()
	env := &fakeEnv{load: 0.9}
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"], ids["/u/pub"]}, 1, DefaultConfig(), env)
	payload := p.selectReplicationPayload(0.9, 0.1, 5)
	if len(payload) != 1 {
		t.Fatalf("zero-weight payload size = %d, want 1", len(payload))
	}
}

func TestInstallReplicaRespectsFrepl(t *testing.T) {
	tree, ids := paperTree()
	cfg := DefaultConfig()
	cfg.ReplFactor = 1 // 1 owned node -> at most 1 replica
	env := &fakeEnv{}
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"]}, 1, cfg, env)
	pl1 := ReplicaPayload{Node: ids["/u/pub"], SelfMap: SingleServerMap(1), WeightHint: 5}
	pl2 := ReplicaPayload{Node: ids["/u/priv"], SelfMap: SingleServerMap(1), WeightHint: 1}
	if !p.installReplica(&pl1, 1) {
		t.Fatal("first install failed")
	}
	// Colder than resident: refused, no thrash.
	if p.installReplica(&pl2, 1) {
		t.Fatal("colder replica displaced a hotter resident")
	}
	if p.ReplicaCount() != 1 || !p.HostsReplica(ids["/u/pub"]) {
		t.Fatal("resident set wrong")
	}
	// Hotter than resident: displaces it.
	pl3 := ReplicaPayload{Node: ids["/u/priv/people"], SelfMap: SingleServerMap(1), WeightHint: 50}
	if !p.installReplica(&pl3, 1) {
		t.Fatal("hotter replica refused")
	}
	if p.ReplicaCount() != 1 || !p.HostsReplica(ids["/u/priv/people"]) || p.HostsReplica(ids["/u/pub"]) {
		t.Fatal("displacement wrong")
	}
	if p.Stats.ReplicaEvictions != 1 {
		t.Fatalf("evictions = %d", p.Stats.ReplicaEvictions)
	}
}

func TestInstallReplicaZeroFrepl(t *testing.T) {
	tree, ids := paperTree()
	cfg := DefaultConfig()
	cfg.ReplFactor = 0
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"]}, 1, cfg, &fakeEnv{})
	pl := ReplicaPayload{Node: ids["/u/pub"], SelfMap: SingleServerMap(1), WeightHint: 5}
	if p.installReplica(&pl, 1) {
		t.Fatal("install succeeded with Frepl=0")
	}
}

func TestInstallReplicaFractionalFrepl(t *testing.T) {
	tree, ids := paperTree()
	cfg := DefaultConfig()
	cfg.ReplFactor = 0.5 // 4 owned -> 2 replicas
	p := newTestPeer(t, tree, 0,
		[]NodeID{ids["/u"], ids["/u/pub"], ids["/u/priv"], ids["/u/pub/people"]}, 1, cfg, &fakeEnv{})
	nodes := []NodeID{ids["/u/priv/people"], ids["/u/priv/people/staff"], ids["/u/priv/people/students"]}
	installed := 0
	for _, nd := range nodes {
		pl := ReplicaPayload{Node: nd, SelfMap: SingleServerMap(1), WeightHint: 1}
		if p.installReplica(&pl, 1) {
			installed++
		}
	}
	if p.ReplicaCount() != 2 {
		t.Fatalf("replica count = %d, want 2 (Frepl=0.5 × 4 owned)", p.ReplicaCount())
	}
}

func TestInstallReplicaRefreshesExisting(t *testing.T) {
	tree, ids := paperTree()
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"]}, 1, DefaultConfig(), &fakeEnv{})
	pl := ReplicaPayload{
		Node: ids["/u/pub"], SelfMap: SingleServerMap(1), WeightHint: 5,
		Meta: Meta{Version: 1, Attrs: map[string]string{"a": "1"}},
	}
	if !p.installReplica(&pl, 1) {
		t.Fatal("install failed")
	}
	// Refresh with newer meta: not a new install, meta updated.
	pl2 := ReplicaPayload{
		Node: ids["/u/pub"], SelfMap: NodeMap{Servers: []ServerID{1, 3}}, WeightHint: 5,
		Meta: Meta{Version: 2, Attrs: map[string]string{"a": "2"}},
	}
	if p.installReplica(&pl2, 1) {
		t.Fatal("refresh counted as new install")
	}
	m, _ := p.MetaOf(ids["/u/pub"])
	if m.Version != 2 || m.Attrs["a"] != "2" {
		t.Fatalf("meta not refreshed: %+v", m)
	}
	// Older meta must not regress.
	pl3 := ReplicaPayload{
		Node: ids["/u/pub"], SelfMap: SingleServerMap(1),
		Meta: Meta{Version: 1, Attrs: map[string]string{"a": "old"}},
	}
	p.installReplica(&pl3, 1)
	m, _ = p.MetaOf(ids["/u/pub"])
	if m.Version != 2 {
		t.Fatal("older meta regressed a replica")
	}
}

func TestInstallReplicaNeighborContext(t *testing.T) {
	tree, ids := paperTree()
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"]}, 1, DefaultConfig(), &fakeEnv{})
	pl := ReplicaPayload{
		Node: ids["/u/priv/people"], SelfMap: SingleServerMap(2), WeightHint: 5,
		Neighbors: []NeighborMap{
			{Node: ids["/u/priv"], Map: SingleServerMap(2)},
			{Node: ids["/u/priv/people/staff"], Map: SingleServerMap(4)},
			{Node: ids["/u/priv/people/students"], Map: SingleServerMap(4)},
		},
	}
	if !p.installReplica(&pl, 2) {
		t.Fatal("install failed")
	}
	// Routing through the replica must be functionally equivalent to the
	// original (§2.3 constraint 2): context present for all neighbors.
	for _, nb := range []NodeID{ids["/u/priv"], ids["/u/priv/people/staff"], ids["/u/priv/people/students"]} {
		if m := p.mapFor(nb); m == nil || m.Len() == 0 {
			t.Fatalf("neighbor context for %d missing", nb)
		}
	}
	// Self must appear in the replica's own map.
	if m := p.mapFor(ids["/u/priv/people"]); !m.Contains(0) {
		t.Fatal("replica self map missing self")
	}
}

func TestReplicateRequestHandlerRejectsOnLoad(t *testing.T) {
	tree, ids := paperTree()
	env := &fakeEnv{load: 0.8}
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"]}, 1, DefaultConfig(), env)
	req := &ReplicateRequest{
		Session: 1, From: 3, Load: 0.85, // gap 0.05 < DeltaMin
		Nodes: []ReplicaPayload{{Node: ids["/u/pub"], SelfMap: SingleServerMap(3), WeightHint: 1}},
		Piggy: Piggyback{From: 3, Load: 0.85},
	}
	p.HandleControl(req)
	sent := env.take()
	if len(sent) != 1 {
		t.Fatalf("messages sent: %d", len(sent))
	}
	rep := sent[0].msg.(*ReplicateReply)
	if len(rep.Accepted) != 0 {
		t.Fatal("request accepted despite small gap")
	}
	if p.ReplicaCount() != 0 {
		t.Fatal("replica installed despite refusal")
	}
}

func TestLoadProbeReplyIgnoredWhenStale(t *testing.T) {
	tree, ids := paperTree()
	env := &fakeEnv{load: 0.9}
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"]}, 1, DefaultConfig(), env)
	// Reply for a session that does not exist: ignored without panic.
	p.HandleControl(&LoadProbeReply{Session: 99, From: 4, Load: 0.1})
	if p.SessionActive() {
		t.Fatal("stale reply activated a session")
	}
}

func TestSessionTimeoutIgnoredAfterCompletion(t *testing.T) {
	n, ids := hotColdNet(t, DefaultConfig())
	p0 := n.peers[0]
	for i := 0; i < 5; i++ {
		p0.touchNode(p0.hosted[ids["/u"]])
	}
	n.envs[0].load = 0.95
	n.envs[2].load = 0.05
	p0.recordLoad(2, 0.05, 0)
	p0.afterQuery()
	n.deliverAll() // completes the session
	aborted := p0.Stats.SessionsAborted
	n.advance(10) // fire the stale timeout
	if p0.Stats.SessionsAborted != aborted {
		t.Fatal("stale timeout aborted a finished session")
	}
}

func TestBuildPayloadSnapshotIsolated(t *testing.T) {
	tree, ids := paperTree()
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"]}, 1, DefaultConfig(), &fakeEnv{})
	pl := p.buildPayload(p.hosted[ids["/u"]])
	pl.SelfMap.AddRegular(42, 8)
	if p.mapFor(ids["/u"]).Contains(42) {
		t.Fatal("payload aliases live map")
	}
	if len(pl.Neighbors) == 0 {
		t.Fatal("payload missing neighbor context")
	}
}

func TestDigestSaysHostsSkipsKnownHosts(t *testing.T) {
	tree, ids := paperTree()
	env := &fakeEnv{load: 0.9}
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"], ids["/u/pub"]}, 1, DefaultConfig(), env)
	for i := 0; i < 9; i++ {
		p.touchNode(p.hosted[ids["/u"]])
	}
	p.touchNode(p.hosted[ids["/u/pub"]])
	// Destination 5 already hosts /u (per its digest): payload must skip it.
	other := newTestPeer(t, tree, 5, []NodeID{ids["/u/priv"]}, 1, DefaultConfig(), &fakeEnv{})
	other.AddOwned(ids["/u"], Meta{}) // cheat: host /u too
	other.FinishSetup(func(NodeID) ServerID { return 1 })
	p.storeDigest(5, other.Digest())
	payload := p.selectReplicationPayload(0.9, 0.1, 5)
	for _, pl := range payload {
		if pl.Node == ids["/u"] {
			t.Fatal("payload includes a node the destination already hosts")
		}
	}
	if len(payload) == 0 {
		t.Fatal("payload empty")
	}
}

func TestAdaptiveThighSuppressesSessionsNearCapacity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AdaptiveThigh = true
	n, _ := hotColdNet(t, cfg)
	p0 := n.peers[0]
	// Everyone is hot: estimated system utilization ≈ 0.9.
	n.envs[0].load = 0.92
	p0.recordLoad(1, 0.9, 0)
	p0.recordLoad(2, 0.88, 0)
	p0.Maintain() // refresh the system-load estimate
	p0.afterQuery()
	if p0.Stats.SessionsStarted != 0 {
		t.Fatal("session started despite system-wide saturation under adaptive Thigh")
	}
	// A genuinely imbalanced server still triggers: others are cold.
	cfg2 := DefaultConfig()
	cfg2.AdaptiveThigh = true
	n2, _ := hotColdNet(t, cfg2)
	q0 := n2.peers[0]
	n2.envs[0].load = 0.92
	q0.recordLoad(1, 0.1, 0)
	q0.recordLoad(2, 0.15, 0)
	q0.Maintain()
	q0.afterQuery()
	if q0.Stats.SessionsStarted != 1 {
		t.Fatal("imbalanced server did not trigger under adaptive Thigh")
	}
}
