package core

// This file is the peer's durability surface: a mutation journal hook that
// streams hosted-state changes to the persistence tier (internal/persist),
// plus export/import of full hosted records for snapshots and restart replay.
// Everything here follows the peer's single-threaded discipline — the journal
// callback fires inside the owning event loop, and ImportHosted/ExportHosted
// are only called while the loop is parked (restart, snapshot barrier).

// MutationKind classifies one hosted-state mutation in the durability
// journal. Values are part of the on-disk WAL format — append only, never
// renumber.
type MutationKind uint8

const (
	// MutUpsert creates or fully refreshes a hosted entry (replica install,
	// fresh adoption, snapshot export). The record carries the complete
	// durable state of the node.
	MutUpsert MutationKind = iota + 1
	// MutDelete removes a hosted replica (eviction).
	MutDelete
	// MutAdopt promotes an already-hosted entry to provisional ownership.
	MutAdopt
	// MutRelease demotes an adopted entry back to a plain replica.
	MutRelease
	// MutMeta replaces a hosted node's metadata.
	MutMeta
	// MutData replaces an owned node's application data.
	MutData
	// MutMap replaces a hosted node's self-map (only durable map changes are
	// journaled: replication acknowledgements adding advertised hosts).
	MutMap
)

// HostedMutation is one journal record: a hosted-state change expressed with
// enough context to be replayed on an empty peer. Which fields are meaningful
// depends on Kind; MutUpsert carries everything.
type HostedMutation struct {
	Kind    MutationKind
	Node    NodeID
	Owned   bool
	Adopted bool
	HasData bool
	Weight  float64
	Meta    Meta
	Map     NodeMap
	Data    []byte
}

// SetJournal installs the hosted-state mutation hook. The callback fires
// synchronously from the peer's execution context at every durable mutation;
// it must not call back into the peer and must not retain mu or its slices
// after returning (records reference live peer state, not copies). Call
// before message handling starts; nil disables journaling.
func (p *Peer) SetJournal(fn func(mu *HostedMutation)) { p.journal = fn }

// journalUpsert emits a full-state record for hn.
func (p *Peer) journalUpsert(hn *hostedNode) {
	p.markDirty(hn)
	if p.journal == nil {
		return
	}
	p.journal(&HostedMutation{
		Kind:    MutUpsert,
		Node:    hn.id,
		Owned:   hn.owned,
		Adopted: hn.adopted,
		HasData: hn.hasData,
		Weight:  hn.weight,
		Meta:    hn.meta,
		Map:     hn.selfMap,
		Data:    hn.data,
	})
}

// journalKind emits a partial record of the given kind for node.
func (p *Peer) journalKind(kind MutationKind, node NodeID) {
	if p.journal == nil {
		return
	}
	p.journal(&HostedMutation{Kind: kind, Node: node})
}

// ExportHosted snapshots every hosted node as a replayable MutUpsert record.
// All fields are deep copies: the persistence tier encodes and fsyncs them
// off the event loop, after the snapshot barrier has released.
func (p *Peer) ExportHosted() []HostedMutation {
	p.foldFastTouches()
	out := make([]HostedMutation, 0, len(p.hostedList))
	for _, hn := range p.hostedList {
		var data []byte
		if hn.data != nil {
			data = append([]byte(nil), hn.data...)
		}
		out = append(out, HostedMutation{
			Kind:    MutUpsert,
			Node:    hn.id,
			Owned:   hn.owned,
			Adopted: hn.adopted,
			HasData: hn.hasData,
			Weight:  p.decayedWeight(hn),
			Meta:    hn.meta.Clone(),
			Map:     hn.selfMap.Clone(),
			Data:    data,
		})
	}
	return out
}

// ImportHosted applies one replayed journal record, rebuilding hosted state
// after a restart. It mirrors the live mutation paths but skips their
// statistics, telemetry, hooks and journaling — replay must not re-journal
// itself or skew counters.
//
// Provisional (adopted) ownership is deliberately not durable: it derives
// from a liveness view that is stale by the time we restart, so adopted
// entries come back as plain replicas (the membership layer re-adopts if the
// original owner is still dead). MutAdopt records therefore replay as no-ops
// and MutUpsert strips the adopted/owned flags of adopted entries.
//
// It reports whether the record changed peer state.
func (p *Peer) ImportHosted(rec *HostedMutation, ownerOf func(NodeID) ServerID) bool {
	switch rec.Kind {
	case MutUpsert:
		owned, hasData, data := rec.Owned, rec.HasData, rec.Data
		if rec.Adopted {
			owned, hasData, data = false, false, nil
		}
		hn, ok := p.hosted[rec.Node]
		if !ok {
			if !p.AcceptsHosted(rec.Node) {
				return false
			}
			hn = &hostedNode{id: rec.Node}
			p.hosted[rec.Node] = hn
			p.hostedList = append(p.hostedList, hn)
			p.initNeighbors(hn, ownerOf)
		}
		if hn.owned && !owned {
			p.ownedCount--
		} else if !hn.owned && owned {
			p.ownedCount++
		}
		hn.owned = owned
		hn.adopted = false
		hn.hasData = hasData
		if data != nil {
			hn.data = append([]byte(nil), data...)
		} else {
			hn.data = nil
		}
		hn.meta = rec.Meta.Clone()
		hn.selfMap = rec.Map.Clone()
		p.ensureSelf(&hn.selfMap)
		hn.weight = rec.Weight
		hn.weightT = p.env.Now()
		hn.lastUsed = p.env.Now()
		hn.ref = true
		p.markDirty(hn)
		if p.resident.cold != nil {
			p.resident.cold.clear(rec.Node) // materialized: no longer disk-only
		}
		p.digestDirty = true
		return true
	case MutDelete:
		hn, ok := p.hosted[rec.Node]
		if !ok || hn.owned {
			if !ok && p.IsCold(rec.Node) && !p.resident.cold.hasOwned(rec.Node) {
				// The record exists only on disk; the delete wins over the
				// indexed state.
				p.resident.cold.clear(rec.Node)
				p.digestDirty = true
				return true
			}
			return false
		}
		delete(p.hosted, rec.Node)
		for i, h := range p.hostedList {
			if h == hn {
				p.hostedList = append(p.hostedList[:i], p.hostedList[i+1:]...)
				break
			}
		}
		for _, nb := range hn.neighborIDs {
			if e, ok := p.neighborMaps[nb]; ok {
				e.refs--
				if e.refs <= 0 {
					delete(p.neighborMaps, nb)
				}
			}
		}
		if p.resident.cold != nil {
			p.resident.bytes -= int64(hn.size)
		}
		p.digestDirty = true
		return true
	case MutAdopt:
		// Not durable (see above).
		return false
	case MutRelease:
		hn, ok := p.hosted[rec.Node]
		if !ok || !hn.owned || !hn.adopted {
			return false
		}
		hn.owned = false
		hn.adopted = false
		hn.hasData = false
		hn.data = nil
		p.ownedCount--
		p.markDirty(hn)
		return true
	case MutMeta:
		hn, ok := p.hosted[rec.Node]
		if !ok {
			return false
		}
		hn.meta = rec.Meta.Clone()
		p.markDirty(hn)
		return true
	case MutData:
		hn, ok := p.hosted[rec.Node]
		if !ok || !hn.owned {
			return false
		}
		hn.hasData = true
		hn.data = append([]byte(nil), rec.Data...)
		p.markDirty(hn)
		return true
	case MutMap:
		hn, ok := p.hosted[rec.Node]
		if !ok {
			return false
		}
		hn.selfMap = rec.Map.Clone()
		p.ensureSelf(&hn.selfMap)
		p.markDirty(hn)
		return true
	}
	return false
}
