package core

import (
	"testing"

	"terradir/internal/namespace"
	"terradir/internal/rng"
)

// benchPeer builds a peer hosting ~32 nodes of a 4095-node tree with a
// warmed cache and digest table — the routing hot path's realistic state.
func benchPeer(b *testing.B) (*Peer, *namespace.Tree, *fakeEnv) {
	b.Helper()
	tree := namespace.NewBalanced(2, 12)
	env := &fakeEnv{}
	src := rng.New(1)
	var owned []NodeID
	for i := 0; i < 32; i++ {
		owned = append(owned, NodeID(src.Intn(tree.Len())))
	}
	p, err := NewPeer(0, tree, DefaultConfig(), env, rng.New(2))
	if err != nil {
		b.Fatal(err)
	}
	ownedSet := map[NodeID]bool{}
	for _, n := range owned {
		p.AddOwned(n, Meta{})
		ownedSet[n] = true
	}
	p.FinishSetup(func(n NodeID) ServerID {
		if ownedSet[n] {
			return 0
		}
		return ServerID(1 + int(n)%63)
	})
	// Warm cache and digest table.
	for i := 0; i < 20; i++ {
		m := NodeMap{Servers: []ServerID{ServerID(1 + i%63)}}
		p.learnMap(NodeID(src.Intn(tree.Len())), &m)
	}
	for s := ServerID(1); s <= 32; s++ {
		other, err := NewPeer(s, tree, DefaultConfig(), &fakeEnv{}, rng.New(uint64(s)))
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			other.AddOwned(NodeID(src.Intn(tree.Len())), Meta{})
		}
		other.FinishSetup(func(NodeID) ServerID { return 1 })
		p.storeDigest(s, other.Digest())
	}
	return p, tree, env
}

func BenchmarkHandleQueryForward(b *testing.B) {
	p, tree, env := benchPeer(b)
	src := rng.New(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := &QueryMsg{
			QueryID:  uint64(i),
			Dest:     NodeID(src.Intn(tree.Len())),
			Source:   5,
			OnBehalf: namespace.Invalid,
		}
		p.HandleQuery(q)
		env.sent = env.sent[:0]
		env.timers = env.timers[:0]
	}
}

func BenchmarkBestCandidate(b *testing.B) {
	p, tree, _ := benchPeer(b)
	src := rng.New(9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.bestCandidate(NodeID(src.Intn(tree.Len())), nil)
	}
}

func BenchmarkDigestShortcut(b *testing.B) {
	p, tree, _ := benchPeer(b)
	src := rng.New(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.digestShortcut(NodeID(src.Intn(tree.Len())), 8)
	}
}

func BenchmarkNodeMapMerge(b *testing.B) {
	src := rng.New(11)
	var in NodeMap
	for s := ServerID(10); s < 16; s++ {
		in.AddRegular(s, 8)
	}
	in.AddAdvertised(99, 8)
	var dst NodeMap
	for s := ServerID(1); s < 8; s++ {
		dst.AddRegular(s, 8)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := dst.Clone()
		d.Merge(&in, 8, src, nil)
	}
}

func BenchmarkPiggyback(b *testing.B) {
	p, _, _ := benchPeer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.piggyback()
	}
}
