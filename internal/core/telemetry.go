package core

import "terradir/internal/telemetry"

// peerTelemetry holds the registry-backed counters a peer increments on its
// hot paths. All fields are non-nil once attached; every increment site is
// guarded by a nil check on Peer.tel, so an unattached peer (the simulator
// path) pays a single pointer test.
type peerTelemetry struct {
	resolved        *telemetry.Counter
	forwarded       *telemetry.Counter
	failed          *telemetry.Counter
	cacheHits       *telemetry.Counter
	cacheMisses     *telemetry.Counter
	digestShortcuts *telemetry.Counter
	progress        *telemetry.Counter
	detours         *telemetry.Counter
	installs        *telemetry.Counter
	evictions       *telemetry.Counter
	highCrossings   *telemetry.Counter
	lowCrossings    *telemetry.Counter
	spanReports     *telemetry.Counter
	serverPurges    *telemetry.Counter
	purgedEntries   *telemetry.Counter
	adoptions       *telemetry.Counter
	releases        *telemetry.Counter

	// aboveHigh tracks which side of the Thigh watermark the load was on at
	// the last check, so crossings count as edges rather than levels.
	aboveHigh bool
}

// AttachTelemetry wires the peer's protocol events into reg. labels are
// alternating key, value pairs applied to every metric (the overlay passes
// server="<id>" so a shared registry keeps per-server series). Counters are
// resolved by (name, labels), so re-attaching after a restart resumes the
// same series. Call before the peer starts handling messages; the peer is
// single-threaded, so attachment mid-stream would race with its own loop.
func (p *Peer) AttachTelemetry(reg *telemetry.Registry, labels ...string) {
	if reg == nil {
		p.tel = nil
		return
	}
	c := func(name, help string) *telemetry.Counter {
		return reg.Counter(name, help, labels...)
	}
	p.tel = &peerTelemetry{
		resolved:        c("terradir_lookups_resolved_total", "Lookups answered by this server (it hosted the destination)."),
		forwarded:       c("terradir_queries_forwarded_total", "Queries forwarded to another server."),
		failed:          c("terradir_lookups_failed_total", "Lookups this server terminated with a failure (TTL or no route)."),
		cacheHits:       c("terradir_cache_hits_total", "Forwards routed via a cached pointer (§2.4 path caching)."),
		cacheMisses:     c("terradir_cache_misses_total", "Forwards where no cached pointer won (neighbor context or digest shortcut used instead)."),
		digestShortcuts: c("terradir_digest_shortcuts_total", "Forwards redirected by an inverse-mapping digest hit (§3.6.1)."),
		progress:        c("terradir_routing_progress_total", "Forwarding steps that made incremental namespace progress (newDist < prevDist)."),
		detours:         c("terradir_routing_detours_total", "Forwarding steps that failed to improve on the sender's candidate distance."),
		installs:        c("terradir_replica_installs_total", "Replicas installed on this server."),
		evictions:       c("terradir_replica_evictions_total", "Replicas evicted from this server (Frepl bound or age)."),
		highCrossings:   c("terradir_load_high_watermark_crossings_total", "Times effective load rose across the Thigh watermark."),
		lowCrossings:    c("terradir_load_low_watermark_crossings_total", "Times effective load fell back below the Thigh watermark."),
		spanReports:     c("terradir_trace_span_reports_total", "Out-of-band trace span reports sent to query initiators."),
		serverPurges:    c("terradir_server_purges_total", "Dead-server purges applied to this peer's soft state."),
		purgedEntries:   c("terradir_purged_entries_total", "Soft-state references removed by dead-server purges."),
		adoptions:       c("terradir_ownership_adoptions_total", "Namespace nodes provisionally adopted from dead owners."),
		releases:        c("terradir_ownership_releases_total", "Adopted namespace nodes handed back to returned owners."),
	}
}

// trackWatermark counts Thigh watermark edges given the current side.
func (p *Peer) trackWatermark(above bool) {
	if p.tel == nil {
		return
	}
	if above && !p.tel.aboveHigh {
		p.tel.highCrossings.Inc()
	} else if !above && p.tel.aboveHigh {
		p.tel.lowCrossings.Inc()
	}
	p.tel.aboveHigh = above
}

// traceSpan emits this hop's span for a traced query: appended to the
// in-band chain while under budget, and always reported out-of-band to the
// initiating server (self-sends are delivered locally by the Env). Returns
// the chain to attach to the outgoing message. node is the namespace node
// the hop acted for; reason classifies the routing mechanism or outcome.
func (p *Peer) traceSpan(q *QueryMsg, node NodeID, reason telemetry.HopReason) []telemetry.Span {
	if q.TraceID == 0 {
		return q.Spans
	}
	sp := telemetry.Span{
		Seq:    int32(q.Hops),
		Server: int32(p.ID),
		Node:   int32(node),
		Reason: reason,
	}
	if q.ServedAt > 0 {
		if q.Enqueued > 0 && q.ServedAt >= q.Enqueued {
			sp.QueueWaitMicros = int64((q.ServedAt - q.Enqueued) * 1e6)
		}
		if now := p.env.Now(); now > q.ServedAt {
			sp.ServiceMicros = int64((now - q.ServedAt) * 1e6)
		}
	}
	spans := q.Spans
	if q.SpanBudget <= 0 || int32(len(spans)) < q.SpanBudget {
		spans = append(spans, sp)
	}
	if p.tel != nil {
		p.tel.spanReports.Inc()
	}
	p.sendControl(q.Source, &TraceSpanMsg{TraceID: q.TraceID, Span: sp, Piggy: p.piggyback()})
	return spans
}
