package core

// This file implements the adaptive replication protocol of §3: load
// balancing sessions (probe the least-loaded known server, ship the
// top-ranked hosted nodes), the Frepl hosting bound with lowest-rank-first
// eviction, and the post-transfer load hysteresis.

type replState uint8

const (
	replIdle replState = iota
	replAwaitProbe
	replAwaitReply
)

type replSession struct {
	id        uint64
	state     replState
	attempts  int
	tried     map[ServerID]bool
	candidate ServerID
	sentNodes []NodeID
}

// afterQuery runs the paper's trigger check: "a server checks its load after
// each processed query" (§3.3 step 1).
func (p *Peer) afterQuery() {
	if !p.cfg.ReplicationEnabled {
		return
	}
	thigh := p.cfg.Thigh
	if p.cfg.AdaptiveThigh {
		if t := p.sysLoadEst + p.cfg.DeltaMin; t > thigh {
			thigh = t
		}
	}
	eff := p.effLoad()
	p.trackWatermark(eff >= thigh)
	if p.sess.state != replIdle {
		return
	}
	now := p.env.Now()
	if now-p.lastSessionEnd < p.cfg.ReplicationCooldown {
		return
	}
	if eff < thigh {
		return
	}
	if len(p.hostedList) == 0 {
		return
	}
	p.startSession()
}

func (p *Peer) startSession() {
	p.nextSession++
	p.sess = replSession{
		id:    p.sessionBase | p.nextSession,
		tried: make(map[ServerID]bool),
	}
	p.Stats.SessionsStarted++
	p.tryNextCandidate()
}

// tryNextCandidate picks the minimum-load server among those this peer knows
// about (§3.3 step 2) that it has not yet tried this session, and probes its
// actual load. Load knowledge is gossip, so the probe is what decides.
func (p *Peer) tryNextCandidate() {
	if p.sess.attempts >= p.cfg.ReplicationAttempts {
		p.abortSession()
		return
	}
	p.sess.attempts++
	var best ServerID = NoServer
	bestLoad := 2.0
	for s, li := range p.knownLoads {
		if s == p.ID || p.sess.tried[s] {
			continue
		}
		if li.load < bestLoad || (li.load == bestLoad && (best == NoServer || s < best)) {
			best, bestLoad = s, li.load
		}
	}
	if best == NoServer {
		p.abortSession()
		return
	}
	// Gossip pre-filter: when even the best-known load shows no usable gap,
	// probing is pointless — every probe would come back with ls−ld < δmin
	// (e.g. global saturation). Abort cheaply and retry after the cooldown.
	if p.effLoad()-bestLoad < p.cfg.DeltaMin {
		p.abortSession()
		return
	}
	p.sess.tried[best] = true
	p.sess.candidate = best
	p.sess.state = replAwaitProbe
	sid := p.sess.id
	p.sendControl(best, &LoadProbeMsg{Session: sid, From: p.ID, Piggy: p.piggyback()})
	p.env.After(p.cfg.ProbeTimeout, func() { p.sessionTimeout(sid, replAwaitProbe) })
}

func (p *Peer) sessionTimeout(id uint64, inState replState) {
	if p.sess.id != id || p.sess.state != inState {
		return
	}
	p.tryNextCandidate()
}

func (p *Peer) abortSession() {
	if p.sess.state != replIdle || p.sess.id != 0 {
		p.Stats.SessionsAborted++
	}
	p.sess = replSession{}
	p.lastSessionEnd = p.env.Now()
}

func (p *Peer) finishSession() {
	p.sess = replSession{}
	p.lastSessionEnd = p.env.Now()
}

// HandleControl dispatches non-query protocol messages. Drivers route every
// message that is not a *QueryMsg or *ResultMsg here.
func (p *Peer) HandleControl(m Message) {
	switch msg := m.(type) {
	case *LoadProbeMsg:
		p.absorbPiggy(&msg.Piggy)
		p.sendControl(msg.From, &LoadProbeReply{
			Session: msg.Session,
			From:    p.ID,
			Load:    p.effLoad(),
			Piggy:   p.piggyback(),
		})
	case *LoadProbeReply:
		p.absorbPiggy(&msg.Piggy)
		p.handleProbeReply(msg)
	case *ReplicateRequest:
		p.absorbPiggy(&msg.Piggy)
		p.handleReplicateRequest(msg)
	case *ReplicateReply:
		p.absorbPiggy(&msg.Piggy)
		p.handleReplicateReply(msg)
	case *DataRequest:
		p.absorbPiggy(&msg.Piggy)
		rep := &DataReply{ReqID: msg.ReqID, Node: msg.Node, From: p.ID, Piggy: p.piggyback()}
		if data, ok := p.DataOf(msg.Node); ok {
			rep.OK = true
			rep.Data = data
		}
		p.sendControl(msg.From, rep)
	case *DataReply:
		// Consumed by the driver (overlay) before reaching the peer; absorb
		// the rider and otherwise ignore.
		p.absorbPiggy(&msg.Piggy)
	case *TraceSpanMsg:
		// Span reports are collected by the driver's trace store before
		// reaching the peer; only the rider matters here.
		p.absorbPiggy(&msg.Piggy)
	case *ResultMsg:
		p.HandleResult(msg)
	}
}

// handleProbeReply is §3.3 step 3: with the destination's actual load in
// hand, decide whether the gap justifies a transfer, select the top-ranked
// nodes covering the targeted load fraction, and ship them.
func (p *Peer) handleProbeReply(msg *LoadProbeReply) {
	if p.sess.state != replAwaitProbe || msg.Session != p.sess.id || msg.From != p.sess.candidate {
		return
	}
	ls := p.effLoad()
	ld := msg.Load
	if ls-ld < p.cfg.DeltaMin {
		p.tryNextCandidate()
		return
	}
	payload := p.selectReplicationPayload(ls, ld, msg.From)
	if len(payload) == 0 {
		p.tryNextCandidate()
		return
	}
	p.sess.state = replAwaitReply
	p.sess.sentNodes = p.sess.sentNodes[:0]
	for _, pl := range payload {
		p.sess.sentNodes = append(p.sess.sentNodes, pl.Node)
	}
	sid := p.sess.id
	p.sendControl(msg.From, &ReplicateRequest{
		Session: sid,
		From:    p.ID,
		Load:    ls,
		Nodes:   payload,
		Piggy:   p.piggyback(),
	})
	p.env.After(p.cfg.ProbeTimeout, func() { p.sessionTimeout(sid, replAwaitReply) })
}

// selectReplicationPayload ranks hosted nodes by weight and takes the
// smallest prefix whose weight share reaches (ls−ld)/(2·ls) (§3.3 step 3),
// skipping nodes the destination already (plausibly) hosts.
func (p *Peer) selectReplicationPayload(ls, ld float64, dest ServerID) []ReplicaPayload {
	ranked := p.rankHosted()
	total := 0.0
	for _, hn := range ranked {
		total += p.decayedWeight(hn)
	}
	target := (ls - ld) / (2 * ls)
	var payload []ReplicaPayload
	covered := 0.0
	for _, hn := range ranked {
		if p.digestSaysHosts(dest, hn.id) {
			continue // destination already hosts it; replicating is a no-op
		}
		payload = append(payload, p.buildPayload(hn))
		if total > 0 {
			covered += p.decayedWeight(hn) / total
			if covered >= target {
				break
			}
		} else {
			break // no weight signal: ship just the first-ranked node
		}
	}
	return payload
}

// digestSaysHosts is the affirmative-direction digest check used to avoid
// shipping a replica the destination already holds. Unlike digestSays (which
// is permissive when no digest is known), this requires positive evidence.
func (p *Peer) digestSaysHosts(server ServerID, node NodeID) bool {
	if !p.cfg.DigestsEnabled {
		return false
	}
	if p.OracleHosts != nil {
		for _, s := range p.OracleHosts(node) {
			if s == server {
				return true
			}
		}
		return false
	}
	e, ok := p.digests[server]
	if !ok {
		return false
	}
	return e.filter.Test(NodeKey(node))
}

// buildPayload snapshots the replica state for one hosted node: metadata,
// the node's map (with this peer in it), and its neighbor context — the
// "Replicated" row of Table 1.
func (p *Peer) buildPayload(hn *hostedNode) ReplicaPayload {
	pl := ReplicaPayload{
		Node:       hn.id,
		Meta:       hn.meta.Clone(),
		SelfMap:    p.outgoingMap(hn.id),
		WeightHint: p.decayedWeight(hn),
	}
	for _, nb := range hn.neighborIDs {
		if e, ok := p.neighborMaps[nb]; ok && e.m.Len() > 0 {
			pl.Neighbors = append(pl.Neighbors, NeighborMap{Node: nb, Map: e.m.Clone()})
		}
	}
	return pl
}

// handleReplicateRequest is the destination side of §3.3: re-verify the load
// gap, install what fits under Frepl (evicting lowest-ranked replicas), and
// acknowledge with the post-install load.
func (p *Peer) handleReplicateRequest(msg *ReplicateRequest) {
	ld := p.effLoad()
	if msg.Load-ld < p.cfg.DeltaMin {
		p.sendControl(msg.From, &ReplicateReply{
			Session: ServerSession{ID: msg.Session, From: p.ID},
			Load:    ld,
			Piggy:   p.piggyback(),
		})
		return
	}
	var accepted []NodeID
	for i := range msg.Nodes {
		if p.installReplica(&msg.Nodes[i], msg.From) {
			accepted = append(accepted, msg.Nodes[i].Node)
		}
	}
	if len(accepted) > 0 {
		// Hysteresis (§3.3 step 4): both sides adjust toward the midpoint.
		p.loadBias += (msg.Load - ld) / 2
	}
	p.sendControl(msg.From, &ReplicateReply{
		Session:  ServerSession{ID: msg.Session, From: p.ID},
		Accepted: accepted,
		Load:     p.effLoad(),
		Piggy:    p.piggyback(),
	})
}

// installReplica adds one replica, making room under the Frepl bound by
// evicting lowest-ranked replicas first (§3.5). Owned nodes and refreshes of
// already-hosted replicas are handled without consuming capacity.
func (p *Peer) installReplica(pl *ReplicaPayload, from ServerID) bool {
	if hn, ok := p.hosted[pl.Node]; ok {
		// Already hosted: refresh soft state (newest meta wins, maps merge).
		if pl.Meta.Version > hn.meta.Version {
			hn.meta = pl.Meta.Clone()
		}
		hn.selfMap.Merge(&pl.SelfMap, p.cfg.MapSize, p.src, p.keepFor(pl.Node))
		p.ensureSelf(&hn.selfMap)
		return false
	}
	max := p.maxReplicas()
	if max <= 0 {
		return false
	}
	if !p.AcceptsHosted(pl.Node) {
		// Another shard's partition: only its home shard may host it.
		return false
	}
	// Make room under Frepl by evicting lowest-ranked replicas (§3.5) — but
	// only ones colder than the incoming node's weight hint; otherwise the
	// bounded replica set would thrash between equally hot nodes.
	for p.ReplicaCount() >= max {
		victim := p.lowestRankedReplica()
		if victim == nil || victim.id == pl.Node {
			return false
		}
		if p.decayedWeight(victim) >= pl.WeightHint {
			return false
		}
		p.evictReplica(victim.id)
	}
	hn := &hostedNode{
		id:      pl.Node,
		owned:   false,
		hasData: false,
		meta:    pl.Meta.Clone(),
		selfMap: pl.SelfMap.Clone(),
		// Seed the rank from the source's observation so the new replica is
		// not instantly the coldest node on this server.
		weight:  pl.WeightHint / 2,
		weightT: p.env.Now(),
	}
	p.ensureSelf(&hn.selfMap)
	hn.lastUsed = p.env.Now()
	hn.ref = true
	for _, nb := range pl.Neighbors {
		hn.neighborIDs = append(hn.neighborIDs, nb.Node)
		if e, ok := p.neighborMaps[nb.Node]; ok {
			e.refs++
			inc := nb.Map
			e.m.Merge(&inc, p.cfg.MapSize, p.src, p.keepFor(nb.Node))
		} else {
			p.neighborMaps[nb.Node] = &neighborMapEntry{m: nb.Map.Clone(), refs: 1}
		}
		// A neighbor pointer supersedes any cache entry for the same node.
		p.cache.Delete(nb.Node)
	}
	p.cache.Delete(pl.Node)
	p.hosted[pl.Node] = hn
	p.hostedList = append(p.hostedList, hn)
	if p.resident.cold != nil {
		// A cold copy of this node may still sit in the on-disk index; the
		// fresh (dirty, journaled) entry supersedes it.
		p.resident.cold.clear(pl.Node)
	}
	p.digestDirty = true
	p.journalUpsert(hn)
	p.Stats.ReplicaInstalls++
	if p.tel != nil {
		p.tel.installs.Inc()
	}
	if p.Hooks.OnReplicaInstalled != nil {
		p.Hooks.OnReplicaInstalled(pl.Node, from)
	}
	return true
}

func (p *Peer) lowestRankedReplica() *hostedNode {
	p.foldFastTouches()
	var victim *hostedNode
	var vw float64
	for _, hn := range p.hostedList {
		if hn.owned {
			continue
		}
		w := p.decayedWeight(hn)
		if victim == nil || w < vw || (w == vw && hn.id < victim.id) {
			victim, vw = hn, w
		}
	}
	return victim
}

// handleReplicateReply is §3.3 steps 4–5 on the source side: on acceptance,
// advertise the new replicas and apply the hysteresis bias; on refusal, try
// the next candidate.
func (p *Peer) handleReplicateReply(msg *ReplicateReply) {
	if p.sess.state != replAwaitReply || msg.Session.ID != p.sess.id || msg.Session.From != p.sess.candidate {
		return
	}
	dest := msg.Session.From
	p.recordLoad(dest, msg.Load, p.env.Now())
	if len(msg.Accepted) == 0 {
		p.tryNextCandidate()
		return
	}
	ls := p.effLoad()
	for _, node := range msg.Accepted {
		if hn, ok := p.hosted[node]; ok {
			hn.selfMap.AddAdvertised(dest, p.cfg.MapSize)
			p.ensureSelf(&hn.selfMap)
			p.markDirty(hn)
			if p.journal != nil {
				p.journal(&HostedMutation{Kind: MutMap, Node: node, Map: hn.selfMap})
			}
		}
		if p.cfg.AdvertiseReplicas {
			p.recentAdverts = append(p.recentAdverts, advertRecord{
				node:    node,
				servers: []ServerID{dest},
				created: p.env.Now(),
			})
			if len(p.recentAdverts) > p.cfg.MapSize {
				p.recentAdverts = p.recentAdverts[len(p.recentAdverts)-p.cfg.MapSize:]
			}
		}
	}
	if msg.Load < ls {
		p.loadBias -= (ls - msg.Load) / 2
	}
	p.Stats.SessionsOK++
	p.finishSession()
}

func (p *Peer) sendControl(to ServerID, m Message) {
	p.Stats.ControlSent++
	p.env.Send(to, m)
}

// SessionActive reports whether a load-balancing session is in flight
// (testing/introspection).
func (p *Peer) SessionActive() bool { return p.sess.state != replIdle }

// BuildReplicaPayload snapshots the replica state for a hosted node: the
// state another server needs to host a functionally equivalent replica
// (§2.3). Used by the adaptive protocol internally and by static replication
// bootstrap (the paper §2.3 notes hierarchical bottlenecks can also be
// addressed statically, citing the original TerraDir paper).
func (p *Peer) BuildReplicaPayload(node NodeID) (ReplicaPayload, bool) {
	hn, ok := p.hosted[node]
	if !ok {
		return ReplicaPayload{}, false
	}
	return p.buildPayload(hn), true
}

// InstallReplica installs a replica directly (bootstrap/static-replication
// path). The Frepl bound and lowest-rank eviction apply exactly as for
// protocol-driven installs. It reports whether a new replica was installed.
func (p *Peer) InstallReplica(pl *ReplicaPayload, from ServerID) bool {
	return p.installReplica(pl, from)
}
