package core

import (
	"testing"
	"testing/quick"

	"terradir/internal/rng"
)

func TestNodeMapAddRegular(t *testing.T) {
	var m NodeMap
	if !m.AddRegular(1, 3) || !m.AddRegular(2, 3) || !m.AddRegular(3, 3) {
		t.Fatal("adds within capacity failed")
	}
	if m.AddRegular(4, 3) {
		t.Fatal("add beyond Msize succeeded")
	}
	if m.AddRegular(2, 3) {
		t.Fatal("duplicate add succeeded")
	}
	if m.Len() != 3 || !m.Contains(1) || !m.Contains(2) || !m.Contains(3) {
		t.Fatalf("map state wrong: %+v", m)
	}
}

func TestNodeMapAddAdvertisedFrontAndPromotion(t *testing.T) {
	var m NodeMap
	m.AddRegular(1, 4)
	m.AddRegular(2, 4)
	m.AddAdvertised(3, 4)
	if m.Servers[0] != 3 || m.NumAdvertised != 1 {
		t.Fatalf("advertised not at front: %+v", m)
	}
	// Promote an existing regular entry.
	m.AddAdvertised(2, 4)
	if m.Servers[0] != 2 || m.NumAdvertised != 2 {
		t.Fatalf("promotion wrong: %+v", m)
	}
	if m.Len() != 3 {
		t.Fatalf("promotion changed length: %+v", m)
	}
}

func TestNodeMapAddAdvertisedDisplacement(t *testing.T) {
	var m NodeMap
	m.AddRegular(1, 3)
	m.AddRegular(2, 3)
	m.AddRegular(3, 3)
	m.AddAdvertised(9, 3)
	if m.Len() != 3 {
		t.Fatalf("len = %d after displacement", m.Len())
	}
	if !m.Contains(9) || m.Servers[0] != 9 {
		t.Fatalf("new advert missing: %+v", m)
	}
	if m.Contains(3) {
		t.Fatalf("last regular entry should have been displaced: %+v", m)
	}
}

func TestNodeMapAllAdvertisedDisplacement(t *testing.T) {
	var m NodeMap
	m.AddAdvertised(1, 2)
	m.AddAdvertised(2, 2)
	m.AddAdvertised(3, 2)
	if m.Len() != 2 || m.Servers[0] != 3 {
		t.Fatalf("oldest advert not displaced: %+v", m)
	}
	if m.NumAdvertised != 2 {
		t.Fatalf("NumAdvertised = %d", m.NumAdvertised)
	}
}

func TestNodeMapRemove(t *testing.T) {
	var m NodeMap
	m.AddAdvertised(1, 4)
	m.AddRegular(2, 4)
	if !m.Remove(1) {
		t.Fatal("remove advertised failed")
	}
	if m.NumAdvertised != 0 {
		t.Fatalf("NumAdvertised = %d after removing advert", m.NumAdvertised)
	}
	if m.Remove(99) {
		t.Fatal("removing absent entry reported true")
	}
	if !m.Remove(2) || m.Len() != 0 {
		t.Fatal("remove regular failed")
	}
}

func TestNodeMapDemote(t *testing.T) {
	var m NodeMap
	m.AddAdvertised(1, 4)
	m.AddAdvertised(2, 4)
	m.Demote()
	if m.NumAdvertised != 0 || m.Len() != 2 {
		t.Fatalf("demote wrong: %+v", m)
	}
}

func TestNodeMapCloneIndependence(t *testing.T) {
	var m NodeMap
	m.AddRegular(1, 4)
	c := m.Clone()
	c.AddRegular(2, 4)
	if m.Contains(2) {
		t.Fatal("clone shares storage")
	}
}

func TestNodeMapMergePrefersAdvertised(t *testing.T) {
	src := rng.New(1)
	var dst NodeMap
	dst.AddRegular(1, 4)
	dst.AddRegular(2, 4)
	dst.AddRegular(3, 4)
	dst.AddRegular(4, 4)
	var in NodeMap
	in.AddAdvertised(10, 4)
	in.AddAdvertised(11, 4)
	dst.Merge(&in, 4, src, nil)
	if dst.Len() != 4 {
		t.Fatalf("len = %d", dst.Len())
	}
	// Incoming advertised entries must survive, at the front.
	if dst.Servers[0] != 10 && dst.Servers[0] != 11 {
		t.Fatalf("advertised not in front: %+v", dst)
	}
	if !dst.Contains(10) || !dst.Contains(11) {
		t.Fatalf("advertised entries lost: %+v", dst)
	}
	if dst.NumAdvertised != 2 {
		t.Fatalf("NumAdvertised = %d", dst.NumAdvertised)
	}
}

func TestNodeMapMergeFilter(t *testing.T) {
	src := rng.New(2)
	var dst NodeMap
	dst.AddRegular(1, 8)
	var in NodeMap
	in.AddRegular(2, 8)
	in.AddRegular(3, 8)
	dst.Merge(&in, 8, src, func(s ServerID) bool { return s != 3 })
	if dst.Contains(3) {
		t.Fatal("filtered entry survived merge")
	}
	if !dst.Contains(1) || !dst.Contains(2) {
		t.Fatalf("kept entries lost: %+v", dst)
	}
}

func TestNodeMapMergeRandomFillRespectsMsize(t *testing.T) {
	src := rng.New(3)
	if err := quick.Check(func(seed uint32) bool {
		local := rng.New(uint64(seed))
		var a, b NodeMap
		for i := 0; i < 10; i++ {
			a.AddRegular(ServerID(local.Intn(20)), 100)
			b.AddRegular(ServerID(local.Intn(20)+20), 100)
		}
		msize := 1 + local.Intn(8)
		a.Merge(&b, msize, src, nil)
		if a.Len() > msize {
			return false
		}
		// Uniqueness invariant.
		seen := map[ServerID]bool{}
		for _, s := range a.Servers {
			if seen[s] {
				return false
			}
			seen[s] = true
		}
		return a.NumAdvertised <= a.Len()
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeMapMergeEmptyIncoming(t *testing.T) {
	src := rng.New(4)
	var dst NodeMap
	dst.AddRegular(1, 4)
	var in NodeMap
	dst.Merge(&in, 4, src, nil)
	if dst.Len() != 1 || !dst.Contains(1) {
		t.Fatalf("merge with empty incoming changed map: %+v", dst)
	}
}

func TestNodeMapPickUniform(t *testing.T) {
	src := rng.New(5)
	var m NodeMap
	for i := 1; i <= 4; i++ {
		m.AddRegular(ServerID(i), 8)
	}
	counts := map[ServerID]int{}
	for i := 0; i < 4000; i++ {
		counts[m.Pick(src, NoServer, nil)]++
	}
	for s := ServerID(1); s <= 4; s++ {
		if counts[s] < 800 || counts[s] > 1200 {
			t.Fatalf("Pick not uniform: %v", counts)
		}
	}
}

func TestNodeMapPickExcludes(t *testing.T) {
	src := rng.New(6)
	var m NodeMap
	m.AddRegular(1, 4)
	m.AddRegular(2, 4)
	for i := 0; i < 100; i++ {
		if got := m.Pick(src, 1, nil); got != 2 {
			t.Fatalf("Pick returned excluded or wrong entry: %d", got)
		}
	}
	var only NodeMap
	only.AddRegular(1, 4)
	if got := only.Pick(src, 1, nil); got != NoServer {
		t.Fatalf("Pick of fully excluded map = %d", got)
	}
}

func TestNodeMapPickFilterStrict(t *testing.T) {
	// Digest filtering is strict (§3.7): if every entry is refuted, Pick
	// returns NoServer and the caller prunes + falls back to the next-best
	// candidate — it must never re-select a refuted entry.
	src := rng.New(7)
	var m NodeMap
	m.AddRegular(1, 4)
	m.AddRegular(2, 4)
	got := m.Pick(src, NoServer, func(ServerID) bool { return false })
	if got != NoServer {
		t.Fatalf("Pick selected a refuted entry: %d", got)
	}
}

func TestNodeMapPrune(t *testing.T) {
	var m NodeMap
	m.AddAdvertised(1, 8)
	m.AddAdvertised(2, 8)
	m.AddRegular(3, 8)
	m.AddRegular(4, 8)
	removed := m.Prune(func(s ServerID) bool { return s%2 == 0 })
	if removed != 2 {
		t.Fatalf("removed = %d, want 2", removed)
	}
	if m.Len() != 2 || !m.Contains(2) || !m.Contains(4) {
		t.Fatalf("prune result wrong: %+v", m)
	}
	if m.NumAdvertised != 1 {
		t.Fatalf("NumAdvertised = %d, want 1", m.NumAdvertised)
	}
	if m.Prune(nil) != 0 {
		t.Fatal("nil predicate should be a no-op")
	}
}

func TestNodeMapPickEmpty(t *testing.T) {
	src := rng.New(8)
	var m NodeMap
	if got := m.Pick(src, NoServer, nil); got != NoServer {
		t.Fatalf("Pick on empty map = %d", got)
	}
}

func TestNodeMapTruncate(t *testing.T) {
	var m NodeMap
	m.AddAdvertised(1, 8)
	m.AddAdvertised(2, 8)
	m.AddRegular(3, 8)
	m.Truncate(1)
	if m.Len() != 1 || m.NumAdvertised != 1 {
		t.Fatalf("truncate wrong: %+v", m)
	}
	m.Truncate(5) // no-op when under size
	if m.Len() != 1 {
		t.Fatal("truncate grew the map")
	}
}

func TestSingleServerMap(t *testing.T) {
	m := SingleServerMap(7)
	if m.Len() != 1 || !m.Contains(7) || m.NumAdvertised != 0 {
		t.Fatalf("SingleServerMap wrong: %+v", m)
	}
}
