package core

import (
	"sync"
	"testing"

	"terradir/internal/namespace"
)

// residentTree builds a root with n leaf children (a flat partition to host).
func residentTree(n int) (*namespace.Tree, []NodeID) {
	var b namespace.Builder
	root := b.AddRoot("root")
	ids := []NodeID{root}
	for i := 0; i < n; i++ {
		ids = append(ids, b.AddChild(root, "leaf"))
	}
	return b.Build(), ids
}

func newResidentPeer(t *testing.T, nLeaves, capEntries int) (*Peer, []NodeID, *fakeEnv) {
	t.Helper()
	tree, ids := residentTree(nLeaves)
	env := &fakeEnv{now: 1}
	p := newTestPeer(t, tree, 0, ids, 1, DefaultConfig(), env)
	p.SetResidency(capEntries, 0, nil)
	return p, ids, env
}

func cleanEpoch(p *Peer) {
	g := p.MarkCleanEpoch()
	p.CompleteCleanEpoch(g)
}

func TestResidencyCapInvariant(t *testing.T) {
	const n, cap = 12, 4
	p, ids, _ := newResidentPeer(t, n, cap)
	total := len(ids) // root + n leaves

	// Everything starts dirty: no snapshot has covered it, so nothing may
	// leave memory yet even far over cap.
	p.EnforceResidency()
	if p.ResidentCount() != total || p.ColdCount() != 0 {
		t.Fatalf("dirty entries evicted: resident=%d cold=%d", p.ResidentCount(), p.ColdCount())
	}

	// After a completed clean epoch the resident set drains to cap.
	cleanEpoch(p)
	p.EnforceResidency()
	if p.ResidentCount() != cap {
		t.Fatalf("resident=%d, want cap %d", p.ResidentCount(), cap)
	}
	if p.ColdCount() != total-cap {
		t.Fatalf("cold=%d, want %d", p.ColdCount(), total-cap)
	}

	// The hosted partition is unchanged: every node still hosted, counted,
	// digested and enumerable.
	if p.OwnedCount() != total {
		t.Fatalf("OwnedCount=%d, want %d", p.OwnedCount(), total)
	}
	if got := p.HostedIDs(); len(got) != total {
		t.Fatalf("HostedIDs has %d entries, want %d", len(got), total)
	}
	p.rebuildDigest()
	for _, id := range ids {
		if !p.Hosts(id) {
			t.Fatalf("node %d no longer hosted after demotion", id)
		}
		if !p.digest.Test(NodeKey(id)) {
			t.Fatalf("digest lost node %d", id)
		}
	}
	resident := 0
	for _, id := range ids {
		if _, ok := p.hosted[id]; ok {
			resident++
			if p.IsCold(id) {
				t.Fatalf("node %d both resident and cold", id)
			}
		} else if !p.IsCold(id) {
			t.Fatalf("node %d neither resident nor cold", id)
		}
	}
	if resident != cap {
		t.Fatalf("map holds %d entries, want %d", resident, cap)
	}
}

func TestResidencyBytesCap(t *testing.T) {
	tree, ids := residentTree(10)
	env := &fakeEnv{now: 1}
	p := newTestPeer(t, tree, 0, ids, 1, DefaultConfig(), env)
	perEntry := int64(hostedSize(p.hostedList[0]))
	p.SetResidency(0, 4*perEntry, nil)
	cleanEpoch(p)
	p.EnforceResidency()
	if p.ResidentBytes() > 4*perEntry {
		t.Fatalf("resident bytes %d exceed cap %d", p.ResidentBytes(), 4*perEntry)
	}
	if p.ResidentCount()+p.ColdCount() != len(ids) {
		t.Fatalf("lost entries: resident=%d cold=%d total=%d", p.ResidentCount(), p.ColdCount(), len(ids))
	}
}

func TestClockSecondChance(t *testing.T) {
	const n, cap = 8, 10 // start under cap; shrink cap via direct eviction
	p, ids, _ := newResidentPeer(t, n, cap)
	cleanEpoch(p)

	// Touch every entry except two: the untouched ones must go first.
	spare := map[NodeID]bool{ids[3]: true, ids[7]: true}
	for _, hn := range p.hostedList {
		hn.ref = spare[hn.id] == false
	}
	if !p.evictOneCold() || !p.evictOneCold() {
		t.Fatal("no evictable entries found")
	}
	for id := range spare {
		if !p.IsCold(id) {
			t.Fatalf("untouched node %d survived while referenced entries were candidates", id)
		}
	}
	// The first sweep consumed the reference bits; a third eviction must
	// still succeed (second chance, not permanent pinning).
	if !p.evictOneCold() {
		t.Fatal("referenced entries permanently pinned")
	}
}

func TestDirtyEntriesPinned(t *testing.T) {
	const n, cap = 6, 2
	p, ids, _ := newResidentPeer(t, n, cap)
	cleanEpoch(p)

	// Dirty one entry after the epoch: it must survive every sweep.
	dirty := ids[2]
	if !p.SetMeta(dirty, map[string]string{"k": "v"}) {
		t.Fatal("SetMeta failed")
	}
	p.EnforceResidency()
	if p.IsCold(dirty) {
		t.Fatal("dirty entry was evicted")
	}
	if _, ok := p.hosted[dirty]; !ok {
		t.Fatal("dirty entry vanished")
	}
	// Next completed epoch cleans it; now it is evictable.
	cleanEpoch(p)
	for _, hn := range p.hostedList {
		hn.ref = false
	}
	p.EnforceResidency()
	if p.ResidentCount() != cap {
		t.Fatalf("resident=%d, want %d after clean epoch", p.ResidentCount(), cap)
	}
}

func TestAdoptedEntriesPinned(t *testing.T) {
	p, ids, _ := newResidentPeer(t, 4, 1)
	cleanEpoch(p)
	hn := p.hosted[ids[1]]
	hn.adopted = true
	for _, h := range p.hostedList {
		h.ref = false
	}
	p.EnforceResidency()
	if p.IsCold(ids[1]) {
		t.Fatal("adopted entry was demoted to cold")
	}
}

func TestInstallFromIndexRoundTrip(t *testing.T) {
	const n, cap = 6, 3
	p, ids, _ := newResidentPeer(t, n, cap)
	if ok := p.SetData(ids[2], []byte("payload")); !ok {
		t.Fatal("SetData failed")
	}
	export := p.ExportHosted()
	var rec *HostedMutation
	for i := range export {
		if export[i].Node == ids[2] {
			rec = &export[i]
		}
	}
	cleanEpoch(p)
	p.EnforceResidency()
	if !p.IsCold(ids[2]) {
		// Force the interesting case: demote it directly.
		for i, hn := range p.hostedList {
			if hn.id == ids[2] {
				p.demoteToCold(i)
				break
			}
		}
	}
	before := p.ResidentCount()
	if !p.InstallFromIndex(rec, func(NodeID) ServerID { return 0 }) {
		t.Fatal("InstallFromIndex refused the record")
	}
	if p.IsCold(ids[2]) {
		t.Fatal("installed node still cold")
	}
	hn, ok := p.hosted[ids[2]]
	if !ok {
		t.Fatal("installed node not resident")
	}
	if hn.dirtyGen != 0 {
		t.Fatal("index-installed entry must be clean (its durable copy is the index)")
	}
	if !hn.ref {
		t.Fatal("installed entry should carry a reference bit (it was just demanded)")
	}
	if string(hn.data) != "payload" || !hn.owned {
		t.Fatalf("installed state wrong: owned=%v data=%q", hn.owned, hn.data)
	}
	if p.ResidentCount() > before+1 {
		t.Fatalf("install did not enforce the cap: resident=%d", p.ResidentCount())
	}
	if p.OwnedCount() != n+1 {
		t.Fatalf("OwnedCount=%d, want %d", p.OwnedCount(), n+1)
	}
}

func TestImportHostedClearsCold(t *testing.T) {
	p, ids, _ := newResidentPeer(t, 4, 10)
	cleanEpoch(p)
	for i, hn := range p.hostedList {
		if hn.id == ids[1] {
			p.demoteToCold(i)
			break
		}
	}
	// A WAL-tail delete of a cold replica must drop the cold bit. Cold owned
	// entries refuse deletion the same way resident owned ones do.
	if p.ImportHosted(&HostedMutation{Kind: MutDelete, Node: ids[1]}, nil) {
		t.Fatal("MutDelete removed a cold owned node")
	}
	// Demote a replica (strip ownership first) and delete it cold.
	p.resident.cold.set(ids[1], false) // rewrite bit as replica
	if !p.ImportHosted(&HostedMutation{Kind: MutDelete, Node: ids[1]}, nil) {
		t.Fatal("MutDelete did not clear the cold replica")
	}
	if p.IsCold(ids[1]) || p.Hosts(ids[1]) {
		t.Fatal("cold bit survived the delete")
	}
	// A WAL-tail upsert of a cold node materializes it and clears the bit.
	p.MarkCold(ids[2], false)
	delete(p.hosted, ids[2]) // simulate restart: cold, not resident
	for i, hn := range p.hostedList {
		if hn.id == ids[2] {
			p.hostedList = append(p.hostedList[:i], p.hostedList[i+1:]...)
			break
		}
	}
	rec := &HostedMutation{Kind: MutUpsert, Node: ids[2], Owned: false, Map: SingleServerMap(0)}
	if !p.ImportHosted(rec, func(NodeID) ServerID { return 0 }) {
		t.Fatal("upsert of cold node failed")
	}
	if p.IsCold(ids[2]) {
		t.Fatal("upsert left the cold bit set")
	}
}

func TestColdLookupFallsBackToLoop(t *testing.T) {
	p, ids, env := newResidentPeer(t, 4, 10)
	cleanEpoch(p)
	p.PublishSnapshot()
	snap := p.RoutingSnapshot()
	for i, hn := range p.hostedList {
		if hn.id == ids[1] {
			p.demoteToCold(i)
			break
		}
	}
	q := &QueryMsg{QueryID: 9, Dest: ids[1], Source: 1, OnBehalf: namespace.Invalid}
	out := snap.HandleQueryFast(q, env.now, NodeMap{}, env.Send, nil)
	if out != FastFallback {
		t.Fatalf("cold destination served on the fast path: %v", out)
	}
	if len(env.take()) != 0 {
		t.Fatal("fallback must not send anything")
	}
	// A resident destination still resolves on the same (stale) snapshot.
	q2 := &QueryMsg{QueryID: 10, Dest: ids[2], Source: 1, OnBehalf: namespace.Invalid}
	if out := snap.HandleQueryFast(q2, env.now, NodeMap{}, env.Send, nil); out != FastResolved {
		t.Fatalf("resident destination did not resolve: %v", out)
	}
}

// TestColdSetConcurrentReads exercises the lock-free read contract under the
// race detector: IsCold from reader goroutines while the loop demotes and
// reinstalls entries.
func TestColdSetConcurrentReads(t *testing.T) {
	p, ids, _ := newResidentPeer(t, 32, 64)
	cleanEpoch(p)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, id := range ids {
					p.IsCold(id)
				}
			}
		}()
	}
	export := p.ExportHosted()
	for round := 0; round < 200; round++ {
		for i := range p.hostedList {
			if !p.hostedList[i].owned {
				continue
			}
			p.hostedList[i].ref = false
			p.demoteToCold(i)
			break
		}
		rec := &export[round%len(export)]
		if p.IsCold(rec.Node) {
			p.InstallFromIndex(rec, func(NodeID) ServerID { return 0 })
		}
	}
	close(stop)
	wg.Wait()
}
