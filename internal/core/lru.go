package core

// lruCache is the per-server routing cache (§2.4): a fixed-capacity LRU of
// node → map pointers. Entries are touched whenever used in routing. The
// implementation is an intrusive doubly linked list over a slice arena plus
// a map index — no container/list interface boxing on the hot path.
type lruCache struct {
	capacity int
	index    map[NodeID]int32 // node -> slot
	slots    []lruSlot
	free     []int32
	head     int32 // most recently used
	tail     int32 // least recently used
}

type lruSlot struct {
	node       NodeID
	m          NodeMap
	prev, next int32
}

const lruNil int32 = -1

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		capacity: capacity,
		index:    make(map[NodeID]int32, capacity),
		head:     lruNil,
		tail:     lruNil,
	}
}

// Len returns the number of cached entries.
func (c *lruCache) Len() int { return len(c.index) }

// Get returns a pointer to the cached map for node and marks the entry most
// recently used. The pointer is owned by the cache; callers may mutate the
// map in place (merging) but must not retain it across evictions.
func (c *lruCache) Get(node NodeID) *NodeMap {
	slot, ok := c.index[node]
	if !ok {
		return nil
	}
	c.moveToFront(slot)
	return &c.slots[slot].m
}

// Peek returns the cached map without touching recency.
func (c *lruCache) Peek(node NodeID) *NodeMap {
	slot, ok := c.index[node]
	if !ok {
		return nil
	}
	return &c.slots[slot].m
}

// Put inserts or replaces the entry for node and marks it most recently
// used, evicting the LRU entry if at capacity. It returns a pointer to the
// stored map (for in-place merging) or nil if capacity is zero.
func (c *lruCache) Put(node NodeID, m NodeMap) *NodeMap {
	if c.capacity <= 0 {
		return nil
	}
	if slot, ok := c.index[node]; ok {
		c.slots[slot].m = m
		c.moveToFront(slot)
		return &c.slots[slot].m
	}
	var slot int32
	switch {
	case len(c.free) > 0:
		slot = c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
	case len(c.slots) < c.capacity:
		c.slots = append(c.slots, lruSlot{})
		slot = int32(len(c.slots) - 1)
	default:
		// Evict LRU.
		slot = c.tail
		c.detach(slot)
		delete(c.index, c.slots[slot].node)
	}
	c.slots[slot] = lruSlot{node: node, m: m, prev: lruNil, next: lruNil}
	c.index[node] = slot
	c.attachFront(slot)
	return &c.slots[slot].m
}

// Delete removes the entry for node if present.
func (c *lruCache) Delete(node NodeID) {
	slot, ok := c.index[node]
	if !ok {
		return
	}
	c.detach(slot)
	delete(c.index, node)
	c.slots[slot] = lruSlot{prev: lruNil, next: lruNil}
	c.free = append(c.free, slot)
}

// Each invokes fn for every cached entry (most recent first). fn must not
// mutate the cache.
func (c *lruCache) Each(fn func(node NodeID, m *NodeMap)) {
	for s := c.head; s != lruNil; s = c.slots[s].next {
		fn(c.slots[s].node, &c.slots[s].m)
	}
}

func (c *lruCache) attachFront(slot int32) {
	c.slots[slot].prev = lruNil
	c.slots[slot].next = c.head
	if c.head != lruNil {
		c.slots[c.head].prev = slot
	}
	c.head = slot
	if c.tail == lruNil {
		c.tail = slot
	}
}

func (c *lruCache) detach(slot int32) {
	s := &c.slots[slot]
	if s.prev != lruNil {
		c.slots[s.prev].next = s.next
	} else {
		c.head = s.next
	}
	if s.next != lruNil {
		c.slots[s.next].prev = s.prev
	} else {
		c.tail = s.prev
	}
	s.prev, s.next = lruNil, lruNil
}

func (c *lruCache) moveToFront(slot int32) {
	if c.head == slot {
		return
	}
	c.detach(slot)
	c.attachFront(slot)
}
