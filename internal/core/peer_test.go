package core

import (
	"testing"

	"terradir/internal/bloom"
	"terradir/internal/rng"
)

func TestNewPeerValidation(t *testing.T) {
	tree, _ := paperTree()
	env := &fakeEnv{}
	cfg := DefaultConfig()
	cfg.MapSize = 0
	if _, err := NewPeer(0, tree, cfg, env, rng.New(1)); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := NewPeer(0, nil, DefaultConfig(), env, rng.New(1)); err == nil {
		t.Fatal("nil tree accepted")
	}
	if _, err := NewPeer(0, tree, DefaultConfig(), nil, rng.New(1)); err == nil {
		t.Fatal("nil env accepted")
	}
	if _, err := NewPeer(0, tree, DefaultConfig(), env, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestPeerOwnershipAndNeighbors(t *testing.T) {
	tree, ids := paperTree()
	env := &fakeEnv{}
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u/pub"], ids["/u/pub/people"]}, 1, DefaultConfig(), env)
	if p.OwnedCount() != 2 || p.ReplicaCount() != 0 {
		t.Fatalf("owned=%d replicas=%d", p.OwnedCount(), p.ReplicaCount())
	}
	if !p.Hosts(ids["/u/pub"]) || p.Hosts(ids["/u/priv"]) {
		t.Fatal("Hosts wrong")
	}
	if p.HostsReplica(ids["/u/pub"]) {
		t.Fatal("owned node reported as replica")
	}
	// Neighbor maps must exist for parent and children of owned nodes.
	for _, nb := range []NodeID{ids["/u"], ids["/u/pub/people/faculty"], ids["/u/pub/people/students"]} {
		if m := p.mapFor(nb); m == nil || !m.Contains(1) {
			t.Fatalf("neighbor map for %d missing or wrong: %v", nb, m)
		}
	}
	// The shared neighbor (/u/pub/people is both child-of-pub and owned):
	// owned wins, and its self map contains self.
	if m := p.mapFor(ids["/u/pub/people"]); m == nil || !m.Contains(0) {
		t.Fatal("owned self map missing self")
	}
}

func TestAddOwnedIdempotent(t *testing.T) {
	tree, ids := paperTree()
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"], ids["/u"]}, 1, DefaultConfig(), &fakeEnv{})
	if p.OwnedCount() != 1 {
		t.Fatalf("duplicate AddOwned counted: %d", p.OwnedCount())
	}
}

func TestEffLoadClamps(t *testing.T) {
	tree, ids := paperTree()
	env := &fakeEnv{load: 0.5}
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"]}, 1, DefaultConfig(), env)
	p.loadBias = 2
	if got := p.effLoad(); got != 1 {
		t.Fatalf("effLoad = %v, want clamp to 1", got)
	}
	p.loadBias = -2
	if got := p.effLoad(); got != 0 {
		t.Fatalf("effLoad = %v, want clamp to 0", got)
	}
}

func TestWeightDecay(t *testing.T) {
	tree, ids := paperTree()
	env := &fakeEnv{now: 10}
	cfg := DefaultConfig()
	cfg.WeightHalfLife = 2
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"]}, 1, cfg, env)
	hn := p.hosted[ids["/u"]]
	p.touchNode(hn)
	p.touchNode(hn)
	if w := p.NodeWeight(ids["/u"]); w != 2 {
		t.Fatalf("weight = %v, want 2", w)
	}
	env.now = 12 // one half-life later
	if w := p.NodeWeight(ids["/u"]); w < 0.99 || w > 1.01 {
		t.Fatalf("decayed weight = %v, want ≈1", w)
	}
	// Touch after decay: 1 (decayed) + 1.
	p.touchNode(hn)
	if w := p.NodeWeight(ids["/u"]); w < 1.99 || w > 2.01 {
		t.Fatalf("weight after decayed touch = %v, want ≈2", w)
	}
	if p.NodeWeight(ids["/u/pub"]) != 0 {
		t.Fatal("unhosted node has weight")
	}
}

func TestMaintainDecaysBias(t *testing.T) {
	tree, ids := paperTree()
	env := &fakeEnv{}
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"]}, 1, DefaultConfig(), env)
	p.loadBias = -0.4
	p.Maintain()
	if p.loadBias != -0.2 {
		t.Fatalf("bias = %v, want -0.2", p.loadBias)
	}
	for i := 0; i < 20; i++ {
		p.Maintain()
	}
	if p.loadBias != 0 {
		t.Fatalf("bias did not snap to zero: %v", p.loadBias)
	}
}

func TestDigestReflectsHostedSet(t *testing.T) {
	tree, ids := paperTree()
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"], ids["/u/pub"]}, 1, DefaultConfig(), &fakeEnv{})
	d := p.Digest()
	if !d.Test(NodeKey(ids["/u"])) || !d.Test(NodeKey(ids["/u/pub"])) {
		t.Fatal("digest missing hosted nodes")
	}
	if d.Version() == 0 {
		t.Fatal("digest version not bumped at setup")
	}
}

func TestDigestImmutableSnapshots(t *testing.T) {
	tree, ids := paperTree()
	env := &fakeEnv{}
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"]}, 1, DefaultConfig(), env)
	before := p.Digest()
	v := before.Version()
	p.digestDirty = true
	p.Maintain()
	after := p.Digest()
	if before == after {
		t.Fatal("rebuild reused the published filter")
	}
	if after.Version() != v+1 {
		t.Fatalf("version = %d, want %d", after.Version(), v+1)
	}
}

func TestStoreDigestKeepsNewest(t *testing.T) {
	tree, ids := paperTree()
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"]}, 1, DefaultConfig(), &fakeEnv{})
	old := bloom.New(64, 2)
	old.SetVersion(5)
	newer := bloom.New(64, 2)
	newer.SetVersion(6)
	p.storeDigest(7, old)
	p.storeDigest(7, newer)
	if p.digests[7].filter.Version() != 6 {
		t.Fatal("newer digest not kept")
	}
	p.storeDigest(7, old) // stale: ignored
	if p.digests[7].filter.Version() != 6 {
		t.Fatal("stale digest overwrote newer")
	}
}

func TestStoreDigestCapacityEviction(t *testing.T) {
	tree, ids := paperTree()
	cfg := DefaultConfig()
	cfg.MaxDigests = 4
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"]}, 1, cfg, &fakeEnv{})
	for s := ServerID(1); s <= 10; s++ {
		f := bloom.New(64, 2)
		f.SetVersion(1)
		p.storeDigest(s, f)
	}
	if len(p.digests) != 4 || len(p.digestList) != 4 {
		t.Fatalf("digest table size %d, want 4", len(p.digests))
	}
}

func TestStoreDigestIgnoresSelfAndNil(t *testing.T) {
	tree, ids := paperTree()
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"]}, 1, DefaultConfig(), &fakeEnv{})
	p.storeDigest(0, bloom.New(64, 2)) // self
	p.storeDigest(3, nil)
	if len(p.digests) != 0 {
		t.Fatal("self or nil digest stored")
	}
}

func TestRecordLoadBoundedTable(t *testing.T) {
	tree, ids := paperTree()
	cfg := DefaultConfig()
	cfg.MaxKnownLoads = 8
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"]}, 1, cfg, &fakeEnv{})
	for s := ServerID(1); s <= 50; s++ {
		p.recordLoad(s, 0.5, float64(s))
	}
	if p.KnownLoadCount() != 8 {
		t.Fatalf("table size %d, want 8", p.KnownLoadCount())
	}
	// Updates of resident entries must not evict.
	for s := range p.knownLoads {
		p.recordLoad(s, 0.9, 100)
		if p.knownLoads[s].load != 0.9 {
			t.Fatal("update failed")
		}
		break
	}
	if p.KnownLoadCount() != 8 {
		t.Fatal("update changed table size")
	}
}

func TestSetMetaOwnerOnly(t *testing.T) {
	tree, ids := paperTree()
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"]}, 1, DefaultConfig(), &fakeEnv{})
	if !p.SetMeta(ids["/u"], map[string]string{"k": "v"}) {
		t.Fatal("owner could not set meta")
	}
	if p.SetMeta(ids["/u/pub"], nil) {
		t.Fatal("non-hosted meta update accepted")
	}
	m, ok := p.MetaOf(ids["/u"])
	if !ok || m.Version != 1 || m.Attrs["k"] != "v" {
		t.Fatalf("meta = %+v", m)
	}
	if _, ok := p.MetaOf(ids["/u/priv"]); ok {
		t.Fatal("MetaOf returned meta for unhosted node")
	}
}

func TestMetaCloneIsolation(t *testing.T) {
	var m Meta
	m.Attrs = map[string]string{"a": "1"}
	c := m.Clone()
	c.Attrs["a"] = "2"
	if m.Attrs["a"] != "1" {
		t.Fatal("Clone shares attrs map")
	}
}

func TestAbsorbAdvertCreatesAndPins(t *testing.T) {
	tree, ids := paperTree()
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"]}, 1, DefaultConfig(), &fakeEnv{})
	// Unknown node: advert creates a cache entry with advertised status.
	a := Advert{Node: ids["/u/priv/people"], Servers: []ServerID{5, 6}}
	p.absorbAdvert(&a)
	m := p.cache.Peek(ids["/u/priv/people"])
	if m == nil || !m.Contains(5) || !m.Contains(6) || m.NumAdvertised != 2 {
		t.Fatalf("advert cache entry wrong: %+v", m)
	}
	// Known node (neighbor): advert pins into the neighbor map.
	b := Advert{Node: ids["/u/pub"], Servers: []ServerID{9}}
	p.absorbAdvert(&b)
	nm := p.mapFor(ids["/u/pub"])
	if !nm.Contains(9) || nm.Servers[0] != 9 {
		t.Fatalf("advert not pinned in neighbor map: %+v", nm)
	}
}

func TestAbsorbAdvertSkipsSelfOnly(t *testing.T) {
	tree, ids := paperTree()
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"]}, 1, DefaultConfig(), &fakeEnv{})
	a := Advert{Node: ids["/u/priv/people"], Servers: []ServerID{0}} // only self
	p.absorbAdvert(&a)
	if p.cache.Len() != 0 {
		t.Fatal("self-only advert cached")
	}
}

func TestLearnMapPurgesStaleSelf(t *testing.T) {
	tree, ids := paperTree()
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"]}, 1, DefaultConfig(), &fakeEnv{})
	incoming := NodeMap{Servers: []ServerID{0, 3}} // claims we host /u/priv — we don't
	p.learnMap(ids["/u/priv/people/staff"], &incoming)
	m := p.cache.Peek(ids["/u/priv/people/staff"])
	if m == nil {
		t.Fatal("map not cached")
	}
	if m.Contains(0) {
		t.Fatal("stale self entry survived")
	}
	if p.Stats.StaleSelfPurged != 1 {
		t.Fatalf("StaleSelfPurged = %d", p.Stats.StaleSelfPurged)
	}
}

func TestLearnMapMergesIntoHosted(t *testing.T) {
	tree, ids := paperTree()
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"]}, 1, DefaultConfig(), &fakeEnv{})
	incoming := NodeMap{Servers: []ServerID{4}}
	p.learnMap(ids["/u"], &incoming)
	m := p.mapFor(ids["/u"])
	if !m.Contains(4) || !m.Contains(0) {
		t.Fatalf("hosted merge wrong: %+v", m)
	}
}

func TestLearnMapCachingDisabled(t *testing.T) {
	tree, ids := paperTree()
	cfg := DefaultConfig()
	cfg.CachingEnabled = false
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"]}, 1, cfg, &fakeEnv{})
	incoming := NodeMap{Servers: []ServerID{4}}
	p.learnMap(ids["/u/priv/people"], &incoming)
	if p.CacheLen() != 0 {
		t.Fatal("cache populated with caching disabled")
	}
}

func TestOutgoingMapIncludesSelfAndBounded(t *testing.T) {
	tree, ids := paperTree()
	cfg := DefaultConfig()
	cfg.MapSize = 3
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"]}, 1, cfg, &fakeEnv{})
	for s := ServerID(2); s <= 6; s++ {
		p.hosted[ids["/u"]].selfMap.AddRegular(s, 3)
	}
	m := p.outgoingMap(ids["/u"])
	if m.Len() > 3 {
		t.Fatalf("outgoing map exceeds Msize: %+v", m)
	}
	if !m.Contains(0) {
		t.Fatalf("outgoing map of hosted node missing self: %+v", m)
	}
	if got := p.outgoingMap(ids["/u/priv/people"]); got.Len() != 0 {
		t.Fatalf("outgoing map for unknown node: %+v", got)
	}
}

func TestEvictReplicaRefusesOwned(t *testing.T) {
	tree, ids := paperTree()
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"]}, 1, DefaultConfig(), &fakeEnv{})
	if p.evictReplica(ids["/u"]) {
		t.Fatal("owned node evicted")
	}
	if p.evictReplica(ids["/u/pub"]) {
		t.Fatal("unhosted node evicted")
	}
}

func TestMaintainEvictsAgedReplicas(t *testing.T) {
	tree, ids := paperTree()
	env := &fakeEnv{}
	cfg := DefaultConfig()
	cfg.ReplicaEvictAge = 10
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"]}, 1, cfg, env)
	pl := ReplicaPayload{
		Node:       ids["/u/priv"],
		SelfMap:    SingleServerMap(1),
		WeightHint: 1,
		Neighbors: []NeighborMap{
			{Node: ids["/u"], Map: SingleServerMap(1)},
			{Node: ids["/u/priv/people"], Map: SingleServerMap(1)},
		},
	}
	if !p.installReplica(&pl, 1) {
		t.Fatal("install failed")
	}
	if p.ReplicaCount() != 1 {
		t.Fatal("replica not installed")
	}
	evicted := false
	p.Hooks.OnReplicaEvicted = func(n NodeID) { evicted = n == ids["/u/priv"] }
	env.now = 5
	p.Maintain()
	if p.ReplicaCount() != 1 {
		t.Fatal("replica evicted too early")
	}
	env.now = 20
	p.Maintain()
	if p.ReplicaCount() != 0 || !evicted {
		t.Fatal("aged replica not evicted")
	}
	// Its exclusive neighbor map must be cleaned up; the shared one (/u is
	// also a neighbor? /u is owned) must survive as owned state.
	if _, ok := p.neighborMaps[ids["/u/priv/people"]]; ok {
		t.Fatal("replica's neighbor map leaked")
	}
}

func TestPiggybackAdvertExpiry(t *testing.T) {
	tree, ids := paperTree()
	env := &fakeEnv{}
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"]}, 1, DefaultConfig(), env)
	p.recentAdverts = append(p.recentAdverts, advertRecord{node: ids["/u"], servers: []ServerID{3}, created: 0})
	pb := p.piggyback()
	if len(pb.Adverts) != 1 {
		t.Fatalf("fresh advert not attached: %+v", pb.Adverts)
	}
	env.now = advertTTL + 1
	pb = p.piggyback()
	if len(pb.Adverts) != 0 {
		t.Fatal("expired advert still attached")
	}
}

// TestBatchTickAmortizesAdvertSweep: after BatchTick, piggyback skips the
// in-place compaction of the advert list for advertSweepSlack, but what it
// EMITS is always TTL-filtered — sweep timing is a memory optimization,
// never visible on the wire.
func TestBatchTickAmortizesAdvertSweep(t *testing.T) {
	tree, ids := paperTree()
	env := &fakeEnv{}
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"]}, 1, DefaultConfig(), env)
	p.recentAdverts = append(p.recentAdverts, advertRecord{node: ids["/u"], servers: []ServerID{3}, created: 0})
	env.now = advertTTL - 0.01
	p.BatchTick()
	if len(p.recentAdverts) != 1 {
		t.Fatal("BatchTick swept a live advert")
	}
	if pb := p.piggyback(); len(pb.Adverts) != 1 {
		t.Fatal("live advert not emitted")
	}
	// Just past the TTL but inside the sweep slack: the expired advert is
	// still resident (compaction amortized) yet never rides a message.
	env.now = advertTTL + 0.01
	if pb := p.piggyback(); len(pb.Adverts) != 0 {
		t.Fatalf("expired advert rode a piggyback: %+v", pb.Adverts)
	}
	if len(p.recentAdverts) != 1 {
		t.Fatal("compaction ran inside the slack window (amortization broken)")
	}
	// Past the slack: the per-message sweep resumes and compacts it away.
	env.now = advertTTL - 0.01 + advertSweepSlack + 0.01
	if pb := p.piggyback(); len(pb.Adverts) != 0 {
		t.Fatalf("expired advert survived past the slack: %+v", pb.Adverts)
	}
	if len(p.recentAdverts) != 0 {
		t.Fatal("expired advert not compacted after the slack")
	}
}

func TestPiggybackIncludesOwnDigest(t *testing.T) {
	tree, ids := paperTree()
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"]}, 1, DefaultConfig(), &fakeEnv{})
	pb := p.piggyback()
	if len(pb.Digests) == 0 || pb.Digests[0].Server != 0 {
		t.Fatalf("own digest not first: %+v", pb.Digests)
	}
	if pb.From != 0 {
		t.Fatal("piggyback From wrong")
	}
}

func TestDigestSaysPermissiveWhenUnknown(t *testing.T) {
	tree, ids := paperTree()
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"]}, 1, DefaultConfig(), &fakeEnv{})
	if !p.digestSays(42, ids["/u/priv"]) {
		t.Fatal("unknown server should be permissive")
	}
	// Self: exact.
	if !p.digestSays(0, ids["/u"]) || p.digestSays(0, ids["/u/priv"]) {
		t.Fatal("self digest answer wrong")
	}
}

func TestDigestSaysUsesStoredFilter(t *testing.T) {
	tree, ids := paperTree()
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"]}, 1, DefaultConfig(), &fakeEnv{})
	f := bloom.NewForCapacity(4, 0.001)
	f.Add(NodeKey(ids["/u/priv"]))
	f.SetVersion(1)
	p.storeDigest(9, f)
	if !p.digestSays(9, ids["/u/priv"]) {
		t.Fatal("stored digest positive missed")
	}
	if p.digestSays(9, ids["/u/pub/people"]) {
		t.Fatal("stored digest negative not honored")
	}
}

func TestOracleOverridesDigests(t *testing.T) {
	tree, ids := paperTree()
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"]}, 1, DefaultConfig(), &fakeEnv{})
	p.OracleHosts = func(n NodeID) []ServerID {
		if n == ids["/u/priv"] {
			return []ServerID{3}
		}
		return nil
	}
	if !p.digestSays(3, ids["/u/priv"]) || p.digestSays(4, ids["/u/priv"]) {
		t.Fatal("oracle answers wrong")
	}
	if !p.digestSaysHosts(3, ids["/u/priv"]) || p.digestSaysHosts(3, ids["/u/pub"]) {
		t.Fatal("oracle affirmative answers wrong")
	}
}

func TestRankHostedOrdering(t *testing.T) {
	tree, ids := paperTree()
	env := &fakeEnv{}
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u"], ids["/u/pub"], ids["/u/priv"]}, 1, DefaultConfig(), env)
	for i := 0; i < 3; i++ {
		p.touchNode(p.hosted[ids["/u/pub"]])
	}
	p.touchNode(p.hosted[ids["/u"]])
	ranked := p.rankHosted()
	if ranked[0].id != ids["/u/pub"] || ranked[1].id != ids["/u"] || ranked[2].id != ids["/u/priv"] {
		t.Fatalf("ranking wrong: %v %v %v", ranked[0].id, ranked[1].id, ranked[2].id)
	}
}
