package core

import "testing"

// TestStateMatrixMatchesImplementation asserts that StateMatrix (the
// generated Table 1) agrees with the state a live Peer actually maintains
// for each server-node relationship — so the table is verified
// documentation, not a transcript.
func TestStateMatrixMatchesImplementation(t *testing.T) {
	tree, ids := paperTree()
	env := &fakeEnv{}
	p := newTestPeer(t, tree, 0, []NodeID{ids["/u/pub/people"]}, 1, DefaultConfig(), env)

	// Install a replica (of /u/priv/people) with context.
	pl := ReplicaPayload{
		Node:       ids["/u/priv/people"],
		Meta:       Meta{Version: 3},
		SelfMap:    SingleServerMap(2),
		WeightHint: 1,
		Neighbors: []NeighborMap{
			{Node: ids["/u/priv"], Map: SingleServerMap(2)},
			{Node: ids["/u/priv/people/staff"], Map: SingleServerMap(4)},
		},
	}
	if !p.installReplica(&pl, 2) {
		t.Fatal("install failed")
	}
	// Cache an unrelated node's map.
	cached := NodeMap{Servers: []ServerID{3}}
	p.learnMap(ids["/u/pub/people/students/Steve"], &cached)

	type obs struct {
		name, mp, data, meta, context bool
	}
	observe := map[string]obs{}

	// Owned: /u/pub/people.
	{
		hn := p.hosted[ids["/u/pub/people"]]
		_, hasMeta := p.MetaOf(hn.id)
		observe["Owned"] = obs{
			name:    p.tree.Name(hn.id) != "",
			mp:      p.mapFor(hn.id) != nil,
			data:    hn.hasData,
			meta:    hasMeta,
			context: len(hn.neighborIDs) > 0,
		}
	}
	// Replicated: /u/priv/people.
	{
		hn := p.hosted[ids["/u/priv/people"]]
		_, hasMeta := p.MetaOf(hn.id)
		observe["Replicated"] = obs{
			name:    p.tree.Name(hn.id) != "",
			mp:      p.mapFor(hn.id) != nil,
			data:    hn.hasData,
			meta:    hasMeta,
			context: len(hn.neighborIDs) > 0,
		}
	}
	// Neighboring: /u/pub (parent of the owned node).
	{
		nb := ids["/u/pub"]
		_, hasMeta := p.MetaOf(nb)
		_, isHosted := p.hosted[nb]
		observe["Neighboring"] = obs{
			name:    p.tree.Name(nb) != "",
			mp:      p.mapFor(nb) != nil,
			data:    false,
			meta:    hasMeta || isHosted,
			context: false, // no neighbor maps kept *for the neighbor itself*
		}
	}
	// Cached: Steve.
	{
		cn := ids["/u/pub/people/students/Steve"]
		_, hasMeta := p.MetaOf(cn)
		observe["Cached"] = obs{
			name:    p.tree.Name(cn) != "",
			mp:      p.cache.Peek(cn) != nil,
			data:    false,
			meta:    hasMeta,
			context: false,
		}
	}

	for _, row := range StateMatrix() {
		got, ok := observe[row.Relationship]
		if !ok {
			t.Fatalf("no observation for %q", row.Relationship)
		}
		if got.name != row.Name || got.mp != row.Map || got.data != row.Data ||
			got.meta != row.Meta || got.context != row.Context {
			t.Errorf("%s: implementation %+v does not match Table 1 row %+v", row.Relationship, got, row)
		}
	}
}
