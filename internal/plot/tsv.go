package plot

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a parsed experiment TSV: a header, numeric columns where cells
// parse as numbers, and raw string cells otherwise.
type Table struct {
	Title  string
	Notes  []string
	Header []string
	Cells  [][]string // row-major, aligned with Header
}

// ReadTSV parses the TSV format Result.WriteTSV emits.
func ReadTSV(r io.Reader) (*Table, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	t := &Table{}
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			note := strings.TrimSpace(strings.TrimPrefix(line, "#"))
			if t.Title == "" && t.Header == nil {
				t.Title = note
			} else {
				t.Notes = append(t.Notes, note)
			}
			continue
		}
		cells := strings.Split(line, "\t")
		if t.Header == nil {
			t.Header = cells
			continue
		}
		if len(cells) != len(t.Header) {
			return nil, fmt.Errorf("plot: row has %d cells, header has %d", len(cells), len(t.Header))
		}
		t.Cells = append(t.Cells, cells)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if t.Header == nil {
		return nil, fmt.Errorf("plot: no header row")
	}
	return t, nil
}

// ColIndex returns the index of a named column, or -1.
func (t *Table) ColIndex(name string) int {
	for i, h := range t.Header {
		if h == name {
			return i
		}
	}
	return -1
}

// NumericColumn extracts a column as float64s; non-numeric cells become NaN
// via the error return instead: the first unparsable cell fails the call.
func (t *Table) NumericColumn(name string) ([]float64, error) {
	idx := t.ColIndex(name)
	if idx < 0 {
		return nil, fmt.Errorf("plot: no column %q (have %v)", name, t.Header)
	}
	out := make([]float64, len(t.Cells))
	for i, row := range t.Cells {
		v, err := strconv.ParseFloat(row[idx], 64)
		if err != nil {
			return nil, fmt.Errorf("plot: column %q row %d: %q is not numeric", name, i, row[idx])
		}
		out[i] = v
	}
	return out, nil
}

// StringColumn extracts a column as raw strings.
func (t *Table) StringColumn(name string) ([]string, error) {
	idx := t.ColIndex(name)
	if idx < 0 {
		return nil, fmt.Errorf("plot: no column %q (have %v)", name, t.Header)
	}
	out := make([]string, len(t.Cells))
	for i, row := range t.Cells {
		out[i] = row[idx]
	}
	return out, nil
}

// NumericColumns returns every column whose cells all parse as numbers,
// in header order, excluding the named x column.
func (t *Table) NumericColumns(exclude string) []string {
	var out []string
	for _, h := range t.Header {
		if h == exclude {
			continue
		}
		if _, err := t.NumericColumn(h); err == nil {
			out = append(out, h)
		}
	}
	return out
}
