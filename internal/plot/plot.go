// Package plot renders the experiment TSVs as ASCII charts, so the
// regenerated figures can be eyeballed in a terminal without any plotting
// stack: multi-series line charts (the time-series figures) and horizontal
// bar charts (Fig. 5's grouped bars).
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Line renders a multi-series ASCII line chart. xs is the shared x axis;
// series maps legend names to y values (shorter series are right-padded with
// NaN and skipped). width/height are the plot area in characters.
func Line(w io.Writer, title string, xs []float64, names []string, series map[string][]float64, width, height int) error {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	if len(xs) == 0 || len(names) == 0 {
		return fmt.Errorf("plot: empty chart")
	}
	// Y range over all series.
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, name := range names {
		for _, v := range series[name] {
			if math.IsNaN(v) {
				continue
			}
			ymin = math.Min(ymin, v)
			ymax = math.Max(ymax, v)
		}
	}
	if math.IsInf(ymin, 1) {
		return fmt.Errorf("plot: no data")
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	xmin, xmax := xs[0], xs[len(xs)-1]
	if xmax == xmin {
		xmax = xmin + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := markers()
	for si, name := range names {
		vals := series[name]
		mark := marks[si%len(marks)]
		for i, v := range vals {
			if i >= len(xs) || math.IsNaN(v) {
				continue
			}
			col := int((xs[i] - xmin) / (xmax - xmin) * float64(width-1))
			row := height - 1 - int((v-ymin)/(ymax-ymin)*float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = mark
			}
		}
	}

	fmt.Fprintf(w, "%s\n", title)
	ylab := func(v float64) string { return fmt.Sprintf("%10.4g", v) }
	for i, row := range grid {
		label := strings.Repeat(" ", 10)
		switch i {
		case 0:
			label = ylab(ymax)
		case height - 1:
			label = ylab(ymin)
		case (height - 1) / 2:
			label = ylab((ymax + ymin) / 2)
		}
		fmt.Fprintf(w, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", 10), strings.Repeat("-", width))
	fmt.Fprintf(w, "%s  %-10.4g%s%10.4g\n", strings.Repeat(" ", 10), xmin,
		strings.Repeat(" ", max(0, width-20)), xmax)
	var leg []string
	for si, name := range names {
		leg = append(leg, fmt.Sprintf("%c=%s", marks[si%len(marks)], name))
	}
	fmt.Fprintf(w, "%s  %s\n", strings.Repeat(" ", 10), strings.Join(leg, "  "))
	return nil
}

func markers() []byte { return []byte{'*', 'o', '+', 'x', '#', '@', '%', '~'} }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Bars renders a horizontal bar chart with one row per label.
func Bars(w io.Writer, title string, labels []string, values []float64, width int) error {
	if len(labels) != len(values) {
		return fmt.Errorf("plot: %d labels for %d values", len(labels), len(values))
	}
	if len(labels) == 0 {
		return fmt.Errorf("plot: empty chart")
	}
	if width < 10 {
		width = 10
	}
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if math.IsNaN(v) || v < 0 {
			return fmt.Errorf("plot: bar values must be non-negative, got %v", v)
		}
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	fmt.Fprintf(w, "%s\n", title)
	for i, v := range values {
		n := int(v / maxV * float64(width))
		fmt.Fprintf(w, "%-*s |%s %.4g\n", maxL, labels[i], strings.Repeat("#", n), v)
	}
	return nil
}
