package plot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestLineRendersAllSeries(t *testing.T) {
	var buf bytes.Buffer
	xs := []float64{0, 1, 2, 3, 4}
	series := map[string][]float64{
		"up":   {0, 1, 2, 3, 4},
		"down": {4, 3, 2, 1, 0},
	}
	if err := Line(&buf, "T", xs, []string{"up", "down"}, series, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "T\n") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "*=up") || !strings.Contains(out, "o=down") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("marks missing")
	}
	// Axis labels include min and max.
	if !strings.Contains(out, "4") || !strings.Contains(out, "0") {
		t.Fatal("axis labels missing")
	}
}

func TestLineHandlesNaNAndShortSeries(t *testing.T) {
	var buf bytes.Buffer
	xs := []float64{0, 1, 2}
	series := map[string][]float64{
		"a": {1, math.NaN(), 3},
		"b": {2},
	}
	if err := Line(&buf, "T", xs, []string{"a", "b"}, series, 30, 6); err != nil {
		t.Fatal(err)
	}
}

func TestLineErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Line(&buf, "T", nil, []string{"a"}, nil, 30, 6); err == nil {
		t.Fatal("empty x accepted")
	}
	if err := Line(&buf, "T", []float64{1}, []string{"a"},
		map[string][]float64{"a": {math.NaN()}}, 30, 6); err == nil {
		t.Fatal("all-NaN accepted")
	}
}

func TestLineConstantSeries(t *testing.T) {
	var buf bytes.Buffer
	xs := []float64{0, 1}
	if err := Line(&buf, "T", xs, []string{"c"},
		map[string][]float64{"c": {5, 5}}, 20, 5); err != nil {
		t.Fatal(err)
	}
}

func TestBars(t *testing.T) {
	var buf bytes.Buffer
	if err := Bars(&buf, "B", []string{"aa", "b"}, []float64{2, 4}, 20); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// The larger bar has the full width of '#'.
	if !strings.Contains(lines[2], strings.Repeat("#", 20)) {
		t.Fatalf("max bar not full width:\n%s", out)
	}
	if !strings.Contains(lines[1], strings.Repeat("#", 10)) {
		t.Fatalf("half bar not half width:\n%s", out)
	}
}

func TestBarsErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Bars(&buf, "B", []string{"a"}, []float64{1, 2}, 20); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if err := Bars(&buf, "B", nil, nil, 20); err == nil {
		t.Fatal("empty accepted")
	}
	if err := Bars(&buf, "B", []string{"a"}, []float64{-1}, 20); err == nil {
		t.Fatal("negative accepted")
	}
	if err := Bars(&buf, "B", []string{"a"}, []float64{0}, 20); err != nil {
		t.Fatal("all-zero should render")
	}
}

const sampleTSV = `# fig3: Fraction of queries dropped
# servers=200 lambda=5519
t	unif	uzipf1.50
0	0.1	0.2
1	0	0.5
2	0.05	0.1
`

func TestReadTSV(t *testing.T) {
	tab, err := ReadTSV(strings.NewReader(sampleTSV))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Title != "fig3: Fraction of queries dropped" {
		t.Fatalf("title = %q", tab.Title)
	}
	if len(tab.Notes) != 1 || !strings.Contains(tab.Notes[0], "servers=200") {
		t.Fatalf("notes = %v", tab.Notes)
	}
	if len(tab.Header) != 3 || len(tab.Cells) != 3 {
		t.Fatalf("shape: %v %d", tab.Header, len(tab.Cells))
	}
	xs, err := tab.NumericColumn("t")
	if err != nil || len(xs) != 3 || xs[2] != 2 {
		t.Fatalf("t column: %v %v", xs, err)
	}
	if _, err := tab.NumericColumn("nope"); err == nil {
		t.Fatal("missing column accepted")
	}
	cols := tab.NumericColumns("t")
	if len(cols) != 2 || cols[0] != "unif" {
		t.Fatalf("numeric columns = %v", cols)
	}
	labels, err := tab.StringColumn("t")
	if err != nil || labels[0] != "0" {
		t.Fatalf("string column: %v %v", labels, err)
	}
}

func TestReadTSVErrors(t *testing.T) {
	if _, err := ReadTSV(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	bad := "a\tb\n1\n"
	if _, err := ReadTSV(strings.NewReader(bad)); err == nil {
		t.Fatal("ragged row accepted")
	}
	mixed := "a\tb\n1\tx\n"
	tab, err := ReadTSV(strings.NewReader(mixed))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.NumericColumn("b"); err == nil {
		t.Fatal("non-numeric column parsed")
	}
	if cols := tab.NumericColumns(""); len(cols) != 1 || cols[0] != "a" {
		t.Fatalf("numeric columns = %v", cols)
	}
}
