// Package bloom implements the Bloom-filter inverse-mapping digests of the
// TerraDir replication protocol (paper §3.6). A digest summarizes the set of
// node names hosted by one server; other servers test names against it to
// discover routing shortcuts and to prune stale map entries. The only
// supported query is membership with one-sided error (false positives only),
// exactly as the paper requires.
//
// Digests are versioned: a server rebuilds its digest when its hosted set
// changes and bumps the version; peers keep the newest version they have
// seen. Keys are 64-bit hashes (the protocol layers hash node identities
// before testing), double-hashed into k probe positions (Kirsch–Mitzenmacher).
package bloom

import (
	"fmt"
	"math"
)

// Filter is a Bloom filter over 64-bit keys. The zero value is unusable;
// construct with New or NewForCapacity.
type Filter struct {
	bits    []uint64
	mBits   uint64 // number of bits (power of two)
	mask    uint64
	k       uint32
	n       uint64 // number of keys added
	version uint64
}

// New creates a filter with the given number of bits (rounded up to a power
// of two, minimum 64) and hash count k (clamped to [1, 16]).
func New(bits uint64, k uint32) *Filter {
	if bits < 64 {
		bits = 64
	}
	// Round up to a power of two so probe positions are maskable.
	m := uint64(64)
	for m < bits {
		m <<= 1
	}
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return &Filter{
		bits:  make([]uint64, m/64),
		mBits: m,
		mask:  m - 1,
		k:     k,
	}
}

// NewForCapacity creates a filter sized for n keys at the given target false
// positive rate, using the standard optimal sizing m = -n·ln(p)/ln(2)² and
// k = m/n·ln(2).
func NewForCapacity(n uint64, fpRate float64) *Filter {
	if n == 0 {
		n = 1
	}
	if fpRate <= 0 || fpRate >= 1 {
		fpRate = 0.01
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(fpRate) / (math.Ln2 * math.Ln2)))
	k := uint32(math.Round(float64(m) / float64(n) * math.Ln2))
	return New(m, k)
}

// Version returns the filter's version counter (see BumpVersion).
func (f *Filter) Version() uint64 { return f.version }

// BumpVersion increments the version counter; the owning server calls this
// after a rebuild so peers can prefer the newest digest.
func (f *Filter) BumpVersion() { f.version++ }

// SetVersion sets the version counter (used when deserializing).
func (f *Filter) SetVersion(v uint64) { f.version = v }

// K returns the number of hash probes.
func (f *Filter) K() uint32 { return f.k }

// MBits returns the filter size in bits.
func (f *Filter) MBits() uint64 { return f.mBits }

// Count returns the number of keys added since the last Reset.
func (f *Filter) Count() uint64 { return f.n }

// mix is a 64-bit finalizer (splitmix64) giving a second independent hash
// stream for double hashing.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts key into the filter.
func (f *Filter) Add(key uint64) {
	h1 := mix(key)
	h2 := mix(key ^ 0x9e3779b97f4a7c15)
	h2 |= 1 // ensure odd stride so probes cover the (power-of-two) table
	for i := uint32(0); i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) & f.mask
		f.bits[pos>>6] |= 1 << (pos & 63)
	}
	f.n++
}

// Test reports whether key may be in the set. False positives are possible;
// false negatives are not.
func (f *Filter) Test(key uint64) bool {
	h1 := mix(key)
	h2 := mix(key^0x9e3779b97f4a7c15) | 1
	for i := uint32(0); i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) & f.mask
		if f.bits[pos>>6]&(1<<(pos&63)) == 0 {
			return false
		}
	}
	return true
}

// Reset clears all bits and the key count; the version is preserved (callers
// bump it after repopulating).
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.n = 0
}

// EstimatedFPRate returns the expected false positive probability given the
// current fill: (1 - e^(-kn/m))^k.
func (f *Filter) EstimatedFPRate() float64 {
	if f.n == 0 {
		return 0
	}
	return math.Pow(1-math.Exp(-float64(f.k)*float64(f.n)/float64(f.mBits)), float64(f.k))
}

// Clone returns a deep copy of the filter, including its version.
func (f *Filter) Clone() *Filter {
	c := &Filter{
		bits:    make([]uint64, len(f.bits)),
		mBits:   f.mBits,
		mask:    f.mask,
		k:       f.k,
		n:       f.n,
		version: f.version,
	}
	copy(c.bits, f.bits)
	return c
}

// Union ORs other into f. Both filters must have identical geometry (size
// and hash count); otherwise an error is returned. The key count becomes an
// upper bound (sum) after union.
func (f *Filter) Union(other *Filter) error {
	if f.mBits != other.mBits || f.k != other.k {
		return fmt.Errorf("bloom: geometry mismatch (m=%d,k=%d vs m=%d,k=%d)",
			f.mBits, f.k, other.mBits, other.k)
	}
	for i := range f.bits {
		f.bits[i] |= other.bits[i]
	}
	f.n += other.n
	return nil
}

// Marshal serializes the filter to a compact byte slice (version, k, mBits,
// n, then the bit array little-endian).
func (f *Filter) Marshal() []byte {
	return f.AppendTo(make([]byte, 0, 32+len(f.bits)*8))
}

// AppendTo appends Marshal's layout to dst and returns the extended slice,
// so callers embedding digests in larger frames serialize without an
// intermediate allocation.
func (f *Filter) AppendTo(dst []byte) []byte {
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			dst = append(dst, byte(v>>(8*i)))
		}
	}
	put(f.version)
	put(uint64(f.k))
	put(f.mBits)
	put(f.n)
	for _, w := range f.bits {
		put(w)
	}
	return dst
}

// Unmarshal reconstructs a filter serialized by Marshal.
func Unmarshal(data []byte) (*Filter, error) {
	if len(data) < 32 {
		return nil, fmt.Errorf("bloom: truncated digest (%d bytes)", len(data))
	}
	get := func(off int) uint64 {
		var v uint64
		for i := 0; i < 8; i++ {
			v |= uint64(data[off+i]) << (8 * i)
		}
		return v
	}
	version := get(0)
	k := get(8)
	mBits := get(16)
	n := get(24)
	if mBits < 64 || mBits&(mBits-1) != 0 {
		return nil, fmt.Errorf("bloom: invalid size %d", mBits)
	}
	if k < 1 || k > 16 {
		return nil, fmt.Errorf("bloom: invalid hash count %d", k)
	}
	words := int(mBits / 64)
	if len(data) != 32+words*8 {
		return nil, fmt.Errorf("bloom: size mismatch: %d bytes for %d-bit filter", len(data), mBits)
	}
	f := &Filter{
		bits:    make([]uint64, words),
		mBits:   mBits,
		mask:    mBits - 1,
		k:       uint32(k),
		n:       n,
		version: version,
	}
	for i := range f.bits {
		f.bits[i] = get(32 + i*8)
	}
	return f, nil
}

// HashString hashes a node name to a digest key (FNV-1a 64).
func HashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
