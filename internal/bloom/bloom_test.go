package bloom

import (
	"testing"
	"testing/quick"

	"terradir/internal/rng"
)

func TestNoFalseNegatives(t *testing.T) {
	f := NewForCapacity(1000, 0.01)
	src := rng.New(1)
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = src.Uint64()
		f.Add(keys[i])
	}
	for _, k := range keys {
		if !f.Test(k) {
			t.Fatalf("false negative for key %d", k)
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	f := NewForCapacity(1000, 0.01)
	src := rng.New(2)
	present := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		k := src.Uint64()
		present[k] = true
		f.Add(k)
	}
	fp := 0
	const probes = 100000
	for i := 0; i < probes; i++ {
		k := src.Uint64()
		if present[k] {
			continue
		}
		if f.Test(k) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 {
		t.Fatalf("false positive rate %.4f exceeds 3x target of 0.01", rate)
	}
}

func TestEmptyFilterRejectsEverything(t *testing.T) {
	f := New(1024, 4)
	if err := quick.Check(func(k uint64) bool { return !f.Test(k) }, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddTestProperty(t *testing.T) {
	f := New(4096, 5)
	if err := quick.Check(func(k uint64) bool {
		f.Add(k)
		return f.Test(k)
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	f := New(256, 3)
	f.BumpVersion()
	f.Add(42)
	f.Reset()
	if f.Test(42) {
		t.Fatal("key survived Reset")
	}
	if f.Count() != 0 {
		t.Fatalf("count after Reset = %d", f.Count())
	}
	if f.Version() != 1 {
		t.Fatalf("version not preserved across Reset: %d", f.Version())
	}
}

func TestVersioning(t *testing.T) {
	f := New(64, 1)
	if f.Version() != 0 {
		t.Fatal("new filter version != 0")
	}
	f.BumpVersion()
	f.BumpVersion()
	if f.Version() != 2 {
		t.Fatalf("version = %d, want 2", f.Version())
	}
	f.SetVersion(99)
	if f.Version() != 99 {
		t.Fatalf("SetVersion failed: %d", f.Version())
	}
}

func TestGeometryNormalization(t *testing.T) {
	f := New(100, 99) // not a power of two; k too large
	if f.MBits() != 128 {
		t.Fatalf("MBits = %d, want 128", f.MBits())
	}
	if f.K() != 16 {
		t.Fatalf("K = %d, want 16 (clamped)", f.K())
	}
	f2 := New(0, 0)
	if f2.MBits() != 64 || f2.K() != 1 {
		t.Fatalf("minimums not enforced: m=%d k=%d", f2.MBits(), f2.K())
	}
}

func TestClone(t *testing.T) {
	f := New(256, 4)
	f.Add(1)
	f.BumpVersion()
	c := f.Clone()
	if !c.Test(1) || c.Version() != f.Version() || c.Count() != f.Count() {
		t.Fatal("clone does not match original")
	}
	c.Add(2)
	if f.Test(2) && !f.Test(2) { // f may false-positive; check independence via bits
		t.Log("cannot distinguish via Test; checking structural independence")
	}
	// Mutating the clone must not mutate the original's bit array.
	f2 := New(256, 4)
	f2.Add(1)
	if f2.Marshal()[32] != f.Marshal()[32] && f.Count() == f2.Count() {
		t.Fatal("unexpected original mutation")
	}
}

func TestUnionContainsBoth(t *testing.T) {
	a := New(512, 4)
	b := New(512, 4)
	a.Add(10)
	b.Add(20)
	if err := a.Union(b); err != nil {
		t.Fatal(err)
	}
	if !a.Test(10) || !a.Test(20) {
		t.Fatal("union lost a member")
	}
}

func TestUnionGeometryMismatch(t *testing.T) {
	a := New(512, 4)
	b := New(1024, 4)
	if err := a.Union(b); err == nil {
		t.Fatal("expected geometry mismatch error")
	}
	c := New(512, 3)
	if err := a.Union(c); err == nil {
		t.Fatal("expected hash-count mismatch error")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := NewForCapacity(500, 0.02)
	src := rng.New(3)
	keys := make([]uint64, 500)
	for i := range keys {
		keys[i] = src.Uint64()
		f.Add(keys[i])
	}
	f.SetVersion(7)
	g, err := Unmarshal(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if g.Version() != 7 || g.K() != f.K() || g.MBits() != f.MBits() || g.Count() != f.Count() {
		t.Fatal("metadata did not round-trip")
	}
	for _, k := range keys {
		if !g.Test(k) {
			t.Fatalf("key %d lost in round trip", k)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("nil input accepted")
	}
	if _, err := Unmarshal(make([]byte, 31)); err == nil {
		t.Fatal("short input accepted")
	}
	f := New(256, 4)
	data := f.Marshal()
	if _, err := Unmarshal(data[:len(data)-1]); err == nil {
		t.Fatal("truncated bit array accepted")
	}
	// Corrupt mBits to a non-power-of-two.
	bad := append([]byte(nil), data...)
	bad[16] = 0x63
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("invalid geometry accepted")
	}
	// Corrupt k to zero.
	bad2 := append([]byte(nil), data...)
	for i := 8; i < 16; i++ {
		bad2[i] = 0
	}
	if _, err := Unmarshal(bad2); err == nil {
		t.Fatal("zero hash count accepted")
	}
}

func TestEstimatedFPRate(t *testing.T) {
	f := New(1024, 4)
	if f.EstimatedFPRate() != 0 {
		t.Fatal("empty filter FP rate != 0")
	}
	for i := uint64(0); i < 100; i++ {
		f.Add(i)
	}
	r := f.EstimatedFPRate()
	if r <= 0 || r >= 1 {
		t.Fatalf("FP rate estimate %v out of (0,1)", r)
	}
}

func TestHashStringStability(t *testing.T) {
	// FNV-1a test vector: "a" hashes to 0xaf63dc4c8601ec8c.
	if got := HashString("a"); got != 0xaf63dc4c8601ec8c {
		t.Fatalf("HashString(a) = %#x", got)
	}
	if HashString("/a/b") == HashString("/a/c") {
		t.Fatal("trivial collision")
	}
	if HashString("") != 14695981039346656037 {
		t.Fatal("empty string should hash to FNV offset basis")
	}
}

func TestDigestNameWorkflow(t *testing.T) {
	// End-to-end: server hosts names, peers test names against the digest.
	hosted := []string{"/u/pub", "/u/pub/people", "/u/pub/people/faculty"}
	f := NewForCapacity(uint64(len(hosted)), 0.01)
	for _, n := range hosted {
		f.Add(HashString(n))
	}
	for _, n := range hosted {
		if !f.Test(HashString(n)) {
			t.Fatalf("hosted name %q not found", n)
		}
	}
	misses := 0
	for _, n := range []string{"/u/priv", "/u/priv/people", "/x", "/u/pub/other"} {
		if !f.Test(HashString(n)) {
			misses++
		}
	}
	if misses == 0 {
		t.Fatal("every non-hosted name hit (filter saturated?)")
	}
}

func BenchmarkAdd(b *testing.B) {
	f := New(1<<16, 6)
	for i := 0; i < b.N; i++ {
		f.Add(uint64(i))
	}
}

func BenchmarkTest(b *testing.B) {
	f := NewForCapacity(10000, 0.01)
	for i := uint64(0); i < 10000; i++ {
		f.Add(i)
	}
	b.ResetTimer()
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = f.Test(uint64(i))
	}
	_ = sink
}
