package exp

import (
	"fmt"

	"terradir/internal/cluster"
	"terradir/internal/core"
	"terradir/internal/namespace"
	"terradir/internal/rng"
	"terradir/internal/workload"
)

// zipfOrders are the Zipf exponents the paper sweeps (§4.1).
var zipfOrders = []float64{0.75, 1.00, 1.25, 1.50}

// run builds a cluster over tree, applies mut to the parameters, drives it
// with w for dur seconds and drains in-flight work.
func run(env Env, tree *namespace.Tree, w *workload.Workload, dur float64, mut func(*cluster.Params)) *cluster.Cluster {
	p := env.Params(tree)
	if mut != nil {
		mut(&p)
	}
	c, err := cluster.New(p)
	if err != nil {
		panic(fmt.Sprintf("exp: cluster setup: %v", err))
	}
	c.Run(w, dur)
	c.Drain(10)
	return c
}

// shiftStream builds the paper's composed "unif ∘ uzipf×4" adaptation stream
// (§4.2): a uniform warmup taking warmupFrac of the run, then four Zipf
// segments with fresh random rankings.
func shiftStream(tree *namespace.Tree, seed uint64, alpha, rate, dur, warmupFrac float64, k int) *workload.Workload {
	return workload.UnifThenZipfShifts(tree.Len(), rng.New(seed), alpha, rate, dur*warmupFrac, dur, k)
}

func init() {
	register("table1", "Server-node relationships (paper Table 1)", Table1)
	register("fig3", "Dropped queries over time, namespace Ns (paper Fig. 3)", Fig3)
	register("fig4", "Created replicas over time, namespace Nc (paper Fig. 4)", Fig4)
	register("fig5", "Dropped queries: base vs caching vs replication (paper Fig. 5)", Fig5)
}

// Table1 regenerates the paper's Table 1 from core.StateMatrix (which the
// core test suite asserts against live Peer state).
func Table1(Env) *Result {
	r := &Result{
		ID:     "table1",
		Title:  "Server-node relationships and state maintained",
		Header: []string{"relationship", "name", "map", "data", "meta", "context"},
	}
	mark := func(b bool) string {
		if b {
			return "x"
		}
		return ""
	}
	for _, row := range core.StateMatrix() {
		r.AddRow(row.Relationship, mark(row.Name), mark(row.Map), mark(row.Data), mark(row.Meta), mark(row.Context))
	}
	return r
}

// Fig3 reproduces Fig. 3: fraction of queries dropped every second (relative
// to the arrival rate λ=20,000/s at paper scale) over a 250 s run of Ns,
// for the unif stream and the four unif∘uzipf×4 streams. As in the paper,
// the uniform warmup of each uzipf stream is staggered (longer for higher
// α) so the re-rank spikes are visually separated.
func Fig3(env Env) *Result {
	tree := env.NsTree()
	dur := env.Duration(250)
	rate := env.Lambda(20000)
	streams := []struct {
		name  string
		alpha float64 // <0 = uniform
		wfrac float64
	}{
		{"unif", -1, 0},
		{"uzipf0.75", 0.75, 0.24},
		{"uzipf1.00", 1.00, 0.28},
		{"uzipf1.25", 1.25, 0.32},
		{"uzipf1.50", 1.50, 0.36},
	}
	r := &Result{
		ID:     "fig3",
		Title:  "Fraction of queries dropped every second, namespace Ns",
		Header: []string{"t"},
	}
	r.Notef("servers=%d nodes=%d lambda=%.0f duration=%.0fs", env.Servers(), tree.Len(), rate, dur)
	series := make([][]float64, len(streams))
	bins := 0
	for i, s := range streams {
		var w *workload.Workload
		if s.alpha < 0 {
			w = workload.Unif(tree.Len(), rng.New(env.Seed+7), rate, dur)
		} else {
			w = shiftStream(tree, env.Seed+7+uint64(i), s.alpha, rate, dur, s.wfrac, 4)
		}
		c := run(env, tree, w, dur, nil)
		drops := c.Metrics.Drops
		vals := make([]float64, int(dur))
		for t := range vals {
			vals[t] = drops.Sum(t) / rate
		}
		series[i] = vals
		if len(vals) > bins {
			bins = len(vals)
		}
		r.Header = append(r.Header, s.name)
		r.Notef("%s: total drop fraction %.4f, replicas created %d",
			s.name, c.Metrics.DropFraction(), c.Metrics.TotalCreations())
	}
	for t := 0; t < bins; t++ {
		row := []interface{}{t}
		for _, vals := range series {
			v := 0.0
			if t < len(vals) {
				v = vals[t]
			}
			row = append(row, v)
		}
		r.AddRow(row...)
	}
	return r
}

// Fig4 reproduces Fig. 4: replicas created every second (relative to the
// doubled arrival rate, λ=40,000/s at paper scale) over a run of the
// file-system namespace Nc, for the same five streams.
func Fig4(env Env) *Result {
	tree := env.NcTree()
	dur := env.Duration(250)
	rate := env.Lambda(40000)
	streams := []struct {
		name  string
		alpha float64
		wfrac float64
	}{
		{"unif", -1, 0},
		{"uzipf0.75", 0.75, 0.24},
		{"uzipf1.00", 1.00, 0.28},
		{"uzipf1.25", 1.25, 0.32},
		{"uzipf1.50", 1.50, 0.36},
	}
	r := &Result{
		ID:     "fig4",
		Title:  "Fraction of replicas created every second, namespace Nc",
		Header: []string{"t"},
	}
	r.Notef("servers=%d nodes=%d lambda=%.0f duration=%.0fs", env.Servers(), tree.Len(), rate, dur)
	series := make([][]float64, len(streams))
	bins := 0
	for i, s := range streams {
		var w *workload.Workload
		if s.alpha < 0 {
			w = workload.Unif(tree.Len(), rng.New(env.Seed+11), rate, dur)
		} else {
			w = shiftStream(tree, env.Seed+11+uint64(i), s.alpha, rate, dur, s.wfrac, 4)
		}
		c := run(env, tree, w, dur, nil)
		vals := make([]float64, int(dur))
		for t := range vals {
			vals[t] = c.Metrics.Creations.Sum(t) / rate
		}
		series[i] = vals
		if len(vals) > bins {
			bins = len(vals)
		}
		r.Header = append(r.Header, s.name)
		r.Notef("%s: creations=%d dropFraction=%.4f", s.name, c.Metrics.TotalCreations(), c.Metrics.DropFraction())
	}
	for t := 0; t < bins; t++ {
		row := []interface{}{t}
		for _, vals := range series {
			v := 0.0
			if t < len(vals) {
				v = vals[t]
			}
			row = append(row, v)
		}
		r.AddRow(row...)
	}
	return r
}

// Fig5 reproduces Fig. 5: the total dropped-query fraction for the base
// system (B), base+caching (BC) and base+caching+replication (BCR), across
// ten query streams (unif and four Zipf orders on each namespace; S = Ns,
// C = Nc).
func Fig5(env Env) *Result {
	r := &Result{
		ID:     "fig5",
		Title:  "Fraction of dropped queries: B vs BC vs BCR",
		Header: []string{"stream", "B", "BC", "BCR"},
	}
	dur := env.Duration(120)
	systems := []struct {
		name string
		mut  func(*cluster.Params)
	}{
		{"B", func(p *cluster.Params) {
			p.Core.CachingEnabled = false
			p.Core.ReplicationEnabled = false
			p.Core.DigestsEnabled = false
		}},
		{"BC", func(p *cluster.Params) {
			p.Core.ReplicationEnabled = false
		}},
		{"BCR", nil},
	}
	type ns struct {
		tag  string
		tree *namespace.Tree
		rate float64
	}
	spaces := []ns{
		{"S", env.NsTree(), env.Lambda(20000)},
		{"C", env.NcTree(), env.Lambda(40000)},
	}
	r.Notef("servers=%d duration=%.0fs lambdaS=%.0f lambdaC=%.0f",
		env.Servers(), dur, spaces[0].rate, spaces[1].rate)
	for _, sp := range spaces {
		streams := []struct {
			name  string
			alpha float64
		}{
			{"unif" + sp.tag, -1},
			{fmt.Sprintf("uzipf%s0.75", sp.tag), 0.75},
			{fmt.Sprintf("uzipf%s1.00", sp.tag), 1.00},
			{fmt.Sprintf("uzipf%s1.25", sp.tag), 1.25},
			{fmt.Sprintf("uzipf%s1.50", sp.tag), 1.50},
		}
		for si, st := range streams {
			row := []interface{}{st.name}
			for _, sys := range systems {
				var w *workload.Workload
				if st.alpha < 0 {
					w = workload.Unif(sp.tree.Len(), rng.New(env.Seed+23+uint64(si)), sp.rate, dur)
				} else {
					w = shiftStream(sp.tree, env.Seed+23+uint64(si), st.alpha, sp.rate, dur, 0.25, 4)
				}
				c := run(env, sp.tree, w, dur, sys.mut)
				row = append(row, c.Metrics.DropFraction())
			}
			r.AddRow(row...)
		}
	}
	return r
}
