package exp

import (
	"strconv"
	"testing"
)

// TestA3LiveFailureResilience runs the live-overlay failure driver at reduced
// scale and holds it to the simulator A3's qualitative shape: high completion
// at modest failure fractions with replication on, graceful (nonzero)
// degradation at 30%.
func TestA3LiveFailureResilience(t *testing.T) {
	if testing.Short() {
		t.Skip("live cluster run; skipped in -short")
	}
	r := LiveFailureResilience(Env{Scale: 0.016, Seed: 3})
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(r.Rows))
	}
	get := func(frac, mode string) (rate float64, row []string) {
		for i := range r.Rows {
			if r.Rows[i][0] == frac && r.Rows[i][1] == mode {
				return cell(t, r, i, "afterCompletionRate"), r.Rows[i]
			}
		}
		t.Fatalf("row %s/%s missing from %v", frac, mode, r.Rows)
		return 0, nil
	}
	for i := range r.Rows {
		before := cell(t, r, i, "completedBefore")
		if before == 0 {
			t.Fatalf("row %v: warm phase completed nothing", r.Rows[i])
		}
	}
	// Acceptance: >= 90% completion from survivors at 10% killed peers with
	// replication on.
	if rate, row := get("0.1", "on"); rate < 0.9 {
		t.Fatalf("10%% failures, replication on: completion %v < 0.9 (row %v)", rate, row)
	}
	// Graceful degradation, not collapse, at 30%.
	if rate, row := get("0.3", "on"); rate <= 0.25 {
		t.Fatalf("30%% failures, replication on: completion %v collapsed (row %v)", rate, row)
	}
	if rate, row := get("0.3", "off"); rate <= 0 {
		t.Fatalf("30%% failures, replication off: completion %v — total collapse (row %v)", rate, row)
	}
	// Sanity on the recreated-replicas column: parseable integers.
	for i := range r.Rows {
		if _, err := strconv.Atoi(r.Rows[i][5]); err != nil {
			t.Fatalf("recreatedReplicas cell %q not an integer", r.Rows[i][5])
		}
	}
}
