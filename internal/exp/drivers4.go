package exp

import (
	"terradir/internal/cluster"
	"terradir/internal/core"
	"terradir/internal/rng"
	"terradir/internal/stats"
	"terradir/internal/workload"
)

func init() {
	register("a3", "Extension: routing resiliency under server failures (paper §1, §3.1)", FailureResilience)
	register("a4", "Extension: static top-level replication vs adaptive protocol (paper §2.3)", StaticVsAdaptive)
}

// FailureResilience exercises the paper's fault-tolerance goal (§1: "improve
// ... reliability"; §3.1: hosts of nodes with failed replicas incur more
// load and replicate again): after a warm period, a fraction of servers
// fails abruptly; lookups must keep completing by routing around the dead
// hosts via surviving replicas, caches and digests, and the replication
// protocol must restore coverage.
func FailureResilience(env Env) *Result {
	tree := env.NsTree()
	rate := env.Lambda(8000)
	warm := env.Duration(60)
	after := env.Duration(60)
	r := &Result{
		ID:    "a3",
		Title: "Lookup completion before/after failing a fraction of servers",
		Header: []string{"failedFraction", "replication", "completedBefore", "completedAfter",
			"afterCompletionRate", "recreatedReplicas"},
	}
	r.Notef("servers=%d nodes=%d lambda=%.0f warm=%.0fs after=%.0fs",
		env.Servers(), tree.Len(), rate, warm, after)
	for _, frac := range []float64{0.05, 0.15, 0.30} {
		for _, repl := range []bool{true, false} {
			p := env.Params(tree)
			p.Core.ReplicationEnabled = repl
			c, err := cluster.New(p)
			if err != nil {
				panic(err)
			}
			w := workload.UZipf(tree.Len(), rng.New(env.Seed+101), 1.0, rate, warm+after)
			c.Run(w, warm)
			completedBefore := c.Metrics.Completed
			injectedBefore := c.Metrics.Injected.Total()
			// Fail a deterministic random subset of servers.
			fsrc := rng.New(env.Seed + 202)
			nFail := int(frac * float64(env.Servers()))
			perm := make([]int, env.Servers())
			fsrc.Perm(perm)
			for i := 0; i < nFail; i++ {
				c.FailServer(core.ServerID(perm[i]))
			}
			creationsAtFail := c.Metrics.TotalCreations()
			c.Run(w, after)
			c.Drain(10)
			completedAfter := c.Metrics.Completed - completedBefore
			injectedAfter := c.Metrics.Injected.Total() - injectedBefore
			rate2 := 0.0
			if injectedAfter > 0 {
				rate2 = float64(completedAfter) / injectedAfter
			}
			mode := "off"
			if repl {
				mode = "on"
			}
			r.AddRow(frac, mode, completedBefore, completedAfter, rate2,
				c.Metrics.TotalCreations()-creationsAtFail)
		}
	}
	return r
}

// StaticVsAdaptive compares §2.3's static alternative (pre-replicating the
// top namespace levels) against the adaptive protocol, alone and combined,
// under uniform traffic (the hierarchical-bottleneck regime static
// replication targets) and under a shifting hot-spot it cannot anticipate.
func StaticVsAdaptive(env Env) *Result {
	tree := env.NsTree()
	dur := env.Duration(120)
	rate := env.Lambda(10000)
	r := &Result{
		ID:    "a4",
		Title: "Static top-level replication vs adaptive replication",
		Header: []string{"stream", "system", "dropFraction", "meanHops",
			"loadGini", "replicasCreated"},
	}
	r.Notef("servers=%d nodes=%d lambda=%.0f duration=%.0fs staticLevels=4 staticFactor=8",
		env.Servers(), tree.Len(), rate, dur)
	systems := []struct {
		name string
		mut  func(*cluster.Params)
	}{
		{"none", func(p *cluster.Params) { p.Core.ReplicationEnabled = false }},
		{"static", func(p *cluster.Params) {
			p.Core.ReplicationEnabled = false
			p.Static = cluster.StaticReplication{Levels: 4, Factor: 8}
		}},
		{"adaptive", nil},
		{"static+adaptive", func(p *cluster.Params) {
			p.Static = cluster.StaticReplication{Levels: 4, Factor: 8}
		}},
	}
	for si, stream := range []string{"unif", "uzipf1.50x4"} {
		for _, sys := range systems {
			var w *workload.Workload
			if stream == "unif" {
				w = workload.Unif(tree.Len(), rng.New(env.Seed+111+uint64(si)), rate, dur)
			} else {
				w = shiftStream(tree, env.Seed+111+uint64(si), 1.5, rate, dur, 0.2, 4)
			}
			c := run(env, tree, w, dur, sys.mut)
			// Load balance over the run: Gini of per-server processed work.
			work := make([]float64, c.Servers())
			for i := range work {
				work[i] = float64(c.Peer(i).Stats.Processed)
			}
			r.AddRow(stream, sys.name, c.Metrics.DropFraction(), c.Metrics.Hops.Mean(),
				stats.Gini(work), c.Metrics.TotalCreations())
		}
	}
	return r
}
