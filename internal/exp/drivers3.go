package exp

import (
	"math"

	"terradir/internal/cluster"
	"terradir/internal/rng"
	"terradir/internal/workload"
)

func init() {
	register("e10", "Digest routing accuracy vs oracle under Frepl sweep (paper §4.4)", Exp10DigestAccuracy)
	register("e11", "Load-balancing message overhead (paper §4.2)", Exp11ControlOverhead)
	register("a1", "Ablation: path-propagation caching vs endpoint caching (paper §2.4)", AblationPathCaching)
	register("a2", "Ablation: inverse-mapping digests on/off (paper §3.6)", AblationDigests)
}

// Exp10DigestAccuracy reproduces the §4.4 experiment the paper summarizes in
// text: low replication factors (0.125/0.25/0.5) under repeated shifts of
// α=1.5 hot-spots force heavy replica churn; routing with Bloom digests must
// stay close to routing with an oracle (perfectly accurate inverse-mapping
// information). Accuracy = fraction of forwarding steps with incremental
// progress in the namespace metric.
func Exp10DigestAccuracy(env Env) *Result {
	tree := env.NsTree()
	dur := env.Duration(120)
	rate := env.Lambda(10000)
	r := &Result{
		ID:    "e10",
		Title: "Routing accuracy: digests vs oracle, Frepl sweep, uzipf1.5 shifts",
		Header: []string{"Frepl", "accuracy_digest", "accuracy_oracle", "accuracy_gap",
			"drops_digest", "drops_oracle", "hops_digest", "hops_oracle"},
	}
	r.Notef("servers=%d nodes=%d lambda=%.0f duration=%.0fs alpha=1.5 shifts=4", env.Servers(), tree.Len(), rate, dur)
	for _, frepl := range []float64{0.125, 0.25, 0.5} {
		var acc, drop, hops [2]float64
		for mode := 0; mode < 2; mode++ {
			w := shiftStream(tree, env.Seed+71, 1.5, rate, dur, 0.25, 4)
			oracle := mode == 1
			c := run(env, tree, w, dur, func(p *cluster.Params) {
				p.Core.ReplFactor = frepl
				p.Oracle = oracle
			})
			acc[mode] = c.Metrics.Accuracy()
			drop[mode] = c.Metrics.DropFraction()
			hops[mode] = c.Metrics.Hops.Mean()
		}
		r.AddRow(frepl, acc[0], acc[1], acc[1]-acc[0], drop[0], drop[1], hops[0], hops[1])
	}
	return r
}

// Exp11ControlOverhead quantifies §4.2's claim that "the number of load
// balancing messages is at least two orders of magnitude less than the
// number of queries submitted", under the adaptation workload of Fig. 3.
func Exp11ControlOverhead(env Env) *Result {
	tree := env.NsTree()
	dur := env.Duration(250)
	rate := env.Lambda(20000)
	r := &Result{
		ID:    "e11",
		Title: "Load-balancing control traffic vs queries submitted",
		Header: []string{"stream", "thigh", "queries", "controlMsgs", "ratio", "ordersOfMagnitude",
			"sessions", "sessionsOK"},
	}
	r.Notef("servers=%d lambda=%.0f duration=%.0fs", env.Servers(), rate, dur)
	r.Notef("constant Thigh=0.75 sits below the mean load at this rate (≈0.8), so half the")
	r.Notef("fleet rebalances perpetually; the adaptive threshold (§3.1: 'can automatically")
	r.Notef("be set in proportion to the overall system utilization') restores the paper's")
	r.Notef("orders-of-magnitude separation")
	for i, alpha := range []float64{1.0, 1.5} {
		for _, adaptive := range []bool{false, true} {
			w := shiftStream(tree, env.Seed+83+uint64(i), alpha, rate, dur, 0.25, 4)
			c := run(env, tree, w, dur, func(p *cluster.Params) {
				p.Core.AdaptiveThigh = adaptive
			})
			agg := c.AggregateStats()
			queries := c.Metrics.Injected.Total()
			control := float64(c.Metrics.ControlMsgs)
			ratio := control / queries
			orders := 0.0
			if control > 0 {
				orders = math.Log10(queries / control)
			}
			mode := "constant"
			if adaptive {
				mode = "adaptive"
			}
			r.AddRow(w.Name, mode, queries, control, ratio, orders, agg.SessionsStarted, agg.SessionsOK)
		}
	}
	return r
}

// AblationPathCaching checks §2.4's claim that caching the whole path at
// every step "performs significantly better than caching the query
// endpoints": path propagation on vs off, uniform and Zipf streams.
func AblationPathCaching(env Env) *Result {
	tree := env.NsTree()
	dur := env.Duration(120)
	rate := env.Lambda(10000)
	r := &Result{
		ID:     "a1",
		Title:  "Path-propagation caching vs endpoint-only caching (digests off)",
		Header: []string{"stream", "mode", "meanHops", "latency_ms_p50", "dropFraction", "cacheHits"},
	}
	r.Notef("servers=%d lambda=%.0f duration=%.0fs", env.Servers(), rate, dur)
	for i, alpha := range []float64{-1, 1.0} {
		for _, mode := range []struct {
			name string
			on   bool
		}{{"path", true}, {"endpoints", false}} {
			var w *workload.Workload
			name := "unif"
			if alpha < 0 {
				w = workload.Unif(tree.Len(), rng.New(env.Seed+91+uint64(i)), rate, dur)
			} else {
				w = workload.UZipf(tree.Len(), rng.New(env.Seed+91+uint64(i)), alpha, rate, dur)
				name = w.Name
			}
			c := run(env, tree, w, dur, func(p *cluster.Params) {
				p.Core.PathPropagation = mode.on
				// Digest shortcuts mask the caching policy (they discover
				// the same jumps a cached path entry would provide); turn
				// them off to isolate the §2.4 mechanism under test.
				p.Core.DigestsEnabled = false
			})
			agg := c.AggregateStats()
			r.AddRow(name, mode.name, c.Metrics.Hops.Mean(),
				c.Metrics.Latency.Quantile(0.5)*1000, c.Metrics.DropFraction(), agg.CacheHits)
		}
	}
	return r
}

// AblationDigests measures what the §3.6 digest machinery buys: shortcut
// discovery and map pruning on vs off.
func AblationDigests(env Env) *Result {
	tree := env.NsTree()
	dur := env.Duration(120)
	rate := env.Lambda(10000)
	r := &Result{
		ID:     "a2",
		Title:  "Inverse-mapping digests on vs off",
		Header: []string{"stream", "mode", "meanHops", "latency_ms_p50", "dropFraction", "shortcuts", "accuracy"},
	}
	r.Notef("servers=%d lambda=%.0f duration=%.0fs", env.Servers(), rate, dur)
	for i, alpha := range []float64{-1, 1.0} {
		for _, mode := range []struct {
			name string
			on   bool
		}{{"digests", true}, {"none", false}} {
			var w *workload.Workload
			name := "unif"
			if alpha < 0 {
				w = workload.Unif(tree.Len(), rng.New(env.Seed+97+uint64(i)), rate, dur)
			} else {
				w = workload.UZipf(tree.Len(), rng.New(env.Seed+97+uint64(i)), alpha, rate, dur)
				name = w.Name
			}
			c := run(env, tree, w, dur, func(p *cluster.Params) {
				p.Core.DigestsEnabled = mode.on
			})
			agg := c.AggregateStats()
			r.AddRow(name, mode.name, c.Metrics.Hops.Mean(),
				c.Metrics.Latency.Quantile(0.5)*1000, c.Metrics.DropFraction(),
				agg.DigestShortcuts, c.Metrics.Accuracy())
		}
	}
	return r
}
