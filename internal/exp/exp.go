// Package exp contains one driver per artifact of the paper's evaluation
// (Table 1, Figures 3–9) plus the §4.2/§4.4 textual claims (E10, E11) and
// two design ablations (A1 path-propagation caching, A2 digests). Every
// driver regenerates the same rows/series the paper reports, at an
// adjustable scale: Scale = 1 is the paper's configuration (1000 servers,
// full namespaces, full durations); smaller scales shrink servers, rates and
// durations proportionally (preserving per-server offered load) so the whole
// suite can run as `go test -bench`.
package exp

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"terradir/internal/cluster"
	"terradir/internal/namespace"
	"terradir/internal/rng"
	"terradir/internal/stats"
)

// Result is one regenerated artifact: a table of rows with a header,
// matching the paper's figure/table, plus free-form notes (parameters,
// derived summary numbers).
type Result struct {
	ID     string // "fig3", "table1", ...
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row, formatting each cell.
func (r *Result) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = stats.FormatFloat(v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case int64:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	r.Rows = append(r.Rows, row)
}

// Notef appends a formatted note.
func (r *Result) Notef(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// WriteTSV renders the result as tab-separated values with '#' comment
// lines for title and notes.
func (r *Result) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s: %s\n", r.ID, r.Title); err != nil {
		return err
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, strings.Join(r.Header, "\t")); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// Env fixes the scale and seed for a driver run.
type Env struct {
	// Scale in (0, 1]: 1 reproduces the paper's configuration; smaller
	// values shrink servers, namespaces, arrival rates and durations.
	Scale float64
	Seed  uint64
	// MaxDuration, when positive, caps Duration — used by tests to bound
	// the long stabilization runs.
	MaxDuration float64
}

// DefaultEnv is the paper-scale environment.
func DefaultEnv() Env { return Env{Scale: 1, Seed: 1} }

// BenchEnv is a reduced environment sized so the full driver suite runs in
// minutes under `go test -bench`.
func BenchEnv() Env { return Env{Scale: 0.05, Seed: 1} }

func (e Env) clampScale() float64 {
	s := e.Scale
	if s <= 0 {
		return 1
	}
	if s > 1 {
		return 1
	}
	return s
}

// Servers returns the scaled server count (paper: 1000).
func (e Env) Servers() int {
	n := int(math.Round(1000 * e.clampScale()))
	if n < 16 {
		n = 16
	}
	return n
}

// NsTree builds the scaled synthetic namespace: a perfectly balanced binary
// tree sized to preserve ≈32 nodes/server (paper: 32,767 nodes over 1000
// servers, levels 0–14).
func (e Env) NsTree() *namespace.Tree {
	levels := 15
	if e.clampScale() < 1 {
		target := 32 * e.Servers()
		levels = 1
		for namespace.BalancedBinaryNodes(levels) < target && levels < 15 {
			levels++
		}
	}
	return namespace.NewBalanced(2, levels)
}

// NcTree builds the scaled file-system namespace (Coda substitute, ≈70
// nodes/server; paper ≈70k nodes over 1000 servers).
func (e Env) NcTree() *namespace.Tree {
	p := namespace.DefaultFileSystemParams()
	if e.clampScale() < 1 {
		p.TargetNodes = 70 * e.Servers()
	}
	return namespace.BuildFileSystem(rng.New(e.Seed^0xfeed), p)
}

// nsLevels returns the depth of the scaled Ns tree (levels count).
func (e Env) nsLevels() int {
	if e.clampScale() >= 1 {
		return 15
	}
	target := 32 * e.Servers()
	levels := 1
	for namespace.BalancedBinaryNodes(levels) < target && levels < 15 {
		levels++
	}
	return levels
}

// utilFactor compensates arrival rates for the shorter routes of scaled-down
// deployments: with fewer servers, namespaces are shallower and per-peer
// soft state covers a larger fraction of the system, so queries consume
// fewer services. Preserving per-server *utilization* — which every figure's
// dynamics depend on — requires scaling rates up by the full-to-scaled
// service ratio, which empirically follows ≈ (1000/S)^0.2 over the scales
// the drivers use (fitted against measured services/query at high load:
// ≈5.2 at 1000 servers, ≈3.4 at 100, ≈2.0 at 20).
func (e Env) utilFactor() float64 {
	s := float64(e.Servers())
	if s >= 1000 {
		return 1
	}
	f := math.Pow(1000/s, 0.2)
	if f > 3 {
		f = 3
	}
	return f
}

// Lambda scales a paper-global arrival rate, preserving per-server
// utilization (see utilFactor).
func (e Env) Lambda(paperRate float64) float64 {
	return paperRate * float64(e.Servers()) / 1000 * e.utilFactor()
}

// LambdaAbsolute returns the paper arrival rate unscaled, capped at the
// scaled deployment's ≈80%-utilization rate (anchorRate is the paper rate
// that drives ≈0.8 utilization on the namespace in question: 20,000 on Ns,
// 40,000 on Nc). Hot-spot severity is absolute — a Zipf head node
// concentrates λ·p₁ queries on one server regardless of system size — so
// experiments whose dynamics hinge on hot-node saturation (Fig. 8) must not
// scale the rate down with the server count.
func (e Env) LambdaAbsolute(paperRate, anchorRate float64) float64 {
	cap := e.Lambda(anchorRate)
	if paperRate < cap {
		return paperRate
	}
	return cap
}

// Duration scales a paper run length. Time constants (service times, load
// windows, cooldowns) do not scale, so durations shrink sub-linearly with a
// floor that keeps the dynamics (warmup, spikes, recovery) observable.
func (e Env) Duration(paperSeconds float64) float64 {
	s := e.clampScale()
	d := paperSeconds
	if s < 1 {
		d = paperSeconds * math.Sqrt(s)
		min := 40.0
		if paperSeconds < min {
			min = paperSeconds
		}
		if d < min {
			d = min
		}
	}
	if e.MaxDuration > 0 && d > e.MaxDuration {
		d = e.MaxDuration
	}
	return d
}

// Params builds scaled cluster parameters for the given namespace.
func (e Env) Params(tree *namespace.Tree) cluster.Params {
	p := cluster.DefaultParams(tree, e.Servers())
	p.Seed = e.Seed
	return p
}

// Driver is a registered experiment generator.
type Driver struct {
	ID    string
	Title string
	Run   func(Env) *Result
}

var registry []Driver

func register(id, title string, run func(Env) *Result) {
	registry = append(registry, Driver{ID: id, Title: title, Run: run})
}

// Drivers returns all registered experiment drivers sorted by ID.
func Drivers() []Driver {
	out := append([]Driver(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup finds a driver by ID.
func Lookup(id string) (Driver, bool) {
	for _, d := range registry {
		if d.ID == id {
			return d, true
		}
	}
	return Driver{}, false
}
