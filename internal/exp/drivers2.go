package exp

import (
	"math"

	"terradir/internal/cluster"
	"terradir/internal/core"
	"terradir/internal/namespace"
	"terradir/internal/rng"
	"terradir/internal/stats"
	"terradir/internal/workload"
)

func init() {
	register("fig6", "Average and maximum server load over time (paper Fig. 6)", Fig6)
	register("fig7", "Average replicas created per namespace level (paper Fig. 7)", Fig7)
	register("fig8", "Replicas created per minute over long runs (paper Fig. 8)", Fig8)
	register("fig9", "Scalability: latency, replications, drops vs system size (paper Fig. 9)", Fig9)
}

// Fig6 reproduces Fig. 6: per-second mean and maximum server load under the
// unif∘uzipf1.00×4 stream at the three paper arrival rates, plus the maximum
// smoothed over an 11-second window (right panel).
func Fig6(env Env) *Result {
	tree := env.NsTree()
	dur := env.Duration(250)
	rates := []float64{env.Lambda(4000), env.Lambda(10000), env.Lambda(20000)}
	labels := []string{"4000", "10000", "20000"}
	r := &Result{
		ID:     "fig6",
		Title:  "Server load as utilization over time (uzipf×4, alpha=1.0)",
		Header: []string{"t"},
	}
	r.Notef("servers=%d nodes=%d duration=%.0fs Thigh=%.2f",
		env.Servers(), tree.Len(), dur, core.DefaultConfig().Thigh)
	type series struct{ avg, max, max11 []float64 }
	all := make([]series, len(rates))
	bins := 0
	for i, rate := range rates {
		w := shiftStream(tree, env.Seed+31+uint64(i), 1.0, rate, dur, 0.25, 4)
		c := run(env, tree, w, dur, nil)
		all[i] = series{
			avg:   append([]float64(nil), c.Metrics.LoadAvg...),
			max:   append([]float64(nil), c.Metrics.LoadMax...),
			max11: stats.SlidingMean(c.Metrics.LoadMax, 11),
		}
		if len(all[i].avg) > bins {
			bins = len(all[i].avg)
		}
		r.Header = append(r.Header,
			"avg"+labels[i], "max"+labels[i], "max11_"+labels[i])
		r.Notef("lambda=%s: mean load %.3f, drop fraction %.4f",
			labels[i], c.Metrics.MeanLoad(), c.Metrics.DropFraction())
	}
	at := func(v []float64, i int) float64 {
		if i < len(v) {
			return v[i]
		}
		return 0
	}
	for t := 0; t < bins; t++ {
		row := []interface{}{t + 1}
		for _, s := range all {
			row = append(row, at(s.avg, t), at(s.max, t), at(s.max11, t))
		}
		r.AddRow(row...)
	}
	return r
}

// Fig7 reproduces Fig. 7: the average number of replicas created per node at
// each level of Ns (root = level 0), under uniform and Zipf queries at three
// arrival rates. The paper's signature shape: monotone decay with depth,
// except an elevated level-2 bump (level-2 pointers linger in caches and
// shortcut around levels 0–1).
func Fig7(env Env) *Result {
	tree := env.NsTree()
	dur := env.Duration(250)
	pop := tree.LevelPopulations()
	r := &Result{
		ID:     "fig7",
		Title:  "Average replicas created per namespace tree level",
		Header: []string{"level"},
	}
	r.Notef("servers=%d nodes=%d levels=%d duration=%.0fs", env.Servers(), tree.Len(), len(pop), dur)
	configs := []struct {
		name  string
		alpha float64
		rate  float64
	}{
		{"unif8000", -1, env.Lambda(8000)},
		{"uzipf8000", 1.0, env.Lambda(8000)},
		{"unif4000", -1, env.Lambda(4000)},
		{"uzipf4000", 1.0, env.Lambda(4000)},
		{"unif2000", -1, env.Lambda(2000)},
		{"uzipf2000", 1.0, env.Lambda(2000)},
	}
	series := make([][]float64, len(configs))
	for i, cf := range configs {
		var w *workload.Workload
		if cf.alpha < 0 {
			w = workload.Unif(tree.Len(), rng.New(env.Seed+41+uint64(i)), cf.rate, dur)
		} else {
			w = workload.UZipf(tree.Len(), rng.New(env.Seed+41+uint64(i)), cf.alpha, cf.rate, dur)
		}
		c := run(env, tree, w, dur, nil)
		vals := make([]float64, len(pop))
		for lvl := range pop {
			vals[lvl] = float64(c.Metrics.CreationsByLevel[lvl]) / float64(pop[lvl])
		}
		series[i] = vals
		r.Header = append(r.Header, cf.name)
	}
	for lvl := range pop {
		row := []interface{}{lvl}
		for _, vals := range series {
			row = append(row, vals[lvl])
		}
		r.AddRow(row...)
	}
	return r
}

// Fig8 reproduces Fig. 8 (stabilization): replicas created per minute over a
// long run (paper: 10,000 s) for unif and unif∘uzipf1.00 streams on both
// namespaces. The uniform component of the composed stream lasts 100 s as in
// §4.4; the creation rate must decay toward a quiescent trickle. Rates are
// hot-spot-absolute (see Env.LambdaAbsolute) capped at a light-load anchor:
// stabilization is a light-load phenomenon — near capacity, load shedding
// legitimately never quiesces.
func Fig8(env Env) *Result {
	dur := env.Duration(10000)
	r := &Result{
		ID:     "fig8",
		Title:  "Replicas created per minute (stabilization)",
		Header: []string{"minute", "unifS", "unifC", "uzipfS1.00", "uzipfC1.00"},
	}
	nsTree, ncTree := env.NsTree(), env.NcTree()
	warm := 100.0 * dur / 10000
	configs := []struct {
		name  string
		tree  *namespace.Tree
		rate  float64
		mixed bool
	}{
		{"unifS", nsTree, env.LambdaAbsolute(2500, 10000), false},
		{"unifC", ncTree, env.LambdaAbsolute(5000, 10000), false},
		{"uzipfS1.00", nsTree, env.LambdaAbsolute(2500, 10000), true},
		{"uzipfC1.00", ncTree, env.LambdaAbsolute(5000, 10000), true},
	}
	r.Notef("servers=%d duration=%.0fs warmup=%.0fs lambdaS=%.0f lambdaC=%.0f",
		env.Servers(), dur, warm, configs[0].rate, configs[1].rate)
	minutes := int(math.Ceil(dur / 60))
	series := make([][]float64, len(configs))
	for i, cf := range configs {
		var w *workload.Workload
		if cf.mixed {
			w = workload.UnifThenZipfShifts(cf.tree.Len(), rng.New(env.Seed+53+uint64(i)), 1.0, cf.rate, warm, dur, 1)
		} else {
			w = workload.Unif(cf.tree.Len(), rng.New(env.Seed+53+uint64(i)), cf.rate, dur)
		}
		c := run(env, cf.tree, w, dur, nil)
		vals := make([]float64, minutes)
		for t := 0; t < c.Metrics.Creations.Len(); t++ {
			m := t / 60
			if m < minutes {
				vals[m] += c.Metrics.Creations.Sum(t)
			}
		}
		series[i] = vals
		last := vals[len(vals)-1]
		inj := c.Metrics.Injected.Total()
		cr := c.Metrics.Creations.Total()
		per := 0.0
		if cr > 0 {
			per = inj / cr
		}
		r.Notef("%s: final rate %.1f replicas/min; one replica per %.0f queries overall", cf.name, last, per)
	}
	for m := 0; m < minutes; m++ {
		row := []interface{}{m}
		for _, vals := range series {
			row = append(row, vals[m])
		}
		r.AddRow(row...)
	}
	return r
}

// Fig9 reproduces Fig. 9 (scalability): servers scale 2^6..2^14 with 8 nodes
// per server (balanced assignment), cache slots and Msize logarithmic in
// system size, Frepl = 2, and λ proportional to system size. Reported per
// size: mean query latency, replica-creation events, and dropped queries
// (the paper plots the latter two on a log scale).
func Fig9(env Env) *Result {
	r := &Result{
		ID:    "fig9",
		Title: "Scalability of latency, replication and drops",
		Header: []string{"log2servers", "servers", "nodes", "latency_ms", "hops",
			"replications", "log10repl", "drops", "log10drops", "dropFraction"},
	}
	maxExp := 14
	if env.clampScale() < 1 {
		// Scale the sweep's upper end: e.g. 0.05 → 2^6..2^10.
		maxExp = 6 + int(math.Round(8*env.clampScale()*2))
		if maxExp > 14 {
			maxExp = 14
		}
		if maxExp < 8 {
			maxExp = 8
		}
	}
	dur := env.Duration(60)
	r.Notef("sweep=2^6..2^%d nodes/server=8 Frepl=2 lambda=12.5/server duration=%.0fs", maxExp, dur)
	for e := 6; e <= maxExp; e++ {
		servers := 1 << uint(e)
		tree := namespace.NewBalanced(2, e+3) // 2^(e+3)-1 nodes ≈ 8/server
		rate := 12.5 * float64(servers)
		w := workload.UnifThenZipfShifts(tree.Len(), rng.New(env.Seed+61+uint64(e)), 1.0, rate, dur*0.25, dur, 2)
		p := cluster.DefaultParams(tree, servers)
		p.Seed = env.Seed + uint64(e)
		p.Assignment = cluster.AssignBalanced
		p.Core.CacheSlots = core.ScaleCacheForServers(servers)
		p.Core.MapSize = core.ScaleMapSizeForServers(servers)
		c, err := cluster.New(p)
		if err != nil {
			panic(err)
		}
		c.Run(w, dur)
		c.Drain(10)
		m := c.Metrics
		lat := m.Latency.Mean() * 1000
		repl := float64(m.TotalCreations())
		drops := float64(m.DroppedTotal)
		log10 := func(v float64) float64 {
			if v < 1 {
				return 0
			}
			return math.Log10(v)
		}
		r.AddRow(e, servers, tree.Len(), lat, m.Hops.Mean(), repl, log10(repl), drops, log10(drops), m.DropFraction())
	}
	return r
}
