package exp

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// tinyEnv is the smallest environment that still exhibits the protocol
// dynamics; used so the whole driver suite runs in test time.
func tinyEnv() Env { return Env{Scale: 0.02, Seed: 3} }

// midEnv is large enough for hierarchy-dependent shapes (Fig. 7's level
// profile, Fig. 8's stabilization, the path-propagation ablation): the
// hierarchical bottleneck only emerges when root-path servers are a small
// fraction of the population.
func midEnv() Env { return Env{Scale: 0.1, Seed: 3, MaxDuration: 600} }

func cell(t *testing.T, r *Result, row int, col string) float64 {
	t.Helper()
	idx := -1
	for i, h := range r.Header {
		if h == col {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatalf("column %q not in %v", col, r.Header)
	}
	v, err := strconv.ParseFloat(r.Rows[row][idx], 64)
	if err != nil {
		t.Fatalf("cell %d/%s = %q: %v", row, col, r.Rows[row][idx], err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"a1", "a2", "a3", "a3live", "a4", "e10", "e11", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "table1"}
	ds := Drivers()
	if len(ds) != len(want) {
		t.Fatalf("registered %d drivers, want %d", len(ds), len(want))
	}
	for i, d := range ds {
		if d.ID != want[i] {
			t.Fatalf("driver %d = %s, want %s", i, d.ID, want[i])
		}
		if d.Title == "" || d.Run == nil {
			t.Fatalf("driver %s incomplete", d.ID)
		}
	}
	if _, ok := Lookup("fig3"); !ok {
		t.Fatal("Lookup failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup found a ghost")
	}
}

func TestEnvScaling(t *testing.T) {
	full := DefaultEnv()
	if full.Servers() != 1000 {
		t.Fatalf("full servers = %d", full.Servers())
	}
	if full.NsTree().Len() != 32767 {
		t.Fatalf("full Ns = %d nodes", full.NsTree().Len())
	}
	if full.Lambda(20000) != 20000 {
		t.Fatal("full lambda scaled")
	}
	if full.Duration(250) != 250 {
		t.Fatal("full duration scaled")
	}
	small := Env{Scale: 0.05, Seed: 1}
	if small.Servers() != 50 {
		t.Fatalf("small servers = %d", small.Servers())
	}
	if got := small.Lambda(20000); got < 1000 || got > 3.5*1000 {
		t.Fatalf("small lambda = %v, want within [1000, 3500] (base x utilization compensation)", got)
	}
	if d := small.Duration(250); d < 40 || d >= 250 {
		t.Fatalf("small duration = %v", d)
	}
	nodes := small.NsTree().Len()
	if nodes < 32*50 || nodes > 4*32*50 {
		t.Fatalf("small Ns = %d nodes", nodes)
	}
	// Degenerate scales clamp.
	bad := Env{Scale: -1}
	if bad.Servers() != 1000 {
		t.Fatal("negative scale not clamped to 1")
	}
	tiny := Env{Scale: 0.001}
	if tiny.Servers() != 16 {
		t.Fatalf("tiny servers = %d, want floor 16", tiny.Servers())
	}
}

func TestTable1Shape(t *testing.T) {
	r := Table1(tinyEnv())
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Rows[0][0] != "Owned" || r.Rows[1][0] != "Replicated" {
		t.Fatalf("row order wrong: %v", r.Rows)
	}
	// Replicated has no data column mark.
	if r.Rows[1][3] != "" {
		t.Fatal("Replicated should not keep data")
	}
}

func TestResultTSV(t *testing.T) {
	r := &Result{ID: "x", Title: "T", Header: []string{"a", "b"}}
	r.AddRow(1, 2.5)
	r.Notef("note %d", 7)
	var buf bytes.Buffer
	if err := r.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# x: T") || !strings.Contains(out, "# note 7") {
		t.Fatalf("comments missing:\n%s", out)
	}
	if !strings.Contains(out, "a\tb") || !strings.Contains(out, "1\t2.5") {
		t.Fatalf("data missing:\n%s", out)
	}
}

func TestFig3ShapeSpikesAndRecovery(t *testing.T) {
	r := Fig3(tinyEnv())
	if len(r.Rows) < 40 {
		t.Fatalf("only %d time rows", len(r.Rows))
	}
	// Shape: the heavily skewed stream must drop more than unif overall.
	sum := func(col string) float64 {
		s := 0.0
		for i := range r.Rows {
			s += cell(t, r, i, col)
		}
		return s
	}
	if sum("uzipf1.50") <= sum("unif") {
		t.Fatalf("uzipf1.50 drops (%v) not above unif (%v)", sum("uzipf1.50"), sum("unif"))
	}
	// Recovery: last-5-second drop rate for uzipf1.50 must be well below its
	// peak (the system adapts rather than staying saturated).
	peak, tail := 0.0, 0.0
	n := len(r.Rows)
	for i := 0; i < n; i++ {
		v := cell(t, r, i, "uzipf1.50")
		if v > peak {
			peak = v
		}
		if i >= n-5 {
			tail += v / 5
		}
	}
	if peak > 0 && tail > 0.6*peak {
		t.Fatalf("no recovery: peak %v, tail %v", peak, tail)
	}
}

func TestFig5ShapeOrdering(t *testing.T) {
	r := Fig5(tinyEnv())
	if len(r.Rows) != 10 {
		t.Fatalf("rows = %d, want 10 streams", len(r.Rows))
	}
	// The paper's headline: replication (BCR) beats the base system (B)
	// decisively on skewed streams; overall B should drop far more.
	var bTot, bcrTot float64
	for i := range r.Rows {
		bTot += cell(t, r, i, "B")
		bcrTot += cell(t, r, i, "BCR")
	}
	if bcrTot >= bTot {
		t.Fatalf("BCR (%v) not better than B (%v)", bcrTot, bTot)
	}
	// On the most skewed Ns stream, BCR must beat B by a wide margin.
	for i := range r.Rows {
		if r.Rows[i][0] == "uzipfS1.50" {
			b, bcr := cell(t, r, i, "B"), cell(t, r, i, "BCR")
			if bcr > 0.7*b {
				t.Fatalf("uzipfS1.50: BCR %v vs B %v — replication not pulling its weight", bcr, b)
			}
		}
	}
}

func TestFig6ShapeMaxAboveAvg(t *testing.T) {
	r := Fig6(tinyEnv())
	if len(r.Rows) < 40 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	violations := 0
	for i := range r.Rows {
		if cell(t, r, i, "max20000") < cell(t, r, i, "avg20000")-1e-9 {
			violations++
		}
	}
	if violations > 0 {
		t.Fatalf("max below avg in %d rows", violations)
	}
	// Higher lambda ⇒ higher mean load.
	var a4, a20 float64
	for i := range r.Rows {
		a4 += cell(t, r, i, "avg4000")
		a20 += cell(t, r, i, "avg20000")
	}
	if a20 <= a4 {
		t.Fatalf("avg load not increasing with lambda: %v vs %v", a4, a20)
	}
	// Smoothed max must be bounded by the raw max's peak.
	for i := range r.Rows {
		if cell(t, r, i, "max11_20000") > 1.0+1e-9 {
			t.Fatal("smoothed max exceeds 1")
		}
	}
}

func TestFig7ShapeTopHeavy(t *testing.T) {
	r := Fig7(midEnv())
	// Root (level 0) must be replicated far more than the deepest level,
	// under uniform traffic (hierarchical bottleneck).
	root := cell(t, r, 0, "unif8000")
	leaf := cell(t, r, len(r.Rows)-1, "unif8000")
	if root <= leaf {
		t.Fatalf("root replicas (%v) not above leaf replicas (%v)", root, leaf)
	}
	if root < 1 {
		t.Fatalf("root barely replicated: %v", root)
	}
	// Higher rate ⇒ at least as much replication pressure at the top.
	if cell(t, r, 0, "unif2000") > 2*cell(t, r, 0, "unif8000") {
		t.Fatal("replication not scaling with load")
	}
}

func TestFig8ShapeDecay(t *testing.T) {
	r := Fig8(Env{Scale: 0.05, Seed: 3, MaxDuration: 300})
	if len(r.Rows) < 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Stabilization: the last-third creation rate must fall below the
	// first-third rate once input stops changing. At reduced scale the
	// hierarchical (unif) replication is a paper-scale trickle, so the
	// robust decay signal is the Zipf stream; unif must merely not grow.
	third := len(r.Rows) / 3
	sum := func(col string, from, to int) float64 {
		s := 0.0
		for i := from; i < to; i++ {
			s += cell(t, r, i, col)
		}
		return s
	}
	zHead := sum("uzipfS1.00", 0, third)
	zTail := sum("uzipfS1.00", len(r.Rows)-third, len(r.Rows))
	if zHead == 0 {
		t.Fatal("no replication at all on uzipfS1.00")
	}
	if zTail >= zHead {
		t.Fatalf("no stabilization on uzipfS1.00: head %v, tail %v", zHead, zTail)
	}
	uHead := sum("unifS", 0, third)
	uTail := sum("unifS", len(r.Rows)-third, len(r.Rows))
	if uTail > uHead && uTail > 5 {
		t.Fatalf("unifS creation rate growing: head %v, tail %v", uHead, uTail)
	}
}

func TestFig9ShapeScaling(t *testing.T) {
	r := Fig9(tinyEnv())
	if len(r.Rows) < 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	first, last := 0, len(r.Rows)-1
	// Replication events grow with system size.
	if cell(t, r, last, "replications") <= cell(t, r, first, "replications") {
		t.Fatal("replications do not grow with system size")
	}
	// Latency grows slowly (logarithmic-ish): much less than linearly with
	// the 2^(last-first) size ratio.
	lat1, latN := cell(t, r, first, "latency_ms"), cell(t, r, last, "latency_ms")
	ratio := float64(int(1) << uint(last-first))
	if latN > lat1*ratio/2 {
		t.Fatalf("latency scaling looks super-logarithmic: %v -> %v over %vx servers", lat1, latN, ratio)
	}
}

func TestE10OracleAtLeastAsAccurate(t *testing.T) {
	r := Exp10DigestAccuracy(midEnv())
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for i := range r.Rows {
		dig := cell(t, r, i, "accuracy_digest")
		if dig < 0.5 || dig > 1 {
			t.Fatalf("digest accuracy out of range: %v", dig)
		}
		// §4.4: digests approximate optimal behavior — within 25 points at
		// this reduced scale (the gap closes at paper scale; see EXPERIMENTS.md).
		gap := cell(t, r, i, "accuracy_gap")
		if gap > 0.25 {
			t.Fatalf("digest accuracy %v too far from oracle (gap %v)", dig, gap)
		}
	}
}

func TestE11ControlBounded(t *testing.T) {
	r := Exp11ControlOverhead(tinyEnv())
	for i := range r.Rows {
		ratio := cell(t, r, i, "ratio")
		if ratio <= 0 {
			t.Fatal("no control traffic measured")
		}
		// At tiny scale the paper's 2-orders bound relaxes; it must still be
		// a strict minority of traffic.
		if ratio > 0.5 {
			t.Fatalf("control ratio %v", ratio)
		}
	}
}

func TestA1PathBeatsEndpoints(t *testing.T) {
	r := AblationPathCaching(midEnv())
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// §2.4 claim: path propagation performs significantly better than
	// caching the query endpoints. The robust metric is the drop fraction
	// on the uniform stream (mean hop counts are survivorship-biased: the
	// endpoint system drops exactly its longest routes).
	var pathDrop, endDrop float64
	for i := range r.Rows {
		if r.Rows[i][0] == "unif" {
			switch r.Rows[i][1] {
			case "path":
				pathDrop = cell(t, r, i, "dropFraction")
			case "endpoints":
				endDrop = cell(t, r, i, "dropFraction")
			}
		}
	}
	if endDrop == 0 {
		t.Skip("no drops at this scale; nothing to compare")
	}
	if pathDrop >= 0.95*endDrop {
		t.Fatalf("path propagation drops %v vs endpoints %v — no significant win", pathDrop, endDrop)
	}
}

func TestA2DigestsHelp(t *testing.T) {
	r := AblationDigests(tinyEnv())
	var withHops, withoutHops float64
	for i := range r.Rows {
		if r.Rows[i][0] == "unif" {
			switch r.Rows[i][1] {
			case "digests":
				withHops = cell(t, r, i, "meanHops")
				if cell(t, r, i, "shortcuts") == 0 {
					t.Fatal("digests on but no shortcuts taken")
				}
			case "none":
				withoutHops = cell(t, r, i, "meanHops")
				if cell(t, r, i, "shortcuts") != 0 {
					t.Fatal("digests off but shortcuts taken")
				}
			}
		}
	}
	if withHops >= withoutHops {
		t.Fatalf("digests (%v hops) not better than none (%v hops)", withHops, withoutHops)
	}
}

func TestA3FailureResilience(t *testing.T) {
	r := FailureResilience(Env{Scale: 0.05, Seed: 3})
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for i := range r.Rows {
		rate := cell(t, r, i, "afterCompletionRate")
		frac, _ := strconv.ParseFloat(r.Rows[i][0], 64)
		// Even with 30% of servers gone, the vast majority of queries must
		// still complete (failed sources/hosts account for roughly the
		// failed fraction itself).
		floor := 1 - 2.5*frac
		if rate < floor {
			t.Fatalf("row %v: completion rate %v below floor %v", r.Rows[i], rate, floor)
		}
	}
	// With replication on, post-failure completion should be at least as
	// good as without, at the highest failure fraction.
	var on, off float64
	for i := range r.Rows {
		if r.Rows[i][0] == "0.3" {
			if r.Rows[i][1] == "on" {
				on = cell(t, r, i, "afterCompletionRate")
			} else {
				off = cell(t, r, i, "afterCompletionRate")
			}
		}
	}
	if on < off-0.02 {
		t.Fatalf("replication hurt failure resilience: on=%v off=%v", on, off)
	}
}

func TestA4StaticVsAdaptive(t *testing.T) {
	r := StaticVsAdaptive(midEnv())
	if len(r.Rows) != 8 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	get := func(stream, system, col string) float64 {
		for i := range r.Rows {
			if r.Rows[i][0] == stream && r.Rows[i][1] == system {
				return cell(t, r, i, col)
			}
		}
		t.Fatalf("row %s/%s missing", stream, system)
		return 0
	}
	// Static replication must beat no replication on the uniform
	// (hierarchical-bottleneck) stream in load balance.
	if get("unif", "static", "loadGini") >= get("unif", "none", "loadGini") {
		t.Fatal("static replication did not improve load balance under unif")
	}
	// Under shifting hot-spots, adaptive must beat static-only on drops —
	// static cannot anticipate where demand lands (the paper's argument for
	// an adaptive scheme).
	if get("uzipf1.50x4", "adaptive", "dropFraction") >= get("uzipf1.50x4", "static", "dropFraction") {
		t.Fatal("adaptive replication did not beat static under shifting hot-spots")
	}
}

func TestFig4ShapeCreationBursts(t *testing.T) {
	r := Fig4(tinyEnv())
	if len(r.Rows) < 40 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Creation bursts: the skewed stream must create replicas (nonzero
	// total), with an early warmup burst (hierarchical stabilization).
	sum := func(col string, from, to int) float64 {
		s := 0.0
		for i := from; i < to && i < len(r.Rows); i++ {
			s += cell(t, r, i, col)
		}
		return s
	}
	total := sum("uzipf1.50", 0, len(r.Rows))
	if total == 0 {
		t.Fatal("no replicas created on uzipf1.50")
	}
	// The warmup/shift phases dominate: the last tenth of the run should
	// create far less than the busiest tenth.
	tenth := len(r.Rows) / 10
	maxWindow := 0.0
	for i := 0; i+tenth <= len(r.Rows); i += tenth {
		if w := sum("uzipf1.50", i, i+tenth); w > maxWindow {
			maxWindow = w
		}
	}
	tail := sum("uzipf1.50", len(r.Rows)-tenth, len(r.Rows))
	if tail > 0.8*maxWindow {
		t.Fatalf("creation rate not bursty: tail %v vs peak window %v", tail, maxWindow)
	}
}

func TestE11AdaptiveThighReducesControl(t *testing.T) {
	r := Exp11ControlOverhead(Env{Scale: 0.1, Seed: 3})
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	var constant, adaptive float64
	for i := range r.Rows {
		if r.Rows[i][0] == "unif.uzipf1.00x4" {
			switch r.Rows[i][1] {
			case "constant":
				constant = cell(t, r, i, "ratio")
			case "adaptive":
				adaptive = cell(t, r, i, "ratio")
			}
		}
	}
	if adaptive >= constant {
		t.Fatalf("adaptive Thigh did not reduce control traffic: %v vs %v", adaptive, constant)
	}
	// Adaptive mode should approach the paper's claim (≥1.5 orders at this
	// reduced scale; the full-scale run reaches ≥2).
	for i := range r.Rows {
		if r.Rows[i][1] == "adaptive" {
			if o := cell(t, r, i, "ordersOfMagnitude"); o < 1.0 {
				t.Fatalf("adaptive orders of magnitude = %v", o)
			}
		}
	}
}
