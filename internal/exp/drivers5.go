package exp

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"terradir/internal/core"
	"terradir/internal/namespace"
	"terradir/internal/overlay"
	"terradir/internal/rng"
)

func init() {
	register("a3live", "Extension: A3 on the live overlay — lookup completion with peers killed mid-run", LiveFailureResilience)
}

// liveA3Params sizes the live run. The live overlay burns wall-clock time
// (goroutines, real timers), so the driver runs far smaller than the
// simulator's A3 while keeping the same shape: warm with Zipf traffic so
// soft state (caches, replicas) forms, fail a fraction of peers abruptly,
// then measure client-visible lookup completion from the survivors.
type liveA3Params struct {
	servers      int
	warmPer      int           // warm lookups issued by each server
	measurePer   int           // measured lookups issued by each survivor
	alpha        float64       // Zipf skew of the query stream
	attempts     int           // client retry budget per measured lookup
	timeout      time.Duration // per-attempt deadline
	serviceDelay time.Duration // artificial per-query cost (drives load high enough to replicate)
}

// LiveFailureResilience is A3 run against the real concurrent overlay
// instead of the simulator: a LocalCluster with a FaultTransport, a Zipf
// warm phase, then 5–30% of the peers fail-stopped mid-run (event loops
// halted, all their traffic dropped). Completion is what a client sees: a
// lookup from a surviving peer that returns OK within a small retry budget
// (retries re-Pick hosts at every hop, so partial replica liveness converts
// into success, while a dead sole owner stays unreachable). Mirrors the
// simulator A3 table (internal/exp/drivers4.go); note the live run operates
// at low utilization, so A3's load-shedding component of the replication
// benefit (fewer queue drops on survivors) is largely absent here.
func LiveFailureResilience(env Env) *Result {
	p := liveA3Params{
		servers:      env.Servers(),
		warmPer:      120,
		measurePer:   40,
		alpha:        1.2,
		attempts:     3,
		timeout:      200 * time.Millisecond,
		serviceDelay: time.Millisecond,
	}
	if p.servers > 24 {
		p.servers = 24 // live peers are goroutine clusters, not sim rows
	}
	levels := 1
	for namespace.BalancedBinaryNodes(levels) < 8*p.servers && levels < 12 {
		levels++
	}
	tree := namespace.NewBalanced(2, levels)

	r := &Result{
		ID:    "a3live",
		Title: "Live overlay: lookup completion before/after killing a fraction of peers",
		Header: []string{"failedFraction", "replication", "completedBefore", "completedAfter",
			"afterCompletionRate", "recreatedReplicas"},
	}
	r.Notef("servers=%d nodes=%d zipfAlpha=%.2f warm=%d/server measure=%d/server attempts=%d timeout=%s",
		p.servers, tree.Len(), p.alpha, p.warmPer, p.measurePer, p.attempts, p.timeout)
	r.Notef("completion = OK within the retry budget, measured from surviving peers only")

	for _, frac := range []float64{0.05, 0.10, 0.30} {
		for _, repl := range []bool{true, false} {
			row := runLiveA3(env, tree, p, frac, repl)
			mode := "off"
			if repl {
				mode = "on"
			}
			r.AddRow(frac, mode, row.before, row.after, row.rate, row.recreated)
		}
	}
	return r
}

type liveA3Row struct {
	before, after int64
	rate          float64
	recreated     int64
}

func runLiveA3(env Env, tree *namespace.Tree, p liveA3Params, frac float64, repl bool) liveA3Row {
	cfg := core.DefaultConfig()
	cfg.ReplicationEnabled = repl
	cfg.ReplicationCooldown = 0.05
	// At this scale the sequential client goroutines self-throttle, so even
	// the Zipf-hot owner peaks near 0.5 busy-fraction; lower the high-water
	// mark so the replication protocol engages as it would at paper load and
	// the Zipf head gets replicated before the kill.
	cfg.Thigh = 0.25
	c, err := overlay.NewLocalCluster(tree, overlay.LocalClusterOptions{
		Servers: p.servers,
		Seed:    env.Seed,
		Fault:   &overlay.FaultOptions{Seed: env.Seed + 1},
		Node: overlay.Options{
			Config:       cfg,
			ServiceDelay: p.serviceDelay,
			QueueCap:     1024,
		},
	})
	if err != nil {
		panic(err)
	}
	defer c.StopAll()

	// One shared Zipf stream fixes the popularity ranking and pre-draws every
	// destination, so the sequences are deterministic regardless of goroutine
	// interleaving.
	zipf := rng.NewZipf(rng.New(env.Seed+101), tree.Len(), p.alpha)
	draw := func(per int) [][]core.NodeID {
		out := make([][]core.NodeID, p.servers)
		for s := range out {
			out[s] = make([]core.NodeID, per)
			for i := range out[s] {
				out[s][i] = core.NodeID(zipf.Sample())
			}
		}
		return out
	}
	warmDests, afterDests := draw(p.warmPer), draw(p.measurePer)

	all := make([]int, p.servers)
	for i := range all {
		all[i] = i
	}
	// Warm: soft state forms — caches along every query path, replicas of the
	// hot nodes once owners cross Thigh.
	before, _ := driveLiveLookups(c, all, warmDests, 2*time.Second, 1)
	time.Sleep(150 * time.Millisecond) // let in-flight replication sessions land

	// Abrupt fail-stop of a deterministic random subset, as in A3.
	nFail := int(frac*float64(p.servers) + 0.5)
	if nFail < 1 {
		nFail = 1
	}
	perm := make([]int, p.servers)
	rng.New(env.Seed + 202).Perm(perm)
	deadSet := make(map[int]bool, nFail)
	for i := 0; i < nFail; i++ {
		deadSet[perm[i]] = true
	}
	var survivors []int
	installsAtFail := int64(0)
	for i := 0; i < p.servers; i++ {
		if deadSet[i] {
			continue
		}
		survivors = append(survivors, i)
		installsAtFail += c.Node(i).Snapshot().Stats.ReplicaInstalls
	}
	for i := range deadSet {
		c.KillServer(i)
	}

	// Measure from the survivors only (clients of a dead peer are a client-
	// side availability problem, not a routing one).
	liveDests := make([][]core.NodeID, len(survivors))
	for i, s := range survivors {
		liveDests[i] = afterDests[s]
	}
	after, total := driveLiveLookups(c, survivors, liveDests, p.timeout, p.attempts)
	time.Sleep(100 * time.Millisecond)
	c.StopAll() // quiesce so peer state can be read race-free

	recreated := int64(0)
	for _, s := range survivors {
		recreated += c.Node(s).Peer().Stats.ReplicaInstalls
	}
	recreated -= installsAtFail
	rate := 0.0
	if total > 0 {
		rate = float64(after) / float64(total)
	}
	return liveA3Row{before: before, after: after, rate: rate, recreated: recreated}
}

// driveLiveLookups issues each source's destination sequence concurrently
// (one goroutine per source, sequential within a source) and counts lookups
// that return OK within the per-attempt timeout and attempt budget.
func driveLiveLookups(c *overlay.LocalCluster, sources []int, dests [][]core.NodeID, timeout time.Duration, attempts int) (ok, total int64) {
	var okCtr, totalCtr atomic.Int64
	var wg sync.WaitGroup
	for i, src := range sources {
		wg.Add(1)
		go func(src int, seq []core.NodeID) {
			defer wg.Done()
			for _, dest := range seq {
				totalCtr.Add(1)
				for a := 0; a < attempts; a++ {
					ctx, cancel := context.WithTimeout(context.Background(), timeout)
					res, err := c.Lookup(ctx, src, dest)
					cancel()
					if err == nil && res.OK {
						okCtr.Add(1)
						break
					}
				}
			}
		}(src, dests[i])
	}
	wg.Wait()
	return okCtr.Load(), totalCtr.Load()
}
