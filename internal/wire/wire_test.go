package wire

import (
	"bytes"
	"reflect"
	"testing"

	"terradir/internal/bloom"
	"terradir/internal/core"
	"terradir/internal/telemetry"
)

func samplePiggy() core.Piggyback {
	f := bloom.NewForCapacity(8, 0.01)
	f.Add(core.NodeKey(3))
	f.Add(core.NodeKey(9))
	f.SetVersion(4)
	return core.Piggyback{
		From: 2,
		Load: 0.42,
		Adverts: []core.Advert{
			{Node: 5, Servers: []core.ServerID{1, 3}},
		},
		Digests: []core.DigestUpdate{{Server: 2, Digest: f}},
	}
}

func checkPiggy(t *testing.T, got, want core.Piggyback) {
	t.Helper()
	if got.From != want.From || got.Load != want.Load {
		t.Fatalf("piggy header: %+v vs %+v", got, want)
	}
	if !reflect.DeepEqual(got.Adverts, want.Adverts) {
		t.Fatalf("adverts: %+v vs %+v", got.Adverts, want.Adverts)
	}
	if len(got.Digests) != len(want.Digests) {
		t.Fatalf("digest count %d vs %d", len(got.Digests), len(want.Digests))
	}
	for i := range got.Digests {
		g, w := got.Digests[i], want.Digests[i]
		if g.Server != w.Server || g.Digest.Version() != w.Digest.Version() {
			t.Fatalf("digest %d metadata mismatch", i)
		}
		if !g.Digest.Test(core.NodeKey(3)) || !g.Digest.Test(core.NodeKey(9)) {
			t.Fatalf("digest %d lost members", i)
		}
	}
}

func roundTrip(t *testing.T, m core.Message) core.Message {
	t.Helper()
	data, err := Encode(m)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	out, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out
}

func TestQueryRoundTrip(t *testing.T) {
	q := &core.QueryMsg{
		QueryID:  42,
		Dest:     7,
		Source:   3,
		OnBehalf: 5,
		Hops:     2,
		Started:  1.25,
		PrevDist: 4,
		Path: []core.PathEntry{
			{Node: 1, Map: core.NodeMap{Servers: []core.ServerID{0, 2}, NumAdvertised: 1}},
			{Node: 9, Map: core.SingleServerMap(4)},
		},
		Piggy: samplePiggy(),
	}
	got := roundTrip(t, q).(*core.QueryMsg)
	if got.QueryID != q.QueryID || got.Dest != q.Dest || got.Source != q.Source ||
		got.OnBehalf != q.OnBehalf || got.Hops != q.Hops || got.Started != q.Started ||
		got.PrevDist != q.PrevDist {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !reflect.DeepEqual(got.Path, q.Path) {
		t.Fatalf("path mismatch: %+v vs %+v", got.Path, q.Path)
	}
	checkPiggy(t, got.Piggy, q.Piggy)
}

func TestResultRoundTrip(t *testing.T) {
	r := &core.ResultMsg{
		QueryID: 9,
		Dest:    11,
		OK:      true,
		Reason:  core.FailNone,
		Hops:    3,
		Started: 0.5,
		Meta:    core.Meta{Version: 2, Attrs: map[string]string{"k": "v"}},
		Map:     core.NodeMap{Servers: []core.ServerID{1, 5}, NumAdvertised: 1},
		Path:    []core.PathEntry{{Node: 11, Map: core.SingleServerMap(5)}},
		Piggy:   samplePiggy(),
	}
	got := roundTrip(t, r).(*core.ResultMsg)
	if got.QueryID != 9 || !got.OK || got.Hops != 3 || got.Meta.Attrs["k"] != "v" {
		t.Fatalf("result mismatch: %+v", got)
	}
	if !reflect.DeepEqual(got.Map, r.Map) {
		t.Fatalf("map mismatch: %+v", got.Map)
	}
}

func TestFailureResultRoundTrip(t *testing.T) {
	r := &core.ResultMsg{QueryID: 1, Dest: 2, OK: false, Reason: core.FailTTL, Hops: 64}
	got := roundTrip(t, r).(*core.ResultMsg)
	if got.OK || got.Reason != core.FailTTL {
		t.Fatalf("failure result mismatch: %+v", got)
	}
}

func TestControlRoundTrips(t *testing.T) {
	probe := &core.LoadProbeMsg{Session: 3, From: 1, Piggy: samplePiggy()}
	gp := roundTrip(t, probe).(*core.LoadProbeMsg)
	if gp.Session != 3 || gp.From != 1 {
		t.Fatalf("probe mismatch: %+v", gp)
	}
	checkPiggy(t, gp.Piggy, probe.Piggy)

	reply := &core.LoadProbeReply{Session: 3, From: 2, Load: 0.7}
	gr := roundTrip(t, reply).(*core.LoadProbeReply)
	if gr.Session != 3 || gr.From != 2 || gr.Load != 0.7 {
		t.Fatalf("probe reply mismatch: %+v", gr)
	}

	req := &core.ReplicateRequest{
		Session: 5,
		From:    1,
		Load:    0.9,
		Nodes: []core.ReplicaPayload{{
			Node:       4,
			Meta:       core.Meta{Version: 1},
			SelfMap:    core.SingleServerMap(1),
			WeightHint: 12.5,
			Neighbors:  []core.NeighborMap{{Node: 2, Map: core.SingleServerMap(0)}},
		}},
	}
	gq := roundTrip(t, req).(*core.ReplicateRequest)
	if gq.Session != 5 || gq.Load != 0.9 || len(gq.Nodes) != 1 {
		t.Fatalf("request mismatch: %+v", gq)
	}
	if gq.Nodes[0].WeightHint != 12.5 || len(gq.Nodes[0].Neighbors) != 1 {
		t.Fatalf("payload mismatch: %+v", gq.Nodes[0])
	}

	rep := &core.ReplicateReply{
		Session:  core.ServerSession{ID: 5, From: 2},
		Accepted: []core.NodeID{4},
		Load:     0.55,
	}
	gg := roundTrip(t, rep).(*core.ReplicateReply)
	if gg.Session.ID != 5 || gg.Session.From != 2 || len(gg.Accepted) != 1 || gg.Accepted[0] != 4 {
		t.Fatalf("reply mismatch: %+v", gg)
	}
}

func TestTraceFieldsRoundTrip(t *testing.T) {
	spans := []telemetry.Span{
		{Seq: 0, Server: 1, Node: 3, Reason: telemetry.HopChild, QueueWaitMicros: 12, ServiceMicros: 340},
		{Seq: 1, Server: 4, Node: 7, Reason: telemetry.HopCache, QueueWaitMicros: 5, ServiceMicros: 88},
	}
	q := &core.QueryMsg{
		QueryID:    8,
		Dest:       7,
		Source:     1,
		TraceID:    0xdeadbeefcafe,
		SpanBudget: 34,
		Spans:      spans,
		Enqueued:   99.5, // driver-local: must NOT survive the wire
		ServedAt:   99.6,
	}
	gq := roundTrip(t, q).(*core.QueryMsg)
	if gq.TraceID != q.TraceID || gq.SpanBudget != 34 {
		t.Fatalf("trace header mismatch: %+v", gq)
	}
	if !reflect.DeepEqual(gq.Spans, spans) {
		t.Fatalf("spans mismatch: %+v vs %+v", gq.Spans, spans)
	}
	if gq.Enqueued != 0 || gq.ServedAt != 0 {
		t.Fatalf("driver-local timestamps crossed the wire: %+v", gq)
	}

	r := &core.ResultMsg{QueryID: 8, Dest: 7, OK: true, Hops: 1, TraceID: q.TraceID, Spans: spans}
	gr := roundTrip(t, r).(*core.ResultMsg)
	if gr.TraceID != q.TraceID || !reflect.DeepEqual(gr.Spans, spans) {
		t.Fatalf("result trace mismatch: %+v", gr)
	}

	ts := &core.TraceSpanMsg{TraceID: q.TraceID, Span: spans[1], Piggy: samplePiggy()}
	gt := roundTrip(t, ts).(*core.TraceSpanMsg)
	if gt.TraceID != q.TraceID || gt.Span != spans[1] {
		t.Fatalf("trace-span mismatch: %+v", gt)
	}
	checkPiggy(t, gt.Piggy, ts.Piggy)
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := Decode([]byte{99, 0, 0}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := Decode([]byte{1, 0xff}); err == nil {
		t.Fatal("garbage gob accepted")
	}
	// Corrupt digest payload inside an otherwise valid message.
	q := &core.QueryMsg{QueryID: 1, Piggy: samplePiggy()}
	data, err := Encode(q)
	if err != nil {
		t.Fatal(err)
	}
	_ = data // valid baseline decodes fine
	if _, err := Decode(data); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeUnknownType(t *testing.T) {
	if _, err := Encode(nil); err == nil {
		t.Fatal("nil message accepted")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello frames")
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, []byte{1}); err != nil {
		t.Fatal(err)
	}
	got1, err := ReadFrame(&buf)
	if err != nil || string(got1) != "hello frames" {
		t.Fatalf("frame 1: %q %v", got1, err)
	}
	got2, err := ReadFrame(&buf)
	if err != nil || len(got2) != 1 || got2[0] != 1 {
		t.Fatalf("frame 2: %v %v", got2, err)
	}
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("read from empty buffer succeeded")
	}
}

func TestFrameBounds(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, MaxFrame+1)); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// Zero-length header.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 0})
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("zero-length frame accepted")
	}
	// Huge advertised length.
	buf.Reset()
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("oversized frame header accepted")
	}
	// Truncated body.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 10, 1, 2})
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestEncodedMessageThroughFrames(t *testing.T) {
	q := &core.QueryMsg{QueryID: 7, Dest: 3, Source: 1, Piggy: samplePiggy()}
	data, err := Encode(q)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, data); err != nil {
		t.Fatal(err)
	}
	frame, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if m.(*core.QueryMsg).QueryID != 7 {
		t.Fatal("query lost through framing")
	}
}

func TestDataMessagesRoundTrip(t *testing.T) {
	req := &core.DataRequest{ReqID: 11, Node: 4, From: 2, Piggy: samplePiggy()}
	gq := roundTrip(t, req).(*core.DataRequest)
	if gq.ReqID != 11 || gq.Node != 4 || gq.From != 2 {
		t.Fatalf("data request mismatch: %+v", gq)
	}
	rep := &core.DataReply{ReqID: 11, Node: 4, OK: true, Data: []byte{1, 2, 3}, From: 5}
	gr := roundTrip(t, rep).(*core.DataReply)
	if gr.ReqID != 11 || !gr.OK || string(gr.Data) != "\x01\x02\x03" || gr.From != 5 {
		t.Fatalf("data reply mismatch: %+v", gr)
	}
	miss := &core.DataReply{ReqID: 12, Node: 4, OK: false, From: 5}
	gm := roundTrip(t, miss).(*core.DataReply)
	if gm.OK || gm.Data != nil {
		t.Fatalf("negative data reply mismatch: %+v", gm)
	}
}

func TestMembershipRoundTrip(t *testing.T) {
	m := &core.MembershipMsg{
		Kind:   core.MembershipAck,
		Seq:    77,
		From:   3,
		Target: 9,
		Updates: []core.MemberUpdate{
			{Server: 1, State: 0, Incarnation: 4, Addr: "10.0.0.1:7100"},
			{Server: 2, State: 2, Incarnation: 0},
		},
	}
	got := roundTrip(t, m).(*core.MembershipMsg)
	if got.Kind != m.Kind || got.Seq != m.Seq || got.From != m.From || got.Target != m.Target {
		t.Fatalf("membership header mismatch: %+v", got)
	}
	if !reflect.DeepEqual(got.Updates, m.Updates) {
		t.Fatalf("updates mismatch: %+v vs %+v", got.Updates, m.Updates)
	}

	w := &core.MembershipMsg{
		Kind: core.MembershipWarmup,
		From: 5,
		Warmup: []core.PathEntry{
			{Node: 2, Map: core.NodeMap{Servers: []core.ServerID{5, 1}, NumAdvertised: 1}},
			{Node: 8, Map: core.SingleServerMap(5)},
		},
	}
	gw := roundTrip(t, w).(*core.MembershipMsg)
	if gw.Kind != core.MembershipWarmup || !reflect.DeepEqual(gw.Warmup, w.Warmup) {
		t.Fatalf("warmup mismatch: %+v vs %+v", gw, w)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	h := &core.HelloMsg{ID: core.ClientID(3), Role: core.RoleClient}
	got := roundTrip(t, h).(*core.HelloMsg)
	if got.ID != h.ID || got.Role != h.Role {
		t.Fatalf("hello mismatch: got %+v want %+v", got, h)
	}
	if !core.IsClient(got.ID) {
		t.Fatalf("ClientID(3)=%d not in client range", got.ID)
	}
}
