package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// FrameBufSize is the refill window of a FrameReader: one read(2) can pull in
// up to this many bytes, so under a coalescing sender (256KiB write batches)
// one syscall yields many frames. Frames up to FrameBufSize-4 bytes are
// sliced out of the window zero-copy; larger ones fall back to a pooled spill
// buffer.
const FrameBufSize = 256 << 10

var (
	frameBufPool = sync.Pool{New: func() any {
		b := make([]byte, FrameBufSize)
		return &b
	}}
	spillPool = sync.Pool{New: func() any {
		b := make([]byte, 0, MaxFrame)
		return &b
	}}
)

// FrameReader reads length-prefixed message frames (the ReadFrame format,
// unchanged on the wire) through a large pooled buffer, replacing ReadFrame's
// two read(2) calls and one allocation per frame with one read per buffer
// refill and zero allocations in the steady state.
//
// The slice returned by Next aliases the reader's internal buffer and is
// valid only until the following Next or Release call — that implicit
// handback is the recycle hook: the caller decodes the frame (wire.Decode
// copies everything it retains) and the buffer is reused for subsequent
// frames instead of going to the garbage collector. Release returns the
// pooled buffers; the reader is unusable afterwards.
//
// Error classification is byte-for-byte identical to ReadFrame's (proven by
// FuzzFrameReader): io.EOF cleanly between frames, io.ErrUnexpectedEOF on a
// torn header or body, ErrFrameSize on a hostile length prefix, and any
// other underlying read error verbatim. Errors are sticky.
type FrameReader struct {
	r     io.Reader
	buf   []byte // refill window; frames are sliced from it zero-copy
	start int    // first unconsumed byte in buf
	end   int    // one past the last valid byte in buf
	spill []byte // fallback for frames larger than the window
	err   error  // sticky underlying read error (io.EOF, net errors, ...)

	reads  uint64 // underlying Read calls issued
	frames uint64 // frames returned by Next

	pooled   bool
	released bool
}

// NewFrameReader returns a FrameReader over r using a pooled FrameBufSize
// window. Call Release when done with the stream.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r, buf: *frameBufPool.Get().(*[]byte), pooled: true}
}

// newFrameReaderSize is the test hook: a tiny window exercises the refill,
// compaction and spill paths on small inputs.
func newFrameReaderSize(r io.Reader, size int) *FrameReader {
	if size < 5 {
		size = 5
	}
	return &FrameReader{r: r, buf: make([]byte, size)}
}

// refill issues one underlying Read into the free tail of the window,
// compacting the unconsumed bytes to the front first if the tail is full.
func (fr *FrameReader) refill() {
	if fr.end == len(fr.buf) {
		copy(fr.buf, fr.buf[fr.start:fr.end])
		fr.end -= fr.start
		fr.start = 0
	}
	n, err := fr.r.Read(fr.buf[fr.end:])
	fr.reads++
	fr.end += n
	if err != nil {
		fr.err = err
	}
}

// eofErr maps the sticky underlying error to ReadFrame's io.ReadFull
// classification given how many bytes of the current unit (header or body)
// were consumed when the stream ended: 0 bytes → the error as-is (io.EOF
// between frames), partial → io.ErrUnexpectedEOF for EOF, other errors
// verbatim.
func (fr *FrameReader) eofErr(got int) error {
	if got > 0 && fr.err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return fr.err
}

// Next returns the next frame payload. The slice is valid only until the
// following Next or Release call.
func (fr *FrameReader) Next() ([]byte, error) {
	if fr.released {
		return nil, errors.New("wire: frame reader released")
	}
	for fr.end-fr.start < 4 {
		if fr.err != nil {
			return nil, fr.eofErr(fr.end - fr.start)
		}
		fr.refill()
	}
	n := int(binary.BigEndian.Uint32(fr.buf[fr.start:]))
	if n == 0 || n > MaxFrame {
		fr.start += 4
		return nil, fmt.Errorf("%w: invalid frame length %d", ErrFrameSize, n)
	}
	total := 4 + n
	if total <= len(fr.buf) {
		for fr.end-fr.start < total {
			if fr.err != nil {
				return nil, fr.eofErr(fr.end - fr.start - 4)
			}
			fr.refill()
		}
		frame := fr.buf[fr.start+4 : fr.start+total]
		fr.start += total
		fr.frames++
		return frame, nil
	}
	// The frame is larger than the window: assemble it in the spill buffer.
	// Everything buffered belongs to this frame (total > len(buf) ≥ end-start).
	if cap(fr.spill) < n {
		if fr.pooled && fr.spill == nil {
			fr.spill = *spillPool.Get().(*[]byte)
		}
		if cap(fr.spill) < n {
			fr.spill = make([]byte, 0, n)
		}
	}
	body := fr.spill[:n]
	got := copy(body, fr.buf[fr.start+4:fr.end])
	fr.start, fr.end = 0, 0
	for got < n {
		if fr.err != nil {
			return nil, fr.eofErr(got)
		}
		nn, err := fr.r.Read(body[got:])
		fr.reads++
		got += nn
		if err != nil {
			fr.err = err
		}
	}
	fr.frames++
	return body, nil
}

// Pending reports whether Next can return a frame (or a determinable framing
// error) from already-buffered bytes without touching the underlying reader.
// The batching read loop uses it to drain every buffered frame into one
// delivery batch and block only when the buffer is dry.
func (fr *FrameReader) Pending() bool {
	avail := fr.end - fr.start
	if avail < 4 {
		return false
	}
	n := int(binary.BigEndian.Uint32(fr.buf[fr.start:]))
	if n == 0 || n > MaxFrame {
		return true // Next returns ErrFrameSize without reading
	}
	return avail >= 4+n
}

// Stats returns the cumulative underlying Read calls and frames produced —
// the transport derives its frames-per-read histogram from deltas of these.
func (fr *FrameReader) Stats() (reads, frames uint64) {
	return fr.reads, fr.frames
}

// Release returns the pooled buffers. Frames previously returned by Next are
// invalid afterwards, and further Next calls fail.
func (fr *FrameReader) Release() {
	if fr.released {
		return
	}
	fr.released = true
	if fr.pooled {
		if fr.buf != nil {
			buf := fr.buf[:FrameBufSize]
			frameBufPool.Put(&buf)
		}
		if fr.spill != nil {
			spill := fr.spill[:0]
			spillPool.Put(&spill)
		}
	}
	fr.buf, fr.spill = nil, nil
}
