package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"terradir/internal/core"
)

// TestReadFrameAdversarial feeds ReadFrame hostile and truncated inputs and
// asserts both that each is rejected and that it is rejected with the right
// error class — transports route ErrFrameSize to the corrupt-frame counter
// and I/O errors to the connection-error counter.
func TestReadFrameAdversarial(t *testing.T) {
	cases := []struct {
		name      string
		input     []byte
		frameSize bool // want errors.Is(err, ErrFrameSize)
	}{
		{"empty stream", nil, false},
		{"truncated length prefix (1 byte)", []byte{0x00}, false},
		{"truncated length prefix (3 bytes)", []byte{0x00, 0x00, 0x01}, false},
		{"zero-length frame", []byte{0, 0, 0, 0}, true},
		{"length one past MaxFrame", lenPrefix(MaxFrame + 1), true},
		{"maximum uint32 length", []byte{0xff, 0xff, 0xff, 0xff}, true},
		{"truncated body (header says 10, 2 present)", append(lenPrefix(10), 1, 2), false},
		{"truncated body (one byte short)", append(lenPrefix(4), 1, 2, 3), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadFrame(bytes.NewReader(tc.input))
			if err == nil {
				t.Fatal("adversarial frame accepted")
			}
			if got := errors.Is(err, ErrFrameSize); got != tc.frameSize {
				t.Fatalf("errors.Is(err, ErrFrameSize) = %v, want %v (err: %v)", got, tc.frameSize, err)
			}
			if !tc.frameSize {
				// Truncations must surface as I/O errors, so transports can
				// distinguish a dead connection from hostile framing.
				if err != io.EOF && !errors.Is(err, io.ErrUnexpectedEOF) {
					t.Fatalf("truncation produced unexpected error class: %v", err)
				}
			}
		})
	}
}

func lenPrefix(n uint32) []byte {
	return []byte{byte(n >> 24), byte(n >> 16), byte(n >> 8), byte(n)}
}

func TestWriteFrameOversized(t *testing.T) {
	var buf bytes.Buffer
	err := WriteFrame(&buf, make([]byte, MaxFrame+1))
	if err == nil {
		t.Fatal("oversized frame accepted")
	}
	if !errors.Is(err, ErrFrameSize) {
		t.Fatalf("oversized write error is not ErrFrameSize: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("oversized write leaked %d bytes onto the stream", buf.Len())
	}
	// Exactly MaxFrame is legal.
	if err := WriteFrame(&buf, make([]byte, MaxFrame)); err != nil {
		t.Fatalf("MaxFrame-sized frame rejected: %v", err)
	}
	got, err := ReadFrame(&buf)
	if err != nil || len(got) != MaxFrame {
		t.Fatalf("MaxFrame roundtrip: %d bytes, %v", len(got), err)
	}
}

// TestDecodeCorruptPayloadKinds runs every message kind's decoder against a
// garbage gob payload: all must error, none may panic.
func TestDecodeCorruptPayloadKinds(t *testing.T) {
	for kind := byte(1); kind <= 8; kind++ {
		payload := append([]byte{kind}, 0xde, 0xad, 0xbe, 0xef, 0x01)
		if _, err := Decode(payload); err == nil {
			t.Fatalf("kind %d: corrupt gob accepted", kind)
		}
	}
}

// TestFrameThenGarbageStream verifies a reader recovers a valid leading
// frame and then cleanly rejects trailing garbage.
func TestFrameThenGarbageStream(t *testing.T) {
	var buf bytes.Buffer
	data, err := Encode(&core.LoadProbeMsg{Session: 5, From: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, data); err != nil {
		t.Fatal(err)
	}
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0x00})
	frame, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m, err := Decode(frame); err != nil {
		t.Fatal(err)
	} else if m.(*core.LoadProbeMsg).Session != 5 {
		t.Fatal("leading frame corrupted")
	}
	if _, err := ReadFrame(&buf); !errors.Is(err, ErrFrameSize) {
		t.Fatalf("trailing garbage not rejected as ErrFrameSize: %v", err)
	}
}
