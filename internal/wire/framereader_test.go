package wire

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
)

// framesVia drains a stream with the given next function, returning a copy of
// every frame plus the terminating error.
func framesVia(next func() ([]byte, error)) ([][]byte, error) {
	var out [][]byte
	for {
		frame, err := next()
		if err != nil {
			return out, err
		}
		out = append(out, append([]byte(nil), frame...))
	}
}

// assertSameFrames is the differential oracle: FrameReader over any input
// must yield byte-identical frames and the identical terminating error as
// ReadFrame does.
func assertSameFrames(t *testing.T, data []byte, window int) {
	t.Helper()
	r1 := bytes.NewReader(data)
	want, wantErr := framesVia(func() ([]byte, error) { return ReadFrame(r1) })
	fr := newFrameReaderSize(bytes.NewReader(data), window)
	got, gotErr := framesVia(fr.Next)
	if len(got) != len(want) {
		t.Fatalf("window %d: FrameReader yielded %d frames, ReadFrame %d", window, len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("window %d: frame %d differs: %x vs %x", window, i, got[i], want[i])
		}
	}
	if gotErr.Error() != wantErr.Error() {
		t.Fatalf("window %d: terminating error %q, ReadFrame %q", window, gotErr, wantErr)
	}
	for _, sentinel := range []error{ErrFrameSize, io.ErrUnexpectedEOF} {
		if errors.Is(gotErr, sentinel) != errors.Is(wantErr, sentinel) {
			t.Fatalf("window %d: error class mismatch for %v: %v vs %v", window, sentinel, gotErr, wantErr)
		}
	}
	if (gotErr == io.EOF) != (wantErr == io.EOF) {
		t.Fatalf("window %d: io.EOF mismatch: %v vs %v", window, gotErr, wantErr)
	}
}

func frameStream(t testing.TB, payloads ...[]byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestFrameReaderAdversarial mirrors TestReadFrameAdversarial: every hostile
// or truncated input classifies identically through the buffered reader, at
// window sizes that force the refill, compaction and spill paths.
func TestFrameReaderAdversarial(t *testing.T) {
	big := make([]byte, 3000)
	for i := range big {
		big[i] = byte(i)
	}
	cases := [][]byte{
		nil,
		{0x00},
		{0x00, 0x00, 0x01},
		{0, 0, 0, 0},
		lenPrefix(MaxFrame + 1),
		{0xff, 0xff, 0xff, 0xff},
		append(lenPrefix(10), 1, 2),
		append(lenPrefix(4), 1, 2, 3),
		frameStream(t, []byte("hello"), []byte("world")),
		append(frameStream(t, []byte("hello")), 0xff, 0xff, 0xff, 0xff, 0x00),
		frameStream(t, big, []byte("tail"), big),
		append(frameStream(t, big), lenPrefix(uint32(len(big)))...), // torn spill body
		append(frameStream(t, big, big), 0, 0, 0, 0),
	}
	for i, data := range cases {
		for _, window := range []int{5, 7, 64, 4096} {
			t.Run(fmt.Sprintf("case-%d-window-%d", i, window), func(t *testing.T) {
				assertSameFrames(t, data, window)
			})
		}
	}
}

// TestFrameReaderPooledSpill pushes frames larger than the pooled window
// through NewFrameReader: the spill path must hand back intact frames and the
// stream must keep going afterwards.
func TestFrameReaderPooledSpill(t *testing.T) {
	big := make([]byte, FrameBufSize+1234)
	for i := range big {
		big[i] = byte(i * 7)
	}
	data := frameStream(t, []byte("pre"), big, []byte("post"))
	fr := NewFrameReader(bytes.NewReader(data))
	defer fr.Release()
	for i, want := range [][]byte{[]byte("pre"), big, []byte("post")} {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: %d bytes, want %d", i, len(got), len(want))
		}
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("stream end: %v, want io.EOF", err)
	}
	reads, frames := fr.Stats()
	if frames != 3 {
		t.Fatalf("frames = %d, want 3", frames)
	}
	if reads == 0 {
		t.Fatal("no reads recorded")
	}
}

// TestFrameReaderPending: after one blocking Next, every frame the refill
// pulled in is reported Pending and drains without further reads.
func TestFrameReaderPending(t *testing.T) {
	data := frameStream(t, []byte("a"), []byte("bb"), []byte("ccc"))
	fr := NewFrameReader(bytes.NewReader(data))
	defer fr.Release()
	if fr.Pending() {
		t.Fatal("fresh reader reports pending frames")
	}
	if _, err := fr.Next(); err != nil {
		t.Fatal(err)
	}
	readsAfterFirst, _ := fr.Stats()
	for i := 0; i < 2; i++ {
		if !fr.Pending() {
			t.Fatalf("frame %d buffered but not pending", i+2)
		}
		if _, err := fr.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if fr.Pending() {
		t.Fatal("drained reader reports pending frames")
	}
	reads, frames := fr.Stats()
	if reads != readsAfterFirst {
		t.Fatalf("draining buffered frames issued reads: %d -> %d", readsAfterFirst, reads)
	}
	if frames != 3 {
		t.Fatalf("frames = %d, want 3", frames)
	}
	// A hostile buffered length prefix is pending too: Next must surface
	// ErrFrameSize without touching the reader.
	fr2 := newFrameReaderSize(bytes.NewReader(append(frameStream(t, []byte("x")), 0, 0, 0, 0)), 64)
	if _, err := fr2.Next(); err != nil {
		t.Fatal(err)
	}
	if !fr2.Pending() {
		t.Fatal("buffered zero-length prefix not pending")
	}
	if _, err := fr2.Next(); !errors.Is(err, ErrFrameSize) {
		t.Fatalf("buffered hostile length: %v, want ErrFrameSize", err)
	}
}

// TestFrameReaderRelease: a released reader refuses further reads and double
// release is harmless.
func TestFrameReaderRelease(t *testing.T) {
	fr := NewFrameReader(bytes.NewReader(frameStream(t, []byte("x"))))
	if _, err := fr.Next(); err != nil {
		t.Fatal(err)
	}
	fr.Release()
	fr.Release()
	if _, err := fr.Next(); err == nil {
		t.Fatal("released reader served a frame")
	}
}

// errAfterReader yields its payload then a non-EOF error, checking that
// underlying I/O errors pass through verbatim like ReadFrame's io.ReadFull.
type errAfterReader struct {
	data []byte
	err  error
}

func (r *errAfterReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

func TestFrameReaderPassesThroughIOErrors(t *testing.T) {
	sentinel := errors.New("conn reset by test")
	for _, prefix := range [][]byte{nil, {0, 0}, lenPrefix(8), append(lenPrefix(8), 1, 2, 3)} {
		fr := newFrameReaderSize(&errAfterReader{data: prefix, err: sentinel}, 64)
		if _, err := fr.Next(); err != sentinel {
			t.Fatalf("prefix %x: error %v, want sentinel passthrough", prefix, err)
		}
	}
}
