package wire

import (
	"testing"

	"terradir/internal/bloom"
	"terradir/internal/core"
	"terradir/internal/telemetry"
)

// benchQuery builds a representative mid-route query: a few path entries, a
// trace span, and a piggyback rider carrying an advert and a digest — the
// shape the overlay actually puts on the wire per hop.
func benchQuery() *core.QueryMsg {
	return &core.QueryMsg{
		QueryID:  0xfeedface,
		Dest:     731,
		Source:   3,
		OnBehalf: 12,
		Hops:     4,
		Started:  1.25,
		PrevDist: 6,
		Path: []core.PathEntry{
			{Node: 1, Map: core.NodeMap{Servers: []core.ServerID{0, 2, 5}, NumAdvertised: 2}},
			{Node: 9, Map: core.SingleServerMap(4)},
			{Node: 40, Map: core.NodeMap{Servers: []core.ServerID{1, 7}, NumAdvertised: 1}},
		},
		TraceID:    0xdeadbeef,
		SpanBudget: 30,
		Spans: []telemetry.Span{
			{Seq: 0, Server: 3, Node: 12, Reason: telemetry.HopChild, QueueWaitMicros: 11, ServiceMicros: 95},
		},
		Piggy: samplePiggy(),
	}
}

func benchResult() *core.ResultMsg {
	return &core.ResultMsg{
		QueryID: 0xfeedface,
		Dest:    731,
		OK:      true,
		Hops:    5,
		Started: 1.25,
		Meta:    core.Meta{Version: 3, Attrs: map[string]string{"owner": "svc-a", "zone": "eu"}},
		Map:     core.NodeMap{Servers: []core.ServerID{2, 5, 7}, NumAdvertised: 2},
		Path: []core.PathEntry{
			{Node: 1, Map: core.NodeMap{Servers: []core.ServerID{0, 2}, NumAdvertised: 1}},
			{Node: 731, Map: core.SingleServerMap(5)},
		},
		TraceID: 0xdeadbeef,
		Spans: []telemetry.Span{
			{Seq: 0, Server: 3, Node: 12, Reason: telemetry.HopChild, QueueWaitMicros: 11, ServiceMicros: 95},
			{Seq: 1, Server: 5, Node: 731, Reason: telemetry.HopResolve, QueueWaitMicros: 2, ServiceMicros: 40},
		},
		Piggy: samplePiggy(),
	}
}

func BenchmarkWireEncode(b *testing.B) {
	msgs := map[string]core.Message{
		"query":  benchQuery(),
		"result": benchResult(),
	}
	for name, m := range msgs {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Encode(m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkWireDecode(b *testing.B) {
	msgs := map[string]core.Message{
		"query":  benchQuery(),
		"result": benchResult(),
	}
	for name, m := range msgs {
		data, err := Encode(m)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Decode(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBloomDigestEncode measures serializing a realistic hosted-set
// digest (64 names at 1% FP), the dominant payload inside piggyback riders.
func BenchmarkBloomDigestEncode(b *testing.B) {
	f := bloom.NewForCapacity(64, 0.01)
	for i := uint64(0); i < 64; i++ {
		f.Add(bloom.HashString("/bench/node") + i*0x9e3779b9)
	}
	f.SetVersion(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := f.Marshal()
		if len(buf) < 32 {
			b.Fatal("short digest")
		}
	}
}
