package wire

import (
	"bytes"
	"encoding/gob"
	"errors"
	"testing"

	"terradir/internal/core"
)

// legacyGobFrame builds a wire-version-3 frame exactly as the gob-era
// encoder did: a leading kind tag followed by a gob-encoded mirror struct.
// The mirror type here reproduces the v3 wireQuery layout.
func legacyGobFrame(t testing.TB) []byte {
	t.Helper()
	type legacyQuery struct {
		QueryID  uint64
		Dest     int32
		Source   int32
		OnBehalf int32
		Hops     int32
		Started  float64
		PrevDist int32
		Path     []core.PathEntry
	}
	var buf bytes.Buffer
	buf.WriteByte(1) // kindQuery in every wire version
	if err := gob.NewEncoder(&buf).Encode(legacyQuery{
		QueryID: 42, Dest: 7, Source: 3, Hops: 2, Started: 1.5,
		Path: []core.PathEntry{{Node: 1, Map: core.SingleServerMap(2)}},
	}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLegacyFrameRejectedAsErrVersion asserts a v3 gob frame is classified
// as a version mismatch — not corruption, and never a panic — so transports
// can report "peer speaks an old protocol" distinctly.
func TestLegacyFrameRejectedAsErrVersion(t *testing.T) {
	if _, err := Decode(legacyGobFrame(t)); !errors.Is(err, ErrVersion) {
		t.Fatalf("legacy gob frame not classified as ErrVersion: %v", err)
	}
	// Every legacy kind tag (1..10) classifies the same way, payload or not.
	for kind := byte(1); kind <= 10; kind++ {
		if _, err := Decode([]byte{kind, 0xde, 0xad}); !errors.Is(err, ErrVersion) {
			t.Fatalf("legacy kind %d: want ErrVersion, got %v", kind, err)
		}
	}
	// A first byte outside both the legacy kind range and Magic is plain
	// corruption, not a version mismatch.
	if _, err := Decode([]byte{0x7f, 0, 0}); err == nil || errors.Is(err, ErrVersion) {
		t.Fatalf("corrupt marker misclassified: %v", err)
	}
}

// TestVersionFrameLeadsWithMagic pins the v4 self-identification invariant
// the legacy classification depends on.
func TestVersionFrameLeadsWithMagic(t *testing.T) {
	data, err := Encode(&core.LoadProbeMsg{Session: 1, From: 2})
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != Magic {
		t.Fatalf("v4 frame leads with 0x%02x, want Magic 0x%02x", data[0], Magic)
	}
	if Magic >= 1 && Magic <= 10 {
		t.Fatal("Magic collides with the legacy kind range")
	}
}
