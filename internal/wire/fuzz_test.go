package wire

import (
	"testing"

	"terradir/internal/core"
)

// FuzzDecode asserts that arbitrary bytes never panic the message decoder —
// a TCP peer must survive any frame a broken or hostile peer sends.
func FuzzDecode(f *testing.F) {
	// Seed with every valid message kind plus junk.
	seeds := []core.Message{
		&core.QueryMsg{QueryID: 1, Dest: 2, Source: 3, Piggy: samplePiggy()},
		&core.ResultMsg{QueryID: 1, OK: true, Map: core.SingleServerMap(2)},
		&core.LoadProbeMsg{Session: 1, From: 2},
		&core.LoadProbeReply{Session: 1, From: 2, Load: 0.5},
		&core.ReplicateRequest{Session: 1, From: 2, Nodes: []core.ReplicaPayload{{Node: 3}}},
		&core.ReplicateReply{Session: core.ServerSession{ID: 1, From: 2}},
		&core.DataRequest{ReqID: 1, Node: 2, From: 3},
		&core.DataReply{ReqID: 1, Node: 2, OK: true, Data: []byte{1}},
	}
	for _, m := range seeds {
		data, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data)
		if err == nil && msg == nil {
			t.Fatal("nil message without error")
		}
		// Round-trip property: a successfully decoded message re-encodes.
		if err == nil {
			if _, err2 := Encode(msg); err2 != nil {
				t.Fatalf("decoded message failed to re-encode: %v", err2)
			}
		}
	})
}
