package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"terradir/internal/core"
	"terradir/internal/telemetry"
)

// FuzzDecode asserts that arbitrary bytes never panic the message decoder —
// a TCP peer must survive any frame a broken or hostile peer sends.
func FuzzDecode(f *testing.F) {
	// Seed with every valid message kind plus junk.
	seeds := []core.Message{
		&core.QueryMsg{QueryID: 1, Dest: 2, Source: 3, Piggy: samplePiggy()},
		&core.ResultMsg{QueryID: 1, OK: true, Map: core.SingleServerMap(2)},
		&core.LoadProbeMsg{Session: 1, From: 2},
		&core.LoadProbeReply{Session: 1, From: 2, Load: 0.5},
		&core.ReplicateRequest{Session: 1, From: 2, Nodes: []core.ReplicaPayload{{Node: 3}}},
		&core.ReplicateReply{Session: core.ServerSession{ID: 1, From: 2}},
		&core.DataRequest{ReqID: 1, Node: 2, From: 3},
		&core.DataReply{ReqID: 1, Node: 2, OK: true, Data: []byte{1}},
		&core.TraceSpanMsg{TraceID: 7, Piggy: samplePiggy(),
			Span: telemetry.Span{Seq: 1, Server: 2, Node: 3, ServiceMicros: 40}},
		&core.MembershipMsg{Kind: core.MembershipPing, Seq: 9, From: 1, Target: 2,
			Updates: []core.MemberUpdate{{Server: 2, State: 1, Incarnation: 3, Addr: "h:1"}}},
		&core.MembershipMsg{Kind: core.MembershipWarmup, From: 1,
			Warmup: []core.PathEntry{{Node: 4, Map: core.SingleServerMap(1)}}},
	}
	for _, m := range seeds {
		data, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})
	// Legacy (wire ≤3) gob frame: must classify as ErrVersion, never panic.
	f.Add(legacyGobFrame(f))
	// Magic byte with truncated payloads.
	f.Add([]byte{Magic})
	f.Add([]byte{Magic, 1})
	f.Add([]byte{Magic, 2, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data)
		if err == nil && msg == nil {
			t.Fatal("nil message without error")
		}
		// Round-trip property: a successfully decoded message re-encodes.
		if err == nil {
			if _, err2 := Encode(msg); err2 != nil {
				t.Fatalf("decoded message failed to re-encode: %v", err2)
			}
		}
	})
}

// FuzzReadFrame asserts the frame reader never panics or over-allocates on an
// arbitrary byte stream (truncated headers, hostile lengths, trailing junk).
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("hello")); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			payload, err := ReadFrame(r)
			if err != nil {
				return
			}
			if len(payload) > MaxFrame {
				t.Fatalf("frame of %d bytes exceeds MaxFrame", len(payload))
			}
		}
	})
}

// FuzzFrameReader is the differential target proving the batched FrameReader
// is a reader-side optimization only: on arbitrary input — torn headers,
// hostile lengths, multi-frame streams — it must yield byte-identical frame
// sequences and the identical terminating error classification as ReadFrame,
// at window sizes that force the refill, compaction and spill paths.
func FuzzFrameReader(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("hello")); err != nil {
		f.Fatal(err)
	}
	WriteFrame(&buf, []byte("world"))
	f.Add(buf.Bytes(), uint16(64))
	// The adversarial corpus from TestReadFrameAdversarial.
	f.Add([]byte{}, uint16(5))
	f.Add([]byte{0x00}, uint16(5))
	f.Add([]byte{0x00, 0x00, 0x01}, uint16(9))
	f.Add([]byte{0, 0, 0, 0}, uint16(16))
	f.Add(lenPrefix(MaxFrame+1), uint16(5))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}, uint16(7))
	f.Add(append(lenPrefix(10), 1, 2), uint16(6))
	f.Add(append(lenPrefix(4), 1, 2, 3), uint16(32))
	f.Fuzz(func(t *testing.T, data []byte, window uint16) {
		r1 := bytes.NewReader(data)
		r2 := newFrameReaderSize(bytes.NewReader(data), int(window))
		for {
			want, wantErr := ReadFrame(r1)
			got, gotErr := r2.Next()
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("error divergence: ReadFrame %v, FrameReader %v", wantErr, gotErr)
			}
			if wantErr != nil {
				if gotErr.Error() != wantErr.Error() {
					t.Fatalf("error text divergence: %q vs %q", gotErr, wantErr)
				}
				if errors.Is(gotErr, ErrFrameSize) != errors.Is(wantErr, ErrFrameSize) ||
					errors.Is(gotErr, io.ErrUnexpectedEOF) != errors.Is(wantErr, io.ErrUnexpectedEOF) ||
					(gotErr == io.EOF) != (wantErr == io.EOF) {
					t.Fatalf("error class divergence: %v vs %v", gotErr, wantErr)
				}
				return
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("frame divergence: %d vs %d bytes", len(got), len(want))
			}
		}
	})
}
