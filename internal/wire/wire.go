// Package wire serializes TerraDir protocol messages for real transports
// (the TCP overlay). Messages are encoded as a one-byte kind tag followed by
// a gob-encoded mirror struct; Bloom digests travel in their compact binary
// form (bloom.Marshal). The mirror types exist because the core message
// structs embed an interface and a filter with unexported fields, neither of
// which gob can roundtrip directly.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"terradir/internal/bloom"
	"terradir/internal/core"
	"terradir/internal/telemetry"
)

// Version is the wire protocol version. Version 2 added per-lookup trace
// fields to query/result frames and the trace-span message kind; version-1
// frames decode fine (gob tolerates absent fields), but version-1 decoders
// reject kindTraceSpan frames, so mixed deployments must not enable tracing.
// Version 3 added the membership frame kind (gossip failure detection and
// join/leave); version-2 decoders likewise reject it, so mixed deployments
// must not enable the membership subsystem.
const Version = 3

// Message kind tags.
const (
	kindQuery byte = iota + 1
	kindResult
	kindLoadProbe
	kindLoadProbeReply
	kindReplicateReq
	kindReplicateReply
	kindDataRequest
	kindDataReply
	kindTraceSpan  // wire version 2
	kindMembership // wire version 3
)

// MaxFrame bounds accepted frame sizes (1 MiB) to protect against corrupt or
// hostile length prefixes.
const MaxFrame = 1 << 20

// ErrFrameSize reports a frame length outside (0, MaxFrame]: an oversized
// outgoing message, or a corrupt/hostile incoming length prefix. Detect it
// with errors.Is; transports use it to classify read failures as corruption
// rather than connection errors.
var ErrFrameSize = errors.New("wire: frame size out of range")

type wirePiggy struct {
	From    int32
	Load    float64
	Adverts []core.Advert
	Digests []wireDigest
}

type wireDigest struct {
	Server int32
	Data   []byte
}

type wireQuery struct {
	QueryID    uint64
	Dest       int32
	Source     int32
	OnBehalf   int32
	Hops       int32
	Started    float64
	PrevDist   int32
	Path       []core.PathEntry
	TraceID    uint64
	SpanBudget int32
	Spans      []telemetry.Span
	Piggy      wirePiggy
}

type wireResult struct {
	QueryID uint64
	Dest    int32
	OK      bool
	Reason  uint8
	Hops    int32
	Started float64
	Meta    core.Meta
	Map     core.NodeMap
	Path    []core.PathEntry
	TraceID uint64
	Spans   []telemetry.Span
	Piggy   wirePiggy
}

type wireTraceSpan struct {
	TraceID uint64
	Span    telemetry.Span
	Piggy   wirePiggy
}

type wireLoadProbe struct {
	Session uint64
	From    int32
	Piggy   wirePiggy
}

type wireLoadProbeReply struct {
	Session uint64
	From    int32
	Load    float64
	Piggy   wirePiggy
}

type wireReplicateReq struct {
	Session uint64
	From    int32
	Load    float64
	Nodes   []core.ReplicaPayload
	Piggy   wirePiggy
}

type wireDataRequest struct {
	ReqID uint64
	Node  int32
	From  int32
	Piggy wirePiggy
}

type wireDataReply struct {
	ReqID uint64
	Node  int32
	OK    bool
	Data  []byte
	From  int32
	Piggy wirePiggy
}

type wireMembership struct {
	Kind    uint8
	Seq     uint64
	From    int32
	Target  int32
	Updates []core.MemberUpdate
	Warmup  []core.PathEntry
}

type wireReplicateReply struct {
	SessionID uint64
	From      int32
	Accepted  []int32
	Load      float64
	Piggy     wirePiggy
}

func packPiggy(p core.Piggyback) wirePiggy {
	w := wirePiggy{From: int32(p.From), Load: p.Load, Adverts: p.Adverts}
	for _, d := range p.Digests {
		if d.Digest == nil {
			continue
		}
		w.Digests = append(w.Digests, wireDigest{Server: int32(d.Server), Data: d.Digest.Marshal()})
	}
	return w
}

func unpackPiggy(w wirePiggy) (core.Piggyback, error) {
	p := core.Piggyback{From: core.ServerID(w.From), Load: w.Load, Adverts: w.Adverts}
	for _, d := range w.Digests {
		f, err := bloom.Unmarshal(d.Data)
		if err != nil {
			return p, fmt.Errorf("wire: digest from server %d: %w", d.Server, err)
		}
		p.Digests = append(p.Digests, core.DigestUpdate{Server: core.ServerID(d.Server), Digest: f})
	}
	return p, nil
}

// Encode serializes a protocol message.
func Encode(m core.Message) ([]byte, error) {
	var buf bytes.Buffer
	var kind byte
	var payload interface{}
	switch v := m.(type) {
	case *core.QueryMsg:
		kind = kindQuery
		payload = wireQuery{
			QueryID: v.QueryID, Dest: int32(v.Dest), Source: int32(v.Source),
			OnBehalf: int32(v.OnBehalf), Hops: int32(v.Hops), Started: v.Started,
			PrevDist: v.PrevDist, Path: v.Path,
			TraceID: v.TraceID, SpanBudget: v.SpanBudget, Spans: v.Spans,
			Piggy: packPiggy(v.Piggy),
		}
	case *core.ResultMsg:
		kind = kindResult
		payload = wireResult{
			QueryID: v.QueryID, Dest: int32(v.Dest), OK: v.OK, Reason: uint8(v.Reason),
			Hops: int32(v.Hops), Started: v.Started, Meta: v.Meta, Map: v.Map,
			Path: v.Path, TraceID: v.TraceID, Spans: v.Spans, Piggy: packPiggy(v.Piggy),
		}
	case *core.TraceSpanMsg:
		kind = kindTraceSpan
		payload = wireTraceSpan{TraceID: v.TraceID, Span: v.Span, Piggy: packPiggy(v.Piggy)}
	case *core.LoadProbeMsg:
		kind = kindLoadProbe
		payload = wireLoadProbe{Session: v.Session, From: int32(v.From), Piggy: packPiggy(v.Piggy)}
	case *core.LoadProbeReply:
		kind = kindLoadProbeReply
		payload = wireLoadProbeReply{Session: v.Session, From: int32(v.From), Load: v.Load, Piggy: packPiggy(v.Piggy)}
	case *core.ReplicateRequest:
		kind = kindReplicateReq
		payload = wireReplicateReq{Session: v.Session, From: int32(v.From), Load: v.Load, Nodes: v.Nodes, Piggy: packPiggy(v.Piggy)}
	case *core.ReplicateReply:
		kind = kindReplicateReply
		w := wireReplicateReply{SessionID: v.Session.ID, From: int32(v.Session.From), Load: v.Load, Piggy: packPiggy(v.Piggy)}
		for _, n := range v.Accepted {
			w.Accepted = append(w.Accepted, int32(n))
		}
		payload = w
	case *core.DataRequest:
		kind = kindDataRequest
		payload = wireDataRequest{ReqID: v.ReqID, Node: int32(v.Node), From: int32(v.From), Piggy: packPiggy(v.Piggy)}
	case *core.DataReply:
		kind = kindDataReply
		payload = wireDataReply{ReqID: v.ReqID, Node: int32(v.Node), OK: v.OK, Data: v.Data, From: int32(v.From), Piggy: packPiggy(v.Piggy)}
	case *core.MembershipMsg:
		kind = kindMembership
		payload = wireMembership{
			Kind: v.Kind, Seq: v.Seq, From: int32(v.From), Target: int32(v.Target),
			Updates: v.Updates, Warmup: v.Warmup,
		}
	default:
		return nil, fmt.Errorf("wire: unknown message type %T", m)
	}
	buf.WriteByte(kind)
	if err := gob.NewEncoder(&buf).Encode(payload); err != nil {
		return nil, fmt.Errorf("wire: encode %T: %w", m, err)
	}
	return buf.Bytes(), nil
}

// Decode deserializes a protocol message produced by Encode.
func Decode(data []byte) (core.Message, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("wire: short message (%d bytes)", len(data))
	}
	dec := gob.NewDecoder(bytes.NewReader(data[1:]))
	switch data[0] {
	case kindQuery:
		var w wireQuery
		if err := dec.Decode(&w); err != nil {
			return nil, fmt.Errorf("wire: decode query: %w", err)
		}
		pg, err := unpackPiggy(w.Piggy)
		if err != nil {
			return nil, err
		}
		return &core.QueryMsg{
			QueryID: w.QueryID, Dest: core.NodeID(w.Dest), Source: core.ServerID(w.Source),
			OnBehalf: core.NodeID(w.OnBehalf), Hops: int(w.Hops), Started: w.Started,
			PrevDist: w.PrevDist, Path: w.Path,
			TraceID: w.TraceID, SpanBudget: w.SpanBudget, Spans: w.Spans,
			Piggy: pg,
		}, nil
	case kindResult:
		var w wireResult
		if err := dec.Decode(&w); err != nil {
			return nil, fmt.Errorf("wire: decode result: %w", err)
		}
		pg, err := unpackPiggy(w.Piggy)
		if err != nil {
			return nil, err
		}
		return &core.ResultMsg{
			QueryID: w.QueryID, Dest: core.NodeID(w.Dest), OK: w.OK,
			Reason: core.FailReason(w.Reason), Hops: int(w.Hops), Started: w.Started,
			Meta: w.Meta, Map: w.Map, Path: w.Path,
			TraceID: w.TraceID, Spans: w.Spans, Piggy: pg,
		}, nil
	case kindLoadProbe:
		var w wireLoadProbe
		if err := dec.Decode(&w); err != nil {
			return nil, fmt.Errorf("wire: decode probe: %w", err)
		}
		pg, err := unpackPiggy(w.Piggy)
		if err != nil {
			return nil, err
		}
		return &core.LoadProbeMsg{Session: w.Session, From: core.ServerID(w.From), Piggy: pg}, nil
	case kindLoadProbeReply:
		var w wireLoadProbeReply
		if err := dec.Decode(&w); err != nil {
			return nil, fmt.Errorf("wire: decode probe reply: %w", err)
		}
		pg, err := unpackPiggy(w.Piggy)
		if err != nil {
			return nil, err
		}
		return &core.LoadProbeReply{Session: w.Session, From: core.ServerID(w.From), Load: w.Load, Piggy: pg}, nil
	case kindReplicateReq:
		var w wireReplicateReq
		if err := dec.Decode(&w); err != nil {
			return nil, fmt.Errorf("wire: decode replicate request: %w", err)
		}
		pg, err := unpackPiggy(w.Piggy)
		if err != nil {
			return nil, err
		}
		return &core.ReplicateRequest{Session: w.Session, From: core.ServerID(w.From), Load: w.Load, Nodes: w.Nodes, Piggy: pg}, nil
	case kindReplicateReply:
		var w wireReplicateReply
		if err := dec.Decode(&w); err != nil {
			return nil, fmt.Errorf("wire: decode replicate reply: %w", err)
		}
		pg, err := unpackPiggy(w.Piggy)
		if err != nil {
			return nil, err
		}
		rep := &core.ReplicateReply{
			Session: core.ServerSession{ID: w.SessionID, From: core.ServerID(w.From)},
			Load:    w.Load, Piggy: pg,
		}
		for _, n := range w.Accepted {
			rep.Accepted = append(rep.Accepted, core.NodeID(n))
		}
		return rep, nil
	case kindDataRequest:
		var w wireDataRequest
		if err := dec.Decode(&w); err != nil {
			return nil, fmt.Errorf("wire: decode data request: %w", err)
		}
		pg, err := unpackPiggy(w.Piggy)
		if err != nil {
			return nil, err
		}
		return &core.DataRequest{ReqID: w.ReqID, Node: core.NodeID(w.Node), From: core.ServerID(w.From), Piggy: pg}, nil
	case kindDataReply:
		var w wireDataReply
		if err := dec.Decode(&w); err != nil {
			return nil, fmt.Errorf("wire: decode data reply: %w", err)
		}
		pg, err := unpackPiggy(w.Piggy)
		if err != nil {
			return nil, err
		}
		return &core.DataReply{ReqID: w.ReqID, Node: core.NodeID(w.Node), OK: w.OK, Data: w.Data, From: core.ServerID(w.From), Piggy: pg}, nil
	case kindMembership:
		var w wireMembership
		if err := dec.Decode(&w); err != nil {
			return nil, fmt.Errorf("wire: decode membership: %w", err)
		}
		return &core.MembershipMsg{
			Kind: w.Kind, Seq: w.Seq, From: core.ServerID(w.From), Target: core.ServerID(w.Target),
			Updates: w.Updates, Warmup: w.Warmup,
		}, nil
	case kindTraceSpan:
		var w wireTraceSpan
		if err := dec.Decode(&w); err != nil {
			return nil, fmt.Errorf("wire: decode trace span: %w", err)
		}
		pg, err := unpackPiggy(w.Piggy)
		if err != nil {
			return nil, err
		}
		return &core.TraceSpanMsg{TraceID: w.TraceID, Span: w.Span, Piggy: pg}, nil
	default:
		return nil, fmt.Errorf("wire: unknown kind %d", data[0])
	}
}

// WriteFrame writes a length-prefixed message frame.
func WriteFrame(w io.Writer, data []byte) error {
	if len(data) > MaxFrame {
		return fmt.Errorf("%w: frame too large (%d bytes)", ErrFrameSize, len(data))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(data)
	return err
}

// ReadFrame reads a length-prefixed message frame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return nil, fmt.Errorf("%w: invalid frame length %d", ErrFrameSize, n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, err
	}
	return data, nil
}
