// Package wire serializes TerraDir protocol messages for real transports
// (the TCP overlay). Version 4 frames are hand-rolled binary: a leading
// magic byte, a one-byte kind tag, then fixed-width little-endian fields
// with u32-length-prefixed strings, byte slices, and repeated groups. Bloom
// digests travel in their compact binary form (bloom.AppendTo/Unmarshal).
// The encoder is append-style (AppendMessage) so transports can reuse one
// buffer across writes; the decoder is a bounds-checked cursor that
// classifies every malformed input as an error — it never panics and never
// allocates more than the frame's own length implies.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"terradir/internal/bloom"
	"terradir/internal/core"
	"terradir/internal/telemetry"
)

// Version is the wire protocol version. Version 2 added per-lookup trace
// fields to query/result frames and the trace-span message kind; version 3
// added the membership frame kind. Version 4 replaced the gob payload
// encoding with the fixed-width binary layout this package now implements;
// version 5 added the hello frame kind (client-role handshake, used by the
// gateway/edge tier); version 6 extended the membership frame with the
// persistence-tier reconcile fields (per-update has-state flag, rejoiner
// incarnation + Bloom digest, the reconcile/reconcile-ack kinds) and fixed
// the hosted-record layout that WAL records and snapshots reuse
// (AppendHosted/DecodeHosted). Version ≥4 frames lead with the Magic byte;
// versions 1–3 led with the kind tag directly, so the decoder recognises
// legacy frames by their first byte (legacy kinds occupy 1..10, disjoint
// from Magic) and rejects them with ErrVersion. Mixed-version deployments
// are not supported; v6 changed the membership frame layout, so v4/v5
// membership frames do not decode.
const Version = 6

// Magic is the first byte of every version-4 frame. It is disjoint from the
// legacy kind-tag range (1..10), so the decoder can tell a v4 frame from a
// gob-era one by its first byte alone.
const Magic byte = 0xD4

// Message kind tags (second byte of a v4 frame; first byte of legacy
// frames).
const (
	kindQuery byte = iota + 1
	kindResult
	kindLoadProbe
	kindLoadProbeReply
	kindReplicateReq
	kindReplicateReply
	kindDataRequest
	kindDataReply
	kindTraceSpan  // wire version 2
	kindMembership // wire version 3
	kindHello      // wire version 5 (client-role handshake)
)

// MaxFrame bounds accepted frame sizes (1 MiB) to protect against corrupt or
// hostile length prefixes.
const MaxFrame = 1 << 20

// ErrFrameSize reports a frame length outside (0, MaxFrame]: an oversized
// outgoing message, or a corrupt/hostile incoming length prefix. Detect it
// with errors.Is; transports use it to classify read failures as corruption
// rather than connection errors.
var ErrFrameSize = errors.New("wire: frame size out of range")

// ErrVersion reports a frame from an incompatible protocol version — in
// practice a gob-encoded frame from a wire ≤3 peer, recognised by its
// leading kind tag where version 4 puts the Magic byte. Detect it with
// errors.Is; transports use it to distinguish "peer speaks an old protocol"
// from corruption.
var ErrVersion = errors.New("wire: incompatible protocol version")

// ErrUnknownKind reports a well-framed current-format message (Magic marker
// intact) whose kind byte this build does not recognize — what a frame from a
// newer peer looks like during a rolling upgrade. Receivers should count and
// skip it, not treat it as corruption or tear down the connection.
var ErrUnknownKind = errors.New("wire: unknown message kind")

// ---------------------------------------------------------------------------
// Encoding

// Encode serializes a protocol message into a fresh buffer. Hot paths that
// write many messages should prefer AppendMessage with a reused buffer.
func Encode(m core.Message) ([]byte, error) {
	return AppendMessage(nil, m)
}

// AppendMessage appends m's version-4 encoding to dst and returns the
// extended slice. Passing a reused dst[:0] makes steady-state encoding
// allocation-free once the buffer has grown to the working-set frame size.
func AppendMessage(dst []byte, m core.Message) ([]byte, error) {
	switch v := m.(type) {
	case *core.QueryMsg:
		b := append(dst, Magic, kindQuery)
		b = binary.LittleEndian.AppendUint64(b, v.QueryID)
		b = appendI32(b, int32(v.Dest))
		b = appendI32(b, int32(v.Source))
		b = appendI32(b, int32(v.OnBehalf))
		b = appendI32(b, int32(v.Hops))
		b = appendF64(b, v.Started)
		b = appendI32(b, v.PrevDist)
		b = appendPath(b, v.Path)
		b = binary.LittleEndian.AppendUint64(b, v.TraceID)
		b = appendI32(b, v.SpanBudget)
		b = appendSpans(b, v.Spans)
		return appendPiggy(b, v.Piggy), nil
	case *core.ResultMsg:
		b := append(dst, Magic, kindResult)
		b = binary.LittleEndian.AppendUint64(b, v.QueryID)
		b = appendI32(b, int32(v.Dest))
		b = appendBool(b, v.OK)
		b = append(b, uint8(v.Reason))
		b = appendI32(b, int32(v.Hops))
		b = appendF64(b, v.Started)
		b = appendMeta(b, v.Meta)
		b = appendNodeMap(b, v.Map)
		b = appendPath(b, v.Path)
		b = binary.LittleEndian.AppendUint64(b, v.TraceID)
		b = appendSpans(b, v.Spans)
		return appendPiggy(b, v.Piggy), nil
	case *core.TraceSpanMsg:
		b := append(dst, Magic, kindTraceSpan)
		b = binary.LittleEndian.AppendUint64(b, v.TraceID)
		b = appendSpan(b, v.Span)
		return appendPiggy(b, v.Piggy), nil
	case *core.LoadProbeMsg:
		b := append(dst, Magic, kindLoadProbe)
		b = binary.LittleEndian.AppendUint64(b, v.Session)
		b = appendI32(b, int32(v.From))
		return appendPiggy(b, v.Piggy), nil
	case *core.LoadProbeReply:
		b := append(dst, Magic, kindLoadProbeReply)
		b = binary.LittleEndian.AppendUint64(b, v.Session)
		b = appendI32(b, int32(v.From))
		b = appendF64(b, v.Load)
		return appendPiggy(b, v.Piggy), nil
	case *core.ReplicateRequest:
		b := append(dst, Magic, kindReplicateReq)
		b = binary.LittleEndian.AppendUint64(b, v.Session)
		b = appendI32(b, int32(v.From))
		b = appendF64(b, v.Load)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(v.Nodes)))
		for i := range v.Nodes {
			p := &v.Nodes[i]
			b = appendI32(b, int32(p.Node))
			b = appendMeta(b, p.Meta)
			b = appendNodeMap(b, p.SelfMap)
			b = appendF64(b, p.WeightHint)
			b = binary.LittleEndian.AppendUint32(b, uint32(len(p.Neighbors)))
			for _, nb := range p.Neighbors {
				b = appendI32(b, int32(nb.Node))
				b = appendNodeMap(b, nb.Map)
			}
		}
		return appendPiggy(b, v.Piggy), nil
	case *core.ReplicateReply:
		b := append(dst, Magic, kindReplicateReply)
		b = binary.LittleEndian.AppendUint64(b, v.Session.ID)
		b = appendI32(b, int32(v.Session.From))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(v.Accepted)))
		for _, n := range v.Accepted {
			b = appendI32(b, int32(n))
		}
		b = appendF64(b, v.Load)
		return appendPiggy(b, v.Piggy), nil
	case *core.DataRequest:
		b := append(dst, Magic, kindDataRequest)
		b = binary.LittleEndian.AppendUint64(b, v.ReqID)
		b = appendI32(b, int32(v.Node))
		b = appendI32(b, int32(v.From))
		return appendPiggy(b, v.Piggy), nil
	case *core.DataReply:
		b := append(dst, Magic, kindDataReply)
		b = binary.LittleEndian.AppendUint64(b, v.ReqID)
		b = appendI32(b, int32(v.Node))
		b = appendBool(b, v.OK)
		b = appendBytes(b, v.Data)
		b = appendI32(b, int32(v.From))
		return appendPiggy(b, v.Piggy), nil
	case *core.MembershipMsg:
		b := append(dst, Magic, kindMembership)
		b = append(b, v.Kind)
		b = binary.LittleEndian.AppendUint64(b, v.Seq)
		b = appendI32(b, int32(v.From))
		b = appendI32(b, int32(v.Target))
		b = binary.LittleEndian.AppendUint64(b, v.Incarnation)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(v.Updates)))
		for _, u := range v.Updates {
			b = appendI32(b, int32(u.Server))
			b = append(b, u.State)
			b = appendBool(b, u.HasState)
			b = binary.LittleEndian.AppendUint64(b, u.Incarnation)
			b = appendStr(b, u.Addr)
		}
		b = appendPath(b, v.Warmup)
		// The digest is length-prefixed like piggyback digests (zero length =
		// absent) because bloom.Unmarshal demands an exact-length slice.
		if v.Digest == nil {
			return binary.LittleEndian.AppendUint32(b, 0), nil
		}
		lenAt := len(b)
		b = binary.LittleEndian.AppendUint32(b, 0) // patched below
		b = v.Digest.AppendTo(b)
		binary.LittleEndian.PutUint32(b[lenAt:], uint32(len(b)-lenAt-4))
		return b, nil
	case *core.HelloMsg:
		b := append(dst, Magic, kindHello)
		b = appendI32(b, int32(v.ID))
		return append(b, v.Role), nil
	default:
		return nil, fmt.Errorf("wire: unknown message type %T", m)
	}
}

func appendI32(b []byte, v int32) []byte {
	return binary.LittleEndian.AppendUint32(b, uint32(v))
}

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendStr(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func appendBytes(b, p []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(p)))
	return append(b, p...)
}

func appendNodeMap(b []byte, m core.NodeMap) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Servers)))
	for _, s := range m.Servers {
		b = appendI32(b, int32(s))
	}
	return appendI32(b, int32(m.NumAdvertised))
}

func appendPath(b []byte, path []core.PathEntry) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(path)))
	for i := range path {
		b = appendI32(b, int32(path[i].Node))
		b = appendNodeMap(b, path[i].Map)
	}
	return b
}

func appendSpan(b []byte, s telemetry.Span) []byte {
	b = appendI32(b, s.Seq)
	b = appendI32(b, s.Server)
	b = appendI32(b, s.Node)
	b = append(b, uint8(s.Reason))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.QueueWaitMicros))
	return binary.LittleEndian.AppendUint64(b, uint64(s.ServiceMicros))
}

func appendSpans(b []byte, spans []telemetry.Span) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(spans)))
	for _, s := range spans {
		b = appendSpan(b, s)
	}
	return b
}

func appendMeta(b []byte, m core.Meta) []byte {
	b = binary.LittleEndian.AppendUint64(b, m.Version)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Attrs)))
	for k, v := range m.Attrs {
		b = appendStr(b, k)
		b = appendStr(b, v)
	}
	return b
}

func appendPiggy(b []byte, p core.Piggyback) []byte {
	b = appendI32(b, int32(p.From))
	b = appendF64(b, p.Load)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(p.Adverts)))
	for _, a := range p.Adverts {
		b = appendI32(b, int32(a.Node))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(a.Servers)))
		for _, s := range a.Servers {
			b = appendI32(b, int32(s))
		}
	}
	// Digest count is written after filtering nil filters, so the prefix is
	// exact. Each digest is length-prefixed because bloom.Unmarshal demands
	// an exact-length slice.
	live := 0
	for _, d := range p.Digests {
		if d.Digest != nil {
			live++
		}
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(live))
	for _, d := range p.Digests {
		if d.Digest == nil {
			continue
		}
		b = appendI32(b, int32(d.Server))
		lenAt := len(b)
		b = binary.LittleEndian.AppendUint32(b, 0) // patched below
		b = d.Digest.AppendTo(b)
		binary.LittleEndian.PutUint32(b[lenAt:], uint32(len(b)-lenAt-4))
	}
	return b
}

// ---------------------------------------------------------------------------
// Decoding

// reader is a bounds-checked cursor over one frame. Every accessor returns a
// zero value once an overrun is recorded; the caller checks r.err exactly
// once, after the full message has been walked.
type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) fail(msg string) {
	if r.err == nil {
		r.err = errors.New(msg)
	}
}

func (r *reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if len(r.data)-r.off < n {
		r.fail("truncated frame")
		return false
	}
	return true
}

func (r *reader) u8() byte {
	if !r.need(1) {
		return 0
	}
	v := r.data[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}

func (r *reader) i32() int32    { return int32(r.u32()) }
func (r *reader) f64() float64  { return math.Float64frombits(r.u64()) }
func (r *reader) boolean() bool { return r.u8() != 0 }

// count reads a u32 element count and rejects any count that could not fit
// in the remaining bytes given a per-element minimum — the guard that keeps
// a hostile 4-byte prefix from provoking a giant allocation.
func (r *reader) count(minElem int) int {
	n := r.u32()
	if r.err != nil {
		return 0
	}
	if int(n) > (len(r.data)-r.off)/minElem {
		r.fail("element count exceeds frame size")
		return 0
	}
	return int(n)
}

func (r *reader) str() string {
	n := int(r.u32())
	if !r.need(n) {
		return ""
	}
	s := string(r.data[r.off : r.off+n])
	r.off += n
	return s
}

// bytes returns a copy of a length-prefixed byte field (nil when empty) —
// decoded messages must not alias the transport's frame buffer.
func (r *reader) bytes() []byte {
	n := int(r.u32())
	if n == 0 || !r.need(n) {
		return nil
	}
	p := make([]byte, n)
	copy(p, r.data[r.off:r.off+n])
	r.off += n
	return p
}

// Per-element minimum encoded sizes, used by count guards.
const (
	minServer  = 4
	minPath    = 12 // node + servers count + NumAdvertised
	minSpan    = 29
	minAdvert  = 8
	minDigest  = 8
	minPayload = 36
	minUpdate  = 18
	minAttr    = 8
)

func (r *reader) servers() []core.ServerID {
	n := r.count(minServer)
	if n == 0 {
		return nil
	}
	out := make([]core.ServerID, n)
	for i := range out {
		out[i] = core.ServerID(r.i32())
	}
	return out
}

func (r *reader) nodeMap() core.NodeMap {
	m := core.NodeMap{Servers: r.servers()}
	m.NumAdvertised = int(r.i32())
	return m
}

func (r *reader) path() []core.PathEntry {
	n := r.count(minPath)
	if n == 0 {
		return nil
	}
	out := make([]core.PathEntry, n)
	for i := range out {
		out[i].Node = core.NodeID(r.i32())
		out[i].Map = r.nodeMap()
	}
	return out
}

func (r *reader) span() telemetry.Span {
	return telemetry.Span{
		Seq:             r.i32(),
		Server:          r.i32(),
		Node:            r.i32(),
		Reason:          telemetry.HopReason(r.u8()),
		QueueWaitMicros: int64(r.u64()),
		ServiceMicros:   int64(r.u64()),
	}
}

func (r *reader) spans() []telemetry.Span {
	n := r.count(minSpan)
	if n == 0 {
		return nil
	}
	out := make([]telemetry.Span, n)
	for i := range out {
		out[i] = r.span()
	}
	return out
}

func (r *reader) meta() core.Meta {
	m := core.Meta{Version: r.u64()}
	n := r.count(minAttr)
	if n == 0 {
		return m
	}
	m.Attrs = make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := r.str()
		m.Attrs[k] = r.str()
	}
	return m
}

func (r *reader) piggy() core.Piggyback {
	p := core.Piggyback{From: core.ServerID(r.i32()), Load: r.f64()}
	if n := r.count(minAdvert); n > 0 {
		p.Adverts = make([]core.Advert, n)
		for i := range p.Adverts {
			p.Adverts[i].Node = core.NodeID(r.i32())
			p.Adverts[i].Servers = r.servers()
		}
	}
	n := r.count(minDigest)
	if n == 0 {
		return p
	}
	p.Digests = make([]core.DigestUpdate, 0, n)
	for i := 0; i < n; i++ {
		server := core.ServerID(r.i32())
		raw := int(r.u32())
		if !r.need(raw) {
			return p
		}
		f, err := bloom.Unmarshal(r.data[r.off : r.off+raw])
		r.off += raw
		if err != nil {
			r.fail(fmt.Sprintf("digest from server %d: %v", server, err))
			return p
		}
		p.Digests = append(p.Digests, core.DigestUpdate{Server: server, Digest: f})
	}
	return p
}

// Decode deserializes a protocol message produced by Encode/AppendMessage.
// Legacy (gob, wire ≤3) frames are classified as ErrVersion; every other
// malformed input yields a descriptive error. Decode never panics.
func Decode(data []byte) (core.Message, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("wire: short message (%d bytes)", len(data))
	}
	if data[0] >= kindQuery && data[0] <= kindMembership {
		return nil, fmt.Errorf("%w: legacy gob frame (kind %d, wire ≤3)", ErrVersion, data[0])
	}
	if data[0] != Magic {
		return nil, fmt.Errorf("wire: unknown frame marker 0x%02x", data[0])
	}
	kind := data[1]
	r := &reader{data: data, off: 2}
	var m core.Message
	switch kind {
	case kindQuery:
		q := &core.QueryMsg{QueryID: r.u64(), Dest: core.NodeID(r.i32()),
			Source: core.ServerID(r.i32()), OnBehalf: core.NodeID(r.i32()),
			Hops: int(r.i32()), Started: r.f64(), PrevDist: r.i32(), Path: r.path(),
			TraceID: r.u64(), SpanBudget: r.i32(), Spans: r.spans()}
		q.Piggy = r.piggy()
		m = q
	case kindResult:
		res := &core.ResultMsg{QueryID: r.u64(), Dest: core.NodeID(r.i32()),
			OK: r.boolean(), Reason: core.FailReason(r.u8()), Hops: int(r.i32()),
			Started: r.f64(), Meta: r.meta(), Map: r.nodeMap(), Path: r.path(),
			TraceID: r.u64(), Spans: r.spans()}
		res.Piggy = r.piggy()
		m = res
	case kindTraceSpan:
		ts := &core.TraceSpanMsg{TraceID: r.u64(), Span: r.span()}
		ts.Piggy = r.piggy()
		m = ts
	case kindLoadProbe:
		p := &core.LoadProbeMsg{Session: r.u64(), From: core.ServerID(r.i32())}
		p.Piggy = r.piggy()
		m = p
	case kindLoadProbeReply:
		p := &core.LoadProbeReply{Session: r.u64(), From: core.ServerID(r.i32()), Load: r.f64()}
		p.Piggy = r.piggy()
		m = p
	case kindReplicateReq:
		req := &core.ReplicateRequest{Session: r.u64(), From: core.ServerID(r.i32()), Load: r.f64()}
		if n := r.count(minPayload); n > 0 {
			req.Nodes = make([]core.ReplicaPayload, n)
			for i := range req.Nodes {
				p := &req.Nodes[i]
				p.Node = core.NodeID(r.i32())
				p.Meta = r.meta()
				p.SelfMap = r.nodeMap()
				p.WeightHint = r.f64()
				if nn := r.count(minPath); nn > 0 {
					p.Neighbors = make([]core.NeighborMap, nn)
					for j := range p.Neighbors {
						p.Neighbors[j].Node = core.NodeID(r.i32())
						p.Neighbors[j].Map = r.nodeMap()
					}
				}
			}
		}
		req.Piggy = r.piggy()
		m = req
	case kindReplicateReply:
		rep := &core.ReplicateReply{Session: core.ServerSession{ID: r.u64(), From: core.ServerID(r.i32())}}
		if n := r.count(minServer); n > 0 {
			rep.Accepted = make([]core.NodeID, n)
			for i := range rep.Accepted {
				rep.Accepted[i] = core.NodeID(r.i32())
			}
		}
		rep.Load = r.f64()
		rep.Piggy = r.piggy()
		m = rep
	case kindDataRequest:
		req := &core.DataRequest{ReqID: r.u64(), Node: core.NodeID(r.i32()), From: core.ServerID(r.i32())}
		req.Piggy = r.piggy()
		m = req
	case kindDataReply:
		rep := &core.DataReply{ReqID: r.u64(), Node: core.NodeID(r.i32()),
			OK: r.boolean(), Data: r.bytes(), From: core.ServerID(r.i32())}
		rep.Piggy = r.piggy()
		m = rep
	case kindMembership:
		mm := &core.MembershipMsg{Kind: r.u8(), Seq: r.u64(),
			From: core.ServerID(r.i32()), Target: core.ServerID(r.i32()),
			Incarnation: r.u64()}
		if n := r.count(minUpdate); n > 0 {
			mm.Updates = make([]core.MemberUpdate, n)
			for i := range mm.Updates {
				u := &mm.Updates[i]
				u.Server = core.ServerID(r.i32())
				u.State = r.u8()
				u.HasState = r.boolean()
				u.Incarnation = r.u64()
				u.Addr = r.str()
			}
		}
		mm.Warmup = r.path()
		if raw := int(r.u32()); raw > 0 && r.need(raw) {
			f, err := bloom.Unmarshal(r.data[r.off : r.off+raw])
			if err != nil {
				r.fail("bad membership digest")
			} else {
				mm.Digest = f
				r.off += raw
			}
		}
		m = mm
	case kindHello:
		m = &core.HelloMsg{ID: core.ServerID(r.i32()), Role: r.u8()}
	default:
		return nil, fmt.Errorf("%w %d", ErrUnknownKind, kind)
	}
	if r.err != nil {
		return nil, fmt.Errorf("wire: decode kind %d: %w", kind, r.err)
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("wire: decode kind %d: %d trailing bytes", kind, len(data)-r.off)
	}
	return m, nil
}

// ---------------------------------------------------------------------------
// Framing

// WriteFrame writes a length-prefixed message frame.
func WriteFrame(w io.Writer, data []byte) error {
	if len(data) > MaxFrame {
		return fmt.Errorf("%w: frame too large (%d bytes)", ErrFrameSize, len(data))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(data)
	return err
}

// ReadFrame reads a length-prefixed message frame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return nil, fmt.Errorf("%w: invalid frame length %d", ErrFrameSize, n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, err
	}
	return data, nil
}

// ---------------------------------------------------------------------------
// Hosted-state records (persistence tier)

// AppendHosted appends the binary encoding of one hosted-state mutation
// record to dst. This is the payload format of internal/persist WAL records
// and snapshot entries: the same fixed-width primitives as every other wire
// structure, so hosted nodes persist in their wire form.
func AppendHosted(dst []byte, mu *core.HostedMutation) []byte {
	b := append(dst, byte(mu.Kind))
	b = appendI32(b, int32(mu.Node))
	var flags byte
	if mu.Owned {
		flags |= 1
	}
	if mu.Adopted {
		flags |= 2
	}
	if mu.HasData {
		flags |= 4
	}
	b = append(b, flags)
	b = appendF64(b, mu.Weight)
	b = appendMeta(b, mu.Meta)
	b = appendNodeMap(b, mu.Map)
	return appendBytes(b, mu.Data)
}

// DecodeHosted decodes one hosted-state mutation record produced by
// AppendHosted. Hostile input never panics; malformed records report an
// error.
func DecodeHosted(data []byte) (*core.HostedMutation, error) {
	r := &reader{data: data}
	mu := &core.HostedMutation{
		Kind: core.MutationKind(r.u8()),
		Node: core.NodeID(r.i32()),
	}
	flags := r.u8()
	mu.Owned = flags&1 != 0
	mu.Adopted = flags&2 != 0
	mu.HasData = flags&4 != 0
	mu.Weight = r.f64()
	mu.Meta = r.meta()
	mu.Map = r.nodeMap()
	mu.Data = r.bytes()
	if r.err != nil {
		return nil, fmt.Errorf("wire: decode hosted record: %w", r.err)
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("wire: hosted record: %d trailing bytes", len(data)-r.off)
	}
	if mu.Kind < core.MutUpsert || mu.Kind > core.MutMap {
		return nil, fmt.Errorf("wire: hosted record: unknown mutation kind %d", mu.Kind)
	}
	return mu, nil
}
