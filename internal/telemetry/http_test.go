package telemetry

import (
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

// The admin endpoint is unauthenticated, so the server must bound how long a
// client may hold a connection goroutine without completing a request.
func TestAdminServerTimeoutsConfigured(t *testing.T) {
	a, err := StartAdmin("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.srv.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout not set: vulnerable to slowloris header drip")
	}
	if a.srv.ReadTimeout <= 0 {
		t.Error("ReadTimeout not set: vulnerable to slowloris body drip")
	}
	if a.srv.IdleTimeout <= 0 {
		t.Error("IdleTimeout not set: idle keep-alive connections pin goroutines")
	}
	if a.srv.WriteTimeout != 0 {
		t.Error("WriteTimeout must stay unset: pprof profile/trace stream for ~30s")
	}
}

// Close must return promptly even while a keep-alive connection sits idle —
// graceful Shutdown alone would wait for it, so Close bounds the wait.
func TestAdminServerCloseWithIdleConn(t *testing.T) {
	a, err := StartAdmin("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}

	// Complete one request on a keep-alive connection, then leave it idle.
	conn, err := net.Dial("tcp", a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(buf); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- a.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(adminShutdownTimeout + 5*time.Second):
		t.Fatal("Close did not return within the shutdown deadline")
	}

	// The listener must be released.
	if _, err := http.Get("http://" + a.Addr() + "/metrics"); err == nil {
		t.Error("server still accepting connections after Close")
	}
}

// A fresh connection that never sends request headers must be cut off by
// ReadHeaderTimeout rather than held open indefinitely. Uses a dedicated
// server with a short timeout to keep the test fast.
func TestAdminServerSlowClientDisconnected(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{
		Handler:           Handler(NewRegistry(), nil),
		ReadHeaderTimeout: 100 * time.Millisecond,
	}
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send nothing; the server should close the connection once the header
	// deadline passes. Read returns EOF/reset when it does.
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Error("expected server to drop the stalled connection")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Error("server never dropped the stalled connection (read timed out)")
	} else if err != io.EOF {
		// Connection reset is fine too; only timeouts above are failures.
		t.Logf("connection terminated with: %v", err)
	}
}
