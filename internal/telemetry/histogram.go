package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync/atomic"
)

// HistogramOpts fixes a histogram's log-spaced bucket layout. Buckets are
// geometric: BucketsPerDecade buckets per factor of 10 between Min and Max,
// plus an underflow bucket (≤ Min) and an overflow bucket (> Max). The
// relative quantile error is bounded by the bucket ratio
// (10^(1/BucketsPerDecade) − 1, ~33% at 8 per decade, ~15% at 16).
type HistogramOpts struct {
	// Min is the upper bound of the first bucket (> 0). Default 1e-6
	// (1 µs when observing seconds).
	Min float64
	// Max is the lower bound of the overflow bucket. Default 1e4.
	Max float64
	// BucketsPerDecade sets resolution. Default 8.
	BucketsPerDecade int
}

func (o *HistogramOpts) fill() {
	if o.Min <= 0 {
		o.Min = 1e-6
	}
	if o.Max <= o.Min {
		o.Max = o.Min * 1e10
	}
	if o.BucketsPerDecade <= 0 {
		o.BucketsPerDecade = 8
	}
}

// Histogram is a fixed-memory streaming histogram over log-spaced buckets.
// Observe is lock-free (two atomic adds plus a CAS loop for the sum);
// quantiles are estimated from the bucket counts at read time. Memory is
// bounded by the bucket count regardless of how many samples stream through
// — the property the unbounded sample-retaining histogram in internal/stats
// lacked for multi-million-query runs.
type Histogram struct {
	min     float64
	invLog  float64 // BucketsPerDecade / ln(10)
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is overflow (> Max)
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// NewHistogram creates a histogram with the given layout (zero opts select
// the defaults).
func NewHistogram(opts HistogramOpts) *Histogram {
	opts.fill()
	decades := math.Log10(opts.Max / opts.Min)
	n := int(math.Ceil(decades * float64(opts.BucketsPerDecade)))
	if n < 1 {
		n = 1
	}
	h := &Histogram{
		min:    opts.Min,
		invLog: float64(opts.BucketsPerDecade) / math.Ln10,
	}
	h.bounds = make([]float64, n+1)
	for i := 0; i <= n; i++ {
		h.bounds[i] = opts.Min * math.Pow(10, float64(i)/float64(opts.BucketsPerDecade))
	}
	h.buckets = make([]atomic.Uint64, n+2)
	return h
}

// bucketIndex maps a sample to its bucket: 0 holds everything ≤ Min,
// len(buckets)-1 everything above Max.
func (h *Histogram) bucketIndex(x float64) int {
	if x <= h.min || math.IsNaN(x) {
		return 0
	}
	i := int(math.Log(x/h.min)*h.invLog) + 1
	if i < 1 {
		i = 1
	}
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	// Floating point can land one bucket off either way near bucket bounds;
	// nudge to the exact bucket (i covers (bounds[i-1], bounds[i]]).
	for i > 1 && x <= h.bounds[i-1] {
		i--
	}
	for i < len(h.buckets)-1 && x > h.bounds[i] {
		i++
	}
	return i
}

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	h.buckets[h.bucketIndex(x)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + x)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of observed samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Mean returns the sample mean (0 if empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts: the
// geometric midpoint of the bucket holding the target rank. The estimate is
// within one bucket ratio of the true value for in-range samples.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return h.bucketMid(i)
		}
	}
	return h.bucketMid(len(h.buckets) - 1)
}

// bucketMid returns the representative value for bucket i: Min for the
// underflow bucket, Max for the overflow bucket, the geometric midpoint of
// the bucket bounds otherwise.
func (h *Histogram) bucketMid(i int) float64 {
	switch {
	case i <= 0:
		return h.min
	case i >= len(h.buckets)-1:
		return h.bounds[len(h.bounds)-1]
	default:
		return math.Sqrt(h.bounds[i-1] * h.bounds[i])
	}
}

// writePrometheus renders the histogram in Prometheus exposition format
// (cumulative le buckets, _sum, _count).
func (h *Histogram) writePrometheus(w io.Writer, name, labels string) {
	sep := ","
	open := labels
	if open == "" {
		open = "{"
		sep = ""
	} else {
		open = labels[:len(labels)-1] // strip trailing '}'
	}
	var cum uint64
	for i := 0; i < len(h.buckets)-1; i++ {
		cum += h.buckets[i].Load()
		le := strconv.FormatFloat(h.bounds[min(i, len(h.bounds)-1)], 'g', 6, 64)
		fmt.Fprintf(w, "%s_bucket%s%sle=\"%s\"} %d\n", name, open, sep, le, cum)
	}
	cum += h.buckets[len(h.buckets)-1].Load()
	fmt.Fprintf(w, "%s_bucket%s%sle=\"+Inf\"} %d\n", name, open, sep, cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatValue(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count())
}
