package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestTraceStoreCompleteAndTruncated(t *testing.T) {
	s := NewTraceStore(4)
	// Out-of-band spans arrive per hop, possibly out of order.
	s.AddSpan(7, Span{Seq: 1, Server: 2, Reason: HopChild})
	s.AddSpan(7, Span{Seq: 0, Server: 1, Reason: HopParent})
	tr, ok := s.Get(7)
	if !ok || len(tr.Spans) != 2 {
		t.Fatalf("in-flight trace = %+v, ok=%v", tr, ok)
	}
	if !tr.Truncated() {
		t.Fatal("in-flight trace must read as truncated")
	}
	// Result lands with the in-band chain (duplicates of the reports plus
	// the resolving hop).
	s.Complete(7, []Span{
		{Seq: 0, Server: 1, Reason: HopParent},
		{Seq: 1, Server: 2, Reason: HopChild},
		{Seq: 2, Server: 3, Reason: HopResolve},
	}, true, 2)
	tr, _ = s.Get(7)
	if !tr.Done || !tr.OK || tr.Hops != 2 {
		t.Fatalf("completed trace = %+v", tr)
	}
	if len(tr.Spans) != 3 {
		t.Fatalf("duplicate spans not merged: %+v", tr.Spans)
	}
	for i, sp := range tr.Spans {
		if int(sp.Seq) != i {
			t.Fatalf("spans out of order: %+v", tr.Spans)
		}
	}
	if tr.Truncated() {
		t.Fatal("complete contiguous trace reported truncated")
	}
}

func TestTraceStoreTruncatedOnGapOrShortfall(t *testing.T) {
	s := NewTraceStore(4)
	// Hop 1's report was lost; result claims 2 hops.
	s.AddSpan(9, Span{Seq: 0, Server: 1})
	s.Complete(9, []Span{{Seq: 2, Server: 3, Reason: HopResolve}}, true, 2)
	tr, _ := s.Get(9)
	if !tr.Truncated() {
		t.Fatal("gap in Seq must read as truncated")
	}
	// Query dropped mid-route: spans but never Done.
	s.AddSpan(11, Span{Seq: 0, Server: 1})
	s.AddSpan(11, Span{Seq: 1, Server: 2})
	tr, _ = s.Get(11)
	if tr.Done || !tr.Truncated() {
		t.Fatalf("lost lookup: %+v", tr)
	}
}

func TestTraceStoreFIFOEviction(t *testing.T) {
	s := NewTraceStore(2)
	s.AddSpan(1, Span{})
	s.AddSpan(2, Span{})
	s.AddSpan(3, Span{}) // evicts 1
	if _, ok := s.Get(1); ok {
		t.Fatal("oldest trace not evicted")
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	ids := s.IDs()
	if len(ids) != 2 || ids[0] != 2 || ids[1] != 3 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestTraceStoreIgnoresZeroID(t *testing.T) {
	s := NewTraceStore(2)
	s.AddSpan(0, Span{})
	s.Complete(0, nil, true, 0)
	if s.Len() != 0 {
		t.Fatal("id 0 (untraced) must not create records")
	}
}

func TestAdminHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total", "h").Inc()
	traces := NewTraceStore(4)
	traces.Complete(42, []Span{{Seq: 0, Server: 1, Reason: HopResolve}}, true, 0)
	srv := httptest.NewServer(Handler(reg, traces))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "up_total 1") {
		t.Fatalf("/metrics: %d %q", code, body)
	}
	if code, body := get("/trace/42"); code != 200 {
		t.Fatalf("/trace/42: %d %q", code, body)
	} else {
		var out struct {
			ID        uint64
			Spans     []map[string]any
			Truncated bool
		}
		if err := json.Unmarshal([]byte(body), &out); err != nil {
			t.Fatalf("trace json: %v in %q", err, body)
		}
		if out.ID != 42 || out.Truncated || len(out.Spans) != 1 {
			t.Fatalf("trace dump = %+v", out)
		}
		if out.Spans[0]["Reason"] != "resolve" {
			t.Fatalf("reason not rendered as string: %v", out.Spans[0])
		}
	}
	if code, _ := get("/trace/999"); code != 404 {
		t.Fatalf("missing trace: %d", code)
	}
	if code, body := get("/traces"); code != 200 || !strings.Contains(body, "42") {
		t.Fatalf("/traces: %d %q", code, body)
	}
	if code, _ := get("/debug/vars"); code != 200 {
		t.Fatalf("/debug/vars: %d", code)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Fatalf("unknown path: %d", code)
	}
}
