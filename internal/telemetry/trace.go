package telemetry

import (
	"sort"
	"sync"
	"time"
)

// HopReason classifies why a traced server handled a lookup the way it did:
// which routing mechanism chose the next hop, or how the lookup terminated.
type HopReason uint8

const (
	// HopNone: no classification (untraced or unknown).
	HopNone HopReason = iota
	// HopParent: forwarded up the namespace via a parent neighbor map.
	HopParent
	// HopChild: forwarded down the namespace via a child neighbor map.
	HopChild
	// HopCache: forwarded via a cached pointer (§2.4 path caching).
	HopCache
	// HopReplica: forwarded to a replica found via a digest shortcut
	// (§3.6.1).
	HopReplica
	// HopResolve: the server hosted the destination and answered.
	HopResolve
	// HopFail: the server terminated the lookup (TTL exceeded or no route).
	HopFail
	// HopOwner: forwarded straight to the destination's authoritative owner
	// — the sharded overlay's escape when partition-local context stalls.
	HopOwner
)

func (r HopReason) String() string {
	switch r {
	case HopParent:
		return "parent"
	case HopChild:
		return "child"
	case HopCache:
		return "cache"
	case HopReplica:
		return "replica"
	case HopResolve:
		return "resolve"
	case HopFail:
		return "fail"
	case HopOwner:
		return "owner"
	}
	return "none"
}

// MarshalJSON renders the reason as its string name in trace dumps.
func (r HopReason) MarshalJSON() ([]byte, error) {
	return []byte(`"` + r.String() + `"`), nil
}

// Span is one hop's record in a per-lookup trace: who served it, on behalf
// of which namespace node, why it was forwarded (or resolved), and how long
// the query waited in the server's queue and was serviced. Spans are
// appended in-band to the query as it routes and additionally reported
// out-of-band to the initiating server, so a trace survives — truncated —
// even when the query itself is lost mid-route.
type Span struct {
	// Seq is the hop index (0 = the initiating server's own service step).
	Seq int32
	// Server is the peer that produced this span.
	Server int32
	// Node is the namespace node the hop acted for: the routing candidate
	// selected for forwarding, or the destination when resolving.
	Node int32
	// Reason classifies the hop.
	Reason HopReason
	// QueueWaitMicros is time spent in the server's request queue (µs).
	QueueWaitMicros int64
	// ServiceMicros is the service time at this server (µs).
	ServiceMicros int64
}

// TraceRecord is the assembled state of one lookup trace.
type TraceRecord struct {
	ID uint64
	// Spans are ordered by Seq. Gaps mean hops whose span report was lost.
	Spans []Span
	// Done is set when the lookup's result arrived at the initiator.
	Done bool
	// OK mirrors the lookup outcome (valid when Done).
	OK bool
	// Hops is the final hop count from the result (valid when Done).
	Hops int
	// Updated is the wall-clock time of the last change.
	Updated time.Time
}

// Truncated reports whether the span chain is incomplete: the lookup never
// completed (query or result lost in flight), or spans are missing relative
// to the hop count — either lost span reports or an exhausted span budget.
// An in-flight trace reads as truncated until its result lands.
func (tr *TraceRecord) Truncated() bool {
	if !tr.Done {
		return true
	}
	if len(tr.Spans) < tr.Hops+1 {
		return true
	}
	for i, s := range tr.Spans {
		if int(s.Seq) != i {
			return true
		}
	}
	return false
}

// TraceStore collects completed and in-flight lookup traces at the
// initiating server, bounded to a fixed number of records (FIFO eviction).
// Safe for concurrent use.
type TraceStore struct {
	mu   sync.Mutex
	cap  int
	recs map[uint64]*TraceRecord
	fifo []uint64
	now  func() time.Time
}

// DefaultTraceCap bounds a store created with capacity ≤ 0.
const DefaultTraceCap = 256

// NewTraceStore creates a store retaining up to cap traces (≤ 0 selects
// DefaultTraceCap).
func NewTraceStore(cap int) *TraceStore {
	if cap <= 0 {
		cap = DefaultTraceCap
	}
	return &TraceStore{
		cap:  cap,
		recs: make(map[uint64]*TraceRecord, cap),
		now:  time.Now,
	}
}

// record returns (creating and possibly evicting) the record for id.
// Caller holds s.mu.
func (s *TraceStore) record(id uint64) *TraceRecord {
	if tr, ok := s.recs[id]; ok {
		return tr
	}
	for len(s.fifo) >= s.cap {
		victim := s.fifo[0]
		s.fifo = s.fifo[1:]
		delete(s.recs, victim)
	}
	// Reserve a typical route's worth of spans up front so the one-at-a-time
	// inserts don't regrow the slice every hop.
	tr := &TraceRecord{ID: id, Spans: make([]Span, 0, 8)}
	s.recs[id] = tr
	s.fifo = append(s.fifo, id)
	return tr
}

// AddSpan folds one out-of-band span report into the trace, keeping spans
// Seq-ordered. Duplicate sequence numbers are ignored (the in-band copy may
// arrive alongside the report).
func (s *TraceStore) AddSpan(id uint64, sp Span) {
	if id == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tr := s.record(id)
	tr.insert(sp)
	tr.Updated = s.now()
}

// Complete marks a trace finished with the lookup outcome and merges the
// in-band span chain carried by the result.
func (s *TraceStore) Complete(id uint64, spans []Span, ok bool, hops int) {
	if id == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tr := s.record(id)
	for _, sp := range spans {
		tr.insert(sp)
	}
	tr.Done = true
	tr.OK = ok
	tr.Hops = hops
	tr.Updated = s.now()
}

// insert places sp in Seq order, skipping duplicates.
func (tr *TraceRecord) insert(sp Span) {
	i := sort.Search(len(tr.Spans), func(i int) bool { return tr.Spans[i].Seq >= sp.Seq })
	if i < len(tr.Spans) && tr.Spans[i].Seq == sp.Seq {
		return
	}
	tr.Spans = append(tr.Spans, Span{})
	copy(tr.Spans[i+1:], tr.Spans[i:])
	tr.Spans[i] = sp
}

// Get returns a copy of the trace for id.
func (s *TraceStore) Get(id uint64) (TraceRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tr, ok := s.recs[id]
	if !ok {
		return TraceRecord{}, false
	}
	out := *tr
	out.Spans = append([]Span(nil), tr.Spans...)
	return out, true
}

// IDs returns the retained trace IDs, oldest first.
func (s *TraceStore) IDs() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]uint64(nil), s.fifo...)
}

// Len returns the number of retained traces.
func (s *TraceStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}
