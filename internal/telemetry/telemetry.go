// Package telemetry is the observability subsystem of the live TerraDir
// deployment: an allocation-light, concurrency-safe metrics registry
// (atomic counters, gauges, function-backed metrics and fixed log-spaced-
// bucket streaming histograms), a bounded per-lookup trace store, and an
// HTTP admin handler exposing Prometheus text, expvar and pprof.
//
// The package depends only on the standard library so every layer of the
// system (core, overlay, cmd) can import it without cycles. Hot-path
// operations (Counter.Inc, Gauge.Set, Histogram.Observe) are single atomic
// updates with no locks or allocations; registration and scraping take the
// registry lock.
package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (CAS loop; gauges are updated rarely relative to counters).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// metricKind tags a family's exposition type.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one labeled instance of a metric family.
type series struct {
	labels string // rendered `{k="v",...}` or ""
	ctr    *Counter
	gauge  *Gauge
	fn     func() float64 // function-backed counter or gauge
	hist   *Histogram
}

type family struct {
	name   string
	help   string
	kind   metricKind
	series map[string]*series
	order  []string // label strings in registration order
}

// Registry is a named collection of metrics. The zero value is not usable;
// construct with NewRegistry. All methods are safe for concurrent use.
// Registration is idempotent: asking for an existing (name, labels) pair
// returns the same metric instance, so independent components can share
// counters by name.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// renderLabels turns alternating key, value strings into a Prometheus label
// block (`{k="v",...}`), empty for no labels. Odd trailing keys are dropped.
func renderLabels(labels []string) string {
	if len(labels) < 2 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		v := labels[i+1]
		v = strings.ReplaceAll(v, `\`, `\\`)
		v = strings.ReplaceAll(v, `"`, `\"`)
		b.WriteString(v)
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// getSeries returns (creating as needed) the series for (name, labels),
// verifying the family kind. Mixing kinds under one name is a programming
// error and panics.
func (r *Registry) getSeries(name, help string, kind metricKind, labels []string) *series {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, f.kind, kind))
	}
	s, ok := f.series[ls]
	if !ok {
		s = &series{labels: ls}
		f.series[ls] = s
		f.order = append(f.order, ls)
	}
	return s
}

// Counter returns the counter for (name, labels), creating it on first use.
// labels are alternating key, value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.getSeries(name, help, kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.ctr == nil && s.fn == nil {
		s.ctr = &Counter{}
	}
	return s.ctr
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.getSeries(name, help, kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.gauge == nil && s.fn == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// CounterFunc registers a function-backed counter (a cumulative value owned
// elsewhere, e.g. a transport's atomic counters). fn is called at scrape
// time. Re-registering replaces the function.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	s := r.getSeries(name, help, kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s.fn = fn
	s.ctr = nil
}

// GaugeFunc registers a function-backed gauge sampled at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	s := r.getSeries(name, help, kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s.fn = fn
	s.gauge = nil
}

// Histogram returns the streaming histogram for (name, labels) with the
// given bucket layout (zero opts select the default seconds-oriented
// layout), creating it on first use.
func (r *Registry) Histogram(name, help string, opts HistogramOpts, labels ...string) *Histogram {
	s := r.getSeries(name, help, kindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.hist == nil {
		s.hist = NewHistogram(opts)
	}
	return s.hist
}

func (s *series) value() float64 {
	switch {
	case s.fn != nil:
		return s.fn()
	case s.ctr != nil:
		return float64(s.ctr.Value())
	case s.gauge != nil:
		return s.gauge.Value()
	}
	return 0
}

// sortedFamilies snapshots family pointers in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (v0.0.4), families sorted by name, series in registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		r.mu.Lock()
		order := append([]string(nil), f.order...)
		ser := make([]*series, 0, len(order))
		for _, ls := range order {
			ser = append(ser, f.series[ls])
		}
		r.mu.Unlock()
		for _, s := range ser {
			if f.kind == kindHistogram {
				if s.hist != nil {
					s.hist.writePrometheus(w, f.name, s.labels)
				}
				continue
			}
			fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatValue(s.value()))
		}
	}
}

// Snapshot returns every scalar metric keyed by "name{labels}"; histograms
// contribute "_count" and "_sum" entries. Intended for shutdown dumps,
// expvar and tests.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	for _, f := range r.sortedFamilies() {
		r.mu.Lock()
		ser := make([]*series, 0, len(f.order))
		for _, ls := range f.order {
			ser = append(ser, f.series[ls])
		}
		r.mu.Unlock()
		for _, s := range ser {
			if f.kind == kindHistogram {
				if s.hist != nil {
					out[f.name+"_count"+s.labels] = float64(s.hist.Count())
					out[f.name+"_sum"+s.labels] = s.hist.Sum()
				}
				continue
			}
			out[f.name+s.labels] = s.value()
		}
	}
	return out
}

// PublishExpvar exposes the registry's Snapshot under the given expvar name
// (served at /debug/vars). Publishing the same name twice is a no-op (expvar
// itself panics on duplicates, so the check matters for restarted
// components sharing a process).
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// formatValue renders a sample value: integers without exponent noise,
// everything else in compact scientific form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
