package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "help")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	// Idempotent registration returns the same instance.
	if r.Counter("x_total", "help") != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("g", "help")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
}

func TestLabeledSeriesAreDistinct(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "h", "server", "0")
	b := r.Counter("x_total", "h", "server", "1")
	if a == b {
		t.Fatal("different labels share a counter")
	}
	a.Inc()
	snap := r.Snapshot()
	if snap[`x_total{server="0"}`] != 1 || snap[`x_total{server="1"}`] != 0 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind mismatch")
		}
	}()
	r.Gauge("x", "h")
}

func TestPrometheusOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "second", "server", "3").Add(7)
	r.Gauge("a_gauge", "first").Set(1.25)
	r.CounterFunc("f_total", "func-backed", func() float64 { return 42 })
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE a_gauge gauge", "a_gauge 1.25",
		"# TYPE b_total counter", `b_total{server="3"} 7`,
		"f_total 42",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Families sorted by name.
	if strings.Index(out, "a_gauge") > strings.Index(out, "b_total") {
		t.Fatalf("families not sorted:\n%s", out)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(HistogramOpts{Min: 1e-3, Max: 1e3, BucketsPerDecade: 16})
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 10) // 0.1 .. 100
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if m := h.Mean(); math.Abs(m-50.05) > 1e-9 {
		t.Fatalf("mean = %v (sum must be exact)", m)
	}
	// Log-bucket quantiles are within one bucket ratio (~15% at 16/decade).
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 50}, {0.9, 90}, {0.99, 99},
	} {
		got := h.Quantile(tc.q)
		if got < tc.want*0.8 || got > tc.want*1.25 {
			t.Fatalf("q%v = %v, want ~%v", tc.q, got, tc.want)
		}
	}
}

func TestHistogramBoundsAndOverflow(t *testing.T) {
	h := NewHistogram(HistogramOpts{Min: 1, Max: 100, BucketsPerDecade: 4})
	h.Observe(0)   // underflow
	h.Observe(-5)  // underflow (never panics)
	h.Observe(1e9) // overflow
	h.Observe(math.NaN())
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("underflow quantile = %v", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Fatalf("overflow quantile = %v (want Max)", q)
	}
}

func TestHistogramPrometheusRender(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", HistogramOpts{Min: 0.001, Max: 10, BucketsPerDecade: 2}, "server", "1")
	h.Observe(0.5)
	h.Observe(100) // overflow
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`le="+Inf"} 2`,
		`lat_seconds_count{server="1"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("histogram output missing %q:\n%s", want, out)
		}
	}
}

// TestConcurrentUpdates exercises the lock-free paths under the race
// detector (CI runs this package with -race).
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "h")
	g := r.Gauge("g", "h")
	h := r.Histogram("h_seconds", "h", HistogramOpts{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 1000)
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d", c.Value())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge = %v", g.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d", h.Count())
	}
}
