package telemetry

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"
)

// Handler builds the admin endpoint multiplexer:
//
//	/metrics       Prometheus text exposition of reg
//	/debug/vars    expvar JSON (publish reg with PublishExpvar to include it)
//	/debug/pprof/  runtime profiling
//	/traces        JSON list of retained trace IDs
//	/trace/<id>    JSON span dump of one trace (decimal id)
//
// traces may be nil, in which case the trace routes answer 404.
func Handler(reg *Registry, traces *TraceStore) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/traces", func(w http.ResponseWriter, _ *http.Request) {
		if traces == nil {
			http.NotFound(w, nil)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(traces.IDs())
	})
	mux.HandleFunc("/trace/", func(w http.ResponseWriter, r *http.Request) {
		if traces == nil {
			http.NotFound(w, r)
			return
		}
		idStr := strings.TrimPrefix(r.URL.Path, "/trace/")
		id, err := strconv.ParseUint(idStr, 10, 64)
		if err != nil {
			http.Error(w, "bad trace id", http.StatusBadRequest)
			return
		}
		tr, ok := traces.Get(id)
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			TraceRecord
			Truncated bool
		}{tr, tr.Truncated()})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "terradir admin: /metrics /debug/vars /debug/pprof/ /traces /trace/<id>\n")
	})
	return mux
}

// AdminServer is a running admin HTTP listener.
type AdminServer struct {
	ln  net.Listener
	srv *http.Server
}

// Admin server timeout policy. The endpoint is unauthenticated operational
// plumbing, so it must not let one slow client pin a connection goroutine
// forever (slowloris). No WriteTimeout: /debug/pprof/profile and /trace
// legitimately stream for ~30s+, and a write deadline would cut them off.
const (
	adminReadHeaderTimeout = 5 * time.Second
	adminReadTimeout       = time.Minute
	adminIdleTimeout       = 2 * time.Minute
	adminShutdownTimeout   = 5 * time.Second
)

// StartAdmin binds addr and serves the admin Handler on it in a background
// goroutine. Close the returned server to stop it.
func StartAdmin(addr string, reg *Registry, traces *TraceStore) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: admin listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           Handler(reg, traces),
		ReadHeaderTimeout: adminReadHeaderTimeout,
		ReadTimeout:       adminReadTimeout,
		IdleTimeout:       adminIdleTimeout,
	}
	go srv.Serve(ln)
	return &AdminServer{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address.
func (a *AdminServer) Addr() string { return a.ln.Addr().String() }

// Close stops the server gracefully, letting in-flight handlers finish for
// up to adminShutdownTimeout before force-closing whatever remains.
func (a *AdminServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), adminShutdownTimeout)
	defer cancel()
	if err := a.srv.Shutdown(ctx); err != nil {
		return a.srv.Close()
	}
	return nil
}
