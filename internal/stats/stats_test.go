package stats

import (
	"math"
	"testing"
	"testing/quick"

	"terradir/internal/rng"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v", w.Mean())
	}
	// Unbiased variance of this classic data set is 32/7.
	if math.Abs(w.Var()-32.0/7) > 1e-12 {
		t.Fatalf("Var = %v, want %v", w.Var(), 32.0/7)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("min/max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.Std() != 0 || w.Min() != 0 || w.Max() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
}

func TestWelfordSingleSample(t *testing.T) {
	var w Welford
	w.Add(3.5)
	if w.Var() != 0 {
		t.Fatalf("single-sample Var = %v", w.Var())
	}
	if w.Min() != 3.5 || w.Max() != 3.5 {
		t.Fatal("min/max wrong for single sample")
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	src := rng.New(5)
	if err := quick.Check(func(seed uint32) bool {
		local := rng.New(uint64(seed))
		n1 := 1 + local.Intn(50)
		n2 := 1 + local.Intn(50)
		var a, b, all Welford
		for i := 0; i < n1; i++ {
			x := src.Float64() * 100
			a.Add(x)
			all.Add(x)
		}
		for i := 0; i < n2; i++ {
			x := src.Float64() * 100
			b.Add(x)
			all.Add(x)
		}
		a.Merge(&b)
		return a.N() == all.N() &&
			math.Abs(a.Mean()-all.Mean()) < 1e-9 &&
			math.Abs(a.Var()-all.Var()) < 1e-6 &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMergeEmptySides(t *testing.T) {
	var a, b Welford
	b.Add(1)
	b.Add(3)
	a.Merge(&b) // empty <- nonempty
	if a.N() != 2 || a.Mean() != 2 {
		t.Fatal("merge into empty failed")
	}
	var c Welford
	a.Merge(&c) // nonempty <- empty
	if a.N() != 2 || a.Mean() != 2 {
		t.Fatal("merge of empty changed accumulator")
	}
}

func TestSeriesBinning(t *testing.T) {
	s := NewSeries(1.0)
	s.Incr(0.1)
	s.Incr(0.9)
	s.Add(1.5, 10)
	s.Incr(3.0)
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Sum(0) != 2 || s.Sum(1) != 10 || s.Sum(2) != 0 || s.Sum(3) != 1 {
		t.Fatalf("sums = %v %v %v %v", s.Sum(0), s.Sum(1), s.Sum(2), s.Sum(3))
	}
	if s.Count(1) != 1 {
		t.Fatalf("Count(1) = %d", s.Count(1))
	}
	if s.Total() != 13 {
		t.Fatalf("Total = %v", s.Total())
	}
}

func TestSeriesMeanAt(t *testing.T) {
	s := NewSeries(0.5)
	s.Add(0.1, 2)
	s.Add(0.2, 4)
	if got := s.MeanAt(0); got != 3 {
		t.Fatalf("MeanAt(0) = %v", got)
	}
	if got := s.MeanAt(5); got != 0 {
		t.Fatalf("MeanAt(empty bin) = %v", got)
	}
	if got := s.MeanAt(-1); got != 0 {
		t.Fatalf("MeanAt(-1) = %v", got)
	}
}

func TestSeriesNegativeTimeClamps(t *testing.T) {
	s := NewSeries(1)
	s.Add(-5, 1)
	if s.Sum(0) != 1 {
		t.Fatal("negative time should clamp to bin 0")
	}
}

func TestSeriesOutOfRangeReads(t *testing.T) {
	s := NewSeries(1)
	if s.Sum(3) != 0 || s.Count(3) != 0 || s.Sum(-1) != 0 {
		t.Fatal("out-of-range reads should be zero")
	}
}

func TestSeriesPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero bin width")
		}
	}()
	NewSeries(0)
}

func TestSeriesSumsCopy(t *testing.T) {
	s := NewSeries(1)
	s.Add(0, 5)
	sums := s.Sums()
	sums[0] = 99
	if s.Sum(0) != 5 {
		t.Fatal("Sums() returned aliased storage")
	}
}

func TestSlidingMeanConstant(t *testing.T) {
	v := []float64{3, 3, 3, 3, 3}
	out := SlidingMean(v, 3)
	for i, x := range out {
		if x != 3 {
			t.Fatalf("out[%d] = %v", i, x)
		}
	}
}

func TestSlidingMeanWindow(t *testing.T) {
	v := []float64{0, 0, 10, 0, 0}
	out := SlidingMean(v, 5)
	// Center sees the full window: 10/5 = 2.
	if out[2] != 2 {
		t.Fatalf("out[2] = %v", out[2])
	}
	// Edge uses partial window [0..2]: 10/3.
	if math.Abs(out[0]-10.0/3) > 1e-12 {
		t.Fatalf("out[0] = %v", out[0])
	}
}

func TestSlidingMeanWidthNormalization(t *testing.T) {
	v := []float64{1, 2, 3, 4}
	// Width 0 -> 1 (identity); width 2 -> 3.
	out := SlidingMean(v, 0)
	for i := range v {
		if out[i] != v[i] {
			t.Fatal("width<1 should be identity")
		}
	}
	out2 := SlidingMean(v, 2)
	if math.Abs(out2[1]-2) > 1e-12 { // (1+2+3)/3
		t.Fatalf("even width not rounded up: %v", out2[1])
	}
}

func TestSlidingMeanEmpty(t *testing.T) {
	if out := SlidingMean(nil, 11); len(out) != 0 {
		t.Fatal("empty input should yield empty output")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if h.N() != 100 {
		t.Fatalf("N = %d", h.N())
	}
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Fatalf("q1 = %v", q)
	}
	if q := h.Quantile(0.5); math.Abs(q-50) > 1.5 {
		t.Fatalf("median = %v", q)
	}
	if math.Abs(h.Mean()-50.5) > 1e-9 {
		t.Fatalf("mean = %v", h.Mean())
	}
}

func TestHistogramReservoirBoundsMemory(t *testing.T) {
	h := NewHistogram(512)
	const total = 100_000
	for i := 1; i <= total; i++ {
		h.Add(float64(i))
	}
	if h.N() != total {
		t.Fatalf("N = %d", h.N())
	}
	if len(h.samples) != 512 {
		t.Fatalf("reservoir grew to %d (cap 512)", len(h.samples))
	}
	// Exact aggregates survive past the cap.
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("min = %v", q)
	}
	if q := h.Quantile(1); q != total {
		t.Fatalf("max = %v", q)
	}
	if m := h.Mean(); math.Abs(m-(total+1)/2.0) > 1e-6 {
		t.Fatalf("mean = %v", m)
	}
	// A uniform reservoir over a uniform stream keeps the median near the
	// true value; ±10% is ~5 standard errors at 512 samples.
	if q := h.Quantile(0.5); q < total*0.40 || q > total*0.60 {
		t.Fatalf("median = %v, want ~%v", q, total/2)
	}
}

func TestHistogramDeterministic(t *testing.T) {
	a, b := NewHistogram(64), NewHistogram(64)
	for i := 0; i < 10_000; i++ {
		x := float64(i%997) * 1.5
		a.Add(x)
		b.Add(x)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("identical streams disagree at q=%v: %v vs %v", q, a.Quantile(q), b.Quantile(q))
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramAddAfterQuantile(t *testing.T) {
	var h Histogram
	h.Add(5)
	_ = h.Quantile(0.5)
	h.Add(1)
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("q0 after re-add = %v", q)
	}
}

func TestGini(t *testing.T) {
	if g := Gini([]float64{1, 1, 1, 1}); math.Abs(g) > 1e-12 {
		t.Fatalf("uniform Gini = %v", g)
	}
	// All mass on one of n: G = (n-1)/n.
	if g := Gini([]float64{0, 0, 0, 10}); math.Abs(g-0.75) > 1e-12 {
		t.Fatalf("point-mass Gini = %v", g)
	}
	if g := Gini(nil); g != 0 {
		t.Fatalf("empty Gini = %v", g)
	}
	if g := Gini([]float64{0, 0}); g != 0 {
		t.Fatalf("all-zero Gini = %v", g)
	}
}

func TestGiniDoesNotMutate(t *testing.T) {
	v := []float64{3, 1, 2}
	Gini(v)
	if v[0] != 3 || v[1] != 1 || v[2] != 2 {
		t.Fatal("Gini mutated its input")
	}
}

func TestCounter(t *testing.T) {
	c := Counter{Name: "drops"}
	c.Incr()
	c.Add(4)
	if c.Value != 5 {
		t.Fatalf("Value = %d", c.Value)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:       "3",
		-2:      "-2",
		0:       "0",
		1.5:     "1.5",
		0.12345: "0.12345",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
