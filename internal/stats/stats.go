// Package stats provides the light-weight metric primitives the TerraDir
// experiments need: streaming mean/variance accumulators (Welford), fixed-bin
// time series keyed by simulation time, simple histograms with quantile
// extraction, and the sliding-window maximum smoothing the paper applies in
// Fig. 6 ("max load averaged over 11 seconds").
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates a stream of float64 samples and reports count, mean,
// variance, min and max in O(1) memory. The zero value is ready to use.
type Welford struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add incorporates one sample.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (0 if empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 if fewer than 2 samples).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest sample (0 if empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest sample (0 if empty).
func (w *Welford) Max() float64 { return w.max }

// Merge folds other into w (parallel-combinable Chan et al. update).
func (w *Welford) Merge(other *Welford) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *other
		return
	}
	n := w.n + other.n
	d := other.mean - w.mean
	w.m2 += other.m2 + d*d*float64(w.n)*float64(other.n)/float64(n)
	w.mean += d * float64(other.n) / float64(n)
	if other.min < w.min {
		w.min = other.min
	}
	if other.max > w.max {
		w.max = other.max
	}
	w.n = n
}

// Series is a fixed-bin time series: values are accumulated into bins of
// uniform width starting at time zero. It backs the paper's per-second
// plots (drops/s, replicas created/s, load over time).
type Series struct {
	binWidth float64
	sums     []float64
	counts   []int64
}

// NewSeries creates a series with the given bin width (> 0).
func NewSeries(binWidth float64) *Series {
	if binWidth <= 0 {
		panic("stats: NewSeries requires positive bin width")
	}
	return &Series{binWidth: binWidth}
}

// BinWidth returns the bin width.
func (s *Series) BinWidth() float64 { return s.binWidth }

func (s *Series) grow(bin int) {
	for len(s.sums) <= bin {
		s.sums = append(s.sums, 0)
		s.counts = append(s.counts, 0)
	}
}

// Bin returns the bin index for time t.
func (s *Series) Bin(t float64) int {
	if t < 0 {
		return 0
	}
	return int(t / s.binWidth)
}

// Add accumulates value v at time t.
func (s *Series) Add(t, v float64) {
	b := s.Bin(t)
	s.grow(b)
	s.sums[b] += v
	s.counts[b]++
}

// Incr adds 1 at time t (event counting).
func (s *Series) Incr(t float64) { s.Add(t, 1) }

// Len returns the number of bins touched so far.
func (s *Series) Len() int { return len(s.sums) }

// Sum returns the accumulated sum in bin i (0 for out-of-range bins).
func (s *Series) Sum(i int) float64 {
	if i < 0 || i >= len(s.sums) {
		return 0
	}
	return s.sums[i]
}

// Count returns the number of samples in bin i.
func (s *Series) Count(i int) int64 {
	if i < 0 || i >= len(s.counts) {
		return 0
	}
	return s.counts[i]
}

// MeanAt returns the mean of samples in bin i (0 if empty).
func (s *Series) MeanAt(i int) float64 {
	if i < 0 || i >= len(s.sums) || s.counts[i] == 0 {
		return 0
	}
	return s.sums[i] / float64(s.counts[i])
}

// Total returns the sum over all bins.
func (s *Series) Total() float64 {
	t := 0.0
	for _, v := range s.sums {
		t += v
	}
	return t
}

// Sums returns a copy of all bin sums.
func (s *Series) Sums() []float64 {
	out := make([]float64, len(s.sums))
	copy(out, s.sums)
	return out
}

// SlidingMean returns series v smoothed with a centered window of the given
// odd width (the paper's 11-second smoothing of per-second maxima). Edges
// use the available partial window. Even widths are rounded up.
func SlidingMean(v []float64, width int) []float64 {
	if width < 1 {
		width = 1
	}
	if width%2 == 0 {
		width++
	}
	half := width / 2
	out := make([]float64, len(v))
	for i := range v {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi >= len(v) {
			hi = len(v) - 1
		}
		sum := 0.0
		for j := lo; j <= hi; j++ {
			sum += v[j]
		}
		out[i] = sum / float64(hi-lo+1)
	}
	return out
}

// DefaultHistogramCap is the reservoir size a zero-value Histogram uses.
// 4096 samples bound the quantile's standard error to under ~1% at any
// stream length while keeping memory fixed.
const DefaultHistogramCap = 4096

// Histogram summarizes a sample stream in bounded memory: count, sum, min
// and max are tracked exactly, and quantiles are estimated from a uniform
// reservoir (Vitter's Algorithm R) of at most Cap samples. Below the cap it
// retains every sample, so small runs keep exact quantiles; past it, memory
// stays fixed no matter how many samples stream through — the property
// multi-million-query experiment runs need. Replacement uses a deterministic
// seeded generator, so identical streams produce identical summaries. The
// zero value is ready to use with DefaultHistogramCap.
type Histogram struct {
	samples []float64 // uniform reservoir over the stream
	cap     int
	n       int64
	sum     float64
	min     float64
	max     float64
	rstate  uint64 // splitmix64 state for replacement draws
	sorted  bool
}

// NewHistogram creates a histogram whose reservoir keeps at most cap samples
// (<= 0 selects DefaultHistogramCap).
func NewHistogram(cap int) *Histogram {
	if cap <= 0 {
		cap = DefaultHistogramCap
	}
	return &Histogram{cap: cap}
}

// Add incorporates a sample.
func (h *Histogram) Add(x float64) {
	if h.n == 0 {
		h.min, h.max = x, x
	} else {
		if x < h.min {
			h.min = x
		}
		if x > h.max {
			h.max = x
		}
	}
	h.n++
	h.sum += x
	if h.cap == 0 {
		h.cap = DefaultHistogramCap
	}
	if len(h.samples) < h.cap {
		h.samples = append(h.samples, x)
		h.sorted = false
		return
	}
	// Algorithm R: replace a uniformly random slot with probability cap/n.
	h.rstate += 0x9e3779b97f4a7c15
	r := h.rstate
	r ^= r >> 30
	r *= 0xbf58476d1ce4e5b9
	r ^= r >> 27
	r *= 0x94d049bb133111eb
	r ^= r >> 31
	if j := int(r % uint64(h.n)); j < len(h.samples) {
		h.samples[j] = x
		h.sorted = false
	}
}

// N returns the total number of samples observed (not the retained count).
func (h *Histogram) N() int { return int(h.n) }

// Mean returns the exact sample mean (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min returns the smallest sample (0 if empty).
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest sample (0 if empty).
func (h *Histogram) Max() float64 { return h.max }

// Quantile returns the q-quantile (0 <= q <= 1): exact min/max at the
// extremes, nearest-rank over the reservoir otherwise (exact while the
// stream fits the cap, an unbiased estimate beyond it); 0 if empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	idx := int(q * float64(len(h.samples)-1))
	return h.samples[idx]
}

// Counter is a named monotonic event counter.
type Counter struct {
	Name  string
	Value int64
}

// Incr increments the counter by one.
func (c *Counter) Incr() { c.Value++ }

// Append adds n to the counter.
func (c *Counter) Add(n int64) { c.Value += n }

// Gini computes the Gini coefficient of the given values (a standard load
// imbalance measure: 0 = perfectly balanced, →1 = maximally skewed). Values
// must be non-negative; the input slice is not modified.
func Gini(values []float64) float64 {
	n := len(values)
	if n == 0 {
		return 0
	}
	v := make([]float64, n)
	copy(v, values)
	sort.Float64s(v)
	var cum, total float64
	for i, x := range v {
		cum += float64(i+1) * x
		total += x
	}
	if total == 0 {
		return 0
	}
	return (2*cum)/(float64(n)*total) - float64(n+1)/float64(n)
}

// FormatFloat renders a float with trailing-zero trimming for TSV output.
func FormatFloat(x float64) string {
	if x == math.Trunc(x) && math.Abs(x) < 1e15 {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%.6g", x)
}
