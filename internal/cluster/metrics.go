package cluster

import "terradir/internal/stats"

// Metrics aggregates everything the paper's figures report. Time series are
// 1-second bins of simulation time.
type Metrics struct {
	// Injected counts queries entering the system per second.
	Injected *stats.Series
	// Drops counts queries discarded by full request queues per second
	// (the paper's "dropped queries"), plus those lost to failed servers.
	Drops *stats.Series
	// Creations counts replica installs per second (Fig. 4, Fig. 8).
	Creations *stats.Series

	// LoadAvg and LoadMax sample mean and maximum server load once per
	// second (Fig. 6).
	LoadAvg []float64
	LoadMax []float64

	// Latency and Hops record completed-lookup distributions.
	Latency stats.Histogram
	Hops    stats.Histogram

	Completed     int64
	FailedTTL     int64
	FailedNoRoute int64
	DroppedTotal  int64

	// Message counts by class (E11: control traffic vs. query traffic).
	QueryMsgs   int64
	ResultMsgs  int64
	ControlMsgs int64

	// CreationsByLevel accumulates replica creations per namespace depth
	// (Fig. 7).
	CreationsByLevel []int64
	Evictions        int64

	// Routing accuracy: forwarding steps that made incremental progress in
	// the namespace metric (§4.4).
	ProgressSteps int64
	TotalSteps    int64
}

func newMetrics(levels int) *Metrics {
	return &Metrics{
		Injected:         stats.NewSeries(1),
		Drops:            stats.NewSeries(1),
		Creations:        stats.NewSeries(1),
		CreationsByLevel: make([]int64, levels),
	}
}

// DropFraction returns total drops over total injected (0 if nothing was
// injected).
func (m *Metrics) DropFraction() float64 {
	inj := m.Injected.Total()
	if inj == 0 {
		return 0
	}
	return float64(m.DroppedTotal) / inj
}

// Accuracy returns the fraction of forwarding steps with incremental
// progress (1 if there were no steps).
func (m *Metrics) Accuracy() float64 {
	if m.TotalSteps == 0 {
		return 1
	}
	return float64(m.ProgressSteps) / float64(m.TotalSteps)
}

// MeanLoad returns the time-average of the per-second mean server load.
func (m *Metrics) MeanLoad() float64 {
	var w stats.Welford
	for _, v := range m.LoadAvg {
		w.Add(v)
	}
	return w.Mean()
}

// TotalCreations returns the total number of replica creations.
func (m *Metrics) TotalCreations() int64 {
	return int64(m.Creations.Total())
}
