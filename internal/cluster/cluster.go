// Package cluster wires core.Peer instances into the discrete-event
// simulator with the queueing model of the paper's methodology (§4.1):
// exponential per-query service, a bounded per-server request queue that
// drops on overflow, constant application-layer network delay, Poisson
// arrivals at uniformly random source servers, and uniform-random (or
// balanced) node-to-server assignment. Control and result messages bypass
// the service queue (they are lightweight; E11 verifies they are ≥2 orders
// of magnitude rarer than queries).
package cluster

import (
	"fmt"

	"terradir/internal/core"
	"terradir/internal/namespace"
	"terradir/internal/rng"
	"terradir/internal/sim"
	"terradir/internal/workload"
)

// Assignment selects how nodes map onto servers.
type Assignment uint8

const (
	// AssignRandom maps each node to a uniformly random server (the paper's
	// main experiments).
	AssignRandom Assignment = iota
	// AssignBalanced deals a random permutation of nodes out evenly
	// (Fig. 9's "nodes per server kept constant").
	AssignBalanced
)

// Params configures a simulated TerraDir deployment.
type Params struct {
	Servers     int
	Tree        *namespace.Tree
	Seed        uint64
	ServiceMean float64 // mean query service time, seconds (calibrated, see DefaultParams)
	NetDelay    float64 // constant application-layer network time (25 ms)
	QueueCap    int     // request queue slots (12)
	LoadWindow  float64 // load metric window Ω (0.5 s)
	Assignment  Assignment
	Core        core.Config
	// Oracle replaces Bloom digests with perfect inverse-mapping knowledge
	// (§4.4's optimal-behavior yardstick).
	Oracle bool
	// Static pre-replicates the top of the namespace at setup (§2.3's
	// static alternative to the adaptive protocol): every node at depth <
	// Static.Levels is replicated onto Static.Factor random servers before
	// any traffic flows.
	Static StaticReplication
}

// StaticReplication configures setup-time replication of top namespace
// levels.
type StaticReplication struct {
	Levels int // replicate nodes at depth < Levels (0 disables)
	Factor int // replicas per node
}

// DefaultParams returns the paper's methodology constants for the given
// namespace and server count.
func DefaultParams(tree *namespace.Tree, servers int) Params {
	cfg := core.DefaultConfig()
	// Per-server soft-state tables stay a bounded *fraction* of the system
	// (the paper's "local information and scalability" goal): a peer that
	// retains digests for most of the population would route with near-
	// global knowledge and mask the hierarchical bottleneck the protocol
	// exists to fix.
	cfg.MaxDigests = clampInt(servers/4, 16, 256)
	if cfg.DigestScanPerHop > cfg.MaxDigests {
		cfg.DigestScanPerHop = cfg.MaxDigests
	}
	cfg.MaxKnownLoads = clampInt(servers/8, 16, 128)
	return Params{
		Servers: servers,
		Tree:    tree,
		Seed:    1,
		// Calibrated (the paper's constant is OCR-lost) so that the paper's
		// query-rate ladder λ = 4k/10k/20k on 1000 servers lands near its
		// reported utilization ladder ≈ 0.2/0.5/0.8 at our realized mean
		// route length; see DESIGN.md §4.
		ServiceMean: 0.008,
		NetDelay:    0.025,
		QueueCap:    12,
		LoadWindow:  0.5,
		Core:        cfg,
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Cluster is a simulated TerraDir deployment.
type Cluster struct {
	p        Params
	eng      *sim.Engine
	peers    []*core.Peer
	stations []*sim.Station
	owner    []core.ServerID // node -> owning server
	hosts    [][]core.ServerID
	failed   []bool

	arrivalSrc *rng.Source
	queryID    uint64

	Metrics *Metrics
}

type peerEnv struct {
	c  *Cluster
	id core.ServerID
}

func (e peerEnv) Now() float64  { return e.c.eng.Now() }
func (e peerEnv) Load() float64 { return e.c.stations[e.id].Load() }
func (e peerEnv) After(d float64, fn func()) {
	e.c.eng.After(d, fn)
}
func (e peerEnv) Send(to core.ServerID, m core.Message) {
	c := e.c
	switch m.(type) {
	case *core.QueryMsg:
		c.Metrics.QueryMsgs++
	case *core.ResultMsg:
		c.Metrics.ResultMsgs++
	default:
		c.Metrics.ControlMsgs++
	}
	delay := c.p.NetDelay
	if to == e.id {
		delay = 0 // local delivery (e.g. a replica shortcut on this server)
	}
	c.eng.After(delay, func() { c.deliver(to, m) })
}

// New constructs and wires a cluster. The namespace is assigned to servers,
// every peer's routing context is initialized to the true owners, and all
// instrumentation hooks are installed.
func New(p Params) (*Cluster, error) {
	if p.Servers < 1 {
		return nil, fmt.Errorf("cluster: Servers = %d", p.Servers)
	}
	if p.Tree == nil {
		return nil, fmt.Errorf("cluster: nil namespace")
	}
	if p.ServiceMean <= 0 || p.NetDelay < 0 || p.LoadWindow <= 0 {
		return nil, fmt.Errorf("cluster: invalid timing parameters")
	}
	if p.QueueCap < 0 {
		return nil, fmt.Errorf("cluster: negative QueueCap")
	}
	if err := p.Core.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		p:       p,
		eng:     &sim.Engine{},
		owner:   make([]core.ServerID, p.Tree.Len()),
		hosts:   make([][]core.ServerID, p.Tree.Len()),
		failed:  make([]bool, p.Servers),
		Metrics: newMetrics(p.Tree.MaxDepth() + 1),
	}
	root := rng.New(p.Seed)
	assignSrc := root.Split()
	c.arrivalSrc = root.Split()

	n := p.Tree.Len()
	switch p.Assignment {
	case AssignBalanced:
		perm := make([]int, n)
		assignSrc.Perm(perm)
		for i, node := range perm {
			c.owner[node] = core.ServerID(i % p.Servers)
		}
	default:
		for i := 0; i < n; i++ {
			c.owner[i] = core.ServerID(assignSrc.Intn(p.Servers))
		}
	}
	for node := 0; node < n; node++ {
		c.hosts[node] = append(c.hosts[node], c.owner[node])
	}

	c.peers = make([]*core.Peer, p.Servers)
	c.stations = make([]*sim.Station, p.Servers)
	for i := 0; i < p.Servers; i++ {
		id := core.ServerID(i)
		peer, err := core.NewPeer(id, p.Tree, p.Core, peerEnv{c: c, id: id}, root.Split())
		if err != nil {
			return nil, err
		}
		c.peers[i] = peer
		st := sim.NewStation(c.eng, root.Split(), p.ServiceMean, p.QueueCap, p.LoadWindow)
		st.Process = func(j sim.Job) { peer.HandleQuery(j.(*core.QueryMsg)) }
		st.OnDrop = func(sim.Job) {
			c.Metrics.Drops.Incr(c.eng.Now())
			c.Metrics.DroppedTotal++
		}
		c.stations[i] = st
		c.installHooks(peer)
	}
	ownerOf := func(nd core.NodeID) core.ServerID { return c.owner[nd] }
	for node := 0; node < n; node++ {
		c.peers[c.owner[node]].AddOwned(core.NodeID(node), core.Meta{})
	}
	for _, peer := range c.peers {
		peer.FinishSetup(ownerOf)
	}
	if p.Oracle {
		for _, peer := range c.peers {
			peer.OracleHosts = c.HostsOf
		}
	}
	if p.Static.Levels > 0 && p.Static.Factor > 0 {
		c.staticReplicate(assignSrc, p.Static)
	}
	return c, nil
}

// staticReplicate installs Factor replicas of every node at depth < Levels
// onto distinct random servers (excluding the owner) before the run starts.
func (c *Cluster) staticReplicate(src *rng.Source, st StaticReplication) {
	for node := 0; node < c.p.Tree.Len(); node++ {
		nd := core.NodeID(node)
		if c.p.Tree.Depth(nd) >= st.Levels {
			continue
		}
		owner := c.owner[nd]
		pl, ok := c.peers[owner].BuildReplicaPayload(nd)
		if !ok {
			continue
		}
		pl.WeightHint = 1 // neutral seed rank for bootstrap replicas
		placed := 0
		for attempt := 0; attempt < 4*st.Factor && placed < st.Factor; attempt++ {
			target := core.ServerID(src.Intn(c.p.Servers))
			if target == owner || c.peers[target].Hosts(nd) {
				continue
			}
			plCopy := core.ReplicaPayload{
				Node: pl.Node, Meta: pl.Meta.Clone(), SelfMap: pl.SelfMap.Clone(),
				WeightHint: pl.WeightHint,
			}
			for _, nb := range pl.Neighbors {
				plCopy.Neighbors = append(plCopy.Neighbors, core.NeighborMap{Node: nb.Node, Map: nb.Map.Clone()})
			}
			if c.peers[target].InstallReplica(&plCopy, owner) {
				placed++
			}
		}
	}
}

func (c *Cluster) installHooks(peer *core.Peer) {
	id := peer.ID
	peer.Hooks.OnReplicaInstalled = func(node core.NodeID, from core.ServerID) {
		now := c.eng.Now()
		c.Metrics.Creations.Incr(now)
		c.Metrics.CreationsByLevel[c.p.Tree.Depth(node)]++
		c.hosts[node] = append(c.hosts[node], id)
	}
	peer.Hooks.OnReplicaEvicted = func(node core.NodeID) {
		c.Metrics.Evictions++
		hs := c.hosts[node]
		for i, s := range hs {
			if s == id {
				c.hosts[node] = append(hs[:i], hs[i+1:]...)
				break
			}
		}
	}
	peer.Hooks.OnForwardStep = func(prev, new int) {
		c.Metrics.TotalSteps++
		if new < prev {
			c.Metrics.ProgressSteps++
		}
	}
}

// Engine exposes the simulation engine (read-only use: Now, Processed).
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// Peer returns server i's protocol state machine.
func (c *Cluster) Peer(i int) *core.Peer { return c.peers[i] }

// Servers returns the number of servers.
func (c *Cluster) Servers() int { return c.p.Servers }

// Tree returns the namespace.
func (c *Cluster) Tree() *namespace.Tree { return c.p.Tree }

// OwnerOf returns the owner of a node.
func (c *Cluster) OwnerOf(node core.NodeID) core.ServerID { return c.owner[node] }

// HostsOf returns the servers currently hosting node (owner plus live
// replicas). The slice is live; callers must not mutate it.
func (c *Cluster) HostsOf(node core.NodeID) []core.ServerID { return c.hosts[node] }

// FailServer takes a server offline: all messages to it are lost (queries
// count as drops) and its queue stops serving. Routing state elsewhere is
// untouched — the protocol's soft state must route around it.
func (c *Cluster) FailServer(id core.ServerID) { c.failed[id] = true }

// RecoverServer brings a failed server back with its state intact.
func (c *Cluster) RecoverServer(id core.ServerID) { c.failed[id] = false }

func (c *Cluster) deliver(to core.ServerID, m core.Message) {
	if c.failed[to] {
		if _, isQuery := m.(*core.QueryMsg); isQuery {
			c.Metrics.Drops.Incr(c.eng.Now())
			c.Metrics.DroppedTotal++
		}
		return
	}
	switch msg := m.(type) {
	case *core.QueryMsg:
		c.stations[to].Arrive(msg)
	case *core.ResultMsg:
		c.recordResult(msg)
		c.peers[to].HandleResult(msg)
	default:
		c.peers[to].HandleControl(m)
	}
}

func (c *Cluster) recordResult(r *core.ResultMsg) {
	switch {
	case r.OK:
		c.Metrics.Completed++
		c.Metrics.Latency.Add(c.eng.Now() - r.Started)
		c.Metrics.Hops.Add(float64(r.Hops))
	case r.Reason == core.FailTTL:
		c.Metrics.FailedTTL++
	default:
		c.Metrics.FailedNoRoute++
	}
}

// InjectQuery submits one lookup at the given source server right now,
// returning its query ID. Used by tests and examples; Run drives the Poisson
// process for experiments.
func (c *Cluster) InjectQuery(source core.ServerID, dest core.NodeID) uint64 {
	c.queryID++
	q := &core.QueryMsg{
		QueryID:  c.queryID,
		Dest:     dest,
		Source:   source,
		OnBehalf: namespace.Invalid,
		Started:  c.eng.Now(),
	}
	c.Metrics.Injected.Incr(c.eng.Now())
	if c.failed[source] {
		c.Metrics.Drops.Incr(c.eng.Now())
		c.Metrics.DroppedTotal++
		return c.queryID
	}
	c.stations[source].Arrive(q)
	return c.queryID
}

// Run drives the cluster for `duration` seconds of simulated time under the
// given workload: Poisson arrivals at w.Rate(t), destinations from
// w.Dest(t), uniform random sources. Maintenance and sampling ticks run
// alongside. Run may be called repeatedly; time continues monotonically.
func (c *Cluster) Run(w *workload.Workload, duration float64) {
	start := c.eng.Now()
	end := start + duration

	// Poisson arrival process.
	var arrive func()
	arrive = func() {
		now := c.eng.Now()
		src := core.ServerID(c.arrivalSrc.Intn(c.p.Servers))
		c.InjectQuery(src, w.Dest(now))
		dt := c.arrivalSrc.Exp(1 / w.Rate(now))
		if now+dt < end {
			c.eng.At(now+dt, arrive)
		}
	}
	first := start + c.arrivalSrc.Exp(1/w.Rate(start))
	if first < end {
		c.eng.At(first, arrive)
	}

	// Per-second load sampling (Fig. 6).
	var sample func()
	sample = func() {
		var sum, max float64
		for _, st := range c.stations {
			l := st.Load()
			sum += l
			if l > max {
				max = l
			}
		}
		c.Metrics.LoadAvg = append(c.Metrics.LoadAvg, sum/float64(len(c.stations)))
		c.Metrics.LoadMax = append(c.Metrics.LoadMax, max)
		if c.eng.Now()+1 <= end {
			c.eng.After(1, sample)
		}
	}
	c.eng.At(start+1, sample)

	// Maintenance ticks (digest rebuilds, bias decay, age eviction).
	mi := c.p.Core.MaintainInterval
	var maintain func()
	maintain = func() {
		for i, peer := range c.peers {
			if !c.failed[i] {
				peer.Maintain()
			}
		}
		if c.eng.Now()+mi <= end {
			c.eng.After(mi, maintain)
		}
	}
	c.eng.At(start+mi, maintain)

	c.eng.Run(end)
}

// RunTrace replays an explicit query trace: each event arrives at its
// recorded time, at its recorded source server (uniform random when the
// event's source is -1). Maintenance and load sampling run as in Run. Time
// continues from the engine's current clock; trace times are relative to it.
func (c *Cluster) RunTrace(tr *workload.Trace, extra float64) {
	start := c.eng.Now()
	end := start + tr.Duration() + extra
	for _, e := range tr.Events {
		ev := e
		c.eng.At(start+ev.T, func() {
			src := core.ServerID(0)
			if ev.Source >= 0 && int(ev.Source) < c.p.Servers {
				src = core.ServerID(ev.Source)
			} else {
				src = core.ServerID(c.arrivalSrc.Intn(c.p.Servers))
			}
			c.InjectQuery(src, ev.Dest)
		})
	}
	var sample func()
	sample = func() {
		var sum, max float64
		for _, st := range c.stations {
			l := st.Load()
			sum += l
			if l > max {
				max = l
			}
		}
		c.Metrics.LoadAvg = append(c.Metrics.LoadAvg, sum/float64(len(c.stations)))
		c.Metrics.LoadMax = append(c.Metrics.LoadMax, max)
		if c.eng.Now()+1 <= end {
			c.eng.After(1, sample)
		}
	}
	c.eng.At(start+1, sample)
	mi := c.p.Core.MaintainInterval
	var maintain func()
	maintain = func() {
		for i, peer := range c.peers {
			if !c.failed[i] {
				peer.Maintain()
			}
		}
		if c.eng.Now()+mi <= end {
			c.eng.After(mi, maintain)
		}
	}
	c.eng.At(start+mi, maintain)
	c.eng.Run(end)
}

// Drain runs the engine until all in-flight events settle or maxExtra
// seconds pass, without injecting new queries. Call after Run to let
// outstanding lookups finish before reading completion metrics.
func (c *Cluster) Drain(maxExtra float64) {
	c.eng.Run(c.eng.Now() + maxExtra)
}

// TotalReplicas sums replicas currently hosted across all peers.
func (c *Cluster) TotalReplicas() int {
	total := 0
	for _, p := range c.peers {
		total += p.ReplicaCount()
	}
	return total
}

// AggregateStats sums per-peer protocol counters.
func (c *Cluster) AggregateStats() core.Stats {
	var agg core.Stats
	for _, p := range c.peers {
		s := p.Stats
		agg.Processed += s.Processed
		agg.Resolved += s.Resolved
		agg.Forwarded += s.Forwarded
		agg.FailedTTL += s.FailedTTL
		agg.FailedNoRoute += s.FailedNoRoute
		agg.DigestShortcuts += s.DigestShortcuts
		agg.CacheHits += s.CacheHits
		agg.ContextHops += s.ContextHops
		agg.ReplicaInstalls += s.ReplicaInstalls
		agg.ReplicaEvictions += s.ReplicaEvictions
		agg.SessionsStarted += s.SessionsStarted
		agg.SessionsAborted += s.SessionsAborted
		agg.SessionsOK += s.SessionsOK
		agg.ControlSent += s.ControlSent
		agg.ResultsSent += s.ResultsSent
		agg.StaleSelfPurged += s.StaleSelfPurged
	}
	return agg
}

// LoadSnapshot returns every server's current load (index = server ID).
func (c *Cluster) LoadSnapshot() []float64 {
	out := make([]float64, len(c.stations))
	for i, st := range c.stations {
		out[i] = st.Load()
	}
	return out
}
