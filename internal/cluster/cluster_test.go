package cluster

import (
	"testing"

	"terradir/internal/core"
	"terradir/internal/namespace"
	"terradir/internal/rng"
	"terradir/internal/workload"
)

// smallCluster builds a modest deterministic deployment for tests.
func smallCluster(t *testing.T, servers int, levels int, mut func(*Params)) *Cluster {
	t.Helper()
	tree := namespace.NewBalanced(2, levels)
	p := DefaultParams(tree, servers)
	p.Seed = 42
	if mut != nil {
		mut(&p)
	}
	c, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSingleLookupResolves(t *testing.T) {
	c := smallCluster(t, 16, 8, nil)
	dest := core.NodeID(c.Tree().Len() - 1)
	c.InjectQuery(3, dest)
	c.Drain(30)
	if c.Metrics.Completed != 1 {
		t.Fatalf("completed = %d (failedTTL=%d noroute=%d drops=%d)",
			c.Metrics.Completed, c.Metrics.FailedTTL, c.Metrics.FailedNoRoute, c.Metrics.DroppedTotal)
	}
	if c.Metrics.Latency.N() != 1 || c.Metrics.Latency.Mean() <= 0 {
		t.Fatal("latency not recorded")
	}
}

func TestAllLookupsResolveLightLoad(t *testing.T) {
	c := smallCluster(t, 32, 9, nil)
	w := workload.Unif(c.Tree().Len(), rng.New(7), 200, 10)
	c.Run(w, 10)
	c.Drain(30)
	m := c.Metrics
	inj := int64(m.Injected.Total())
	if inj < 1500 {
		t.Fatalf("only %d injected", inj)
	}
	done := m.Completed + m.FailedTTL + m.FailedNoRoute + m.DroppedTotal
	if done != inj {
		t.Fatalf("accounting mismatch: injected %d, accounted %d", inj, done)
	}
	if m.FailedNoRoute > 0 {
		t.Fatalf("no-route failures under light load: %d", m.FailedNoRoute)
	}
	if float64(m.Completed) < 0.99*float64(inj) {
		t.Fatalf("completed %d of %d under light load", m.Completed, inj)
	}
}

func TestReplicationTriggersUnderHotspot(t *testing.T) {
	c := smallCluster(t, 16, 8, nil)
	// Heavy skew: all queries to one leaf; arrival rate well above a single
	// server's capacity (50/s at 20 ms), shared across 16 servers.
	w := workload.UZipf(c.Tree().Len(), rng.New(9), 1.5, 300, 20)
	c.Run(w, 20)
	c.Drain(30)
	if got := c.Metrics.TotalCreations(); got == 0 {
		t.Fatal("no replicas created under heavy skew")
	}
	if c.TotalReplicas() == 0 {
		t.Fatal("no replicas currently hosted")
	}
}

func TestReplicationDisabledCreatesNone(t *testing.T) {
	c := smallCluster(t, 16, 8, func(p *Params) {
		p.Core.ReplicationEnabled = false
	})
	w := workload.UZipf(c.Tree().Len(), rng.New(9), 1.5, 300, 10)
	c.Run(w, 10)
	c.Drain(30)
	if got := c.Metrics.TotalCreations(); got != 0 {
		t.Fatalf("replication disabled but %d replicas created", got)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int64, int64, int64, uint64) {
		c := smallCluster(t, 24, 9, nil)
		w := workload.UnifThenZipfShifts(c.Tree().Len(), rng.New(3), 1.0, 400, 2, 8, 2)
		c.Run(w, 8)
		c.Drain(20)
		return c.Metrics.Completed, c.Metrics.DroppedTotal, c.Metrics.TotalCreations(), c.Engine().Processed()
	}
	a1, b1, c1, d1 := run()
	a2, b2, c2, d2 := run()
	if a1 != a2 || b1 != b2 || c1 != c2 || d1 != d2 {
		t.Fatalf("nondeterministic: (%d,%d,%d,%d) vs (%d,%d,%d,%d)", a1, b1, c1, d1, a2, b2, c2, d2)
	}
}

func TestDropsUnderOverload(t *testing.T) {
	// Offered load far beyond capacity must produce queue drops, and the
	// drop accounting must balance.
	c := smallCluster(t, 4, 7, func(p *Params) {
		p.Core.ReplicationEnabled = false
		p.Core.CachingEnabled = false
	})
	w := workload.Unif(c.Tree().Len(), rng.New(5), 2000, 5)
	c.Run(w, 5)
	c.Drain(60)
	m := c.Metrics
	if m.DroppedTotal == 0 {
		t.Fatal("no drops under 10x overload")
	}
	inj := int64(m.Injected.Total())
	done := m.Completed + m.FailedTTL + m.FailedNoRoute + m.DroppedTotal
	if done != inj {
		t.Fatalf("accounting mismatch: injected %d, accounted %d", inj, done)
	}
}

func TestFailedServerRoutedAround(t *testing.T) {
	c := smallCluster(t, 16, 8, nil)
	// Warm up so replicas and caches exist.
	w := workload.UZipf(c.Tree().Len(), rng.New(4), 1.2, 300, 15)
	c.Run(w, 15)
	c.Drain(20)
	before := c.Metrics.Completed
	// Fail the root owner: queries through the top of the hierarchy must
	// still mostly resolve via replicas/caches.
	c.FailServer(c.OwnerOf(c.Tree().Root()))
	w2 := workload.UZipf(c.Tree().Len(), rng.New(6), 1.2, 300, 10)
	c.Run(w2, 10)
	c.Drain(30)
	delta := c.Metrics.Completed - before
	if delta == 0 {
		t.Fatal("nothing completed after failing the root owner")
	}
}

func TestBalancedAssignment(t *testing.T) {
	tree := namespace.NewBalanced(2, 9) // 511 nodes
	p := DefaultParams(tree, 64)
	p.Assignment = AssignBalanced
	c, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	min, max := 1<<30, 0
	for i := 0; i < 64; i++ {
		n := c.Peer(i).OwnedCount()
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max-min > 1 {
		t.Fatalf("balanced assignment spread %d..%d", min, max)
	}
}

func TestHostsOfTracksReplicas(t *testing.T) {
	c := smallCluster(t, 16, 8, nil)
	root := c.Tree().Root()
	if len(c.HostsOf(root)) != 1 || c.HostsOf(root)[0] != c.OwnerOf(root) {
		t.Fatal("initial hosts wrong")
	}
	w := workload.UZipf(c.Tree().Len(), rng.New(9), 1.5, 300, 20)
	c.Run(w, 20)
	c.Drain(30)
	total := 0
	for node := 0; node < c.Tree().Len(); node++ {
		total += len(c.HostsOf(core.NodeID(node))) - 1
	}
	if total != c.TotalReplicas() {
		t.Fatalf("hosts table says %d replicas, peers say %d", total, c.TotalReplicas())
	}
}

func TestOracleModeRuns(t *testing.T) {
	c := smallCluster(t, 16, 8, func(p *Params) { p.Oracle = true })
	w := workload.UZipf(c.Tree().Len(), rng.New(2), 1.0, 200, 5)
	c.Run(w, 5)
	c.Drain(20)
	if c.Metrics.Completed == 0 {
		t.Fatal("oracle mode completed nothing")
	}
	if acc := c.Metrics.Accuracy(); acc < 0.9 {
		t.Fatalf("oracle accuracy = %v", acc)
	}
}

func TestControlTrafficBounded(t *testing.T) {
	// Control traffic is bounded by session structure (≤ ~6 messages per
	// session) and sessions are rate-limited by the cooldown, so even under
	// sustained overload the control volume cannot run away. The paper's
	// quantitative claim (≥2 orders of magnitude below query count) holds at
	// the paper's 1000-server scale and is verified by experiment E11; at
	// this miniature scale we check the structural bound instead.
	c := smallCluster(t, 32, 10, nil)
	w := workload.UnifThenZipfShifts(c.Tree().Len(), rng.New(8), 1.5, 600, 5, 25, 4)
	c.Run(w, 25)
	c.Drain(30)
	m := c.Metrics
	if m.ControlMsgs == 0 {
		t.Fatal("no control traffic despite replication")
	}
	agg := c.AggregateStats()
	perSession := float64(m.ControlMsgs) / float64(agg.SessionsStarted)
	if perSession > 8 {
		t.Fatalf("%.1f control messages per session (started %d, total %d)",
			perSession, agg.SessionsStarted, m.ControlMsgs)
	}
	// Session rate is bounded by cooldown: at most servers/cooldown per
	// second plus timeout retries; allow 2x headroom.
	maxSessions := 2 * float64(c.Servers()) / c.Peer(0).Config().ReplicationCooldown * 25
	if float64(agg.SessionsStarted) > maxSessions {
		t.Fatalf("sessions %d exceed structural bound %v", agg.SessionsStarted, maxSessions)
	}
}

func TestNewValidation(t *testing.T) {
	tree := namespace.NewBalanced(2, 4)
	bad := []func(*Params){
		func(p *Params) { p.Servers = 0 },
		func(p *Params) { p.Tree = nil },
		func(p *Params) { p.ServiceMean = 0 },
		func(p *Params) { p.NetDelay = -1 },
		func(p *Params) { p.QueueCap = -1 },
		func(p *Params) { p.LoadWindow = 0 },
		func(p *Params) { p.Core.MapSize = 0 },
	}
	for i, mut := range bad {
		p := DefaultParams(tree, 8)
		mut(&p)
		if _, err := New(p); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestLoadSnapshotLen(t *testing.T) {
	c := smallCluster(t, 10, 6, nil)
	if got := len(c.LoadSnapshot()); got != 10 {
		t.Fatalf("snapshot length %d", got)
	}
}

func TestAggregateStatsConsistency(t *testing.T) {
	c := smallCluster(t, 16, 8, nil)
	w := workload.Unif(c.Tree().Len(), rng.New(11), 300, 10)
	c.Run(w, 10)
	c.Drain(30)
	agg := c.AggregateStats()
	if agg.Resolved != c.Metrics.Completed {
		t.Fatalf("peer-resolved %d vs cluster-completed %d", agg.Resolved, c.Metrics.Completed)
	}
	if agg.ReplicaInstalls != int64(c.Metrics.TotalCreations()) {
		t.Fatalf("installs %d vs creations %d", agg.ReplicaInstalls, c.Metrics.TotalCreations())
	}
}

func TestStaticReplicationBootstraps(t *testing.T) {
	tree := namespace.NewBalanced(2, 9)
	p := DefaultParams(tree, 32)
	p.Seed = 5
	p.Static = StaticReplication{Levels: 3, Factor: 4}
	c, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	// Nodes at depth < 3 (7 nodes) each should have ~4 replicas installed
	// before any traffic.
	for nd := 0; nd < tree.Len(); nd++ {
		hosts := len(c.HostsOf(core.NodeID(nd)))
		if tree.Depth(core.NodeID(nd)) < 3 {
			if hosts < 3 { // 4 requested; collisions may lose a slot or two
				t.Fatalf("node %d at depth %d has only %d hosts", nd, tree.Depth(core.NodeID(nd)), hosts)
			}
		} else if hosts != 1 {
			t.Fatalf("deep node %d has %d hosts before traffic", nd, hosts)
		}
	}
	// Replica creations were counted.
	if c.Metrics.TotalCreations() < 18 {
		t.Fatalf("creations = %d", c.Metrics.TotalCreations())
	}
	// And the system still routes.
	c.InjectQuery(3, core.NodeID(tree.Len()-1))
	c.Drain(30)
	if c.Metrics.Completed != 1 {
		t.Fatal("lookup failed on statically replicated cluster")
	}
}

func TestStaticReplicationDisabledByDefault(t *testing.T) {
	c := smallCluster(t, 8, 6, nil)
	if c.TotalReplicas() != 0 {
		t.Fatalf("replicas before traffic: %d", c.TotalReplicas())
	}
}

func TestRecoverServerResumes(t *testing.T) {
	c := smallCluster(t, 8, 7, nil)
	c.FailServer(2)
	c.RecoverServer(2)
	// Queries from/through server 2 must complete again. Stay within the
	// 12-slot request queue: instantaneous injection beyond it would be
	// (correctly) dropped.
	for i := 0; i < 10; i++ {
		c.InjectQuery(2, core.NodeID(i*5%c.Tree().Len()))
	}
	c.Drain(60)
	if c.Metrics.Completed != 10 {
		t.Fatalf("completed %d of 10 after recovery", c.Metrics.Completed)
	}
}

func TestInjectToFailedServerCountsDrop(t *testing.T) {
	c := smallCluster(t, 8, 6, nil)
	c.FailServer(1)
	c.InjectQuery(1, 3)
	c.Drain(10)
	if c.Metrics.DroppedTotal != 1 || c.Metrics.Completed != 0 {
		t.Fatalf("drops=%d completed=%d", c.Metrics.DroppedTotal, c.Metrics.Completed)
	}
}

func TestRunTraceReplay(t *testing.T) {
	// A trace-driven run is exactly reproducible and honors recorded
	// sources and times.
	c := smallCluster(t, 8, 7, nil)
	w := workload.UZipf(c.Tree().Len(), rng.New(12), 1.0, 150, 6)
	tr := workload.RecordTrace(w, rng.New(13), 6)
	for i := range tr.Events {
		tr.Events[i].Source = int32(i % 8) // pin sources
	}
	c.RunTrace(tr, 5)
	c.Drain(30)
	if got := int64(c.Metrics.Injected.Total()); got != int64(len(tr.Events)) {
		t.Fatalf("injected %d of %d trace events", got, len(tr.Events))
	}
	if c.Metrics.Completed == 0 {
		t.Fatal("trace replay completed nothing")
	}
	// Replay again on a fresh cluster: identical completion counts.
	c2 := smallCluster(t, 8, 7, nil)
	c2.RunTrace(tr, 5)
	c2.Drain(30)
	if c2.Metrics.Completed != c.Metrics.Completed || c2.Metrics.DroppedTotal != c.Metrics.DroppedTotal {
		t.Fatalf("trace replay not reproducible: (%d,%d) vs (%d,%d)",
			c.Metrics.Completed, c.Metrics.DroppedTotal, c2.Metrics.Completed, c2.Metrics.DroppedTotal)
	}
}
