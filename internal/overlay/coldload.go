package overlay

// This file is the async cold-miss machinery behind larger-than-RAM hosting
// (DESIGN.md §14). Each shard's hosted map is a bounded hot cache
// (core.Peer.SetResidency); the rest of the shard's partition lives in the
// persistence tier's on-disk node index. When the event loop meets a query or
// data request for a hosted-but-cold node, it parks the message in a pending
// table keyed by node and signals the shard's loader goroutine; the loader
// reads the index off the loop and hands the decoded record back as a control
// envelope, which installs it and replays the parked messages. The event loop
// therefore never blocks on disk I/O — the PR 6 queue-wait guarantees hold
// with a namespace far larger than RAM.

import (
	"fmt"
	"log"
	"time"

	"terradir/internal/core"
	"terradir/internal/telemetry"
)

// coldWaiter is one parked message: a query (replayed through serveQuery) or
// a control message such as a DataRequest (replayed through handleControl).
type coldWaiter struct {
	q   *core.QueryMsg
	msg core.Message
}

// coldPending tracks one in-flight cold load. Loop-owned.
type coldPending struct {
	waiters []coldWaiter
	start   float64 // park time, for the load-latency histogram
}

// setupResidency bounds every shard's resident hosted map and registers the
// hot-cache telemetry. Called from NewNode before setupPersist (restart
// streaming needs the cold sets in place), with the loops not yet running.
func (n *Node) setupResidency() {
	po := n.opts.Persist
	server := []string{"server", fmt.Sprint(n.id)}
	n.idxHits = n.reg.Counter("terradir_persist_index_hits_total",
		"Cold-miss loads that found and installed the entry from the on-disk node index.", server...)
	n.idxMisses = n.reg.Counter("terradir_persist_index_misses_total",
		"Queries and data requests that parked on a hosted-but-cold node (index reads demanded).", server...)
	n.idxEvictions = n.reg.Counter("terradir_persist_index_evictions_total",
		"Hosted entries demoted from the resident hot cache to the on-disk index.", server...)
	n.idxLoadHist = n.reg.Histogram("terradir_persist_index_load_seconds",
		"Cold-miss latency: park to install (index read off the event loop).",
		telemetry.HistogramOpts{Min: 1e-6, Max: 1e3, BucketsPerDecade: 8}, server...)
	shards := len(n.shards)
	perEntries := 0
	if po.HotCacheEntries > 0 {
		perEntries = (po.HotCacheEntries + shards - 1) / shards
	}
	var perBytes int64
	if po.HotCacheBytes > 0 {
		perBytes = (po.HotCacheBytes + int64(shards) - 1) / int64(shards)
	}
	for _, s := range n.shards {
		s.pendingCold = make(map[core.NodeID]*coldPending)
		s.loadCh = make(chan core.NodeID, 256)
		s.coldCapEntries = perEntries
		s.coldCapBytes = perBytes
		s.peer.SetResidency(perEntries, perBytes, func(core.NodeID) { n.idxEvictions.Inc() })
	}
}

// residencyFull reports whether this shard's hot cache is at (or past) its
// configured bounds — the restart streaming cutoff for keeping index entries
// resident.
func (s *shard) residencyFull() bool {
	if s.coldCapEntries > 0 && s.peer.ResidentCount() >= s.coldCapEntries {
		return true
	}
	return s.coldCapBytes > 0 && s.peer.ResidentBytes() >= s.coldCapBytes
}

// parkCold parks w until dest's index record is installed, scheduling a load
// if none is in flight. Loop context. It reports false — the caller must
// serve the message as-is — when the loader queue is saturated; the query
// then routes on whatever soft state is resident (another replica, the owner
// hint), which is a graceful-degradation path, not a stall.
func (n *Node) parkCold(s *shard, dest core.NodeID, w coldWaiter) bool {
	p, ok := s.pendingCold[dest]
	if !ok {
		select {
		case s.loadCh <- dest:
		default:
			return false
		}
		p = &coldPending{start: time.Since(n.epoch).Seconds()}
		s.pendingCold[dest] = p
	}
	p.waiters = append(p.waiters, w)
	n.idxMisses.Inc()
	return true
}

// coldLoader is the shard's disk-read goroutine: it resolves each demanded
// node against the current index generation and re-injects the result into
// the shard loop as a control envelope. One loader per shard keeps index
// reads strictly off the event loops while naturally batching per-shard
// demand (the channel dedupes via pendingCold).
func (s *shard) coldLoader() {
	defer close(s.loaderDone)
	n := s.n
	for {
		var dest core.NodeID
		select {
		case <-n.stop:
			return
		case dest = <-s.loadCh:
		}
		var rec *core.HostedMutation
		if ix := n.store.AcquireIndex(); ix != nil {
			r, err := ix.Get(dest)
			ix.Release()
			if err != nil {
				log.Printf("overlay: server %d cold load of node %d: %v", n.id, dest, err)
			} else {
				rec = r
			}
		}
		select {
		case s.control <- envelope{fn: func() { n.finishColdLoad(s, dest, rec) }}:
		case <-n.stop:
			return
		}
	}
}

// finishColdLoad installs a loaded index record (loop context) and replays
// the parked messages. A nil record — the entry vanished from the index, or
// the read failed — clears the cold marker so waiters fail through the
// normal routing paths instead of re-parking forever.
func (n *Node) finishColdLoad(s *shard, dest core.NodeID, rec *core.HostedMutation) {
	p := s.pendingCold[dest]
	delete(s.pendingCold, dest)
	installed := false
	if rec != nil {
		// The stored self-map predates current liveness knowledge: drop
		// servers membership currently considers dead, exactly as PurgeServer
		// would have done were the entry resident.
		n.resMu.RLock()
		for sv := range n.deadSrv {
			rec.Map.Remove(sv)
		}
		n.resMu.RUnlock()
		installed = s.peer.InstallFromIndex(rec, n.effectiveOwner)
	}
	if installed {
		n.idxHits.Inc()
	} else {
		s.peer.ClearCold(dest)
	}
	if p == nil {
		return
	}
	now := time.Since(n.epoch).Seconds()
	n.idxLoadHist.Observe(now - p.start)
	for _, w := range p.waiters {
		if w.q != nil {
			// Queue wait was already observed when the query first reached
			// the loop; zero it so the replay doesn't double-count.
			w.q.Enqueued = 0
			n.serveQuery(s, w.q)
		} else if w.msg != nil {
			n.handleControl(s, envelope{msg: w.msg})
		}
	}
}

// effectiveOwner resolves a node's owner against the live ownership table
// when membership runs, the static assignment otherwise — the owner context
// cold installs seed neighbor maps from.
func (n *Node) effectiveOwner(nd core.NodeID) core.ServerID {
	if n.ownership != nil {
		return n.ownership.Owner(nd)
	}
	return n.ownerOf(nd)
}
