package overlay

import (
	"context"
	"testing"
	"time"

	"terradir/internal/core"
	"terradir/internal/membership"
	"terradir/internal/namespace"
)

// TestShardTableDeterministic checks the shard-dispatch invariant the whole
// design rests on: the node→shard mapping is a pure function of the
// namespace tree and the shard count, so every server — and every restart of
// the same server — partitions identically.
func TestShardTableDeterministic(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 7} {
		a := buildShardTable(namespace.NewBalanced(2, 8), shards)
		b := buildShardTable(namespace.NewBalanced(2, 8), shards)
		if len(a) != len(b) {
			t.Fatalf("shards=%d: table lengths differ: %d vs %d", shards, len(a), len(b))
		}
		seen := make(map[int32]bool)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("shards=%d: node %d maps to %d on one build, %d on another",
					shards, i, a[i], b[i])
			}
			if a[i] < 0 || int(a[i]) >= shards {
				t.Fatalf("shards=%d: node %d mapped out of range: %d", shards, i, a[i])
			}
			seen[a[i]] = true
		}
		if shards == 1 && (len(seen) != 1 || !seen[0]) {
			t.Fatalf("single-shard table must be all zero, got shards %v", seen)
		}
	}
	// Subtree affinity: below the keying level, every node shares its shard
	// with its parent, so forwarding chains inside a subtree stay shard-local.
	tree := namespace.NewBalanced(2, 8)
	tbl := buildShardTable(tree, 4)
	keyDepth := shardKeyDepth(tree, 4)
	for nd := 0; nd < tree.Len(); nd++ {
		if tree.Depth(core.NodeID(nd)) <= keyDepth {
			continue
		}
		parent := tree.Parent(core.NodeID(nd))
		if tbl[nd] != tbl[parent] {
			t.Fatalf("node %d (shard %d) not co-located with parent %d (shard %d)",
				nd, tbl[nd], parent, tbl[parent])
		}
	}
}

// TestShardPartitionInvariant drives traffic through a sharded cluster and
// then asserts the soft-state partition invariant: every node a shard hosts
// falls in that shard's partition of the namespace.
func TestShardPartitionInvariant(t *testing.T) {
	c := startLocal(t, 4, func(o *LocalClusterOptions) { o.Node.Shards = 4 })
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	tree := c.Tree()
	for i := 0; i < 3*tree.Len(); i++ {
		if _, err := c.Lookup(ctx, i%4, core.NodeID((i*7919+3)%tree.Len())); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		n := c.Node(i)
		ok := n.InspectShards(func(idx int, p *core.Peer) {
			for _, nd := range p.HostedIDs() {
				if got := n.ShardOf(nd); got != idx {
					t.Errorf("server %d: shard %d hosts node %d, which belongs to shard %d",
						i, idx, nd, got)
				}
			}
		})
		if !ok {
			t.Fatalf("server %d stopped unexpectedly", i)
		}
	}
}

// TestResultCachePurge is the unit-level regression for the lookup result
// side-cache staleness bug: a purged server must vanish from remembered
// result maps, late results naming it must be filtered, and a revived server
// must be admitted again.
func TestResultCachePurge(t *testing.T) {
	c := startLocal(t, 4, nil)
	n := c.Node(0)
	const dead = core.ServerID(2)

	n.rememberResult(10, core.NodeMap{Servers: []core.ServerID{1, dead}})
	n.rememberResult(11, core.NodeMap{Servers: []core.ServerID{dead}})
	n.purgeResults(dead)

	if m := n.resultHint(10); m.Contains(dead) {
		t.Errorf("hint for node 10 still names purged server: %+v", m.Servers)
	} else if m.Len() != 1 {
		t.Errorf("hint for node 10 lost its surviving host: %+v", m.Servers)
	}
	if m := n.resultHint(11); m.Len() != 0 {
		t.Errorf("hint for node 11 should be dropped entirely, got %+v", m.Servers)
	}

	// A result that was in flight when the death was processed must not
	// resurrect the dead server.
	n.rememberResult(12, core.NodeMap{Servers: []core.ServerID{dead, 3}})
	if m := n.resultHint(12); m.Contains(dead) {
		t.Errorf("late result re-inserted purged server: %+v", m.Servers)
	} else if !m.Contains(3) {
		t.Errorf("late result's surviving host was dropped: %+v", m.Servers)
	}
	n.rememberResult(13, core.NodeMap{Servers: []core.ServerID{dead}})
	if m := n.resultHint(13); m.Len() != 0 {
		t.Errorf("all-dead late result should be ignored, got %+v", m.Servers)
	}

	n.reviveResults(dead)
	n.rememberResult(14, core.NodeMap{Servers: []core.ServerID{dead}})
	if m := n.resultHint(14); !m.Contains(dead) {
		t.Errorf("revived server still filtered from results: %+v", m.Servers)
	}
}

// TestResultCachePurgeOnCrash is the end-to-end regression for the same bug:
// cache a lookup result, crash the server it names, and repeat the lookup.
// Before the fix the repeat could be answered from (or hinted by) the stale
// side-cache entry naming the dead server.
func TestResultCachePurgeOnCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("needs real-time failure detection")
	}
	proto := churnProto(3)
	c := startLocal(t, 5, func(o *LocalClusterOptions) {
		o.Fault = &FaultOptions{}
		o.Membership = &proto
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const victim = core.ServerID(2)
	var dest core.NodeID
	found := false
	for nd := 0; nd < c.Tree().Len(); nd++ {
		if c.OwnerOf(core.NodeID(nd)) == victim {
			dest, found = core.NodeID(nd), true
			break
		}
	}
	if !found {
		t.Fatalf("server %d owns nothing", victim)
	}

	// Cache a result that names the victim.
	res, err := c.Lookup(ctx, 0, dest)
	if err != nil || !res.OK {
		t.Fatalf("warm lookup failed: %+v, %v", res, err)
	}
	if m := c.Node(0).resultHint(dest); !m.Contains(victim) {
		t.Fatalf("test setup: hint for node %d does not name the owner %d: %+v",
			dest, victim, m.Servers)
	}

	c.Fault().Crash(victim)
	c.Node(int(victim)).Stop()

	deadline := time.Now().Add(15 * time.Second)
	for {
		if st, _ := c.Node(0).Membership().StateOf(victim); st == membership.Dead {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for server 0 to declare the victim dead")
		}
		time.Sleep(20 * time.Millisecond)
	}

	if m := c.Node(0).resultHint(dest); m.Contains(victim) {
		t.Fatalf("result side-cache still names the crashed server: %+v", m.Servers)
	}
	// The repeat lookup must succeed without the victim among its hosts.
	res, err = c.Lookup(ctx, 0, dest)
	if err != nil || !res.OK {
		t.Fatalf("post-crash repeat lookup failed: %+v, %v", res, err)
	}
	for _, h := range res.Hosts {
		if h == victim {
			t.Fatalf("repeat lookup result names the crashed server: %+v", res.Hosts)
		}
	}
}
