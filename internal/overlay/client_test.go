package overlay

import (
	"context"
	"errors"
	"testing"
	"time"

	"terradir/internal/core"
)

// Tests for the client-side operations (Get / fetchData / Search) beyond the
// happy paths covered in overlay_test.go: replica misses, dead hosts,
// timeouts and cancellation.

func TestFetchDataReplicaMiss(t *testing.T) {
	c := startLocal(t, 4, nil)
	target := core.NodeID(10)
	owner := c.OwnerOf(target)
	nonOwner := core.ServerID((int(owner) + 1) % 4)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// A live server that does not hold the data answers OK=false, which the
	// client classifies as errNoData (distinct from a transport failure).
	_, err := c.Node(int((owner+2)%4)).fetchData(ctx, nonOwner, target)
	if !errors.Is(err, errNoData) {
		t.Fatalf("fetchData from non-owner: %v, want errNoData", err)
	}
}

func TestFetchDataLocalFastPath(t *testing.T) {
	c := startLocal(t, 4, nil)
	target := core.NodeID(10)
	owner := c.OwnerOf(target)
	ctx := context.Background()
	// Local miss: the owner itself, but nothing stored.
	if _, err := c.Node(int(owner)).fetchData(ctx, owner, target); !errors.Is(err, errNoData) {
		t.Fatalf("local miss: %v, want errNoData", err)
	}
}

func TestFetchDataTimeoutOnDeadHost(t *testing.T) {
	c := startLocal(t, 4, func(o *LocalClusterOptions) {
		o.Fault = &FaultOptions{}
		o.Node.DataTimeout = 150 * time.Millisecond
	})
	target := core.NodeID(10)
	owner := c.OwnerOf(target)
	c.Fault().Crash(owner)
	from := int((owner + 1) % 4)
	start := time.Now()
	_, err := c.Node(from).fetchData(context.Background(), owner, target)
	if err == nil || errors.Is(err, errNoData) {
		t.Fatalf("fetchData to crashed host: %v, want timeout error", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v, DataTimeout not honored", elapsed)
	}
}

func TestFetchDataContextCancel(t *testing.T) {
	c := startLocal(t, 4, func(o *LocalClusterOptions) {
		o.Fault = &FaultOptions{}
		o.Node.DataTimeout = time.Minute // the context must win
	})
	target := core.NodeID(10)
	owner := c.OwnerOf(target)
	c.Fault().Crash(owner)
	from := int((owner + 1) % 4)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	_, err := c.Node(from).fetchData(ctx, owner, target)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled fetchData: %v, want context.Canceled", err)
	}
}

func TestGetSurfacesLookupFailure(t *testing.T) {
	c := startLocal(t, 4, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, _, err := c.Node(0).Get(ctx, core.NodeID(c.Tree().Len()+5)); err == nil {
		t.Fatal("Get of an out-of-range node succeeded")
	}
}

func TestSearchDepthZero(t *testing.T) {
	c := startLocal(t, 4, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	name := c.Tree().Name(0) // the root
	out, err := c.Node(0).Search(ctx, name, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Depth != 0 || !out[0].OK || out[0].Node != 0 {
		t.Fatalf("depth-0 search: %+v", out)
	}
}

func TestSearchRespectsContext(t *testing.T) {
	c := startLocal(t, 4, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already dead: the first lookup must fail and surface the error
	if _, err := c.Node(0).Search(ctx, c.Tree().Name(0), 3, 0); err == nil {
		t.Fatal("search with a cancelled context succeeded")
	}
}
