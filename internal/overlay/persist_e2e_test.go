package overlay

import (
	"context"
	"fmt"
	"testing"
	"time"

	"terradir/internal/core"
	"terradir/internal/membership"
	"terradir/internal/persist"
)

// TestTCPPersistRestartE2E is the durability scenario end to end over real
// sockets: a 5-peer TCP cluster where one victim-heavy peer journals its
// hosted state, gets killed mid-traffic, and restarts from the same data
// directory. The restart must recover owned metadata and application data
// purely from local replay (asserted before the node touches the network),
// rejoin without receiving a single full warmup stream, and pull only the
// delta it missed via the digest-based reconcile exchange.
func TestTCPPersistRestartE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("persist e2e needs real-time failure detection and restart")
	}
	const n = 5
	const victim = core.ServerID(2)
	const successor = core.ServerID(3) // first alive in ring order after the victim
	tree := testTree()

	// Victim-heavy ownership: the victim owns 12/16 of the namespace, the
	// other four servers a sliver each. This makes "delta ≪ hosted" sharp:
	// a full warmup replacement would have to re-stream a large partition,
	// while the true delta (the successor's own sliver) stays small.
	others := []core.ServerID{0, 1, successor, 4}
	owner := make([]core.ServerID, tree.Len())
	for nd := range owner {
		if nd%16 < 4 {
			owner[nd] = others[nd%16]
		} else {
			owner[nd] = victim
		}
	}
	ownerOf := func(nd core.NodeID) core.ServerID { return owner[nd] }
	ownedBy := make([][]core.NodeID, n)
	for nd, s := range owner {
		ownedBy[s] = append(ownedBy[s], core.NodeID(nd))
	}
	dataDir := t.TempDir()

	transports := make([]*TCPTransport, n)
	for i := 0; i < n; i++ {
		tr, err := NewTCPTransportOpts(core.ServerID(i), "127.0.0.1:0",
			map[core.ServerID]string{}, TCPTransportOptions{Seed: uint64(i) + 1})
		if err != nil {
			t.Fatal(err)
		}
		transports[i] = tr
	}
	addrOf := make(map[core.ServerID]string, n)
	for i := 0; i < n; i++ {
		addrOf[core.ServerID(i)] = transports[i].Addr()
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			transports[i].SetAddr(core.ServerID(j), addrOf[core.ServerID(j)])
		}
	}
	peersCopy := func() map[core.ServerID]string {
		m := make(map[core.ServerID]string, n)
		for k, v := range addrOf {
			m[k] = v
		}
		return m
	}

	newOpts := func(i int) Options {
		o := Options{
			Seed:   uint64(i) + 1,
			Shards: *testShards,
			Membership: &MembershipOptions{
				Protocol: churnProto(i),
				Servers:  n,
				SelfAddr: transports[i].Addr(),
				Peers:    peersCopy(),
			},
		}
		if core.ServerID(i) == victim {
			// SyncAlways: a kill must lose nothing. The snapshot interval is
			// effectively infinite so recovery exercises pure WAL replay.
			o.Persist = &PersistOptions{
				Dir:              dataDir,
				SnapshotInterval: time.Hour,
				SyncPolicy:       persist.SyncAlways,
			}
		}
		return o
	}
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		nd, err := NewNode(core.ServerID(i), tree, ownedBy[i], ownerOf, newOpts(i))
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
		StartTCPNode(nd, transports[i])
	}
	defer func() {
		for i := range nodes {
			nodes[i].Stop()
			transports[i].Close()
		}
	}()

	wait := func(d time.Duration, what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(d)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Fatalf("timed out after %v waiting for %s", d, what)
	}
	stateAt := func(i int, id core.ServerID) membership.State {
		st, _ := nodes[i].Membership().StateOf(id)
		return st
	}
	counterAt := func(i int, name string) uint64 {
		return nodes[i].Registry().Counter(name, "", "server", fmt.Sprint(i)).Value()
	}
	lookups := func(count int, sources []int) (ok int) {
		for r := 0; r < count; r++ {
			src := sources[r%len(sources)]
			dest := core.NodeID((r*7919 + 13) % tree.Len())
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			res, err := nodes[src].Lookup(ctx, dest)
			cancel()
			if err == nil && res.OK {
				ok++
			}
		}
		return ok
	}

	// Phase 1: converge, then write durable owner-only state on the victim.
	wait(10*time.Second, "initial all-alive convergence", func() bool {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if stateAt(i, core.ServerID(j)) != membership.Alive {
					return false
				}
			}
		}
		return true
	})
	if got := lookups(100, []int{0, 1, 2, 3, 4}); got < 100 {
		t.Fatalf("healthy cluster resolved only %d/100 lookups", got)
	}
	probes := ownedBy[victim][:12]
	for _, nd := range probes {
		nd := nd
		applied := false
		nodes[victim].Inspect(func(p *core.Peer) {
			if p.SetMeta(nd, map[string]string{"probe": fmt.Sprint(nd)}) {
				applied = true
			}
			p.SetData(nd, []byte(fmt.Sprintf("payload-%d", nd)))
		})
		if !applied {
			t.Fatalf("victim did not accept SetMeta on owned node %d", nd)
		}
	}

	// Phase 2: kill the victim (no clean snapshot — recovery is WAL-only).
	survivors := []int{0, 1, 3, 4}
	warmupsBefore := make([]uint64, n)
	for _, i := range survivors {
		warmupsBefore[i] = counterAt(i, "terradir_warmup_streams_total")
	}
	nodes[victim].Stop()
	transports[victim].Close()
	wait(10*time.Second, "survivors to declare the victim dead", func() bool {
		for _, i := range survivors {
			if stateAt(i, victim) != membership.Dead {
				return false
			}
		}
		return true
	})
	if ok := lookups(100, survivors); ok*100 < 100*99 {
		t.Fatalf("survivors resolved only %d/100 lookups after handoff", ok)
	}

	// Phase 3: restart from the same data directory, bootstrapping via join.
	freshTr, err := NewTCPTransportOpts(victim, "127.0.0.1:0",
		map[core.ServerID]string{}, TCPTransportOptions{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewNode(victim, tree, ownedBy[victim], ownerOf, Options{
		Seed:   99,
		Shards: *testShards,
		Membership: &MembershipOptions{
			Protocol: churnProto(int(victim) + 50),
			Servers:  n,
			SelfAddr: freshTr.Addr(),
			JoinAddr: transports[0].Addr(),
		},
		Persist: &PersistOptions{
			Dir:              dataDir,
			SnapshotInterval: time.Hour,
			SyncPolicy:       persist.SyncAlways,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The node has not touched the network yet: everything below is pure
	// local replay.
	rs := fresh.ReplayedState()
	if rs == nil || !rs.HasState() {
		t.Fatalf("restart recovered no durable state: %+v", rs)
	}
	hosted := 0
	for i := 0; i < fresh.Shards(); i++ {
		hosted += len(fresh.ShardPeer(i).HostedIDs())
	}
	if hosted < len(ownedBy[victim]) {
		t.Fatalf("replay restored %d hosted nodes, want at least the %d owned", hosted, len(ownedBy[victim]))
	}
	for _, nd := range probes {
		var meta core.Meta
		var data []byte
		found := false
		for i := 0; i < fresh.Shards(); i++ {
			p := fresh.ShardPeer(i)
			if m, ok := p.MetaOf(nd); ok && m.Attrs["probe"] != "" {
				meta, found = m, true
				data, _ = p.DataOf(nd)
			}
		}
		if !found || meta.Attrs["probe"] != fmt.Sprint(nd) {
			t.Fatalf("node %d metadata not recovered from replay (found=%v, meta=%+v)", nd, found, meta)
		}
		if string(data) != fmt.Sprintf("payload-%d", nd) {
			t.Fatalf("node %d data not recovered from replay: %q", nd, data)
		}
	}
	t.Logf("replay restored %d hosted nodes (%d WAL records, incarnation %d)",
		hosted, len(rs.Mutations), rs.Incarnation)

	nodes[victim], transports[victim] = fresh, freshTr
	StartTCPNode(fresh, freshTr)

	// Phase 4: readmission with delta-only reconcile.
	wait(15*time.Second, "survivors to readmit the restarted peer", func() bool {
		if !fresh.Membership().Joined() {
			return false
		}
		for _, i := range survivors {
			if stateAt(i, victim) != membership.Alive {
				return false
			}
		}
		return true
	})
	wait(15*time.Second, "the successor to answer the reconcile offer", func() bool {
		return counterAt(int(successor), "terradir_persist_reconcile_entries_sent_total")+
			counterAt(int(successor), "terradir_persist_reconcile_entries_skipped_total") > 0
	})
	sent := counterAt(int(successor), "terradir_persist_reconcile_entries_sent_total")
	skipped := counterAt(int(successor), "terradir_persist_reconcile_entries_skipped_total")
	t.Logf("reconcile: %d entries sent, %d skipped (victim hosts %d)", sent, skipped, hosted)
	if skipped == 0 {
		t.Error("reconcile skipped nothing: the digest did not suppress already-held entries")
	}
	if int(sent)*4 >= hosted {
		t.Errorf("reconcile streamed %d entries against %d locally replayed — not a delta", sent, hosted)
	}
	// No survivor pushed a full warmup stream: the HasState flag suppressed
	// them all; the rejoiner recovered locally and pulled only the delta.
	for _, i := range survivors {
		if got := counterAt(i, "terradir_warmup_streams_total"); got != warmupsBefore[i] {
			t.Errorf("server %d sent %d full warmup stream(s) to the restarted peer", i, got-warmupsBefore[i])
		}
	}

	// Phase 5: ownership reverts and the whole cluster serves traffic,
	// including owner-grade answers straight from replayed state.
	wait(10*time.Second, "ownership to revert to the restarted peer", func() bool {
		for _, i := range survivors {
			if nodes[i].Ownership().Owner(probes[0]) != victim {
				return false
			}
		}
		return true
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	res, err := fresh.Lookup(ctx, probes[0])
	cancel()
	if err != nil || !res.OK {
		t.Fatalf("restarted peer failed to resolve its own node %d: %v %+v", probes[0], err, res)
	}
	if res.Meta.Attrs["probe"] != fmt.Sprint(probes[0]) {
		t.Errorf("lookup served stale metadata %+v, want replayed probe attr", res.Meta)
	}
	const final = 300
	if ok := lookups(final, []int{0, 1, 2, 3, 4}); ok*100 < final*99 {
		t.Fatalf("post-restart success rate %d/%d, want ≥99%%", ok, final)
	}
}
