package overlay

// This file implements the sharded event-loop model (DESIGN.md §11): a
// node's hosted nodes and soft state (cache, digests, load accounting,
// adverts, replica bookkeeping) are partitioned across N shard peers keyed
// by namespace subtree hash. Each shard runs its own single-writer loop and
// publishes its own RouteSnapshot, so on a multi-core host the write side of
// the protocol scales with cores instead of serializing through one
// goroutine. Cross-shard concerns — membership purge/handoff, the
// server-wide digest, aggregate introspection — go through a thin barrier
// coordinator (runOnShards) that parks every loop before touching the peers,
// so those operations stay atomic from the overlay's point of view.

import (
	"math"
	"sync/atomic"
	"time"

	"terradir/internal/bloom"
	"terradir/internal/core"
	"terradir/internal/namespace"
	"terradir/internal/sim"
	"terradir/internal/telemetry"
)

// sessionTagShift is the bit position of the shard tag OR-ed into replication
// session ids (core.Peer.SetSessionBase), letting Deliver route probe and
// replicate replies back to the shard that opened the session.
const sessionTagShift = 56

// shard is one single-writer partition of a node: its own core.Peer (same
// ServerID), load meter, query/control queues and fast-path learn gating —
// exactly the per-node loop state of the unsharded design, multiplied.
type shard struct {
	n     *Node
	idx   int
	peer  *core.Peer
	meter *sim.LoadMeter

	queries chan *core.QueryMsg
	control chan envelope
	done    chan struct{}

	// Fast-path gating, per shard: learnSeq counts learn-marked envelopes
	// enqueued to this shard, learnPub those whose effects are published.
	learnSeq atomic.Uint64
	learnPub atomic.Uint64

	// loadEst is the Float64bits of this shard's last meter reading, stored
	// so other shards can fold it into the server-wide load average without
	// touching the meter (which is single-writer, owned by this shard).
	loadEst atomic.Uint64

	// absorbFn is the bound fast-path rider absorber (no per-query closure).
	absorbFn func(core.Piggyback, []core.PathEntry)

	// waitHist is the per-shard queue-wait histogram (nil at one shard, where
	// the node-level histogram already tells the whole story).
	waitHist *telemetry.Histogram

	// Larger-than-RAM hosting (coldload.go). pendingCold parks queries and
	// data requests for hosted-but-on-disk nodes while the loader goroutine
	// reads the node index; both are loop-owned. loadCh wakes the loader;
	// coldCapEntries/coldCapBytes are this shard's residency bounds.
	pendingCold    map[core.NodeID]*coldPending
	loadCh         chan core.NodeID
	loaderDone     chan struct{}
	coldCapEntries int
	coldCapBytes   int64
}

// shardEnv adapts a shard to core.Env. All methods run in the shard's own
// execution context (its loop, or a goroutine holding the runOnShards
// barrier), per the Env contract.
type shardEnv struct{ s *shard }

func (e shardEnv) Now() float64 { return time.Since(e.s.n.epoch).Seconds() }

// Load is the load figure the protocol acts on: this shard's OWN live meter
// reading. Replication triggers (§3.4) must fire when the shard serving a hot
// subtree saturates — averaging in idle sibling shards would mask a hot shard
// below Thigh and suppress offloading exactly when it matters. Advertising
// the hot shard's load to peers is likewise directionally right: remote
// servers steer replica placement away from it. The server-wide average
// remains available via serverLoad for aggregate metrics.
func (e shardEnv) Load() float64 {
	now := time.Since(e.s.n.epoch).Seconds()
	own := e.s.meter.Load(now)
	// Publish for siblings' server-wide aggregation (Snapshot, serverLoad).
	e.s.loadEst.Store(math.Float64bits(own))
	return own
}

func (e shardEnv) Send(to core.ServerID, m core.Message) {
	n := e.s.n
	if to == n.id {
		// Local shortcut: loop back through our own inbox without the
		// transport (same as the simulator's zero-delay self-delivery).
		n.Deliver(m)
		return
	}
	_ = n.transport.Send(n.id, to, m) // soft state: losses tolerated
}

func (e shardEnv) After(d float64, fn func()) {
	s := e.s
	time.AfterFunc(time.Duration(d*float64(time.Second)), func() {
		select {
		case s.control <- envelope{fn: fn}:
		case <-s.n.stop:
		}
	})
}

// serverLoad is the server-wide aggregate load: the mean of every shard's
// last published meter reading. It reads only the loadEst atomics, so it is
// safe from any goroutine (metrics, Snapshot fallback) — the meters
// themselves are single-writer and stay with their shard loops. The average
// keeps the figure "locally defined and linearly comparable" across servers
// (§3.1): a 4-shard server must not report 4× the load of an equally busy
// unsharded one. The protocol itself acts on shardEnv.Load (shard-local).
func (n *Node) serverLoad() float64 {
	total := 0.0
	for _, s := range n.shards {
		total += math.Float64frombits(s.loadEst.Load())
	}
	return total / float64(len(n.shards))
}

// fnv1a is the 64-bit FNV-1a hash of s.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// buildShardTable maps every namespace node to a shard. Keying is by subtree
// ancestor: the shallowest level with at least 4×shards nodes becomes the
// key depth, and every node hashes by the NAME of its ancestor at that depth
// (its own name when shallower). Whole subtrees therefore land on one shard
// — parent/child forwarding chains and neighbor context stay shard-local —
// while there are enough distinct subtrees to spread load. The table depends
// only on the tree shape, names and shard count, so every restart and every
// server computes the same mapping.
func buildShardTable(tree *namespace.Tree, shards int) []int32 {
	tbl := make([]int32, tree.Len())
	if shards <= 1 {
		return tbl
	}
	keyDepth := shardKeyDepth(tree, shards)
	for id := range tbl {
		nd := core.NodeID(id)
		d := tree.Depth(nd)
		if d > keyDepth {
			d = keyDepth
		}
		anc := tree.AncestorAtDepth(nd, d)
		tbl[id] = int32(fnv1a(tree.Name(anc)) % uint64(shards))
	}
	return tbl
}

// shardKeyDepth picks the namespace level buildShardTable keys on: the
// shallowest level with at least 4×shards nodes (enough distinct subtrees to
// spread load), falling back to the deepest level of a small tree. Nodes
// ABOVE this depth are the tree's shared top: every shard may cache them
// (the learn filter exempts them), because any lookup's ancestor chain
// crosses them and a shard that could never learn their maps would route
// its whole partition through cold tree-walks.
func shardKeyDepth(tree *namespace.Tree, shards int) int {
	pops := tree.LevelPopulations()
	keyDepth := len(pops) - 1
	for d, n := range pops {
		if n >= 4*shards {
			keyDepth = d
			break
		}
	}
	return keyDepth
}

// shardOf returns the shard index owning node nd's partition.
func (n *Node) shardOf(nd core.NodeID) int {
	if len(n.shards) == 1 {
		return 0
	}
	if nd < 0 || int(nd) >= len(n.shardTbl) {
		return 0
	}
	return int(n.shardTbl[nd])
}

// shardFor returns the shard owning node nd's partition.
func (n *Node) shardFor(nd core.NodeID) *shard { return n.shards[n.shardOf(nd)] }

// sessionShard maps a replication session id back to the shard that opened
// it (see sessionTagShift).
func (n *Node) sessionShard(id uint64) *shard {
	return n.shards[int(id>>sessionTagShift)%len(n.shards)]
}

// Shards returns the node's shard count.
func (n *Node) Shards() int { return len(n.shards) }

// ShardOf exposes the deterministic node→shard mapping (introspection and
// tests).
func (n *Node) ShardOf(nd core.NodeID) int { return n.shardOf(nd) }

// ShardPeer returns shard i's peer. Like Peer, it must only be touched while
// the node is stopped; on a running node use Inspect or InspectShards.
func (n *Node) ShardPeer(i int) *core.Peer { return n.shards[i].peer }

// ReplicaCount sums hosted replicas across all shard peers. Like Peer, call
// on a stopped (or quiescent) node; on a running node aggregate via Inspect.
func (n *Node) ReplicaCount() int {
	total := 0
	for _, s := range n.shards {
		total += s.peer.ReplicaCount()
	}
	return total
}

// runOnShards executes fn once per shard with every shard loop parked at a
// barrier — the node is globally quiescent, so fn may touch each peer from
// the calling goroutine and cross-shard operations (PurgeServer, ownership
// handoff, digest install) apply atomically from the overlay's point of
// view. With learn set, every shard's fast path stays closed until its
// loop republishes after the barrier, so fn's effects reach the snapshots
// before lock-free serving resumes. Returns false if the node stopped first.
func (n *Node) runOnShards(learn bool, fn func(s *shard)) bool {
	// One barrier at a time: two interleaved barriers could each park a
	// subset of the loops and wait forever for the other's shards.
	n.barrier.Lock()
	defer n.barrier.Unlock()
	if learn {
		for _, s := range n.shards {
			s.learnSeq.Add(1)
		}
	}
	arrive := make(chan struct{}, len(n.shards))
	release := make(chan struct{})
	defer close(release) // frees any parked loop on every return path
	enqueued := 0
	for _, s := range n.shards {
		env := envelope{fn: func() { arrive <- struct{}{}; <-release }, learn: learn}
		select {
		case s.control <- env:
			enqueued++
		case <-n.stop:
			return false
		}
	}
	for parked := 0; parked < enqueued; parked++ {
		select {
		case <-arrive:
		case <-n.stop:
			return false
		}
	}
	for _, s := range n.shards {
		fn(s)
	}
	return true
}

// shard.loop is the shard's single-writer event loop: the same
// control-priority, snapshot-publication and learn-gating discipline as the
// classic per-node loop, applied to this shard's peer alone.
//
// Each wakeup drains a BATCH of up to Options.IngestBatch already-queued
// envelopes (or queries) instead of exactly one: the per-wakeup costs —
// advert-expiry sweep and digest bookkeeping (peer.BatchTick), the snapshot
// publish check, and the WAL group-commit flush — are then paid once per
// batch rather than once per message. Per-envelope semantics are untouched:
// every learn envelope still publishes before advancing learnPub, queue-wait
// histograms still measure from enqueue time, and control keeps strict
// priority over queries (a query batch stops early the moment control
// traffic appears).
func (s *shard) loop() {
	n := s.n
	defer close(s.done)
	maintain := time.NewTicker(time.Duration(n.opts.Config.MaintainInterval * float64(time.Second)))
	defer maintain.Stop()
	k := n.opts.IngestBatch
	dirty := false
	var learnExec uint64
	var lastPublish time.Time
	publish := func(force bool) {
		if !n.fastEnabled || !dirty {
			return
		}
		now := time.Now()
		if !force && now.Sub(lastPublish) < snapshotInterval {
			return
		}
		s.peer.PublishSnapshot()
		lastPublish = now
		dirty = false
	}
	handle := func(env envelope) {
		n.handleControl(s, env)
		dirty = true
		if env.learn {
			// Publish before advancing learnPub: a reader that observes
			// learnPub == learnSeq must find the learning in the snapshot.
			learnExec++
			publish(true)
			s.learnPub.Store(learnExec)
			return
		}
		publish(false)
	}
	// drainControl services env plus up to k-1 more already-queued control
	// envelopes, returning the batch depth.
	drainControl := func(env envelope) int {
		handle(env)
		depth := 1
		for depth < k {
			select {
			case env := <-s.control:
				handle(env)
				depth++
			default:
				return depth
			}
		}
		return depth
	}
	// drainQueries services q plus up to k-1 more already-queued queries,
	// yielding early if control traffic arrives (control keeps priority).
	drainQueries := func(q *core.QueryMsg) int {
		n.serveQuery(s, q)
		dirty = true
		depth := 1
		for depth < k && len(s.control) == 0 {
			select {
			case q := <-s.queries:
				n.serveQuery(s, q)
				dirty = true
				depth++
			default:
				return depth
			}
		}
		return depth
	}
	// finishBatch settles the per-batch work: depth telemetry, one WAL
	// group-commit flush covering every mutation the batch journaled, and
	// one (throttled) snapshot publish check.
	finishBatch := func(depth int) {
		n.batchDepthHist.Observe(float64(depth))
		n.flushJournal()
		publish(false)
	}
	for {
		// Control traffic and timers take priority over queued queries
		// (they bypass the service queue, as in the simulator).
		select {
		case <-n.stop:
			return
		case env := <-s.control:
			s.peer.BatchTick()
			finishBatch(drainControl(env))
			continue
		case <-maintain.C:
			s.peer.Maintain()
			s.loadEst.Store(math.Float64bits(s.meter.Load(time.Since(n.epoch).Seconds())))
			dirty = true
			publish(false)
			continue
		default:
		}
		// About to block: flush any pending snapshot and journal bytes so
		// concurrent readers and the disk aren't left behind while the loop
		// sits idle.
		publish(len(s.control) == 0 && len(s.queries) == 0)
		n.flushJournal()
		select {
		case <-n.stop:
			return
		case env := <-s.control:
			s.peer.BatchTick()
			finishBatch(drainControl(env))
		case <-maintain.C:
			s.peer.Maintain()
			s.loadEst.Store(math.Float64bits(s.meter.Load(time.Since(n.epoch).Seconds())))
			dirty = true
		case q := <-s.queries:
			s.peer.BatchTick()
			finishBatch(drainQueries(q))
		}
	}
}

// fastAbsorb hands a fast-served query's rider and path to this shard's loop
// for absorption into its peer's soft state. Non-blocking: under
// control-queue pressure the rider is dropped (it is advisory) rather than
// stalling the lock-free path. Foreign path entries were already fanned to
// their home shards by Deliver; this shard's learn filter skips them.
func (s *shard) fastAbsorb(pb core.Piggyback, path []core.PathEntry) {
	select {
	case s.control <- envelope{fn: func() { s.peer.FastAbsorb(pb, path) }}:
	default:
		s.n.fastAbsorbDrops.Inc()
	}
}

// fanForeignPath routes the foreign-partition entries of an incoming path to
// their home shards as advisory (non-blocking) learnings: the shard that
// processes the message never creates soft state for another shard's
// partition (its learn filter rejects it), so without fanning those map
// entries would be lost. PathEntry values are copied by append; the NodeMaps
// inside follow the read-only convention for received maps, so sharing them
// across shards is safe.
func (n *Node) fanForeignPath(home int, path []core.PathEntry) {
	if len(n.shards) == 1 || len(path) == 0 {
		return
	}
	var per [][]core.PathEntry
	for i := range path {
		si := n.shardOf(path[i].Node)
		if si == home {
			continue
		}
		if per == nil {
			per = make([][]core.PathEntry, len(n.shards))
		}
		per[si] = append(per[si], path[i])
	}
	for si, sub := range per {
		if len(sub) == 0 {
			continue
		}
		s := n.shards[si]
		sub := sub
		select {
		case s.control <- envelope{fn: func() { s.peer.LearnMaps(sub) }}:
		default:
			n.fastAbsorbDrops.Inc()
		}
	}
}

// deliverWarmup partitions a warmup stream by home shard and hands each
// shard its slice as a guaranteed learning (warmup is how a joiner becomes
// routable; dropping it would leave the node cold).
func (n *Node) deliverWarmup(entries []core.PathEntry) {
	if len(n.shards) == 1 {
		s := n.shards[0]
		s.learnSeq.Add(1)
		select {
		case s.control <- envelope{fn: func() { s.peer.LearnMaps(entries) }, learn: true}:
		case <-n.stop:
		}
		return
	}
	per := make([][]core.PathEntry, len(n.shards))
	for i := range entries {
		si := n.shardOf(entries[i].Node)
		per[si] = append(per[si], entries[i])
	}
	for si, sub := range per {
		if len(sub) == 0 {
			continue
		}
		s := n.shards[si]
		sub := sub
		s.learnSeq.Add(1)
		select {
		case s.control <- envelope{fn: func() { s.peer.LearnMaps(sub) }, learn: true}:
		case <-n.stop:
			return
		}
	}
}

// deliverReplicate dispatches an incoming replication transfer. The bulk of
// the payload normally shares one subtree (replication ships ranked hosted
// nodes, and ranking correlates with locality), so the first payload node's
// home shard handles the request — and with it the load re-check, hysteresis
// and the acknowledging reply. Payload nodes belonging to other shards are
// split out and installed directly on their home shards; they are absent
// from the reply's Accepted list, so the source treats them as refused and
// skips their adverts — a small soft-state loss, repaired by normal advert
// and path dissemination.
func (n *Node) deliverReplicate(msg *core.ReplicateRequest) {
	if len(n.shards) == 1 || len(msg.Nodes) == 0 {
		s := n.shards[n.shardOf(firstReplicaNode(msg))]
		select {
		case s.control <- envelope{msg: msg}:
		case <-n.stop:
		}
		return
	}
	home := n.shardOf(msg.Nodes[0].Node)
	var homeNodes []core.ReplicaPayload
	var foreign [][]core.ReplicaPayload
	for i := range msg.Nodes {
		si := n.shardOf(msg.Nodes[i].Node)
		if si == home {
			homeNodes = append(homeNodes, msg.Nodes[i])
			continue
		}
		if foreign == nil {
			foreign = make([][]core.ReplicaPayload, len(n.shards))
		}
		foreign[si] = append(foreign[si], msg.Nodes[i])
	}
	for si, sub := range foreign {
		if len(sub) == 0 {
			continue
		}
		s := n.shards[si]
		from := msg.From
		sub := sub
		select {
		case s.control <- envelope{fn: func() {
			for i := range sub {
				s.peer.InstallReplica(&sub[i], from)
			}
		}}:
		case <-n.stop:
			return
		}
	}
	homeMsg := *msg
	homeMsg.Nodes = homeNodes
	select {
	case n.shards[home].control <- envelope{msg: &homeMsg}:
	case <-n.stop:
	}
}

func firstReplicaNode(msg *core.ReplicateRequest) core.NodeID {
	if len(msg.Nodes) > 0 {
		return msg.Nodes[0].Node
	}
	return 0
}

// buildSharedDigest rebuilds the server-wide combined digest from every
// shard's hosted set. All shards advertise one ServerID, so advertising
// per-shard partial digests would read as Bloom false negatives at remote
// peers: their keepFor filtering (§3.7) would prune servers that DO host the
// node. The combined filter restores the unsharded digest semantics.
func (n *Node) buildSharedDigest(ids [][]core.NodeID) *bloom.Filter {
	total := 0
	for _, l := range ids {
		total += len(l)
	}
	if total < 1 {
		total = 1
	}
	f := bloom.New(uint64(n.opts.Config.DigestBitsPerNode*total), uint32(n.opts.Config.DigestHashes))
	for _, l := range ids {
		for _, nd := range l {
			f.Add(core.NodeKey(nd))
		}
	}
	f.SetVersion(n.digestGen.Add(1))
	return f
}

// kickCoordinator asks the digest coordinator for an off-schedule rebuild
// (hosting sets just changed: membership purge or handoff). Non-blocking; a
// pending kick already covers this request.
func (n *Node) kickCoordinator() {
	if n.coordKick == nil {
		return
	}
	select {
	case n.coordKick <- struct{}{}:
	default:
	}
}

// coordinator periodically (and on kick) recombines the shards' hosted sets
// into the shared server-wide digest and installs it on every shard. Runs
// only when sharding and digests are both on.
func (n *Node) coordinator() {
	defer close(n.coordDone)
	tick := time.NewTicker(time.Duration(n.opts.Config.MaintainInterval * float64(time.Second)))
	defer tick.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-tick.C:
		case <-n.coordKick:
		}
		ids := make([][]core.NodeID, len(n.shards))
		if !n.runOnShards(false, func(s *shard) { ids[s.idx] = s.peer.HostedIDs() }) {
			return
		}
		f := n.buildSharedDigest(ids)
		if !n.runOnShards(false, func(s *shard) { s.peer.SetSharedDigest(f) }) {
			return
		}
	}
}
