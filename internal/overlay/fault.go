package overlay

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"terradir/internal/core"
	"terradir/internal/rng"
	"terradir/internal/telemetry"
)

// FaultOptions configures a FaultTransport's steady-state behavior. All
// fields may also be changed at runtime through the corresponding setters.
type FaultOptions struct {
	// DropProb drops each message independently with this probability.
	DropProb float64
	// Latency delays every delivered message by this much, plus a uniform
	// extra in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration
	// Seed seeds the deterministic fault RNG stream (default 1).
	Seed uint64
}

// FaultTransport wraps any Transport with deterministic fault injection:
// probabilistic message drops, added latency, asymmetric link partitions and
// crashed-peer sets. It composes over both LocalTransport and TCPTransport,
// letting the same failure scenario run against the in-process overlay and
// real sockets. All faults are applied on the send path; drops return nil
// (the soft-state protocol treats loss as normal).
type FaultTransport struct {
	inner Transport

	mu         sync.Mutex
	opts       FaultOptions
	src        *rng.Source
	crashed    map[core.ServerID]bool
	blocked    map[[2]core.ServerID]bool
	dropFilter func(from, to core.ServerID, m core.Message) bool

	faultDrops atomic.Uint64
	delayed    atomic.Uint64
}

// NewFaultTransport wraps inner with fault injection.
func NewFaultTransport(inner Transport, opts FaultOptions) *FaultTransport {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	return &FaultTransport{
		inner:   inner,
		opts:    opts,
		src:     rng.New(opts.Seed ^ 0x5bf03635),
		crashed: make(map[core.ServerID]bool),
		blocked: make(map[[2]core.ServerID]bool),
	}
}

// Crash marks peers as crashed: every message to or from them is dropped,
// mirroring the simulator's FailServer (fail-stop, routing state elsewhere
// untouched).
func (f *FaultTransport) Crash(ids ...core.ServerID) {
	f.mu.Lock()
	for _, id := range ids {
		f.crashed[id] = true
	}
	f.mu.Unlock()
}

// Revive clears the crashed flag for peers.
func (f *FaultTransport) Revive(ids ...core.ServerID) {
	f.mu.Lock()
	for _, id := range ids {
		delete(f.crashed, id)
	}
	f.mu.Unlock()
}

// Crashed reports whether a peer is currently marked crashed.
func (f *FaultTransport) Crashed(id core.ServerID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed[id]
}

// Block drops all messages flowing from → to (one direction only, so
// asymmetric partitions — A hears B but not vice versa — are expressible).
func (f *FaultTransport) Block(from, to core.ServerID) {
	f.mu.Lock()
	f.blocked[[2]core.ServerID{from, to}] = true
	f.mu.Unlock()
}

// Unblock removes a Block edge.
func (f *FaultTransport) Unblock(from, to core.ServerID) {
	f.mu.Lock()
	delete(f.blocked, [2]core.ServerID{from, to})
	f.mu.Unlock()
}

// Partition blocks all traffic between the two groups, in both directions.
// Heal it edge by edge with Unblock, or wholesale with HealPartition.
func (f *FaultTransport) Partition(a, b []core.ServerID) {
	f.mu.Lock()
	for _, x := range a {
		for _, y := range b {
			f.blocked[[2]core.ServerID{x, y}] = true
			f.blocked[[2]core.ServerID{y, x}] = true
		}
	}
	f.mu.Unlock()
}

// HealPartition removes every blocked edge between the two groups.
func (f *FaultTransport) HealPartition(a, b []core.ServerID) {
	f.mu.Lock()
	for _, x := range a {
		for _, y := range b {
			delete(f.blocked, [2]core.ServerID{x, y})
			delete(f.blocked, [2]core.ServerID{y, x})
		}
	}
	f.mu.Unlock()
}

// SetDropProb changes the per-message drop probability.
func (f *FaultTransport) SetDropProb(p float64) {
	f.mu.Lock()
	f.opts.DropProb = p
	f.mu.Unlock()
}

// SetDropFilter installs a predicate that drops exactly the messages it
// returns true for — targeted loss (e.g. "the query on the B→C edge")
// where DropProb is probabilistic. nil removes the filter. The filter runs
// under the transport lock; keep it fast and non-reentrant.
func (f *FaultTransport) SetDropFilter(filter func(from, to core.ServerID, m core.Message) bool) {
	f.mu.Lock()
	f.dropFilter = filter
	f.mu.Unlock()
}

// SetLatency changes the added delivery latency and jitter.
func (f *FaultTransport) SetLatency(latency, jitter time.Duration) {
	f.mu.Lock()
	f.opts.Latency = latency
	f.opts.Jitter = jitter
	f.mu.Unlock()
}

// Send implements Transport, applying crash, partition, drop and latency
// faults before (possibly) forwarding to the wrapped transport.
func (f *FaultTransport) Send(from, to core.ServerID, m core.Message) error {
	f.mu.Lock()
	if f.crashed[from] || f.crashed[to] || f.blocked[[2]core.ServerID{from, to}] ||
		(f.dropFilter != nil && f.dropFilter(from, to, m)) ||
		(f.opts.DropProb > 0 && f.src.Float64() < f.opts.DropProb) {
		f.mu.Unlock()
		f.faultDrops.Add(1)
		return nil // loss is normal under soft state
	}
	delay := f.opts.Latency
	if f.opts.Jitter > 0 {
		delay += time.Duration(f.src.Float64() * float64(f.opts.Jitter))
	}
	f.mu.Unlock()
	if delay <= 0 {
		return f.inner.Send(from, to, m)
	}
	f.delayed.Add(1)
	time.AfterFunc(delay, func() { _ = f.inner.Send(from, to, m) })
	return nil
}

// Close closes the wrapped transport.
func (f *FaultTransport) Close() error { return f.inner.Close() }

// SetAddr forwards runtime address learning to the wrapped transport when it
// supports it, so membership address discovery works through fault wrappers.
func (f *FaultTransport) SetAddr(id core.ServerID, addr string) {
	if as, ok := f.inner.(AddrSetter); ok {
		as.SetAddr(id, addr)
	}
}

// SendTo forwards address-directed sends (the join bootstrap path) to the
// wrapped transport. Note crash/partition faults are keyed by server ID and
// do not apply here: a join targets an address, not a known member.
func (f *FaultTransport) SendTo(addr string, m core.Message) error {
	if ds, ok := f.inner.(AddrSender); ok {
		return ds.SendTo(addr, m)
	}
	return fmt.Errorf("overlay: wrapped transport cannot send by address")
}

// SetReadHistogram forwards the frames-per-read histogram to the wrapped
// transport when it records one (TCPTransport does; LocalTransport has no
// read(2) path), so receive-batching telemetry survives fault wrapping.
func (f *FaultTransport) SetReadHistogram(h *telemetry.Histogram) {
	if hs, ok := f.inner.(ReadHistogramSetter); ok {
		hs.SetReadHistogram(h)
	}
}

// Stats reports the wrapped transport's counters (zero if it exports none)
// with this wrapper's injected drops added.
func (f *FaultTransport) Stats() TransportStats {
	var s TransportStats
	if sr, ok := f.inner.(StatsReporter); ok {
		s = sr.Stats()
	}
	s.FaultDrops += f.faultDrops.Load()
	return s
}

// Delayed returns how many messages were deferred by added latency.
func (f *FaultTransport) Delayed() uint64 { return f.delayed.Load() }
