package overlay

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"terradir/internal/core"
)

// TestFastPathRaceStress hammers the lock-free lookup fast path from many
// client goroutines while the event loops concurrently rewrite routing
// state underneath it: soft-state learning (LearnMaps), server purges
// (PurgeServer, which scrubs cache entries, replica maps, and neighbor
// references), and the snapshot republishes each mutation triggers. Every
// mutation goes through Inspect, so the readers race only against the
// atomic snapshot swaps — exactly the invariant the copy-on-write design
// must hold. At shard counts above one, each Inspect is a cross-shard
// quiescence barrier interleaved with per-shard fast serves, covering the
// sharded learn-gating too. Run under -race; it is the detector, not
// assertions here, that gives this test its teeth.
func TestFastPathRaceStress(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			runFastPathRaceStress(t, shards)
		})
	}
}

func runFastPathRaceStress(t *testing.T, shards int) {
	tree := testTree()
	opts := LocalClusterOptions{Servers: 4, Seed: 23}
	opts.Node.Shards = shards
	c, err := NewLocalCluster(tree, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.StopAll()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Warm the caches so readers actually take the snapshot fast path.
	for i := 0; i < 2*tree.Len(); i++ {
		if _, err := c.Lookup(ctx, i%4, core.NodeID((i*7919+3)%tree.Len())); err != nil {
			t.Fatal(err)
		}
	}

	const (
		readers          = 4
		lookupsPerReader = 400
	)
	var (
		readerWG  sync.WaitGroup
		mutatorWG sync.WaitGroup
		mutating  atomic.Bool
	)
	mutating.Store(true)

	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			for i := 0; i < lookupsPerReader; i++ {
				dest := core.NodeID((i*104729 + r*7919 + 1) % tree.Len())
				res, err := c.Lookup(ctx, (r+i)%4, dest)
				if err != nil {
					t.Errorf("reader %d: lookup %d: %v", r, i, err)
					return
				}
				if !res.OK {
					t.Errorf("reader %d: lookup %d to node %d failed: %+v", r, i, dest, res)
					return
				}
			}
		}(r)
	}

	// Mutator: cycles every node through purge-then-relearn until the
	// readers drain. PurgeServer rewrites the cache, hosted replicas, and
	// NodeMaps in place; LearnMaps repopulates; each Inspect forces a
	// snapshot republish before fast serves resume. All servers stay alive,
	// so lookups must keep succeeding no matter which references are
	// scrubbed mid-flight.
	mutatorWG.Add(1)
	go func() {
		defer mutatorWG.Done()
		relearn := make([]core.PathEntry, 0, 8)
		for round := 0; mutating.Load(); round++ {
			victim := core.ServerID((round + 1) % 4)
			for i := 0; i < 4; i++ {
				relearn = relearn[:0]
				for k := 0; k < 8; k++ {
					nd := core.NodeID((round*31 + k*13) % tree.Len())
					relearn = append(relearn, core.PathEntry{
						Node: nd, Map: core.SingleServerMap(c.OwnerOf(nd)),
					})
				}
				entries := relearn
				c.Node(i).Inspect(func(p *core.Peer) {
					p.PurgeServer(victim, c.OwnerOf)
					p.LearnMaps(entries)
				})
			}
		}
	}()

	readerWG.Wait()
	mutating.Store(false)
	mutatorWG.Wait()
}
