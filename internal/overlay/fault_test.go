package overlay

import (
	"context"
	"sync"
	"testing"
	"time"

	"terradir/internal/core"
)

// recordingTransport captures sends for fault-injection assertions.
type recordingTransport struct {
	mu    sync.Mutex
	sends [][2]core.ServerID
}

func (r *recordingTransport) Send(from, to core.ServerID, m core.Message) error {
	r.mu.Lock()
	r.sends = append(r.sends, [2]core.ServerID{from, to})
	r.mu.Unlock()
	return nil
}

func (r *recordingTransport) Close() error { return nil }

func (r *recordingTransport) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sends)
}

func probe() core.Message { return &core.LoadProbeMsg{Session: 1, From: 0} }

func TestFaultCrashDropsBothDirections(t *testing.T) {
	inner := &recordingTransport{}
	f := NewFaultTransport(inner, FaultOptions{Seed: 3})
	f.Crash(2)
	if !f.Crashed(2) || f.Crashed(1) {
		t.Fatal("crash bookkeeping wrong")
	}
	_ = f.Send(0, 2, probe()) // to crashed
	_ = f.Send(2, 0, probe()) // from crashed
	_ = f.Send(0, 1, probe()) // unaffected
	if inner.count() != 1 {
		t.Fatalf("inner saw %d sends, want 1", inner.count())
	}
	if s := f.Stats(); s.FaultDrops != 2 {
		t.Fatalf("fault drops = %d, want 2", s.FaultDrops)
	}
	f.Revive(2)
	_ = f.Send(0, 2, probe())
	if inner.count() != 2 {
		t.Fatal("revived peer still dropped")
	}
}

func TestFaultAsymmetricPartition(t *testing.T) {
	inner := &recordingTransport{}
	f := NewFaultTransport(inner, FaultOptions{Seed: 3})
	f.Block(0, 1)
	_ = f.Send(0, 1, probe()) // blocked direction
	_ = f.Send(1, 0, probe()) // reverse flows
	if inner.count() != 1 {
		t.Fatalf("inner saw %d sends, want 1 (asymmetric block)", inner.count())
	}
	f.Unblock(0, 1)
	_ = f.Send(0, 1, probe())
	if inner.count() != 2 {
		t.Fatal("unblocked edge still dropped")
	}

	f.Partition([]core.ServerID{0, 1}, []core.ServerID{2})
	_ = f.Send(0, 2, probe())
	_ = f.Send(2, 1, probe())
	_ = f.Send(0, 1, probe()) // same side: flows
	if inner.count() != 3 {
		t.Fatalf("inner saw %d sends, want 3 (bidirectional partition)", inner.count())
	}
	f.HealPartition([]core.ServerID{0, 1}, []core.ServerID{2})
	_ = f.Send(0, 2, probe())
	if inner.count() != 4 {
		t.Fatal("healed partition still dropped")
	}
}

func TestFaultDropProbabilityDeterministic(t *testing.T) {
	run := func() (delivered int) {
		inner := &recordingTransport{}
		f := NewFaultTransport(inner, FaultOptions{DropProb: 0.5, Seed: 42})
		for i := 0; i < 200; i++ {
			_ = f.Send(0, 1, probe())
		}
		return inner.count()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different outcomes: %d vs %d", a, b)
	}
	if a < 60 || a > 140 {
		t.Fatalf("drop-prob 0.5 delivered %d of 200", a)
	}
	inner := &recordingTransport{}
	f := NewFaultTransport(inner, FaultOptions{DropProb: 1, Seed: 1})
	for i := 0; i < 20; i++ {
		_ = f.Send(0, 1, probe())
	}
	if inner.count() != 0 {
		t.Fatalf("drop-prob 1 delivered %d messages", inner.count())
	}
	f.SetDropProb(0)
	_ = f.Send(0, 1, probe())
	if inner.count() != 1 {
		t.Fatal("drop-prob 0 dropped a message")
	}
}

func TestFaultLatencyDefersDelivery(t *testing.T) {
	inner := &recordingTransport{}
	f := NewFaultTransport(inner, FaultOptions{Latency: 30 * time.Millisecond, Seed: 3})
	_ = f.Send(0, 1, probe())
	if inner.count() != 0 {
		t.Fatal("latency-injected message delivered synchronously")
	}
	deadline := time.Now().Add(3 * time.Second)
	for inner.count() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("delayed message never delivered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if f.Delayed() != 1 {
		t.Fatalf("delayed counter = %d, want 1", f.Delayed())
	}
	f.SetLatency(0, 0)
	_ = f.Send(0, 1, probe())
	if inner.count() != 2 {
		t.Fatal("zero latency no longer synchronous")
	}
}

func TestFaultOverLocalClusterKill(t *testing.T) {
	// End to end over the live local overlay: crash a peer and verify the
	// cluster keeps answering lookups for nodes the dead peer doesn't own.
	tree := testTree()
	c, err := NewLocalCluster(tree, LocalClusterOptions{
		Servers: 4,
		Seed:    11,
		Fault:   &FaultOptions{Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.StopAll()
	if c.Fault() == nil {
		t.Fatal("cluster has no fault transport")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	// Warm: resolve a set of destinations owned by servers other than the
	// victim, so server 0 caches their maps (path-propagation caching).
	victim := 3
	var dests []core.NodeID
	for nd := 0; nd < tree.Len() && len(dests) < 12; nd += 17 {
		if int(c.OwnerOf(core.NodeID(nd))) == victim {
			continue
		}
		dests = append(dests, core.NodeID(nd))
	}
	for _, nd := range dests {
		if res, err := c.Lookup(ctx, 0, nd); err != nil || !res.OK {
			t.Fatalf("warm lookup %d: %v %+v", nd, err, res)
		}
	}
	// Kill the victim. Cached soft state on server 0 must keep the same
	// destinations resolvable without ever touching the dead peer.
	c.KillServer(victim)
	for _, nd := range dests {
		lctx, lcancel := context.WithTimeout(ctx, 3*time.Second)
		res, err := c.Lookup(lctx, 0, nd)
		lcancel()
		if err != nil || !res.OK {
			t.Fatalf("lookup %d after kill: %v %+v", nd, err, res)
		}
	}
}
