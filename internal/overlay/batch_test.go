package overlay

// Tests for the batched receive path: frame classification (unknown kind vs
// corruption), FramesRead/ReadBatches accounting, batch delivery vs sender
// retirement and vs the shard barrier, and the queue-wait-from-enqueue
// invariant of the batch-drain shard loop.

import (
	"context"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"terradir/internal/core"
	"terradir/internal/wire"
)

func TestTCPUnknownKindKeepsConnection(t *testing.T) {
	// A well-framed message with the current Magic marker but an unknown kind
	// byte is what a NEWER peer's frames look like during a rolling upgrade:
	// it must be counted separately from corruption and the connection must
	// survive to carry the kinds we do understand.
	_, transports, _ := startTCPPair(t, TCPTransportOptions{})
	base := transports[0].Stats()
	c, err := net.Dial("tcp", transports[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := wire.WriteFrame(c, []byte{wire.Magic, 0xF0, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool {
		return transports[0].Stats().UnknownFrames == base.UnknownFrames+1
	})
	if got := transports[0].Stats().CorruptFrames; got != base.CorruptFrames {
		t.Fatalf("unknown kind bumped CorruptFrames %d -> %d", base.CorruptFrames, got)
	}
	// The connection survived: a second unknown-kind frame on the SAME
	// connection is still read and classified.
	if err := wire.WriteFrame(c, []byte{wire.Magic, 0xEE}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool {
		return transports[0].Stats().UnknownFrames == base.UnknownFrames+2
	})
	// ... and so is a valid frame.
	valid, err := wire.Encode(&core.LoadProbeMsg{Session: 9, From: 1})
	if err != nil {
		t.Fatal(err)
	}
	fr := transports[0].Stats().FramesRead
	if err := wire.WriteFrame(c, valid); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool {
		return transports[0].Stats().FramesRead >= fr+1
	})
	if got := transports[0].Stats().CorruptFrames; got != base.CorruptFrames {
		t.Fatalf("CorruptFrames moved %d -> %d without corruption", base.CorruptFrames, got)
	}
}

func TestTCPReadBatchAccounting(t *testing.T) {
	// Every frame one side writes is eventually read (and counted) by the
	// other: at quiescence the receiver's FramesRead covers the sender's Sent,
	// and ReadBatches stays within (0, FramesRead] — each batch carries at
	// least one frame.
	nodes, transports, _ := startTCPPair(t, TCPTransportOptions{})
	dest := ownedByServer(t, Assign(testTree(), 2, 7), 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 50; i++ {
		if res, err := nodes[0].Lookup(ctx, dest); err != nil || !res.OK {
			t.Fatalf("lookup %d: %v %+v", i, err, res)
		}
	}
	sent0 := transports[0].Stats().Sent
	waitFor(t, 5*time.Second, func() bool {
		return transports[1].Stats().FramesRead >= sent0
	})
	s1 := transports[1].Stats()
	if s1.ReadBatches == 0 || s1.ReadBatches > s1.FramesRead {
		t.Fatalf("ReadBatches = %d outside (0, FramesRead=%d]", s1.ReadBatches, s1.FramesRead)
	}
	sent1 := transports[1].Stats().Sent
	waitFor(t, 5*time.Second, func() bool {
		return transports[0].Stats().FramesRead >= sent1
	})
	s0 := transports[0].Stats()
	if s0.ReadBatches == 0 || s0.ReadBatches > s0.FramesRead {
		t.Fatalf("ReadBatches = %d outside (0, FramesRead=%d]", s0.ReadBatches, s0.FramesRead)
	}
}

func TestTCPClientRetireStopsBatchDelivery(t *testing.T) {
	// A hello-registered client sender being retired (what a superseding
	// re-hello does) must fence in-flight batch delivery: once retire()
	// returns, not one more frame from the retired connection may reach the
	// consumer — not even a frame already decoded into an in-flight batch.
	tr, err := NewTCPTransportOpts(core.ServerID(0), "127.0.0.1:0",
		map[core.ServerID]string{}, TCPTransportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	var delivered atomic.Uint64
	tr.ServeFunc(func(core.Message) { delivered.Add(1) })

	conn, err := net.Dial("tcp", tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello, err := wire.Encode(&core.HelloMsg{ID: core.ClientID(7), Role: core.RoleClient})
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, hello); err != nil {
		t.Fatal(err)
	}
	probe, err := wire.Encode(&core.LoadProbeMsg{Session: 1, From: 1})
	if err != nil {
		t.Fatal(err)
	}
	stopFlood := make(chan struct{})
	floodDone := make(chan struct{})
	go func() {
		defer close(floodDone)
		for {
			select {
			case <-stopFlood:
				return
			default:
			}
			if err := wire.WriteFrame(conn, probe); err != nil {
				return // retire closed the connection under us: expected
			}
		}
	}()
	defer func() { close(stopFlood); <-floodDone }()

	waitFor(t, 3*time.Second, func() bool { return delivered.Load() > 0 })
	tr.mu.Lock()
	cs := tr.clients[core.ClientID(7)]
	tr.mu.Unlock()
	if cs == nil {
		t.Fatal("hello did not register a client sender")
	}
	cs.retire()
	snap := delivered.Load()
	time.Sleep(100 * time.Millisecond)
	if got := delivered.Load(); got != snap {
		t.Fatalf("%d frames delivered after retire() returned", got-snap)
	}
}

func TestTCPBatchDeliveryVsPurgeBarrier(t *testing.T) {
	// Batched DeliverBatch calls from the transport read goroutines racing the
	// shard barrier (Inspect/PurgeServer parks every loop) must stay safe: run
	// lookups and purges concurrently under -race, then verify the overlay
	// still resolves.
	nodes, _, _ := startTCPPair(t, TCPTransportOptions{})
	owner := Assign(testTree(), 2, 7)
	remote := ownedByServer(t, owner, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if res, err := nodes[0].Lookup(ctx, remote); err != nil || !res.OK {
		t.Fatalf("warm lookup: %v %+v", err, res)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Failures during purge churn are tolerable; the race detector
				// is the judge here.
				_, _ = nodes[0].Lookup(ctx, remote)
			}
		}()
	}
	ownerOf := func(nd core.NodeID) core.ServerID { return owner[nd] }
	deadline := time.Now().Add(600 * time.Millisecond)
	for time.Now().Before(deadline) {
		// Purging a phantom server exercises the full barrier without
		// disturbing real routing state.
		nodes[1].Inspect(func(p *core.Peer) { p.PurgeServer(core.ServerID(9), ownerOf) })
	}
	close(stop)
	wg.Wait()
	waitFor(t, 5*time.Second, func() bool {
		res, err := nodes[0].Lookup(ctx, remote)
		return err == nil && res.OK
	})
}

// snapshotPrefix sums every snapshot entry whose key starts with prefix
// (labels vary by server ID).
func snapshotPrefix(snap map[string]float64, prefix string) float64 {
	total := 0.0
	for k, v := range snap {
		if strings.HasPrefix(k, prefix) {
			total += v
		}
	}
	return total
}

func TestQueueWaitMeasuredFromEnqueue(t *testing.T) {
	// The batch-drain loop must keep charging queue wait from ENQUEUE time,
	// not from when its batch started draining: block the shard loop, let
	// queries pile up, and require the recorded wait to cover the blockage.
	cluster, err := NewLocalCluster(testTree(), LocalClusterOptions{
		Servers: 1,
		Node:    Options{DisableFastPath: true, IngestBatch: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.StopAll()
	n := cluster.Node(0)

	const blockFor = 150 * time.Millisecond
	const queries = 8
	release := make(chan struct{})
	blocked := make(chan struct{})
	n.shards[0].control <- envelope{fn: func() {
		close(blocked)
		<-release
	}}
	<-blocked
	batch := make([]core.Message, queries)
	for i := range batch {
		batch[i] = &core.QueryMsg{QueryID: uint64(i) + 1, Dest: core.NodeID(i + 1), Source: 0}
	}
	n.DeliverBatch(batch) // all 8 sit in the queue while the loop is blocked
	time.Sleep(blockFor)
	close(release)

	waitFor(t, 5*time.Second, func() bool {
		return snapshotPrefix(n.Registry().Snapshot(), "terradir_queue_wait_seconds_count") >= queries
	})
	snap := n.Registry().Snapshot()
	wait := snapshotPrefix(snap, "terradir_queue_wait_seconds_sum")
	// Each query waited at least ~the blockage; batch-start-relative
	// accounting would record near zero.
	if min := queries * blockFor.Seconds() * 0.5; wait < min {
		t.Fatalf("queue wait sum = %.4fs, want >= %.4fs (measured from enqueue)", wait, min)
	}
	// The drain itself must have been batched: the depth histogram saw the
	// pile-up as (at least) one multi-envelope batch.
	if depth := snapshotPrefix(snap, "terradir_shard_batch_depth_sum"); depth < queries {
		t.Fatalf("batch depth sum = %.0f, want >= %d", depth, queries)
	}
}
