package overlay

import (
	"context"
	"flag"
	"fmt"
	"sync"
	"testing"
	"time"

	"terradir/internal/core"
	"terradir/internal/namespace"
	"terradir/internal/rng"
)

// testShards is the default shard count for every cluster-building helper in
// the package, so the whole suite can be re-run against a sharded event loop:
//
//	go test -race -shards 4 ./internal/overlay/
var testShards = flag.Int("shards", 1, "default node shard count for overlay tests")

func testTree() *namespace.Tree {
	return namespace.NewBalanced(2, 8) // 255 nodes
}

func startLocal(t *testing.T, servers int, mut func(*LocalClusterOptions)) *LocalCluster {
	t.Helper()
	opts := LocalClusterOptions{Servers: servers, Seed: 11}
	opts.Node.Shards = *testShards
	if mut != nil {
		mut(&opts)
	}
	c, err := NewLocalCluster(testTree(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.StopAll)
	return c
}

func TestLocalLookupResolves(t *testing.T) {
	c := startLocal(t, 8, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := c.Lookup(ctx, 0, core.NodeID(200))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("lookup failed: %+v", res)
	}
	if res.Node != 200 || res.Name == "" {
		t.Fatalf("result identity wrong: %+v", res)
	}
	found := false
	for _, h := range res.Hosts {
		if h == c.OwnerOf(200) {
			found = true
		}
	}
	if !found {
		t.Fatalf("owner missing from hosts: %+v", res.Hosts)
	}
}

func TestLocalLookupByName(t *testing.T) {
	c := startLocal(t, 4, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	name := c.Tree().Name(77)
	res, err := c.LookupName(ctx, 1, name)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Name != name {
		t.Fatalf("name lookup: %+v", res)
	}
	if _, err := c.LookupName(ctx, 1, "/no/such/name"); err == nil {
		t.Fatal("bogus name accepted")
	}
}

func TestLocalManyLookupsAllServers(t *testing.T) {
	c := startLocal(t, 8, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	src := rng.New(5)
	for i := 0; i < 200; i++ {
		from := src.Intn(8)
		dest := core.NodeID(src.Intn(c.Tree().Len()))
		res, err := c.Lookup(ctx, from, dest)
		if err != nil {
			t.Fatalf("lookup %d: %v", i, err)
		}
		if !res.OK {
			t.Fatalf("lookup %d failed: %+v", i, res)
		}
	}
}

func TestLocalConcurrentLookups(t *testing.T) {
	c := startLocal(t, 8, func(o *LocalClusterOptions) {
		o.Node.QueueCap = 512
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := rng.New(uint64(g) + 100)
			for i := 0; i < 50; i++ {
				res, err := c.Lookup(ctx, g, core.NodeID(src.Intn(c.Tree().Len())))
				if err != nil {
					errs <- err
					return
				}
				if !res.OK {
					errs <- fmt.Errorf("goroutine %d lookup %d failed: %v", g, i, res.Reason)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestLocalNetDelayStillResolves(t *testing.T) {
	c := startLocal(t, 4, func(o *LocalClusterOptions) {
		o.NetDelay = 2 * time.Millisecond
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := c.Lookup(ctx, 2, 99)
	if err != nil || !res.OK {
		t.Fatalf("lookup with delay: %v %+v", err, res)
	}
	if res.Latency <= 0 {
		t.Fatalf("latency not measured: %v", res.Latency)
	}
}

func TestLookupContextCancel(t *testing.T) {
	c := startLocal(t, 4, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Lookup(ctx, 0, 1); err == nil {
		t.Fatal("cancelled lookup succeeded")
	}
}

func TestLookupUnknownNode(t *testing.T) {
	c := startLocal(t, 4, nil)
	if _, err := c.Node(0).Lookup(context.Background(), core.NodeID(1<<20)); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

func TestAssignDeterministicAndCovering(t *testing.T) {
	tree := testTree()
	a := Assign(tree, 8, 42)
	b := Assign(tree, 8, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("assignment not deterministic")
		}
		if a[i] < 0 || a[i] >= 8 {
			t.Fatalf("assignment out of range: %d", a[i])
		}
	}
	c := Assign(tree, 8, 43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical assignment")
	}
}

func TestReplicationUnderLiveLoad(t *testing.T) {
	// Drive a hot spot with an artificial service cost so the nodes'
	// measured load crosses Thigh and live replication kicks in.
	c := startLocal(t, 4, func(o *LocalClusterOptions) {
		o.Node.ServiceDelay = 2 * time.Millisecond
		o.Node.QueueCap = 256
		cfg := core.DefaultConfig()
		cfg.ReplicationCooldown = 0.05
		o.Node.Config = cfg
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	hot := core.NodeID(123)
	owner := c.OwnerOf(hot)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				src := g
				if core.ServerID(src) == owner {
					src = (src + 1) % 4
				}
				_, _ = c.Lookup(ctx, src, hot)
			}
		}(g)
	}
	wg.Wait()
	time.Sleep(200 * time.Millisecond)
	c.StopAll()
	total := c.TotalReplicas()
	if total == 0 {
		t.Fatal("no live replication despite sustained hot-spot load")
	}
}

func TestTCPClusterLookup(t *testing.T) {
	tree := testTree()
	const servers = 3
	owner := Assign(tree, servers, 7)
	ownerOf := func(nd core.NodeID) core.ServerID { return owner[nd] }
	ownedBy := make([][]core.NodeID, servers)
	for nd, s := range owner {
		ownedBy[s] = append(ownedBy[s], core.NodeID(nd))
	}
	// Bind listeners first so the address map is complete before any sends.
	transports := make([]*TCPTransport, servers)
	addrs := map[core.ServerID]string{}
	for i := 0; i < servers; i++ {
		tr, err := NewTCPTransport(core.ServerID(i), "127.0.0.1:0", addrs)
		if err != nil {
			t.Fatal(err)
		}
		transports[i] = tr
		addrs[core.ServerID(i)] = tr.Addr()
	}
	nodes := make([]*Node, servers)
	for i := 0; i < servers; i++ {
		n, err := NewNode(core.ServerID(i), tree, ownedBy[i], ownerOf, Options{Seed: uint64(i) + 1})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		StartTCPNode(n, transports[i])
	}
	defer func() {
		for i := range nodes {
			nodes[i].Stop()
			transports[i].Close()
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 30; i++ {
		from := i % servers
		dest := core.NodeID((i * 37) % tree.Len())
		res, err := nodes[from].Lookup(ctx, dest)
		if err != nil {
			t.Fatalf("tcp lookup %d: %v", i, err)
		}
		if !res.OK {
			t.Fatalf("tcp lookup %d failed: %+v", i, res)
		}
	}
}

func TestTCPSendToUnknownServer(t *testing.T) {
	tr, err := NewTCPTransport(0, "127.0.0.1:0", map[core.ServerID]string{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.Send(0, 5, &core.LoadProbeMsg{Session: 1, From: 0}); err == nil {
		t.Fatal("send to unmapped server succeeded")
	}
}

func TestNodeStopIdempotentLookupAfterStop(t *testing.T) {
	c := startLocal(t, 2, nil)
	n := c.Node(0)
	n.Stop()
	n.Stop() // idempotent
	if _, err := n.Lookup(context.Background(), 1); err == nil {
		// A lookup may still enqueue; it must at least not hang. Give it a
		// bounded wait via context instead.
		t.Log("lookup after stop returned success unexpectedly")
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	c := startLocal(t, 2, func(o *LocalClusterOptions) {
		o.Node.QueueCap = 1
		o.Node.ServiceDelay = 50 * time.Millisecond
	})
	n := c.Node(0)
	// Flood without waiting: most must be dropped, none may block.
	for i := 0; i < 50; i++ {
		n.Deliver(&core.QueryMsg{QueryID: uint64(i) + 1000, Dest: 3, Source: 1})
	}
	if n.Dropped() == 0 {
		t.Fatal("no drops despite queue bound 1")
	}
}

func TestGetRetrievesOwnerData(t *testing.T) {
	tree := testTree()
	c, err := NewLocalCluster(tree, LocalClusterOptions{Servers: 6, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	defer c.StopAll()
	target := core.NodeID(42)
	owner := c.OwnerOf(target)
	// Safe: the loop is idle — no traffic has touched this peer yet.
	if !c.Node(int(owner)).StoreData(target, []byte("payload-42")) {
		t.Fatal("StoreData refused on owner")
	}
	if c.Node(int((owner+1)%6)).StoreData(target, []byte("x")) {
		t.Fatal("StoreData accepted on non-owner")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	from := (int(owner) + 1) % 6
	res, data, err := c.Node(from).Get(ctx, target)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || string(data) != "payload-42" {
		t.Fatalf("Get: %+v %q", res, data)
	}
	// Local fast path: the owner fetching its own data.
	_, data2, err := c.Node(int(owner)).Get(ctx, target)
	if err != nil || string(data2) != "payload-42" {
		t.Fatalf("owner-local Get: %v %q", err, data2)
	}
}

func TestGetNoData(t *testing.T) {
	c := startLocal(t, 4, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// No data stored anywhere: Get must fail with a clear error but the
	// lookup part must succeed.
	res, _, err := c.Node(0).Get(ctx, 9)
	if err == nil {
		t.Fatal("Get succeeded with no data stored")
	}
	if !res.OK {
		t.Fatalf("lookup part failed: %+v", res)
	}
}

func TestSearchSubtree(t *testing.T) {
	c := startLocal(t, 6, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	tree := c.Tree()
	prefix := tree.Name(1) // one of the root's children: a large subtree
	out, err := c.Node(0).Search(ctx, prefix, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Subtree of depth 2 below node 1 in a binary tree: 1 + 2 + 4 = 7.
	if len(out) != 7 {
		t.Fatalf("search returned %d entries, want 7", len(out))
	}
	for _, r := range out {
		if !r.OK {
			t.Fatalf("search entry failed: %+v", r)
		}
		if r.Depth < 0 || r.Depth > 2 {
			t.Fatalf("depth out of range: %+v", r)
		}
	}
	// Limit applies.
	out2, err := c.Node(0).Search(ctx, prefix, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(out2) != 4 {
		t.Fatalf("limited search returned %d", len(out2))
	}
	if _, err := c.Node(0).Search(ctx, "/bogus", 1, 0); err == nil {
		t.Fatal("bogus prefix accepted")
	}
}

func TestSnapshot(t *testing.T) {
	c := startLocal(t, 4, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 20; i++ {
		if _, err := c.Lookup(ctx, 0, core.NodeID(i*7%c.Tree().Len())); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Node(0).Snapshot()
	if s.ID != 0 || s.Owned == 0 {
		t.Fatalf("snapshot identity wrong: %+v", s)
	}
	if s.Stats.Processed == 0 {
		t.Fatal("no processed queries in snapshot")
	}
	if s.Load < 0 || s.Load > 1 {
		t.Fatalf("load out of range: %v", s.Load)
	}
}

func TestLocalTransportErrors(t *testing.T) {
	tr := NewLocalTransport(0)
	if err := tr.Send(0, 5, &core.LoadProbeMsg{}); err == nil {
		t.Fatal("send to unregistered server succeeded")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLocalClusterAccessorsAndErrors(t *testing.T) {
	c := startLocal(t, 3, nil)
	if c.Servers() != 3 {
		t.Fatalf("Servers = %d", c.Servers())
	}
	if c.Node(1).ID() != 1 {
		t.Fatal("node ID wrong")
	}
	ctx := context.Background()
	if _, err := c.Lookup(ctx, -1, 0); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, err := c.Lookup(ctx, 99, 0); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := c.LookupName(ctx, 99, "/"); err == nil {
		t.Fatal("out-of-range source accepted by LookupName")
	}
	if _, err := NewLocalCluster(testTree(), LocalClusterOptions{Servers: 0}); err == nil {
		t.Fatal("zero servers accepted")
	}
}

func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	// A broken connection must be forgotten and redialed: kill the receiving
	// transport mid-stream, restart it on the same port, and verify traffic
	// flows again (dropConn + lazy redial path).
	tree := testTree()
	owner := Assign(tree, 2, 7)
	ownerOf := func(nd core.NodeID) core.ServerID { return owner[nd] }
	ownedBy := make([][]core.NodeID, 2)
	for nd, s := range owner {
		ownedBy[s] = append(ownedBy[s], core.NodeID(nd))
	}
	addrs := map[core.ServerID]string{}
	tr0, err := NewTCPTransport(0, "127.0.0.1:0", addrs)
	if err != nil {
		t.Fatal(err)
	}
	tr1, err := NewTCPTransport(1, "127.0.0.1:0", addrs)
	if err != nil {
		t.Fatal(err)
	}
	addrs[0] = tr0.Addr()
	addrs[1] = tr1.Addr()
	n0, err := NewNode(0, tree, ownedBy[0], ownerOf, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	n1, err := NewNode(1, tree, ownedBy[1], ownerOf, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	StartTCPNode(n0, tr0)
	StartTCPNode(n1, tr1)
	defer func() { n0.Stop(); n1.Stop(); tr0.Close() }()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	// Find a node owned by server 1 so the lookup crosses the wire.
	var remote core.NodeID = -1
	for nd, s := range owner {
		if s == 1 {
			remote = core.NodeID(nd)
			break
		}
	}
	if res, err := n0.Lookup(ctx, remote); err != nil || !res.OK {
		t.Fatalf("initial lookup: %v %+v", err, res)
	}
	// Kill peer 1 outright — node stopped, transport (listener and all
	// connections) closed — then restart it on the same address with fresh
	// soft state, as a real crashed-and-rebooted peer would.
	addr1 := tr1.Addr()
	n1.Stop()
	tr1.Close()
	// Sends during the outage are queued/dropped by the async outbound path;
	// soft state tolerates the loss.
	_ = tr0.Send(0, 1, &core.LoadProbeMsg{Session: 1, From: 0})
	tr1b, err := NewTCPTransport(1, addr1, addrs)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr1, err)
	}
	defer tr1b.Close()
	n1b, err := NewNode(1, tree, ownedBy[1], ownerOf, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	StartTCPNode(n1b, tr1b)
	defer n1b.Stop()
	// Traffic must flow again (writer-goroutine redial with backoff).
	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err := n0.Lookup(ctx, remote)
		if err == nil && res.OK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lookup never recovered after transport restart: %v %+v", err, res)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
