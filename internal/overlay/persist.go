package overlay

// This file wires the persistence tier (internal/persist) into a live node:
// journal hooks on every shard peer, periodic snapshots taken under the
// shard barrier, replay at construction, and the delta-reconcile protocol a
// restarted node uses instead of a full warmup stream (DESIGN.md §13).

import (
	"fmt"
	"log"
	"time"

	"terradir/internal/bloom"
	"terradir/internal/core"
	"terradir/internal/membership"
	"terradir/internal/persist"
	"terradir/internal/wire"
)

// partialMutation reports whether kind patches a field of an existing hosted
// entry (as opposed to creating or deleting one): replaying it against a cold
// node needs the on-disk base state materialized first.
func partialMutation(kind core.MutationKind) bool {
	switch kind {
	case core.MutMeta, core.MutData, core.MutMap, core.MutRelease, core.MutAdopt:
		return true
	}
	return false
}

// PersistOptions enables the durability tier on a node: every hosted-state
// mutation is journaled to a write-ahead log under Dir, periodic snapshots
// bound replay time, and a restart replays snapshot+WAL locally before
// reconciling only the delta it missed from its ring successor.
type PersistOptions struct {
	// Dir is the node's data directory. Required; created if absent. One
	// directory per node — two live nodes sharing one corrupt each other.
	Dir string
	// SnapshotInterval is the period between snapshots (each truncates the
	// WAL segments it covers). Default 30s.
	SnapshotInterval time.Duration
	// SyncPolicy picks the WAL fsync discipline (persist.SyncInterval,
	// persist.SyncAlways, persist.SyncNone). Default SyncInterval.
	SyncPolicy persist.SyncPolicy
	// SyncInterval bounds data loss under the default policy: appends fsync
	// at most once per interval. Default 100ms.
	SyncInterval time.Duration
	// HotCacheEntries, when positive, bounds the hosted entries the node
	// keeps in memory (split across shards); the rest of its hosted
	// partition lives in the persistence tier's on-disk node index and is
	// loaded on demand by a per-shard loader goroutine (DESIGN.md §14). The
	// namespace a node can host is then bounded by disk, not RAM.
	HotCacheEntries int
	// HotCacheBytes, when positive, bounds the approximate resident hosted
	// bytes per node (split across shards). Either bound (or both) enables
	// larger-than-RAM hosting.
	HotCacheBytes int64
}

// coldEnabled reports whether the hot-cache residency bounds are active.
func (o *PersistOptions) coldEnabled() bool {
	return o.HotCacheEntries > 0 || o.HotCacheBytes > 0
}

func (o *PersistOptions) fill() {
	if o.SnapshotInterval <= 0 {
		o.SnapshotInterval = 30 * time.Second
	}
}

// setupPersist opens the store, replays durable state into the shard peers
// (the loops are not running yet, so direct access is safe) and installs the
// journal hooks. Called from NewNode after shard construction.
func (n *Node) setupPersist(ownerOf func(core.NodeID) core.ServerID) error {
	po := n.opts.Persist
	po.fill()
	if po.Dir == "" {
		return fmt.Errorf("overlay: PersistOptions.Dir is required")
	}
	st, rs, err := persist.Open(po.Dir, persist.Options{
		SyncPolicy:   po.SyncPolicy,
		SyncInterval: po.SyncInterval,
		NodeIndex:    po.coldEnabled(),
		Registry:     n.reg,
		Labels:       []string{"server", fmt.Sprint(n.id)},
	})
	if err != nil {
		return err
	}
	n.store = st
	n.replayed = rs
	// An indexed replay left the snapshot's records on disk instead of
	// materializing them: stream the index into the shards, keeping entries
	// resident until each shard's hot cache fills and marking the rest cold.
	// The index stays acquired through the WAL-tail replay below, which may
	// need it to materialize cold entries hit by partial mutations.
	var ix *persist.Index
	if rs.Indexed {
		if ix = st.AcquireIndex(); ix == nil {
			return fmt.Errorf("overlay: indexed replay but no index generation available")
		}
		defer ix.Release()
		err := ix.EachEntry(func(node core.NodeID, owned, adopted bool, payload []byte) error {
			s := n.shards[n.shardOf(node)]
			if s.peer.ResidencyEnabled() && s.residencyFull() {
				// Adopted ownership is not durable (see ImportHosted): a cold
				// adopted entry counts as a plain replica.
				s.peer.MarkCold(node, owned && !adopted)
				return nil
			}
			mu, err := wire.DecodeHosted(payload)
			if err != nil {
				return err
			}
			s.peer.ImportHosted(mu, ownerOf)
			return nil
		})
		if err != nil {
			return fmt.Errorf("overlay: index restart stream: %w", err)
		}
	}
	// Route each replayed mutation to the shard owning its partition. The
	// owner hint resolves against the static assignment: the replayed view
	// predates any liveness knowledge, and adopted ownership is deliberately
	// not durable (membership re-adopts from live evidence).
	for i := range rs.Mutations {
		mu := &rs.Mutations[i]
		s := n.shards[n.shardOf(mu.Node)]
		if ix != nil && s.peer.IsCold(mu.Node) && partialMutation(mu.Kind) {
			// The tail mutates a field of an entry whose base state is still
			// on disk: materialize it first so the partial record applies.
			if rec, err := ix.Get(mu.Node); err == nil && rec != nil {
				s.peer.InstallFromIndex(rec, ownerOf)
			} else if err != nil {
				log.Printf("overlay: server %d index read for tail replay of node %d: %v", n.id, mu.Node, err)
			}
		}
		s.peer.ImportHosted(mu, ownerOf)
	}
	// Tail upserts may have pushed shards past their caps; entries installed
	// from the index are clean and can drain back to disk immediately.
	for _, s := range n.shards {
		s.peer.EnforceResidency()
	}
	// Journal hooks fire synchronously from each shard's single-writer loop;
	// the store serializes appends internally. Installed after replay so
	// imports do not re-journal themselves.
	for _, s := range n.shards {
		s.peer.SetJournal(func(mu *core.HostedMutation) {
			if err := st.Append(mu); err != nil {
				log.Printf("overlay: server %d wal append: %v", n.id, err)
			}
		})
	}
	return nil
}

// flushJournal pushes the store's group-commit buffer to the OS (see
// persist.Store.Flush). Shard loops call it once per drained batch and before
// blocking, so journal writes amortize across a batch of mutations instead of
// costing one write(2) each. No-op without persistence.
func (n *Node) flushJournal() {
	if n.store == nil {
		return
	}
	if err := n.store.Flush(); err != nil {
		log.Printf("overlay: server %d wal flush: %v", n.id, err)
	}
}

// writeSnapshot captures the full hosted state under the shard barrier and
// writes it as an atomic snapshot. Mark runs inside the barrier — no append
// is in flight, so the rolled WAL segment boundary exactly matches the
// exported state — while the (slow, fsyncing) snapshot write happens after
// the loops resume.
//
// With the hot cache enabled, "full hosted state" spans memory and disk: the
// barrier exports resident entries and captures each shard's cold-id set plus
// its clean-epoch generation, then (after the loops resume) the cold entries
// are merged in from the previous index generation with one sequential scan.
// Only after snapshot and index are durably on disk does each shard complete
// its clean epoch, making the entries the snapshot covered evictable.
func (n *Node) writeSnapshot() {
	var seq uint64
	var markErr error
	var recs []core.HostedMutation
	coldIDs := make([][]core.NodeID, len(n.shards))
	gens := make([]uint64, len(n.shards))
	residency := false
	ok := n.runOnShards(false, func(s *shard) {
		if s.idx == 0 {
			seq, markErr = n.store.Mark()
		}
		recs = append(recs, s.peer.ExportHosted()...)
		if s.peer.ResidencyEnabled() {
			residency = true
			gens[s.idx] = s.peer.MarkCleanEpoch()
			coldIDs[s.idx] = s.peer.ColdIDs()
		}
	})
	if !ok {
		return
	}
	if markErr != nil {
		log.Printf("overlay: server %d snapshot mark: %v", n.id, markErr)
		return
	}
	if !n.mergeColdRecords(&recs, coldIDs) {
		return // WAL segments stay; the previous snapshot still covers us
	}
	var inc uint64
	if n.membership != nil {
		inc = n.membership.Incarnation()
	}
	if err := n.store.WriteSnapshot(seq, inc, recs); err != nil {
		log.Printf("overlay: server %d snapshot write: %v", n.id, err)
		return
	}
	if !residency {
		return
	}
	// Snapshot + index are durable: tell each shard its pre-barrier state is
	// clean (evictable). A shard that mutated entries after the barrier keeps
	// those dirty — they wait for the next snapshot.
	for _, s := range n.shards {
		if !s.peer.ResidencyEnabled() {
			continue
		}
		s, g := s, gens[s.idx]
		select {
		case s.control <- envelope{fn: func() {
			s.peer.CompleteCleanEpoch(g)
			s.peer.EnforceResidency()
		}}:
		case <-n.stop:
			return
		}
	}
}

// mergeColdRecords appends the durable state of every cold (disk-only) node
// to recs, read from the current index generation in one sequential pass. It
// reports false — abandoning the snapshot — if any cold entry cannot be
// produced: writing a snapshot that silently lacks hosted state would turn
// the next restart into data loss.
func (n *Node) mergeColdRecords(recs *[]core.HostedMutation, coldIDs [][]core.NodeID) bool {
	want := make(map[core.NodeID]struct{})
	for _, l := range coldIDs {
		for _, nd := range l {
			want[nd] = struct{}{}
		}
	}
	if len(want) == 0 {
		return true
	}
	ix := n.store.AcquireIndex()
	if ix == nil {
		log.Printf("overlay: server %d snapshot: %d cold entries but no index generation", n.id, len(want))
		return false
	}
	defer ix.Release()
	err := ix.EachEntry(func(node core.NodeID, owned, adopted bool, payload []byte) error {
		if _, isCold := want[node]; !isCold {
			return nil
		}
		mu, err := wire.DecodeHosted(payload)
		if err != nil {
			return err
		}
		*recs = append(*recs, *mu)
		delete(want, node)
		return nil
	})
	if err != nil {
		log.Printf("overlay: server %d snapshot cold merge: %v", n.id, err)
		return false
	}
	if len(want) > 0 {
		log.Printf("overlay: server %d snapshot: %d cold entries missing from index generation %d", n.id, len(want), ix.Seq())
		return false
	}
	return true
}

// snapshotLoop writes a snapshot every SnapshotInterval until the node
// stops. There is deliberately no final snapshot at Stop: a crash and a
// clean stop must both recover purely from snapshot+WAL replay.
func (n *Node) snapshotLoop() {
	defer close(n.snapDone)
	t := time.NewTicker(n.opts.Persist.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.writeSnapshot()
		}
	}
}

// --- delta reconcile: the rejoiner side ---

// reconcileLoop runs on a restarted node that recovered durable state: once
// membership admits it, it offers its ring successor a Bloom digest of the
// hosted nodes it already has, and the successor streams back only the
// entries the digest misses. Retries (new digest each time — hosted state
// may have moved) until an ack arrives or the node stops.
func (n *Node) reconcileLoop() {
	defer close(n.recDone)
	poll := time.NewTicker(50 * time.Millisecond)
	defer poll.Stop()
	for !n.membership.Joined() {
		select {
		case <-n.stop:
			return
		case <-poll.C:
		}
	}
	const resendEvery = 20 // polls: ~1s between attempts
	for tick := 0; ; tick++ {
		if n.reconciled.Load() {
			return
		}
		if tick%resendEvery == 0 {
			n.sendReconcile()
		}
		select {
		case <-n.stop:
			return
		case <-poll.C:
		}
	}
}

// sendReconcile builds the hosted-set digest and offers it to the current
// ring successor (best-effort; the loop retries).
func (n *Node) sendReconcile() {
	target := n.reconcileTarget()
	if target == core.NoServer {
		return
	}
	digest := n.buildReconcileDigest()
	if digest == nil {
		return
	}
	_ = n.transport.Send(n.id, target, &core.MembershipMsg{
		Kind:        core.MembershipReconcile,
		From:        n.id,
		Incarnation: n.membership.Incarnation(),
		Digest:      digest,
	})
}

// reconcileTarget picks the first alive member after this node in ring
// order (wrapping), mirroring the ownership table's successor rule.
func (n *Node) reconcileTarget() core.ServerID {
	first, next := core.NoServer, core.NoServer
	for _, m := range n.membership.Members() { // sorted by ID
		if m.ID == n.id || m.State != membership.Alive {
			continue
		}
		if first == core.NoServer {
			first = m.ID
		}
		if m.ID > n.id && next == core.NoServer {
			next = m.ID
		}
	}
	if next != core.NoServer {
		return next
	}
	return first
}

// buildReconcileDigest snapshots the node's hosted IDs (under the shard
// barrier) into a Bloom filter sized for ~1% false positives. A false
// positive makes the successor skip an entry we actually lack — soft state,
// repaired by normal path dissemination.
func (n *Node) buildReconcileDigest() *bloom.Filter {
	ids := make([][]core.NodeID, len(n.shards))
	if !n.runOnShards(false, func(s *shard) { ids[s.idx] = s.peer.HostedIDs() }) {
		return nil
	}
	total := 0
	for _, l := range ids {
		total += len(l)
	}
	if total < 1 {
		total = 1
	}
	f := bloom.NewForCapacity(uint64(total), 0.01)
	for _, l := range ids {
		for _, nd := range l {
			f.Add(core.NodeKey(nd))
		}
	}
	return f
}

// --- delta reconcile: the successor side ---

// handleReconcile answers a rejoiner's digest with the hosted entries the
// digest misses, bounded by ReconcileEntries. Runs on its own goroutine
// (Deliver must not block on the shard barrier).
func (n *Node) handleReconcile(msg *core.MembershipMsg) {
	if n.membership == nil {
		return
	}
	max := n.opts.Membership.ReconcileEntries
	if max == 0 {
		max = defaultReconcileEntries
	}
	if max < 0 {
		return
	}
	var entries []core.PathEntry
	skipped := 0
	n.runOnShards(false, func(s *shard) {
		for _, e := range s.peer.BuildWarmup(1 << 20) {
			if msg.Digest != nil && msg.Digest.Test(core.NodeKey(e.Node)) {
				skipped++
				continue
			}
			entries = append(entries, e)
		}
	})
	if len(entries) > max {
		entries = entries[:max]
	}
	if n.reconcileSent != nil {
		n.reconcileSent.Add(uint64(len(entries)))
		n.reconcileSkipped.Add(uint64(skipped))
	}
	_ = n.transport.Send(n.id, msg.From, &core.MembershipMsg{
		Kind: core.MembershipReconcileAck, From: n.id, Warmup: entries,
	})
}

// handleReconcileAck absorbs the successor's delta stream and stops the
// rejoiner's retry loop. Duplicate acks (retries that crossed in flight)
// re-learn the same maps, which is idempotent soft state.
func (n *Node) handleReconcileAck(msg *core.MembershipMsg) {
	if len(msg.Warmup) > 0 {
		n.deliverWarmup(msg.Warmup)
	}
	n.reconciled.Store(true)
}

// Store exposes the node's persistence store (nil when persistence is
// disabled). Tests use it to force snapshots; production code should not
// need it.
func (n *Node) Store() *persist.Store { return n.store }

// ReplayedState reports what the node recovered at construction (nil when
// persistence is disabled).
func (n *Node) ReplayedState() *persist.ReplayState { return n.replayed }
