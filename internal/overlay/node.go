// Package overlay runs the TerraDir protocol as a live concurrent system:
// one goroutine per peer driving the same core.Peer state machine the
// simulator uses, over a pluggable Transport (in-process channels for local
// clusters, length-prefixed gob frames over TCP for real deployments).
//
// Each node owns its peer exclusively: every message, timer callback and
// client lookup is funneled through the node's event loop, so the core
// (which is not concurrency-safe by design) never sees two frames at once —
// the same discipline the simulator's event loop provides.
package overlay

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"terradir/internal/core"
	"terradir/internal/membership"
	"terradir/internal/namespace"
	"terradir/internal/rng"
	"terradir/internal/sim"
	"terradir/internal/telemetry"
)

// Options configures a Node.
type Options struct {
	// Config is the protocol configuration (core.DefaultConfig if zero).
	Config core.Config
	// QueueCap bounds the query inbox; arrivals beyond it are dropped, as in
	// the paper's server model. Default 64.
	QueueCap int
	// ServiceDelay is an artificial per-query processing cost, letting small
	// demos generate enough load to exercise the replication protocol.
	// Default 0 (process at full speed). A non-zero delay disables the
	// snapshot fast path: delayed service models loop occupancy, which is
	// exactly what the fast path bypasses.
	ServiceDelay time.Duration
	// DisableFastPath forces every query through the event loop even when the
	// lock-free snapshot fast path would apply (benchmark baselines, tests
	// that need strict loop serialization).
	DisableFastPath bool
	// LoadWindow is the busy-fraction measurement window Ω. Default 500 ms.
	LoadWindow time.Duration
	// DataTimeout bounds data-retrieval round trips (Get) when the caller's
	// context carries no earlier deadline. Default 5 s.
	DataTimeout time.Duration
	// Seed seeds the node's deterministic RNG stream.
	Seed uint64
	// Registry receives the node's metrics (labeled server="<id>"). Nodes of
	// one process may share a registry; nil allocates a private one
	// (reachable via Node.Registry).
	Registry *telemetry.Registry
	// TraceSample is the fraction of lookups initiated at this node that
	// carry a distributed trace. 0 defaults to 1 (trace everything — the
	// per-hop cost is one small control message); negative disables tracing.
	TraceSample float64
	// TraceCap bounds the node's retained trace records
	// (telemetry.DefaultTraceCap if 0).
	TraceCap int
	// Membership, when non-nil, runs the gossip membership subsystem: SWIM
	// failure detection, versioned ownership handoff, soft-state purging of
	// dead servers, and join/warmup admission. See MembershipOptions.
	Membership *MembershipOptions
}

func (o *Options) fill(id core.ServerID) {
	if o.Config.MapSize == 0 {
		o.Config = core.DefaultConfig()
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 64
	}
	if o.LoadWindow <= 0 {
		o.LoadWindow = 500 * time.Millisecond
	}
	if o.DataTimeout <= 0 {
		o.DataTimeout = 5 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = uint64(id) + 1
	}
	if o.Registry == nil {
		o.Registry = telemetry.NewRegistry()
	}
	if o.TraceSample == 0 {
		o.TraceSample = 1
	}
}

// LookupResult is the client-facing outcome of a lookup (§2.1: name,
// metadata, and a mapping of hosting servers).
type LookupResult struct {
	OK      bool
	Reason  core.FailReason
	Node    core.NodeID
	Name    string
	Meta    core.Meta
	Hosts   []core.ServerID
	Hops    int
	Latency time.Duration
	// TraceID identifies the lookup's distributed trace (0 = untraced).
	TraceID uint64
	// Trace is the per-hop span chain the result carried back: one span per
	// server on the route, in hop order, with queue-wait/service timings and
	// the forwarding mechanism each hop used.
	Trace []telemetry.Span
}

// Transport delivers messages between nodes. Implementations must be safe
// for concurrent use.
type Transport interface {
	// Send transmits m from one server to another. Errors are advisory:
	// the protocol is soft-state and tolerates loss.
	Send(from, to core.ServerID, m core.Message) error
	Close() error
}

// TransportStats is a point-in-time snapshot of a transport's counters.
// Counters are cumulative; QueueDepth is a gauge. Transports that do not
// implement a given counter leave it zero.
type TransportStats struct {
	Enqueued      uint64 // messages accepted into an outbound queue
	Sent          uint64 // frames written to a socket
	Flushes       uint64 // socket writes (each carries >=1 coalesced frames)
	QueueDrops    uint64 // messages evicted from full outbound queues (drop-oldest)
	WriteErrors   uint64 // frames lost to write failures or expired deadlines
	Dials         uint64 // successful connection attempts
	DialErrors    uint64 // failed connection attempts
	Redials       uint64 // successful dials after a connection previously existed
	CorruptFrames uint64 // inbound frames that failed framing or decoding
	ConnErrors    uint64 // inbound connections terminated by a non-EOF error
	FaultDrops    uint64 // messages dropped by fault injection (FaultTransport)
	QueueDepth    int    // messages currently queued outbound (gauge)
}

// StatsReporter is implemented by transports that export counters
// (TCPTransport, FaultTransport).
type StatsReporter interface {
	Stats() TransportStats
}

// transportCounters is the internal atomic backing for TransportStats.
type transportCounters struct {
	enqueued, sent, flushes, queueDrops, writeErrors atomic.Uint64
	dials, dialErrors, redials                       atomic.Uint64
	corruptFrames, connErrors                        atomic.Uint64
}

// TransportStats reports the node's transport counters, or a zero snapshot
// (and false) if the transport does not export any.
func (n *Node) TransportStats() (TransportStats, bool) {
	if sr, ok := n.transport.(StatsReporter); ok {
		return sr.Stats(), true
	}
	return TransportStats{}, false
}

type envelope struct {
	msg core.Message
	fn  func()
	// learn marks envelopes whose effects the fast path must observe before
	// serving another query: membership warmup maps and Inspect (which may
	// mutate the peer). The loop republishes the snapshot immediately after
	// executing one. Only guaranteed (blocking) enqueues may be marked — a
	// dropped learn would wedge the fast path closed.
	learn bool
}

// Node is one live TerraDir server.
type Node struct {
	id        core.ServerID
	tree      *namespace.Tree
	peer      *core.Peer
	opts      Options
	transport Transport

	epoch   time.Time
	meter   *sim.LoadMeter
	queries chan *core.QueryMsg
	control chan envelope
	stop    chan struct{}
	done    chan struct{}

	nextQID atomic.Uint64
	dropped atomic.Int64

	reg    *telemetry.Registry
	traces *telemetry.TraceStore

	membership *membership.Service
	ownership  *membership.OwnershipTable

	inboxDrops    *telemetry.Counter
	queueWaitHist *telemetry.Histogram
	serviceHist   *telemetry.Histogram
	latencyHist   *telemetry.Histogram
	hopsHist      *telemetry.Histogram

	// Lock-free snapshot fast path (see core.RouteSnapshot). sendFn/absorbFn
	// are bound once so per-query fast serves allocate no closures.
	// learnSeq counts learn-marked envelopes enqueued; learnPub counts those
	// whose effects have been published in a snapshot. While they differ the
	// fast path declines queries, which routes them through the loop behind
	// the pending learns (control drains before queries) — sequential callers
	// get exactly the loop's read-your-writes ordering.
	learnSeq    atomic.Uint64
	learnPub    atomic.Uint64
	fastEnabled bool
	// resMaps remembers the host maps of recently completed local lookups so
	// the fast path sees its own results immediately, without waiting for the
	// loop to absorb them into the next snapshot (read-your-writes for the
	// common case). Bounded by resCap; advisory only.
	resMu           sync.RWMutex
	resMaps         map[core.NodeID]core.NodeMap
	resCap          int
	sendFn          func(core.ServerID, core.Message)
	absorbFn        func(core.Piggyback, []core.PathEntry)
	fastResolved    *telemetry.Counter
	fastForwarded   *telemetry.Counter
	fastFailed      *telemetry.Counter
	fastFallbacks   *telemetry.Counter
	fastAbsorbDrops *telemetry.Counter

	mu          sync.Mutex
	pending     map[uint64]chan LookupResult
	pendingData map[uint64]chan *core.DataReply
}

type nodeEnv struct{ n *Node }

func (e nodeEnv) Now() float64 { return time.Since(e.n.epoch).Seconds() }
func (e nodeEnv) Load() float64 {
	return e.n.meter.Load(time.Since(e.n.epoch).Seconds())
}
func (e nodeEnv) Send(to core.ServerID, m core.Message) {
	if to == e.n.id {
		// Local shortcut: loop back through our own inbox without the
		// transport (same as the simulator's zero-delay self-delivery).
		e.n.Deliver(m)
		return
	}
	_ = e.n.transport.Send(e.n.id, to, m) // soft state: losses tolerated
}
func (e nodeEnv) After(d float64, fn func()) {
	n := e.n
	time.AfterFunc(time.Duration(d*float64(time.Second)), func() {
		select {
		case n.control <- envelope{fn: fn}:
		case <-n.stop:
		}
	})
}

// NewNode constructs a node owning the given namespace nodes. ownerOf must
// report the initial owner of every node (all processes in a deployment must
// agree on it; see Assign). Call Start to begin processing and SetTransport
// beforehand.
func NewNode(id core.ServerID, tree *namespace.Tree, owned []core.NodeID, ownerOf func(core.NodeID) core.ServerID, opts Options) (*Node, error) {
	opts.fill(id)
	n := &Node{
		id:          id,
		tree:        tree,
		opts:        opts,
		epoch:       time.Now(),
		meter:       sim.NewLoadMeter(opts.LoadWindow.Seconds()),
		queries:     make(chan *core.QueryMsg, opts.QueueCap),
		control:     make(chan envelope, 1024),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
		pending:     make(map[uint64]chan LookupResult),
		pendingData: make(map[uint64]chan *core.DataReply),
	}
	peer, err := core.NewPeer(id, tree, opts.Config, nodeEnv{n}, rng.New(opts.Seed))
	if err != nil {
		return nil, err
	}
	for _, nd := range owned {
		peer.AddOwned(nd, core.Meta{})
	}
	peer.FinishSetup(ownerOf)
	n.peer = peer
	n.reg = opts.Registry
	n.traces = telemetry.NewTraceStore(opts.TraceCap)
	server := []string{"server", fmt.Sprint(id)}
	peer.AttachTelemetry(n.reg, server...)
	n.inboxDrops = n.reg.Counter("terradir_inbox_query_drops_total",
		"Queries dropped because the server's bounded request queue was full.", server...)
	latencyLayout := telemetry.HistogramOpts{Min: 1e-6, Max: 1e3, BucketsPerDecade: 8}
	n.queueWaitHist = n.reg.Histogram("terradir_queue_wait_seconds",
		"Time queries spent in the request queue before service.", latencyLayout, server...)
	n.serviceHist = n.reg.Histogram("terradir_service_seconds",
		"Per-query service time (protocol handling plus configured delay).", latencyLayout, server...)
	n.latencyHist = n.reg.Histogram("terradir_lookup_latency_seconds",
		"End-to-end latency of lookups initiated at this server.", latencyLayout, server...)
	n.hopsHist = n.reg.Histogram("terradir_lookup_hops",
		"Hop count of lookups initiated at this server.",
		telemetry.HistogramOpts{Min: 1, Max: 100, BucketsPerDecade: 16}, server...)
	n.fastResolved = n.reg.Counter("terradir_fastpath_resolved_total",
		"Lookups resolved on the lock-free snapshot fast path.", server...)
	n.fastForwarded = n.reg.Counter("terradir_fastpath_forwarded_total",
		"Queries forwarded on the lock-free snapshot fast path.", server...)
	n.fastFailed = n.reg.Counter("terradir_fastpath_failed_total",
		"Lookups terminated (TTL or no route) on the snapshot fast path.", server...)
	n.fastFallbacks = n.reg.Counter("terradir_fastpath_fallbacks_total",
		"Queries the fast path declined to the event loop (no snapshot or pruning needed).", server...)
	n.fastAbsorbDrops = n.reg.Counter("terradir_fastpath_absorb_drops_total",
		"Fast-path rider/path absorptions dropped because the control queue was full.", server...)
	n.sendFn = n.fastSend
	n.absorbFn = n.fastAbsorb
	if n.resCap = opts.Config.CacheSlots; n.resCap > 0 {
		n.resMaps = make(map[core.NodeID]core.NodeMap, n.resCap)
	}
	if opts.Membership != nil {
		if opts.Membership.Servers < 1 {
			return nil, fmt.Errorf("overlay: MembershipOptions.Servers = %d", opts.Membership.Servers)
		}
		n.setupOwnership(ownerOf)
	}
	return n, nil
}

// Registry returns the node's metrics registry (shared when Options.Registry
// was set).
func (n *Node) Registry() *telemetry.Registry { return n.reg }

// Traces returns the node's trace store: the assembled span chains of
// lookups initiated here, including truncated traces of lost queries.
func (n *Node) Traces() *telemetry.TraceStore { return n.traces }

// ID returns the node's server ID.
func (n *Node) ID() core.ServerID { return n.id }

// Peer exposes the underlying protocol state machine. It must only be
// inspected while the node is stopped (the loop owns it while running); on a
// running node use Inspect instead.
func (n *Node) Peer() *core.Peer { return n.peer }

// Inspect runs fn inside the node's event loop, synchronously. It is the safe
// way to read (or poke) the single-threaded peer state while the node runs.
// Returns false if the node stopped before fn could execute.
func (n *Node) Inspect(fn func(p *core.Peer)) bool {
	done := make(chan struct{})
	n.learnSeq.Add(1) // fn may mutate the peer; republish before fast serves resume
	select {
	case n.control <- envelope{fn: func() { fn(n.peer); close(done) }, learn: true}:
	case <-n.stop:
		return false
	}
	select {
	case <-done:
		return true
	case <-n.stop:
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
}

// InboxDropped returns the number of queries discarded by the bounded inbox
// — the server's own admission control, distinct from TransportStats
// counters (QueueDrops: outbound per-peer queue evictions; FaultDrops:
// injected loss). The same count is exported by the registry as
// terradir_inbox_query_drops_total.
func (n *Node) InboxDropped() int64 { return n.dropped.Load() }

// Dropped is a deprecated alias for InboxDropped.
func (n *Node) Dropped() int64 { return n.InboxDropped() }

// SetTransport wires the node's outgoing path. Must be called before Start.
func (n *Node) SetTransport(t Transport) { n.transport = t }

// Start launches the node's event loop.
func (n *Node) Start() {
	if n.transport == nil {
		panic("overlay: Start before SetTransport")
	}
	n.registerTransportMetrics()
	n.fastEnabled = n.opts.ServiceDelay == 0 && !n.opts.DisableFastPath
	if n.fastEnabled {
		// Publish before the loop runs so early arrivals see a snapshot
		// instead of falling back.
		n.peer.PublishSnapshot()
	}
	go n.loop()
	if n.opts.Membership != nil {
		n.startMembership()
	}
}

// registerTransportMetrics exports the transport's counters through the
// registry as scrape-time functions, so the transport keeps sole ownership
// of its atomics and the registry reads them on demand — one counter
// system, no double accounting.
func (n *Node) registerTransportMetrics() {
	sr, ok := n.transport.(StatsReporter)
	if !ok {
		return
	}
	server := []string{"server", fmt.Sprint(n.id)}
	counter := func(name, help string, read func(TransportStats) uint64) {
		n.reg.CounterFunc(name, help, func() float64 { return float64(read(sr.Stats())) }, server...)
	}
	counter("terradir_transport_enqueued_total", "Messages accepted into outbound transport queues.",
		func(s TransportStats) uint64 { return s.Enqueued })
	counter("terradir_transport_sent_total", "Frames written to sockets.",
		func(s TransportStats) uint64 { return s.Sent })
	counter("terradir_transport_flushes_total", "Socket writes; sent/flushes is the write-coalescing factor.",
		func(s TransportStats) uint64 { return s.Flushes })
	counter("terradir_transport_queue_drops_total", "Messages evicted from full outbound queues (drop-oldest).",
		func(s TransportStats) uint64 { return s.QueueDrops })
	counter("terradir_transport_write_errors_total", "Frames lost to write failures or expired deadlines.",
		func(s TransportStats) uint64 { return s.WriteErrors })
	counter("terradir_transport_dials_total", "Successful connection attempts.",
		func(s TransportStats) uint64 { return s.Dials })
	counter("terradir_transport_dial_errors_total", "Failed connection attempts.",
		func(s TransportStats) uint64 { return s.DialErrors })
	counter("terradir_transport_redials_total", "Successful dials replacing a previously established connection.",
		func(s TransportStats) uint64 { return s.Redials })
	counter("terradir_transport_corrupt_frames_total", "Inbound frames that failed framing or decoding.",
		func(s TransportStats) uint64 { return s.CorruptFrames })
	counter("terradir_transport_conn_errors_total", "Inbound connections terminated by a non-EOF error.",
		func(s TransportStats) uint64 { return s.ConnErrors })
	counter("terradir_transport_fault_drops_total", "Messages dropped by fault injection.",
		func(s TransportStats) uint64 { return s.FaultDrops })
	n.reg.GaugeFunc("terradir_transport_queue_depth", "Messages currently queued outbound.",
		func() float64 { return float64(sr.Stats().QueueDepth) }, server...)
}

// Stop terminates the membership service (if any) and the event loop,
// waiting for both to exit.
func (n *Node) Stop() {
	if n.membership != nil {
		n.membership.Stop()
	}
	select {
	case <-n.stop:
	default:
		close(n.stop)
	}
	<-n.done
}

// snapshotInterval throttles routing-snapshot publication while the loop is
// busy; an idle loop publishes immediately so fast-path readers never lag a
// quiet node.
const snapshotInterval = 500 * time.Microsecond

func (n *Node) loop() {
	defer close(n.done)
	maintain := time.NewTicker(time.Duration(n.opts.Config.MaintainInterval * float64(time.Second)))
	defer maintain.Stop()
	dirty := false
	var learnExec uint64
	var lastPublish time.Time
	publish := func(force bool) {
		if !n.fastEnabled || !dirty {
			return
		}
		now := time.Now()
		if !force && now.Sub(lastPublish) < snapshotInterval {
			return
		}
		n.peer.PublishSnapshot()
		lastPublish = now
		dirty = false
	}
	handle := func(env envelope) {
		n.handleControl(env)
		dirty = true
		if env.learn {
			// Publish before advancing learnPub: a reader that observes
			// learnPub == learnSeq must find the learning in the snapshot.
			learnExec++
			publish(true)
			n.learnPub.Store(learnExec)
			return
		}
		publish(false)
	}
	for {
		// Control traffic and timers take priority over queued queries
		// (they bypass the service queue, as in the simulator).
		select {
		case <-n.stop:
			return
		case env := <-n.control:
			handle(env)
			continue
		case <-maintain.C:
			n.peer.Maintain()
			dirty = true
			publish(false)
			continue
		default:
		}
		// About to block: flush any pending snapshot so concurrent readers
		// aren't left on stale state while the loop sits idle.
		publish(len(n.control) == 0 && len(n.queries) == 0)
		select {
		case <-n.stop:
			return
		case env := <-n.control:
			handle(env)
		case <-maintain.C:
			n.peer.Maintain()
			dirty = true
		case q := <-n.queries:
			n.serveQuery(q)
			dirty = true
			publish(false)
		}
	}
}

func (n *Node) handleControl(env envelope) {
	if env.fn != nil {
		env.fn()
		return
	}
	switch m := env.msg.(type) {
	case *core.ResultMsg:
		n.peer.HandleResult(m)
		n.completeLookup(m)
		return
	case *core.TraceSpanMsg:
		// A hop on one of our lookups' routes reported its span; fold it into
		// the trace store (this is what survives a lost query), then let the
		// peer absorb the piggybacked rider.
		n.traces.AddSpan(m.TraceID, m.Span)
		n.peer.HandleControl(m)
		return
	case *core.DataReply:
		n.peer.HandleControl(m) // absorb the piggybacked rider
		n.mu.Lock()
		ch, ok := n.pendingData[m.ReqID]
		if ok {
			delete(n.pendingData, m.ReqID)
		}
		n.mu.Unlock()
		if ok {
			ch <- m
		}
		return
	}
	n.peer.HandleControl(env.msg)
}

// tryFastServe attempts to serve q on the peer's published routing snapshot,
// entirely on the calling goroutine — no event-loop round trip, no locks.
// It reports whether the query was fully handled; false means the caller must
// queue it for the loop (no snapshot yet, hooks active, or the route needs a
// mutation only the loop may perform).
func (n *Node) tryFastServe(q *core.QueryMsg) bool {
	if n.learnPub.Load() != n.learnSeq.Load() {
		// Learnings are still in flight to the snapshot; serve through the
		// loop, which drains them first (read-your-writes).
		n.fastFallbacks.Inc()
		return false
	}
	s := n.peer.RoutingSnapshot()
	if s == nil {
		n.fastFallbacks.Inc()
		return false
	}
	now := time.Since(n.epoch).Seconds()
	q.ServedAt = now
	switch s.HandleQueryFast(q, now, n.resultHint(q.Dest), n.sendFn, n.absorbFn) {
	case core.FastResolved:
		n.fastResolved.Inc()
	case core.FastForwarded:
		n.fastForwarded.Inc()
	case core.FastFailed:
		n.fastFailed.Inc()
	default:
		n.fastFallbacks.Inc()
		return false
	}
	if q.Enqueued > 0 && now >= q.Enqueued {
		n.queueWaitHist.Observe(now - q.Enqueued)
	}
	return true
}

func (n *Node) fastSend(to core.ServerID, m core.Message) {
	if to == n.id {
		n.Deliver(m)
		return
	}
	_ = n.transport.Send(n.id, to, m) // soft state: losses tolerated
}

// fastAbsorb hands a fast-served query's rider and path to the event loop for
// absorption into the peer's soft state. Non-blocking: under control-queue
// pressure the rider is dropped (it is advisory) rather than stalling the
// lock-free path.
func (n *Node) fastAbsorb(pb core.Piggyback, path []core.PathEntry) {
	select {
	case n.control <- envelope{fn: func() { n.peer.FastAbsorb(pb, path) }}:
	default:
		n.fastAbsorbDrops.Inc()
	}
}

// rememberResult records a completed lookup's host map in the node's result
// cache. Shared storage is safe: host-map slices are read-only once received.
func (n *Node) rememberResult(dest core.NodeID, m core.NodeMap) {
	n.resMu.Lock()
	if _, ok := n.resMaps[dest]; !ok && len(n.resMaps) >= n.resCap {
		for k := range n.resMaps { // random slot, soft state
			delete(n.resMaps, k)
			break
		}
	}
	n.resMaps[dest] = m
	n.resMu.Unlock()
}

// resultHint returns the remembered host map for dest (zero map if none).
func (n *Node) resultHint(dest core.NodeID) core.NodeMap {
	if n.resMaps == nil {
		return core.NodeMap{}
	}
	n.resMu.RLock()
	m := n.resMaps[dest]
	n.resMu.RUnlock()
	return m
}

// forgetResults drops the result cache (ownership changed, e.g. a server was
// purged; the remembered maps may point at dead hosts).
func (n *Node) forgetResults() {
	if n.resMaps == nil {
		return
	}
	n.resMu.Lock()
	clear(n.resMaps)
	n.resMu.Unlock()
}

func (n *Node) serveQuery(q *core.QueryMsg) {
	start := time.Since(n.epoch).Seconds()
	q.ServedAt = start // spans measure service from here, including the delay
	if q.Enqueued > 0 && start >= q.Enqueued {
		n.queueWaitHist.Observe(start - q.Enqueued)
	}
	if n.opts.ServiceDelay > 0 {
		time.Sleep(n.opts.ServiceDelay)
	}
	n.peer.HandleQuery(q)
	end := time.Since(n.epoch).Seconds()
	n.serviceHist.Observe(end - start)
	n.meter.AddBusy(start, end)
}

// Deliver injects an incoming message (called by transports; safe from any
// goroutine). Queries beyond the inbox bound are dropped.
func (n *Node) Deliver(m core.Message) {
	switch msg := m.(type) {
	case *core.QueryMsg:
		msg.Enqueued = time.Since(n.epoch).Seconds()
		if n.fastEnabled && n.tryFastServe(msg) {
			return
		}
		select {
		case n.queries <- msg:
		default:
			n.dropped.Add(1)
			n.inboxDrops.Inc()
		}
	case *core.ResultMsg:
		if n.fastEnabled {
			// Queue the learning first (control is FIFO) so an Inspect issued
			// after Lookup returns observes the absorbed result, then wake the
			// waiting caller without a loop round trip. HandleResult only
			// reads the message, so the concurrent completeLookup is safe.
			// The result cache (not the snapshot) gives the caller's next
			// lookup immediate visibility of this result.
			select {
			case n.control <- envelope{fn: func() { n.peer.HandleResult(msg) }}:
			case <-n.stop:
				return
			}
			n.completeLookup(msg)
			return
		}
		select {
		case n.control <- envelope{msg: m}:
		case <-n.stop:
		}
	case *core.TraceSpanMsg:
		if n.fastEnabled {
			// Fold the span in immediately (TraceStore is concurrency-safe);
			// the piggybacked rider is soft state, absorbed on the loop when
			// there's room.
			n.traces.AddSpan(msg.TraceID, msg.Span)
			select {
			case n.control <- envelope{fn: func() { n.peer.HandleControl(msg) }}:
			default:
				n.fastAbsorbDrops.Inc()
			}
			return
		}
		select {
		case n.control <- envelope{msg: m}:
		case <-n.stop:
		}
	case *core.MembershipMsg:
		if msg.Kind == core.MembershipWarmup {
			// Warmup streams are routing state, not liveness: absorb them on
			// the event loop, where the peer may be touched.
			n.learnSeq.Add(1)
			select {
			case n.control <- envelope{fn: func() { n.peer.LearnMaps(msg.Warmup) }, learn: true}:
			case <-n.stop:
			}
			return
		}
		if n.membership != nil {
			n.membership.Deliver(msg)
		}
	default:
		select {
		case n.control <- envelope{msg: m}:
		case <-n.stop:
		}
	}
}

func (n *Node) completeLookup(r *core.ResultMsg) {
	n.mu.Lock()
	ch, ok := n.pending[r.QueryID]
	if ok {
		delete(n.pending, r.QueryID)
	}
	n.mu.Unlock()
	if !ok {
		return
	}
	res := LookupResult{
		OK:      r.OK,
		Reason:  r.Reason,
		Node:    r.Dest,
		Name:    n.tree.Name(r.Dest),
		Meta:    r.Meta,
		Hops:    r.Hops,
		Latency: time.Duration((time.Since(n.epoch).Seconds() - r.Started) * float64(time.Second)),
		TraceID: r.TraceID,
		Trace:   append([]telemetry.Span(nil), r.Spans...),
	}
	res.Hosts = append(res.Hosts, r.Map.Servers...)
	if n.fastEnabled && r.OK && len(r.Map.Servers) > 0 {
		// Insert before waking the caller so their next lookup sees it.
		n.rememberResult(r.Dest, r.Map)
	}
	n.latencyHist.Observe(res.Latency.Seconds())
	n.hopsHist.Observe(float64(res.Hops))
	n.traces.Complete(r.TraceID, r.Spans, r.OK, r.Hops)
	ch <- res
}

// Lookup resolves a node through the overlay, initiating the query at this
// server, and blocks until the result arrives or ctx expires.
func (n *Node) Lookup(ctx context.Context, dest core.NodeID) (LookupResult, error) {
	if dest < 0 || int(dest) >= n.tree.Len() {
		return LookupResult{}, fmt.Errorf("overlay: no such node %d", dest)
	}
	if err := ctx.Err(); err != nil {
		// The fast path can resolve synchronously, which would make the
		// result and a pre-cancelled context race in the select below.
		return LookupResult{}, err
	}
	qid := n.nextQID.Add(1)
	ch := make(chan LookupResult, 1)
	n.mu.Lock()
	n.pending[qid] = ch
	n.mu.Unlock()
	q := &core.QueryMsg{
		QueryID:  qid,
		Dest:     dest,
		Source:   n.id,
		OnBehalf: namespace.Invalid,
		Started:  time.Since(n.epoch).Seconds(),
	}
	q.Enqueued = q.Started
	if id := n.traceID(qid); id != 0 {
		q.TraceID = id
		// Budget: the full route plus the resolving hop, with one spare for
		// the rare route that ends exactly at MaxHops.
		q.SpanBudget = int32(n.opts.Config.MaxHops) + 2
	}
	if !n.fastEnabled || !n.tryFastServe(q) {
		select {
		case n.queries <- q:
		default:
			n.mu.Lock()
			delete(n.pending, qid)
			n.mu.Unlock()
			n.dropped.Add(1)
			n.inboxDrops.Inc()
			return LookupResult{}, fmt.Errorf("overlay: server %d queue full", n.id)
		}
	}
	select {
	case res := <-ch:
		return res, nil
	case <-ctx.Done():
		n.mu.Lock()
		delete(n.pending, qid)
		n.mu.Unlock()
		return LookupResult{}, ctx.Err()
	case <-n.stop:
		return LookupResult{}, fmt.Errorf("overlay: node stopped")
	}
}

// traceID decides whether lookup qid is traced and derives its trace ID
// (0 = untraced). Sampling is deterministic in (seed, qid), so identical
// runs trace identical lookups; the ID mixes in the server so concurrent
// initiators never collide.
func (n *Node) traceID(qid uint64) uint64 {
	s := n.opts.TraceSample
	if s <= 0 {
		return 0
	}
	h := splitmix64(n.opts.Seed ^ (qid * 0x9e3779b97f4a7c15))
	if s < 1 && float64(h>>11)/(1<<53) >= s {
		return 0
	}
	id := splitmix64(h ^ (uint64(uint32(n.id)) << 32))
	if id == 0 {
		id = 1
	}
	return id
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// LookupName resolves a fully qualified name through the overlay.
func (n *Node) LookupName(ctx context.Context, name string) (LookupResult, error) {
	id := n.tree.Lookup(name)
	if id == namespace.Invalid {
		return LookupResult{}, fmt.Errorf("overlay: no such name %q", name)
	}
	return n.Lookup(ctx, id)
}

// Assign deterministically maps every namespace node to one of n servers
// (uniform, seeded): all processes of a deployment compute the same
// assignment from the same (tree, servers, seed) triple.
func Assign(tree *namespace.Tree, servers int, seed uint64) []core.ServerID {
	src := rng.New(seed ^ 0x7e44ad15)
	owner := make([]core.ServerID, tree.Len())
	for i := range owner {
		owner[i] = core.ServerID(src.Intn(servers))
	}
	return owner
}
