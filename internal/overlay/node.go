// Package overlay runs the TerraDir protocol as a live concurrent system:
// one goroutine per peer driving the same core.Peer state machine the
// simulator uses, over a pluggable Transport (in-process channels for local
// clusters, length-prefixed gob frames over TCP for real deployments).
//
// Each node owns its peer exclusively: every message, timer callback and
// client lookup is funneled through the node's event loop, so the core
// (which is not concurrency-safe by design) never sees two frames at once —
// the same discipline the simulator's event loop provides.
package overlay

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"terradir/internal/core"
	"terradir/internal/namespace"
	"terradir/internal/rng"
	"terradir/internal/sim"
)

// Options configures a Node.
type Options struct {
	// Config is the protocol configuration (core.DefaultConfig if zero).
	Config core.Config
	// QueueCap bounds the query inbox; arrivals beyond it are dropped, as in
	// the paper's server model. Default 64.
	QueueCap int
	// ServiceDelay is an artificial per-query processing cost, letting small
	// demos generate enough load to exercise the replication protocol.
	// Default 0 (process at full speed).
	ServiceDelay time.Duration
	// LoadWindow is the busy-fraction measurement window Ω. Default 500 ms.
	LoadWindow time.Duration
	// DataTimeout bounds data-retrieval round trips (Get) when the caller's
	// context carries no earlier deadline. Default 5 s.
	DataTimeout time.Duration
	// Seed seeds the node's deterministic RNG stream.
	Seed uint64
}

func (o *Options) fill(id core.ServerID) {
	if o.Config.MapSize == 0 {
		o.Config = core.DefaultConfig()
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 64
	}
	if o.LoadWindow <= 0 {
		o.LoadWindow = 500 * time.Millisecond
	}
	if o.DataTimeout <= 0 {
		o.DataTimeout = 5 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = uint64(id) + 1
	}
}

// LookupResult is the client-facing outcome of a lookup (§2.1: name,
// metadata, and a mapping of hosting servers).
type LookupResult struct {
	OK      bool
	Reason  core.FailReason
	Node    core.NodeID
	Name    string
	Meta    core.Meta
	Hosts   []core.ServerID
	Hops    int
	Latency time.Duration
}

// Transport delivers messages between nodes. Implementations must be safe
// for concurrent use.
type Transport interface {
	// Send transmits m from one server to another. Errors are advisory:
	// the protocol is soft-state and tolerates loss.
	Send(from, to core.ServerID, m core.Message) error
	Close() error
}

// TransportStats is a point-in-time snapshot of a transport's counters.
// Counters are cumulative; QueueDepth is a gauge. Transports that do not
// implement a given counter leave it zero.
type TransportStats struct {
	Enqueued      uint64 // messages accepted into an outbound queue
	Sent          uint64 // frames written to a socket
	QueueDrops    uint64 // messages evicted from full outbound queues (drop-oldest)
	WriteErrors   uint64 // frames lost to write failures or expired deadlines
	Dials         uint64 // successful connection attempts
	DialErrors    uint64 // failed connection attempts
	Redials       uint64 // successful dials after a connection previously existed
	CorruptFrames uint64 // inbound frames that failed framing or decoding
	ConnErrors    uint64 // inbound connections terminated by a non-EOF error
	FaultDrops    uint64 // messages dropped by fault injection (FaultTransport)
	QueueDepth    int    // messages currently queued outbound (gauge)
}

// StatsReporter is implemented by transports that export counters
// (TCPTransport, FaultTransport).
type StatsReporter interface {
	Stats() TransportStats
}

// transportCounters is the internal atomic backing for TransportStats.
type transportCounters struct {
	enqueued, sent, queueDrops, writeErrors atomic.Uint64
	dials, dialErrors, redials              atomic.Uint64
	corruptFrames, connErrors               atomic.Uint64
}

// TransportStats reports the node's transport counters, or a zero snapshot
// (and false) if the transport does not export any.
func (n *Node) TransportStats() (TransportStats, bool) {
	if sr, ok := n.transport.(StatsReporter); ok {
		return sr.Stats(), true
	}
	return TransportStats{}, false
}

type envelope struct {
	msg core.Message
	fn  func()
}

// Node is one live TerraDir server.
type Node struct {
	id        core.ServerID
	tree      *namespace.Tree
	peer      *core.Peer
	opts      Options
	transport Transport

	epoch   time.Time
	meter   *sim.LoadMeter
	queries chan *core.QueryMsg
	control chan envelope
	stop    chan struct{}
	done    chan struct{}

	nextQID atomic.Uint64
	dropped atomic.Int64

	mu          sync.Mutex
	pending     map[uint64]chan LookupResult
	pendingData map[uint64]chan *core.DataReply
}

type nodeEnv struct{ n *Node }

func (e nodeEnv) Now() float64 { return time.Since(e.n.epoch).Seconds() }
func (e nodeEnv) Load() float64 {
	return e.n.meter.Load(time.Since(e.n.epoch).Seconds())
}
func (e nodeEnv) Send(to core.ServerID, m core.Message) {
	if to == e.n.id {
		// Local shortcut: loop back through our own inbox without the
		// transport (same as the simulator's zero-delay self-delivery).
		e.n.Deliver(m)
		return
	}
	_ = e.n.transport.Send(e.n.id, to, m) // soft state: losses tolerated
}
func (e nodeEnv) After(d float64, fn func()) {
	n := e.n
	time.AfterFunc(time.Duration(d*float64(time.Second)), func() {
		select {
		case n.control <- envelope{fn: fn}:
		case <-n.stop:
		}
	})
}

// NewNode constructs a node owning the given namespace nodes. ownerOf must
// report the initial owner of every node (all processes in a deployment must
// agree on it; see Assign). Call Start to begin processing and SetTransport
// beforehand.
func NewNode(id core.ServerID, tree *namespace.Tree, owned []core.NodeID, ownerOf func(core.NodeID) core.ServerID, opts Options) (*Node, error) {
	opts.fill(id)
	n := &Node{
		id:          id,
		tree:        tree,
		opts:        opts,
		epoch:       time.Now(),
		meter:       sim.NewLoadMeter(opts.LoadWindow.Seconds()),
		queries:     make(chan *core.QueryMsg, opts.QueueCap),
		control:     make(chan envelope, 1024),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
		pending:     make(map[uint64]chan LookupResult),
		pendingData: make(map[uint64]chan *core.DataReply),
	}
	peer, err := core.NewPeer(id, tree, opts.Config, nodeEnv{n}, rng.New(opts.Seed))
	if err != nil {
		return nil, err
	}
	for _, nd := range owned {
		peer.AddOwned(nd, core.Meta{})
	}
	peer.FinishSetup(ownerOf)
	n.peer = peer
	return n, nil
}

// ID returns the node's server ID.
func (n *Node) ID() core.ServerID { return n.id }

// Peer exposes the underlying protocol state machine. It must only be
// inspected while the node is stopped (the loop owns it while running).
func (n *Node) Peer() *core.Peer { return n.peer }

// Dropped returns the number of queries discarded by the bounded inbox.
func (n *Node) Dropped() int64 { return n.dropped.Load() }

// SetTransport wires the node's outgoing path. Must be called before Start.
func (n *Node) SetTransport(t Transport) { n.transport = t }

// Start launches the node's event loop.
func (n *Node) Start() {
	if n.transport == nil {
		panic("overlay: Start before SetTransport")
	}
	go n.loop()
}

// Stop terminates the event loop and waits for it to exit.
func (n *Node) Stop() {
	select {
	case <-n.stop:
	default:
		close(n.stop)
	}
	<-n.done
}

func (n *Node) loop() {
	defer close(n.done)
	maintain := time.NewTicker(time.Duration(n.opts.Config.MaintainInterval * float64(time.Second)))
	defer maintain.Stop()
	for {
		// Control traffic and timers take priority over queued queries
		// (they bypass the service queue, as in the simulator).
		select {
		case <-n.stop:
			return
		case env := <-n.control:
			n.handleControl(env)
			continue
		case <-maintain.C:
			n.peer.Maintain()
			continue
		default:
		}
		select {
		case <-n.stop:
			return
		case env := <-n.control:
			n.handleControl(env)
		case <-maintain.C:
			n.peer.Maintain()
		case q := <-n.queries:
			n.serveQuery(q)
		}
	}
}

func (n *Node) handleControl(env envelope) {
	if env.fn != nil {
		env.fn()
		return
	}
	switch m := env.msg.(type) {
	case *core.ResultMsg:
		n.peer.HandleResult(m)
		n.completeLookup(m)
		return
	case *core.DataReply:
		n.peer.HandleControl(m) // absorb the piggybacked rider
		n.mu.Lock()
		ch, ok := n.pendingData[m.ReqID]
		if ok {
			delete(n.pendingData, m.ReqID)
		}
		n.mu.Unlock()
		if ok {
			ch <- m
		}
		return
	}
	n.peer.HandleControl(env.msg)
}

func (n *Node) serveQuery(q *core.QueryMsg) {
	start := time.Since(n.epoch).Seconds()
	if n.opts.ServiceDelay > 0 {
		time.Sleep(n.opts.ServiceDelay)
	}
	n.peer.HandleQuery(q)
	n.meter.AddBusy(start, time.Since(n.epoch).Seconds())
}

// Deliver injects an incoming message (called by transports; safe from any
// goroutine). Queries beyond the inbox bound are dropped.
func (n *Node) Deliver(m core.Message) {
	switch msg := m.(type) {
	case *core.QueryMsg:
		select {
		case n.queries <- msg:
		default:
			n.dropped.Add(1)
		}
	default:
		select {
		case n.control <- envelope{msg: m}:
		case <-n.stop:
		}
	}
}

func (n *Node) completeLookup(r *core.ResultMsg) {
	n.mu.Lock()
	ch, ok := n.pending[r.QueryID]
	if ok {
		delete(n.pending, r.QueryID)
	}
	n.mu.Unlock()
	if !ok {
		return
	}
	res := LookupResult{
		OK:      r.OK,
		Reason:  r.Reason,
		Node:    r.Dest,
		Name:    n.tree.Name(r.Dest),
		Meta:    r.Meta,
		Hops:    r.Hops,
		Latency: time.Duration((time.Since(n.epoch).Seconds() - r.Started) * float64(time.Second)),
	}
	res.Hosts = append(res.Hosts, r.Map.Servers...)
	ch <- res
}

// Lookup resolves a node through the overlay, initiating the query at this
// server, and blocks until the result arrives or ctx expires.
func (n *Node) Lookup(ctx context.Context, dest core.NodeID) (LookupResult, error) {
	if dest < 0 || int(dest) >= n.tree.Len() {
		return LookupResult{}, fmt.Errorf("overlay: no such node %d", dest)
	}
	qid := n.nextQID.Add(1)
	ch := make(chan LookupResult, 1)
	n.mu.Lock()
	n.pending[qid] = ch
	n.mu.Unlock()
	q := &core.QueryMsg{
		QueryID:  qid,
		Dest:     dest,
		Source:   n.id,
		OnBehalf: namespace.Invalid,
		Started:  time.Since(n.epoch).Seconds(),
	}
	select {
	case n.queries <- q:
	default:
		n.mu.Lock()
		delete(n.pending, qid)
		n.mu.Unlock()
		n.dropped.Add(1)
		return LookupResult{}, fmt.Errorf("overlay: server %d queue full", n.id)
	}
	select {
	case res := <-ch:
		return res, nil
	case <-ctx.Done():
		n.mu.Lock()
		delete(n.pending, qid)
		n.mu.Unlock()
		return LookupResult{}, ctx.Err()
	case <-n.stop:
		return LookupResult{}, fmt.Errorf("overlay: node stopped")
	}
}

// LookupName resolves a fully qualified name through the overlay.
func (n *Node) LookupName(ctx context.Context, name string) (LookupResult, error) {
	id := n.tree.Lookup(name)
	if id == namespace.Invalid {
		return LookupResult{}, fmt.Errorf("overlay: no such name %q", name)
	}
	return n.Lookup(ctx, id)
}

// Assign deterministically maps every namespace node to one of n servers
// (uniform, seeded): all processes of a deployment compute the same
// assignment from the same (tree, servers, seed) triple.
func Assign(tree *namespace.Tree, servers int, seed uint64) []core.ServerID {
	src := rng.New(seed ^ 0x7e44ad15)
	owner := make([]core.ServerID, tree.Len())
	for i := range owner {
		owner[i] = core.ServerID(src.Intn(servers))
	}
	return owner
}
