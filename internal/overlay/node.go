// Package overlay runs the TerraDir protocol as a live concurrent system:
// one goroutine per peer driving the same core.Peer state machine the
// simulator uses, over a pluggable Transport (in-process channels for local
// clusters, length-prefixed gob frames over TCP for real deployments).
//
// Each node owns its peer exclusively: every message, timer callback and
// client lookup is funneled through the node's event loop, so the core
// (which is not concurrency-safe by design) never sees two frames at once —
// the same discipline the simulator's event loop provides.
package overlay

import (
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"terradir/internal/core"
	"terradir/internal/membership"
	"terradir/internal/namespace"
	"terradir/internal/persist"
	"terradir/internal/rng"
	"terradir/internal/sim"
	"terradir/internal/telemetry"
)

// Options configures a Node.
type Options struct {
	// Config is the protocol configuration (core.DefaultConfig if zero).
	Config core.Config
	// QueueCap bounds the query inbox; arrivals beyond it are dropped, as in
	// the paper's server model. Default 64.
	QueueCap int
	// ServiceDelay is an artificial per-query processing cost, letting small
	// demos generate enough load to exercise the replication protocol.
	// Default 0 (process at full speed). A non-zero delay disables the
	// snapshot fast path: delayed service models loop occupancy, which is
	// exactly what the fast path bypasses.
	ServiceDelay time.Duration
	// DisableFastPath forces every query through the event loop even when the
	// lock-free snapshot fast path would apply (benchmark baselines, tests
	// that need strict loop serialization).
	DisableFastPath bool
	// LoadWindow is the busy-fraction measurement window Ω. Default 500 ms.
	LoadWindow time.Duration
	// DataTimeout bounds data-retrieval round trips (Get) when the caller's
	// context carries no earlier deadline. Default 5 s.
	DataTimeout time.Duration
	// Seed seeds the node's deterministic RNG stream.
	Seed uint64
	// Registry receives the node's metrics (labeled server="<id>"). Nodes of
	// one process may share a registry; nil allocates a private one
	// (reachable via Node.Registry).
	Registry *telemetry.Registry
	// TraceSample is the fraction of lookups initiated at this node that
	// carry a distributed trace. 0 defaults to 1 (trace everything — the
	// per-hop cost is one small control message); negative disables tracing.
	TraceSample float64
	// TraceCap bounds the node's retained trace records
	// (telemetry.DefaultTraceCap if 0).
	TraceCap int
	// Membership, when non-nil, runs the gossip membership subsystem: SWIM
	// failure detection, versioned ownership handoff, soft-state purging of
	// dead servers, and join/warmup admission. See MembershipOptions.
	Membership *MembershipOptions
	// Shards partitions the node's hosted nodes and soft state across this
	// many independently scheduled single-writer event loops, keyed by
	// namespace subtree (DESIGN.md §11) — the multi-core scale-up knob.
	// Default 1 (the classic single loop). Values above 1 require
	// Config.CachingEnabled (shard bootstrap routes live in the cache).
	Shards int
	// Persist, when non-nil, enables the durability tier: hosted-state
	// mutations journal to a WAL under Persist.Dir, periodic snapshots bound
	// replay, and a restart recovers locally then delta-reconciles with its
	// ring successor instead of taking a full warmup stream. See
	// PersistOptions and DESIGN.md §13.
	Persist *PersistOptions
	// IngestBatch caps how many envelopes a shard event loop drains per
	// wakeup, amortizing snapshot-publish checks, digest/advert bookkeeping
	// and the WAL group commit across the batch (DESIGN.md §15). Default 64;
	// 1 restores strict one-envelope-per-wakeup servicing.
	IngestBatch int
}

func (o *Options) fill(id core.ServerID) {
	if o.Config.MapSize == 0 {
		o.Config = core.DefaultConfig()
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 64
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Shards > 64 {
		o.Shards = 64
	}
	if o.LoadWindow <= 0 {
		o.LoadWindow = 500 * time.Millisecond
	}
	if o.DataTimeout <= 0 {
		o.DataTimeout = 5 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = uint64(id) + 1
	}
	if o.Registry == nil {
		o.Registry = telemetry.NewRegistry()
	}
	if o.TraceSample == 0 {
		o.TraceSample = 1
	}
	if o.IngestBatch <= 0 {
		o.IngestBatch = 64
	}
	if o.IngestBatch > 1024 {
		o.IngestBatch = 1024
	}
}

// LookupResult is the client-facing outcome of a lookup (§2.1: name,
// metadata, and a mapping of hosting servers).
type LookupResult struct {
	OK      bool
	Reason  core.FailReason
	Node    core.NodeID
	Name    string
	Meta    core.Meta
	Hosts   []core.ServerID
	Hops    int
	Latency time.Duration
	// TraceID identifies the lookup's distributed trace (0 = untraced).
	TraceID uint64
	// Trace is the per-hop span chain the result carried back: one span per
	// server on the route, in hop order, with queue-wait/service timings and
	// the forwarding mechanism each hop used.
	Trace []telemetry.Span
}

// Transport delivers messages between nodes. Implementations must be safe
// for concurrent use.
type Transport interface {
	// Send transmits m from one server to another. Errors are advisory:
	// the protocol is soft-state and tolerates loss.
	Send(from, to core.ServerID, m core.Message) error
	Close() error
}

// TransportStats is a point-in-time snapshot of a transport's counters.
// Counters are cumulative; QueueDepth is a gauge. Transports that do not
// implement a given counter leave it zero.
//
// The queued outbound path conserves messages exactly:
//
//	Enqueued == Sent + QueueDrops + WriteErrors + QueueDepth
//
// holds at any quiescent moment (no Send in flight, writers idle), including
// after Close — every accepted message is eventually written, dropped, or
// still queued, and each is counted exactly once. SendTo (the bootstrap
// direct-dial path) bypasses the queue and participates only in Sent,
// WriteErrors, and the dial counters.
type TransportStats struct {
	Enqueued      uint64 // messages accepted into an outbound queue
	Sent          uint64 // frames written to a socket
	Flushes       uint64 // socket writes (each carries >=1 coalesced frames)
	QueueDrops    uint64 // messages dropped without a write attempt: queue-full evictions (drop-oldest), and queued frames abandoned when a sender retires (SetAddr) or the transport closes
	WriteErrors   uint64 // frames lost to write failures or expired deadlines
	Dials         uint64 // successful connection attempts
	DialErrors    uint64 // failed connection attempts
	Redials       uint64 // successful dials after a connection previously existed
	CorruptFrames uint64 // inbound frames that failed framing or decoding
	UnknownFrames uint64 // well-framed inbound frames of an unrecognized kind or wire version (rolling upgrades) — skipped, not corruption
	ConnErrors    uint64 // inbound connections terminated by a non-EOF error
	FaultDrops    uint64 // messages dropped by fault injection (FaultTransport)
	FramesRead    uint64 // frames read off inbound connections (batched reader)
	ReadBatches   uint64 // read-loop wakeups that yielded >=1 frame; FramesRead/ReadBatches is the receive-coalescing factor
	QueueDepth    int    // messages currently queued outbound (gauge)
}

// StatsReporter is implemented by transports that export counters
// (TCPTransport, FaultTransport).
type StatsReporter interface {
	Stats() TransportStats
}

// transportCounters is the internal atomic backing for TransportStats.
type transportCounters struct {
	enqueued, sent, flushes, queueDrops, writeErrors atomic.Uint64
	dials, dialErrors, redials                       atomic.Uint64
	corruptFrames, unknownFrames, connErrors         atomic.Uint64
	framesRead, readBatches                          atomic.Uint64
}

// TransportStats reports the node's transport counters, or a zero snapshot
// (and false) if the transport does not export any.
func (n *Node) TransportStats() (TransportStats, bool) {
	if sr, ok := n.transport.(StatsReporter); ok {
		return sr.Stats(), true
	}
	return TransportStats{}, false
}

type envelope struct {
	msg core.Message
	fn  func()
	// learn marks envelopes whose effects the fast path must observe before
	// serving another query: membership warmup maps and Inspect (which may
	// mutate the peer). The loop republishes the snapshot immediately after
	// executing one. Only guaranteed (blocking) enqueues may be marked — a
	// dropped learn would wedge the fast path closed.
	learn bool
}

// Node is one live TerraDir server. Its hosted nodes and soft state live in
// one or more shards (Options.Shards), each a single-writer event loop over
// its own core.Peer; see shards.go and DESIGN.md §11.
type Node struct {
	id        core.ServerID
	tree      *namespace.Tree
	opts      Options
	transport Transport

	epoch    time.Time
	shards   []*shard
	shardTbl []int32 // node → shard index (all zero at one shard)
	stop     chan struct{}

	// barrier serializes runOnShards callers (see shards.go).
	barrier sync.Mutex

	// Digest coordinator (sharded nodes with digests enabled; see shards.go).
	digestGen atomic.Uint64
	coordKick chan struct{}
	coordDone chan struct{}

	nextQID atomic.Uint64
	dropped atomic.Int64

	reg    *telemetry.Registry
	traces *telemetry.TraceStore

	membership *membership.Service
	ownership  *membership.OwnershipTable

	// Persistence tier (nil unless Options.Persist is set); see persist.go.
	store      *persist.Store
	replayed   *persist.ReplayState
	snapDone   chan struct{}
	recDone    chan struct{}
	reconciled atomic.Bool

	warmupStreams    *telemetry.Counter
	reconcileSent    *telemetry.Counter
	reconcileSkipped *telemetry.Counter

	// Larger-than-RAM hosting (coldload.go; requires the persistence tier).
	ownerOf      func(core.NodeID) core.ServerID // static assignment, for cold installs
	idxHits      *telemetry.Counter
	idxMisses    *telemetry.Counter
	idxEvictions *telemetry.Counter
	idxLoadHist  *telemetry.Histogram

	inboxDrops     *telemetry.Counter
	batchDepthHist *telemetry.Histogram // envelopes drained per shard wakeup
	queueWaitHist  *telemetry.Histogram
	serviceHist    *telemetry.Histogram
	latencyHist    *telemetry.Histogram
	hopsHist       *telemetry.Histogram

	// Lock-free snapshot fast path (see core.RouteSnapshot). sendFn is bound
	// once so per-query fast serves allocate no closures. Learn gating
	// (learnSeq/learnPub) lives per shard: while a shard's counters differ,
	// its fast path declines queries, which routes them through that shard's
	// loop behind the pending learns (control drains before queries) —
	// sequential callers get exactly the loop's read-your-writes ordering.
	fastEnabled bool
	// resMaps remembers the host maps of recently completed local lookups so
	// the fast path sees its own results immediately, without waiting for the
	// loop to absorb them into the next snapshot (read-your-writes for the
	// common case). Bounded by resCap; advisory only. deadSrv marks servers
	// currently considered dead by membership: entries naming them are
	// dropped and late results naming them are filtered, so a cached result
	// can never replay a purged server to callers.
	resMu           sync.RWMutex
	resMaps         map[core.NodeID]core.NodeMap
	resCap          int
	deadSrv         map[core.ServerID]struct{}
	sendFn          func(core.ServerID, core.Message)
	fastResolved    *telemetry.Counter
	fastForwarded   *telemetry.Counter
	fastFailed      *telemetry.Counter
	fastFallbacks   *telemetry.Counter
	fastAbsorbDrops *telemetry.Counter

	mu          sync.Mutex
	pending     map[uint64]chan LookupResult
	pendingData map[uint64]chan *core.DataReply
}

// NewNode constructs a node owning the given namespace nodes. ownerOf must
// report the initial owner of every node (all processes in a deployment must
// agree on it; see Assign). Call Start to begin processing and SetTransport
// beforehand.
func NewNode(id core.ServerID, tree *namespace.Tree, owned []core.NodeID, ownerOf func(core.NodeID) core.ServerID, opts Options) (*Node, error) {
	opts.fill(id)
	if opts.Shards > 1 && !opts.Config.CachingEnabled {
		return nil, fmt.Errorf("overlay: Shards = %d requires Config.CachingEnabled (shard bootstrap routes live in the cache)", opts.Shards)
	}
	n := &Node{
		id:          id,
		tree:        tree,
		opts:        opts,
		epoch:       time.Now(),
		stop:        make(chan struct{}),
		deadSrv:     make(map[core.ServerID]struct{}),
		pending:     make(map[uint64]chan LookupResult),
		pendingData: make(map[uint64]chan *core.DataReply),
	}
	n.shardTbl = buildShardTable(tree, opts.Shards)
	ownedBy := make([][]core.NodeID, opts.Shards)
	for _, nd := range owned {
		si := int(n.shardTbl[nd])
		ownedBy[si] = append(ownedBy[si], nd)
	}
	n.reg = opts.Registry
	n.traces = telemetry.NewTraceStore(opts.TraceCap)
	server := []string{"server", fmt.Sprint(id)}
	// Queue capacity is a per-server admission bound; split it across shards.
	queueCap := (opts.QueueCap + opts.Shards - 1) / opts.Shards
	latencyLayout := telemetry.HistogramOpts{Min: 1e-6, Max: 1e3, BucketsPerDecade: 8}
	for i := 0; i < opts.Shards; i++ {
		s := &shard{
			n:       n,
			idx:     i,
			meter:   sim.NewLoadMeter(opts.LoadWindow.Seconds()),
			queries: make(chan *core.QueryMsg, queueCap),
			control: make(chan envelope, 1024),
			done:    make(chan struct{}),
		}
		peer, err := core.NewPeer(id, tree, opts.Config, shardEnv{s}, rng.New(opts.Seed+uint64(i)*0x9e3779b9))
		if err != nil {
			return nil, err
		}
		for _, nd := range ownedBy[i] {
			peer.AddOwned(nd, core.Meta{})
		}
		peer.FinishSetup(ownerOf)
		if opts.Shards > 1 {
			idx := i
			keyDepth := shardKeyDepth(tree, opts.Shards)
			// Cache creation: own partition plus the shared top of the tree
			// (every lookup's ancestor chain crosses it; see shardKeyDepth).
			peer.SetLearnFilter(func(nd core.NodeID) bool {
				return n.shardOf(nd) == idx || tree.Depth(nd) < keyDepth
			})
			// Hosted state stays strictly partitioned: one writer per node.
			peer.SetHostFilter(func(nd core.NodeID) bool { return n.shardOf(nd) == idx })
			peer.SetSessionBase(uint64(i) << sessionTagShift)
			// Routing escape for queries a partition-local view cannot make
			// progress on (see core.Peer.SetOwnerHint): consult the live
			// ownership table under membership, the static assignment
			// otherwise.
			peer.SetOwnerHint(func(nd core.NodeID) core.ServerID {
				if n.ownership != nil {
					return n.ownership.Owner(nd)
				}
				return ownerOf(nd)
			})
			if len(ownedBy[i]) == 0 {
				// A shard owning nothing starts with no routing context at
				// all; seed a route toward the namespace root so its first
				// queries make progress instead of failing NoRoute.
				if o := ownerOf(tree.Root()); o != id && o != core.NoServer {
					peer.SeedCache(tree.Root(), core.SingleServerMap(o))
				}
			}
		}
		// Shard peers share the node's server-labeled counters (the registry
		// resolves by name+labels, and counters are atomic).
		peer.AttachTelemetry(n.reg, server...)
		s.peer = peer
		s.absorbFn = s.fastAbsorb
		if opts.Shards > 1 {
			lbl := []string{"server", fmt.Sprint(id), "shard", fmt.Sprint(i)}
			s.waitHist = n.reg.Histogram("terradir_shard_queue_wait_seconds",
				"Time queries spent in one shard's request queue before service.", latencyLayout, lbl...)
			sh := s
			n.reg.GaugeFunc("terradir_shard_queue_depth",
				"Messages currently queued to one shard's event loop.",
				func() float64 { return float64(len(sh.queries) + len(sh.control)) }, lbl...)
		}
		n.shards = append(n.shards, s)
	}
	n.reg.GaugeFunc("terradir_server_load",
		"Server-wide load estimate: mean of the shards' last meter readings.",
		n.serverLoad, server...)
	n.inboxDrops = n.reg.Counter("terradir_inbox_query_drops_total",
		"Queries dropped because the server's bounded request queue was full.", server...)
	n.queueWaitHist = n.reg.Histogram("terradir_queue_wait_seconds",
		"Time queries spent in the request queue before service.", latencyLayout, server...)
	n.batchDepthHist = n.reg.Histogram("terradir_shard_batch_depth",
		"Envelopes drained per shard event-loop wakeup (Options.IngestBatch caps it).",
		telemetry.HistogramOpts{Min: 1, Max: 4096, BucketsPerDecade: 8}, server...)
	n.serviceHist = n.reg.Histogram("terradir_service_seconds",
		"Per-query service time (protocol handling plus configured delay).", latencyLayout, server...)
	n.latencyHist = n.reg.Histogram("terradir_lookup_latency_seconds",
		"End-to-end latency of lookups initiated at this server.", latencyLayout, server...)
	n.hopsHist = n.reg.Histogram("terradir_lookup_hops",
		"Hop count of lookups initiated at this server.",
		telemetry.HistogramOpts{Min: 1, Max: 100, BucketsPerDecade: 16}, server...)
	n.fastResolved = n.reg.Counter("terradir_fastpath_resolved_total",
		"Lookups resolved on the lock-free snapshot fast path.", server...)
	n.fastForwarded = n.reg.Counter("terradir_fastpath_forwarded_total",
		"Queries forwarded on the lock-free snapshot fast path.", server...)
	n.fastFailed = n.reg.Counter("terradir_fastpath_failed_total",
		"Lookups terminated (TTL or no route) on the snapshot fast path.", server...)
	n.fastFallbacks = n.reg.Counter("terradir_fastpath_fallbacks_total",
		"Queries the fast path declined to the event loop (no snapshot or pruning needed).", server...)
	n.fastAbsorbDrops = n.reg.Counter("terradir_fastpath_absorb_drops_total",
		"Fast-path rider/path absorptions dropped because the control queue was full.", server...)
	n.sendFn = n.fastSend
	if n.resCap = opts.Config.CacheSlots; n.resCap > 0 {
		n.resMaps = make(map[core.NodeID]core.NodeMap, n.resCap)
	}
	if opts.Membership != nil {
		if opts.Membership.Servers < 1 {
			return nil, fmt.Errorf("overlay: MembershipOptions.Servers = %d", opts.Membership.Servers)
		}
		n.setupOwnership(ownerOf)
		n.warmupStreams = n.reg.Counter("terradir_warmup_streams_total",
			"Full warmup streams sent to admitted members.", server...)
		n.reconcileSent = n.reg.Counter("terradir_persist_reconcile_entries_sent_total",
			"Hosted entries streamed to rejoiners during delta reconciliation.", server...)
		n.reconcileSkipped = n.reg.Counter("terradir_persist_reconcile_entries_skipped_total",
			"Hosted entries a rejoiner's digest already covered (skipped from the delta stream).", server...)
	}
	if opts.Persist != nil {
		n.ownerOf = ownerOf
		if opts.Persist.coldEnabled() {
			// Residency must be live before replay: the restart stream marks
			// beyond-cap entries cold instead of materializing them.
			n.setupResidency()
		}
		if err := n.setupPersist(ownerOf); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// Registry returns the node's metrics registry (shared when Options.Registry
// was set).
func (n *Node) Registry() *telemetry.Registry { return n.reg }

// Traces returns the node's trace store: the assembled span chains of
// lookups initiated here, including truncated traces of lost queries.
func (n *Node) Traces() *telemetry.TraceStore { return n.traces }

// ID returns the node's server ID.
func (n *Node) ID() core.ServerID { return n.id }

// Peer exposes the underlying protocol state machine — shard 0's peer; on a
// multi-shard node the other shards are reachable via ShardPeer. It must
// only be inspected while the node is stopped (the loops own the peers while
// running); on a running node use Inspect or InspectShards instead.
func (n *Node) Peer() *core.Peer { return n.shards[0].peer }

// Inspect runs fn with every shard loop parked, synchronously. It is the
// safe way to read (or poke) the single-threaded peer state while the node
// runs. fn is invoked once per shard peer — once total at the default single
// shard; on a multi-shard node reads should aggregate across invocations,
// and pokes (PurgeServer, LearnMaps) apply server-wide. Returns false if the
// node stopped before fn could run everywhere.
func (n *Node) Inspect(fn func(p *core.Peer)) bool {
	return n.runOnShards(true, func(s *shard) { fn(s.peer) })
}

// InspectShards is Inspect with the shard index supplied to fn.
func (n *Node) InspectShards(fn func(idx int, p *core.Peer)) bool {
	return n.runOnShards(true, func(s *shard) { fn(s.idx, s.peer) })
}

// InboxDropped returns the number of queries discarded by the bounded inbox
// — the server's own admission control, distinct from TransportStats
// counters (QueueDrops: outbound per-peer queue evictions; FaultDrops:
// injected loss). The same count is exported by the registry as
// terradir_inbox_query_drops_total.
func (n *Node) InboxDropped() int64 { return n.dropped.Load() }

// Dropped is a deprecated alias for InboxDropped.
func (n *Node) Dropped() int64 { return n.InboxDropped() }

// SetTransport wires the node's outgoing path. Must be called before Start.
func (n *Node) SetTransport(t Transport) { n.transport = t }

// Start launches the node's event loops (one per shard) and, on a
// multi-shard node with digests enabled, the digest coordinator.
func (n *Node) Start() {
	if n.transport == nil {
		panic("overlay: Start before SetTransport")
	}
	n.registerTransportMetrics()
	n.fastEnabled = n.opts.ServiceDelay == 0 && !n.opts.DisableFastPath
	shared := len(n.shards) > 1 && n.opts.Config.DigestsEnabled
	if shared {
		// Install the combined server-wide digest before any shard advertises
		// its own partial hosted set (see buildSharedDigest). The loops are
		// not running yet, so direct peer access is safe.
		ids := make([][]core.NodeID, len(n.shards))
		for i, s := range n.shards {
			ids[i] = s.peer.HostedIDs()
		}
		f := n.buildSharedDigest(ids)
		for _, s := range n.shards {
			s.peer.SetSharedDigest(f)
		}
	}
	if n.fastEnabled {
		// Publish before the loops run so early arrivals see snapshots
		// instead of falling back.
		for _, s := range n.shards {
			s.peer.PublishSnapshot()
		}
	}
	for _, s := range n.shards {
		go s.loop()
		if s.loadCh != nil {
			s.loaderDone = make(chan struct{})
			go s.coldLoader()
		}
	}
	if shared {
		n.coordKick = make(chan struct{}, 1)
		n.coordDone = make(chan struct{})
		go n.coordinator()
	}
	if n.opts.Membership != nil {
		n.startMembership()
	}
	if n.store != nil {
		n.snapDone = make(chan struct{})
		go n.snapshotLoop()
		if n.membership != nil && n.replayed.HasState() {
			// We restarted with durable state: pull only the delta we missed
			// instead of waiting for (suppressed) full warmup streams.
			n.recDone = make(chan struct{})
			go n.reconcileLoop()
		}
	}
}

// registerTransportMetrics exports the transport's counters through the
// registry as scrape-time functions, so the transport keeps sole ownership
// of its atomics and the registry reads them on demand — one counter
// system, no double accounting.
func (n *Node) registerTransportMetrics() {
	sr, ok := n.transport.(StatsReporter)
	if !ok {
		return
	}
	server := []string{"server", fmt.Sprint(n.id)}
	counter := func(name, help string, read func(TransportStats) uint64) {
		n.reg.CounterFunc(name, help, func() float64 { return float64(read(sr.Stats())) }, server...)
	}
	counter("terradir_transport_enqueued_total", "Messages accepted into outbound transport queues.",
		func(s TransportStats) uint64 { return s.Enqueued })
	counter("terradir_transport_sent_total", "Frames written to sockets.",
		func(s TransportStats) uint64 { return s.Sent })
	counter("terradir_transport_flushes_total", "Socket writes; sent/flushes is the write-coalescing factor.",
		func(s TransportStats) uint64 { return s.Flushes })
	counter("terradir_transport_queue_drops_total", "Messages evicted from full outbound queues (drop-oldest).",
		func(s TransportStats) uint64 { return s.QueueDrops })
	counter("terradir_transport_write_errors_total", "Frames lost to write failures or expired deadlines.",
		func(s TransportStats) uint64 { return s.WriteErrors })
	counter("terradir_transport_dials_total", "Successful connection attempts.",
		func(s TransportStats) uint64 { return s.Dials })
	counter("terradir_transport_dial_errors_total", "Failed connection attempts.",
		func(s TransportStats) uint64 { return s.DialErrors })
	counter("terradir_transport_redials_total", "Successful dials replacing a previously established connection.",
		func(s TransportStats) uint64 { return s.Redials })
	counter("terradir_transport_corrupt_frames_total", "Inbound frames that failed framing or decoding.",
		func(s TransportStats) uint64 { return s.CorruptFrames })
	counter("terradir_transport_unknown_frames_total", "Well-framed inbound frames of an unrecognized kind or version (rolling upgrades), skipped without tearing down the connection.",
		func(s TransportStats) uint64 { return s.UnknownFrames })
	counter("terradir_transport_conn_errors_total", "Inbound connections terminated by a non-EOF error.",
		func(s TransportStats) uint64 { return s.ConnErrors })
	counter("terradir_transport_fault_drops_total", "Messages dropped by fault injection.",
		func(s TransportStats) uint64 { return s.FaultDrops })
	counter("terradir_transport_frames_read_total", "Frames read off inbound connections.",
		func(s TransportStats) uint64 { return s.FramesRead })
	counter("terradir_transport_read_batches_total", "Read-loop wakeups yielding >=1 frame; frames_read/read_batches is the receive-coalescing factor.",
		func(s TransportStats) uint64 { return s.ReadBatches })
	n.reg.GaugeFunc("terradir_transport_queue_depth", "Messages currently queued outbound.",
		func() float64 { return float64(sr.Stats().QueueDepth) }, server...)
	// The frames-per-read distribution can't be derived from counter
	// snapshots; transports that batch reads accept a histogram to feed.
	if hs, ok := n.transport.(ReadHistogramSetter); ok {
		hs.SetReadHistogram(n.reg.Histogram("terradir_transport_frames_per_read",
			"Frames decoded per buffered read batch (receive coalescing under the batched sender).",
			telemetry.HistogramOpts{Min: 1, Max: 4096, BucketsPerDecade: 8}, server...))
	}
}

// ReadHistogramSetter is implemented by transports whose batched read path
// can feed a frames-per-read histogram (TCPTransport; FaultTransport
// forwards).
type ReadHistogramSetter interface {
	SetReadHistogram(*telemetry.Histogram)
}

// Stop terminates the membership service (if any), every shard loop and the
// digest coordinator, waiting for all to exit.
func (n *Node) Stop() {
	if n.membership != nil {
		n.membership.Stop()
	}
	select {
	case <-n.stop:
	default:
		close(n.stop)
	}
	for _, s := range n.shards {
		<-s.done
		if s.loaderDone != nil {
			<-s.loaderDone
		}
	}
	if n.coordDone != nil {
		<-n.coordDone
	}
	if n.snapDone != nil {
		<-n.snapDone
	}
	if n.recDone != nil {
		<-n.recDone
	}
	if n.store != nil {
		// Loops and snapshotter have exited: no appender is left. Close
		// flushes the WAL tail; recovery is replay-only by design (no
		// shutdown snapshot — a crash and a clean stop restart identically).
		if err := n.store.Close(); err != nil {
			log.Printf("overlay: server %d persist close: %v", n.id, err)
		}
	}
}

// snapshotInterval throttles routing-snapshot publication while the loop is
// busy; an idle loop publishes immediately so fast-path readers never lag a
// quiet node.
const snapshotInterval = 500 * time.Microsecond

// handleControl executes one envelope against shard s's peer.
func (n *Node) handleControl(s *shard, env envelope) {
	if env.fn != nil {
		env.fn()
		return
	}
	switch m := env.msg.(type) {
	case *core.ResultMsg:
		s.peer.HandleResult(m)
		n.completeLookup(m)
		return
	case *core.TraceSpanMsg:
		// A hop on one of our lookups' routes reported its span; fold it into
		// the trace store (this is what survives a lost query), then let the
		// peer absorb the piggybacked rider.
		n.traces.AddSpan(m.TraceID, m.Span)
		s.peer.HandleControl(m)
		return
	case *core.DataRequest:
		if s.pendingCold != nil && s.peer.IsCold(m.Node) &&
			n.parkCold(s, m.Node, coldWaiter{msg: m}) {
			// The requested node's data is on disk; answer after the load.
			return
		}
		s.peer.HandleControl(m)
		return
	case *core.DataReply:
		s.peer.HandleControl(m) // absorb the piggybacked rider
		n.mu.Lock()
		ch, ok := n.pendingData[m.ReqID]
		if ok {
			delete(n.pendingData, m.ReqID)
		}
		n.mu.Unlock()
		if ok {
			ch <- m
		}
		return
	}
	s.peer.HandleControl(env.msg)
}

// tryFastServe attempts to serve q on shard s's published routing snapshot,
// entirely on the calling goroutine — no event-loop round trip, no locks.
// It reports whether the query was fully handled; false means the caller must
// queue it for the shard's loop (no snapshot yet, hooks active, or the route
// needs a mutation only the loop may perform).
func (n *Node) tryFastServe(s *shard, q *core.QueryMsg) bool {
	if len(n.shards) > 1 && int(q.Hops) >= n.opts.Config.MaxHops/2 {
		// A wandering query needs the loop path's authoritative owner escape
		// (core.Peer.SetOwnerHint); the snapshot would keep it cycling.
		n.fastFallbacks.Inc()
		return false
	}
	if s.learnPub.Load() != s.learnSeq.Load() {
		// Learnings are still in flight to the snapshot; serve through the
		// loop, which drains them first (read-your-writes).
		n.fastFallbacks.Inc()
		return false
	}
	snap := s.peer.RoutingSnapshot()
	if snap == nil {
		n.fastFallbacks.Inc()
		return false
	}
	now := time.Since(n.epoch).Seconds()
	q.ServedAt = now
	switch snap.HandleQueryFast(q, now, n.resultHint(q.Dest), n.sendFn, s.absorbFn) {
	case core.FastResolved:
		n.fastResolved.Inc()
	case core.FastForwarded:
		n.fastForwarded.Inc()
	case core.FastFailed:
		n.fastFailed.Inc()
	default:
		n.fastFallbacks.Inc()
		return false
	}
	if q.Enqueued > 0 && now >= q.Enqueued {
		n.queueWaitHist.Observe(now - q.Enqueued)
		if s.waitHist != nil {
			s.waitHist.Observe(now - q.Enqueued)
		}
	}
	return true
}

func (n *Node) fastSend(to core.ServerID, m core.Message) {
	if to == n.id {
		n.Deliver(m)
		return
	}
	_ = n.transport.Send(n.id, to, m) // soft state: losses tolerated
}

// rememberResult records a completed lookup's host map in the node's result
// cache. Shared storage is safe: host-map slices are read-only once received.
// Entries naming a server currently marked dead are filtered on the way in —
// a result that raced a membership death must not resurrect the purged
// server (see purgeResults).
func (n *Node) rememberResult(dest core.NodeID, m core.NodeMap) {
	if n.resCap == 0 {
		return
	}
	n.resMu.Lock()
	if len(n.deadSrv) > 0 {
		for _, sv := range m.Servers {
			if _, dead := n.deadSrv[sv]; dead {
				m = m.Clone()
				for dsv := range n.deadSrv {
					m.Remove(dsv)
				}
				break
			}
		}
		if m.Len() == 0 {
			n.resMu.Unlock()
			return
		}
	}
	if _, ok := n.resMaps[dest]; !ok && len(n.resMaps) >= n.resCap {
		for k := range n.resMaps { // random slot, soft state
			delete(n.resMaps, k)
			break
		}
	}
	n.resMaps[dest] = m
	n.resMu.Unlock()
}

// resultHint returns the remembered host map for dest (zero map if none).
func (n *Node) resultHint(dest core.NodeID) core.NodeMap {
	if n.resMaps == nil {
		return core.NodeMap{}
	}
	n.resMu.RLock()
	m := n.resMaps[dest]
	n.resMu.RUnlock()
	return m
}

// purgeResults scrubs server sv from the lookup result cache and marks it
// dead so late-arriving results naming it are filtered too. Without this, a
// cached result naming a purged server could be replayed to callers — and a
// result already in flight when the death was processed could re-insert it —
// in the window before ownership republish.
func (n *Node) purgeResults(sv core.ServerID) {
	n.resMu.Lock()
	n.deadSrv[sv] = struct{}{}
	var emptied []core.NodeID
	for nd, m := range n.resMaps {
		if !m.Contains(sv) {
			continue
		}
		c := m.Clone()
		c.Remove(sv)
		if c.Len() == 0 {
			emptied = append(emptied, nd)
			continue
		}
		n.resMaps[nd] = c
	}
	for _, nd := range emptied {
		delete(n.resMaps, nd)
	}
	n.resMu.Unlock()
}

// reviveResults clears sv's dead mark once membership declares it alive
// again.
func (n *Node) reviveResults(sv core.ServerID) {
	n.resMu.Lock()
	delete(n.deadSrv, sv)
	n.resMu.Unlock()
}

// serveQuery services one query on shard s's loop.
func (n *Node) serveQuery(s *shard, q *core.QueryMsg) {
	start := time.Since(n.epoch).Seconds()
	q.ServedAt = start // spans measure service from here, including the delay
	if q.Enqueued > 0 && start >= q.Enqueued {
		n.queueWaitHist.Observe(start - q.Enqueued)
		if s.waitHist != nil {
			s.waitHist.Observe(start - q.Enqueued)
		}
	}
	if s.pendingCold != nil && s.peer.IsCold(q.Dest) &&
		n.parkCold(s, q.Dest, coldWaiter{q: q}) {
		// Hosted here, but on disk: the loader materializes the entry and
		// replays the query. Queue wait is already observed above.
		return
	}
	if n.opts.ServiceDelay > 0 {
		time.Sleep(n.opts.ServiceDelay)
	}
	s.peer.HandleQuery(q)
	end := time.Since(n.epoch).Seconds()
	n.serviceHist.Observe(end - start)
	s.meter.AddBusy(start, end)
}

// toShard enqueues env onto shard s's control queue, blocking until accepted
// or the node stops.
func (n *Node) toShard(s *shard, env envelope) {
	select {
	case s.control <- env:
	case <-n.stop:
	}
}

// Deliver injects an incoming message (called by transports; safe from any
// goroutine). Each message is dispatched to the shard that owns its subject
// node (§11): queries and results by destination, replication and probe
// traffic by session tag or payload node, warmup streams fanned across
// shards. Queries beyond the inbox bound are dropped.
func (n *Node) Deliver(m core.Message) {
	n.deliver(m, time.Since(n.epoch).Seconds())
}

// DeliverBatch injects a batch of incoming messages in order — transports
// deliver every frame decoded from one buffered read as one batch. The
// enqueue timestamp is read once for the whole batch: every member had
// already arrived when delivery began, so queue-wait histograms keep
// measuring from arrival, and the per-message clock read is amortized away.
func (n *Node) DeliverBatch(batch []core.Message) {
	now := time.Since(n.epoch).Seconds()
	for _, m := range batch {
		n.deliver(m, now)
	}
}

func (n *Node) deliver(m core.Message, now float64) {
	switch msg := m.(type) {
	case *core.QueryMsg:
		s := n.shardFor(msg.Dest)
		msg.Enqueued = now
		n.fanForeignPath(s.idx, msg.Path)
		if n.fastEnabled && n.tryFastServe(s, msg) {
			return
		}
		select {
		case s.queries <- msg:
		default:
			n.dropped.Add(1)
			n.inboxDrops.Inc()
		}
	case *core.ResultMsg:
		s := n.shardFor(msg.Dest)
		n.fanForeignPath(s.idx, msg.Path)
		if n.fastEnabled {
			// Queue the learning first (control is FIFO) so an Inspect issued
			// after Lookup returns observes the absorbed result, then wake the
			// waiting caller without a loop round trip. HandleResult only
			// reads the message, so the concurrent completeLookup is safe.
			// The result cache (not the snapshot) gives the caller's next
			// lookup immediate visibility of this result.
			select {
			case s.control <- envelope{fn: func() { s.peer.HandleResult(msg) }}:
			case <-n.stop:
				return
			}
			n.completeLookup(msg)
			return
		}
		n.toShard(s, envelope{msg: m})
	case *core.TraceSpanMsg:
		s := n.shardFor(core.NodeID(msg.Span.Node))
		if n.fastEnabled {
			// Fold the span in immediately (TraceStore is concurrency-safe);
			// the piggybacked rider is soft state, absorbed on the loop when
			// there's room.
			n.traces.AddSpan(msg.TraceID, msg.Span)
			select {
			case s.control <- envelope{fn: func() { s.peer.HandleControl(msg) }}:
			default:
				n.fastAbsorbDrops.Inc()
			}
			return
		}
		n.toShard(s, envelope{msg: m})
	case *core.MembershipMsg:
		switch msg.Kind {
		case core.MembershipWarmup:
			// Warmup streams are routing state, not liveness: absorb them on
			// the event loops, partitioned so each shard learns its own slice.
			n.deliverWarmup(msg.Warmup)
		case core.MembershipReconcile:
			// Answering needs the shard barrier; never block a transport
			// reader on it.
			go n.handleReconcile(msg)
		case core.MembershipReconcileAck:
			n.handleReconcileAck(msg)
		default:
			if n.membership != nil {
				n.membership.Deliver(msg)
			}
		}
	case *core.LoadProbeMsg:
		// Spread probes by sender so no single shard absorbs the whole probe
		// load. The reply carries the answering shard's own load; spread
		// across senders, that samples the server's per-shard load spectrum.
		n.toShard(n.shards[int(uint32(msg.From))%len(n.shards)], envelope{msg: m})
	case *core.LoadProbeReply:
		// Replies echo the probe's session id, whose top byte tags the shard
		// whose replication session sent it.
		n.toShard(n.sessionShard(msg.Session), envelope{msg: m})
	case *core.ReplicateReply:
		n.toShard(n.sessionShard(msg.Session.ID), envelope{msg: m})
	case *core.ReplicateRequest:
		n.deliverReplicate(msg)
	case *core.DataRequest:
		n.toShard(n.shardFor(msg.Node), envelope{msg: m})
	case *core.DataReply:
		n.toShard(n.shardFor(msg.Node), envelope{msg: m})
	default:
		n.toShard(n.shards[0], envelope{msg: m})
	}
}

func (n *Node) completeLookup(r *core.ResultMsg) {
	n.mu.Lock()
	ch, ok := n.pending[r.QueryID]
	if ok {
		delete(n.pending, r.QueryID)
	}
	n.mu.Unlock()
	if !ok {
		return
	}
	res := LookupResult{
		OK:      r.OK,
		Reason:  r.Reason,
		Node:    r.Dest,
		Name:    n.tree.Name(r.Dest),
		Meta:    r.Meta,
		Hops:    r.Hops,
		Latency: time.Duration((time.Since(n.epoch).Seconds() - r.Started) * float64(time.Second)),
		TraceID: r.TraceID,
		Trace:   append([]telemetry.Span(nil), r.Spans...),
	}
	res.Hosts = append(res.Hosts, r.Map.Servers...)
	if n.fastEnabled && r.OK && len(r.Map.Servers) > 0 {
		// Insert before waking the caller so their next lookup sees it.
		n.rememberResult(r.Dest, r.Map)
	}
	n.latencyHist.Observe(res.Latency.Seconds())
	n.hopsHist.Observe(float64(res.Hops))
	n.traces.Complete(r.TraceID, r.Spans, r.OK, r.Hops)
	// Complete copies spans by value and res.Trace is a fresh copy, so this
	// node — the lookup's originator — is the buffer's final owner.
	core.RecycleSpanBuf(r.Spans)
	r.Spans = nil
	ch <- res
}

// lookupChPool recycles the one-shot result channels Lookup blocks on. A
// channel goes back only on paths where it provably has no pending sender
// (received-from, or the query never left this function); the cancel paths
// abandon theirs to the GC.
var lookupChPool = sync.Pool{New: func() any { return make(chan LookupResult, 1) }}

// Lookup resolves a node through the overlay, initiating the query at this
// server, and blocks until the result arrives or ctx expires.
func (n *Node) Lookup(ctx context.Context, dest core.NodeID) (LookupResult, error) {
	if dest < 0 || int(dest) >= n.tree.Len() {
		return LookupResult{}, fmt.Errorf("overlay: no such node %d", dest)
	}
	if err := ctx.Err(); err != nil {
		// The fast path can resolve synchronously, which would make the
		// result and a pre-cancelled context race in the select below.
		return LookupResult{}, err
	}
	qid := n.nextQID.Add(1)
	ch := lookupChPool.Get().(chan LookupResult)
	n.mu.Lock()
	n.pending[qid] = ch
	n.mu.Unlock()
	q := &core.QueryMsg{
		QueryID:  qid,
		Dest:     dest,
		Source:   n.id,
		OnBehalf: namespace.Invalid,
		Started:  time.Since(n.epoch).Seconds(),
		// Reserve a typical route's path entries up front (routes are
		// tree-depth-bounded, far under the MaxHops TTL): each hop appends
		// one, and with spare capacity the extensions rarely reallocate.
		Path: make([]core.PathEntry, 0, 8),
	}
	q.Enqueued = q.Started
	if id := n.traceID(qid); id != 0 {
		q.TraceID = id
		// Budget: the full route plus the resolving hop, with one spare for
		// the rare route that ends exactly at MaxHops.
		q.SpanBudget = int32(n.opts.Config.MaxHops) + 2
		// Pre-reserve the whole budget from the pool so per-hop appends never
		// reallocate; completeLookup recycles the buffer.
		q.Spans = core.NewSpanBuf(int(q.SpanBudget))
	}
	s := n.shardFor(dest)
	if !n.fastEnabled || !n.tryFastServe(s, q) {
		select {
		case s.queries <- q:
		default:
			n.mu.Lock()
			delete(n.pending, qid)
			n.mu.Unlock()
			lookupChPool.Put(ch)
			n.dropped.Add(1)
			n.inboxDrops.Inc()
			return LookupResult{}, fmt.Errorf("overlay: server %d queue full", n.id)
		}
	}
	select {
	case res := <-ch:
		// completeLookup removes the pending entry before its single send, so
		// a received-from channel has no other sender and is safely reusable.
		lookupChPool.Put(ch)
		return res, nil
	case <-ctx.Done():
		n.mu.Lock()
		delete(n.pending, qid)
		n.mu.Unlock()
		return LookupResult{}, ctx.Err()
	case <-n.stop:
		return LookupResult{}, fmt.Errorf("overlay: node stopped")
	}
}

// traceID decides whether lookup qid is traced and derives its trace ID
// (0 = untraced). Sampling is deterministic in (seed, qid), so identical
// runs trace identical lookups; the ID mixes in the server so concurrent
// initiators never collide.
func (n *Node) traceID(qid uint64) uint64 {
	s := n.opts.TraceSample
	if s <= 0 {
		return 0
	}
	h := splitmix64(n.opts.Seed ^ (qid * 0x9e3779b97f4a7c15))
	if s < 1 && float64(h>>11)/(1<<53) >= s {
		return 0
	}
	id := splitmix64(h ^ (uint64(uint32(n.id)) << 32))
	if id == 0 {
		id = 1
	}
	return id
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// LookupName resolves a fully qualified name through the overlay.
func (n *Node) LookupName(ctx context.Context, name string) (LookupResult, error) {
	id := n.tree.Lookup(name)
	if id == namespace.Invalid {
		return LookupResult{}, fmt.Errorf("overlay: no such name %q", name)
	}
	return n.Lookup(ctx, id)
}

// Assign deterministically maps every namespace node to one of n servers
// (uniform, seeded): all processes of a deployment compute the same
// assignment from the same (tree, servers, seed) triple.
func Assign(tree *namespace.Tree, servers int, seed uint64) []core.ServerID {
	src := rng.New(seed ^ 0x7e44ad15)
	owner := make([]core.ServerID, tree.Len())
	for i := range owner {
		owner[i] = core.ServerID(src.Intn(servers))
	}
	return owner
}
