package overlay

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"terradir/internal/core"
	"terradir/internal/wire"
)

// startTCPPair boots a two-node TCP overlay and returns the nodes, the
// transports and the shared address map (which the caller may extend with
// phantom peers before traffic starts).
func startTCPPair(t *testing.T, opts TCPTransportOptions) ([]*Node, []*TCPTransport, map[core.ServerID]string) {
	t.Helper()
	tree := testTree()
	owner := Assign(tree, 2, 7)
	ownerOf := func(nd core.NodeID) core.ServerID { return owner[nd] }
	ownedBy := make([][]core.NodeID, 2)
	for nd, s := range owner {
		ownedBy[s] = append(ownedBy[s], core.NodeID(nd))
	}
	addrs := map[core.ServerID]string{}
	transports := make([]*TCPTransport, 2)
	for i := 0; i < 2; i++ {
		tr, err := NewTCPTransportOpts(core.ServerID(i), "127.0.0.1:0", addrs, opts)
		if err != nil {
			t.Fatal(err)
		}
		transports[i] = tr
		addrs[core.ServerID(i)] = tr.Addr()
	}
	nodes := make([]*Node, 2)
	for i := 0; i < 2; i++ {
		n, err := NewNode(core.ServerID(i), tree, ownedBy[i], ownerOf,
			Options{Seed: uint64(i) + 1, Shards: *testShards})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		StartTCPNode(n, transports[i])
	}
	t.Cleanup(func() {
		for i := range nodes {
			nodes[i].Stop()
			transports[i].Close()
		}
	})
	return nodes, transports, addrs
}

// ownedByServer returns a node owned by the given server.
func ownedByServer(t *testing.T, owner []core.ServerID, s core.ServerID) core.NodeID {
	t.Helper()
	for nd, o := range owner {
		if o == s {
			return core.NodeID(nd)
		}
	}
	t.Fatalf("server %d owns nothing", s)
	return 0
}

// stallListener accepts connections and never reads from them, emulating a
// live-but-wedged peer whose socket buffers eventually fill.
type stallListener struct {
	ln    net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func newStallListener(t *testing.T) *stallListener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &stallListener{ln: ln}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			s.conns = append(s.conns, c)
			s.mu.Unlock()
		}
	}()
	t.Cleanup(s.close)
	return s
}

func (s *stallListener) close() {
	s.ln.Close()
	s.mu.Lock()
	for _, c := range s.conns {
		c.Close()
	}
	s.conns = nil
	s.mu.Unlock()
}

// bigMsg builds a message whose encoded frame is large enough that a few of
// them overflow kernel socket buffers, forcing writes to actually block.
func bigMsg(n int) core.Message {
	return &core.DataReply{ReqID: 1, Node: 1, OK: true, Data: make([]byte, n)}
}

func TestTCPPeerStallDoesNotBlockSend(t *testing.T) {
	// One peer accepts but never reads: Sends to it must return immediately
	// (bounded queue + writer goroutine absorb the stall) and lookups through
	// the healthy peer must keep completing. The synchronous transport fails
	// this test: Send blocks inside net.Conn.Write holding the conn lock.
	nodes, transports, addrs := startTCPPair(t, TCPTransportOptions{
		QueueDepth:   8,
		WriteTimeout: 150 * time.Millisecond,
		DialTimeout:  500 * time.Millisecond,
	})
	stall := newStallListener(t)
	addrs[2] = stall.ln.Addr().String()

	start := time.Now()
	for i := 0; i < 40; i++ {
		if err := transports[0].Send(0, 2, bigMsg(256<<10)); err != nil {
			t.Fatalf("send %d to stalled peer errored: %v", i, err)
		}
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("40 sends to a stalled peer took %v; Send must not block", d)
	}

	// Lookups through the other (healthy) peer complete while the stalled
	// peer's writer is wedged against its deadline.
	tree := nodes[0].tree
	owner := Assign(tree, 2, 7)
	remote := ownedByServer(t, owner, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < 10; i++ {
		res, err := nodes[0].Lookup(ctx, remote)
		if err != nil || !res.OK {
			t.Fatalf("lookup %d through healthy peer: %v %+v", i, err, res)
		}
	}

	// The stall must be visible in the counters: the bounded queue evicted
	// oldest frames and/or writes died on the deadline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := transports[0].Stats()
		if s.QueueDrops > 0 || s.WriteErrors > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no overflow or write-deadline evidence in stats: %+v", s)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestTCPQueueOverflowDropsOldest(t *testing.T) {
	// With no listener at the destination the writer can never drain, so a
	// flood through a depth-4 queue must evict all but the newest few.
	addrs := map[core.ServerID]string{}
	tr, err := NewTCPTransportOpts(0, "127.0.0.1:0", addrs, TCPTransportOptions{
		QueueDepth:  4,
		DialTimeout: 100 * time.Millisecond,
		BackoffMin:  50 * time.Millisecond,
		BackoffMax:  200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	// A dead address: grab a port, then close it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()
	addrs[1] = dead

	for i := 0; i < 100; i++ {
		if err := tr.Send(0, 1, &core.LoadProbeMsg{Session: uint64(i), From: 0}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	s := tr.Stats()
	if s.Enqueued != 100 {
		t.Fatalf("enqueued = %d, want 100", s.Enqueued)
	}
	// 100 in, depth 4, at most one in flight with the writer.
	if s.QueueDrops < 90 {
		t.Fatalf("queue drops = %d, want >= 90 (drop-oldest overflow)", s.QueueDrops)
	}
	if s.QueueDepth > 4 {
		t.Fatalf("queue depth = %d exceeds bound 4", s.QueueDepth)
	}
	// The writer must be dialing (and failing) with backoff, not spinning.
	waitFor(t, 3*time.Second, func() bool { return tr.Stats().DialErrors > 0 })
}

func TestTCPSendOversizedMessage(t *testing.T) {
	addrs := map[core.ServerID]string{}
	tr, err := NewTCPTransport(0, "127.0.0.1:0", addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	addrs[1] = tr.Addr()
	err = tr.Send(0, 1, bigMsg(wire.MaxFrame+1))
	if err == nil {
		t.Fatal("oversized message accepted")
	}
}

func TestTCPSendAfterCloseErrors(t *testing.T) {
	tr, err := NewTCPTransport(0, "127.0.0.1:0", map[core.ServerID]string{1: "127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(0, 1, &core.LoadProbeMsg{Session: 1, From: 0}); err == nil {
		t.Fatal("send on closed transport succeeded")
	}
	// Close is idempotent.
	_ = tr.Close()
}

func TestTCPListenerRestartMidTraffic(t *testing.T) {
	// Kill the receiving peer's listener while traffic flows, restart it on
	// the same port, and verify the sender's writer redials and resumes
	// without any new Send-side plumbing.
	nodes, transports, _ := startTCPPair(t, TCPTransportOptions{
		WriteTimeout: 300 * time.Millisecond,
		DialTimeout:  300 * time.Millisecond,
		BackoffMin:   10 * time.Millisecond,
		BackoffMax:   100 * time.Millisecond,
	})
	tree := nodes[0].tree
	owner := Assign(tree, 2, 7)
	remote := ownedByServer(t, owner, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if res, err := nodes[0].Lookup(ctx, remote); err != nil || !res.OK {
		t.Fatalf("warm lookup: %v %+v", err, res)
	}

	// Take peer 1 down mid-traffic and generate sends into the outage so the
	// writer observes broken connections and failed dials.
	addr1 := transports[1].Addr()
	nodes[1].Stop()
	transports[1].Close()
	for i := 0; i < 5; i++ {
		_ = transports[0].Send(0, 1, &core.LoadProbeMsg{Session: uint64(i), From: 0})
		time.Sleep(20 * time.Millisecond)
	}

	// Restart peer 1 on the same address.
	tr1b, err := NewTCPTransport(1, addr1, map[core.ServerID]string{0: transports[0].Addr(), 1: addr1})
	if err != nil {
		t.Fatalf("rebind %s: %v", addr1, err)
	}
	defer tr1b.Close()
	ownedBy := make([][]core.NodeID, 2)
	for nd, s := range owner {
		ownedBy[s] = append(ownedBy[s], core.NodeID(nd))
	}
	n1b, err := NewNode(1, tree, ownedBy[1], func(nd core.NodeID) core.ServerID { return owner[nd] }, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	StartTCPNode(n1b, tr1b)
	defer n1b.Stop()

	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err := nodes[0].Lookup(ctx, remote)
		if err == nil && res.OK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("traffic never resumed after listener restart: %v %+v", err, res)
		}
		time.Sleep(50 * time.Millisecond)
	}
	s := transports[0].Stats()
	if s.Redials == 0 {
		t.Fatalf("sender never redialed: %+v", s)
	}
}

func TestTCPCorruptFrameCounted(t *testing.T) {
	nodes, transports, _ := startTCPPair(t, TCPTransportOptions{})
	_ = nodes
	// Dial the transport's listener raw and feed it garbage two ways.
	// 1) A well-framed but undecodable payload: counted, connection kept.
	c, err := net.Dial("tcp", transports[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := wire.WriteFrame(c, []byte{0xFF, 0xAA, 0xBB}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool { return transports[0].Stats().CorruptFrames == 1 })
	// The connection survives a decode failure: a valid frame still lands.
	valid, err := wire.Encode(&core.LoadProbeMsg{Session: 9, From: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(c, valid); err != nil {
		t.Fatal(err)
	}

	// 2) A corrupt length prefix (> MaxFrame): counted as corruption and the
	// connection is torn down (stream cannot be resynced).
	c2, err := net.Dial("tcp", transports[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool { return transports[0].Stats().CorruptFrames == 2 })

	// 3) A half-written header then a hard close: a connection error.
	c3, err := net.Dial("tcp", transports[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c3.Write([]byte{0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	c3.Close()
	waitFor(t, 3*time.Second, func() bool { return transports[0].Stats().ConnErrors >= 1 })
}

func TestNodeTransportStats(t *testing.T) {
	nodes, _, _ := startTCPPair(t, TCPTransportOptions{})
	tree := nodes[0].tree
	owner := Assign(tree, 2, 7)
	remote := ownedByServer(t, owner, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if res, err := nodes[0].Lookup(ctx, remote); err != nil || !res.OK {
		t.Fatalf("lookup: %v %+v", err, res)
	}
	s, ok := nodes[0].TransportStats()
	if !ok {
		t.Fatal("TCP transport exports no stats")
	}
	if s.Enqueued == 0 || s.Sent == 0 || s.Dials == 0 {
		t.Fatalf("counters not advancing: %+v", s)
	}
	if snap := nodes[0].Snapshot(); snap.Transport.Sent == 0 {
		t.Fatalf("snapshot misses transport stats: %+v", snap.Transport)
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// assertConserved checks the transport's message-conservation invariant:
// every message accepted into an outbound queue is eventually written,
// dropped, or still queued — and counted exactly once.
func assertConserved(t *testing.T, tr *TCPTransport) {
	t.Helper()
	s := tr.Stats()
	if got := s.Sent + s.QueueDrops + s.WriteErrors + uint64(s.QueueDepth); got != s.Enqueued {
		t.Errorf("conservation violated: Enqueued=%d but Sent+QueueDrops+WriteErrors+QueueDepth=%d (%+v)",
			s.Enqueued, got, s)
	}
}

func TestTCPConservationAfterClose(t *testing.T) {
	// A live pair exchanging traffic, then closed: after Close every accepted
	// message must be accounted for and no frames may remain queued (the
	// writers drain and count abandoned queues on exit).
	nodes, transports, _ := startTCPPair(t, TCPTransportOptions{})
	dest := ownedByServer(t, Assign(testTree(), 2, 7), 1)
	for i := 0; i < 50; i++ {
		if _, err := nodes[0].Lookup(context.Background(), dest); err != nil {
			t.Fatalf("lookup %d: %v", i, err)
		}
	}
	nodes[0].Stop()
	nodes[1].Stop()
	for _, tr := range transports {
		tr.Close() // waits for writers, so drainAbandoned has run
		if d := tr.Stats().QueueDepth; d != 0 {
			t.Errorf("queue depth %d after Close; abandoned frames uncounted", d)
		}
		assertConserved(t, tr)
	}
}

func TestTCPConservationDeadPeerFlood(t *testing.T) {
	// Flooding a peer that refuses connections exercises the overflow-evict
	// path and the close-with-batch-in-flight path: the batch a writer holds
	// while dialing is off the queue, so Close must count it as dropped
	// rather than letting it vanish between QueueDepth and QueueDrops.
	_, transports, addrs := startTCPPair(t, TCPTransportOptions{
		QueueDepth: 4,
		BackoffMin: 5 * time.Millisecond,
		BackoffMax: 20 * time.Millisecond,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close() // connection refused from now on
	addrs[core.ServerID(9)] = deadAddr
	tr := transports[0]
	for i := 0; i < 100; i++ {
		if err := tr.Send(0, 9, bigMsg(64)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	waitFor(t, 3*time.Second, func() bool { return tr.Stats().QueueDrops > 0 })
	tr.Close()
	if d := tr.Stats().QueueDepth; d != 0 {
		t.Errorf("queue depth %d after Close", d)
	}
	assertConserved(t, tr)
	if s := tr.Stats(); s.Sent != 0 {
		t.Errorf("sent %d frames to a refused address", s.Sent)
	}
}

func TestTCPConservationSetAddrRetire(t *testing.T) {
	// SetAddr retires the old sender with frames still queued; those frames
	// leave the peers map (and thus QueueDepth) with it, so retirement must
	// move them into QueueDrops. A Send racing the retirement lands on the
	// drained sender and must count its own frame.
	_, transports, addrs := startTCPPair(t, TCPTransportOptions{
		QueueDepth: 64,
		BackoffMin: 50 * time.Millisecond,
		BackoffMax: 50 * time.Millisecond,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()
	addrs[core.ServerID(9)] = deadAddr
	tr := transports[0]
	for i := 0; i < 32; i++ {
		if err := tr.Send(0, 9, bigMsg(64)); err != nil {
			t.Fatal(err)
		}
	}
	// Grab the live sender, then retire it via an address change and push
	// onto the retired sender directly — the deterministic version of a Send
	// racing SetAddr.
	tr.mu.Lock()
	p := tr.peers[9]
	tr.mu.Unlock()
	if p == nil {
		t.Fatal("no sender for peer 9")
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead2 := ln2.Addr().String()
	ln2.Close()
	tr.SetAddr(9, dead2)
	waitFor(t, 3*time.Second, func() bool {
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.retired
	})
	before := tr.Stats().QueueDrops
	tr.ctr.enqueued.Add(1)
	if dropped := p.push([]byte{1}); dropped != 1 {
		t.Errorf("push on retired sender returned %d drops, want 1", dropped)
	} else {
		tr.ctr.queueDrops.Add(uint64(dropped))
	}
	if after := tr.Stats().QueueDrops; after != before+1 {
		t.Errorf("queue drops %d -> %d, want +1", before, after)
	}
	tr.Close()
	if d := tr.Stats().QueueDepth; d != 0 {
		t.Errorf("queue depth %d after Close", d)
	}
	assertConserved(t, tr)
}
