package overlay

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"terradir/internal/core"
)

// startColdNode builds and starts a single-server overlay hosting the whole
// test namespace with a hot cache capped at capEntries — the larger-than-RAM
// configuration, with the namespace ~10x the cache.
func startColdNode(t *testing.T, dir string, capEntries int) (*Node, *LocalTransport) {
	t.Helper()
	tree := testTree()
	all := make([]core.NodeID, tree.Len())
	for i := range all {
		all[i] = core.NodeID(i)
	}
	nd, err := NewNode(0, tree, all, func(core.NodeID) core.ServerID { return 0 }, Options{
		Seed:   7,
		Shards: *testShards,
		Persist: &PersistOptions{
			Dir:              dir,
			SnapshotInterval: time.Hour, // snapshots are forced explicitly
			HotCacheEntries:  capEntries,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewLocalTransport(0)
	tr.Register(nd)
	nd.SetTransport(tr)
	nd.Start()
	return nd, tr
}

func residentTotals(t *testing.T, n *Node) (resident, cold, hosted int) {
	t.Helper()
	if !n.Inspect(func(p *core.Peer) {
		resident += p.ResidentCount()
		cold += p.ColdCount()
		hosted += len(p.HostedIDs())
	}) {
		t.Fatal("node stopped during inspection")
	}
	return
}

// drainToCap snapshots (building the index and completing the clean epoch)
// and waits until the resident set has drained to the hot-cache cap.
func drainToCap(t *testing.T, n *Node, capEntries int) {
	t.Helper()
	n.writeSnapshot()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resident, cold, _ := residentTotals(t, n)
		// Per-shard caps are ceil(cap/shards), so allow one entry of slack
		// per shard when rounding up.
		if cold > 0 && resident <= capEntries+n.Shards() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	resident, cold, hosted := residentTotals(t, n)
	t.Fatalf("hot cache did not drain: resident=%d cold=%d hosted=%d cap=%d",
		resident, cold, hosted, capEntries)
}

// TestColdHostingZipfE2E is the larger-than-RAM scenario end to end: a server
// whose hot cache holds under a tenth of its hosted partition must keep
// serving the full namespace — a Zipf lookup stream resolves ≥99%, cold
// misses are observed loading from the on-disk index, application data
// survives the demote/load round trip, and queue waits stay bounded because
// the event loop never performs the disk reads. A restart then recovers the
// same bounded-resident shape straight from the index.
func TestColdHostingZipfE2E(t *testing.T) {
	const capEntries = 24
	dir := t.TempDir()
	n, tr := startColdNode(t, dir, capEntries)
	stopped := false
	defer func() {
		if !stopped {
			n.Stop()
			tr.Close()
		}
	}()
	tree := n.tree

	// Owner-grade state on the first 50 nodes, written before the snapshot so
	// the demote/load round trip must preserve it.
	const dataNodes = 50
	for id := 0; id < dataNodes; id++ {
		id := core.NodeID(id)
		n.Inspect(func(p *core.Peer) {
			p.SetMeta(id, map[string]string{"probe": fmt.Sprint(id)})
			p.SetData(id, []byte(fmt.Sprintf("payload-%d", id)))
		})
	}
	drainToCap(t, n, capEntries)
	resident, cold, hosted := residentTotals(t, n)
	if hosted != tree.Len() {
		t.Fatalf("hosted %d nodes after drain, want the full namespace %d", hosted, tree.Len())
	}
	if hosted < 10*resident {
		t.Fatalf("namespace %d is not ≥10x the resident set %d", hosted, resident)
	}
	t.Logf("drained: %d resident, %d cold of %d hosted", resident, cold, hosted)

	// Zipf lookup stream over the whole namespace: every result must be
	// correct, and the tail must actually reach cold entries.
	zipf := rand.NewZipf(rand.New(rand.NewSource(42)), 1.1, 1, uint64(tree.Len()-1))
	const lookups = 2000
	ok := 0
	for i := 0; i < lookups; i++ {
		// Spread the Zipf head across the namespace so the hot set is not
		// just the lowest ids.
		dest := core.NodeID((zipf.Uint64()*7919 + 13) % uint64(tree.Len()))
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		res, err := n.Lookup(ctx, dest)
		cancel()
		if err != nil || !res.OK || res.Node != dest {
			continue
		}
		ok++
	}
	if ok*100 < lookups*99 {
		t.Fatalf("resolved %d/%d Zipf lookups, want ≥99%%", ok, lookups)
	}
	misses, hits, evictions := n.idxMisses.Value(), n.idxHits.Value(), n.idxEvictions.Value()
	t.Logf("index: %d misses, %d hits, %d evictions; load latency (s) p50=%.6f p90=%.6f p99=%.6f p999=%.6f over %d loads",
		misses, hits, evictions,
		n.idxLoadHist.Quantile(0.50), n.idxLoadHist.Quantile(0.90),
		n.idxLoadHist.Quantile(0.99), n.idxLoadHist.Quantile(0.999),
		n.idxLoadHist.Count())
	if misses == 0 || hits == 0 {
		t.Fatalf("no cold loads observed (misses=%d hits=%d): the stream never left the hot set", misses, hits)
	}
	if evictions == 0 {
		t.Fatal("no evictions observed")
	}
	if n.idxLoadHist.Count() == 0 {
		t.Fatal("cold-load latency histogram is empty")
	}
	// The loop parks cold misses instead of reading disk, so queue wait must
	// not absorb load latency.
	if p99 := n.queueWaitHist.Quantile(0.99); p99 > 0.25 {
		t.Fatalf("queue-wait p99 %.4fs: the event loop is stalling on cold misses", p99)
	}
	if resident, _, _ := residentTotals(t, n); resident > capEntries+n.Shards() {
		t.Fatalf("resident set %d exceeds cap %d after the stream", resident, capEntries)
	}

	// Cold data retrieval: find a data-carrying node that is currently on
	// disk and fetch its payload through the DataRequest park path.
	var coldData core.NodeID = -1
	n.Inspect(func(p *core.Peer) {
		if coldData >= 0 {
			return
		}
		for _, id := range p.ColdIDs() {
			if int(id) < dataNodes {
				coldData = id
				return
			}
		}
	})
	if coldData < 0 {
		t.Fatal("no data-carrying node is cold; cannot exercise the data load path")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	res, data, err := n.Get(ctx, coldData)
	cancel()
	if err != nil || !res.OK {
		t.Fatalf("Get(%d) through the cold path: %v %+v", coldData, err, res)
	}
	if string(data) != fmt.Sprintf("payload-%d", coldData) {
		t.Fatalf("cold data round trip returned %q", data)
	}
	if res.Meta.Attrs["probe"] != fmt.Sprint(coldData) {
		t.Fatalf("cold meta round trip returned %+v", res.Meta)
	}

	// Restart from the same directory: replay must come back indexed, with
	// the full partition hosted but only the hot cache resident.
	n.Stop()
	tr.Close()
	stopped = true
	n2, tr2 := startColdNode(t, dir, capEntries)
	defer func() {
		n2.Stop()
		tr2.Close()
	}()
	rs := n2.ReplayedState()
	if rs == nil || !rs.Indexed {
		t.Fatalf("restart did not use the node index: %+v", rs)
	}
	resident, cold, hosted = residentTotals(t, n2)
	if hosted != tree.Len() {
		t.Fatalf("restart hosts %d nodes, want %d", hosted, tree.Len())
	}
	if resident > capEntries+n2.Shards() {
		t.Fatalf("restart materialized %d entries, cap %d", resident, capEntries)
	}
	if cold == 0 {
		t.Fatal("restart left nothing cold")
	}
	// A cold node's owner-grade state is reachable after restart.
	coldData = -1
	n2.Inspect(func(p *core.Peer) {
		if coldData >= 0 {
			return
		}
		for _, id := range p.ColdIDs() {
			if int(id) < dataNodes {
				coldData = id
				return
			}
		}
	})
	if coldData >= 0 {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		res, data, err := n2.Get(ctx, coldData)
		cancel()
		if err != nil || !res.OK || string(data) != fmt.Sprintf("payload-%d", coldData) {
			t.Fatalf("post-restart cold Get(%d): %v %+v %q", coldData, err, res, data)
		}
	}
}

// TestColdLoadConcurrentBarriers races cold-miss loads against the two
// operations that serialize the shard loops — barrier inspections (the
// PurgeServer path membership uses) and snapshots (which capture cold sets
// and complete clean epochs) — under the race detector. Every lookup must
// still resolve.
func TestColdLoadConcurrentBarriers(t *testing.T) {
	const capEntries = 20
	n, tr := startColdNode(t, t.TempDir(), capEntries)
	defer func() {
		n.Stop()
		tr.Close()
	}()
	drainToCap(t, n, capEntries)
	tree := n.tree

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// The purge barrier parks every loop mid-stream; cold loads in
			// flight must neither block it nor corrupt state under it.
			n.Inspect(func(p *core.Peer) { p.PurgeServer(1, nil) })
			if i%5 == 0 {
				n.writeSnapshot()
			}
		}
	}()
	const lookups = 400
	failed := 0
	src := rand.New(rand.NewSource(9))
	for i := 0; i < lookups; i++ {
		dest := core.NodeID(src.Intn(tree.Len()))
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		res, err := n.Lookup(ctx, dest)
		cancel()
		if err != nil || !res.OK || res.Node != dest {
			failed++
		}
	}
	close(stop)
	wg.Wait()
	if failed > lookups/100 {
		t.Fatalf("%d/%d lookups failed under concurrent barriers", failed, lookups)
	}
	if n.idxMisses.Value() == 0 {
		t.Fatal("no cold misses observed; the race never exercised the load path")
	}
}
