package overlay

import (
	"context"
	"fmt"
	"time"

	"terradir/internal/core"
	"terradir/internal/namespace"
)

// This file implements the client-side operations built on lookups: the
// paper's two-step data retrieval (§2.1: "a node lookup, followed by the
// actual data retrieval") and hierarchical search decomposition ("complex
// search queries are decomposed hierarchically into individual lookup
// queries, ... the results are aggregated").

// Get resolves a node and then retrieves its application data from one of
// the hosting servers in the returned map. Routing replicas carry no data
// (Table 1), so hosts are tried in turn until the owner answers.
func (n *Node) Get(ctx context.Context, dest core.NodeID) (LookupResult, []byte, error) {
	res, err := n.Lookup(ctx, dest)
	if err != nil {
		return LookupResult{}, nil, err
	}
	if !res.OK {
		return res, nil, fmt.Errorf("overlay: lookup failed: %s", res.Reason)
	}
	var lastErr error
	for _, host := range res.Hosts {
		data, err := n.fetchData(ctx, host, dest)
		if err == nil {
			return res, data, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("overlay: node %d has no hosts in its map", dest)
	}
	return res, nil, fmt.Errorf("overlay: data retrieval for %s: %w", res.Name, lastErr)
}

// errNoData distinguishes "host answered but has no data" from transport
// failures.
var errNoData = fmt.Errorf("host holds no data (routing replica)")

func (n *Node) fetchData(ctx context.Context, host core.ServerID, dest core.NodeID) ([]byte, error) {
	reqID := n.nextQID.Add(1)
	ch := make(chan *core.DataReply, 1)
	n.mu.Lock()
	n.pendingData[reqID] = ch
	n.mu.Unlock()
	cleanup := func() {
		n.mu.Lock()
		delete(n.pendingData, reqID)
		n.mu.Unlock()
	}
	req := &core.DataRequest{ReqID: reqID, Node: dest, From: n.id}
	if host == n.id {
		// Local fast path. DataOf only reads immutable stored bytes, but
		// route through the owning shard's view for consistency.
		cleanup()
		if data, ok := n.shardFor(dest).peer.DataOf(dest); ok {
			return data, nil
		}
		return nil, errNoData
	}
	if err := n.transport.Send(n.id, host, req); err != nil {
		cleanup()
		return nil, err
	}
	// The effective timeout is the caller's ctx deadline when one exists and
	// is sooner; n.opts.DataTimeout otherwise backstops deadline-free
	// contexts. A stopped timer (unlike time.After) allocates nothing past
	// this call's lifetime.
	timeout := n.opts.DataTimeout
	if dl, ok := ctx.Deadline(); ok {
		if remain := time.Until(dl); remain < timeout {
			timeout = remain
		}
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case rep := <-ch:
		if !rep.OK {
			return nil, errNoData
		}
		return rep.Data, nil
	case <-ctx.Done():
		cleanup()
		return nil, ctx.Err()
	case <-timer.C:
		cleanup()
		return nil, fmt.Errorf("data request to server %d timed out after %v", host, timeout)
	case <-n.stop:
		cleanup()
		return nil, fmt.Errorf("node stopped")
	}
}

// SearchResult is one aggregated entry of a hierarchical search.
type SearchResult struct {
	LookupResult
	Depth int // depth below the search prefix
}

// Search resolves every node in the subtree rooted at prefix, up to
// maxDepth levels below it and at most limit results (0 = no limit),
// decomposing the search into individual lookups as §2.1 describes and
// aggregating the results. Lookups for sibling branches are issued
// breadth-first; failures of individual entries are reported in the result
// (OK=false) rather than aborting the search.
func (n *Node) Search(ctx context.Context, prefix string, maxDepth, limit int) ([]SearchResult, error) {
	root := n.tree.Lookup(prefix)
	if root == namespace.Invalid {
		return nil, fmt.Errorf("overlay: no such name %q", prefix)
	}
	type item struct {
		id    core.NodeID
		depth int
	}
	frontier := []item{{id: root, depth: 0}}
	var out []SearchResult
	for len(frontier) > 0 {
		it := frontier[0]
		frontier = frontier[1:]
		if limit > 0 && len(out) >= limit {
			break
		}
		res, err := n.Lookup(ctx, it.id)
		if err != nil {
			return out, err
		}
		out = append(out, SearchResult{LookupResult: res, Depth: it.depth})
		if it.depth < maxDepth {
			for _, c := range n.tree.Children(it.id) {
				frontier = append(frontier, item{id: c, depth: it.depth + 1})
			}
		}
	}
	return out, nil
}

// StoreData stores application data on a node this server owns. Call before
// Start (or after Stop): while the node is running, its loops own the peers.
// It reports whether this server owns the node.
func (n *Node) StoreData(nd core.NodeID, data []byte) bool {
	return n.shardFor(nd).peer.SetData(nd, data)
}

// Snapshot is a point-in-time view of a live node's protocol state, safe to
// collect while the node runs (gathered inside the event loop; on a stopped
// node the quiescent state is read directly).
type Snapshot struct {
	ID        core.ServerID
	Owned     int
	Replicas  int
	Cache     int
	Load      float64
	Dropped   int64
	Stats     core.Stats
	Transport TransportStats
}

// Snapshot collects monitoring counters from the node, aggregated across
// shards: counts and stats sum, load averages (so a sharded server reports a
// load comparable to an unsharded one).
func (n *Node) Snapshot() Snapshot {
	s := Snapshot{
		ID:      n.id,
		Dropped: n.dropped.Load(),
	}
	now := time.Since(n.epoch).Seconds()
	// Inside runOnShards the whole node is quiescent and fn runs sequentially
	// on this goroutine, so plain accumulation is safe.
	collect := func(sh *shard) {
		p := sh.peer
		s.Owned += p.OwnedCount()
		s.Replicas += p.ReplicaCount()
		s.Cache += p.CacheLen()
		s.Load += sh.meter.Load(now)
		s.Stats.Accumulate(p.StatsView())
	}
	if !n.runOnShards(false, collect) {
		for _, sh := range n.shards { // node stopped: the loops are quiescent
			collect(sh)
		}
	}
	s.Load /= float64(len(n.shards))
	s.Transport, _ = n.TransportStats()
	return s
}
