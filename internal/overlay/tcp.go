package overlay

import (
	"fmt"
	"net"
	"sync"

	"terradir/internal/core"
	"terradir/internal/wire"
)

// TCPTransport carries protocol messages as length-prefixed wire frames over
// persistent TCP connections. One listener accepts inbound frames for the
// local node; outbound connections are dialed lazily per destination and
// kept open. Send never blocks on remote failures beyond the dial/write —
// errors drop the message, which the soft-state protocol tolerates.
type TCPTransport struct {
	self  core.ServerID
	addrs map[core.ServerID]string
	node  *Node
	ln    net.Listener

	mu      sync.Mutex
	conns   map[core.ServerID]*tcpConn
	inbound map[net.Conn]struct{}
	closed  bool
	wg      sync.WaitGroup
}

type tcpConn struct {
	mu sync.Mutex
	c  net.Conn
}

// NewTCPTransport starts listening on listenAddr and returns a transport
// that routes by the given server→address map. Attach it to its node with
// node.SetTransport, then call Serve (usually via StartTCPNode).
func NewTCPTransport(self core.ServerID, listenAddr string, addrs map[core.ServerID]string) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("overlay: listen %s: %w", listenAddr, err)
	}
	return &TCPTransport{
		self:    self,
		addrs:   addrs,
		ln:      ln,
		conns:   make(map[core.ServerID]*tcpConn),
		inbound: make(map[net.Conn]struct{}),
	}, nil
}

// Addr returns the transport's bound listen address.
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

// Serve begins accepting inbound connections, delivering decoded messages to
// n. It returns immediately; accepting happens on background goroutines.
func (t *TCPTransport) Serve(n *Node) {
	t.node = n
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		for {
			conn, err := t.ln.Accept()
			if err != nil {
				return // listener closed
			}
			t.mu.Lock()
			if t.closed {
				t.mu.Unlock()
				conn.Close()
				return
			}
			t.inbound[conn] = struct{}{}
			t.mu.Unlock()
			t.wg.Add(1)
			go func() {
				defer t.wg.Done()
				t.readLoop(conn)
				t.mu.Lock()
				delete(t.inbound, conn)
				t.mu.Unlock()
			}()
		}
	}()
}

func (t *TCPTransport) readLoop(conn net.Conn) {
	defer conn.Close()
	for {
		frame, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		msg, err := wire.Decode(frame)
		if err != nil {
			continue // corrupt frame: drop, keep the connection
		}
		if t.node != nil {
			t.node.Deliver(msg)
		}
	}
}

// Send implements Transport.
func (t *TCPTransport) Send(from, to core.ServerID, m core.Message) error {
	data, err := wire.Encode(m)
	if err != nil {
		return err
	}
	conn, err := t.conn(to)
	if err != nil {
		return err
	}
	conn.mu.Lock()
	defer conn.mu.Unlock()
	if err := wire.WriteFrame(conn.c, data); err != nil {
		// Connection broke: forget it so the next send redials.
		t.dropConn(to, conn)
		return err
	}
	return nil
}

func (t *TCPTransport) conn(to core.ServerID) (*tcpConn, error) {
	t.mu.Lock()
	if c, ok := t.conns[to]; ok {
		t.mu.Unlock()
		return c, nil
	}
	addr, ok := t.addrs[to]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("overlay: no address for server %d", to)
	}
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("overlay: dial server %d (%s): %w", to, addr, err)
	}
	c := &tcpConn{c: nc}
	t.mu.Lock()
	if prev, ok := t.conns[to]; ok {
		// Raced with another sender: keep the first connection.
		t.mu.Unlock()
		nc.Close()
		return prev, nil
	}
	t.conns[to] = c
	t.mu.Unlock()
	return c, nil
}

func (t *TCPTransport) dropConn(to core.ServerID, c *tcpConn) {
	t.mu.Lock()
	if t.conns[to] == c {
		delete(t.conns, to)
	}
	t.mu.Unlock()
	c.c.Close()
}

// Close shuts the listener and all connections (outbound and accepted)
// down, then waits for the reader goroutines to exit.
func (t *TCPTransport) Close() error {
	err := t.ln.Close()
	t.mu.Lock()
	t.closed = true
	for id, c := range t.conns {
		c.c.Close()
		delete(t.conns, id)
	}
	for c := range t.inbound {
		c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return err
}

// StartTCPNode wires a node to a TCP transport and starts both. ownedNodes
// and ownerOf must be derived from the deployment-wide assignment (Assign)
// so all processes agree on initial ownership.
func StartTCPNode(n *Node, transport *TCPTransport) {
	n.SetTransport(transport)
	transport.Serve(n)
	n.Start()
}
