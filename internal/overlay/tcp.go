package overlay

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"terradir/internal/core"
	"terradir/internal/rng"
	"terradir/internal/telemetry"
	"terradir/internal/wire"
)

// maxBatchBytes caps how many queued frame bytes one socket write coalesces.
// A batch always takes at least one frame, so a single near-MaxFrame message
// still goes out; the cap just bounds the writer's assembly buffer and keeps
// one flush from monopolizing the write deadline.
const maxBatchBytes = 256 << 10

// maxPooledBuf bounds the capacity of encode buffers kept on a peer's free
// list — one oversized replicate frame must not pin megabytes forever.
const maxPooledBuf = 64 << 10

// maxReadBatch caps how many decoded messages one read-loop wakeup delivers
// as a single batch, bounding the latency a saturated inbound buffer can add
// to the first message of the next batch.
const maxReadBatch = 256

// TCPTransportOptions tunes the transport's asynchronous outbound path. The
// zero value selects the defaults documented per field.
type TCPTransportOptions struct {
	// QueueDepth bounds each peer's outbound buffer. A full queue evicts its
	// oldest message (counted in TransportStats.QueueDrops) so senders never
	// block and the freshest soft state wins. Default 128.
	QueueDepth int
	// DialTimeout bounds every connection attempt. Default 2s.
	DialTimeout time.Duration
	// WriteTimeout is the per-frame write deadline; an expired deadline drops
	// the frame and redials. Default 2s.
	WriteTimeout time.Duration
	// BackoffMin/BackoffMax bound the exponential redial backoff after a
	// failed dial (each failure doubles the delay, plus up to 100% jitter).
	// Defaults 25ms / 3s.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// Seed seeds the deterministic backoff-jitter stream (default: from self).
	Seed uint64
	// ClientRole marks the transport as an edge client (gateway, CLI) rather
	// than an overlay peer. A client-role transport introduces itself with a
	// hello frame as the first write on every connection it dials and runs a
	// read loop on the dialed connection, so the remote peer can route replies
	// (lookup results, data replies) back over the same connection — an edge
	// client has no listener address peers could dial. The transport's self ID
	// must come from core.ClientID so it can never collide with a peer ID.
	ClientRole bool
}

func (o *TCPTransportOptions) fill(self core.ServerID) {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 128
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 2 * time.Second
	}
	if o.BackoffMin <= 0 {
		o.BackoffMin = 25 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 3 * time.Second
	}
	if o.BackoffMax < o.BackoffMin {
		o.BackoffMax = o.BackoffMin
	}
	if o.Seed == 0 {
		o.Seed = uint64(self)*0x9e3779b9 + 1
	}
}

// TCPTransport carries protocol messages as length-prefixed wire frames over
// persistent TCP connections. One listener accepts inbound frames for the
// local node; outbound traffic runs through one bounded queue plus writer
// goroutine per destination, which dials with a timeout, writes with a
// deadline, and redials with capped exponential backoff — so a stalled or
// dead peer can never block Send, the node's event loop, or other senders.
// The writer coalesces: it drains every queued frame (up to maxBatchBytes)
// into a single socket write, so a burst of small protocol messages costs
// one syscall instead of two per message, and encode buffers recycle through
// a per-peer free list (Send appends into a recycled buffer; the writer
// returns it after the flush). Overflow and broken writes drop messages
// (counted), which the soft-state protocol tolerates.
type TCPTransport struct {
	self    core.ServerID
	addrs   map[core.ServerID]string
	opts    TCPTransportOptions
	node    *Node
	handler func(core.Message) // ServeFunc alternative to node delivery
	ln      net.Listener
	hello   []byte // pre-encoded client-role hello frame (nil for peers)

	dialCtx    context.Context
	cancelDial context.CancelFunc

	mu      sync.Mutex
	peers   map[core.ServerID]*peerSender
	clients map[core.ServerID]*peerSender // hello-registered reply routes
	inbound map[net.Conn]struct{}
	closed  bool
	stop    chan struct{}
	wg      sync.WaitGroup

	ctr transportCounters

	// readHist, when set, observes frames-per-read per delivered batch (see
	// Node.registerTransportMetrics and the gateway's metrics).
	readHist atomic.Pointer[telemetry.Histogram]
}

// SetReadHistogram installs the histogram fed by the batched read path with
// frames-decoded-per-underlying-read samples. Safe to call any time; nil
// uninstalls.
func (t *TCPTransport) SetReadHistogram(h *telemetry.Histogram) {
	t.readHist.Store(h)
}

// NewTCPTransport starts listening on listenAddr and returns a transport
// that routes by the given server→address map, with default options. Attach
// it to its node with node.SetTransport, then call Serve (usually via
// StartTCPNode).
func NewTCPTransport(self core.ServerID, listenAddr string, addrs map[core.ServerID]string) (*TCPTransport, error) {
	return NewTCPTransportOpts(self, listenAddr, addrs, TCPTransportOptions{})
}

// NewTCPTransportOpts is NewTCPTransport with explicit queue/timeout/backoff
// options.
func NewTCPTransportOpts(self core.ServerID, listenAddr string, addrs map[core.ServerID]string, opts TCPTransportOptions) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("overlay: listen %s: %w", listenAddr, err)
	}
	opts.fill(self)
	ctx, cancel := context.WithCancel(context.Background())
	t := &TCPTransport{
		self:       self,
		addrs:      addrs,
		opts:       opts,
		ln:         ln,
		dialCtx:    ctx,
		cancelDial: cancel,
		peers:      make(map[core.ServerID]*peerSender),
		clients:    make(map[core.ServerID]*peerSender),
		inbound:    make(map[net.Conn]struct{}),
		stop:       make(chan struct{}),
	}
	if opts.ClientRole {
		if !core.IsClient(self) {
			ln.Close()
			cancel()
			return nil, fmt.Errorf("overlay: client-role transport needs a core.ClientID self, got %d", self)
		}
		frame, err := wire.Encode(&core.HelloMsg{ID: self, Role: core.RoleClient})
		if err != nil {
			ln.Close()
			cancel()
			return nil, err
		}
		t.hello = frame
	}
	return t, nil
}

// Addr returns the transport's bound listen address.
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

// Serve begins accepting inbound connections, delivering decoded messages to
// n. It returns immediately; accepting happens on background goroutines.
// Serve (or ServeFunc) must be called before the first Send.
func (t *TCPTransport) Serve(n *Node) {
	t.node = n
	t.acceptLoop()
}

// ServeFunc is Serve for consumers that are not overlay nodes (the gateway):
// every decoded inbound message — whether it arrived on an accepted
// connection or as a reply on a client-role dialed connection — is handed to
// fn. fn runs on the connection's read goroutine and must not block.
func (t *TCPTransport) ServeFunc(fn func(core.Message)) {
	t.handler = fn
	t.acceptLoop()
}

func (t *TCPTransport) acceptLoop() {
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		for {
			conn, err := t.ln.Accept()
			if err != nil {
				return // listener closed
			}
			t.mu.Lock()
			if t.closed {
				t.mu.Unlock()
				conn.Close()
				return
			}
			t.inbound[conn] = struct{}{}
			t.mu.Unlock()
			t.wg.Add(1)
			go func() {
				defer t.wg.Done()
				t.readLoop(conn)
				t.mu.Lock()
				delete(t.inbound, conn)
				t.mu.Unlock()
			}()
		}
	}()
}

func (t *TCPTransport) readLoop(conn net.Conn) {
	defer conn.Close()
	// cs is the reply sender registered by a hello on this connection. When
	// the read loop ends the connection is dead, so the sender dies with it —
	// retire is idempotent, covering the case where the sender already
	// retired itself on a write error (closing the conn and ending this loop).
	var cs *peerSender
	defer func() {
		if cs != nil {
			cs.retire()
			t.unregisterClient(cs)
		}
	}()
	// Batched receive: the FrameReader refills a pooled 256KiB window with
	// single reads and slices frames out zero-copy (Decode copies everything
	// it retains, so frames recycle implicitly on the next Next). Each outer
	// iteration decodes every frame available in the window — one blocking
	// Next, then buffered ones while Pending — and delivers them as one
	// batch, mirroring the sender's write coalescing.
	fr := wire.NewFrameReader(conn)
	defer fr.Release()
	var (
		batch     []core.Message
		lastReads uint64
		done      bool
	)
	for !done {
		batch = batch[:0]
		frames := 0
		for {
			frame, err := fr.Next()
			if err != nil {
				switch {
				case errors.Is(err, wire.ErrFrameSize):
					// Corrupt length prefix: the stream cannot be resynced, so
					// the connection must go, but count it as corruption.
					t.ctr.corruptFrames.Add(1)
				case err == io.EOF || errors.Is(err, net.ErrClosed):
					// Clean shutdown by either side: not an error.
				default:
					t.ctr.connErrors.Add(1)
				}
				done = true // deliver what the batch already holds, then exit
				break
			}
			frames++
			msg, derr := wire.Decode(frame)
			if derr != nil {
				if errors.Is(derr, wire.ErrUnknownKind) || errors.Is(derr, wire.ErrVersion) {
					// Well-framed message from a different protocol vintage —
					// what a newer peer's frames look like during a rolling
					// upgrade. Skip it; this is not corruption.
					t.ctr.unknownFrames.Add(1)
				} else {
					t.ctr.corruptFrames.Add(1) // framing intact: drop the message, keep the conn
				}
			} else if h, ok := msg.(*core.HelloMsg); ok {
				// Client-role handshake: bind this connection as the reply
				// route for the client's ID. One hello per connection; extras
				// and IDs outside the reserved client range are ignored (a
				// peer ID here would let a client hijack peer traffic).
				if cs == nil && core.IsClient(h.ID) {
					cs = t.registerClient(h.ID, conn)
				}
			} else {
				batch = append(batch, msg)
			}
			if len(batch) >= maxReadBatch || !fr.Pending() {
				break
			}
		}
		if frames > 0 {
			t.ctr.framesRead.Add(uint64(frames))
			t.ctr.readBatches.Add(1)
			if h := t.readHist.Load(); h != nil {
				reads, _ := fr.Stats()
				if d := reads - lastReads; d > 0 {
					h.Observe(float64(frames) / float64(d))
				} else {
					h.Observe(float64(frames))
				}
				lastReads = reads
			}
		}
		if len(batch) > 0 {
			t.deliverReadBatch(cs, batch)
			for i := range batch {
				batch[i] = nil
			}
		}
	}
}

// deliverReadBatch hands one read batch to the consumer. When the connection
// has a hello-registered client sender, delivery holds its deliverMu with a
// quit check inside; retire() takes the same mutex after closing quit, so
// once a superseding re-hello's retire() returns, no frame from the retired
// connection can reach the node — not even one already decoded into an
// in-flight batch.
func (t *TCPTransport) deliverReadBatch(cs *peerSender, batch []core.Message) {
	if cs != nil {
		cs.deliverMu.Lock()
		defer cs.deliverMu.Unlock()
		select {
		case <-cs.quit:
			return
		default:
		}
	}
	if t.handler != nil {
		for _, m := range batch {
			t.handler(m)
		}
	} else if t.node != nil {
		t.node.DeliverBatch(batch)
	}
}

// registerClient installs a reply sender for a hello'd client, bound to the
// inbound connection the hello arrived on. A re-hello from the same client ID
// on a new connection (client reconnected) supersedes and retires the old
// sender. Returns nil when the transport is closing.
func (t *TCPTransport) registerClient(id core.ServerID, conn net.Conn) *peerSender {
	p := &peerSender{
		t:      t,
		id:     id,
		static: true,
		notify: make(chan struct{}, 1),
		quit:   make(chan struct{}),
	}
	p.nc = conn
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	old := t.clients[id]
	t.clients[id] = p
	t.wg.Add(1)
	t.mu.Unlock()
	go p.run()
	if old != nil {
		old.retire()
	}
	return p
}

// unregisterClient removes p from the client reply routes unless a newer
// sender has already replaced it.
func (t *TCPTransport) unregisterClient(p *peerSender) {
	t.mu.Lock()
	if t.clients[p.id] == p {
		delete(t.clients, p.id)
	}
	t.mu.Unlock()
}

// Send implements Transport: it encodes m and enqueues it on the
// destination's outbound queue, never blocking on the network. Errors are
// returned only for local problems (unknown destination, unencodable or
// oversized message, closed transport); network delivery is asynchronous and
// best-effort. Encoding appends into a buffer recycled from the peer's free
// list, so steady-state sends allocate nothing.
func (t *TCPTransport) Send(from, to core.ServerID, m core.Message) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return fmt.Errorf("overlay: transport closed")
	}
	p, ok := t.peers[to]
	if !ok {
		// Hello-registered clients have no dialable address; their reply
		// sender is the only route. Client IDs are disjoint from peer IDs,
		// so checking the registry second can never shadow a peer.
		if c, okc := t.clients[to]; okc {
			p = c
			ok = true
		}
	}
	if !ok {
		addr, okAddr := t.addrs[to]
		if !okAddr {
			t.mu.Unlock()
			if core.IsClient(to) {
				return fmt.Errorf("overlay: client %d not connected", to)
			}
			return fmt.Errorf("overlay: no address for server %d", to)
		}
		p = &peerSender{
			t:       t,
			addr:    addr,
			notify:  make(chan struct{}, 1),
			quit:    make(chan struct{}),
			backoff: t.opts.BackoffMin,
			jitter:  rng.New(t.opts.Seed ^ uint64(to)*0xd1b54a32d192ed03),
		}
		t.peers[to] = p
		t.wg.Add(1)
		go p.run()
	}
	t.mu.Unlock()
	data, err := wire.AppendMessage(p.getBuf(), m)
	if err != nil {
		p.putBuf(data)
		return err
	}
	if len(data) > wire.MaxFrame {
		p.putBuf(data)
		return fmt.Errorf("overlay: message for server %d: %w (%d bytes)", to, wire.ErrFrameSize, len(data))
	}
	t.ctr.enqueued.Add(1)
	if dropped := p.push(data); dropped > 0 {
		t.ctr.queueDrops.Add(uint64(dropped))
	}
	return nil
}

// SetAddr records (or replaces) a peer's dialable address at runtime — the
// membership subsystem's address-discovery hook, letting joiners and
// restarted peers be reached without reconstructing the transport. A changed
// address retires the peer's current sender (its queued frames are lost,
// which soft state tolerates); the next Send builds a fresh one. The addrs
// map passed at construction must not be shared with another transport when
// SetAddr is in use.
func (t *TCPTransport) SetAddr(id core.ServerID, addr string) {
	if id == t.self || addr == "" {
		return
	}
	t.mu.Lock()
	if t.closed || t.addrs[id] == addr {
		t.mu.Unlock()
		return
	}
	t.addrs[id] = addr
	p := t.peers[id]
	if p != nil {
		delete(t.peers, id)
	}
	t.mu.Unlock()
	if p != nil {
		p.retire()
	}
}

// SendTo dials addr directly and writes m as a single frame — the join
// bootstrap path, used before the destination's server-ID→address mapping is
// known. Unlike Send it blocks for up to the dial and write timeouts.
func (t *TCPTransport) SendTo(addr string, m core.Message) error {
	data, err := wire.Encode(m)
	if err != nil {
		return err
	}
	if len(data) > wire.MaxFrame {
		return fmt.Errorf("overlay: message for %s: %w (%d bytes)", addr, wire.ErrFrameSize, len(data))
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return fmt.Errorf("overlay: transport closed")
	}
	t.mu.Unlock()
	d := net.Dialer{Timeout: t.opts.DialTimeout}
	conn, err := d.DialContext(t.dialCtx, "tcp", addr)
	if err != nil {
		t.ctr.dialErrors.Add(1)
		return err
	}
	defer conn.Close()
	t.ctr.dials.Add(1)
	conn.SetWriteDeadline(time.Now().Add(t.opts.WriteTimeout))
	if err := wire.WriteFrame(conn, data); err != nil {
		t.ctr.writeErrors.Add(1)
		return err
	}
	t.ctr.sent.Add(1)
	return nil
}

// Stats returns a snapshot of the transport's counters.
func (t *TCPTransport) Stats() TransportStats {
	s := TransportStats{
		Enqueued:      t.ctr.enqueued.Load(),
		Sent:          t.ctr.sent.Load(),
		Flushes:       t.ctr.flushes.Load(),
		QueueDrops:    t.ctr.queueDrops.Load(),
		WriteErrors:   t.ctr.writeErrors.Load(),
		Dials:         t.ctr.dials.Load(),
		DialErrors:    t.ctr.dialErrors.Load(),
		Redials:       t.ctr.redials.Load(),
		CorruptFrames: t.ctr.corruptFrames.Load(),
		UnknownFrames: t.ctr.unknownFrames.Load(),
		ConnErrors:    t.ctr.connErrors.Load(),
		FramesRead:    t.ctr.framesRead.Load(),
		ReadBatches:   t.ctr.readBatches.Load(),
	}
	t.mu.Lock()
	for _, p := range t.peers {
		s.QueueDepth += p.depth()
	}
	for _, p := range t.clients {
		s.QueueDepth += p.depth()
	}
	t.mu.Unlock()
	return s
}

// Close shuts the listener, all connections and all writer goroutines down,
// then waits for them to exit.
func (t *TCPTransport) Close() error {
	err := t.ln.Close()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		t.wg.Wait()
		return err
	}
	t.closed = true
	close(t.stop)
	t.cancelDial()
	for _, p := range t.peers {
		p.closeConn()
	}
	for _, p := range t.clients {
		p.closeConn()
	}
	for c := range t.inbound {
		c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return err
}

// peerSender owns one destination's outbound path: a bounded drop-oldest
// queue feeding a writer goroutine that maintains the connection and
// coalesces queued frames into single socket writes. A static sender (the
// reply route for a hello-registered client) is the same machinery bound to
// an existing inbound connection: it never dials, and it dies with the
// connection instead of redialing.
type peerSender struct {
	t      *TCPTransport
	addr   string
	id     core.ServerID // client ID (static senders only)
	static bool          // bound to an inbound conn; no dialing, no redial

	mu      sync.Mutex
	queue   [][]byte
	free    [][]byte // recycled encode buffers (written or evicted frames)
	retired bool     // writer gone; push must count new frames as drops itself
	notify  chan struct{}
	quit    chan struct{} // closed when the sender is retired (address change)

	retireOnce sync.Once

	// deliverMu serializes inbound batch delivery on this sender's connection
	// against its retirement: the read loop holds it across each batch (with
	// a quit check inside), and retire() acquires it once after closing quit,
	// so retire() returning guarantees no further frames from this connection
	// reach the node (see deliverReadBatch).
	deliverMu sync.Mutex

	// cmu guards nc, which Close pokes from outside the writer goroutine.
	cmu sync.Mutex
	nc  net.Conn

	// Writer-goroutine-only state.
	dialed  bool
	backoff time.Duration
	jitter  *rng.Source
	batch   [][]byte // reused batch-drain scratch
	wbuf    []byte   // reused coalesced-write assembly buffer
}

// getBuf pops a recycled encode buffer (nil when none — append allocates).
func (p *peerSender) getBuf() []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return b
	}
	return nil
}

// putBuf returns one encode buffer to the free list.
func (p *peerSender) putBuf(b []byte) {
	p.mu.Lock()
	p.recycleLocked(b)
	p.mu.Unlock()
}

// putBufs returns a written batch's buffers to the free list.
func (p *peerSender) putBufs(bufs [][]byte) {
	p.mu.Lock()
	for i, b := range bufs {
		p.recycleLocked(b)
		bufs[i] = nil
	}
	p.mu.Unlock()
}

func (p *peerSender) recycleLocked(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuf || len(p.free) >= p.t.opts.QueueDepth {
		return
	}
	p.free = append(p.free, b[:0])
}

// push enqueues data, evicting (and recycling) the oldest queued messages
// when full, and returns how many messages were dropped. A push that races a
// sender's retirement (SetAddr removed it from the peers map before Send
// finished with it) or transport shutdown finds retired set: the writer has
// already drained and counted the queue, so push counts its own frame as the
// drop — keeping Enqueued == Sent + QueueDrops + WriteErrors + QueueDepth
// exact instead of stranding the frame in a queue nothing will ever read.
func (p *peerSender) push(data []byte) (dropped int) {
	p.mu.Lock()
	if p.retired {
		p.recycleLocked(data)
		p.mu.Unlock()
		return 1
	}
	if len(p.queue) >= p.t.opts.QueueDepth {
		n := len(p.queue) - p.t.opts.QueueDepth + 1
		for _, old := range p.queue[:n] {
			p.recycleLocked(old)
		}
		p.queue = append(p.queue[:0], p.queue[n:]...)
		dropped = n
	}
	p.queue = append(p.queue, data)
	p.mu.Unlock()
	select {
	case p.notify <- struct{}{}:
	default:
	}
	return dropped
}

func (p *peerSender) depth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// nextBatch blocks until at least one message is queued (or the sender is
// shutting down), then drains consecutive frames up to maxBatchBytes into a
// reused scratch slice.
func (p *peerSender) nextBatch() ([][]byte, bool) {
	for {
		p.mu.Lock()
		if len(p.queue) > 0 {
			batch := p.batch[:0]
			size := 0
			n := 0
			for _, f := range p.queue {
				if n > 0 && size+len(f) > maxBatchBytes {
					break
				}
				batch = append(batch, f)
				size += len(f)
				n++
			}
			rest := copy(p.queue, p.queue[n:])
			for i := rest; i < len(p.queue); i++ {
				p.queue[i] = nil
			}
			p.queue = p.queue[:rest]
			p.mu.Unlock()
			p.batch = batch
			return batch, true
		}
		p.mu.Unlock()
		select {
		case <-p.notify:
		case <-p.quit:
			return nil, false
		case <-p.t.stop:
			return nil, false
		}
	}
}

// drainAbandoned marks the sender retired and counts every still-queued
// frame as a queue drop. Runs exactly once, when the writer goroutine exits
// (retirement or transport close): the frames will never be written, so
// conservation demands they move from QueueDepth to QueueDrops rather than
// silently disappear with the sender.
func (p *peerSender) drainAbandoned() {
	p.mu.Lock()
	p.retired = true
	if n := len(p.queue); n > 0 {
		p.t.ctr.queueDrops.Add(uint64(n))
		for i, old := range p.queue {
			p.recycleLocked(old)
			p.queue[i] = nil
		}
		p.queue = p.queue[:0]
	}
	p.mu.Unlock()
}

func (p *peerSender) run() {
	defer p.t.wg.Done()
	defer p.drainAbandoned()
	if p.static {
		// A dead static sender must leave the reply-route table so a Send to
		// the departed client fails fast instead of queueing into the void.
		defer p.t.unregisterClient(p)
	}
	for {
		batch, ok := p.nextBatch()
		if !ok {
			p.closeConn()
			return
		}
		if !p.deliver(batch) {
			p.closeConn()
			return
		}
		select {
		case <-p.quit:
			p.closeConn()
			return
		case <-p.t.stop:
			p.closeConn()
			return
		default:
		}
	}
}

// deliver flushes one coalesced batch, (re)connecting as needed, and reports
// whether the sender should keep running. Dial failures sleep the capped
// exponential backoff and retry the same batch (the queue keeps absorbing
// newer traffic behind it, evicting its oldest on overflow); a write failure
// drops the whole batch and marks the connection dead so the next batch
// redials. A static sender cannot redial — its connection belongs to the
// remote client — so connection death there ends the sender (false).
func (p *peerSender) deliver(batch [][]byte) bool {
	for {
		conn := p.conn()
		if conn == nil {
			if p.static {
				// The client connection is gone and cannot be re-established
				// from this side: the batch dies with the sender.
				p.t.ctr.queueDrops.Add(uint64(len(batch)))
				p.putBufs(batch)
				return false
			}
			var ok bool
			conn, ok = p.connect()
			if !ok {
				// Transport closing with the batch already off the queue: it
				// will never be written, so account it as dropped — otherwise
				// these messages vanish from the conservation ledger.
				p.t.ctr.queueDrops.Add(uint64(len(batch)))
				p.putBufs(batch)
				return false
			}
			if conn == nil {
				continue // dial failed; backoff already slept
			}
		}
		// Detect a broken connection *before* committing the batch: peer
		// outbound connections are write-only (peers respond on their own
		// dials), so a pending FIN/RST — which a first write would silently
		// absorb — means the peer is gone. Without this check a batch written
		// into a dead socket is blackholed and the failure only shows on the
		// next batch. The probe MUST be skipped when a read loop shares the
		// connection (static senders; client-role dialed conns): it would
		// steal a frame byte from the reply stream.
		if !p.static && !p.t.opts.ClientRole && connBroken(conn) {
			p.closeConn()
			continue // redial and retry the same batch
		}
		p.wbuf = p.wbuf[:0]
		for _, f := range batch {
			var hdr [4]byte
			binary.BigEndian.PutUint32(hdr[:], uint32(len(f)))
			p.wbuf = append(p.wbuf, hdr[:]...)
			p.wbuf = append(p.wbuf, f...)
		}
		conn.SetWriteDeadline(time.Now().Add(p.t.opts.WriteTimeout))
		_, err := conn.Write(p.wbuf)
		if cap(p.wbuf) > 2*maxBatchBytes {
			p.wbuf = nil // don't pin an outsized frame's assembly buffer
		}
		if err != nil {
			p.t.ctr.writeErrors.Add(uint64(len(batch)))
			p.closeConn()
			p.putBufs(batch)
			// Batch lost with the connection; soft state tolerates it. A
			// dialing sender redials on the next batch; a static one is done.
			return !p.static
		}
		p.t.ctr.sent.Add(uint64(len(batch)))
		p.t.ctr.flushes.Add(1)
		p.putBufs(batch)
		return true
	}
}

// connect attempts one dial. It returns (nil, true) after a failed attempt
// (having slept the backoff) and (nil, false) when the transport is closing.
// In client role the hello frame goes out before the connection is usable
// and a read loop is attached for replies.
func (p *peerSender) connect() (net.Conn, bool) {
	d := net.Dialer{Timeout: p.t.opts.DialTimeout}
	nc, err := d.DialContext(p.t.dialCtx, "tcp", p.addr)
	if err != nil {
		p.t.ctr.dialErrors.Add(1)
		return nil, p.sleepBackoff()
	}
	p.t.ctr.dials.Add(1)
	if p.t.hello != nil {
		// Introduce ourselves so the peer binds this connection as our reply
		// route. A failed hello is a failed dial (counted as a connection
		// error, not a write error — hellos are not enqueued frames, and the
		// Enqueued == Sent + drops conservation ledger must stay exact).
		nc.SetWriteDeadline(time.Now().Add(p.t.opts.WriteTimeout))
		if werr := wire.WriteFrame(nc, p.t.hello); werr != nil {
			nc.Close()
			p.t.ctr.connErrors.Add(1)
			return nil, p.sleepBackoff()
		}
		nc.SetWriteDeadline(time.Time{})
		// Replies come back on this same connection.
		p.t.mu.Lock()
		if p.t.closed {
			p.t.mu.Unlock()
			nc.Close()
			return nil, false
		}
		p.t.inbound[nc] = struct{}{}
		p.t.wg.Add(1)
		p.t.mu.Unlock()
		go func() {
			defer p.t.wg.Done()
			p.t.readLoop(nc)
			p.t.mu.Lock()
			delete(p.t.inbound, nc)
			p.t.mu.Unlock()
		}()
	}
	if p.dialed {
		p.t.ctr.redials.Add(1)
	}
	p.dialed = true
	p.backoff = p.t.opts.BackoffMin
	p.cmu.Lock()
	p.nc = nc
	p.cmu.Unlock()
	return nc, true
}

// sleepBackoff sleeps the capped exponential redial backoff, returning false
// when the sender or transport is shutting down.
func (p *peerSender) sleepBackoff() bool {
	select {
	case <-p.quit:
		return false
	case <-p.t.stop:
		return false
	default:
	}
	delay := p.backoff + time.Duration(p.jitter.Float64()*float64(p.backoff))
	p.backoff *= 2
	if p.backoff > p.t.opts.BackoffMax {
		p.backoff = p.t.opts.BackoffMax
	}
	timer := time.NewTimer(delay)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-p.quit:
		return false
	case <-p.t.stop:
		return false
	}
}

// connBroken reports whether a write-only connection has a pending EOF,
// reset, or unexpected inbound byte, via one non-blocking read at the fd
// level (a net.Conn deadline-based poll cannot do this: an already-expired
// deadline short-circuits before the syscall). Peers never send on
// connections we dialed, so any readable event means the connection is dead.
func connBroken(conn net.Conn) bool {
	sc, ok := conn.(syscall.Conn)
	if !ok {
		return false // cannot probe; let the write discover failures
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		return true
	}
	broken := false
	var buf [1]byte
	rerr := rc.Read(func(fd uintptr) bool {
		n, err := syscall.Read(int(fd), buf[:])
		switch {
		case err == syscall.EAGAIN || err == syscall.EWOULDBLOCK || err == syscall.EINTR:
			// Nothing pending: the healthy case.
		case n == 0 && err == nil:
			broken = true // FIN: peer closed
		default:
			broken = true // RST, other socket error, or unexpected data
		}
		return true // never park; this is a poll, not a wait
	})
	return broken || rerr != nil
}

func (p *peerSender) conn() net.Conn {
	p.cmu.Lock()
	defer p.cmu.Unlock()
	return p.nc
}

// retire terminates a sender: its writer goroutine exits and its connection
// closes. Idempotent — a static sender can be retired by a write failure, by
// its connection's read loop ending, and by a superseding re-hello, in any
// order.
func (p *peerSender) retire() {
	p.retireOnce.Do(func() {
		close(p.quit)
		p.closeConn()
		// Wait out a batch currently delivering on this sender's connection:
		// the read loop checks quit under deliverMu before each batch, so
		// once this acquire succeeds no in-flight delivery continues and no
		// new one starts. Safe against self-deadlock: the read loop never
		// holds deliverMu while retiring (its deferred retire runs after the
		// delivery loop exits), and registerClient retires a superseded
		// sender only after releasing the transport mutex.
		p.deliverMu.Lock()
		p.deliverMu.Unlock() //nolint:staticcheck // the handoff is the critical section
	})
}

func (p *peerSender) closeConn() {
	p.cmu.Lock()
	if p.nc != nil {
		p.nc.Close()
		p.nc = nil
	}
	p.cmu.Unlock()
}

// StartTCPNode wires a node to a TCP transport and starts both. The node's
// owned set and ownerOf function must be derived from the deployment-wide
// assignment (Assign) so all processes agree on initial ownership.
func StartTCPNode(n *Node, transport *TCPTransport) {
	StartTCPNodeVia(n, transport, transport)
}

// StartTCPNodeVia is StartTCPNode with the outbound path routed through send
// — typically a FaultTransport wrapping transport — while inbound frames are
// still served by transport itself.
func StartTCPNodeVia(n *Node, transport *TCPTransport, send Transport) {
	n.SetTransport(send)
	transport.Serve(n)
	n.Start()
}
