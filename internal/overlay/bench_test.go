package overlay

import (
	"context"
	"testing"

	"terradir/internal/core"
)

// benchCluster boots a local overlay and pre-warms the caches so the
// benchmark measures steady-state routing, not cold-start path propagation.
func benchCluster(b *testing.B, servers int) *LocalCluster {
	b.Helper()
	tree := testTree()
	opts := LocalClusterOptions{Servers: servers, Seed: 11}
	opts.Node.Shards = *testShards
	c, err := NewLocalCluster(tree, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.StopAll)
	ctx := context.Background()
	for i := 0; i < 2*tree.Len(); i++ {
		if _, err := c.Lookup(ctx, i%servers, core.NodeID((i*7919+3)%tree.Len())); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

// BenchmarkLookupThroughput measures sequential end-to-end lookup latency on
// the live in-process overlay (one goroutine per server, real event loops and
// channels — the protocol path a TCP deployment runs minus the sockets).
func BenchmarkLookupThroughput(b *testing.B) {
	c := benchCluster(b, 8)
	n := c.Tree().Len()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Lookup(ctx, i%8, core.NodeID((i*7919+3)%n))
		if err != nil {
			b.Fatal(err)
		}
		if !res.OK {
			b.Fatalf("lookup failed: %+v", res)
		}
	}
}

// BenchmarkLookupThroughputParallel is the same workload issued from many
// client goroutines at once — the aggregate throughput figure.
func BenchmarkLookupThroughputParallel(b *testing.B) {
	c := benchCluster(b, 8)
	n := c.Tree().Len()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ctx := context.Background()
		i := 0
		for pb.Next() {
			i++
			res, err := c.Lookup(ctx, i%8, core.NodeID((i*104729+1)%n))
			if err != nil {
				b.Fatal(err)
			}
			if !res.OK {
				b.Fatalf("lookup failed: %+v", res)
			}
		}
	})
}
