package overlay

import (
	"context"
	"testing"
	"time"

	"terradir/internal/core"
	"terradir/internal/telemetry"
)

// TestTCPLookupTraceEndToEnd routes a traced lookup between two live TCP
// peers and checks that the result's span chain describes the route: one
// span per hop in Seq order, the first produced by the initiating server,
// the last a resolve at the destination's owner — and that the initiator's
// trace store holds the same, complete, record.
func TestTCPLookupTraceEndToEnd(t *testing.T) {
	nodes, _, _ := startTCPPair(t, TCPTransportOptions{})
	owner := Assign(testTree(), 2, 7)
	dest := ownedByServer(t, owner, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := nodes[0].Lookup(ctx, dest)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("lookup failed: %s", res.Reason)
	}
	if res.TraceID == 0 {
		t.Fatal("lookup not traced despite default TraceSample=1")
	}
	if len(res.Trace) != res.Hops+1 {
		t.Fatalf("trace has %d spans for %d hops, want %d", len(res.Trace), res.Hops, res.Hops+1)
	}
	for i, sp := range res.Trace {
		if int(sp.Seq) != i {
			t.Fatalf("span %d has Seq %d: chain not contiguous: %+v", i, sp.Seq, res.Trace)
		}
		if sp.QueueWaitMicros < 0 || sp.ServiceMicros < 0 {
			t.Fatalf("span %d has negative timing: %+v", i, sp)
		}
	}
	if res.Trace[0].Server != 0 {
		t.Fatalf("first span from server %d, want the initiator 0", res.Trace[0].Server)
	}
	last := res.Trace[len(res.Trace)-1]
	if last.Reason != telemetry.HopResolve {
		t.Fatalf("terminal span reason %s, want resolve", last.Reason)
	}
	if last.Server != int32(owner[dest]) || last.Node != int32(dest) {
		t.Fatalf("resolve span at server %d for node %d, want %d/%d",
			last.Server, last.Node, owner[dest], dest)
	}
	for _, sp := range res.Trace[:len(res.Trace)-1] {
		switch sp.Reason {
		case telemetry.HopParent, telemetry.HopChild, telemetry.HopCache, telemetry.HopReplica:
		default:
			t.Fatalf("intermediate span has non-forwarding reason %s: %+v", sp.Reason, sp)
		}
	}

	// Complete is called before Lookup returns, so the store is settled.
	rec, ok := nodes[0].Traces().Get(res.TraceID)
	if !ok {
		t.Fatal("trace store has no record for the lookup")
	}
	if !rec.Done || !rec.OK || rec.Hops != res.Hops {
		t.Fatalf("store record out of sync with result: %+v", rec)
	}
	if rec.Truncated() {
		t.Fatalf("completed trace reads as truncated: %+v", rec.Spans)
	}
	if len(rec.Spans) != len(res.Trace) {
		t.Fatalf("store kept %d spans, result carried %d", len(rec.Spans), len(res.Trace))
	}
}

// TestTCPLookupTraceTruncatedOnDrop injects a fault that swallows the query
// as it leaves the initiator: the lookup times out, but the out-of-band span
// report from hop 0 has already reached the initiator's trace store, leaving
// a partial record that reads as truncated — the observable a dropped query
// is supposed to leave behind.
func TestTCPLookupTraceTruncatedOnDrop(t *testing.T) {
	tree := testTree()
	owner := Assign(tree, 2, 7)
	ownerOf := func(nd core.NodeID) core.ServerID { return owner[nd] }
	ownedBy := make([][]core.NodeID, 2)
	for nd, s := range owner {
		ownedBy[s] = append(ownedBy[s], core.NodeID(nd))
	}
	addrs := map[core.ServerID]string{}
	transports := make([]*TCPTransport, 2)
	for i := 0; i < 2; i++ {
		tr, err := NewTCPTransportOpts(core.ServerID(i), "127.0.0.1:0", addrs, TCPTransportOptions{})
		if err != nil {
			t.Fatal(err)
		}
		transports[i] = tr
		addrs[core.ServerID(i)] = tr.Addr()
	}
	fault := NewFaultTransport(transports[0], FaultOptions{Seed: 1})
	fault.SetDropFilter(func(from, to core.ServerID, m core.Message) bool {
		_, isQuery := m.(*core.QueryMsg)
		return isQuery // queries never leave server 0; control traffic flows
	})
	nodes := make([]*Node, 2)
	for i := 0; i < 2; i++ {
		n, err := NewNode(core.ServerID(i), tree, ownedBy[i], ownerOf, Options{Seed: uint64(i) + 1})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	StartTCPNodeVia(nodes[0], transports[0], fault)
	StartTCPNode(nodes[1], transports[1])
	t.Cleanup(func() {
		for i := range nodes {
			nodes[i].Stop()
			transports[i].Close()
		}
	})

	dest := ownedByServer(t, owner, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()
	if _, err := nodes[0].Lookup(ctx, dest); err == nil {
		t.Fatal("lookup completed despite the query being dropped")
	}
	if fault.Stats().FaultDrops == 0 {
		t.Fatal("fault transport never dropped the query")
	}

	// Hop 0's span self-report bypasses the transport but still crosses the
	// control channel asynchronously; wait for it.
	store := nodes[0].Traces()
	waitFor(t, 2*time.Second, func() bool { return store.Len() > 0 })
	ids := store.IDs()
	if len(ids) != 1 {
		t.Fatalf("trace store holds %d records, want 1", len(ids))
	}
	rec, ok := store.Get(ids[0])
	if !ok {
		t.Fatal("trace vanished from store")
	}
	if rec.Done {
		t.Fatalf("trace marked done but no result ever arrived: %+v", rec)
	}
	if !rec.Truncated() {
		t.Fatal("dropped lookup's trace should read as truncated")
	}
	if len(rec.Spans) == 0 {
		t.Fatal("truncated trace kept no spans; hop 0's report was lost")
	}
	sp := rec.Spans[0]
	if sp.Seq != 0 || sp.Server != 0 {
		t.Fatalf("surviving span should be hop 0 at the initiator: %+v", sp)
	}
	switch sp.Reason {
	case telemetry.HopParent, telemetry.HopChild, telemetry.HopCache, telemetry.HopReplica:
	default:
		t.Fatalf("hop 0 should record a forwarding reason, got %s", sp.Reason)
	}
}
