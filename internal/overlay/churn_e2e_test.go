package overlay

import (
	"context"
	"sync"
	"testing"
	"time"

	"terradir/internal/core"
	"terradir/internal/membership"
)

// churnProto is the accelerated failure-detector tuning for the e2e test:
// fast enough that detection, handoff and rejoin all fit in seconds, slow
// enough that the race detector's scheduling drag doesn't cause false
// suspicion on a loopback network.
func churnProto(i int) membership.Options {
	return membership.Options{
		ProbeInterval:       50 * time.Millisecond,
		ProbeTimeout:        25 * time.Millisecond,
		SuspicionTimeout:    250 * time.Millisecond,
		DeadReprobeInterval: 200 * time.Millisecond,
		Seed:                uint64(i)*31 + 1,
	}
}

// TestTCPChurnE2E is the full dynamic-membership scenario over real sockets:
// a 5-peer TCP overlay under workload loses one peer, the survivors detect
// the death by gossip, hand its partition to the ring successor, purge stale
// references, keep resolving lookups, and later readmit the peer when it
// rejoins via the bootstrap path — without restarting the cluster.
func TestTCPChurnE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("churn e2e needs multiple real-time suspicion timeouts")
	}
	const n = 5
	const victim = core.ServerID(2)
	successor := core.ServerID(3) // first alive in ring order after the victim
	tree := testTree()
	owner := Assign(tree, n, 7)
	ownerOf := func(nd core.NodeID) core.ServerID { return owner[nd] }
	ownedBy := make([][]core.NodeID, n)
	for nd, s := range owner {
		ownedBy[s] = append(ownedBy[s], core.NodeID(nd))
	}
	victimNode := ownedByServer(t, owner, victim)

	// Every transport gets its OWN address map: membership rewrites addresses
	// at runtime (SetAddr), so the map must not be shared across peers.
	transports := make([]*TCPTransport, n)
	for i := 0; i < n; i++ {
		tr, err := NewTCPTransportOpts(core.ServerID(i), "127.0.0.1:0",
			map[core.ServerID]string{}, TCPTransportOptions{Seed: uint64(i) + 1})
		if err != nil {
			t.Fatal(err)
		}
		transports[i] = tr
	}
	addrOf := make(map[core.ServerID]string, n)
	for i := 0; i < n; i++ {
		addrOf[core.ServerID(i)] = transports[i].Addr()
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			transports[i].SetAddr(core.ServerID(j), addrOf[core.ServerID(j)])
		}
	}
	peersCopy := func() map[core.ServerID]string {
		m := make(map[core.ServerID]string, n)
		for k, v := range addrOf {
			m[k] = v
		}
		return m
	}

	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		nd, err := NewNode(core.ServerID(i), tree, ownedBy[i], ownerOf, Options{
			Seed:   uint64(i) + 1,
			Shards: *testShards,
			Membership: &MembershipOptions{
				Protocol: churnProto(i),
				Servers:  n,
				SelfAddr: transports[i].Addr(),
				Peers:    peersCopy(),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
		StartTCPNode(nd, transports[i])
	}
	defer func() {
		for i := range nodes {
			nodes[i].Stop()
			transports[i].Close()
		}
	}()

	survivors := []int{0, 1, 3, 4}
	wait := func(d time.Duration, what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(d)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Fatalf("timed out after %v waiting for %s", d, what)
	}
	stateAt := func(i int, id core.ServerID) membership.State {
		st, _ := nodes[i].Membership().StateOf(id)
		return st
	}
	lookups := func(count int, sources []int) (ok int) {
		for r := 0; r < count; r++ {
			src := sources[r%len(sources)]
			dest := core.NodeID((r*7919 + 13) % tree.Len())
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			res, err := nodes[src].Lookup(ctx, dest)
			cancel()
			if err == nil && res.OK {
				ok++
			}
		}
		return ok
	}

	// Phase 1: static convergence, then warm the caches with traffic.
	wait(10*time.Second, "initial all-alive convergence", func() bool {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if stateAt(i, core.ServerID(j)) != membership.Alive {
					return false
				}
			}
		}
		return true
	})
	if got := lookups(100, []int{0, 1, 2, 3, 4}); got < 100 {
		t.Fatalf("healthy cluster resolved only %d/100 lookups", got)
	}

	// Phase 2: crash the victim mid-workload.
	stopLoad := make(chan struct{})
	var loadWG sync.WaitGroup
	loadWG.Add(1)
	go func() {
		defer loadWG.Done()
		for r := 0; ; r++ {
			select {
			case <-stopLoad:
				return
			default:
			}
			src := survivors[r%len(survivors)]
			dest := core.NodeID((r*31 + 5) % tree.Len())
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_, _ = nodes[src].Lookup(ctx, dest) // failures expected during churn
			cancel()
		}
	}()

	crashed := time.Now()
	nodes[victim].Stop()
	transports[victim].Close()

	wait(10*time.Second, "survivors to declare the victim dead", func() bool {
		for _, i := range survivors {
			if stateAt(i, victim) != membership.Dead {
				return false
			}
		}
		return true
	})
	detection := time.Since(crashed)
	t.Logf("death detected on all survivors after %v", detection)
	close(stopLoad)
	loadWG.Wait()

	// Phase 3: handoff and soft-state repair.
	for _, i := range survivors {
		if got := nodes[i].Ownership().Owner(victimNode); got != successor {
			t.Errorf("server %d routes node %d to %d, want successor %d",
				i, victimNode, got, successor)
		}
		var purges int64
		if !nodes[i].Inspect(func(p *core.Peer) { purges += p.Stats.ServerPurges }) {
			t.Fatalf("server %d stopped unexpectedly", i)
		}
		if purges == 0 {
			t.Errorf("server %d never purged the dead server's soft state", i)
		}
	}
	var adopted int
	nodes[successor].Inspect(func(p *core.Peer) { adopted += p.AdoptedCount() })
	if adopted == 0 {
		t.Error("ring successor adopted none of the dead server's partition")
	}

	// Phase 4: the converged cluster must still resolve ≥99% of lookups.
	const post = 300
	if ok := lookups(post, survivors); ok*100 < post*99 {
		t.Fatalf("post-churn success rate %d/%d, want ≥99%%", ok, post)
	}

	// Phase 5: the victim rejoins as a fresh process via the bootstrap path —
	// no static peer list, no cluster restart, a brand-new port.
	freshTr, err := NewTCPTransportOpts(victim, "127.0.0.1:0",
		map[core.ServerID]string{}, TCPTransportOptions{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewNode(victim, tree, ownedBy[victim], ownerOf, Options{
		Seed:   99,
		Shards: *testShards,
		Membership: &MembershipOptions{
			Protocol: churnProto(int(victim) + 50),
			Servers:  n,
			SelfAddr: freshTr.Addr(),
			JoinAddr: transports[0].Addr(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	nodes[victim], transports[victim] = fresh, freshTr
	StartTCPNode(fresh, freshTr)

	wait(15*time.Second, "survivors to readmit the rejoined peer", func() bool {
		if !fresh.Membership().Joined() {
			return false
		}
		for _, i := range survivors {
			if stateAt(i, victim) != membership.Alive {
				return false
			}
		}
		return true
	})
	// Ownership reverts to the base assignment and the successor lets go.
	wait(10*time.Second, "ownership to revert to the rejoined peer", func() bool {
		for _, i := range survivors {
			if nodes[i].Ownership().Owner(victimNode) != victim {
				return false
			}
		}
		var stillAdopted int
		nodes[successor].Inspect(func(p *core.Peer) { stillAdopted += p.AdoptedCount() })
		return stillAdopted == 0
	})
	// The joiner was warmed up with replica advertisements from the survivors.
	wait(10*time.Second, "the joiner to absorb warmup state", func() bool {
		warm := false
		fresh.Inspect(func(p *core.Peer) { warm = warm || p.CacheLen() > 0 || p.ReplicaCount() > 0 })
		return warm
	})

	// Phase 6: whole cluster (including the rejoined peer) serves traffic.
	const final = 200
	if ok := lookups(final, []int{0, 1, 2, 3, 4}); ok*100 < final*99 {
		t.Fatalf("post-rejoin success rate %d/%d, want ≥99%%", ok, final)
	}
}
