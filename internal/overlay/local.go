package overlay

import (
	"context"
	"fmt"
	"time"

	"terradir/internal/core"
	"terradir/internal/membership"
	"terradir/internal/namespace"
)

// LocalTransport delivers messages between nodes of one process by direct
// inbox injection, optionally after a simulated network delay. Message
// values follow the core ownership-transfer conventions, so no copying is
// needed between goroutines.
type LocalTransport struct {
	nodes []*Node
	delay time.Duration
}

// NewLocalTransport creates a transport over the given (positionally
// ID-ordered) nodes with an optional per-message delay.
func NewLocalTransport(delay time.Duration) *LocalTransport {
	return &LocalTransport{delay: delay}
}

// Register adds a node; nodes must be registered in server-ID order.
func (t *LocalTransport) Register(n *Node) { t.nodes = append(t.nodes, n) }

// Send implements Transport.
func (t *LocalTransport) Send(from, to core.ServerID, m core.Message) error {
	if int(to) < 0 || int(to) >= len(t.nodes) {
		return fmt.Errorf("overlay: no such server %d", to)
	}
	dst := t.nodes[to]
	if t.delay <= 0 {
		dst.Deliver(m)
		return nil
	}
	time.AfterFunc(t.delay, func() { dst.Deliver(m) })
	return nil
}

// Close implements Transport.
func (t *LocalTransport) Close() error { return nil }

// LocalCluster is an in-process live overlay: one goroutine per server over
// a LocalTransport. It is the quickest way to run the protocol for real
// (examples, integration tests) without sockets.
type LocalCluster struct {
	tree      *namespace.Tree
	nodes     []*Node
	owner     []core.ServerID
	transport *LocalTransport
	fault     *FaultTransport
}

// LocalClusterOptions configures NewLocalCluster.
type LocalClusterOptions struct {
	Servers  int
	Seed     uint64
	NetDelay time.Duration
	Node     Options
	// Fault, when non-nil, wraps the cluster's transport in a FaultTransport
	// with these options (retrieve it with Fault for runtime fault control).
	Fault *FaultOptions
	// Membership, when non-nil, runs the gossip membership subsystem on every
	// node with these protocol options (all servers statically seeded as the
	// initial member set). Combine with Fault to exercise failure detection
	// and ownership handoff in-process.
	Membership *membership.Options
}

// NewLocalCluster builds and starts a local overlay over the namespace.
func NewLocalCluster(tree *namespace.Tree, opts LocalClusterOptions) (*LocalCluster, error) {
	if opts.Servers < 1 {
		return nil, fmt.Errorf("overlay: Servers = %d", opts.Servers)
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	c := &LocalCluster{
		tree:      tree,
		owner:     Assign(tree, opts.Servers, opts.Seed),
		transport: NewLocalTransport(opts.NetDelay),
	}
	var send Transport = c.transport
	if opts.Fault != nil {
		c.fault = NewFaultTransport(c.transport, *opts.Fault)
		send = c.fault
	}
	ownerOf := func(nd core.NodeID) core.ServerID { return c.owner[nd] }
	ownedBy := make([][]core.NodeID, opts.Servers)
	for nd, s := range c.owner {
		ownedBy[s] = append(ownedBy[s], core.NodeID(nd))
	}
	var staticPeers map[core.ServerID]string
	if opts.Membership != nil {
		staticPeers = make(map[core.ServerID]string, opts.Servers)
		for i := 0; i < opts.Servers; i++ {
			staticPeers[core.ServerID(i)] = "" // LocalTransport routes by ID
		}
	}
	for i := 0; i < opts.Servers; i++ {
		nodeOpts := opts.Node
		nodeOpts.Seed = opts.Seed + uint64(i)*7919
		if opts.Membership != nil {
			proto := *opts.Membership
			proto.Seed = opts.Seed + uint64(i)*104729 + 1
			nodeOpts.Membership = &MembershipOptions{
				Protocol: proto,
				Servers:  opts.Servers,
				Peers:    staticPeers,
			}
		}
		n, err := NewNode(core.ServerID(i), tree, ownedBy[i], ownerOf, nodeOpts)
		if err != nil {
			c.StopAll()
			return nil, err
		}
		n.SetTransport(send)
		c.nodes = append(c.nodes, n)
		c.transport.Register(n)
	}
	for _, n := range c.nodes {
		n.Start()
	}
	return c, nil
}

// Tree returns the namespace.
func (c *LocalCluster) Tree() *namespace.Tree { return c.tree }

// Servers returns the server count.
func (c *LocalCluster) Servers() int { return len(c.nodes) }

// Node returns server i.
func (c *LocalCluster) Node(i int) *Node { return c.nodes[i] }

// OwnerOf returns a node's initial owner.
func (c *LocalCluster) OwnerOf(nd core.NodeID) core.ServerID { return c.owner[nd] }

// Fault returns the cluster's fault-injection wrapper, or nil when the
// cluster was built without LocalClusterOptions.Fault.
func (c *LocalCluster) Fault() *FaultTransport { return c.fault }

// KillServer fail-stops server i: its event loop halts and (when the cluster
// has a FaultTransport) all messages to and from it are dropped, mirroring
// the simulator's FailServer. Soft state on the survivors is untouched and
// must route around the loss.
func (c *LocalCluster) KillServer(i int) {
	if i < 0 || i >= len(c.nodes) {
		return
	}
	if c.fault != nil {
		c.fault.Crash(core.ServerID(i))
	}
	c.nodes[i].Stop()
}

// Lookup resolves dest starting from the given source server.
func (c *LocalCluster) Lookup(ctx context.Context, source int, dest core.NodeID) (LookupResult, error) {
	if source < 0 || source >= len(c.nodes) {
		return LookupResult{}, fmt.Errorf("overlay: no such server %d", source)
	}
	return c.nodes[source].Lookup(ctx, dest)
}

// LookupName resolves a fully qualified name from the given source server.
func (c *LocalCluster) LookupName(ctx context.Context, source int, name string) (LookupResult, error) {
	if source < 0 || source >= len(c.nodes) {
		return LookupResult{}, fmt.Errorf("overlay: no such server %d", source)
	}
	return c.nodes[source].LookupName(ctx, name)
}

// StopAll shuts every node down.
func (c *LocalCluster) StopAll() {
	for _, n := range c.nodes {
		if n != nil {
			n.Stop()
		}
	}
}

// TotalReplicas sums live replicas across all (stopped or idle) nodes.
// Intended for post-run inspection; while traffic is flowing the value is a
// moving snapshot.
func (c *LocalCluster) TotalReplicas() int {
	total := 0
	for _, n := range c.nodes {
		total += n.Peer().ReplicaCount()
	}
	return total
}
