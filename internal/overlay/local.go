package overlay

import (
	"context"
	"fmt"
	"sync"
	"time"

	"terradir/internal/core"
	"terradir/internal/membership"
	"terradir/internal/namespace"
)

// LocalTransport delivers messages between nodes of one process by direct
// inbox injection, optionally after a simulated network delay. Message
// values follow the core ownership-transfer conventions, so no copying is
// needed between goroutines. Delayed delivery runs on one shared
// delay-queue goroutine rather than one time.AfterFunc timer per message:
// the delay is constant, so arrival order is due-time order and a FIFO
// plus a single timer replaces per-message timer allocations (and their
// runtime-timer-heap churn) entirely.
type LocalTransport struct {
	nodes []*Node
	delay time.Duration

	mu         sync.Mutex
	pending    []delayedMsg
	scratch    []delayedMsg   // reused due-batch buffer (delay goroutine only)
	msgScratch []core.Message // reused same-dst run buffer (delay goroutine only)
	closed     bool
	wake       chan struct{}
	stop       chan struct{}
	done       chan struct{}
}

type delayedMsg struct {
	due time.Time
	dst *Node
	m   core.Message
}

// NewLocalTransport creates a transport over the given (positionally
// ID-ordered) nodes with an optional per-message delay.
func NewLocalTransport(delay time.Duration) *LocalTransport {
	t := &LocalTransport{
		delay: delay,
		wake:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	if delay > 0 {
		go t.runDelay()
	} else {
		close(t.done)
	}
	return t
}

// Register adds a node; nodes must be registered in server-ID order.
func (t *LocalTransport) Register(n *Node) { t.nodes = append(t.nodes, n) }

// Send implements Transport.
func (t *LocalTransport) Send(from, to core.ServerID, m core.Message) error {
	if int(to) < 0 || int(to) >= len(t.nodes) {
		return fmt.Errorf("overlay: no such server %d", to)
	}
	dst := t.nodes[to]
	if t.delay <= 0 {
		dst.Deliver(m)
		return nil
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil // in-flight loss after close; soft state tolerates it
	}
	t.pending = append(t.pending, delayedMsg{due: time.Now().Add(t.delay), dst: dst, m: m})
	t.mu.Unlock()
	select {
	case t.wake <- struct{}{}:
	default:
	}
	return nil
}

// runDelay is the shared delivery goroutine: it sleeps until the queue head
// is due, then delivers every due message. The constant per-message delay
// makes the FIFO due-time-ordered, so no priority queue is needed — and a
// Send while the timer sleeps can only append a later due time, so the
// sleep never needs to be shortened.
func (t *LocalTransport) runDelay() {
	defer close(t.done)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		t.mu.Lock()
		if len(t.pending) == 0 {
			t.mu.Unlock()
			select {
			case <-t.wake:
				continue
			case <-t.stop:
				return
			}
		}
		head := t.pending[0].due
		t.mu.Unlock()
		if wait := time.Until(head); wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-t.stop:
				timer.Stop()
				return
			}
		}
		t.mu.Lock()
		now := time.Now()
		n := 0
		for n < len(t.pending) && !t.pending[n].due.After(now) {
			n++
		}
		batch := append(t.scratch[:0], t.pending[:n]...)
		rest := copy(t.pending, t.pending[n:])
		for i := rest; i < len(t.pending); i++ {
			t.pending[i] = delayedMsg{}
		}
		t.pending = t.pending[:rest]
		t.mu.Unlock()
		// Deliver consecutive same-destination runs as one batch: each run
		// shares a single wall-clock read and inbox wakeup on the receiving
		// node, matching the TCP read path's batch delivery.
		msgs := t.msgScratch
		for start := 0; start < len(batch); {
			dst := batch[start].dst
			msgs = msgs[:0]
			end := start
			for end < len(batch) && batch[end].dst == dst {
				msgs = append(msgs, batch[end].m)
				end++
			}
			dst.DeliverBatch(msgs)
			start = end
		}
		msgs = msgs[:cap(msgs)]
		for i := range msgs { // drop message references held by the scratch
			msgs[i] = nil
		}
		t.msgScratch = msgs[:0]
		for i := range batch {
			batch[i] = delayedMsg{}
		}
		t.scratch = batch[:0]
	}
}

// Close implements Transport: it stops the delay goroutine (dropping any
// undelivered delayed messages, which soft state tolerates). Idempotent.
func (t *LocalTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	close(t.stop)
	<-t.done
	return nil
}

// LocalCluster is an in-process live overlay: one goroutine per server over
// a LocalTransport. It is the quickest way to run the protocol for real
// (examples, integration tests) without sockets.
type LocalCluster struct {
	tree      *namespace.Tree
	nodes     []*Node
	owner     []core.ServerID
	transport *LocalTransport
	fault     *FaultTransport
}

// LocalClusterOptions configures NewLocalCluster.
type LocalClusterOptions struct {
	Servers  int
	Seed     uint64
	NetDelay time.Duration
	Node     Options
	// Fault, when non-nil, wraps the cluster's transport in a FaultTransport
	// with these options (retrieve it with Fault for runtime fault control).
	Fault *FaultOptions
	// Membership, when non-nil, runs the gossip membership subsystem on every
	// node with these protocol options (all servers statically seeded as the
	// initial member set). Combine with Fault to exercise failure detection
	// and ownership handoff in-process.
	Membership *membership.Options
}

// NewLocalCluster builds and starts a local overlay over the namespace.
func NewLocalCluster(tree *namespace.Tree, opts LocalClusterOptions) (*LocalCluster, error) {
	if opts.Servers < 1 {
		return nil, fmt.Errorf("overlay: Servers = %d", opts.Servers)
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	c := &LocalCluster{
		tree:      tree,
		owner:     Assign(tree, opts.Servers, opts.Seed),
		transport: NewLocalTransport(opts.NetDelay),
	}
	var send Transport = c.transport
	if opts.Fault != nil {
		c.fault = NewFaultTransport(c.transport, *opts.Fault)
		send = c.fault
	}
	ownerOf := func(nd core.NodeID) core.ServerID { return c.owner[nd] }
	ownedBy := make([][]core.NodeID, opts.Servers)
	for nd, s := range c.owner {
		ownedBy[s] = append(ownedBy[s], core.NodeID(nd))
	}
	var staticPeers map[core.ServerID]string
	if opts.Membership != nil {
		staticPeers = make(map[core.ServerID]string, opts.Servers)
		for i := 0; i < opts.Servers; i++ {
			staticPeers[core.ServerID(i)] = "" // LocalTransport routes by ID
		}
	}
	for i := 0; i < opts.Servers; i++ {
		nodeOpts := opts.Node
		nodeOpts.Seed = opts.Seed + uint64(i)*7919
		if opts.Membership != nil {
			proto := *opts.Membership
			proto.Seed = opts.Seed + uint64(i)*104729 + 1
			nodeOpts.Membership = &MembershipOptions{
				Protocol: proto,
				Servers:  opts.Servers,
				Peers:    staticPeers,
			}
		}
		n, err := NewNode(core.ServerID(i), tree, ownedBy[i], ownerOf, nodeOpts)
		if err != nil {
			c.StopAll()
			return nil, err
		}
		n.SetTransport(send)
		c.nodes = append(c.nodes, n)
		c.transport.Register(n)
	}
	for _, n := range c.nodes {
		n.Start()
	}
	return c, nil
}

// Tree returns the namespace.
func (c *LocalCluster) Tree() *namespace.Tree { return c.tree }

// Servers returns the server count.
func (c *LocalCluster) Servers() int { return len(c.nodes) }

// Node returns server i.
func (c *LocalCluster) Node(i int) *Node { return c.nodes[i] }

// OwnerOf returns a node's initial owner.
func (c *LocalCluster) OwnerOf(nd core.NodeID) core.ServerID { return c.owner[nd] }

// Fault returns the cluster's fault-injection wrapper, or nil when the
// cluster was built without LocalClusterOptions.Fault.
func (c *LocalCluster) Fault() *FaultTransport { return c.fault }

// KillServer fail-stops server i: its event loop halts and (when the cluster
// has a FaultTransport) all messages to and from it are dropped, mirroring
// the simulator's FailServer. Soft state on the survivors is untouched and
// must route around the loss.
func (c *LocalCluster) KillServer(i int) {
	if i < 0 || i >= len(c.nodes) {
		return
	}
	if c.fault != nil {
		c.fault.Crash(core.ServerID(i))
	}
	c.nodes[i].Stop()
}

// Lookup resolves dest starting from the given source server.
func (c *LocalCluster) Lookup(ctx context.Context, source int, dest core.NodeID) (LookupResult, error) {
	if source < 0 || source >= len(c.nodes) {
		return LookupResult{}, fmt.Errorf("overlay: no such server %d", source)
	}
	return c.nodes[source].Lookup(ctx, dest)
}

// LookupName resolves a fully qualified name from the given source server.
func (c *LocalCluster) LookupName(ctx context.Context, source int, name string) (LookupResult, error) {
	if source < 0 || source >= len(c.nodes) {
		return LookupResult{}, fmt.Errorf("overlay: no such server %d", source)
	}
	return c.nodes[source].LookupName(ctx, name)
}

// StopAll shuts every node down and stops the transport's delay goroutine.
func (c *LocalCluster) StopAll() {
	for _, n := range c.nodes {
		if n != nil {
			n.Stop()
		}
	}
	c.transport.Close()
}

// TotalReplicas sums live replicas across all (stopped or idle) nodes.
// Intended for post-run inspection; while traffic is flowing the value is a
// moving snapshot.
func (c *LocalCluster) TotalReplicas() int {
	total := 0
	for _, n := range c.nodes {
		total += n.ReplicaCount()
	}
	return total
}
