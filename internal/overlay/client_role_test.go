package overlay

import (
	"fmt"
	"testing"
	"time"

	"terradir/internal/core"
)

// startClientPeerPair boots one server-role transport whose handler echoes
// every query back to its source as a result, plus one client-role transport
// that funnels received messages into the returned channel.
func startClientPeerPair(t *testing.T) (peerTr, clientTr *TCPTransport, got chan core.Message) {
	t.Helper()
	peer, err := NewTCPTransportOpts(0, "127.0.0.1:0", map[core.ServerID]string{}, TCPTransportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	peer.ServeFunc(func(m core.Message) {
		if q, ok := m.(*core.QueryMsg); ok {
			res := &core.ResultMsg{QueryID: q.QueryID, Dest: q.Dest, OK: true, Piggy: core.Piggyback{From: 0}}
			if err := peer.Send(0, q.Source, res); err != nil {
				t.Logf("peer reply: %v", err)
			}
		}
	})

	clientID := core.ClientID(0)
	client, err := NewTCPTransportOpts(clientID, "127.0.0.1:0",
		map[core.ServerID]string{0: peer.Addr()}, TCPTransportOptions{ClientRole: true})
	if err != nil {
		t.Fatal(err)
	}
	got = make(chan core.Message, 64)
	ch := got
	client.ServeFunc(func(m core.Message) { ch <- m })
	t.Cleanup(func() {
		client.Close()
		peer.Close()
	})
	return peer, client, got
}

// TestClientRoleReplyRoute: a client-role transport dials a peer, introduces
// itself with a hello, sends queries, and receives results routed back over
// the same connection — the peer never dials the client.
func TestClientRoleReplyRoute(t *testing.T) {
	_, client, got := startClientPeerPair(t)
	clientID := core.ClientID(0)

	for i := uint64(1); i <= 5; i++ {
		q := &core.QueryMsg{QueryID: i, Dest: 7, Source: clientID, Piggy: core.Piggyback{From: core.NoServer}}
		if err := client.Send(clientID, 0, q); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	seen := map[uint64]bool{}
	deadline := time.After(5 * time.Second)
	for len(seen) < 5 {
		select {
		case m := <-got:
			res, ok := m.(*core.ResultMsg)
			if !ok {
				t.Fatalf("client received %T, want *ResultMsg", m)
			}
			if !res.OK || res.Dest != 7 {
				t.Fatalf("bad result: %+v", res)
			}
			seen[res.QueryID] = true
		case <-deadline:
			t.Fatalf("timed out; got %d/5 results", len(seen))
		}
	}
}

// TestClientRoleRejectsPeerID: a client-role transport must be constructed
// with a reserved client ID — a peer ID would collide with overlay routing.
func TestClientRoleRejectsPeerID(t *testing.T) {
	_, err := NewTCPTransportOpts(3, "127.0.0.1:0", map[core.ServerID]string{}, TCPTransportOptions{ClientRole: true})
	if err == nil {
		t.Fatal("want error for peer ID in client role")
	}
}

// TestClientDisconnectUnregisters: when the client goes away, the peer's
// reply route is torn down and Sends to the client fail fast instead of
// queueing into a dead sender.
func TestClientDisconnectUnregisters(t *testing.T) {
	peer, client, got := startClientPeerPair(t)
	clientID := core.ClientID(0)

	q := &core.QueryMsg{QueryID: 1, Dest: 7, Source: clientID, Piggy: core.Piggyback{From: core.NoServer}}
	if err := client.Send(clientID, 0, q); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("no result before disconnect")
	}

	client.Close()

	// The peer notices the dead connection via its read loop; the registered
	// sender retires and unregisters. Poll until Send reports the client gone.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := peer.Send(0, clientID, &core.ResultMsg{QueryID: 2, OK: true})
		if err != nil {
			if want := fmt.Sprintf("client %d not connected", clientID); err.Error() != "overlay: "+want {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("peer still routing to disconnected client")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClientReconnectSupersedes: a second hello from the same client ID (a
// reconnect) replaces the old reply route, and results flow on the new
// connection.
func TestClientReconnectSupersedes(t *testing.T) {
	peer, client, got := startClientPeerPair(t)
	clientID := core.ClientID(0)

	send := func(id uint64, tr *TCPTransport) {
		t.Helper()
		q := &core.QueryMsg{QueryID: id, Dest: 7, Source: clientID, Piggy: core.Piggyback{From: core.NoServer}}
		if err := tr.Send(clientID, 0, q); err != nil {
			t.Fatal(err)
		}
	}
	send(1, client)
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("no result on first connection")
	}
	client.Close()

	client2, err := NewTCPTransportOpts(clientID, "127.0.0.1:0",
		map[core.ServerID]string{0: peer.Addr()}, TCPTransportOptions{ClientRole: true})
	if err != nil {
		t.Fatal(err)
	}
	defer client2.Close()
	got2 := make(chan core.Message, 8)
	client2.ServeFunc(func(m core.Message) { got2 <- m })

	send(2, client2)
	select {
	case m := <-got2:
		if res := m.(*core.ResultMsg); res.QueryID != 2 {
			t.Fatalf("wrong result on reconnect: %+v", res)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no result on reconnected client")
	}
}
