package overlay

import (
	"fmt"

	"terradir/internal/core"
	"terradir/internal/membership"
)

// MembershipOptions enables the gossip membership subsystem on a node. With
// it, the node runs a SWIM-style failure detector over its transport, routes
// by a versioned ownership table instead of the static assignment, purges
// soft state naming dead servers, adopts dead peers' partitions when it is
// the designated ring successor, and admits (and warms up) joining servers.
type MembershipOptions struct {
	// Protocol tunes the probe/suspicion cycle.
	Protocol membership.Options
	// Servers is the deployment's server-ID space size. Required.
	Servers int
	// SelfAddr is the address other peers can dial this node's transport on;
	// it disseminates by gossip so joiners become reachable. May be empty for
	// transports that route by ID alone (LocalTransport).
	SelfAddr string
	// Peers seeds the member table with the statically known deployment
	// (addresses may be empty). Leave nil when bootstrapping via JoinAddr.
	Peers map[core.ServerID]string
	// JoinAddr bootstraps membership off one live peer instead of Peers
	// (requires a transport with SendTo, i.e. TCPTransport).
	JoinAddr string
	// WarmupEntries bounds the hosted-map entries streamed to a newly
	// admitted member. 0 means the default 32; negative disables warmup.
	WarmupEntries int
}

// AddrSetter is implemented by transports that can learn peer addresses at
// runtime (TCPTransport); the membership subsystem uses it so joiners and
// restarted peers become dialable without reconstruction.
type AddrSetter interface {
	SetAddr(id core.ServerID, addr string)
}

// AddrSender is implemented by transports that can send to an explicit
// address before the destination's server-ID→address mapping is known — the
// join bootstrap path.
type AddrSender interface {
	SendTo(addr string, m core.Message) error
}

const defaultWarmupEntries = 32

// setupOwnership builds the node's versioned ownership table from the static
// assignment (called from NewNode when membership is enabled).
func (n *Node) setupOwnership(ownerOf func(core.NodeID) core.ServerID) {
	base := make([]core.ServerID, n.tree.Len())
	for i := range base {
		base[i] = ownerOf(core.NodeID(i))
	}
	n.ownership = membership.NewOwnershipTable(base, n.opts.Membership.Servers)
	n.reg.GaugeFunc("terradir_ownership_version",
		"Version of the node's ownership table (bumped per liveness flip).",
		func() float64 { return float64(n.ownership.Version()) },
		"server", fmt.Sprint(n.id))
}

// startMembership launches the failure detector (called from Start, after
// the transport is wired).
func (n *Node) startMembership() {
	mo := n.opts.Membership
	cfg := membership.Config{
		Self:     n.id,
		SelfAddr: mo.SelfAddr,
		Peers:    mo.Peers,
		JoinAddr: mo.JoinAddr,
		Options:  mo.Protocol,
		Registry: n.reg,
		Labels:   []string{"server", fmt.Sprint(n.id)},
		Send: func(to core.ServerID, m *core.MembershipMsg) {
			_ = n.transport.Send(n.id, to, m) // soft state: losses tolerated
		},
		OnEvent: func(ev membership.Event) {
			// Funnel into the event loop: the peer is single-threaded. Marked
			// learn — purges and handoffs must reach the routing snapshot
			// before the fast path serves another query.
			n.learnSeq.Add(1)
			select {
			case n.control <- envelope{fn: func() { n.handleMembershipEvent(ev) }, learn: true}:
			case <-n.stop:
			}
		},
	}
	if as, ok := n.transport.(AddrSetter); ok {
		cfg.OnAddr = as.SetAddr
	}
	if ds, ok := n.transport.(AddrSender); ok {
		cfg.SendAddr = func(addr string, m *core.MembershipMsg) error {
			return ds.SendTo(addr, m)
		}
	}
	n.membership = membership.New(cfg)
	n.membership.Start()
}

// handleMembershipEvent runs in the node's event loop: it folds a liveness
// transition into the ownership table, repairs soft state, and applies any
// partition handoff that lands on (or leaves) this server.
func (n *Node) handleMembershipEvent(ev membership.Event) {
	if n.ownership == nil || ev.ID == n.id {
		return
	}
	switch ev.State {
	case membership.Dead:
		changes := n.ownership.SetAlive(ev.ID, false)
		// Soft-state repair: drop every cached/replicated reference to the
		// dead server, reseeding emptied maps from the post-handoff owner.
		// The result cache may hold maps pointing at the dead server too.
		n.peer.PurgeServer(ev.ID, n.ownership.Owner)
		n.forgetResults()
		n.applyReassignments(changes)
	case membership.Alive:
		changes := n.ownership.SetAlive(ev.ID, true)
		n.applyReassignments(changes)
		if ev.Joined || ev.Prev == membership.Dead {
			// A newly admitted or returned member starts cold: stream it a
			// bounded slice of our hottest hosted maps (which also announces
			// our own owned-partition claim to a joiner).
			n.sendWarmup(ev.ID)
		}
	}
}

// applyReassignments adopts or releases provisional ownership for every
// handoff that involves this server. Other servers' handoffs need no local
// action beyond the ownership table itself (routing consults it lazily).
func (n *Node) applyReassignments(changes []membership.Reassignment) {
	for _, ch := range changes {
		switch {
		case ch.To == n.id:
			n.peer.AdoptOwnership(ch.Node, n.ownership.Owner)
		case ch.From == n.id:
			n.peer.ReleaseOwnership(ch.Node)
		}
	}
}

// sendWarmup ships a warmup frame (bounded ranked hosted maps) to a member.
// Runs in the event loop; the peer state is read synchronously.
func (n *Node) sendWarmup(to core.ServerID) {
	if to == n.id {
		return
	}
	max := n.opts.Membership.WarmupEntries
	if max == 0 {
		max = defaultWarmupEntries
	}
	if max < 0 {
		return
	}
	entries := n.peer.BuildWarmup(max)
	if len(entries) == 0 {
		return
	}
	_ = n.transport.Send(n.id, to, &core.MembershipMsg{
		Kind: core.MembershipWarmup, From: n.id, Warmup: entries,
	})
}

// Membership returns the node's membership service (nil when the subsystem
// is disabled).
func (n *Node) Membership() *membership.Service { return n.membership }

// Ownership returns the node's versioned ownership table (nil when
// membership is disabled).
func (n *Node) Ownership() *membership.OwnershipTable { return n.ownership }
