package overlay

import (
	"fmt"

	"terradir/internal/core"
	"terradir/internal/membership"
)

// MembershipOptions enables the gossip membership subsystem on a node. With
// it, the node runs a SWIM-style failure detector over its transport, routes
// by a versioned ownership table instead of the static assignment, purges
// soft state naming dead servers, adopts dead peers' partitions when it is
// the designated ring successor, and admits (and warms up) joining servers.
type MembershipOptions struct {
	// Protocol tunes the probe/suspicion cycle.
	Protocol membership.Options
	// Servers is the deployment's server-ID space size. Required.
	Servers int
	// SelfAddr is the address other peers can dial this node's transport on;
	// it disseminates by gossip so joiners become reachable. May be empty for
	// transports that route by ID alone (LocalTransport).
	SelfAddr string
	// Peers seeds the member table with the statically known deployment
	// (addresses may be empty). Leave nil when bootstrapping via JoinAddr.
	Peers map[core.ServerID]string
	// JoinAddr bootstraps membership off one live peer instead of Peers
	// (requires a transport with SendTo, i.e. TCPTransport).
	JoinAddr string
	// WarmupEntries bounds the hosted-map entries streamed to a newly
	// admitted member. 0 means the default 32; negative disables warmup.
	WarmupEntries int
	// ReconcileEntries bounds the hosted entries streamed to a restarted
	// member during delta reconciliation (see PersistOptions). 0 means the
	// default 256; negative disables answering reconcile offers.
	ReconcileEntries int
}

// AddrSetter is implemented by transports that can learn peer addresses at
// runtime (TCPTransport); the membership subsystem uses it so joiners and
// restarted peers become dialable without reconstruction.
type AddrSetter interface {
	SetAddr(id core.ServerID, addr string)
}

// AddrSender is implemented by transports that can send to an explicit
// address before the destination's server-ID→address mapping is known — the
// join bootstrap path.
type AddrSender interface {
	SendTo(addr string, m core.Message) error
}

const (
	defaultWarmupEntries    = 32
	defaultReconcileEntries = 256
)

// setupOwnership builds the node's versioned ownership table from the static
// assignment (called from NewNode when membership is enabled).
func (n *Node) setupOwnership(ownerOf func(core.NodeID) core.ServerID) {
	base := make([]core.ServerID, n.tree.Len())
	for i := range base {
		base[i] = ownerOf(core.NodeID(i))
	}
	n.ownership = membership.NewOwnershipTable(base, n.opts.Membership.Servers)
	n.reg.GaugeFunc("terradir_ownership_version",
		"Version of the node's ownership table (bumped per liveness flip).",
		func() float64 { return float64(n.ownership.Version()) },
		"server", fmt.Sprint(n.id))
}

// startMembership launches the failure detector (called from Start, after
// the transport is wired).
func (n *Node) startMembership() {
	mo := n.opts.Membership
	cfg := membership.Config{
		Self:     n.id,
		SelfAddr: mo.SelfAddr,
		Peers:    mo.Peers,
		JoinAddr: mo.JoinAddr,
		Options:  mo.Protocol,
		Registry: n.reg,
		Labels:   []string{"server", fmt.Sprint(n.id)},
		Send: func(to core.ServerID, m *core.MembershipMsg) {
			_ = n.transport.Send(n.id, to, m) // soft state: losses tolerated
		},
		OnEvent: func(ev membership.Event) {
			// Runs on the membership goroutine; handleMembershipEvent parks
			// every shard loop (runOnShards) so purges and handoffs apply
			// atomically across the whole server's soft state.
			n.handleMembershipEvent(ev)
		},
	}
	if n.store != nil {
		// Incarnation bumps must hit the WAL before they gossip: a crashed
		// refutation that was seen by peers but not persisted would restart
		// us below the cluster's view of our own life.
		cfg.OnIncarnation = func(inc uint64) { _ = n.store.AppendIncarnation(inc) }
		if n.replayed.HasState() {
			// Restart with durable state: come back one incarnation past the
			// persisted one so our alive claim strictly supersedes any Dead
			// record still gossiped about our previous life, and advertise
			// HasState so peers skip the full warmup push (we pull the delta
			// via reconcile instead).
			cfg.Incarnation = n.replayed.Incarnation + 1
			cfg.HasState = true
			_ = n.store.AppendIncarnation(cfg.Incarnation)
		}
	}
	if as, ok := n.transport.(AddrSetter); ok {
		cfg.OnAddr = as.SetAddr
	}
	if ds, ok := n.transport.(AddrSender); ok {
		cfg.SendAddr = func(addr string, m *core.MembershipMsg) error {
			return ds.SendTo(addr, m)
		}
	}
	n.membership = membership.New(cfg)
	n.membership.Start()
}

// handleMembershipEvent runs on the membership goroutine: it folds a liveness
// transition into the ownership table, then parks every shard loop
// (runOnShards, a server-wide quiescence barrier) to repair soft state and
// apply any partition handoff that lands on (or leaves) this server. The
// barrier is what keeps PurgeServer and ownership changes atomic from the
// overlay's view even though the server is internally sharded: no shard can
// route a query between "shard A purged" and "shard B purged". The barrier
// is learn-marked, so every shard republishes its snapshot before the fast
// path serves again.
func (n *Node) handleMembershipEvent(ev membership.Event) {
	if n.ownership == nil || ev.ID == n.id {
		return
	}
	switch ev.State {
	case membership.Dead:
		changes := n.ownership.SetAlive(ev.ID, false)
		// The result cache may hold maps naming the dead server; scrub it
		// outside the barrier (it has its own lock) and mark the server dead
		// so in-flight results cannot re-insert it.
		n.purgeResults(ev.ID)
		// Soft-state repair: drop every cached/replicated reference to the
		// dead server, reseeding emptied maps from the post-handoff owner.
		n.runOnShards(true, func(s *shard) {
			s.peer.PurgeServer(ev.ID, n.ownership.Owner)
			n.applyReassignments(s, changes)
			n.reseedStarved(s)
		})
		n.kickCoordinator()
	case membership.Alive:
		changes := n.ownership.SetAlive(ev.ID, true)
		n.reviveResults(ev.ID)
		// A member that advertised durable state restores itself by local
		// replay and pulls only its delta (MembershipReconcile); pushing it
		// a full warmup stream would be redundant bytes.
		warm := (ev.Joined || ev.Prev == membership.Dead) && !ev.HasState
		max := n.opts.Membership.WarmupEntries
		if max == 0 {
			max = defaultWarmupEntries
		}
		// Collect each shard's warmup slice inside the barrier (fn runs
		// sequentially on this goroutine, so plain appends are safe), then
		// merge and send after the loops resume.
		var perShard [][]core.PathEntry
		n.runOnShards(true, func(s *shard) {
			n.applyReassignments(s, changes)
			if warm && max > 0 && ev.ID != n.id {
				perShard = append(perShard, s.peer.BuildWarmup(max))
			}
		})
		if entries := mergeWarmup(perShard, max); len(entries) > 0 {
			// A newly admitted or returned member starts cold: stream it a
			// bounded slice of our hottest hosted maps (which also announces
			// our own owned-partition claim to a joiner).
			if n.warmupStreams != nil {
				n.warmupStreams.Inc()
			}
			_ = n.transport.Send(n.id, ev.ID, &core.MembershipMsg{
				Kind: core.MembershipWarmup, From: n.id, Warmup: entries,
			})
		}
		n.kickCoordinator()
	}
}

// applyReassignments adopts or releases provisional ownership for every
// handoff that involves this server and falls in shard s's partition. Other
// servers' handoffs need no local action beyond the ownership table itself
// (routing consults it lazily). Runs inside a runOnShards barrier.
func (n *Node) applyReassignments(s *shard, changes []membership.Reassignment) {
	for _, ch := range changes {
		if len(n.shards) > 1 && n.shardOf(ch.Node) != s.idx {
			continue
		}
		switch {
		case ch.To == n.id:
			s.peer.AdoptOwnership(ch.Node, n.ownership.Owner)
		case ch.From == n.id:
			s.peer.ReleaseOwnership(ch.Node)
		}
	}
}

// reseedStarved re-bootstraps a shard whose purge left it with no routing
// state at all (nothing owned, hosted, or cached): without at least a root
// seed the shard could only fail its partition's queries. Mirrors the
// bootstrap seeding in NewNode, but against the live ownership table.
func (n *Node) reseedStarved(s *shard) {
	if len(n.shards) <= 1 {
		return
	}
	p := s.peer
	if p.OwnedCount() > 0 || p.ReplicaCount() > 0 || p.CacheLen() > 0 {
		return
	}
	root := n.tree.Root()
	if o := n.ownership.Owner(root); o != n.id && o != core.NoServer {
		p.SeedCache(root, core.SingleServerMap(o))
	}
}

// mergeWarmup interleaves per-shard warmup slices round-robin (each is
// ranked hottest-first, so interleaving keeps the merged stream's prefix
// representative of the whole server) and truncates to max.
func mergeWarmup(perShard [][]core.PathEntry, max int) []core.PathEntry {
	total := 0
	for _, sl := range perShard {
		total += len(sl)
	}
	if total > max {
		total = max
	}
	if total <= 0 {
		return nil
	}
	out := make([]core.PathEntry, 0, total)
	for i := 0; len(out) < total; i++ {
		advanced := false
		for _, sl := range perShard {
			if i < len(sl) {
				advanced = true
				out = append(out, sl[i])
				if len(out) == total {
					break
				}
			}
		}
		if !advanced {
			break
		}
	}
	return out
}

// Membership returns the node's membership service (nil when the subsystem
// is disabled).
func (n *Node) Membership() *membership.Service { return n.membership }

// Ownership returns the node's versioned ownership table (nil when
// membership is disabled).
func (n *Node) Ownership() *membership.OwnershipTable { return n.ownership }
