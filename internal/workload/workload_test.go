package workload

import (
	"strings"
	"testing"

	"terradir/internal/rng"
)

func TestUnifStream(t *testing.T) {
	w := Unif(100, rng.New(1), 500, 10)
	if w.Name != "unif" || w.N() != 100 {
		t.Fatalf("meta wrong: %q %d", w.Name, w.N())
	}
	if w.Rate(0) != 500 || w.Rate(9.9) != 500 {
		t.Fatal("rate wrong")
	}
	seen := map[int]bool{}
	for i := 0; i < 5000; i++ {
		d := int(w.Dest(float64(i) * 0.001))
		if d < 0 || d >= 100 {
			t.Fatalf("dest out of range: %d", d)
		}
		seen[d] = true
	}
	if len(seen) < 95 {
		t.Fatalf("uniform stream covered only %d of 100 nodes", len(seen))
	}
}

func TestUZipfSkew(t *testing.T) {
	w := UZipf(1000, rng.New(2), 1.5, 500, 10)
	counts := map[int]int{}
	for i := 0; i < 20000; i++ {
		counts[int(w.Dest(0.5))]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	// alpha=1.5 over 1000 items: rank-1 mass ≈ 0.38.
	if maxCount < 5000 {
		t.Fatalf("top item count %d, want heavy skew", maxCount)
	}
}

func TestPhaseTransition(t *testing.T) {
	src := rng.New(3)
	w := New("mix", 10000, src, []Phase{
		{Duration: 5, Kind: Uniform, Rate: 100},
		{Duration: 0, Kind: Zipf, Alpha: 1.5, Rate: 200},
	}, nil)
	if w.Rate(0) != 100 {
		t.Fatal("phase 1 rate wrong")
	}
	if w.Rate(5.1) != 200 {
		t.Fatal("phase 2 rate wrong")
	}
	// Zipf phase should concentrate mass.
	counts := map[int]int{}
	for i := 0; i < 10000; i++ {
		counts[int(w.Dest(6))]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount < 2000 {
		t.Fatalf("zipf phase not skewed: max %d", maxCount)
	}
}

func TestReRankShiftsHotspot(t *testing.T) {
	src := rng.New(4)
	w := New("shift", 50000, src, []Phase{
		{Duration: 0, Kind: Zipf, Alpha: 1.5, Rate: 100},
	}, []float64{10})
	hot1 := map[int]int{}
	for i := 0; i < 3000; i++ {
		hot1[int(w.Dest(1))]++
	}
	hot2 := map[int]int{}
	for i := 0; i < 3000; i++ {
		hot2[int(w.Dest(11))]++
	}
	top := func(m map[int]int) int {
		best, bc := -1, 0
		for k, c := range m {
			if c > bc {
				best, bc = k, c
			}
		}
		return best
	}
	if top(hot1) == top(hot2) {
		t.Fatal("hot-spot did not shift at the re-rank time")
	}
}

func TestUnifThenZipfShifts(t *testing.T) {
	src := rng.New(5)
	w := UnifThenZipfShifts(32767, src, 1.0, 20000, 50, 250, 4)
	if w.Name != "unif.uzipf1.00x4" {
		t.Fatalf("name = %q", w.Name)
	}
	// 3 shift events evenly spaced over (50, 250].
	if len(w.reranks) != 3 {
		t.Fatalf("reranks = %v", w.reranks)
	}
	if w.reranks[0] != 100 || w.reranks[1] != 150 || w.reranks[2] != 200 {
		t.Fatalf("rerank times = %v", w.reranks)
	}
	if w.Rate(0) != 20000 {
		t.Fatal("rate wrong")
	}
}

func TestUnifThenZipfShiftsSingleSegment(t *testing.T) {
	w := UnifThenZipfShifts(100, rng.New(6), 1.0, 10, 5, 20, 1)
	if len(w.reranks) != 0 {
		t.Fatal("k=1 should have no rerank events")
	}
	// k<1 normalized to 1.
	w2 := UnifThenZipfShifts(100, rng.New(7), 1.0, 10, 5, 20, 0)
	if len(w2.reranks) != 0 {
		t.Fatal("k=0 should normalize to one segment")
	}
}

func TestTotalDuration(t *testing.T) {
	src := rng.New(8)
	w := New("x", 10, src, []Phase{
		{Duration: 5, Kind: Uniform, Rate: 1},
		{Duration: 7, Kind: Uniform, Rate: 1},
	}, nil)
	if w.TotalDuration() != 12 {
		t.Fatalf("TotalDuration = %v", w.TotalDuration())
	}
}

func TestWorkloadPanics(t *testing.T) {
	src := rng.New(9)
	cases := []func(){
		func() { New("a", 0, src, []Phase{{Duration: 1, Rate: 1}}, nil) },
		func() { New("b", 10, src, nil, nil) },
		func() { New("c", 10, src, []Phase{{Duration: 1, Rate: 0}}, nil) },
		func() { New("d", 10, src, []Phase{{Duration: -1, Rate: 1}}, nil) },
		func() {
			New("e", 10, src, []Phase{{Duration: 0, Rate: 1}, {Duration: 1, Rate: 1}}, nil)
		},
		func() { New("f", 10, src, []Phase{{Duration: 1, Rate: 1}}, []float64{5, 2}) },
		func() { UnifThenZipfShifts(10, src, 1, 1, 10, 5, 2) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestKindString(t *testing.T) {
	if Uniform.String() != "unif" || Zipf.String() != "uzipf" {
		t.Fatal("Kind strings wrong")
	}
}

func TestDeterministicStreams(t *testing.T) {
	mk := func() []int {
		w := UnifThenZipfShifts(1000, rng.New(42), 1.25, 100, 5, 20, 3)
		var out []int
		for i := 0; i < 1000; i++ {
			out = append(out, int(w.Dest(float64(i)*0.02)))
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	w := UZipf(500, rng.New(3), 1.0, 200, 5)
	tr := RecordTrace(w, rng.New(4), 5)
	if len(tr.Events) < 700 || len(tr.Events) > 1300 {
		t.Fatalf("recorded %d events, want ≈1000", len(tr.Events))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(tr.Events) {
		t.Fatalf("round trip lost events: %d vs %d", len(got.Events), len(tr.Events))
	}
	for i := range got.Events {
		a, b := got.Events[i], tr.Events[i]
		if a.Dest != b.Dest || a.Source != b.Source || mathAbs(a.T-b.T) > 1e-5 {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func mathAbs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestTraceValidate(t *testing.T) {
	bad := &Trace{Events: []TraceEvent{{T: 2, Dest: 1, Source: -1}, {T: 1, Dest: 1, Source: -1}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-order trace accepted")
	}
	bad.Sort()
	if err := bad.Validate(); err != nil {
		t.Fatalf("sorted trace still invalid: %v", err)
	}
	neg := &Trace{Events: []TraceEvent{{T: -1, Dest: 1}}}
	if err := neg.Validate(); err == nil {
		t.Fatal("negative time accepted")
	}
}

func TestReadTraceErrors(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("1.0 bogus -1\n")); err == nil {
		t.Fatal("garbage line accepted")
	}
	tr, err := ReadTrace(strings.NewReader("# comment\n\n0.5 3 -1\n"))
	if err != nil || len(tr.Events) != 1 {
		t.Fatalf("comment/blank handling: %v %v", tr, err)
	}
	if tr.Events[0].Dest != 3 {
		t.Fatal("dest wrong")
	}
}

func TestTraceDuration(t *testing.T) {
	if (&Trace{}).Duration() != 0 {
		t.Fatal("empty trace duration")
	}
	tr := &Trace{Events: []TraceEvent{{T: 1}, {T: 4.5}}}
	if tr.Duration() != 4.5 {
		t.Fatal("duration wrong")
	}
}
