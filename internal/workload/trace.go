package workload

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"terradir/internal/namespace"
)

// Trace is an explicit query trace: exact arrival times, destinations and
// (optionally) source servers. Traces make runs replayable across
// implementations and parameter changes — the same queries hit the system at
// the same instants regardless of RNG evolution.
type Trace struct {
	Events []TraceEvent
}

// TraceEvent is one recorded query arrival.
type TraceEvent struct {
	T      float64          // arrival time, seconds
	Dest   namespace.NodeID // destination node
	Source int32            // source server, or -1 for "driver's choice"
}

// Validate checks monotonic timestamps and non-negative fields.
func (tr *Trace) Validate() error {
	prev := -1.0
	for i, e := range tr.Events {
		if e.T < prev {
			return fmt.Errorf("workload: trace event %d out of order (%v after %v)", i, e.T, prev)
		}
		if e.T < 0 || e.Dest < 0 || e.Source < -1 {
			return fmt.Errorf("workload: trace event %d invalid: %+v", i, e)
		}
		prev = e.T
	}
	return nil
}

// Duration returns the time of the last event (0 for an empty trace).
func (tr *Trace) Duration() float64 {
	if len(tr.Events) == 0 {
		return 0
	}
	return tr.Events[len(tr.Events)-1].T
}

// Sort orders events by time (stable), normalizing traces assembled out of
// order.
func (tr *Trace) Sort() {
	sort.SliceStable(tr.Events, func(i, j int) bool { return tr.Events[i].T < tr.Events[j].T })
}

// WriteTrace serializes a trace as text: one "t dest source" line per event.
func WriteTrace(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# terradir trace v1: t dest source"); err != nil {
		return err
	}
	for _, e := range tr.Events {
		if _, err := fmt.Fprintf(bw, "%.6f %d %d\n", e.T, e.Dest, e.Source); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses the text format written by WriteTrace.
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	tr := &Trace{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || line[0] == '#' {
			continue
		}
		var e TraceEvent
		if _, err := fmt.Sscanf(line, "%f %d %d", &e.T, &e.Dest, &e.Source); err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %v", lineNo, err)
		}
		tr.Events = append(tr.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// RecordTrace samples a Workload's arrival process into an explicit Trace:
// Poisson interarrivals at w.Rate(t), destinations from w.Dest(t), sources
// left to the driver (-1). The workload and RNG streams are consumed.
func RecordTrace(w *Workload, src interface{ Exp(float64) float64 }, duration float64) *Trace {
	tr := &Trace{}
	t := src.Exp(1 / w.Rate(0))
	for t < duration {
		tr.Events = append(tr.Events, TraceEvent{T: t, Dest: w.Dest(t), Source: -1})
		t += src.Exp(1 / w.Rate(t))
	}
	return tr
}
