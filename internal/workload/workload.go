// Package workload generates the query streams of the paper's evaluation
// (§4.1): destinations drawn uniformly at random ("unif" traces) or from a
// Zipf popularity law over a random node ranking ("uzipf" traces), composed
// into multi-phase schedules with instantaneous random popularity re-ranking
// events (shifting hot-spots). Arrival processes are Poisson with a
// per-phase global rate.
package workload

import (
	"fmt"

	"terradir/internal/namespace"
	"terradir/internal/rng"
)

// Kind selects a destination distribution.
type Kind uint8

const (
	// Uniform draws destinations uniformly over all nodes.
	Uniform Kind = iota
	// Zipf draws destinations Zipf(alpha) over a random popularity ranking.
	Zipf
)

func (k Kind) String() string {
	if k == Uniform {
		return "unif"
	}
	return "uzipf"
}

// Phase is one segment of a schedule: a destination distribution and a
// global Poisson arrival rate, active for Duration seconds.
type Phase struct {
	Duration float64 // seconds; the last phase may be 0 = "until the end"
	Kind     Kind
	Alpha    float64 // Zipf exponent (ignored for Uniform)
	Rate     float64 // global arrivals per second
}

// Workload is a composed query stream over a namespace of n nodes. It is
// stateful and time-driven: Dest must be called with non-decreasing times.
type Workload struct {
	Name    string
	n       int
	phases  []Phase
	reranks []float64 // absolute times of instantaneous popularity changes

	src      *rng.Source
	zipfs    map[int64]*rng.Zipf // keyed by alpha in milli-units
	phaseIdx int
	phaseT0  float64 // start time of current phase
	rerankI  int
}

// New creates a workload over n destination nodes with the given phases.
// rerankTimes lists absolute times at which Zipf popularity rankings are
// instantaneously re-randomized (§4.2's shifting hot-spots). It panics on an
// empty phase list, non-positive rates, or n < 1.
func New(name string, n int, src *rng.Source, phases []Phase, rerankTimes []float64) *Workload {
	if n < 1 {
		panic("workload: n < 1")
	}
	if len(phases) == 0 {
		panic("workload: no phases")
	}
	for i, ph := range phases {
		if ph.Rate <= 0 {
			panic(fmt.Sprintf("workload: phase %d has non-positive rate", i))
		}
		if ph.Duration < 0 {
			panic(fmt.Sprintf("workload: phase %d has negative duration", i))
		}
		if ph.Duration == 0 && i != len(phases)-1 {
			panic(fmt.Sprintf("workload: phase %d has zero duration but is not last", i))
		}
	}
	for i := 1; i < len(rerankTimes); i++ {
		if rerankTimes[i] < rerankTimes[i-1] {
			panic("workload: rerank times not sorted")
		}
	}
	return &Workload{
		Name:    name,
		n:       n,
		phases:  phases,
		reranks: rerankTimes,
		src:     src,
		zipfs:   make(map[int64]*rng.Zipf),
	}
}

// N returns the destination domain size.
func (w *Workload) N() int { return w.n }

// TotalDuration returns the sum of phase durations (0-duration final phase
// contributes nothing: the caller decides the run length).
func (w *Workload) TotalDuration() float64 {
	total := 0.0
	for _, ph := range w.phases {
		total += ph.Duration
	}
	return total
}

// advance moves the phase cursor and fires pending re-rank events up to
// time t. Times must be non-decreasing across calls.
func (w *Workload) advance(t float64) {
	for w.phaseIdx < len(w.phases)-1 {
		d := w.phases[w.phaseIdx].Duration
		if d == 0 || t < w.phaseT0+d {
			break
		}
		w.phaseT0 += d
		w.phaseIdx++
	}
	for w.rerankI < len(w.reranks) && t >= w.reranks[w.rerankI] {
		for _, z := range w.zipfs {
			z.ReRank()
		}
		w.rerankI++
	}
}

func (w *Workload) zipf(alpha float64) *rng.Zipf {
	key := int64(alpha * 1000)
	z, ok := w.zipfs[key]
	if !ok {
		z = rng.NewZipf(w.src.Split(), w.n, alpha)
		w.zipfs[key] = z
	}
	return z
}

// Dest returns the destination node for a query arriving at time t.
func (w *Workload) Dest(t float64) namespace.NodeID {
	w.advance(t)
	ph := &w.phases[w.phaseIdx]
	if ph.Kind == Uniform {
		return namespace.NodeID(w.src.Intn(w.n))
	}
	return namespace.NodeID(w.zipf(ph.Alpha).Sample())
}

// Rate returns the global Poisson arrival rate at time t.
func (w *Workload) Rate(t float64) float64 {
	w.advance(t)
	return w.phases[w.phaseIdx].Rate
}

// Unif builds the paper's "unif" stream: uniform destinations at rate λ for
// the given duration.
func Unif(n int, src *rng.Source, rate, duration float64) *Workload {
	return New("unif", n, src, []Phase{{Duration: duration, Kind: Uniform, Rate: rate}}, nil)
}

// UZipf builds a single-phase "uzipf<alpha>" stream.
func UZipf(n int, src *rng.Source, alpha, rate, duration float64) *Workload {
	name := fmt.Sprintf("uzipf%.2f", alpha)
	return New(name, n, src, []Phase{{Duration: duration, Kind: Zipf, Alpha: alpha, Rate: rate}}, nil)
}

// UnifThenZipfShifts builds the paper's composed "unif ∘ uzipf×k" stream
// (§4.2): a uniform warm-up of warmup seconds (letting the "cold" system
// replicate hierarchical bottlenecks), followed by a Zipf(alpha) phase with
// k−1 instantaneous random popularity changes evenly spaced over the
// remaining total−warmup seconds — i.e., k consecutive Zipf segments with
// fresh random rankings.
func UnifThenZipfShifts(n int, src *rng.Source, alpha, rate, warmup, total float64, k int) *Workload {
	if k < 1 {
		k = 1
	}
	if total <= warmup {
		panic("workload: total must exceed warmup")
	}
	seg := (total - warmup) / float64(k)
	var reranks []float64
	for i := 1; i < k; i++ {
		reranks = append(reranks, warmup+float64(i)*seg)
	}
	name := fmt.Sprintf("unif.uzipf%.2fx%d", alpha, k)
	return New(name, n, src, []Phase{
		{Duration: warmup, Kind: Uniform, Rate: rate},
		{Duration: 0, Kind: Zipf, Alpha: alpha, Rate: rate},
	}, reranks)
}
