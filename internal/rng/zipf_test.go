package rng

import (
	"math"
	"testing"
)

func TestZipfUniformWhenAlphaZero(t *testing.T) {
	src := New(1)
	z := NewZipf(src, 10, 0)
	const draws = 100000
	counts := make([]int, 10)
	for i := 0; i < draws; i++ {
		counts[z.Sample()]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-draws/10) > draws/10*0.06 {
			t.Fatalf("alpha=0 bucket %d count %d not ≈%d", i, c, draws/10)
		}
	}
}

func TestZipfRankProbabilities(t *testing.T) {
	src := New(2)
	z := NewZipf(src, 1000, 1.0)
	// P(rank 1)/P(rank 2) should be 2 for alpha=1.
	r := z.ProbOfRank(1) / z.ProbOfRank(2)
	if math.Abs(r-2) > 1e-9 {
		t.Fatalf("P(1)/P(2) = %v, want 2", r)
	}
	// CDF sums to 1.
	sum := 0.0
	for k := 1; k <= 1000; k++ {
		sum += z.ProbOfRank(k)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestZipfEmpiricalSkew(t *testing.T) {
	src := New(3)
	z := NewZipf(src, 10000, 1.2)
	const draws = 200000
	counts := make(map[int]int)
	for i := 0; i < draws; i++ {
		counts[z.Sample()]++
	}
	top := z.ItemAtRank(1)
	expected := z.ProbOfRank(1) * draws
	got := float64(counts[top])
	if math.Abs(got-expected) > 5*math.Sqrt(expected) {
		t.Fatalf("top item drawn %v times, expected ≈%v", got, expected)
	}
}

func TestZipfReRankShiftsHotspot(t *testing.T) {
	src := New(4)
	z := NewZipf(src, 50000, 1.5)
	before := z.ItemAtRank(1)
	changed := false
	for i := 0; i < 10; i++ {
		z.ReRank()
		if z.ItemAtRank(1) != before {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("ReRank never moved the rank-1 item across 10 re-ranks")
	}
}

func TestZipfSampleInRange(t *testing.T) {
	src := New(5)
	z := NewZipf(src, 37, 0.75)
	for i := 0; i < 10000; i++ {
		v := z.Sample()
		if v < 0 || v >= 37 {
			t.Fatalf("sample %d out of [0,37)", v)
		}
	}
}

func TestZipfPanicsOnBadArgs(t *testing.T) {
	src := New(6)
	for _, fn := range []func(){
		func() { NewZipf(src, 0, 1) },
		func() { NewZipf(src, 10, -0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestZipfProbOfRankOutOfRange(t *testing.T) {
	z := NewZipf(New(7), 5, 1)
	if z.ProbOfRank(0) != 0 || z.ProbOfRank(6) != 0 {
		t.Fatal("out-of-range ranks should have probability 0")
	}
}

func BenchmarkZipfSample(b *testing.B) {
	z := NewZipf(New(1), 70000, 1.0)
	var sink int
	for i := 0; i < b.N; i++ {
		sink ^= z.Sample()
	}
	_ = sink
}
