package rng

import (
	"math"
	"sort"
)

// Zipf samples ranks 1..N with P(rank k) ∝ 1/k^alpha, combined with a
// popularity permutation mapping ranks to item indices. The permutation can
// be re-randomized at any time (ReRank) to model the paper's "instantaneous
// and random changes in node popularity" (shifting hot-spots) without
// touching the rank distribution itself.
//
// Sampling uses a precomputed CDF with binary search: O(log N) per sample,
// exact for any alpha >= 0 (alpha == 0 degenerates to uniform).
type Zipf struct {
	alpha float64
	cdf   []float64 // cdf[i] = P(rank <= i+1), cdf[N-1] == 1
	perm  []int     // perm[rank-1] = item index
	src   *Source
}

// NewZipf constructs a Zipf sampler over n items with exponent alpha, drawing
// randomness (both samples and re-rank permutations) from src. It panics if
// n <= 0 or alpha < 0.
func NewZipf(src *Source, n int, alpha float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	if alpha < 0 {
		panic("rng: NewZipf with negative alpha")
	}
	z := &Zipf{alpha: alpha, src: src}
	z.cdf = make([]float64, n)
	sum := 0.0
	for k := 1; k <= n; k++ {
		sum += 1 / math.Pow(float64(k), alpha)
		z.cdf[k-1] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	z.cdf[n-1] = 1 // defeat rounding
	z.perm = make([]int, n)
	src.Perm(z.perm)
	return z
}

// N returns the number of items.
func (z *Zipf) N() int { return len(z.perm) }

// Alpha returns the skew exponent.
func (z *Zipf) Alpha() float64 { return z.alpha }

// Sample returns an item index in [0, N) drawn Zipf(alpha) over the current
// popularity ranking.
func (z *Zipf) Sample() int {
	u := z.src.Float64()
	rank := sort.SearchFloat64s(z.cdf, u)
	if rank >= len(z.perm) {
		rank = len(z.perm) - 1
	}
	return z.perm[rank]
}

// ReRank instantaneously re-randomizes the popularity permutation, modeling a
// shifting hot-spot: the same skew, applied to a fresh random ordering of
// items.
func (z *Zipf) ReRank() {
	z.src.Perm(z.perm)
}

// ItemAtRank returns the item currently holding 1-based popularity rank k.
func (z *Zipf) ItemAtRank(k int) int {
	return z.perm[k-1]
}

// ProbOfRank returns the probability mass of 1-based rank k.
func (z *Zipf) ProbOfRank(k int) float64 {
	if k < 1 || k > len(z.cdf) {
		return 0
	}
	if k == 1 {
		return z.cdf[0]
	}
	return z.cdf[k-1] - z.cdf[k-2]
}
