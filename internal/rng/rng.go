// Package rng provides deterministic, seedable random number generation and
// the distributions used by the TerraDir simulator: uniform, exponential,
// Poisson, and Zipf.
//
// The simulator must be fully reproducible — the same seed must produce the
// same event trace on every run and platform — so this package implements its
// own splitmix64-seeded xoshiro256** generator rather than relying on
// math/rand's unspecified evolution across Go releases. All generators are
// cheap value types safe to embed; none are safe for concurrent use (each
// simulated component owns its own stream).
package rng

import "math"

// Source is a deterministic pseudo-random generator (xoshiro256**) seeded via
// splitmix64. The zero value is not usable; construct with New.
type Source struct {
	s0, s1, s2, s3 uint64
}

// New returns a Source seeded from the given seed. Distinct seeds yield
// independent-looking streams; the seed is expanded with splitmix64 so that
// small seed deltas (0, 1, 2, ...) still produce uncorrelated streams.
func New(seed uint64) *Source {
	var r Source
	r.Seed(seed)
	return &r
}

// Seed resets the source to the stream identified by seed.
func (r *Source) Seed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s0, r.s1, r.s2, r.s3 = next(), next(), next(), next()
	// A state of all zeros is invalid for xoshiro; splitmix cannot produce
	// four consecutive zeros, but guard anyway.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 1
	}
}

// Split derives a new independent Source from this one. It advances the
// parent stream. Use it to hand child components their own streams without
// manual seed bookkeeping.
func (r *Source) Split() *Source {
	return New(r.Uint64() ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform float64 in (0, 1); never exactly zero, which
// makes it safe to pass to math.Log.
func (r *Source) Float64Open() float64 {
	for {
		f := (float64(r.Uint64()>>11) + 0.5) / (1 << 53)
		if f > 0 && f < 1 {
			return f
		}
	}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's unbiased
// multiply-shift rejection method. It panics if n == 0.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling on the top bits to avoid modulo bias.
	threshold := (-n) % n
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= threshold {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo*bHi + (aLo*bLo)>>32
	u := aHi*bLo + t&mask
	hi = aHi*bHi + t>>32 + u>>32
	lo = a * b
	return
}

// Exp returns an exponentially distributed value with the given mean
// (mean = 1/rate). It panics if mean <= 0.
func (r *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exp with non-positive mean")
	}
	return -mean * math.Log(r.Float64Open())
}

// Poisson returns a Poisson-distributed count with the given mean. For small
// means it uses Knuth's product method; for large means a normal
// approximation with continuity correction (adequate for workload generation).
func (r *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.Float64Open()
			if p <= l {
				return k
			}
			k++
		}
	}
	// Normal approximation N(mean, mean).
	n := r.Norm()*math.Sqrt(mean) + mean + 0.5
	if n < 0 {
		return 0
	}
	return int(n)
}

// Norm returns a standard normal variate (Box–Muller; one value per call,
// the pair's second value is discarded for statelessness).
func (r *Source) Norm() float64 {
	u1 := r.Float64Open()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm fills p with a uniform random permutation of [0, len(p)).
func (r *Source) Perm(p []int) {
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
}

// ShuffleInts permutes p uniformly at random (Fisher–Yates).
func (r *Source) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle permutes n elements using the provided swap function.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
