package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical outputs of 100", same)
	}
}

func TestSeedResets(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after reseed, step %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(3)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children produced identical first outputs")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64OpenNeverZeroOrOne(t *testing.T) {
	r := New(12)
	for i := 0; i < 100000; i++ {
		f := r.Float64Open()
		if f <= 0 || f >= 1 {
			t.Fatalf("Float64Open out of (0,1): %v", f)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(13)
	if err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared-ish sanity: 10 buckets, 100k draws; each bucket should be
	// within 5% of expectation.
	r := New(99)
	const draws = 100000
	var buckets [10]int
	for i := 0; i < draws; i++ {
		buckets[r.Uint64n(10)]++
	}
	for i, c := range buckets {
		if math.Abs(float64(c)-draws/10) > draws/10*0.05 {
			t.Fatalf("bucket %d count %d deviates >5%% from %d", i, c, draws/10)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(0.02)
	}
	mean := sum / n
	if math.Abs(mean-0.02) > 0.0005 {
		t.Fatalf("Exp mean = %v, want ≈0.02", mean)
	}
}

func TestExpPanicsOnBadMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestPoissonMean(t *testing.T) {
	r := New(6)
	for _, mean := range []float64{0.5, 3, 12, 100, 2000} {
		const n = 20000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / n
		tol := 4 * math.Sqrt(mean/n) // ±4 standard errors
		if math.Abs(got-mean) > tol+0.5 {
			t.Fatalf("Poisson(%v) mean = %v, tolerance %v", mean, got, tol)
		}
	}
}

func TestPoissonNonPositiveMean(t *testing.T) {
	if got := New(1).Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
	if got := New(1).Poisson(-2); got != 0 {
		t.Fatalf("Poisson(-2) = %d, want 0", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(8)
	p := make([]int, 257)
	r.Perm(p)
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			t.Fatalf("not a permutation: value %d", v)
		}
		seen[v] = true
	}
}

func TestShuffleCoversPositions(t *testing.T) {
	// Over many shuffles, element 0 should land in every position of a
	// 4-slot slice.
	r := New(9)
	landed := map[int]bool{}
	for i := 0; i < 1000; i++ {
		p := []int{0, 1, 2, 3}
		r.ShuffleInts(p)
		for pos, v := range p {
			if v == 0 {
				landed[pos] = true
			}
		}
	}
	if len(landed) != 4 {
		t.Fatalf("element 0 landed in only %d of 4 positions", len(landed))
	}
}

func TestNormMoments(t *testing.T) {
	r := New(10)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("Norm mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("Norm variance = %v, want ≈1", variance)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkExp(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Exp(0.02)
	}
	_ = sink
}
