// Package sim is a deterministic discrete-event simulation engine: a virtual
// clock, an event heap with stable FIFO tie-breaking, and the queueing
// primitives the TerraDir evaluation model requires — a single-server station
// with exponentially distributed service times and a bounded request queue
// that drops on overflow, plus a sliding-window busy-time load meter (the
// paper's "fraction of server busy time over a window period Ω").
//
// Determinism: events at equal timestamps fire in scheduling order, and all
// randomness is drawn from seeded rng.Source streams, so a run is a pure
// function of its seed and parameters.
package sim

import "container/heap"

// Time is simulation time in seconds.
type Time = float64

type event struct {
	t   Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is the simulation scheduler. The zero value is a ready engine at
// time zero.
type Engine struct {
	now       Time
	heap      eventHeap
	seq       uint64
	processed uint64
	stopped   bool
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return len(e.heap) }

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// Now) panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	heap.Push(&e.heap, event{t: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Stop halts the run loop after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the heap is empty, the clock
// would pass `until`, or Stop is called. It returns the number of events
// executed by this call. Events scheduled exactly at `until` still fire.
func (e *Engine) Run(until Time) uint64 {
	start := e.processed
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		if e.heap[0].t > until {
			break
		}
		ev := heap.Pop(&e.heap).(event)
		e.now = ev.t
		e.processed++
		ev.fn()
	}
	if e.now < until && !e.stopped {
		e.now = until
	}
	return e.processed - start
}

// Step executes exactly one event if any is pending, returning whether one
// fired.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := heap.Pop(&e.heap).(event)
	e.now = ev.t
	e.processed++
	ev.fn()
	return true
}
