package sim

import (
	"math"
	"testing"

	"terradir/internal/rng"
)

func TestEngineOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.At(3, func() { got = append(got, 3) })
	e.At(1, func() { got = append(got, 1) })
	e.At(2, func() { got = append(got, 2) })
	e.Run(10)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %v, want 10 after Run(10)", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run(5)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events reordered: pos %d has %d", i, v)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	var e Engine
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			e.After(1, tick)
		}
	}
	e.At(0, tick)
	e.Run(100)
	if count != 10 {
		t.Fatalf("count = %d", count)
	}
	if e.Processed() != 10 {
		t.Fatalf("Processed = %d", e.Processed())
	}
}

func TestEngineRunUntilBoundary(t *testing.T) {
	var e Engine
	fired := 0
	e.At(5, func() { fired++ })
	e.At(5.0000001, func() { fired++ })
	e.Run(5)
	if fired != 1 {
		t.Fatalf("events at exactly `until` should fire; fired = %d", fired)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	e.Run(6)
	if fired != 2 {
		t.Fatalf("second run did not fire remaining event")
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	var e Engine
	e.At(5, func() {})
	e.Run(10)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(1, func() {})
}

func TestEngineStop(t *testing.T) {
	var e Engine
	fired := 0
	e.At(1, func() { fired++; e.Stop() })
	e.At(2, func() { fired++ })
	e.Run(10)
	if fired != 1 {
		t.Fatalf("Stop did not halt the loop: fired = %d", fired)
	}
	// A subsequent Run resumes.
	e.Run(10)
	if fired != 2 {
		t.Fatalf("resume failed: fired = %d", fired)
	}
}

func TestEngineStep(t *testing.T) {
	var e Engine
	if e.Step() {
		t.Fatal("Step on empty engine returned true")
	}
	ran := false
	e.At(4, func() { ran = true })
	if !e.Step() || !ran || e.Now() != 4 {
		t.Fatal("Step did not execute the event")
	}
}

func TestLoadMeterFullyBusy(t *testing.T) {
	m := NewLoadMeter(0.5)
	m.AddBusy(0, 2.0)
	if l := m.Load(2.0); math.Abs(l-1) > 1e-9 {
		t.Fatalf("fully busy load = %v, want 1", l)
	}
}

func TestLoadMeterIdle(t *testing.T) {
	m := NewLoadMeter(0.5)
	if l := m.Load(10); l != 0 {
		t.Fatalf("idle load = %v", l)
	}
}

func TestLoadMeterHalfBusy(t *testing.T) {
	m := NewLoadMeter(1.0)
	// Busy half of every window for 4 windows.
	for w := 0; w < 4; w++ {
		m.AddBusy(float64(w), float64(w)+0.5)
	}
	l := m.Load(4.0)
	if math.Abs(l-0.5) > 0.01 {
		t.Fatalf("half-busy load = %v, want ≈0.5", l)
	}
}

func TestLoadMeterDecaysAfterIdle(t *testing.T) {
	m := NewLoadMeter(0.5)
	m.AddBusy(0, 0.5) // one fully busy window
	if l := m.Load(0.5); l < 0.9 {
		t.Fatalf("load right after busy window = %v", l)
	}
	// After several idle windows the estimate must fall to zero.
	if l := m.Load(3.0); l != 0 {
		t.Fatalf("load after long idle = %v, want 0", l)
	}
}

func TestLoadMeterSplitsAcrossWindows(t *testing.T) {
	m := NewLoadMeter(0.5)
	m.AddBusy(0.4, 0.6) // straddles the window boundary at 0.5
	// At t=0.5: previous window had 0.1 busy => 0.2 fraction.
	l := m.Load(0.5)
	if math.Abs(l-0.2) > 0.21 { // current window already has 0.1 accounted
		t.Fatalf("straddling load = %v", l)
	}
	if l <= 0 {
		t.Fatal("straddling interval lost")
	}
}

func TestLoadMeterIgnoresOverlaps(t *testing.T) {
	m := NewLoadMeter(1.0)
	m.AddBusy(0, 0.6)
	m.AddBusy(0.3, 0.6) // fully contained: must not double count
	if l := m.Load(1.0); l > 0.65 {
		t.Fatalf("overlap double-counted: load = %v", l)
	}
}

func TestLoadMeterRejectsEmptyInterval(t *testing.T) {
	m := NewLoadMeter(1.0)
	m.AddBusy(2, 2)
	m.AddBusy(3, 1)
	if l := m.Load(2.5); l != 0 {
		t.Fatalf("empty intervals changed load: %v", l)
	}
}

func TestLoadMeterPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewLoadMeter(0)
}

func TestStationProcessesJobs(t *testing.T) {
	var e Engine
	src := rng.New(1)
	st := NewStation(&e, src, 0.02, 12, 0.5)
	var done []int
	st.Process = func(j Job) { done = append(done, j.(int)) }
	for i := 0; i < 5; i++ {
		i := i
		e.At(float64(i)*0.001, func() { st.Arrive(i) })
	}
	e.Run(10)
	if len(done) != 5 {
		t.Fatalf("completed %d of 5", len(done))
	}
	for i, v := range done {
		if v != i {
			t.Fatalf("FIFO violated: %v", done)
		}
	}
	if st.Completions != 5 || st.Arrivals != 5 || st.Drops != 0 {
		t.Fatalf("counters: %d/%d/%d", st.Arrivals, st.Completions, st.Drops)
	}
}

func TestStationDropsWhenFull(t *testing.T) {
	var e Engine
	src := rng.New(2)
	st := NewStation(&e, src, 1.0, 2, 0.5) // very slow server, queue of 2
	dropped := 0
	st.OnDrop = func(Job) { dropped++ }
	e.At(0, func() {
		for i := 0; i < 10; i++ {
			st.Arrive(i)
		}
	})
	e.Run(0)
	// 1 in service + 2 queued = 3 accepted, 7 dropped.
	if dropped != 7 || st.Drops != 7 {
		t.Fatalf("dropped = %d (counter %d), want 7", dropped, st.Drops)
	}
	if st.QueueLen() != 2 {
		t.Fatalf("queue length = %d", st.QueueLen())
	}
	if !st.Busy() {
		t.Fatal("station should be busy")
	}
}

func TestStationZeroCapacityStillServesOne(t *testing.T) {
	var e Engine
	st := NewStation(&e, rng.New(3), 0.1, 0, 0.5)
	served := 0
	st.Process = func(Job) { served++ }
	e.At(0, func() {
		st.Arrive(1) // enters service
		st.Arrive(2) // no waiting room: dropped
	})
	e.Run(10)
	if served != 1 || st.Drops != 1 {
		t.Fatalf("served=%d drops=%d", served, st.Drops)
	}
}

func TestStationUtilization(t *testing.T) {
	// M/M/1 sanity: λ=25/s, mean service 20ms => ρ=0.5. Measured busy
	// fraction should be near 0.5.
	var e Engine
	src := rng.New(4)
	st := NewStation(&e, src, 0.02, 1000, 0.5)
	st.Process = func(Job) {}
	arrivals := src.Split()
	var schedule func()
	tNext := 0.0
	schedule = func() {
		st.Arrive(struct{}{})
		tNext += arrivals.Exp(1.0 / 25)
		if tNext < 200 {
			e.At(tNext, schedule)
		}
	}
	e.At(0, schedule)
	e.Run(220)
	util := 1.0 - float64(0) // derive from meter over last window
	util = st.Load()
	_ = util
	// Long-run completions ≈ arrivals and busy fraction ≈ 0.5 measured over
	// total busy time: approximate via counter ratio.
	if st.Completions < 4500 || st.Completions > 5500 {
		t.Fatalf("completions = %d, want ≈5000", st.Completions)
	}
	if st.Drops != 0 {
		t.Fatalf("drops = %d with huge queue", st.Drops)
	}
}

func TestStationLoadRisesUnderSaturation(t *testing.T) {
	var e Engine
	src := rng.New(5)
	st := NewStation(&e, src, 0.02, 100, 0.5)
	st.Process = func(Job) {}
	// Offered load 2x capacity.
	t0 := 0.0
	for i := 0; i < 400; i++ {
		tt := t0
		e.At(tt, func() { st.Arrive(struct{}{}) })
		t0 += 0.01
	}
	e.Run(2.0)
	if l := st.Load(); l < 0.9 {
		t.Fatalf("saturated load = %v, want ≈1", l)
	}
}

func TestStationPanicsOnBadArgs(t *testing.T) {
	var e Engine
	for _, fn := range []func(){
		func() { NewStation(&e, rng.New(1), 0, 1, 0.5) },
		func() { NewStation(&e, rng.New(1), 0.1, -1, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int64, Time) {
		var e Engine
		src := rng.New(77)
		st := NewStation(&e, src, 0.02, 5, 0.5)
		st.Process = func(Job) {}
		arr := src.Split()
		tNext := 0.0
		var schedule func()
		schedule = func() {
			st.Arrive(struct{}{})
			tNext += arr.Exp(0.01)
			if tNext < 50 {
				e.At(tNext, schedule)
			}
		}
		e.At(0, schedule)
		e.Run(60)
		return st.Completions, e.Now()
	}
	c1, n1 := run()
	c2, n2 := run()
	if c1 != c2 || n1 != n2 {
		t.Fatalf("runs diverged: (%d,%v) vs (%d,%v)", c1, n1, c2, n2)
	}
}

func BenchmarkEngineThroughput(b *testing.B) {
	var e Engine
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			e.After(0.001, tick)
		}
	}
	e.At(0, tick)
	e.Run(math.Inf(1))
}
