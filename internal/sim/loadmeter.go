package sim

// LoadMeter measures a server's normalized load as the fraction of busy time
// over a sliding window Ω (paper §3.1). The estimate at time t blends the
// last fully completed window with the in-progress one:
//
//	load(t) ≈ prevWindowBusy·(1−f) + curWindowBusy, f = elapsed fraction of Ω
//
// which tracks the true sliding-window busy fraction with at most one-window
// lag, is O(1) per update, and is "locally defined" and "linearly comparable"
// as the paper requires of a load metric.
type LoadMeter struct {
	window    Time
	winStart  Time    // start of the current window
	curBusy   Time    // busy seconds accumulated in current window
	prevFrac  float64 // busy fraction of the previous completed window
	lastBusyT Time    // high-water mark of accounted busy time
}

// NewLoadMeter creates a meter with the given window Ω (seconds, > 0).
func NewLoadMeter(window Time) *LoadMeter {
	if window <= 0 {
		panic("sim: LoadMeter requires positive window")
	}
	return &LoadMeter{window: window}
}

// Window returns Ω.
func (m *LoadMeter) Window() Time { return m.window }

// roll advances the window bookkeeping so that `now` falls within the
// current window.
func (m *LoadMeter) roll(now Time) {
	for now >= m.winStart+m.window {
		m.prevFrac = m.curBusy / m.window
		m.curBusy = 0
		m.winStart += m.window
		// If we've skipped multiple idle windows, the previous window's
		// fraction must decay to zero rather than persist.
		if now >= m.winStart+m.window {
			m.prevFrac = 0
			skipped := int((now - m.winStart) / m.window)
			m.winStart += Time(skipped) * m.window
		}
	}
}

// AddBusy records that the server was busy during [from, to), splitting the
// interval across window boundaries. Intervals must be non-decreasing in
// time (from >= the end of the previous interval).
func (m *LoadMeter) AddBusy(from, to Time) {
	if to <= from {
		return
	}
	if from < m.lastBusyT {
		from = m.lastBusyT // guard against accidental overlap double-counting
		if to <= from {
			return
		}
	}
	m.lastBusyT = to
	for from < to {
		m.roll(from)
		end := m.winStart + m.window
		if end > to {
			end = to
		}
		m.curBusy += end - from
		from = end
	}
}

// Load returns the load estimate at time `now`, in [0, 1].
func (m *LoadMeter) Load(now Time) float64 {
	m.roll(now)
	f := (now - m.winStart) / m.window
	l := m.prevFrac*(1-f) + m.curBusy/m.window
	if l > 1 {
		l = 1
	}
	if l < 0 {
		l = 0
	}
	return l
}
