package sim

import "terradir/internal/rng"

// Job is an opaque unit of work queued at a Station.
type Job interface{}

// Station models one server's query-processing pipeline as specified in the
// paper's methodology: a single exponential server with a bounded FIFO
// request queue; arrivals that find the queue full are dropped. Service
// completions invoke the Process callback, at which point the protocol layer
// makes its routing decision (modeled as part of the service time).
type Station struct {
	eng         *Engine
	src         *rng.Source
	serviceMean Time // mean service time (seconds)
	capacity    int  // waiting-room slots (excludes the job in service)

	queue   []Job
	busy    bool
	started Time // service start of the in-flight job

	meter *LoadMeter

	// Process is invoked at each service completion with the finished job.
	Process func(job Job)
	// OnDrop is invoked when an arrival is discarded due to a full queue.
	// May be nil.
	OnDrop func(job Job)

	// Counters.
	Arrivals    int64
	Completions int64
	Drops       int64
}

// NewStation constructs a station bound to an engine. serviceMean is the
// mean of the exponential service time; capacity is the queue size (jobs
// beyond it are dropped); window is the load meter's Ω.
func NewStation(eng *Engine, src *rng.Source, serviceMean Time, capacity int, window Time) *Station {
	if serviceMean <= 0 {
		panic("sim: Station requires positive service mean")
	}
	if capacity < 0 {
		panic("sim: Station requires non-negative capacity")
	}
	return &Station{
		eng:         eng,
		src:         src,
		serviceMean: serviceMean,
		capacity:    capacity,
		meter:       NewLoadMeter(window),
	}
}

// QueueLen returns the number of jobs waiting (excluding any in service).
func (s *Station) QueueLen() int { return len(s.queue) }

// Busy reports whether a job is currently in service.
func (s *Station) Busy() bool { return s.busy }

// Load returns the station's current busy-fraction load estimate.
func (s *Station) Load() float64 {
	l := s.meter.Load(s.eng.Now())
	if s.busy {
		// Count the in-flight job's elapsed service as busy time so the
		// estimate does not lag under saturation.
		elapsed := s.eng.Now() - s.started
		if elapsed > 0 {
			extra := elapsed / s.meter.Window()
			if l+extra > 1 {
				return 1
			}
			l += extra
		}
	}
	return l
}

// Arrive submits a job. If the server is idle it enters service immediately;
// if the waiting room is full it is dropped.
func (s *Station) Arrive(job Job) {
	s.Arrivals++
	if !s.busy {
		s.startService(job)
		return
	}
	if len(s.queue) >= s.capacity {
		s.Drops++
		if s.OnDrop != nil {
			s.OnDrop(job)
		}
		return
	}
	s.queue = append(s.queue, job)
}

func (s *Station) startService(job Job) {
	s.busy = true
	s.started = s.eng.Now()
	d := s.src.Exp(s.serviceMean)
	s.eng.After(d, func() { s.complete(job) })
}

func (s *Station) complete(job Job) {
	now := s.eng.Now()
	s.meter.AddBusy(s.started, now)
	s.busy = false
	s.Completions++
	if s.Process != nil {
		s.Process(job)
	}
	if len(s.queue) > 0 {
		next := s.queue[0]
		copy(s.queue, s.queue[1:])
		s.queue = s.queue[:len(s.queue)-1]
		s.startService(next)
	}
}
