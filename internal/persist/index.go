package persist

// This file implements the immutable on-disk node index behind the overlay's
// larger-than-RAM hosted cache (DESIGN.md §14). Each snapshot generation gets
// a companion index file holding the same barrier-consistent records, sorted
// by node id and individually CRC-framed, plus a sparse key directory so a
// cold miss resolves with one directory binary search and a short bounded
// scan — without materializing the namespace in memory.
//
// File layout (index-<seq:016x>.idx):
//
//	magic "TDIDX001" | u64 seq | u64 incarnation | u32 count | u32 header CRC32C
//	count entries, ascending by node id, unique:
//	    u32 payload length | u32 CRC32C(payload) | payload
//	    payload = wire.AppendHosted of a MutUpsert record
//	directory: one (i32 node | u64 entry offset) per idxStride-th entry
//	footer: u64 directory offset | u32 directory count | u32 CRC32C(directory+footer prefix)
//
// Every byte is covered by a checksum (header CRC, per-entry CRC, footer CRC
// over the directory), and openIndex runs a full sequential validation sweep,
// so any torn or corrupt index is rejected at open and rebuilt from the
// snapshot — the index is a pure cache of snapshot state, never the only copy.
//
// An open Index is immutable and refcounted: loader goroutines Acquire it for
// the duration of a read while the snapshot writer swaps in the next
// generation and Retires the old one (the file closes when the last reader
// releases).

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"terradir/internal/core"
	"terradir/internal/wire"
)

const (
	idxMagic  = "TDIDX001"
	idxPrefix = "index-"
	idxSuffix = ".idx"

	idxHeaderLen = 8 + 8 + 8 + 4 + 4 // magic, seq, incarnation, count, CRC
	idxDirEntry  = 4 + 8             // i32 node, u64 absolute entry offset
	idxFooterLen = 8 + 4 + 4         // u64 dir offset, u32 dir count, u32 CRC

	// idxStride is the directory sampling interval: one in-memory key per
	// idxStride entries, so Get scans at most idxStride frames after the
	// directory binary search. At 64 the directory costs ~0.2 bytes of RAM
	// per indexed node.
	idxStride = 64

	// idxMinEntry is the smallest possible hosted-record payload prefix
	// (kind, node, flags); shorter lengths are rejected before decoding.
	idxMinEntry = 6
)

type idxDirEnt struct {
	node core.NodeID
	off  int64
}

// Index is one open, validated index generation. Read methods are safe for
// concurrent use (they share no mutable state beyond the *os.File, accessed
// with ReadAt); lifecycle is managed with Acquire/Release/Retire.
type Index struct {
	path        string
	f           *os.File
	seq         uint64
	incarnation uint64
	count       int
	dataStart   int64
	dataEnd     int64 // directory offset: first byte past the entries
	dir         []idxDirEnt

	mu      sync.Mutex
	refs    int
	retired bool
}

// Seq returns the snapshot sequence this index generation covers.
func (ix *Index) Seq() uint64 { return ix.seq }

// Incarnation returns the membership incarnation persisted with the index.
func (ix *Index) Incarnation() uint64 { return ix.incarnation }

// Count returns the number of indexed entries.
func (ix *Index) Count() int { return ix.count }

// Path returns the index file path.
func (ix *Index) Path() string { return ix.path }

// Acquire takes a read reference, reporting false if the generation has been
// retired (the caller should re-fetch the current index from the store).
func (ix *Index) Acquire() bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.retired {
		return false
	}
	ix.refs++
	return true
}

// Release drops a read reference taken with Acquire.
func (ix *Index) Release() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.refs--
	if ix.retired && ix.refs <= 0 {
		ix.closeLocked()
	}
}

// Retire marks the generation dead: no new Acquires succeed, and the file
// closes once the last reader releases.
func (ix *Index) Retire() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.retired = true
	if ix.refs <= 0 {
		ix.closeLocked()
	}
}

func (ix *Index) closeLocked() {
	if ix.f != nil {
		ix.f.Close()
		ix.f = nil
	}
}

// buildIndex writes the index file for one snapshot generation atomically
// (tmp, fsync, rename). records must be sorted ascending by node id, unique,
// and all MutUpsert — the exact output of sortHostedRecords over a
// barrier-consistent export.
func buildIndex(dir string, seq, incarnation uint64, records []core.HostedMutation) (string, error) {
	final := filepath.Join(dir, fmt.Sprintf("%s%016x%s", idxPrefix, seq, idxSuffix))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return "", fmt.Errorf("persist: index create: %w", err)
	}
	fail := func(err error) (string, error) {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	hdr := make([]byte, 0, idxHeaderLen)
	hdr = append(hdr, idxMagic...)
	hdr = binary.LittleEndian.AppendUint64(hdr, seq)
	hdr = binary.LittleEndian.AppendUint64(hdr, incarnation)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(records)))
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.Checksum(hdr, castagnoli))
	if _, err := w.Write(hdr); err != nil {
		return fail(fmt.Errorf("persist: index write: %w", err))
	}
	off := int64(idxHeaderLen)
	var dirb []byte
	dirCount := 0
	var buf []byte
	var prev core.NodeID
	for i := range records {
		rec := &records[i]
		if rec.Kind != core.MutUpsert {
			return fail(fmt.Errorf("persist: index record %d has kind %d (want upsert)", i, rec.Kind))
		}
		if i > 0 && rec.Node <= prev {
			return fail(fmt.Errorf("persist: index records out of order (node %d after %d)", rec.Node, prev))
		}
		prev = rec.Node
		if i%idxStride == 0 {
			dirb = binary.LittleEndian.AppendUint32(dirb, uint32(int32(rec.Node)))
			dirb = binary.LittleEndian.AppendUint64(dirb, uint64(off))
			dirCount++
		}
		buf = append(buf[:0], 0, 0, 0, 0, 0, 0, 0, 0)
		buf = wire.AppendHosted(buf, rec)
		payload := buf[recHeaderLen:]
		if len(payload) > MaxRecord {
			return fail(fmt.Errorf("persist: index record of %d bytes exceeds MaxRecord", len(payload)))
		}
		binary.LittleEndian.PutUint32(buf[0:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, castagnoli))
		if _, err := w.Write(buf); err != nil {
			return fail(fmt.Errorf("persist: index write: %w", err))
		}
		off += int64(len(buf))
	}
	ftr := make([]byte, 0, idxFooterLen)
	ftr = binary.LittleEndian.AppendUint64(ftr, uint64(off))
	ftr = binary.LittleEndian.AppendUint32(ftr, uint32(dirCount))
	crc := crc32.Update(crc32.Checksum(dirb, castagnoli), castagnoli, ftr)
	ftr = binary.LittleEndian.AppendUint32(ftr, crc)
	if _, err := w.Write(dirb); err != nil {
		return fail(fmt.Errorf("persist: index write: %w", err))
	}
	if _, err := w.Write(ftr); err != nil {
		return fail(fmt.Errorf("persist: index write: %w", err))
	}
	if err := w.Flush(); err != nil {
		return fail(fmt.Errorf("persist: index flush: %w", err))
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("persist: index sync: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("persist: index close: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("persist: index rename: %w", err)
	}
	syncDir(dir)
	return final, nil
}

// openIndex opens and fully validates one index file: header and footer
// checksums, directory consistency, and a sequential sweep CRC-checking every
// entry and its ordering. Any corruption is an error — the caller falls back
// to rebuilding from the snapshot.
func openIndex(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			f.Close()
		}
	}()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("persist: index stat: %w", err)
	}
	size := st.Size()
	if size < idxHeaderLen+idxFooterLen {
		return nil, fmt.Errorf("persist: index too short (%d bytes)", size)
	}
	var hdr [idxHeaderLen]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("persist: index header read: %w", err)
	}
	if string(hdr[:len(idxMagic)]) != idxMagic {
		return nil, fmt.Errorf("persist: bad index magic")
	}
	if crc32.Checksum(hdr[:idxHeaderLen-4], castagnoli) != binary.LittleEndian.Uint32(hdr[idxHeaderLen-4:]) {
		return nil, fmt.Errorf("persist: index header crc mismatch")
	}
	seq := binary.LittleEndian.Uint64(hdr[8:])
	incarnation := binary.LittleEndian.Uint64(hdr[16:])
	count := int(binary.LittleEndian.Uint32(hdr[24:]))

	var ftr [idxFooterLen]byte
	if _, err := f.ReadAt(ftr[:], size-idxFooterLen); err != nil {
		return nil, fmt.Errorf("persist: index footer read: %w", err)
	}
	dirOff := int64(binary.LittleEndian.Uint64(ftr[:]))
	dirCount := int(binary.LittleEndian.Uint32(ftr[8:]))
	if dirOff < idxHeaderLen || dirOff > size-idxFooterLen {
		return nil, fmt.Errorf("persist: index directory offset %d out of range", dirOff)
	}
	wantDir := 0
	if count > 0 {
		wantDir = (count + idxStride - 1) / idxStride
	}
	if dirCount != wantDir || size-idxFooterLen-dirOff != int64(dirCount)*idxDirEntry {
		return nil, fmt.Errorf("persist: index directory count %d inconsistent with %d entries", dirCount, count)
	}
	dirb := make([]byte, dirCount*idxDirEntry)
	if _, err := f.ReadAt(dirb, dirOff); err != nil {
		return nil, fmt.Errorf("persist: index directory read: %w", err)
	}
	if crc32.Update(crc32.Checksum(dirb, castagnoli), castagnoli, ftr[:idxFooterLen-4]) != binary.LittleEndian.Uint32(ftr[idxFooterLen-4:]) {
		return nil, fmt.Errorf("persist: index directory crc mismatch")
	}
	dir := make([]idxDirEnt, dirCount)
	for i := range dir {
		dir[i] = idxDirEnt{
			node: core.NodeID(int32(binary.LittleEndian.Uint32(dirb[i*idxDirEntry:]))),
			off:  int64(binary.LittleEndian.Uint64(dirb[i*idxDirEntry+4:])),
		}
	}
	ix := &Index{
		path:        path,
		f:           f,
		seq:         seq,
		incarnation: incarnation,
		count:       count,
		dataStart:   idxHeaderLen,
		dataEnd:     dirOff,
		dir:         dir,
	}
	if err := ix.validate(); err != nil {
		return nil, err
	}
	ok = true
	return ix, nil
}

// validate sweeps every entry sequentially, checking frame bounds, payload
// CRCs, strict node ordering and directory agreement. One buffered read pass;
// memory stays bounded regardless of index size.
func (ix *Index) validate() error {
	r := bufio.NewReaderSize(io.NewSectionReader(ix.f, ix.dataStart, ix.dataEnd-ix.dataStart), 1<<16)
	off := ix.dataStart
	var prev core.NodeID
	var hdr [recHeaderLen]byte
	buf := make([]byte, 0, 4096)
	for i := 0; i < ix.count; i++ {
		node, payload, n, err := readIndexEntry(r, off, ix.dataEnd, hdr[:], &buf)
		if err != nil {
			return fmt.Errorf("persist: index entry %d: %w", i, err)
		}
		if payload[0] != byte(core.MutUpsert) {
			return fmt.Errorf("persist: index entry %d: kind %d (want upsert)", i, payload[0])
		}
		if i > 0 && node <= prev {
			return fmt.Errorf("persist: index entry %d out of order (node %d after %d)", i, node, prev)
		}
		if i%idxStride == 0 {
			j := i / idxStride
			if ix.dir[j].node != node || ix.dir[j].off != off {
				return fmt.Errorf("persist: index directory entry %d disagrees with data", j)
			}
		}
		prev = node
		off += n
	}
	if off != ix.dataEnd {
		return fmt.Errorf("persist: index has %d trailing data bytes", ix.dataEnd-off)
	}
	return nil
}

// readIndexEntry reads one framed entry from r (positioned at absolute offset
// off, with entries ending at dataEnd), returning the entry's node id, its
// CRC-verified payload (valid until the next read into buf) and the framed
// size.
func readIndexEntry(r io.Reader, off, dataEnd int64, hdr []byte, buf *[]byte) (core.NodeID, []byte, int64, error) {
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, 0, fmt.Errorf("torn frame header: %w", err)
	}
	ln := binary.LittleEndian.Uint32(hdr)
	crc := binary.LittleEndian.Uint32(hdr[4:])
	if ln < idxMinEntry || ln > MaxRecord {
		return 0, nil, 0, fmt.Errorf("entry length %d out of range", ln)
	}
	if int64(ln) > dataEnd-off-recHeaderLen {
		return 0, nil, 0, fmt.Errorf("entry overruns data section")
	}
	if cap(*buf) < int(ln) {
		*buf = make([]byte, ln)
	}
	payload := (*buf)[:ln]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, 0, fmt.Errorf("torn entry payload: %w", err)
	}
	if crc32.Checksum(payload, castagnoli) != crc {
		return 0, nil, 0, fmt.Errorf("entry crc mismatch")
	}
	node := core.NodeID(int32(binary.LittleEndian.Uint32(payload[1:5])))
	return node, payload, recHeaderLen + int64(ln), nil
}

// Get returns the indexed record for node, or (nil, nil) when the node is not
// in this generation. Safe for concurrent use; one directory binary search
// plus a scan of at most idxStride frames.
func (ix *Index) Get(node core.NodeID) (*core.HostedMutation, error) {
	if len(ix.dir) == 0 || node < ix.dir[0].node {
		return nil, nil
	}
	j := sort.Search(len(ix.dir), func(i int) bool { return ix.dir[i].node > node }) - 1
	off := ix.dir[j].off
	end := ix.dataEnd
	if j+1 < len(ix.dir) {
		end = ix.dir[j+1].off
	}
	r := bufio.NewReaderSize(io.NewSectionReader(ix.f, off, end-off), 1<<14)
	var hdr [recHeaderLen]byte
	var buf []byte
	for off < end {
		nd, payload, n, err := readIndexEntry(r, off, end, hdr[:], &buf)
		if err != nil {
			return nil, fmt.Errorf("persist: index get node %d: %w", node, err)
		}
		if nd == node {
			mu, err := wire.DecodeHosted(payload)
			if err != nil {
				return nil, fmt.Errorf("persist: index get node %d: %w", node, err)
			}
			return mu, nil
		}
		if nd > node {
			return nil, nil
		}
		off += n
	}
	return nil, nil
}

// EachEntry streams every entry in ascending node order. fn receives the node
// id, its durable ownership flags, and the raw CRC-verified payload — valid
// only for the duration of the call; decode with wire.DecodeHosted when the
// full record is needed. Returning a non-nil error stops the sweep.
func (ix *Index) EachEntry(fn func(node core.NodeID, owned, adopted bool, payload []byte) error) error {
	r := bufio.NewReaderSize(io.NewSectionReader(ix.f, ix.dataStart, ix.dataEnd-ix.dataStart), 1<<16)
	off := ix.dataStart
	var hdr [recHeaderLen]byte
	buf := make([]byte, 0, 4096)
	for i := 0; i < ix.count; i++ {
		node, payload, n, err := readIndexEntry(r, off, ix.dataEnd, hdr[:], &buf)
		if err != nil {
			return fmt.Errorf("persist: index entry %d: %w", i, err)
		}
		flags := payload[5]
		if err := fn(node, flags&1 != 0, flags&2 != 0, payload); err != nil {
			return err
		}
		off += n
	}
	return nil
}

// sortHostedRecords orders records ascending by node id (stable) and drops
// duplicates in place, keeping the first occurrence — the canonical input for
// buildIndex and, with the index enabled, for WriteSnapshot.
func sortHostedRecords(recs []core.HostedMutation) []core.HostedMutation {
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Node < recs[j].Node })
	out := recs[:0]
	for i := range recs {
		if len(out) > 0 && out[len(out)-1].Node == recs[i].Node {
			continue
		}
		out = append(out, recs[i])
	}
	return out
}

// rebuildIndex writes and reopens the index generation for a verified
// snapshot's records (sorted in place), returning nil on failure — the
// caller then falls back to classic in-memory replay.
func (s *Store) rebuildIndex(seq, incarnation uint64, records []core.HostedMutation) *Index {
	path, err := buildIndex(s.dir, seq, incarnation, sortHostedRecords(records))
	if err != nil {
		s.opts.Logf("persist: index rebuild for snapshot %d failed: %v", seq, err)
		return nil
	}
	ix, err := openIndex(path)
	if err != nil {
		s.opts.Logf("persist: reopen rebuilt index %s: %v", path, err)
		return nil
	}
	return ix
}

// indexPath returns the index file path for snapshot generation seq.
func (s *Store) indexPath(seq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%016x%s", idxPrefix, seq, idxSuffix))
}

// setIndex installs ix as the current generation, retiring the previous one.
func (s *Store) setIndex(ix *Index) {
	if old := s.idx.Swap(ix); old != nil {
		old.Retire()
	}
}

// AcquireIndex returns the current index generation with a read reference
// taken (Release when done), or nil when no index is available. Safe from any
// goroutine.
func (s *Store) AcquireIndex() *Index {
	for i := 0; i < 4; i++ {
		ix := s.idx.Load()
		if ix == nil {
			return nil
		}
		if ix.Acquire() {
			return ix
		}
		// Lost a race with a generation swap; re-fetch the new one.
	}
	return nil
}
