// Package persist is the peer-local durability tier: a segmented,
// CRC32C-framed append-only write-ahead log of hosted-state mutations plus
// periodic atomic snapshots, so a restarted peer rebuilds its hosted
// namespace state from local disk and only reconciles deltas over the wire.
//
// Layout of a data directory:
//
//	wal-<startseq:016x>.log   WAL segment; first record sequence in the name
//	snap-<seq:016x>.snap      snapshot covering every mutation with seq ≤ seq
//
// A WAL segment is an 8-byte magic header followed by records framed as
//
//	u32 payload length | u32 CRC32C(payload) | payload
//	payload = u64 seq | u8 record kind | body
//
// where the body of a mutation record is the wire-codec hosted-record layout
// (wire.AppendHosted) and the body of an incarnation record is a u64. A
// snapshot file is magic, covered seq, incarnation, record count, then
// length-prefixed wire-encoded hosted records, closed by a whole-file CRC32C.
//
// Crash safety: snapshots are written to a .tmp file, fsynced, and renamed;
// replay keeps the newest snapshot that verifies. WAL replay stops cleanly at
// the first truncated or corrupt record — a kill -9 mid-append loses at most
// the torn tail record, never anything before it — and truncates the tail so
// the next run appends to a clean log.
package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"terradir/internal/core"
	"terradir/internal/telemetry"
	"terradir/internal/wire"
)

const (
	walMagic  = "TDWAL001"
	snapMagic = "TDSNP001"

	walPrefix  = "wal-"
	walSuffix  = ".log"
	snapPrefix = "snap-"
	snapSuffix = ".snap"

	// MaxRecord bounds one WAL record payload, protecting replay against
	// corrupt or hostile length prefixes (mirrors wire.MaxFrame).
	MaxRecord = 1 << 20

	recMutation    byte = 1
	recIncarnation byte = 2

	recHeaderLen = 8 // u32 length + u32 crc

	// flushThreshold bounds the group-commit buffer: appendLocked writes the
	// pending records through once they exceed this, so a shard batch that
	// journals heavily cannot grow the buffer without bound between flushes.
	flushThreshold = 64 << 10

	// maxPendingCap releases an unusually large pending buffer (a MaxRecord
	// append can briefly grow it past a megabyte) back to the allocator after
	// the flush instead of pinning it for the store's lifetime.
	maxPendingCap = 2 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy selects when the WAL is fsynced.
type SyncPolicy uint8

const (
	// SyncInterval fsyncs at most once per Options.SyncInterval, amortizing
	// the fsync cost across appends; a crash loses at most one interval's
	// records. The default.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs after every append: no acknowledged mutation is ever
	// lost, at per-append fsync cost.
	SyncAlways
	// SyncNone never fsyncs the WAL explicitly; the OS flushes at its own
	// pace. A machine crash can lose recent records, a process crash cannot.
	SyncNone
)

// ParseSyncPolicy maps the -wal-sync flag values always|interval|none.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("persist: unknown sync policy %q (want always|interval|none)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	}
	return "interval"
}

// Options configures a Store. The zero value is usable.
type Options struct {
	SyncPolicy   SyncPolicy
	SyncInterval time.Duration // default 100ms (SyncInterval policy only)
	SegmentBytes int64         // WAL segment roll size, default 64 MiB
	Registry     *telemetry.Registry
	Labels       []string // label k/v pairs for registered metrics
	Logf         func(format string, args ...any)
	// NodeIndex maintains an on-disk sorted node index beside each snapshot
	// (see index.go): WriteSnapshot builds one from the same records, Open
	// prefers a valid index over materializing the snapshot (ReplayState.
	// Indexed), and AcquireIndex serves point reads for the overlay's cold
	// hosted entries.
	NodeIndex bool
}

func (o *Options) fill() {
	if o.SyncInterval <= 0 {
		o.SyncInterval = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
}

// ReplayState is what Open recovered from disk.
type ReplayState struct {
	// Mutations is the replayed record stream in apply order: the snapshot's
	// full-state records first, then every WAL mutation after it.
	Mutations []core.HostedMutation
	// Incarnation is the highest persisted membership incarnation.
	Incarnation uint64
	// SnapshotSeq is the sequence the loaded snapshot covers (0 if none).
	SnapshotSeq uint64
	// LastSeq is the last WAL sequence applied.
	LastSeq uint64
	// Truncated reports that replay hit a torn or corrupt record and stopped
	// there (pre-tail records are all applied).
	Truncated bool
	// Indexed reports that a valid on-disk node index covers the snapshot
	// (Options.NodeIndex): Mutations then holds only the WAL tail, and the
	// snapshot's full-state records are read through Store.AcquireIndex
	// instead of being materialized in memory.
	Indexed bool
	// IndexedRecords is the indexed snapshot's record count (Indexed only).
	IndexedRecords int
}

// HasState reports whether the directory held any prior peer state. An
// indexed replay streams its snapshot records through the index rather than
// Mutations, so IndexedRecords must count too — otherwise a peer restarting
// from a seq-0 snapshot would be mistaken for stateless and lose its
// delta-only rejoin.
func (rs *ReplayState) HasState() bool {
	return len(rs.Mutations) > 0 || rs.IndexedRecords > 0 ||
		rs.LastSeq > 0 || rs.SnapshotSeq > 0 || rs.Incarnation > 0
}

// Store is the open durability tier of one peer. Append may be called from
// multiple shard event loops concurrently (records are serialized under an
// internal mutex); Mark/WriteSnapshot/Close coordinate with appends the same
// way.
//
// Appends group-commit: records are framed into a pending buffer and written
// through with one write(2) per Flush (the shard loops flush once per drained
// batch), per flushThreshold overflow, or per append under SyncAlways — so
// the WAL write amplification scales with batches, not mutations, while
// SyncAlways still means fsync-per-record and SyncInterval still loses at
// most one interval to a machine crash.
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File
	segStart uint64 // first seq the open segment may contain
	segSize  int64  // includes pending (not yet written) record bytes
	seq      uint64
	lastSync time.Time
	closed   bool
	// pending is the group-commit buffer: appends frame records into it and
	// Flush writes them through with one write(2) per batch. It is drained by
	// Flush, by appendLocked once it exceeds flushThreshold, and by every
	// operation that needs the file current (Mark, rolls, Close).
	pending []byte

	// idx is the current node-index generation (Options.NodeIndex; nil when
	// disabled or not yet built). Swapped by WriteSnapshot, read-referenced by
	// loaders via AcquireIndex.
	idx atomic.Pointer[Index]

	walAppends  *telemetry.Counter
	walBytes    *telemetry.Counter
	replayRecs  *telemetry.Counter
	snapshots   *telemetry.Counter
	truncations *telemetry.Counter
	snapDur     *telemetry.Histogram
}

// Open opens (creating if needed) the durability directory, replays the
// newest valid snapshot plus the WAL tail, and leaves the store ready to
// append. The returned ReplayState holds the recovered mutation stream.
func Open(dir string, opts Options) (*Store, *ReplayState, error) {
	opts.fill()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("persist: open %s: %w", dir, err)
	}
	s := &Store{dir: dir, opts: opts}
	if reg := opts.Registry; reg != nil {
		s.walAppends = reg.Counter("terradir_persist_wal_appends_total",
			"WAL records appended.", opts.Labels...)
		s.walBytes = reg.Counter("terradir_persist_wal_bytes_total",
			"Bytes written to the WAL (including record framing).", opts.Labels...)
		s.replayRecs = reg.Counter("terradir_persist_replay_records_total",
			"Records replayed from snapshot+WAL at startup.", opts.Labels...)
		s.snapshots = reg.Counter("terradir_persist_snapshots_total",
			"Snapshots written.", opts.Labels...)
		s.truncations = reg.Counter("terradir_persist_wal_truncations_total",
			"Torn or corrupt WAL tails truncated during replay.", opts.Labels...)
		s.snapDur = reg.Histogram("terradir_persist_snapshot_duration_seconds",
			"Wall time to encode, write and fsync one snapshot.",
			telemetry.HistogramOpts{Min: 1e-5, Max: 1e3, BucketsPerDecade: 5},
			opts.Labels...)
	}
	rs, err := s.replay()
	if err != nil {
		return nil, nil, err
	}
	s.seq = rs.LastSeq
	if rs.SnapshotSeq > s.seq {
		s.seq = rs.SnapshotSeq
	}
	if err := s.openSegmentLocked(s.seq + 1); err != nil {
		return nil, nil, err
	}
	if s.replayRecs != nil {
		s.replayRecs.Add(uint64(len(rs.Mutations)))
	}
	return s, rs, nil
}

// Append journals one hosted-state mutation into the group-commit buffer
// (written through at the next Flush). Safe for concurrent use.
func (s *Store) Append(mu *core.HostedMutation) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(recMutation, func(b []byte) []byte {
		return wire.AppendHosted(b, mu)
	})
}

// AppendIncarnation journals the membership incarnation so refutation state
// survives a restart.
func (s *Store) AppendIncarnation(inc uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendLocked(recIncarnation, func(b []byte) []byte {
		return binary.LittleEndian.AppendUint64(b, inc)
	}); err != nil {
		return err
	}
	// Journaled from the membership goroutine, not a shard loop: no batch
	// drain group-commits on its behalf, so write it through immediately.
	return s.flushSyncLocked()
}

func (s *Store) appendLocked(kind byte, enc func([]byte) []byte) error {
	if s.closed {
		return fmt.Errorf("persist: store closed")
	}
	base := len(s.pending)
	b := append(s.pending, 0, 0, 0, 0, 0, 0, 0, 0) // length + crc, patched below
	b = binary.LittleEndian.AppendUint64(b, s.seq+1)
	b = append(b, kind)
	b = enc(b)
	payload := b[base+recHeaderLen:]
	if len(payload) > MaxRecord {
		s.pending = b[:base]
		return fmt.Errorf("persist: record of %d bytes exceeds MaxRecord", len(payload))
	}
	binary.LittleEndian.PutUint32(b[base:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[base+4:], crc32.Checksum(payload, castagnoli))
	s.pending = b
	rec := len(b) - base
	s.seq++
	s.segSize += int64(rec)
	if s.walAppends != nil {
		s.walAppends.Inc()
		s.walBytes.Add(uint64(rec))
	}
	if s.opts.SyncPolicy == SyncAlways {
		// No acknowledged mutation may ever be lost: write through and fsync
		// per append, exactly as before group commit.
		if err := s.flushLocked(); err != nil {
			return err
		}
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("persist: wal sync: %w", err)
		}
	} else if len(s.pending) >= flushThreshold {
		if err := s.flushSyncLocked(); err != nil {
			return err
		}
	}
	if s.segSize >= s.opts.SegmentBytes {
		return s.rollLocked()
	}
	return nil
}

// flushLocked writes the pending group-commit buffer through to the segment
// file with one write(2). No fsync.
func (s *Store) flushLocked() error {
	if len(s.pending) == 0 {
		return nil
	}
	if _, err := s.f.Write(s.pending); err != nil {
		return fmt.Errorf("persist: wal append: %w", err)
	}
	if cap(s.pending) > maxPendingCap {
		s.pending = nil
	} else {
		s.pending = s.pending[:0]
	}
	return nil
}

// flushSyncLocked is flushLocked plus the interval sync policy: under
// SyncInterval an fsync happens here at most once per Options.SyncInterval,
// so "-wal-sync interval" keeps its bound of losing at most one interval's
// records to a machine crash.
func (s *Store) flushSyncLocked() error {
	if err := s.flushLocked(); err != nil {
		return err
	}
	if s.opts.SyncPolicy == SyncInterval {
		if now := time.Now(); now.Sub(s.lastSync) >= s.opts.SyncInterval {
			if err := s.f.Sync(); err != nil {
				return fmt.Errorf("persist: wal sync: %w", err)
			}
			s.lastSync = now
		}
	}
	return nil
}

// Flush group-commits buffered records: one write(2) for everything appended
// since the last flush, then the interval sync policy. Shard event loops call
// it once per drained batch and before blocking idle, so a record never waits
// in user space longer than the batch that journaled it.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || len(s.pending) == 0 {
		return nil
	}
	return s.flushSyncLocked()
}

// Mark rolls the WAL to a fresh segment and returns the last sequence the
// closed segments cover. The caller snapshots peer state at this barrier
// point and later calls WriteSnapshot with the returned sequence; appends
// that land after Mark go to the new segment and survive the truncation.
func (s *Store) Mark() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("persist: store closed")
	}
	if s.segSize > int64(len(walMagic)) {
		if err := s.rollLocked(); err != nil {
			return 0, err
		}
	}
	return s.seq, nil
}

func (s *Store) rollLocked() error {
	if err := s.flushLocked(); err != nil {
		return err
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("persist: wal sync: %w", err)
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("persist: wal close: %w", err)
	}
	s.f = nil
	return s.openSegmentLocked(s.seq + 1)
}

func (s *Store) openSegmentLocked(start uint64) error {
	path := filepath.Join(s.dir, fmt.Sprintf("%s%016x%s", walPrefix, start, walSuffix))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("persist: open wal segment: %w", err)
	}
	if _, err := f.WriteString(walMagic); err != nil {
		f.Close()
		return fmt.Errorf("persist: wal header: %w", err)
	}
	s.f = f
	s.segStart = start
	s.segSize = int64(len(walMagic))
	s.lastSync = time.Now()
	syncDir(s.dir)
	return nil
}

// WriteSnapshot writes an atomic snapshot of records covering every mutation
// with sequence ≤ seq (from Mark), then retires the WAL segments and older
// snapshots it supersedes. Called off the event loops; appends proceed
// concurrently into the post-Mark segment.
//
// With Options.NodeIndex, the records are sorted and deduplicated in place
// and a companion index generation is built from the same bytes and swapped
// live; an index build failure fails the snapshot (nothing is retired, so
// the WAL still covers every record).
func (s *Store) WriteSnapshot(seq, incarnation uint64, records []core.HostedMutation) error {
	start := time.Now()
	if s.opts.NodeIndex {
		records = sortHostedRecords(records)
	}
	b := make([]byte, 0, 64+len(records)*64)
	b = append(b, snapMagic...)
	b = binary.LittleEndian.AppendUint64(b, seq)
	b = binary.LittleEndian.AppendUint64(b, incarnation)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(records)))
	for i := range records {
		lenAt := len(b)
		b = binary.LittleEndian.AppendUint32(b, 0) // patched below
		b = wire.AppendHosted(b, &records[i])
		binary.LittleEndian.PutUint32(b[lenAt:], uint32(len(b)-lenAt-4))
	}
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, castagnoli))

	final := filepath.Join(s.dir, fmt.Sprintf("%s%016x%s", snapPrefix, seq, snapSuffix))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("persist: snapshot: %w", err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("persist: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("persist: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: snapshot rename: %w", err)
	}
	syncDir(s.dir)
	if s.opts.NodeIndex {
		path, err := buildIndex(s.dir, seq, incarnation, records)
		if err != nil {
			return err
		}
		ix, err := openIndex(path)
		if err != nil {
			return fmt.Errorf("persist: reopen built index: %w", err)
		}
		s.setIndex(ix)
	}
	s.retire(seq)
	if s.snapshots != nil {
		s.snapshots.Inc()
		s.snapDur.Observe(time.Since(start).Seconds())
	}
	return nil
}

// retire removes WAL segments fully covered by the snapshot at seq (their
// records all have sequence ≤ seq because Mark rolled the segment at the
// barrier), snapshots older than it, and superseded index generations.
func (s *Store) retire(seq uint64) {
	s.mu.Lock()
	open := s.segStart
	s.mu.Unlock()
	for _, seg := range listSeqFiles(s.dir, walPrefix, walSuffix) {
		if seg.seq <= seq && seg.seq != open {
			os.Remove(seg.path)
		}
	}
	for _, sn := range listSeqFiles(s.dir, snapPrefix, snapSuffix) {
		if sn.seq < seq {
			os.Remove(sn.path)
		}
	}
	for _, ixf := range listSeqFiles(s.dir, idxPrefix, idxSuffix) {
		if ixf.seq < seq {
			os.Remove(ixf.path)
		}
	}
	syncDir(s.dir)
}

// Close fsyncs and closes the WAL (and the current index generation, once
// its readers drain). Further appends fail.
func (s *Store) Close() error {
	s.setIndex(nil)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.f == nil {
		return nil
	}
	err := s.flushLocked()
	if serr := s.f.Sync(); err == nil {
		err = serr
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}

// Dir returns the store's data directory.
func (s *Store) Dir() string { return s.dir }

// LastSeq returns the last assigned WAL sequence.
func (s *Store) LastSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

type seqFile struct {
	seq  uint64
	path string
}

// listSeqFiles returns the prefix/suffix-matching files in dir sorted by
// their embedded sequence (malformed names are ignored). Sorting by parsed
// sequence — not by name — keeps replay ordered even if names were rewritten
// with different zero-padding.
func listSeqFiles(dir, prefix, suffix string) []seqFile {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []seqFile
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			continue
		}
		var seq uint64
		if _, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix), "%x", &seq); err != nil {
			continue
		}
		out = append(out, seqFile{seq: seq, path: filepath.Join(dir, name)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}
