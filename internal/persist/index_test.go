package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"terradir/internal/core"
	"terradir/internal/wire"
)

func indexOpts() Options {
	o := quietOpts()
	o.NodeIndex = true
	return o
}

// testRecords returns n mutations with ascending unique node ids (stride 3,
// so Get sees gaps between present nodes).
func testRecords(n int) []core.HostedMutation {
	recs := make([]core.HostedMutation, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, *testMutation(i * 3))
	}
	return recs
}

// roundTrip normalizes a record through the wire codec, so expectations
// compare decoder output with decoder output.
func roundTrip(t *testing.T, mu *core.HostedMutation) *core.HostedMutation {
	t.Helper()
	out, err := wire.DecodeHosted(wire.AppendHosted(nil, mu))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestIndexRoundTrip(t *testing.T) {
	dir := t.TempDir()
	const n = 150 // crosses two directory strides
	recs := testRecords(n)
	path, err := buildIndex(dir, 42, 7, recs)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := openIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Retire()
	if ix.Seq() != 42 || ix.Incarnation() != 7 || ix.Count() != n {
		t.Fatalf("header: seq=%d inc=%d count=%d", ix.Seq(), ix.Incarnation(), ix.Count())
	}
	for i := range recs {
		got, err := ix.Get(recs[i].Node)
		if err != nil {
			t.Fatal(err)
		}
		want := roundTrip(t, &recs[i])
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("node %d: got %+v want %+v", recs[i].Node, got, want)
		}
	}
	for _, absent := range []core.NodeID{1, 2, 4, core.NodeID(3*n + 1), -5} {
		if got, err := ix.Get(absent); err != nil || got != nil {
			t.Fatalf("absent node %d: got %+v err %v", absent, got, err)
		}
	}
	var seen []core.NodeID
	err = ix.EachEntry(func(node core.NodeID, owned, adopted bool, payload []byte) error {
		i := int(node) / 3
		if owned != (i*3%2 == 0) || adopted {
			t.Fatalf("node %d flags: owned=%v adopted=%v", node, owned, adopted)
		}
		if _, derr := wire.DecodeHosted(payload); derr != nil {
			t.Fatalf("node %d payload: %v", node, derr)
		}
		seen = append(seen, node)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("EachEntry visited %d entries, want %d", len(seen), n)
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] <= seen[i-1] {
			t.Fatalf("EachEntry out of order at %d: %v", i, seen[i-1:i+1])
		}
	}
}

func TestIndexEmpty(t *testing.T) {
	dir := t.TempDir()
	path, err := buildIndex(dir, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := openIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Retire()
	if ix.Count() != 0 {
		t.Fatalf("count %d", ix.Count())
	}
	if got, err := ix.Get(3); err != nil || got != nil {
		t.Fatalf("empty index Get: %+v, %v", got, err)
	}
	if err := ix.EachEntry(func(core.NodeID, bool, bool, []byte) error {
		t.Fatal("EachEntry on empty index")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildIndexRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	outOfOrder := []core.HostedMutation{*testMutation(5), *testMutation(2)}
	if _, err := buildIndex(dir, 1, 1, outOfOrder); err == nil {
		t.Fatal("out-of-order records accepted")
	}
	del := *testMutation(1)
	del.Kind = core.MutDelete
	if _, err := buildIndex(dir, 1, 1, []core.HostedMutation{del}); err == nil {
		t.Fatal("non-upsert record accepted")
	}
}

func TestSortHostedRecords(t *testing.T) {
	recs := []core.HostedMutation{*testMutation(4), *testMutation(1), *testMutation(4), *testMutation(2)}
	recs[0].Weight = 99 // first occurrence of node 4 must win
	out := sortHostedRecords(recs)
	if len(out) != 3 {
		t.Fatalf("deduped to %d records, want 3", len(out))
	}
	if out[0].Node != 1 || out[1].Node != 2 || out[2].Node != 4 {
		t.Fatalf("order: %d %d %d", out[0].Node, out[1].Node, out[2].Node)
	}
	if out[2].Weight != 99 {
		t.Fatalf("dedupe kept the later duplicate (weight %v)", out[2].Weight)
	}
}

// openIndexed opens the store with the node index enabled and returns the
// fully applied hosted state: indexed (or materialized) snapshot records with
// the WAL-tail mutations folded on top.
func openIndexed(t *testing.T, dir string) (*ReplayState, map[core.NodeID]core.HostedMutation) {
	t.Helper()
	st, rs, err := Open(dir, indexOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	state := map[core.NodeID]core.HostedMutation{}
	if rs.Indexed {
		ix := st.AcquireIndex()
		if ix == nil {
			t.Fatal("Indexed replay but no index available")
		}
		err := ix.EachEntry(func(node core.NodeID, owned, adopted bool, payload []byte) error {
			mu, err := wire.DecodeHosted(payload)
			if err != nil {
				return err
			}
			state[node] = *mu
			return nil
		})
		ix.Release()
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, mu := range rs.Mutations {
		switch mu.Kind {
		case core.MutUpsert:
			state[mu.Node] = mu
		case core.MutDelete:
			delete(state, mu.Node)
		}
	}
	return rs, state
}

// seedIndexedStore writes n snapshotted records plus tail updates: an upsert
// of a new node, an overwrite of node 0, and a delete of node 3 — all landing
// in the WAL after the snapshot barrier.
func seedIndexedStore(t *testing.T, dir string, n int) {
	t.Helper()
	st, _, err := Open(dir, indexOpts())
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(n)
	for i := range recs {
		if err := st.Append(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	seq, err := st.Mark()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(seq, 9, recs); err != nil {
		t.Fatal(err)
	}
	tail := testMutation(3*n + 1)
	if err := st.Append(tail); err != nil {
		t.Fatal(err)
	}
	over := testMutation(0)
	over.Meta.Attrs["name"] = "rewritten"
	if err := st.Append(over); err != nil {
		t.Fatal(err)
	}
	del := &core.HostedMutation{Kind: core.MutDelete, Node: 3}
	if err := st.Append(del); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreIndexedReplay(t *testing.T) {
	dir := t.TempDir()
	const n = 20
	seedIndexedStore(t, dir, n)

	rs, state := openIndexed(t, dir)
	if !rs.Indexed {
		t.Fatal("replay did not use the index")
	}
	if rs.IndexedRecords != n {
		t.Fatalf("IndexedRecords = %d, want %d", rs.IndexedRecords, n)
	}
	// Indexed replays carry their snapshot records on disk, not in
	// Mutations; HasState must still report prior state even when every
	// sequence field is zero, or a restarted peer loses delta-only rejoin.
	if !(&ReplayState{IndexedRecords: rs.IndexedRecords}).HasState() {
		t.Fatal("HasState ignores indexed records")
	}
	if len(rs.Mutations) != 3 {
		t.Fatalf("tail holds %d mutations, want 3 (snapshot records must stay on disk)", len(rs.Mutations))
	}
	if rs.Incarnation != 9 {
		t.Fatalf("incarnation %d", rs.Incarnation)
	}
	if len(state) != n+1-1 { // n snapshotted + 1 new - 1 deleted
		t.Fatalf("recovered %d entries, want %d", len(state), n)
	}
	if state[0].Meta.Attrs["name"] != "rewritten" {
		t.Fatal("tail overwrite of node 0 lost")
	}
	if _, ok := state[3]; ok {
		t.Fatal("tail delete of node 3 lost")
	}
	if _, ok := state[core.NodeID(3*n+1)]; !ok {
		t.Fatal("tail upsert lost")
	}
}

func TestStoreRebuildsMissingIndex(t *testing.T) {
	dir := t.TempDir()
	seedIndexedStore(t, dir, 10)
	_, want := openIndexed(t, dir)

	ixfs := listSeqFiles(dir, idxPrefix, idxSuffix)
	if len(ixfs) != 1 {
		t.Fatalf("want 1 index file, have %d", len(ixfs))
	}
	if err := os.Remove(ixfs[0].path); err != nil {
		t.Fatal(err)
	}
	rs, got := openIndexed(t, dir)
	if !rs.Indexed {
		t.Fatal("missing index not rebuilt from snapshot")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rebuilt state differs:\n got %+v\nwant %+v", got, want)
	}
	if len(listSeqFiles(dir, idxPrefix, idxSuffix)) != 1 {
		t.Fatal("rebuild did not recreate the index file")
	}
}

func TestStoreRejectsStaleSeqIndex(t *testing.T) {
	dir := t.TempDir()
	seedIndexedStore(t, dir, 10)
	_, want := openIndexed(t, dir)

	// Replace the index with a generation whose header seq disagrees with
	// the snapshot it sits beside (a half-finished retire could leave this).
	ixfs := listSeqFiles(dir, idxPrefix, idxSuffix)
	stale := t.TempDir()
	path, err := buildIndex(stale, ixfs[0].seq+100, 1, testRecords(2))
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ixfs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rs, got := openIndexed(t, dir)
	if !rs.Indexed {
		t.Fatal("stale index not rebuilt")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("stale-seq index served wrong state")
	}
}

func TestSnapshotRetiresOldIndexGenerations(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, indexOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	recs := testRecords(5)
	for i := range recs {
		if err := st.Append(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	seq, err := st.Mark()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(seq, 1, recs); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(testMutation(100)); err != nil {
		t.Fatal(err)
	}
	recs = append(recs, *testMutation(100))
	seq2, err := st.Mark()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(seq2, 1, recs); err != nil {
		t.Fatal(err)
	}
	ixfs := listSeqFiles(dir, idxPrefix, idxSuffix)
	if len(ixfs) != 1 || ixfs[0].seq != seq2 {
		t.Fatalf("index generations after retire: %+v (want only seq %d)", ixfs, seq2)
	}
	ix := st.AcquireIndex()
	if ix == nil || ix.Seq() != seq2 {
		t.Fatalf("current index is %+v, want seq %d", ix, seq2)
	}
	ix.Release()
}

// TestIndexCorruptionByteByByte mirrors TestTornTailByteByByte for the index:
// flip every byte of the index file in turn (and truncate it at every length)
// and assert that Open detects the damage, rebuilds the generation from the
// snapshot, and recovers state identical to the pristine run. The index is a
// cache — no single corrupt byte may change replayed state.
func TestIndexCorruptionByteByByte(t *testing.T) {
	dir := t.TempDir()
	const n = 12
	seedIndexedStore(t, dir, n)
	_, want := openIndexed(t, dir)

	ixfs := listSeqFiles(dir, idxPrefix, idxSuffix)
	if len(ixfs) != 1 {
		t.Fatalf("want 1 index file, have %d", len(ixfs))
	}
	pristine, err := os.ReadFile(ixfs[0].path)
	if err != nil {
		t.Fatal(err)
	}

	check := func(t *testing.T, mutate func([]byte) []byte) {
		t.Helper()
		if err := os.WriteFile(ixfs[0].path, mutate(append([]byte(nil), pristine...)), 0o644); err != nil {
			t.Fatal(err)
		}
		rs, got := openIndexed(t, dir)
		if !rs.Indexed {
			t.Fatal("corrupt index did not fall back to rebuild-from-snapshot")
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("corrupt index changed recovered state:\n got %+v\nwant %+v", got, want)
		}
	}

	t.Run("bit-flip-every-byte", func(t *testing.T) {
		for i := 0; i < len(pristine); i++ {
			check(t, func(d []byte) []byte {
				d[i] ^= 0x40
				return d
			})
		}
	})
	t.Run("truncate-every-length", func(t *testing.T) {
		for cut := 0; cut < len(pristine); cut++ {
			check(t, func(d []byte) []byte {
				return d[:cut]
			})
		}
	})
	t.Run("missing-footer-and-growth", func(t *testing.T) {
		check(t, func(d []byte) []byte {
			return append(d, 0xde, 0xad) // trailing garbage desyncs the footer
		})
	})
}

// FuzzIndexDecode asserts openIndex never panics on arbitrary file bytes —
// hostile length prefixes, corrupt CRCs, inconsistent directories — and that
// any file it does accept serves exactly Count() entries in ascending order
// through both EachEntry and Get.
func FuzzIndexDecode(f *testing.F) {
	seedDir, err := os.MkdirTemp("", "idxfuzz")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(seedDir)
	recs := make([]core.HostedMutation, 0, 70)
	for i := 0; i < 70; i++ { // crosses one directory stride
		recs = append(recs, *testMutation(i * 2))
	}
	path, err := buildIndex(seedDir, 3, 1, recs)
	if err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:idxHeaderLen])    // header only, no footer
	f.Add(valid[:len(valid)-7])    // torn footer
	f.Add(valid[:idxHeaderLen+11]) // torn first entry
	hostileLen := append([]byte(nil), valid...)
	hostileLen[idxHeaderLen] = 0xff // first entry length → huge
	hostileLen[idxHeaderLen+1] = 0xff
	hostileLen[idxHeaderLen+2] = 0xff
	f.Add(hostileLen)
	zeroLen := append([]byte(nil), valid...)
	zeroLen[idxHeaderLen] = 0 // first entry length → below idxMinEntry
	zeroLen[idxHeaderLen+1] = 0
	zeroLen[idxHeaderLen+2] = 0
	zeroLen[idxHeaderLen+3] = 0
	f.Add(zeroLen)
	hugeCount := append([]byte(nil), valid...)
	hugeCount[24] = 0xff // header count field (CRC will catch it)
	hugeCount[25] = 0xff
	f.Add(hugeCount)
	f.Add([]byte{})
	f.Add([]byte(idxMagic))
	f.Add([]byte("TDIDX999 not an index"))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), fmt.Sprintf("%s%016x%s", idxPrefix, 1, idxSuffix))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		ix, err := openIndex(path)
		if err != nil {
			return // rejected: the rebuild-from-snapshot path handles it
		}
		defer ix.Retire()
		var prev core.NodeID
		seen := 0
		err = ix.EachEntry(func(node core.NodeID, owned, adopted bool, payload []byte) error {
			if seen > 0 && node <= prev {
				t.Fatalf("validated index yields out-of-order node %d after %d", node, prev)
			}
			if _, derr := wire.DecodeHosted(payload); derr != nil {
				t.Fatalf("validated index entry fails decode: %v", derr)
			}
			prev = node
			seen++
			return nil
		})
		if err != nil {
			t.Fatalf("validated index failed EachEntry: %v", err)
		}
		if seen != ix.Count() {
			t.Fatalf("EachEntry yielded %d entries, header says %d", seen, ix.Count())
		}
		for _, node := range []core.NodeID{0, 1, prev, prev + 1, -1} {
			if _, err := ix.Get(node); err != nil {
				t.Fatalf("validated index failed Get(%d): %v", node, err)
			}
		}
	})
}
