package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"terradir/internal/core"
)

func quietOpts() Options {
	return Options{SyncPolicy: SyncNone, Logf: func(string, ...any) {}}
}

func testMutation(i int) *core.HostedMutation {
	return &core.HostedMutation{
		Kind:    core.MutUpsert,
		Node:    core.NodeID(i),
		Owned:   i%2 == 0,
		HasData: i%2 == 0,
		Weight:  float64(i) / 3,
		Meta:    core.Meta{Version: uint64(i), Attrs: map[string]string{"name": fmt.Sprintf("node-%d", i)}},
		Map:     core.NodeMap{Servers: []core.ServerID{core.ServerID(i % 5), core.ServerID((i + 1) % 5)}},
		Data:    []byte{byte(i), byte(i >> 8)},
	}
}

func mustOpen(t *testing.T, dir string) (*Store, *ReplayState) {
	t.Helper()
	st, rs, err := Open(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	return st, rs
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, rs := mustOpen(t, dir)
	if rs.HasState() {
		t.Fatalf("fresh dir reports prior state: %+v", rs)
	}
	const n = 25
	for i := 0; i < n; i++ {
		if err := st.Append(testMutation(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.AppendIncarnation(7); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rs2 := mustOpen(t, dir)
	defer st2.Close()
	if !rs2.HasState() || rs2.Truncated {
		t.Fatalf("replay state: %+v", rs2)
	}
	if len(rs2.Mutations) != n {
		t.Fatalf("replayed %d mutations, want %d", len(rs2.Mutations), n)
	}
	if rs2.Incarnation != 7 {
		t.Fatalf("incarnation = %d, want 7", rs2.Incarnation)
	}
	if rs2.LastSeq != n+1 {
		t.Fatalf("last seq = %d, want %d", rs2.LastSeq, n+1)
	}
	for i, mu := range rs2.Mutations {
		want := testMutation(i)
		if mu.Node != want.Node || mu.Owned != want.Owned || mu.Meta.Version != want.Meta.Version ||
			mu.Meta.Attrs["name"] != want.Meta.Attrs["name"] || len(mu.Map.Servers) != 2 ||
			string(mu.Data) != string(want.Data) {
			t.Fatalf("mutation %d mismatch: %+v", i, mu)
		}
	}
}

// TestFlushGroupCommit pins the group-commit contract: appends buffer in
// user space until Flush writes them through in one batch, and a flushed
// batch replays record-for-record.
func TestFlushGroupCommit(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir)
	const n = 3
	for i := 0; i < n; i++ {
		if err := st.Append(testMutation(i)); err != nil {
			t.Fatal(err)
		}
	}
	segs := listSeqFiles(dir, walPrefix, walSuffix)
	if len(segs) != 1 {
		t.Fatalf("want 1 live segment, have %d", len(segs))
	}
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != len(walMagic) {
		t.Fatalf("segment holds %d bytes before Flush, want header only (%d)", len(data), len(walMagic))
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if data, err = os.ReadFile(segs[0].path); err != nil {
		t.Fatal(err)
	}
	var recs int
	if _, err := scanSegment(data, func(uint64, byte, []byte) error { recs++; return nil }); err != nil {
		t.Fatal(err)
	}
	if recs != n {
		t.Fatalf("flushed segment replays %d records, want %d", recs, n)
	}
	if err := st.Flush(); err != nil { // empty flush is a no-op
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir)
	for i := 0; i < 10; i++ {
		if err := st.Append(testMutation(i)); err != nil {
			t.Fatal(err)
		}
	}
	seq, err := st.Mark()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 10 {
		t.Fatalf("mark = %d, want 10", seq)
	}
	// Appends after the mark must survive the snapshot's WAL truncation.
	if err := st.Append(testMutation(100)); err != nil {
		t.Fatal(err)
	}
	var recs []core.HostedMutation
	for i := 0; i < 10; i++ {
		recs = append(recs, *testMutation(i))
	}
	if err := st.WriteSnapshot(seq, 3, recs); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The pre-mark segment is gone, the snapshot and post-mark tail remain.
	segs := listSeqFiles(dir, walPrefix, walSuffix)
	for _, seg := range segs {
		if seg.seq <= seq {
			t.Fatalf("segment %s not retired by snapshot at %d", seg.path, seq)
		}
	}
	st2, rs := mustOpen(t, dir)
	defer st2.Close()
	if rs.SnapshotSeq != 10 || rs.Incarnation != 3 {
		t.Fatalf("replay state: %+v", rs)
	}
	if len(rs.Mutations) != 11 {
		t.Fatalf("replayed %d mutations, want 11 (10 snapshot + 1 tail)", len(rs.Mutations))
	}
	if last := rs.Mutations[10]; last.Node != 100 {
		t.Fatalf("tail mutation node = %d, want 100", last.Node)
	}
}

// TestTornTailByteByByte is the torn-write hardening test: corrupt the last
// record of the WAL one byte at a time (every offset), and at every
// truncation length inside it. Replay must never panic, must recover all
// pre-tail records, and must truncate the tail so the following run is
// clean.
func TestTornTailByteByByte(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir)
	const n = 5
	for i := 0; i < n; i++ {
		if err := st.Append(testMutation(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	segs := listSeqFiles(dir, walPrefix, walSuffix)
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, have %d", len(segs))
	}
	pristine, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the last record's start offset by walking the record framing.
	lastStart := len(walMagic)
	off := len(walMagic)
	for count := 0; count < n; count++ {
		ln := int(binary.LittleEndian.Uint32(pristine[off:]))
		lastStart = off
		off += recHeaderLen + ln
	}
	if off != len(pristine) {
		t.Fatalf("framing walk ended at %d, file is %d bytes", off, len(pristine))
	}

	check := func(t *testing.T, mutate func([]byte) []byte) {
		t.Helper()
		data := mutate(append([]byte(nil), pristine...))
		if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		st2, rs, err := Open(dir, quietOpts())
		if err != nil {
			t.Fatal(err)
		}
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
		if !rs.Truncated {
			t.Fatal("corrupt tail not reported as truncated")
		}
		if len(rs.Mutations) != n-1 {
			t.Fatalf("replayed %d mutations, want %d (pre-tail records must survive)", len(rs.Mutations), n-1)
		}
		for i, mu := range rs.Mutations {
			if mu.Node != core.NodeID(i) {
				t.Fatalf("mutation %d is node %d", i, mu.Node)
			}
		}
		// The torn tail was truncated: the segment now replays clean.
		fixed, err := os.ReadFile(segs[0].path)
		if err != nil {
			t.Fatal(err)
		}
		if len(fixed) != lastStart {
			t.Fatalf("truncated segment is %d bytes, want %d", len(fixed), lastStart)
		}
		// Open rolled a fresh live segment; drop it to keep iterations
		// independent.
		for _, seg := range listSeqFiles(dir, walPrefix, walSuffix) {
			if seg.path != segs[0].path {
				os.Remove(seg.path)
			}
		}
	}

	t.Run("bit-flip-every-byte", func(t *testing.T) {
		for i := lastStart; i < len(pristine); i++ {
			check(t, func(d []byte) []byte {
				d[i] ^= 0x40
				return d
			})
		}
	})
	t.Run("truncate-every-length", func(t *testing.T) {
		for cut := lastStart + 1; cut < len(pristine); cut++ {
			check(t, func(d []byte) []byte {
				return d[:cut]
			})
		}
	})
}

// TestReplaySkipsDuplicateAndStaleSeqs covers the half-finished-retire case:
// a stale segment whose records the snapshot already covers, plus records
// duplicated across segments, replay exactly once.
func TestReplaySkipsDuplicateAndStaleSeqs(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir)
	for i := 0; i < 6; i++ {
		if err := st.Append(testMutation(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	segs := listSeqFiles(dir, walPrefix, walSuffix)
	// Duplicate the whole segment under a later start-seq name: every record
	// in the copy is a duplicate and must be skipped.
	dup := filepath.Join(dir, walPrefix+"00000000000000ff"+walSuffix)
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dup, data, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, rs := mustOpen(t, dir)
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	if len(rs.Mutations) != 6 {
		t.Fatalf("replayed %d mutations, want 6 (duplicates must be skipped)", len(rs.Mutations))
	}
}

// TestReplayPrefersNewestValidSnapshot: a corrupt newest snapshot falls back
// to the older valid one plus the WAL tail.
func TestReplayPrefersNewestValidSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir)
	for i := 0; i < 4; i++ {
		if err := st.Append(testMutation(i)); err != nil {
			t.Fatal(err)
		}
	}
	seq, err := st.Mark()
	if err != nil {
		t.Fatal(err)
	}
	var recs []core.HostedMutation
	for i := 0; i < 4; i++ {
		recs = append(recs, *testMutation(i))
	}
	if err := st.WriteSnapshot(seq, 1, recs); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Plant a newer but corrupt snapshot.
	bad := filepath.Join(dir, snapPrefix+"00000000000000aa"+snapSuffix)
	good, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("%s%016x%s", snapPrefix, seq, snapSuffix)))
	if err != nil {
		t.Fatal(err)
	}
	corrupted := append([]byte(nil), good...)
	corrupted[len(corrupted)/2] ^= 0xff
	if err := os.WriteFile(bad, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, rs := mustOpen(t, dir)
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	if rs.SnapshotSeq != seq || len(rs.Mutations) != 4 {
		t.Fatalf("replay state after corrupt newest snapshot: seq=%d mutations=%d", rs.SnapshotSeq, len(rs.Mutations))
	}
}

func TestScanSegmentHostileLengths(t *testing.T) {
	mk := func(ln uint32, payload []byte) []byte {
		b := []byte(walMagic)
		b = binary.LittleEndian.AppendUint32(b, ln)
		b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(payload, castagnoli))
		return append(b, payload...)
	}
	cases := map[string][]byte{
		"zero-length":    mk(0, nil),
		"huge-length":    mk(1<<31, nil),
		"over-maxrecord": mk(MaxRecord+1, nil),
		"short-payload":  mk(100, []byte{1, 2, 3}),
		"no-header":      []byte("XXWAL999"),
		"empty":          nil,
	}
	for name, data := range cases {
		if _, err := scanSegment(data, func(uint64, byte, []byte) error { return nil }); err == nil {
			t.Errorf("%s: scan accepted hostile input", name)
		}
	}
}

func TestSegmentRollAtSizeLimit(t *testing.T) {
	dir := t.TempDir()
	opts := quietOpts()
	opts.SegmentBytes = 256 // tiny: force rolls
	st, _, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		if err := st.Append(testMutation(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if segs := listSeqFiles(dir, walPrefix, walSuffix); len(segs) < 3 {
		t.Fatalf("expected multiple segments, have %d", len(segs))
	}
	st2, rs := mustOpen(t, dir)
	defer st2.Close()
	if len(rs.Mutations) != n {
		t.Fatalf("replayed %d mutations across segments, want %d", len(rs.Mutations), n)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{"always": SyncAlways, "interval": SyncInterval, "none": SyncNone} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
		if got.String() != in {
			t.Fatalf("String() = %q, want %q", got.String(), in)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}
