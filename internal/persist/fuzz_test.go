package persist

import (
	"encoding/binary"
	"hash/crc32"
	"testing"

	"terradir/internal/core"
	"terradir/internal/wire"
)

// FuzzWALDecode asserts that WAL segment replay never panics on arbitrary
// bytes: hostile length prefixes, corrupt CRCs, truncated tails, duplicate
// sequences — anything a torn write or disk corruption can produce. The
// property mirrors the wire fuzzers: every input either replays some clean
// prefix or reports an error; it never crashes and never loses the records
// before the first bad one.
func FuzzWALDecode(f *testing.F) {
	record := func(seq uint64, kind byte, body []byte) []byte {
		payload := binary.LittleEndian.AppendUint64(nil, seq)
		payload = append(payload, kind)
		payload = append(payload, body...)
		b := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
		b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(payload, castagnoli))
		return append(b, payload...)
	}
	mutBody := func(i int) []byte {
		return wire.AppendHosted(nil, &core.HostedMutation{
			Kind: core.MutUpsert, Node: core.NodeID(i), Owned: true,
			Meta: core.Meta{Version: 1, Attrs: map[string]string{"k": "v"}},
			Map:  core.SingleServerMap(2), Data: []byte{1, 2},
		})
	}
	// A clean two-record segment.
	seg := []byte(walMagic)
	seg = append(seg, record(1, recMutation, mutBody(1))...)
	seg = append(seg, record(2, recIncarnation, binary.LittleEndian.AppendUint64(nil, 9))...)
	f.Add(seg)
	// Duplicate and out-of-order sequences.
	dup := []byte(walMagic)
	dup = append(dup, record(5, recMutation, mutBody(5))...)
	dup = append(dup, record(5, recMutation, mutBody(5))...)
	dup = append(dup, record(3, recMutation, mutBody(3))...)
	f.Add(dup)
	// Hostile length prefixes.
	hostile := []byte(walMagic)
	hostile = binary.LittleEndian.AppendUint32(hostile, 0xffffffff)
	hostile = binary.LittleEndian.AppendUint32(hostile, 0)
	f.Add(hostile)
	f.Add([]byte(walMagic))
	f.Add(seg[:len(seg)-3]) // torn tail
	f.Add([]byte{})
	f.Add([]byte("TDWAL999junk"))

	f.Fuzz(func(t *testing.T, data []byte) {
		lastSeq := uint64(0)
		good, err := scanSegment(data, func(seq uint64, kind byte, body []byte) error {
			if seq <= lastSeq {
				return nil // replay's duplicate/out-of-order skip rule
			}
			if kind == recMutation {
				if _, derr := wire.DecodeHosted(body); derr != nil {
					return derr
				}
			}
			lastSeq = seq
			return nil
		})
		if good < 0 || good > len(data) {
			t.Fatalf("truncation point %d outside [0,%d]", good, len(data))
		}
		if err == nil && good != len(data) {
			t.Fatalf("clean scan stopped early: %d of %d bytes", good, len(data))
		}
	})
}
