package persist

import (
	"fmt"
	"testing"

	"terradir/internal/core"
)

// BenchmarkWALAppend measures raw journal append throughput (no fsync): the
// cost a hosted-state mutation adds to the event loop's critical path.
func BenchmarkWALAppend(b *testing.B) {
	st, _, err := Open(b.TempDir(), quietBenchOpts())
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	mu := benchRecord(42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Append(mu); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppendSyncAlways is the same append under fsync-per-record —
// the upper bound a durability-paranoid deployment pays.
func BenchmarkWALAppendSyncAlways(b *testing.B) {
	opts := quietBenchOpts()
	opts.SyncPolicy = SyncAlways
	st, _, err := Open(b.TempDir(), opts)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	mu := benchRecord(42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Append(mu); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshotWrite10k(b *testing.B)  { benchSnapshotWrite(b, 10_000) }
func BenchmarkSnapshotWrite100k(b *testing.B) { benchSnapshotWrite(b, 100_000) }
func BenchmarkReplay10k(b *testing.B)         { benchReplay(b, 10_000) }
func BenchmarkReplay100k(b *testing.B)        { benchReplay(b, 100_000) }

func quietBenchOpts() Options {
	return Options{SyncPolicy: SyncNone, Logf: func(string, ...any) {}}
}

func benchRecord(i int) *core.HostedMutation {
	return &core.HostedMutation{
		Kind:  core.MutUpsert,
		Node:  core.NodeID(i),
		Owned: i%8 == 0,
		Meta:  core.Meta{Version: uint64(i), Attrs: map[string]string{"name": fmt.Sprintf("n-%d", i)}},
		Map:   core.NodeMap{Servers: []core.ServerID{core.ServerID(i % 7), core.ServerID((i + 1) % 7), core.ServerID((i + 2) % 7)}},
	}
}

func benchRecords(n int) []core.HostedMutation {
	recs := make([]core.HostedMutation, n)
	for i := range recs {
		recs[i] = *benchRecord(i)
	}
	return recs
}

func benchSnapshotWrite(b *testing.B, nodes int) {
	st, _, err := Open(b.TempDir(), quietBenchOpts())
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	recs := benchRecords(nodes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.WriteSnapshot(1, 1, recs); err != nil {
			b.Fatal(err)
		}
	}
}

func benchReplay(b *testing.B, nodes int) {
	dir := b.TempDir()
	st, _, err := Open(dir, quietBenchOpts())
	if err != nil {
		b.Fatal(err)
	}
	// Realistic restart shape: most state in the snapshot, a WAL tail of
	// recent mutations on top.
	recs := benchRecords(nodes)
	seq, err := st.Mark()
	if err != nil {
		b.Fatal(err)
	}
	if err := st.WriteSnapshot(seq, 1, recs); err != nil {
		b.Fatal(err)
	}
	tail := nodes / 10
	for i := 0; i < tail; i++ {
		if err := st.Append(benchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st2, rs, err := Open(dir, quietBenchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(rs.Mutations) != nodes+tail {
			b.Fatalf("replayed %d, want %d", len(rs.Mutations), nodes+tail)
		}
		if err := st2.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
