package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"

	"terradir/internal/core"
	"terradir/internal/wire"
)

// errTail classifies a record that cannot be replayed: torn (truncated
// mid-write), CRC-corrupt, or undecodable. Replay stops cleanly there.
var errTail = errors.New("persist: unreadable wal record")

// replay loads the newest valid snapshot plus every WAL record after it.
// Called once from Open, before the store is shared.
func (s *Store) replay() (*ReplayState, error) {
	rs := &ReplayState{}

	// Newest snapshot that verifies wins; corrupt ones are skipped with a
	// warning (an older snapshot plus a longer WAL tail replays the same
	// state). With the node index enabled, a valid index generation covering
	// the snapshot is preferred: the snapshot's records stay on disk
	// (rs.Indexed) instead of being materialized, and a missing or corrupt
	// index is rebuilt from the snapshot it mirrors.
	snaps := listSeqFiles(s.dir, snapPrefix, snapSuffix)
	for i := len(snaps) - 1; i >= 0; i-- {
		if s.opts.NodeIndex {
			ixPath := s.indexPath(snaps[i].seq)
			ix, err := openIndex(ixPath)
			if err == nil && ix.seq != snaps[i].seq {
				err = fmt.Errorf("persist: index seq %d does not match snapshot %d", ix.seq, snaps[i].seq)
				ix.Retire()
			}
			if err == nil {
				rs.Incarnation = ix.incarnation
				rs.SnapshotSeq = snaps[i].seq
				rs.Indexed = true
				rs.IndexedRecords = ix.count
				s.setIndex(ix)
				break
			}
			if !os.IsNotExist(err) {
				s.opts.Logf("persist: index %s unusable, rebuilding from snapshot: %v", ixPath, err)
			}
		}
		records, inc, err := loadSnapshot(snaps[i].path)
		if err != nil {
			s.opts.Logf("persist: skipping snapshot %s: %v", snaps[i].path, err)
			continue
		}
		if s.opts.NodeIndex {
			// Rebuild the index generation from the verified snapshot records
			// (the index is a pure cache of snapshot state). On success the
			// records are served through it; on failure fall back to the
			// classic in-memory replay.
			if ix := s.rebuildIndex(snaps[i].seq, inc, records); ix != nil {
				rs.Incarnation = inc
				rs.SnapshotSeq = snaps[i].seq
				rs.Indexed = true
				rs.IndexedRecords = ix.count
				s.setIndex(ix)
				break
			}
		}
		rs.Mutations = records
		rs.Incarnation = inc
		rs.SnapshotSeq = snaps[i].seq
		break
	}

	// Replay WAL segments in sequence order. Records at or below the
	// snapshot's covered sequence (or out of order — duplicated by a
	// half-finished retire) are skipped; the first torn or corrupt record
	// stops replay, and if it is in the live tail segment the file is
	// truncated so the next run starts clean.
	rs.LastSeq = rs.SnapshotSeq
	segs := listSeqFiles(s.dir, walPrefix, walSuffix)
	for i, seg := range segs {
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return nil, fmt.Errorf("persist: read wal segment: %w", err)
		}
		good, err := scanSegment(data, func(seq uint64, kind byte, body []byte) error {
			if seq <= rs.LastSeq {
				return nil // superseded by snapshot, or duplicate
			}
			switch kind {
			case recMutation:
				mu, err := wire.DecodeHosted(body)
				if err != nil {
					return fmt.Errorf("%w: %v", errTail, err)
				}
				rs.Mutations = append(rs.Mutations, *mu)
			case recIncarnation:
				if len(body) != 8 {
					return fmt.Errorf("%w: incarnation body of %d bytes", errTail, len(body))
				}
				if inc := binary.LittleEndian.Uint64(body); inc > rs.Incarnation {
					rs.Incarnation = inc
				}
			default:
				// Unknown record kind: written by a newer version; skip.
			}
			rs.LastSeq = seq
			return nil
		})
		if err != nil {
			rs.Truncated = true
			s.opts.Logf("persist: wal %s: stopping replay at offset %d: %v", seg.path, good, err)
			if s.truncations != nil {
				s.truncations.Inc()
			}
			if i == len(segs)-1 {
				// Torn tail of the live segment (kill -9 mid-append):
				// truncate so the next segment generation starts clean.
				if terr := os.Truncate(seg.path, int64(good)); terr != nil {
					s.opts.Logf("persist: wal %s: truncate failed: %v", seg.path, terr)
				}
			}
			break
		}
	}
	return rs, nil
}

// scanSegment walks one WAL segment, invoking apply for each intact record.
// It returns the byte offset of the last intact record's end — the clean
// truncation point — and a non-nil error if the walk stopped before the end
// of the data (torn or corrupt record, or apply's own error).
func scanSegment(data []byte, apply func(seq uint64, kind byte, body []byte) error) (int, error) {
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != walMagic {
		return 0, fmt.Errorf("%w: bad segment header", errTail)
	}
	off := len(walMagic)
	for off < len(data) {
		if len(data)-off < recHeaderLen {
			return off, fmt.Errorf("%w: torn record header", errTail)
		}
		ln := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if ln < 9 || ln > MaxRecord {
			return off, fmt.Errorf("%w: record length %d out of range", errTail, ln)
		}
		if len(data)-off-recHeaderLen < int(ln) {
			return off, fmt.Errorf("%w: torn record payload", errTail)
		}
		payload := data[off+recHeaderLen : off+recHeaderLen+int(ln)]
		if crc32.Checksum(payload, castagnoli) != crc {
			return off, fmt.Errorf("%w: crc mismatch", errTail)
		}
		if err := apply(binary.LittleEndian.Uint64(payload), payload[8], payload[9:]); err != nil {
			return off, err
		}
		off += recHeaderLen + int(ln)
	}
	return off, nil
}

// loadSnapshot reads and verifies one snapshot file, returning its records
// and persisted incarnation.
func loadSnapshot(path string) ([]core.HostedMutation, uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	const header = len(snapMagic) + 8 + 8 + 4
	if len(data) < header+4 {
		return nil, 0, fmt.Errorf("persist: snapshot too short (%d bytes)", len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return nil, 0, fmt.Errorf("persist: snapshot crc mismatch")
	}
	if string(data[:len(snapMagic)]) != snapMagic {
		return nil, 0, fmt.Errorf("persist: bad snapshot header")
	}
	off := len(snapMagic) + 8 // covered seq: encoded in the filename too; unused here
	inc := binary.LittleEndian.Uint64(data[off:])
	off += 8
	count := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	if count < 0 || count > len(body)/4 {
		return nil, 0, fmt.Errorf("persist: implausible snapshot record count %d", count)
	}
	records := make([]core.HostedMutation, 0, count)
	for i := 0; i < count; i++ {
		if len(body)-off < 4 {
			return nil, 0, fmt.Errorf("persist: snapshot truncated at record %d", i)
		}
		ln := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if ln < 0 || len(body)-off < ln {
			return nil, 0, fmt.Errorf("persist: snapshot record %d overruns file", i)
		}
		mu, err := wire.DecodeHosted(data[off : off+ln])
		if err != nil {
			return nil, 0, fmt.Errorf("persist: snapshot record %d: %w", i, err)
		}
		records = append(records, *mu)
		off += ln
	}
	if off != len(body) {
		return nil, 0, fmt.Errorf("persist: snapshot has %d trailing bytes", len(body)-off)
	}
	return records, inc, nil
}
